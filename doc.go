// Package repro is the root of the PPA reproduction — Su & Zhou,
// "Tolerating Correlated Failures in Massively Parallel Stream
// Processing Engines" (ICDE 2016) — rebuilt as a Go library.
//
// Import repro/ppa for the public API; see README.md for the package
// layout and DESIGN.md for the architecture. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation
// section and compare the replication planners:
//
//	go test -bench=. -benchmem .
package repro
