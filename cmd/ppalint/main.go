// Command ppalint runs the repository's determinism & safety
// analyzer suite (internal/lint) over Go packages.
//
// It is a go/analysis unitchecker binary, so the canonical invocation
// is through the go command, which handles loading, caching and
// dependency order:
//
//	go vet -vettool=$(which ppalint) ./...
//
// Run standalone it drives the same invocation itself:
//
//	ppalint ./...          # vet the given packages (default ./...)
//	ppalint -json ./...    # diagnostics as JSON (go vet -json passthrough)
//	ppalint -list          # list the analyzers and what they enforce
//
// Findings are suppressed in place with //ppalint:allow <analyzer>
// <reason>; see the internal/lint package documentation.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	// Under `go vet -vettool=ppalint` the go command probes the tool
	// with -V=full and -flags (JSON flag definitions), then invokes it
	// once per package with a single *.cfg argument. Everything else
	// is a human at a shell.
	for _, a := range os.Args[1:] {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(lint.Analyzers()...) // never returns
		}
	}

	var (
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON (go vet -json passthrough)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ppalint [-list] [-json] [packages]\n\n"+
			"Runs the ppalint determinism & safety analyzers over the given\n"+
			"package patterns (default ./...) by driving go vet -vettool with\n"+
			"itself as the tool. Equivalent to:\n\n"+
			"\tgo vet -vettool=$(which ppalint) [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-13s %s\n", a.Name, doc)
		}
		return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppalint: locating own binary: %v\n", err)
		os.Exit(2)
	}
	args := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		args = append(args, "-json")
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ppalint: running go vet: %v\n", err)
		os.Exit(2)
	}
}
