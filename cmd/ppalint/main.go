// Command ppalint runs the repository's determinism & safety
// analyzer suite (internal/lint) over Go packages.
//
// It is a go/analysis unitchecker binary, so the canonical invocation
// is through the go command, which handles loading, caching and
// dependency order — the order the detclose analyzer relies on to
// propagate Deterministic/Tainted facts bottom-up across packages:
//
//	go vet -vettool=$(which ppalint) ./...
//
// Run standalone it drives the same invocation itself:
//
//	ppalint ./...              # vet the given packages (default ./...)
//	ppalint -json ./...        # diagnostics as JSON (go vet -json passthrough)
//	ppalint -github ./...      # findings as GitHub Actions annotations
//	ppalint -list              # list the analyzers and what they enforce
//	ppalint -roots=...         # override the detclose determinism roots
//	ppalint -roots-file=path   # read roots from a file, one per line
//
// Findings are suppressed in place with //ppalint:allow <analyzer>
// <reason>; see the internal/lint package documentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	// Under `go vet -vettool=ppalint` the go command probes the tool
	// with -V=full and -flags (JSON flag definitions), then invokes it
	// once per package with a single *.cfg argument. Everything else
	// is a human at a shell.
	for _, a := range os.Args[1:] {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(lint.Analyzers()...) // never returns
		}
	}

	var (
		list      = flag.Bool("list", false, "list the registered analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit diagnostics as JSON (go vet -json passthrough)")
		github    = flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations and exit 1 if any")
		roots     = flag.String("roots", "", "override the detclose determinism roots (comma-separated specs)")
		rootsFile = flag.String("roots-file", "", "read detclose roots from a file: one spec per line, # comments")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ppalint [-list] [-json] [-github] [-roots=specs] [-roots-file=path] [packages]\n\n"+
			"Runs the ppalint determinism & safety analyzers over the given\n"+
			"package patterns (default ./...) by driving go vet -vettool with\n"+
			"itself as the tool. Equivalent to:\n\n"+
			"\tgo vet -vettool=$(which ppalint) [packages]\n\n"+
			"A root spec is pkg/path.Func or pkg/path.(*Type).Method; the detclose\n"+
			"analyzer verifies the transitive call closure of every root reaches no\n"+
			"function tainted by wall-clock reads, global randomness, map-order\n"+
			"folds or unordered float accumulation.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-13s %s\n", a.Name, doc)
		}
		return
	}

	rootSpecs, err := gatherRoots(*roots, *rootsFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppalint: %v\n", err)
		os.Exit(2)
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppalint: locating own binary: %v\n", err)
		os.Exit(2)
	}
	args := []string{"vet", "-vettool=" + self}
	if rootSpecs != "" {
		// go vet accepts the tool's analyzer flags (it learns them from
		// the -flags probe) and forwards them to every invocation.
		args = append(args, "-detclose.roots="+rootSpecs)
	}
	if *jsonOut || *github {
		args = append(args, "-json")
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args = append(args, patterns...)

	cmd := exec.Command("go", args...)
	if *github {
		out, runErr := cmd.CombinedOutput()
		n := emitGitHubAnnotations(string(out))
		if n > 0 {
			fmt.Fprintf(os.Stderr, "ppalint: %d finding(s)\n", n)
			os.Exit(1)
		}
		if runErr != nil {
			// vet failed without parseable findings (build error, bad
			// flags): surface its raw output.
			os.Stderr.Write(out)
			if ee, ok := runErr.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			os.Exit(2)
		}
		return
	}
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ppalint: running go vet: %v\n", err)
		os.Exit(2)
	}
}

// gatherRoots merges the -roots flag with the -roots-file contents
// (one spec per line, blank lines and # comments skipped) into one
// comma-separated value for detclose.
func gatherRoots(flagVal, file string) (string, error) {
	var specs []string
	for _, s := range strings.Split(flagVal, ",") {
		if s = strings.TrimSpace(s); s != "" {
			specs = append(specs, s)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return "", fmt.Errorf("reading roots file: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			specs = append(specs, line)
		}
		if len(specs) == 0 {
			return "", fmt.Errorf("roots file %s declares no roots", file)
		}
	}
	return strings.Join(specs, ","), nil
}

// vetDiag is one diagnostic in go vet -json output, which has the
// shape {"<pkg>": {"<analyzer>": [{"posn": "file:line:col", "message": ...}]}}
// per package, the JSON objects separated by # comment lines.
type vetDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// annotation is one finding rendered for GitHub Actions.
type annotation struct {
	file     string
	line     int
	col      int
	analyzer string
	message  string
}

// emitGitHubAnnotations parses go vet -json output and prints one
// ::error workflow command per finding, in deterministic order.
// Returns the number of findings.
func emitGitHubAnnotations(out string) int {
	cwd, _ := os.Getwd()
	var anns []annotation
	for _, obj := range jsonObjects(out) {
		var perPkg map[string]map[string][]vetDiag
		if json.Unmarshal([]byte(obj), &perPkg) != nil {
			continue
		}
		for _, pkg := range sortedKeys(perPkg) {
			for _, analyzer := range sortedKeys(perPkg[pkg]) {
				for _, d := range perPkg[pkg][analyzer] {
					file, line, col := splitPosn(d.Posn)
					if cwd != "" {
						file = strings.TrimPrefix(file, cwd+string(os.PathSeparator))
					}
					anns = append(anns, annotation{file: file, line: line, col: col, analyzer: analyzer, message: d.Message})
				}
			}
		}
	}
	sort.Slice(anns, func(i, j int) bool {
		a, b := anns[i], anns[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, a := range anns {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=ppalint(%s)::%s\n",
			a.file, a.line, a.col, a.analyzer, escapeAnnotation(a.message))
	}
	return len(anns)
}

// jsonObjects extracts the top-level JSON objects from vet output:
// each starts with "{" at column zero and ends with "}" at column
// zero; "#" comment lines separate packages.
func jsonObjects(out string) []string {
	var objs []string
	var cur strings.Builder
	in := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case !in && strings.HasPrefix(line, "{"):
			in = true
			cur.WriteString(line)
			cur.WriteByte('\n')
		case in:
			cur.WriteString(line)
			cur.WriteByte('\n')
			if strings.HasPrefix(line, "}") {
				objs = append(objs, cur.String())
				cur.Reset()
				in = false
			}
		}
	}
	return objs
}

// sortedKeys returns m's keys sorted — map iteration order must not
// leak into the annotation stream.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// splitPosn parses "file:line:col" from the right, so file paths with
// colons survive.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}

// escapeAnnotation escapes a message for the GitHub workflow-command
// data section.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
