// Command ppasim runs one failure/recovery scenario on the synthetic
// recovery-efficiency topology of §VI-A (Fig. 6) and prints per-task
// recovery latencies — the building block of Figs. 7, 8 and 10.
//
// Usage:
//
//	ppasim -technique checkpoint -ckpt 15 -rate 2000 -window 30 -failure correlated
//	ppasim -technique active -trim 5 -failure single
//	ppasim -technique storm -window 10
//	ppasim -technique ppa -fraction 0.5 -ckpt 5 -failure correlated
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		technique = flag.String("technique", "checkpoint", "fault tolerance: checkpoint, active, storm, ppa")
		rate      = flag.Int("rate", 1000, "source rate per task (tuples/s)")
		window    = flag.Int("window", 30, "sliding window length in batches/seconds")
		ckpt      = flag.Float64("ckpt", 15, "checkpoint interval (s)")
		trim      = flag.Float64("trim", 5, "replica trim/sync interval (s)")
		fraction  = flag.Float64("fraction", 0.5, "actively replicated fraction for -technique ppa")
		failure   = flag.String("failure", "single", "failure mode: single or correlated")
		failAt    = flag.Float64("fail-at", 45.2, "failure injection time (virtual s)")
		horizon   = flag.Float64("horizon", 300, "simulation horizon (virtual s)")
		tentative = flag.Bool("tentative", false, "fabricate punctuations for tentative outputs")
	)
	flag.Parse()

	f, err := queries.NewFig6(queries.Fig6Params{RatePerTask: *rate, WindowBatches: *window})
	if err != nil {
		fatal(err)
	}
	cfg := engine.Config{
		WindowBatches:       *window,
		ReplicaTrimInterval: sim.Time(*trim),
		TentativeOutputs:    *tentative,
	}
	var strategies []engine.Strategy
	switch *technique {
	case "checkpoint":
		cfg.CheckpointInterval = sim.Time(*ckpt)
		strategies = f.Strategies(engine.StrategyCheckpoint, nil)
	case "active":
		cfg.CheckpointInterval = sim.Time(*ckpt)
		strategies = f.Strategies(engine.StrategyCheckpoint, f.SyntheticTasks)
	case "storm":
		strategies = f.Strategies(engine.StrategySourceReplay, nil)
	case "ppa":
		cfg.CheckpointInterval = sim.Time(*ckpt)
		want := int(*fraction*float64(len(f.SyntheticTasks)) + 0.5)
		var active []topology.TaskID
		for i := 0; i < len(f.SyntheticTasks) && len(active) < want; i += 2 {
			active = append(active, f.SyntheticTasks[i])
		}
		for i := 1; i < len(f.SyntheticTasks) && len(active) < want; i += 2 {
			active = append(active, f.SyntheticTasks[i])
		}
		strategies = f.Strategies(engine.StrategyCheckpoint, active)
	default:
		fatal(fmt.Errorf("unknown technique %q", *technique))
	}

	e, err := engine.New(f.Setup(cfg, strategies))
	if err != nil {
		fatal(err)
	}
	switch *failure {
	case "single":
		e.ScheduleNodeFailure(f.SyntheticNodes[8], sim.Time(*failAt)) // an O2 node
	case "correlated":
		for _, n := range f.SyntheticNodes {
			e.ScheduleNodeFailure(n, sim.Time(*failAt))
		}
	default:
		fatal(fmt.Errorf("unknown failure mode %q", *failure))
	}
	e.Run(sim.Time(*horizon))

	fmt.Printf("technique=%s rate=%d window=%ds failure=%s\n", *technique, *rate, *window, *failure)
	stats := e.RecoveryStats()
	if len(stats) == 0 {
		fmt.Println("no failures recorded")
		return
	}
	var worst sim.Time
	for _, st := range stats {
		task := e.Topology().Tasks[st.Task]
		name := fmt.Sprintf("%s[%d]", e.Topology().Ops[task.Op].Name, task.Index)
		if !st.Recovered {
			fmt.Printf("  task %-8s strategy=%-13s NOT RECOVERED by horizon\n", name, st.Strategy)
			continue
		}
		fmt.Printf("  task %-8s strategy=%-13s detected=%7.2fs recovered=%7.2fs latency=%6.2fs\n",
			name, st.Strategy, float64(st.DetectedAt), float64(st.RecoveredAt), float64(st.Latency()))
		if st.Latency() > worst {
			worst = st.Latency()
		}
	}
	fmt.Printf("overall recovery latency: %.2fs\n", float64(worst))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppasim:", err)
	os.Exit(1)
}
