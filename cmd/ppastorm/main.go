// Command ppastorm runs Monte-Carlo failure campaigns: thousands of
// seeded correlated-failure scenarios (single node, k-of-rack bursts,
// whole-domain outages, cascading multi-domain failures) simulated in
// parallel against PPA plans, with recovery-latency, output-loss and
// answer-quality (tentative fraction, corrected fraction,
// time-to-correction) distributions aggregated per planner × topology ×
// burst model. -tentative=false disables the tentative/correction
// pipeline and zeroes the quality columns.
//
// Usage:
//
//	ppastorm -scenarios 1000 -planners sa,greedy
//	ppastorm -topos small,medium,large -models domain,cascade -format csv
//	ppastorm -scenarios 200 -correlation 0.8 -format json -o sweep.json
//	ppastorm -placement anti-affinity,round-robin -planners sa,sa-corr
//	ppastorm -scenarios 500 -cpuprofile cpu.out -memprofile mem.out
//	ppastorm -scenarios 1000000 -progress -results scenarios.csv -shards 16
//	ppastorm -role coordinator -workers-proc 4 -scenarios 100000
//	ppastorm -role coordinator -listen :7077 -workers-proc 2
//	ppastorm -role worker -connect host:7077
//
// Sweeping -placement and the *-corr planners prints a head-to-head
// table: domain-blind round-robin replica placement vs rack
// anti-affinity, and the worst-case objective vs the correlation-aware
// one.
//
// Aggregation streams: scenario results fold into mergeable quantile
// sketches in scenario order (sharded by scenario index mod -shards),
// so memory stays flat however many scenarios run — million-scenario
// sweeps are a matter of wall clock, not RAM. For a fixed seed and
// shard count the summary is bit-identical at any -workers. -results
// streams one row per scenario (CSV, or JSON lines when the path ends
// in .json/.jsonl) as the sweep runs; -progress keeps a live count on
// stderr.
//
// -cpuprofile / -memprofile write pprof profiles of the sweep, so
// campaign hot spots can be inspected with `go tool pprof` without a
// throwaway harness.
//
// -role distributes the sweep across processes. A coordinator
// (-role coordinator) spawns -workers-proc local worker processes —
// or, with -listen, waits for -workers-proc remote workers started
// with -role worker -connect — then runs every sweep cell through the
// pool: each campaign is shipped as a self-contained spec (scenarios
// are regenerated from seeds, never transferred), shard-aligned
// scenario ranges are farmed out and their serialised sketch states
// merged, so the output is bit-identical to the single-process run
// for the same -seed and -shards. Workers that die mid-sweep have
// their ranges reassigned to survivors. -results and -progress need
// the per-scenario stream and are single-process only.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/sim"
)

// row is one aggregated sweep cell.
type row struct {
	Topology    string `json:"topology"`
	Planner     string `json:"planner"`
	Placement   string `json:"placement"`
	Model       string `json:"model"`
	Scenarios   int    `json:"scenarios"`
	Unrecovered int    `json:"unrecovered"`
	// ESS is the effective sample size of the cell's loss estimate
	// (campaign.Summary.ESS): equal to Scenarios for plain Monte-Carlo,
	// above it under a well-tilted importance sampler.
	ESS float64 `json:"effective_samples"`
	// StopReason is "early-stop" when the cell halted under -ci-tol,
	// "exhausted" when it ran its full scenario list.
	StopReason  string        `json:"stop_reason"`
	Latency     campaign.Dist `json:"latency_s"`
	Loss        campaign.Dist `json:"output_loss"`
	FailedTasks campaign.Dist `json:"failed_tasks"`
	// Tentative and Corrected summarise the answer-quality axis: the
	// per-scenario fraction of sink tuples first emitted tentative, and
	// the fraction of tentative sink batches corrected by the horizon.
	Tentative campaign.Dist `json:"tentative_fraction"`
	Corrected campaign.Dist `json:"corrected_fraction"`
	// TimeToCorrection pools the per-batch correction delays (seconds)
	// over every scenario of the cell.
	TimeToCorrection campaign.Dist `json:"time_to_correction_s"`
	Baseline         int           `json:"baseline_sink_tuples"`
	Wall             float64       `json:"wall_seconds"`
}

// scenarioRow is one streamed per-scenario record: the sweep cell it
// belongs to plus the scenario's own outcome. Written as the sweep
// runs, so -results files grow with the campaign instead of a
// post-hoc dump of retained results.
type scenarioRow struct {
	Topology      string  `json:"topology"`
	Planner       string  `json:"planner"`
	Placement     string  `json:"placement"`
	Model         string  `json:"model"`
	Scenario      int     `json:"scenario"`
	Label         string  `json:"label"`
	FailedTasks   int     `json:"failed_tasks"`
	Recovered     bool    `json:"recovered"`
	LatencyS      float64 `json:"latency_s"`
	SinkTuples    int     `json:"sink_tuples"`
	OutputLoss    float64 `json:"output_loss"`
	TentativeFrac float64 `json:"tentative_frac"`
	CorrectedFrac float64 `json:"corrected_frac"`
	Corrections   int     `json:"corrections"`
}

var scenarioHeader = []string{
	"topology", "planner", "placement", "model", "scenario", "label",
	"failed_tasks", "recovered", "latency_s", "sink_tuples", "output_loss",
	"tentative_frac", "corrected_frac", "corrections",
}

// resultSink streams scenario rows to a file. CSV by default; JSON
// lines when the path ends in .json/.jsonl. Writes go through one
// bufio.Writer shared by every sweep cell, flushed per cell, so a
// million-scenario sweep performs large sequential writes and retains
// nothing. The first write error latches and silences later writes;
// callers check err() once per cell.
type resultSink struct {
	f       *os.File
	bw      *bufio.Writer
	cw      *csv.Writer // CSV mode
	enc     *json.Encoder
	lastErr error
}

func newResultSink(path string) (*resultSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &resultSink{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	if strings.HasSuffix(path, ".json") || strings.HasSuffix(path, ".jsonl") {
		s.enc = json.NewEncoder(s.bw)
	} else {
		s.cw = csv.NewWriter(s.bw)
		if err := s.cw.Write(scenarioHeader); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *resultSink) write(r *scenarioRow) {
	if s.lastErr != nil {
		return
	}
	if s.enc != nil {
		s.lastErr = s.enc.Encode(r)
		return
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	s.lastErr = s.cw.Write([]string{
		r.Topology, r.Planner, r.Placement, r.Model,
		strconv.Itoa(r.Scenario), r.Label,
		strconv.Itoa(r.FailedTasks), strconv.FormatBool(r.Recovered),
		f(r.LatencyS), strconv.Itoa(r.SinkTuples), f(r.OutputLoss),
		f(r.TentativeFrac), f(r.CorrectedFrac), strconv.Itoa(r.Corrections),
	})
}

// err flushes buffered rows and reports the first error seen.
func (s *resultSink) err() error {
	if s.lastErr != nil {
		return s.lastErr
	}
	if s.cw != nil {
		s.cw.Flush()
		if err := s.cw.Error(); err != nil {
			s.lastErr = err
			return err
		}
	}
	s.lastErr = s.bw.Flush()
	return s.lastErr
}

func (s *resultSink) close() error {
	werr := s.err()
	cerr := s.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// progressMeter keeps a live sweep-cell progress line on stderr,
// throttled to at most one repaint per 200ms (checked every 1000
// results so the hot path stays a counter increment).
type progressMeter struct {
	label string
	total int
	n     int
	start time.Time
	last  time.Time
}

func newProgressMeter(label string, total int) *progressMeter {
	now := time.Now()
	return &progressMeter{label: label, total: total, start: now, last: now}
}

func (p *progressMeter) tick() {
	p.n++
	if p.n%1000 != 0 {
		return
	}
	if now := time.Now(); now.Sub(p.last) >= 200*time.Millisecond {
		p.last = now
		p.print()
	}
}

func (p *progressMeter) print() {
	rate := float64(p.n) / time.Since(p.start).Seconds()
	fmt.Fprintf(os.Stderr, "\r%s: %d/%d scenarios (%.0f/s)", p.label, p.n, p.total, rate)
}

// done paints the final progress line, annotated with the cell's
// effective sample size and how it ended (early-stop under -ci-tol vs
// exhausting its scenario list).
func (p *progressMeter) done(ess float64, reason string) {
	p.print()
	fmt.Fprintf(os.Stderr, " ess=%.0f %s\n", ess, reason)
}

// stopReason names how a campaign cell ended: halted by the CI-driven
// stop rule, or ran its full scenario list.
func stopReason(rep *campaign.Report) string {
	if rep.Stopped {
		return "early-stop"
	}
	return "exhausted"
}

// pairedKey identifies one head-to-head comparison; the placement axis
// is the pair itself.
type pairedKey struct{ topo, planner, model string }

// pairedCell pairs one metric stream per axis: per-scenario output
// loss and worst-task recovery latency.
type pairedCell struct {
	loss, lat *campaign.Paired
}

// pairedSet accumulates the CRN placement head-to-head: anti-affinity
// is the base cell, round-robin the other, paired by scenario index.
// Only meaningful under -crn (both cells replay identical draws).
type pairedSet struct {
	enabled bool
	cells   map[pairedKey]*pairedCell
	order   []pairedKey
}

func newPairedSet(enabled bool) *pairedSet {
	return &pairedSet{enabled: enabled, cells: map[pairedKey]*pairedCell{}}
}

// observer returns the per-result callback feeding one sweep cell into
// its pair, or nil when pairing is off or the placement is not part of
// the anti-affinity/round-robin comparison.
func (ps *pairedSet) observer(topo, planner, placement, model string, n int) func(campaign.ScenarioResult) {
	if !ps.enabled {
		return nil
	}
	var base bool
	switch placement {
	case "anti-affinity":
		base = true
	case "round-robin":
		base = false
	default:
		return nil
	}
	k := pairedKey{topo, planner, model}
	c := ps.cells[k]
	if c == nil {
		c = &pairedCell{loss: campaign.NewPaired(n), lat: campaign.NewPaired(n)}
		ps.cells[k] = c
		ps.order = append(ps.order, k)
	}
	if base {
		return func(r campaign.ScenarioResult) {
			c.loss.ObserveBase(r.Scenario.Index, r.OutputLoss)
			c.lat.ObserveBase(r.Scenario.Index, float64(r.WorstLatency))
		}
	}
	return func(r campaign.ScenarioResult) {
		c.loss.ObserveOther(r.Scenario.Index, r.OutputLoss)
		c.lat.ObserveOther(r.Scenario.Index, float64(r.WorstLatency))
	}
}

// writeTo appends the paired-difference table: per (topo, planner,
// model), the per-scenario delta (round-robin − anti-affinity) of the
// output loss (p95 with order-statistic CI, mean with paired-t CI) and
// the recovery latency (mean with paired-t CI). Because the deltas are
// paired on common random numbers, these intervals are far narrower
// than differencing two independent cells' summaries.
func (ps *pairedSet) writeTo(w io.Writer) {
	printed := false
	for _, k := range ps.order {
		c := ps.cells[k]
		ls, lt := c.loss.Summary(), c.lat.Summary()
		if ls.N == 0 {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "\nCRN-paired deltas (round-robin − anti-affinity, 95%% CIs):\n")
			fmt.Fprintf(w, "  %-8s %-14s %-10s %6s | %8s %9s | %8s %9s | %8s %9s\n",
				"topo", "planner", "model", "pairs",
				"dp95loss", "±ci", "dloss", "±ci", "dlat_s", "±ci")
			printed = true
		}
		fmt.Fprintf(w, "  %-8s %-14s %-10s %6d | %8.4f %9.4f | %8.4f %9.4f | %8.3f %9.3f\n",
			k.topo, k.planner, k.model, ls.N,
			ls.DeltaP95, ls.DeltaP95CI, ls.MeanDelta, ls.MeanCI, lt.MeanDelta, lt.MeanCI)
	}
}

func main() {
	var (
		topos       = flag.String("topos", "medium", "comma-separated topology presets: small, medium, large")
		topoSeed    = flag.Int64("topo-seed", 1, "random-topology generation seed")
		planners    = flag.String("planners", "sa,greedy", "comma-separated plan-registry planners; \"none\" = checkpoint only")
		placements  = flag.String("placement", "anti-affinity", "comma-separated replica placement policies: anti-affinity, round-robin")
		fraction    = flag.Float64("fraction", 0.3, "actively replicated fraction of tasks")
		tentative   = flag.Bool("tentative", true, "enable tentative outputs + post-recovery corrections (answer-quality metrics)")
		models      = flag.String("models", "single,k-of-rack,domain,cascade", "comma-separated burst models")
		scenarios   = flag.Int("scenarios", 1000, "scenarios per sweep cell")
		seed        = flag.Int64("seed", 1, "campaign seed (scenario randomness)")
		correlation = flag.Float64("correlation", 0.5, "correlation strength in [0,1]")
		crn         = flag.Bool("crn", false, "generate scenarios from common-random-number substreams: every sweep cell replays bit-identical failure draws, enabling the paired head-to-head delta table")
		tilt        = flag.Float64("tilt", 0, "importance-sample rare cascades at tilted join probability 1-(1-p)^tilt (0 disables, otherwise >= 1); summaries are reweighted to the nominal correlation and report effective samples")
		ciTol       = flag.Float64("ci-tol", 0, "stop a cell early once the 95% CI half-width of its p95 output loss is at most this (0 disables)")
		failAt      = flag.Float64("fail-at", 30.5, "base failure-injection time (virtual s)")
		horizon     = flag.Float64("horizon", 150, "simulation horizon per scenario (virtual s)")
		workers     = flag.Int("workers", 0, "worker pool size; 0 = GOMAXPROCS, 1 = sequential")
		shards      = flag.Int("shards", 0, "summary reduction shards; 0 = default. Fixed seed + shards => bit-identical summaries at any -workers")
		results     = flag.String("results", "", "stream per-scenario rows to this file as the sweep runs (CSV, or JSON lines for .json/.jsonl)")
		progress    = flag.Bool("progress", false, "print a live per-cell progress line to stderr")
		format      = flag.String("format", "table", "output format: table, json, csv")
		out         = flag.String("o", "", "output file (default stdout)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof allocation profile of the sweep to this file")
		role        = flag.String("role", "", "process role: empty = single-process sweep, coordinator = distribute cells over a worker pool, worker = serve campaigns for a coordinator")
		workersProc = flag.Int("workers-proc", 2, "coordinator: worker processes to spawn (or, with -listen, remote workers to wait for)")
		listen      = flag.String("listen", "", "coordinator: accept remote workers on this TCP address instead of spawning local processes")
		connectTo   = flag.String("connect", "", "worker: dial the coordinator at this TCP address instead of serving stdin/stdout")
	)
	flag.Parse()

	if *role == "worker" {
		var err error
		if *connectTo != "" {
			err = coord.Connect(context.Background(), *connectTo, coord.WorkerOptions{})
		} else {
			err = coord.ServeWorker(context.Background(), os.Stdin, os.Stdout, coord.WorkerOptions{})
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	var pool *coord.Pool
	switch *role {
	case "":
	case "coordinator":
		if *results != "" || *progress {
			fatal(fmt.Errorf("-results and -progress stream per-scenario rows, which stay inside the worker processes; drop them or run without -role coordinator"))
		}
		if *workersProc < 1 {
			fatal(fmt.Errorf("-workers-proc must be at least 1, got %d", *workersProc))
		}
		pool = coord.NewPool(coord.PoolOptions{})
		defer pool.Close()
		if *listen != "" {
			ln, err := net.Listen("tcp", *listen)
			if err != nil {
				fatal(err)
			}
			defer ln.Close()
			fmt.Fprintf(os.Stderr, "ppastorm: waiting for %d workers on %s\n", *workersProc, ln.Addr())
			if err := pool.AcceptWorkers(ln, *workersProc); err != nil {
				fatal(err)
			}
		} else {
			exe, err := os.Executable()
			if err != nil {
				fatal(err)
			}
			for i := 0; i < *workersProc; i++ {
				if _, err := pool.AddProcess(exec.Command(exe, "-role", "worker")); err != nil {
					fatal(err)
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := pool.WaitReady(ctx, *workersProc); err != nil {
			cancel()
			fatal(fmt.Errorf("waiting for %d workers: %w", *workersProc, err))
		}
		cancel()
	default:
		fatal(fmt.Errorf("unknown -role %q (coordinator, worker)", *role))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	// Render into a buffer and write the destination file only after
	// the whole sweep succeeded, so a failing run never truncates the
	// results of a previous one.
	var buf bytes.Buffer
	w := io.Writer(os.Stdout)
	if *out != "" {
		w = &buf
	}

	var modelList []campaign.Model
	for _, s := range splitList(*models) {
		m, err := campaign.ParseModel(s)
		if err != nil {
			fatal(err)
		}
		modelList = append(modelList, m)
	}
	var placementList []cluster.PlacementPolicy
	for _, s := range splitList(*placements) {
		p, err := cluster.ParsePlacementPolicy(s)
		if err != nil {
			fatal(err)
		}
		placementList = append(placementList, p)
	}

	var sink *resultSink
	if *results != "" {
		s, err := newResultSink(*results)
		if err != nil {
			fatal(err)
		}
		sink = s
	}

	var rows []row
	// Paired CRN head-to-head: with -crn and both placement policies in
	// the sweep, per-scenario metrics of the anti-affinity (base) and
	// round-robin (other) cells are paired by scenario index, since CRN
	// makes both cells replay identical failure draws. Single-process
	// only — pairing needs the per-scenario stream.
	pairs := newPairedSet(*crn && pool == nil)
	// The failure-free baseline depends only on (topology, planner,
	// horizon) — not on placement or burst model — so one cached
	// baseline simulation serves every cell of a (topo, planner) sweep.
	// Distributed sweeps cache the coordinator-resolved sink volume the
	// same way and ship it with every later cell's spec.
	baselines := campaign.NewBaselineCache()
	distBaselines := map[string]int{}
	for _, topoName := range splitList(*topos) {
		topo, err := campaign.PresetTopology(topoName, *topoSeed)
		if err != nil {
			fatal(err)
		}
		for _, planner := range splitList(*planners) {
			name := planner
			if planner == "none" {
				planner = ""
			}
			// One env per planner: the replication plan is independent
			// of replica placement, so the placement sweep reuses it
			// via SetupFor instead of re-planning per policy. The
			// failure-free baseline is likewise placement-independent
			// and shared across placements and models. A coordinator
			// never builds the env — workers rebuild it from each
			// cell's wire spec.
			var env *campaign.Env
			var sample *cluster.Cluster
			if pool == nil {
				e, err := campaign.NewEnv(campaign.EnvSpec{
					Topo:      topo,
					Planner:   planner,
					Fraction:  *fraction,
					Tentative: *tentative,
				})
				if err != nil {
					fatal(err)
				}
				env = e
				sample, err = env.Cluster()
				if err != nil {
					fatal(err)
				}
			}
			baseKey := topoName + "/" + name
			for _, placement := range placementList {
				for _, model := range modelList {
					gen := campaign.GenSpec{
						Seed:        *seed,
						Scenarios:   *scenarios,
						Model:       model,
						FailAt:      campaign.Ptr(sim.Time(*failAt)),
						Correlation: *correlation,
						CRN:         *crn,
						Tilt:        *tilt,
					}
					var rep *campaign.Report
					start := time.Now()
					if pool != nil {
						wire, err := campaign.NewWireSpec(campaign.EnvSpec{
							Topo:      topo,
							Planner:   planner,
							Fraction:  *fraction,
							Placement: placement,
							Tentative: *tentative,
						}, []campaign.GenSpec{gen})
						if err != nil {
							fatal(err)
						}
						wire.Horizon = sim.Time(*horizon)
						wire.Workers = *workers
						wire.Shards = *shards
						wire.Baseline = distBaselines[baseKey]
						wire.StopTol = *ciTol
						rep, err = pool.RunJob(context.Background(), wire)
						if err != nil {
							fatal(err)
						}
						distBaselines[baseKey] = rep.BaselineSinkTuples
					} else {
						scs, err := campaign.Generate(sample, gen)
						if err != nil {
							fatal(err)
						}
						cellTopo, cellPlanner := topoName, name
						cellPlacement, cellModel := placement.String(), model.String()
						var meter *progressMeter
						if *progress {
							meter = newProgressMeter(
								cellTopo+"/"+cellPlanner+"/"+cellPlacement+"/"+cellModel, len(scs))
						}
						cfg := campaign.Config{
							Setup:       env.SetupFor(placement),
							Scenarios:   scs,
							Horizon:     sim.Time(*horizon),
							Workers:     *workers,
							Shards:      *shards,
							Baselines:   baselines,
							BaselineKey: baseKey,
							StopTol:     *ciTol,
						}
						pairObs := pairs.observer(cellTopo, cellPlanner, cellPlacement, cellModel, len(scs))
						if sink != nil || meter != nil || pairObs != nil {
							cfg.OnResult = func(r campaign.ScenarioResult) {
								if sink != nil {
									sink.write(&scenarioRow{
										Topology:      cellTopo,
										Planner:       cellPlanner,
										Placement:     cellPlacement,
										Model:         cellModel,
										Scenario:      r.Scenario.Index,
										Label:         r.Scenario.Label,
										FailedTasks:   r.FailedTasks,
										Recovered:     r.Recovered,
										LatencyS:      float64(r.WorstLatency),
										SinkTuples:    r.SinkTuples,
										OutputLoss:    r.OutputLoss,
										TentativeFrac: r.TentativeFrac,
										CorrectedFrac: r.CorrectedFrac,
										Corrections:   len(r.CorrectionDelays),
									})
								}
								if pairObs != nil {
									pairObs(r)
								}
								if meter != nil {
									meter.tick()
								}
							}
						}
						rep, err = campaign.Run(cfg)
						if err != nil {
							fatal(err)
						}
						if meter != nil {
							meter.done(rep.Summary.ESS, stopReason(rep))
						}
						if sink != nil {
							if err := sink.err(); err != nil {
								fatal(fmt.Errorf("writing %s: %w", *results, err))
							}
						}
					}
					rows = append(rows, row{
						Topology:         topoName,
						Planner:          name,
						Placement:        placement.String(),
						Model:            model.String(),
						Scenarios:        rep.Summary.Scenarios,
						Unrecovered:      rep.Summary.Unrecovered,
						ESS:              rep.Summary.ESS,
						StopReason:       stopReason(rep),
						Latency:          rep.Summary.Latency,
						Loss:             rep.Summary.Loss,
						FailedTasks:      rep.Summary.FailedTasks,
						Tentative:        rep.Summary.TentativeFrac,
						Corrected:        rep.Summary.CorrectedFrac,
						TimeToCorrection: rep.Summary.TimeToCorrection,
						Baseline:         rep.BaselineSinkTuples,
						Wall:             time.Since(start).Seconds(),
					})
				}
			}
		}
	}

	if sink != nil {
		if err := sink.close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *results, err))
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fatal(err)
		}
	case "csv":
		if err := writeCSV(w, rows); err != nil {
			fatal(err)
		}
	case "table":
		writeTable(w, rows)
		pairs.writeTo(w)
	default:
		fatal(fmt.Errorf("unknown format %q (table, json, csv)", *format))
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

var csvHeader = []string{
	"topology", "planner", "placement", "model", "scenarios", "unrecovered",
	"effective_samples", "stop_reason",
	"latency_mean_s", "latency_p50_s", "latency_p95_s", "latency_p99_s", "latency_max_s",
	"loss_mean", "loss_p95", "failed_tasks_mean", "failed_tasks_max",
	"tentative_frac_mean", "corrected_frac_mean", "t2c_p50_s", "t2c_p95_s",
	"baseline_sink_tuples", "wall_seconds",
}

func writeCSV(w io.Writer, rows []row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, r := range rows {
		rec := []string{
			r.Topology, r.Planner, r.Placement, r.Model,
			strconv.Itoa(r.Scenarios), strconv.Itoa(r.Unrecovered),
			f(r.ESS), r.StopReason,
			f(r.Latency.Mean), f(r.Latency.P50), f(r.Latency.P95), f(r.Latency.P99), f(r.Latency.Max),
			f(r.Loss.Mean), f(r.Loss.P95), f(r.FailedTasks.Mean), f(r.FailedTasks.Max),
			f(r.Tentative.Mean), f(r.Corrected.Mean), f(r.TimeToCorrection.P50), f(r.TimeToCorrection.P95),
			strconv.Itoa(r.Baseline), f(r.Wall),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeTable(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-8s %-14s %-13s %-10s %6s %6s %8s %-10s | %8s %8s %8s %8s | %8s %8s %6s | %6s %6s %7s\n",
		"topo", "planner", "placement", "model", "scen", "unrec", "ess", "stop",
		"mean_s", "p50_s", "p95_s", "p99_s", "loss", "loss_p95", "tasks",
		"tent", "corr", "t2c_p95")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-14s %-13s %-10s %6d %6d %8.0f %-10s | %8.2f %8.2f %8.2f %8.2f | %8.4f %8.4f %6.1f | %6.4f %6.4f %7.2f\n",
			r.Topology, r.Planner, r.Placement, r.Model, r.Scenarios, r.Unrecovered, r.ESS, r.StopReason,
			r.Latency.Mean, r.Latency.P50, r.Latency.P95, r.Latency.P99,
			r.Loss.Mean, r.Loss.P95, r.FailedTasks.Mean,
			r.Tentative.Mean, r.Corrected.Mean, r.TimeToCorrection.P95)
	}
	writeHeadToHead(w, rows)
}

// writeHeadToHead appends the placement comparison: for every (topology,
// planner, model) cell that was swept under both anti-affinity and
// round-robin placement, the p95 output loss of the two policies side by
// side with the relative change. This is the headline number of the
// placement fix — a domain burst that kills a co-located replica under
// round-robin leaves an out-of-rack replica alive under anti-affinity.
func writeHeadToHead(w io.Writer, rows []row) {
	type cell struct{ topo, planner, model string }
	aa := map[cell]row{}
	rr := map[cell]row{}
	var order []cell
	for _, r := range rows {
		k := cell{r.Topology, r.Planner, r.Model}
		switch r.Placement {
		case "anti-affinity":
			if _, dup := aa[k]; !dup {
				aa[k] = r
				if _, other := rr[k]; !other {
					order = append(order, k)
				}
			}
		case "round-robin":
			if _, dup := rr[k]; !dup {
				rr[k] = r
				if _, other := aa[k]; !other {
					order = append(order, k)
				}
			}
		}
	}
	printed := false
	for _, k := range order {
		a, okA := aa[k]
		b, okB := rr[k]
		if !okA || !okB {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "\nhead-to-head p95 output loss (anti-affinity vs round-robin):\n")
			printed = true
		}
		delta := "n/a"
		if b.Loss.P95 > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(a.Loss.P95-b.Loss.P95)/b.Loss.P95)
		}
		fmt.Fprintf(w, "  %-8s %-14s %-10s  %8.4f vs %8.4f  (%s)\n",
			k.topo, k.planner, k.model, a.Loss.P95, b.Loss.P95, delta)
	}
}

func fatal(err error) {
	// os.Exit skips the deferred profile teardown in main: flush the
	// CPU profile here so a failed profiled sweep still leaves a
	// readable file. A no-op when profiling is off.
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, "ppastorm:", err)
	os.Exit(1)
}
