// Command ppabench regenerates the figures of the paper's evaluation
// section (§VI) and prints them as text tables. Run with -figure all
// (slow: every experiment) or a specific figure id.
//
// Usage:
//
//	ppabench -figure 8
//	ppabench -figure 14a -n 100
//	ppabench -figure all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure to regenerate: 7, 8, 9, 10, 12, 13, 14a, 14b, 14c, 14d, domains, all")
		n      = flag.Int("n", 100, "random topologies per Fig. 14 variant / scenarios per domain-sweep cell")
	)
	flag.Parse()

	type job struct {
		id  string
		run func() ([]experiments.Result, error)
	}
	one := func(f func() (experiments.Result, error)) func() ([]experiments.Result, error) {
		return func() ([]experiments.Result, error) {
			r, err := f()
			return []experiments.Result{r}, err
		}
	}
	jobs := []job{
		{"7", one(experiments.Fig7)},
		{"8", one(experiments.Fig8)},
		{"9", one(experiments.Fig9)},
		{"10", func() ([]experiments.Result, error) {
			a, err := experiments.Fig10(1000)
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig10(2000)
			if err != nil {
				return nil, err
			}
			return []experiments.Result{a, b}, nil
		}},
		{"12", func() ([]experiments.Result, error) {
			a, err := experiments.Fig12Q1()
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig12Q2()
			if err != nil {
				return nil, err
			}
			return []experiments.Result{a, b}, nil
		}},
		{"13", func() ([]experiments.Result, error) {
			a, err := experiments.Fig13Q1()
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig13Q2()
			if err != nil {
				return nil, err
			}
			return []experiments.Result{a, b}, nil
		}},
		{"14a", one(func() (experiments.Result, error) { return experiments.Fig14a(*n) })},
		{"14b", one(func() (experiments.Result, error) { return experiments.Fig14b(*n) })},
		{"14c", one(func() (experiments.Result, error) { return experiments.Fig14c(*n) })},
		{"14d", one(func() (experiments.Result, error) { return experiments.Fig14d(*n) })},
		{"domains", one(func() (experiments.Result, error) {
			return experiments.DomainSweep([]string{"sa", "sa-corr"}, nil, *n, 1)
		})},
	}

	ran := false
	for _, j := range jobs {
		if *figure != "all" && *figure != j.id {
			continue
		}
		ran = true
		results, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppabench: figure %s: %v\n", j.id, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println(r.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ppabench: unknown figure %q\n", *figure)
		os.Exit(1)
	}
}
