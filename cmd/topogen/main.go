// Command topogen emits random query topologies as JSON specs, using
// the §VI-C random topology generator of the paper. The output feeds
// directly into ppaplan.
//
// Usage:
//
//	topogen -seed 7 -min-ops 5 -max-ops 10 -skew 0.1 -join 0.5 > topo.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/randtopo"
	"repro/internal/topology"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "generator seed")
		minO = flag.Int("min-ops", 5, "minimum operator count")
		maxO = flag.Int("max-ops", 10, "maximum operator count")
		minP = flag.Int("min-par", 1, "minimum parallelisation degree")
		maxP = flag.Int("max-par", 10, "maximum parallelisation degree")
		skew = flag.Float64("skew", 0, "Zipf parameter of task workload skew (0 = uniform)")
		full = flag.Bool("full", false, "generate an all-Full topology instead of a structured one")
		join = flag.Float64("join", 0, "fraction of operators made correlated-input joins")
		rate = flag.Float64("rate", 1000, "source rate per task (tuples/s)")
	)
	flag.Parse()

	spec := randtopo.DefaultSpec(*seed)
	spec.MinOps, spec.MaxOps = *minO, *maxO
	spec.MinPar, spec.MaxPar = *minP, *maxP
	spec.Skew = *skew
	spec.Full = *full
	spec.JoinFraction = *join
	spec.SourceRate = *rate

	topo, err := randtopo.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if err := topology.WriteSpec(os.Stdout, topo); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}
