// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records: name, iterations,
// ns/op, B/op, allocs/op and any custom metrics (the figure drivers
// report values like "of" or "latency s" via b.ReportMetric). CI pipes
// the bench-smoke run through it to publish a BENCH_<sha>.json artifact,
// giving the repo a machine-readable perf trajectory across commits.
//
// With -check, benchjson additionally gates allocation regressions: it
// loads a committed baseline (a benchjson JSON file) and exits non-zero
// when a benchmark present in both runs reports more than -max-regress
// (default 0.20 = +20%) allocs/op over its baseline. Allocations are
// deterministic enough to gate in CI, unlike wall-clock ns/op. A
// baseline entry with a bytes_retained metric (live-heap growth, the
// peak-memory guard of the streaming campaign aggregation) is gated
// the same way, with 1 MiB of absolute slack on top of the relative
// limit so tiny GC-timing deltas on near-zero baselines don't flap.
// A baseline entry with an effective_samples/s metric additionally
// asserts effective_samples/s >= scenarios/s on the current run: the
// importance-sampled campaign benchmarks must deliver at least the
// statistical throughput of plain Monte-Carlo.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH_abc123.json
//	go test -bench=EngineHotPath -benchmem -benchtime=3x -run='^$' . | benchjson -check bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	check := flag.String("check", "", "baseline benchjson JSON file to gate allocs/op regressions against")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated relative allocs/op regression vs the -check baseline")
	flag.Parse()

	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *check != "" {
		if err := gate(records, *check, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// gate compares allocs/op and bytes_retained of the current records
// against the baseline file and fails on a regression beyond
// maxRegress. Benchmarks missing on either side are skipped (the
// baseline pins selected benchmarks, not the whole suite); a baseline
// entry without allocs/op carries no allocation gate, and one without
// a bytes_retained metric no retained-heap gate.
func gate(records []Record, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline []Record
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	current := make(map[string]Record, len(records))
	for _, r := range records {
		current[r.Name] = r
	}
	checked := 0
	for _, b := range baseline {
		r, ok := current[b.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp > 0 {
			checked++
			limit := b.AllocsPerOp * (1 + maxRegress)
			if r.AllocsPerOp > limit {
				return fmt.Errorf("%s allocs/op regressed: %.0f vs baseline %.0f (limit %.0f, +%.0f%%)",
					b.Name, r.AllocsPerOp, b.AllocsPerOp, limit, 100*(r.AllocsPerOp/b.AllocsPerOp-1))
			}
			fmt.Fprintf(os.Stderr, "benchjson: %s allocs/op %.0f within %.0f%% of baseline %.0f\n",
				b.Name, r.AllocsPerOp, 100*maxRegress, b.AllocsPerOp)
		}
		if base, gated := b.Metrics["bytes_retained"]; gated {
			checked++
			limit := base*(1+maxRegress) + 1<<20
			got := r.Metrics["bytes_retained"]
			if got > limit {
				return fmt.Errorf("%s bytes_retained regressed: %.0f vs baseline %.0f (limit %.0f)",
					b.Name, got, base, limit)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %s bytes_retained %.0f within limit %.0f (baseline %.0f)\n",
				b.Name, got, limit, base)
		}
		// A baseline entry carrying both throughput metrics asserts the
		// importance-sampling invariant: the effective-sample rate must
		// not fall below the raw scenario rate — a tilted campaign whose
		// ESS/s dropped under scenarios/s is burning simulation time on a
		// variance-increasing tilt. Gated against the current run's own
		// two metrics (both share the run's wall clock, so the comparison
		// is machine-independent); the tiny slack absorbs float noise.
		if _, gated := b.Metrics["effective_samples/s"]; gated {
			essRate, scRate := r.Metrics["effective_samples/s"], r.Metrics["scenarios/s"]
			if scRate > 0 {
				checked++
				if essRate < scRate*0.999 {
					return fmt.Errorf("%s effective_samples/s %.1f fell below scenarios/s %.1f: the tilt is increasing variance",
						b.Name, essRate, scRate)
				}
				fmt.Fprintf(os.Stderr, "benchjson: %s effective_samples/s %.1f >= scenarios/s %.1f\n",
					b.Name, essRate, scRate)
			}
		}
		// A baseline entry with a ci_width_ratio metric asserts the
		// common-random-numbers invariant: the paired delta CI must stay
		// at most half the width of the independent-campaigns CI (i.e.
		// CRN pairing reaches a target half-width with >= 4x fewer
		// scenarios). The campaigns are seeded and deterministic, so the
		// ratio is stable enough to gate well above the floor.
		if _, gated := b.Metrics["ci_width_ratio"]; gated {
			checked++
			got := r.Metrics["ci_width_ratio"]
			if got < 2 {
				return fmt.Errorf("%s ci_width_ratio %.2f below 2: CRN pairing lost its variance advantage",
					b.Name, got)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %s ci_width_ratio %.2f >= 2\n", b.Name, got)
		}
	}
	if checked == 0 {
		return fmt.Errorf("no benchmark in the run matched a gated baseline entry in %s", baselinePath)
	}
	return nil
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   12  3456 ns/op  78 B/op  9 allocs/op  0.95 of
//
// Non-benchmark lines (package headers, PASS/ok, skips) are ignored.
func parse(sc *bufio.Scanner) ([]Record, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	records := []Record{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX --- SKIP"
		}
		r := Record{Name: trimProcSuffix(fields[0]), Iterations: iters}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		records = append(records, r)
	}
	return records, sc.Err()
}

// trimProcSuffix drops the -GOMAXPROCS suffix Go appends to benchmark
// names, so records compare across machines with different core counts.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
