// Command ppaplan computes a partially active replication plan for a
// query topology given as a JSON spec (see internal/topology.Spec),
// printing the chosen tasks and the plan's predicted Output Fidelity
// and Internal Completeness. Any planner registered in the plan
// registry can be selected by name, including the portfolio
// meta-planner that races all of them.
//
// The *-corr planners (dp-corr, structured-corr, sa-corr) optimise the
// expected OF under a domain-correlated failure distribution instead of
// the worst-case single burst. ppaplan samples that distribution from
// the standard campaign cluster layout for the topology (all burst
// models, -corr-scenarios draws each, seeded by -corr-seed) before
// planning, and reports the expected OF alongside the worst-case
// metrics.
//
// Usage:
//
//	ppaplan -topology topo.json -planner sa -fraction 0.5
//	topogen -seed 7 | ppaplan -planner greedy -budget 10
//	topogen -seed 7 | ppaplan -planner portfolio
//	topogen -seed 7 | ppaplan -planner sa-corr -corr-scenarios 64
//	ppaplan -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/topology"
)

func main() {
	var (
		topoPath = flag.String("topology", "-", "topology spec JSON file ('-' for stdin)")
		planner  = flag.String("planner", "sa", "planner name (see -list)")
		algName  = flag.String("algorithm", "", "deprecated alias of -planner")
		budget   = flag.Int("budget", -1, "replication budget in tasks (overrides -fraction)")
		fraction = flag.Float64("fraction", 0.5, "replication budget as a fraction of the task count")
		corrScen = flag.Int("corr-scenarios", 24, "scenarios sampled per burst model for the *-corr planners")
		corrSeed = flag.Int64("corr-seed", 1, "seed of the correlation-distribution sampling")
		list     = flag.Bool("list", false, "list the registered planners and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.Planners(), "\n"))
		return
	}

	plannerSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "planner" {
			plannerSet = true
		}
	})
	name := *planner
	if *algName != "" {
		if plannerSet && *algName != *planner {
			fatal(fmt.Errorf("conflicting -planner %q and -algorithm %q", *planner, *algName))
		}
		name = *algName
	}

	in := os.Stdin
	if *topoPath != "-" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	topo, err := topology.ReadSpec(in)
	if err != nil {
		fatal(err)
	}

	mgr := core.NewManager(topo)
	corr := strings.HasSuffix(name, "-corr")
	if corr {
		if err := installCorrDistribution(mgr, topo, *corrScen, *corrSeed); err != nil {
			fatal(err)
		}
	}
	b := *budget
	if b < 0 {
		b = mgr.BudgetForFraction(*fraction)
	}
	res, err := mgr.PlanByName(name, b)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("topology: %d operators, %d tasks\n", topo.NumOps(), topo.NumTasks())
	fmt.Printf("planner: %s, budget: %d tasks\n", res.Planner, res.Budget)
	fmt.Printf("plan size: %d tasks\n", res.Plan.Size())
	fmt.Printf("predicted OF: %.4f\n", res.OF)
	fmt.Printf("predicted IC: %.4f\n", res.IC)
	if corr {
		fmt.Printf("expected OF under correlated bursts: %.4f\n", res.CorrOF)
	}
	fmt.Println("replicated tasks:")
	for _, id := range res.Plan.Tasks() {
		task := topo.Tasks[id]
		fmt.Printf("  task %3d = %s[%d]\n", id, topo.Ops[task.Op].Name, task.Index)
	}
}

// installCorrDistribution samples a domain-correlated task-failure
// distribution for the topology — the standard campaign cluster layout
// with round-robin primary placement, all burst models — and installs
// it on the manager's planning context.
func installCorrDistribution(mgr *core.Manager, topo *topology.Topology, scenarios int, seed int64) error {
	env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo})
	if err != nil {
		return err
	}
	c, err := env.Cluster()
	if err != nil {
		return err
	}
	sets, err := campaign.SampleTaskScenarios(c, campaign.GenSpec{
		Seed:        seed,
		Scenarios:   scenarios,
		Correlation: campaign.DefaultCorrelation,
	}, campaign.Models)
	if err != nil {
		return err
	}
	set, err := plan.NewScenarioSet(topo.NumTasks(), sets)
	if err != nil {
		return err
	}
	return mgr.SetScenarios(set)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppaplan:", err)
	os.Exit(1)
}
