// Command ppaplan computes a partially active replication plan for a
// query topology given as a JSON spec (see internal/topology.Spec),
// printing the chosen tasks and the plan's predicted Output Fidelity
// and Internal Completeness.
//
// Usage:
//
//	ppaplan -topology topo.json -algorithm sa -fraction 0.5
//	topogen -seed 7 | ppaplan -algorithm greedy -budget 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	var (
		topoPath = flag.String("topology", "-", "topology spec JSON file ('-' for stdin)")
		algName  = flag.String("algorithm", "sa", "planning algorithm: sa, dp, greedy, sa-ic")
		budget   = flag.Int("budget", -1, "replication budget in tasks (overrides -fraction)")
		fraction = flag.Float64("fraction", 0.5, "replication budget as a fraction of the task count")
	)
	flag.Parse()

	in := os.Stdin
	if *topoPath != "-" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	topo, err := topology.ReadSpec(in)
	if err != nil {
		fatal(err)
	}

	var alg core.Algorithm
	switch *algName {
	case "sa":
		alg = core.AlgorithmSA
	case "dp":
		alg = core.AlgorithmDP
	case "greedy":
		alg = core.AlgorithmGreedy
	case "sa-ic":
		alg = core.AlgorithmSAIC
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want sa, dp, greedy, sa-ic)", *algName))
	}

	mgr := core.NewManager(topo)
	b := *budget
	if b < 0 {
		b = mgr.BudgetForFraction(*fraction)
	}
	res, err := mgr.Plan(alg, b)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("topology: %d operators, %d tasks\n", topo.NumOps(), topo.NumTasks())
	fmt.Printf("algorithm: %s, budget: %d tasks\n", res.Algorithm, res.Budget)
	fmt.Printf("plan size: %d tasks\n", res.Plan.Size())
	fmt.Printf("predicted OF: %.4f\n", res.OF)
	fmt.Printf("predicted IC: %.4f\n", res.IC)
	fmt.Println("replicated tasks:")
	for _, id := range res.Plan.Tasks() {
		task := topo.Tasks[id]
		fmt.Printf("  task %3d = %s[%d]\n", id, topo.Ops[task.Op].Name, task.Index)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppaplan:", err)
	os.Exit(1)
}
