// Command ppaplan computes a partially active replication plan for a
// query topology given as a JSON spec (see internal/topology.Spec),
// printing the chosen tasks and the plan's predicted Output Fidelity
// and Internal Completeness. Any planner registered in the plan
// registry can be selected by name, including the portfolio
// meta-planner that races all of them.
//
// Usage:
//
//	ppaplan -topology topo.json -planner sa -fraction 0.5
//	topogen -seed 7 | ppaplan -planner greedy -budget 10
//	topogen -seed 7 | ppaplan -planner portfolio
//	ppaplan -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	var (
		topoPath = flag.String("topology", "-", "topology spec JSON file ('-' for stdin)")
		planner  = flag.String("planner", "sa", "planner name (see -list)")
		algName  = flag.String("algorithm", "", "deprecated alias of -planner")
		budget   = flag.Int("budget", -1, "replication budget in tasks (overrides -fraction)")
		fraction = flag.Float64("fraction", 0.5, "replication budget as a fraction of the task count")
		list     = flag.Bool("list", false, "list the registered planners and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.Planners(), "\n"))
		return
	}

	plannerSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "planner" {
			plannerSet = true
		}
	})
	name := *planner
	if *algName != "" {
		if plannerSet && *algName != *planner {
			fatal(fmt.Errorf("conflicting -planner %q and -algorithm %q", *planner, *algName))
		}
		name = *algName
	}

	in := os.Stdin
	if *topoPath != "-" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	topo, err := topology.ReadSpec(in)
	if err != nil {
		fatal(err)
	}

	mgr := core.NewManager(topo)
	b := *budget
	if b < 0 {
		b = mgr.BudgetForFraction(*fraction)
	}
	res, err := mgr.PlanByName(name, b)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("topology: %d operators, %d tasks\n", topo.NumOps(), topo.NumTasks())
	fmt.Printf("planner: %s, budget: %d tasks\n", res.Planner, res.Budget)
	fmt.Printf("plan size: %d tasks\n", res.Plan.Size())
	fmt.Printf("predicted OF: %.4f\n", res.OF)
	fmt.Printf("predicted IC: %.4f\n", res.IC)
	fmt.Println("replicated tasks:")
	for _, id := range res.Plan.Tasks() {
		task := topo.Tasks[id]
		fmt.Printf("  task %3d = %s[%d]\n", id, topo.Ops[task.Op].Name, task.Index)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppaplan:", err)
	os.Exit(1)
}
