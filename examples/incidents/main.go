// Incident-detection example (the paper's Q2): a community-navigation
// service joining a user-location stream with a user-reported incident
// stream to detect traffic jams in real time. The example demonstrates
// why join (correlated-input) operators make the IC metric mispredict
// tentative-output quality while OF stays accurate — the paper's
// Fig. 12(b) in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/topology"
)

func buildQ2() *queries.Q2 {
	q, err := queries.NewQ2(queries.Q2Params{
		Seed:      2016,
		LocTasks:  8,
		IncTasks:  2,
		JoinTasks: 4,
		Users:     20000,
		Segments:  200,
		LocRate:   4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func runQ2(q *queries.Q2, failed []topology.TaskID) []engine.SinkRecord {
	clus := cluster.New(q.Topo.NumTasks(), 4)
	if err := clus.PlaceRoundRobin(q.Topo); err != nil {
		log.Fatal(err)
	}
	strategies := make([]engine.Strategy, q.Topo.NumTasks())
	for _, id := range failed {
		strategies[id] = engine.StrategyNone
	}
	e, err := engine.New(engine.Setup{
		Topology:   q.Topo,
		Cluster:    clus,
		Config:     engine.Config{TentativeOutputs: true, HeartbeatInterval: 1, ProcRate: 1e7},
		Sources:    q.Sources(),
		Operators:  q.Operators(),
		Strategies: strategies,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(failed) > 0 {
		e.ScheduleTaskFailures(failed, 0.1)
	}
	e.Run(60)
	return e.SinkRecords()
}

func main() {
	q := buildQ2()
	fmt.Printf("Q2: traffic-jam detection join (%d operators, %d tasks; O3 is correlated-input)\n",
		q.Topo.NumOps(), q.Topo.NumTasks())

	base := runQ2(buildQ2(), nil)
	baseJams := queries.AllKeys(base)
	fmt.Printf("baseline detected %d jam incidents in 60s\n", len(baseJams))

	mgr := core.NewManager(q.Topo)
	frac := 0.4
	budget := mgr.BudgetForFraction(frac)

	fmt.Printf("\nplans at %.0f%% replication resources:\n", frac*100)
	for _, alg := range []core.Algorithm{core.AlgorithmSA, core.AlgorithmSAIC} {
		res, err := mgr.Plan(alg, budget)
		if err != nil {
			log.Fatal(err)
		}
		var failed []topology.TaskID
		for id := 0; id < q.Topo.NumTasks(); id++ {
			if !res.Plan.Has(topology.TaskID(id)) {
				failed = append(failed, topology.TaskID(id))
			}
		}
		recs := runQ2(buildQ2(), failed)
		acc := queries.SetAccuracy(queries.AllKeys(recs), baseJams)
		fmt.Printf("  %-9s predicted OF %.3f, predicted IC %.3f, actual accuracy %.3f\n",
			res.Algorithm, res.OF, res.IC, acc)
	}
	fmt.Println("\nThe IC-optimised plan reports high internal completeness but loses")
	fmt.Println("the join's incident side, so its actual accuracy collapses; OF models")
	fmt.Println("the input correlation and predicts the achievable accuracy (§VI-B).")
}
