// Campaign: sweep the correlated-failure space of one topology with a
// Monte-Carlo failure campaign — seeded rack/domain/cascade bursts run
// as independent simulations on a worker pool, with recovery-latency,
// output-loss and answer-quality (tentative fraction, corrected
// fraction, time-to-correction) distributions aggregated per burst
// model — then pit the default rack anti-affinity replica placement
// against the legacy domain-blind round-robin placement under
// whole-domain bursts.
package main

import (
	"fmt"
	"log"

	"repro/ppa"
)

func main() {
	// 1. The paper's §VI-C medium random topology, protected by a
	// structure-aware PPA plan covering 30% of the tasks. The campaign
	// environment sizes a cluster (2 primary tasks per node), lays out
	// failure domains (zones of racks, standby nodes spread across
	// racks) and computes the plan once.
	topo, err := ppa.PresetTopology("medium", 1)
	if err != nil {
		log.Fatal(err)
	}
	// Tentative enables the tentative-output/correction pipeline, so
	// the campaign also measures answer quality: how much output was
	// tentative during failures, and how quickly it was corrected.
	env, err := ppa.NewCampaignEnv(ppa.CampaignEnvSpec{Topo: topo, Planner: "sa", Tentative: true})
	if err != nil {
		log.Fatal(err)
	}
	clus, err := env.Cluster()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ops, %d tasks; cluster: %d nodes in %d racks\n",
		topo.NumOps(), topo.NumTasks(), len(clus.Nodes()), len(clus.DomainsOfKind("rack")))

	// 2. For each burst model, draw 100 seeded scenarios against the
	// failure-domain tree and run them in parallel. The same seed
	// always reproduces the same report, whatever the worker count.
	//
	// Aggregation streams: each result folds into mergeable quantile
	// sketches and is then discarded, so the campaign's memory footprint
	// is flat in the scenario count — this same loop handles a million
	// scenarios per model. Per-result access without retention goes
	// through OnResult, which observes every result in scenario order;
	// here it tallies the slowest recovery instead of keeping 100
	// results alive. (Set KeepResults to get rep.Results back.)
	for _, model := range ppa.BurstModels() {
		scenarios, err := ppa.GenerateScenarios(clus, ppa.ScenarioSpec{
			Seed:        42,
			Scenarios:   100,
			Model:       model,
			Correlation: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		var worst ppa.FailureScenario
		var worstLat ppa.Time
		rep, err := ppa.RunCampaign(ppa.CampaignConfig{
			Setup:     env.Setup,
			Scenarios: scenarios,
			Horizon:   150,
			OnResult: func(r ppa.CampaignResult) {
				if r.Recovered && r.WorstLatency > worstLat {
					worst, worstLat = r.Scenario, r.WorstLatency
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Summary
		fmt.Printf("%-10s latency mean=%5.2fs p95=%5.2fs p99=%5.2fs  loss mean=%.4f  blast mean=%.1f tasks  unrecovered=%d/%d\n",
			model, s.Latency.Mean, s.Latency.P95, s.Latency.P99,
			s.Loss.Mean, s.FailedTasks.Mean, s.Unrecovered, s.Scenarios)
		fmt.Printf("%-10s quality tentative mean=%.4f  corrected mean=%.4f  t2c p50=%5.2fs p95=%5.2fs\n",
			"", s.TentativeFrac.Mean, s.CorrectedFrac.Mean,
			s.TimeToCorrection.P50, s.TimeToCorrection.P95)
		fmt.Printf("%-10s slowest recovery: scenario %d (%s) at %.2fs\n",
			"", worst.Index, worst.Label, float64(worstLat))
	}

	// 3. Placement head-to-head: fully replicate the topology and run
	// the same whole-domain bursts under both replica placements. With
	// anti-affinity (the default) a replica never shares its primary's
	// rack, so the burst that kills the primary leaves the replica
	// alive and recovery is a fast take-over; round-robin can co-locate
	// the pair and falls back to checkpoint replay. The short horizon
	// catches the fallback mid-replay, so the co-location shows up as
	// output loss, not just latency.
	fmt.Println("\nplacement head-to-head (whole-domain bursts, full replication):")
	for _, placement := range []ppa.PlacementPolicy{ppa.PlacementAntiAffinity, ppa.PlacementRoundRobin} {
		env, err := ppa.NewCampaignEnv(ppa.CampaignEnvSpec{
			Topo: topo, Planner: "greedy", Fraction: 1.0, Placement: placement,
		})
		if err != nil {
			log.Fatal(err)
		}
		clus, err := env.Cluster()
		if err != nil {
			log.Fatal(err)
		}
		scenarios, err := ppa.GenerateScenarios(clus, ppa.ScenarioSpec{
			Seed: 42, Scenarios: 100, Model: ppa.BurstWholeDomain, Correlation: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := ppa.RunCampaign(ppa.CampaignConfig{Setup: env.Setup, Scenarios: scenarios, Horizon: 40})
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Summary
		fmt.Printf("%-14s latency p95=%5.2fs  loss p95=%.4f  unrecovered=%d/%d\n",
			placement, s.Latency.P95, s.Loss.P95, s.Unrecovered, s.Scenarios)
	}
}
