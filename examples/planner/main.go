// Planner example: compare the replication-plan optimisers (DP,
// structure-aware, greedy, and the portfolio that races all registered
// planners) on random query topologies of §VI-C — the paper's
// Fig. 13/14 story at example scale. The structure-aware algorithm
// tracks the optimum while the greedy baseline collapses at small
// replication budgets because it ignores MC-tree completeness; the
// portfolio is never worse than any single planner.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/randtopo"
)

func main() {
	spec := randtopo.DefaultSpec(99)
	spec.MinOps, spec.MaxOps = 4, 6
	spec.MinPar, spec.MaxPar = 1, 3
	spec.Skew = 0.5

	planners := []string{"dp", "sa", "greedy", "portfolio"}
	for i := 0; i < 3; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*17
		topo, err := randtopo.Generate(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("topology %d: %d operators, %d tasks\n", i+1, topo.NumOps(), topo.NumTasks())

		mgr := core.NewManager(topo)
		fmt.Printf("  %-10s", "resources")
		for _, name := range planners {
			fmt.Printf("%14s", name+"-OF")
		}
		fmt.Println()
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			budget := mgr.BudgetForFraction(frac)
			fmt.Printf("  %-10.2f", frac)
			for _, name := range planners {
				res, err := mgr.PlanByName(name, budget)
				if err != nil {
					// DP may exceed its search cap on some topologies.
					fmt.Printf("%14s", "n/a")
					continue
				}
				fmt.Printf("%14.3f", res.OF)
			}
			fmt.Println()
		}

		// Demonstrate dynamic plan adaptation (§V-C): growing the budget
		// reuses existing replicas and only activates the delta.
		small, err := mgr.PlanByName("sa", mgr.BudgetForFraction(0.25))
		if err != nil {
			log.Fatal(err)
		}
		large, err := mgr.PlanByName("sa", mgr.BudgetForFraction(0.5))
		if err != nil {
			log.Fatal(err)
		}
		activate, deactivate := core.Diff(small.Plan, large.Plan)
		fmt.Printf("  adapting 0.25 -> 0.50: start %d new replicas, stop %d\n\n",
			len(activate), len(deactivate))
	}

	// The MC-tree view of one topology, through the raw Planner
	// interface.
	topo, err := randtopo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	ctx := plan.NewContext(topo)
	g, err := plan.MustLookup("greedy").Plan(ctx, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy with budget 3 picks %v -> worst-case OF %.3f (no complete MC-tree)\n",
		g.Tasks(), ctx.OF(g))
}
