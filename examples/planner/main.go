// Planner example: compare the three replication-plan optimisers (DP,
// structure-aware, greedy) on random query topologies of §VI-C — the
// paper's Fig. 13/14 story at example scale. The structure-aware
// algorithm tracks the optimum while the greedy baseline collapses at
// small replication budgets because it ignores MC-tree completeness.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/randtopo"
)

func main() {
	spec := randtopo.DefaultSpec(99)
	spec.MinOps, spec.MaxOps = 4, 6
	spec.MinPar, spec.MaxPar = 1, 3
	spec.Skew = 0.5

	for i := 0; i < 3; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*17
		topo, err := randtopo.Generate(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("topology %d: %d operators, %d tasks\n", i+1, topo.NumOps(), topo.NumTasks())

		mgr := core.NewManager(topo)
		fmt.Printf("  %-10s", "resources")
		for _, alg := range []core.Algorithm{core.AlgorithmDP, core.AlgorithmSA, core.AlgorithmGreedy} {
			fmt.Printf("%12s", alg.String()+"-OF")
		}
		fmt.Println()
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			budget := mgr.BudgetForFraction(frac)
			fmt.Printf("  %-10.2f", frac)
			for _, alg := range []core.Algorithm{core.AlgorithmDP, core.AlgorithmSA, core.AlgorithmGreedy} {
				res, err := mgr.Plan(alg, budget)
				if err != nil {
					// DP may exceed its search cap on some topologies.
					fmt.Printf("%12s", "n/a")
					continue
				}
				fmt.Printf("%12.3f", res.OF)
			}
			fmt.Println()
		}

		// Demonstrate dynamic plan adaptation (§V-C): growing the budget
		// reuses existing replicas and only activates the delta.
		small, err := mgr.Plan(core.AlgorithmSA, mgr.BudgetForFraction(0.25))
		if err != nil {
			log.Fatal(err)
		}
		large, err := mgr.Plan(core.AlgorithmSA, mgr.BudgetForFraction(0.5))
		if err != nil {
			log.Fatal(err)
		}
		activate, deactivate := core.Diff(small.Plan, large.Plan)
		fmt.Printf("  adapting 0.25 -> 0.50: start %d new replicas, stop %d\n\n",
			len(activate), len(deactivate))
	}

	// The MC-tree view of one topology.
	topo, err := randtopo.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	ctx := plan.NewContext(topo)
	g := plan.Greedy(ctx, 3)
	fmt.Printf("greedy with budget 3 picks %v -> worst-case OF %.3f (no complete MC-tree)\n",
		g.Tasks(), ctx.OF(g))
}
