// Top-k example (the paper's Q1): a hierarchical top-100 aggregation
// over a synthetic WorldCup-style web access log. A worst-case
// correlated failure takes down every task outside the PPA plan, and
// the example compares the tentative top-k against the failure-free
// result, showing how the structure-aware plan preserves accuracy.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/topology"
)

func runQ1(q *queries.Q1, failed []topology.TaskID) []engine.SinkRecord {
	clus := cluster.New(q.Topo.NumTasks(), 4)
	if err := clus.PlaceRoundRobin(q.Topo); err != nil {
		log.Fatal(err)
	}
	strategies := make([]engine.Strategy, q.Topo.NumTasks())
	for _, id := range failed {
		strategies[id] = engine.StrategyNone
	}
	e, err := engine.New(engine.Setup{
		Topology:   q.Topo,
		Cluster:    clus,
		Config:     engine.Config{TentativeOutputs: true, HeartbeatInterval: 1, ProcRate: 1e7},
		Sources:    q.Sources(),
		Operators:  q.Operators(),
		Strategies: strategies,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(failed) > 0 {
		e.ScheduleTaskFailures(failed, 0.1)
	}
	e.Run(45)
	return e.SinkRecords()
}

func main() {
	build := func() *queries.Q1 {
		q, err := queries.NewQ1(queries.Q1Params{Seed: 2016, K: 100, WindowBatches: 20})
		if err != nil {
			log.Fatal(err)
		}
		return q
	}

	q := build()
	fmt.Printf("Q1: hierarchical top-100 over the access log (%d operators, %d tasks)\n",
		q.Topo.NumOps(), q.Topo.NumTasks())

	// Failure-free baseline.
	base := runQ1(build(), nil)
	baseKeys, lastBatch := queries.LastBatchKeys(base, -1)
	fmt.Printf("baseline: %d entries in the top-100 at batch %d\n", len(baseKeys), lastBatch)

	// PPA plan with 40% of the tasks actively replicated.
	mgr := core.NewManager(q.Topo)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		res, err := mgr.Plan(core.AlgorithmSA, mgr.BudgetForFraction(frac))
		if err != nil {
			log.Fatal(err)
		}
		// Worst-case correlated failure: everything outside the plan.
		var failed []topology.TaskID
		for id := 0; id < q.Topo.NumTasks(); id++ {
			if !res.Plan.Has(topology.TaskID(id)) {
				failed = append(failed, topology.TaskID(id))
			}
		}
		recs := runQ1(build(), failed)
		tentKeys, _ := queries.LastBatchKeys(recs, lastBatch)
		acc := queries.SetAccuracy(tentKeys, baseKeys)
		fmt.Printf("resources %.1f: predicted OF %.3f, tentative top-100 accuracy %.3f\n",
			frac, res.OF, acc)
	}

	// Show a sample of the surviving tentative ranking at 0.4.
	res, err := mgr.Plan(core.AlgorithmSA, mgr.BudgetForFraction(0.4))
	if err != nil {
		log.Fatal(err)
	}
	var failed []topology.TaskID
	for id := 0; id < q.Topo.NumTasks(); id++ {
		if !res.Plan.Has(topology.TaskID(id)) {
			failed = append(failed, topology.TaskID(id))
		}
	}
	recs := runQ1(build(), failed)
	tentKeys, _ := queries.LastBatchKeys(recs, lastBatch)
	var sample []string
	for k := range tentKeys {
		sample = append(sample, k)
	}
	sort.Strings(sample)
	if len(sample) > 5 {
		sample = sample[:5]
	}
	fmt.Printf("sample tentative entries at 0.4 resources: %v\n", sample)
}
