// Quickstart: build a small query topology, compute a PPA replication
// plan, run it on the engine, inject a correlated failure and watch the
// recovery — the end-to-end loop of the PPA framework.
package main

import (
	"fmt"
	"log"

	"repro/ppa"
)

func main() {
	// 1. A 3-operator aggregation pipeline: 4 source tasks feeding 2
	// window aggregators feeding a single global aggregator.
	b := ppa.NewBuilder()
	src := b.AddSource("events", 4, 1000) // 1000 tuples/s per task
	agg := b.AddOperator("window-agg", 2, ppa.Independent, 0.5)
	top := b.AddOperator("global-agg", 1, ppa.Independent, 0.1)
	b.Connect(src, agg, ppa.Merge)
	b.Connect(agg, top, ppa.Merge)
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d operators, %d tasks, %d MC-trees (min size %d)\n",
		topo.NumOps(), topo.NumTasks(), int(ppa.CountMCTrees(topo)), ppa.MinMCTreeSize(topo))

	// 2. Plan active replication for half the tasks with the
	// structure-aware algorithm; every task is also checkpointed.
	mgr := ppa.NewManager(topo)
	res, err := mgr.Plan(ppa.SA, mgr.BudgetForFraction(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPA plan (%s, budget %d): %d replicas, predicted OF %.3f\n",
		res.Algorithm, res.Budget, res.Plan.Size(), res.OF)
	fmt.Printf("actively replicated tasks: %v\n", res.Plan.Tasks())

	// 3. Run the engine: 7 processing nodes, 4 standby nodes, 5s
	// checkpoints, tentative outputs enabled.
	clus := ppa.NewCluster(7, 4)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		log.Fatal(err)
	}
	eng, err := ppa.NewEngine(ppa.EngineSetup{
		Topology: topo,
		Cluster:  clus,
		Config: ppa.EngineConfig{
			CheckpointInterval: 5,
			TentativeOutputs:   true,
		},
		Sources: map[int]ppa.SourceFactory{0: ppa.NewCountSourceFactory(1000)},
		Operators: map[int]ppa.OperatorFactory{
			1: ppa.NewWindowCountFactory(10, 0.5),
			2: ppa.NewWindowCountFactory(10, 0.1),
		},
		Strategies: mgr.Strategies(res.Plan, ppa.StrategyCheckpoint),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Kill every processing node at t=30s — the correlated failure.
	eng.ScheduleCorrelatedFailure(30.3)
	eng.Run(120)

	// 5. Report: actively replicated tasks recover orders of magnitude
	// faster; the topology keeps producing tentative outputs meanwhile.
	fmt.Println("\nrecovery after the correlated failure at t=30.3s:")
	for _, st := range eng.RecoveryStats() {
		task := topo.Tasks[st.Task]
		fmt.Printf("  %s[%d] (%s): detected %.1fs, recovered %.1fs, latency %.2fs\n",
			topo.Ops[task.Op].Name, task.Index, st.Strategy,
			float64(st.DetectedAt), float64(st.RecoveredAt), float64(st.Latency()))
	}
}
