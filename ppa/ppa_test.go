package ppa_test

import (
	"testing"

	"repro/ppa"
)

// TestEndToEnd exercises the full public API: build a topology, compute
// a PPA plan, run the engine with a correlated failure and observe
// tentative outputs plus recovery.
func TestEndToEnd(t *testing.T) {
	b := ppa.NewBuilder()
	src := b.AddSource("src", 4, 1000)
	agg := b.AddOperator("agg", 2, ppa.Independent, 0.5)
	top := b.AddOperator("top", 1, ppa.Independent, 0.1)
	b.Connect(src, agg, ppa.Merge)
	b.Connect(agg, top, ppa.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	mgr := ppa.NewManager(topo)
	res, err := mgr.Plan(ppa.SA, mgr.BudgetForFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.OF <= 0 {
		t.Fatalf("plan OF = %v, want > 0 at 50%% resources", res.OF)
	}

	clus := ppa.NewCluster(7, 4)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	eng, err := ppa.NewEngine(ppa.EngineSetup{
		Topology: topo,
		Cluster:  clus,
		Config: ppa.EngineConfig{
			CheckpointInterval: 5,
			TentativeOutputs:   true,
		},
		Sources:    map[int]ppa.SourceFactory{0: ppa.NewCountSourceFactory(1000)},
		Operators:  map[int]ppa.OperatorFactory{1: ppa.NewWindowCountFactory(10, 0.5), 2: ppa.NewWindowCountFactory(10, 0.1)},
		Strategies: mgr.Strategies(res.Plan, ppa.StrategyCheckpoint),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.ScheduleCorrelatedFailure(20.3)
	eng.Run(120)

	stats := eng.RecoveryStats()
	if len(stats) == 0 {
		t.Fatal("no failures recorded")
	}
	for _, st := range stats {
		if !st.Recovered {
			t.Errorf("task %d (%s) not recovered", st.Task, st.Strategy)
		}
	}
}

func TestSpecRoundTripPublic(t *testing.T) {
	b := ppa.NewBuilder()
	src := b.AddSource("s", 2, 100)
	op := b.AddOperator("o", 2, ppa.Correlated, 0.5)
	b.Connect(src, op, ppa.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo2, err := ppa.FromSpec(ppa.ToSpec(topo))
	if err != nil {
		t.Fatal(err)
	}
	if topo2.NumTasks() != topo.NumTasks() {
		t.Errorf("round trip lost tasks: %d vs %d", topo2.NumTasks(), topo.NumTasks())
	}
}

func TestMetricsAndTrees(t *testing.T) {
	b := ppa.NewBuilder()
	s1 := b.AddSource("s1", 2, 100)
	s2 := b.AddSource("s2", 2, 100)
	j := b.AddOperator("join", 2, ppa.Correlated, 0.5)
	b.Connect(s1, j, ppa.Full)
	b.Connect(s2, j, ppa.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	trees, err := ppa.EnumerateMCTrees(topo, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 8 { // 2 x 2 source choices x 2 join tasks
		t.Errorf("trees = %d, want 8", len(trees))
	}
	if got := ppa.CountMCTrees(topo); got != 8 {
		t.Errorf("count = %v, want 8", got)
	}
	if got := ppa.MinMCTreeSize(topo); got != 3 {
		t.Errorf("min tree size = %d, want 3", got)
	}
	ev := ppa.NewFidelityModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	if of := ev.OF(failed); of != 1 {
		t.Errorf("OF = %v, want 1", of)
	}
}

func TestPlanDiff(t *testing.T) {
	b := ppa.NewBuilder()
	src := b.AddSource("s", 2, 100)
	op := b.AddOperator("o", 2, ppa.Independent, 1)
	b.Connect(src, op, ppa.OneToOne)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mgr := ppa.NewManager(topo)
	small, err := mgr.Plan(ppa.SA, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := mgr.Plan(ppa.SA, 4)
	if err != nil {
		t.Fatal(err)
	}
	act, deact := ppa.PlanDiff(small.Plan, large.Plan)
	if len(act) != large.Plan.Size()-small.Plan.Size() || len(deact) != 0 {
		t.Errorf("diff = +%v -%v", act, deact)
	}
}

func TestRandomGeneration(t *testing.T) {
	spec := ppa.DefaultRandomSpec(5)
	topo, err := ppa.GenerateRandom(spec)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumOps() < 5 || topo.NumOps() > 10 {
		t.Errorf("ops = %d", topo.NumOps())
	}
}

// TestCampaignEndToEnd drives the public failure-campaign surface: a
// preset topology, a domain-structured environment, seeded scenarios
// and a deterministic parallel campaign.
func TestCampaignEndToEnd(t *testing.T) {
	topo, err := ppa.PresetTopology("small", 9)
	if err != nil {
		t.Fatal(err)
	}
	env, err := ppa.NewCampaignEnv(ppa.CampaignEnvSpec{Topo: topo, Planner: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	clus, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(clus.DomainsOfKind("rack")) == 0 {
		t.Fatal("campaign cluster has no rack domains")
	}
	scenarios, err := ppa.GenerateScenarios(clus, ppa.ScenarioSpec{
		Seed:        3,
		Scenarios:   6,
		Model:       ppa.BurstWholeDomain,
		Correlation: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ppa.RunCampaign(ppa.CampaignConfig{
		Setup:     env.Setup,
		Scenarios: scenarios,
		Horizon:   120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Scenarios != 6 || rep.Summary.Unrecovered > 0 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	if rep.Summary.Latency.P95 < rep.Summary.Latency.P50 {
		t.Errorf("p95 < p50: %+v", rep.Summary.Latency)
	}
}
