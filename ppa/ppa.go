// Package ppa is the public API of the PPA reproduction — the Passive
// and Partially Active fault-tolerance framework for massively parallel
// stream processing engines of Su & Zhou, "Tolerating Correlated
// Failures in Massively Parallel Stream Processing Engines" (ICDE
// 2016).
//
// The package re-exports the curated surface of the internal
// implementation:
//
//   - building query topologies (operators, tasks, partitionings);
//   - the Output Fidelity / Internal Completeness quality metrics;
//   - the replication-plan optimisers (dynamic programming, greedy,
//     structured, full-topology, structure-aware, brute force and the
//     portfolio meta-planner), all behind the Planner interface and
//     selectable by registry name;
//   - the deterministic discrete-event streaming engine with
//     checkpointing, active replication, failure injection, recovery
//     and tentative outputs;
//   - the evaluation workloads (top-k over an access log, traffic
//     incident detection, the synthetic recovery topology) and the
//     drivers regenerating every figure of the paper's evaluation.
//
// See the examples/ directory for runnable end-to-end scenarios and
// DESIGN.md for the architecture.
package ppa

import (
	"context"
	"io"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fidelity"
	"repro/internal/mctree"
	"repro/internal/plan"
	"repro/internal/randtopo"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/topology"
)

// --- Topology model ---

// Topology is a validated task-level query DAG with failure-free stream
// rates. Build one with NewBuilder or FromSpec.
type Topology = topology.Topology

// Builder assembles topologies.
type Builder = topology.Builder

// OpRef refers to an operator added to a Builder.
type OpRef = topology.OpRef

// TaskID identifies a task within a topology.
type TaskID = topology.TaskID

// Partitioning describes how a stream is partitioned between
// neighbouring operators.
type Partitioning = topology.Partitioning

// Partitioning kinds (§II-A of the paper).
const (
	OneToOne = topology.OneToOne
	Split    = topology.Split
	Merge    = topology.Merge
	Full     = topology.Full
)

// InputKind classifies operators by input correlation.
type InputKind = topology.InputKind

// Input kinds: Independent unions its input streams, Correlated joins
// them (§III-A1).
const (
	Independent = topology.Independent
	Correlated  = topology.Correlated
)

// Spec is the JSON-serialisable topology description used by the CLI
// tools.
type Spec = topology.Spec

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return topology.NewBuilder() }

// FromSpec builds a topology from its serialisable description.
func FromSpec(s Spec) (*Topology, error) { return topology.FromSpec(s) }

// ToSpec converts a topology back to its description.
func ToSpec(t *Topology) Spec { return topology.ToSpec(t) }

// --- Quality metrics ---

// FidelityModel evaluates Output Fidelity (Eq. 1-4) and Internal
// Completeness for one topology.
type FidelityModel = fidelity.Model

// FidelityEvaluator holds reusable evaluation state.
type FidelityEvaluator = fidelity.Evaluator

// NewFidelityModel builds a metric model for the topology.
func NewFidelityModel(t *Topology) *FidelityModel { return fidelity.NewModel(t) }

// --- MC-trees ---

// MCTree is a minimal complete tree (Definition 1).
type MCTree = mctree.Tree

// EnumerateMCTrees lists the MC-trees of a topology (capped).
func EnumerateMCTrees(t *Topology, maxTrees int) ([]MCTree, error) {
	return mctree.Enumerate(t, maxTrees)
}

// CountMCTrees counts MC-tree derivations without enumeration.
func CountMCTrees(t *Topology) float64 { return mctree.Count(t) }

// MinMCTreeSize returns the size of the smallest MC-tree — the minimum
// useful replication budget.
func MinMCTreeSize(t *Topology) int { return mctree.MinTreeSize(t) }

// --- Planning ---

// Plan is a partially active replication plan (the set of tasks chosen
// for active replication).
type Plan = plan.Plan

// NewPlan returns an empty plan for a topology with n tasks — the
// starting point of custom Planner implementations.
func NewPlan(n int) Plan { return plan.New(n) }

// Planner is the uniform optimiser interface: every planning algorithm
// (and any user-supplied one registered with RegisterPlanner) computes
// a plan from a shared PlanContext and a budget.
type Planner = plan.Planner

// PlanContext is the memoized, concurrency-safe objective evaluator
// shared by the planners of one topology.
type PlanContext = plan.Context

// NewPlanContext builds a planning context for the topology.
func NewPlanContext(t *Topology) *PlanContext { return plan.NewContext(t) }

// RegisterPlanner adds a planner to the global registry; it then
// becomes selectable by name in Manager.PlanByName, cmd/ppaplan and the
// Portfolio meta-planner.
func RegisterPlanner(p Planner) { plan.Register(p) }

// LookupPlanner returns the registered planner with the given name.
func LookupPlanner(name string) (Planner, bool) { return plan.Lookup(name) }

// PlannerNames lists the registered planner names ("brute", "dp",
// "dp-corr", "full", "greedy", "portfolio", "sa", "sa-corr", "sa-ic",
// "structured", "structured-corr", ...).
func PlannerNames() []string { return plan.Names() }

// --- Correlation-aware planning ---

// CorrScenarioSet is a domain-correlated failure distribution over task
// sets: sampled sets of primary tasks failing together, deduplicated
// with accumulated weights. It is the input of the correlation-aware
// objective optimised by the *-corr planners.
type CorrScenarioSet = plan.ScenarioSet

// NewCorrScenarioSet builds the distribution from equally likely
// sampled task sets for a topology with n tasks.
func NewCorrScenarioSet(n int, sets [][]TaskID) (*CorrScenarioSet, error) {
	return plan.NewScenarioSet(n, sets)
}

// SampleTaskScenarios draws failure scenarios per burst model against
// the cluster's domain tree and maps each to the set of primary tasks
// it kills — the standard way to produce a CorrScenarioSet. Install the
// result with PlanContext.SetScenarios (or Manager.SetScenarios) before
// running a *-corr planner.
func SampleTaskScenarios(c *Cluster, spec ScenarioSpec, models []BurstModel) ([][]TaskID, error) {
	return campaign.SampleTaskScenarios(c, spec, models)
}

// Manager computes PPA replication plans for one topology.
type Manager = core.Manager

// Algorithm selects the plan optimiser.
type Algorithm = core.Algorithm

// Planning algorithms (§IV), plus the portfolio meta-planner.
const (
	SA        = core.AlgorithmSA
	DP        = core.AlgorithmDP
	Greedy    = core.AlgorithmGreedy
	SAIC      = core.AlgorithmSAIC
	Portfolio = core.AlgorithmPortfolio
)

// PlanResult is a computed plan with its predicted quality metrics.
type PlanResult = core.Result

// NewManager builds a plan manager for the topology.
func NewManager(t *Topology) *Manager { return core.NewManager(t) }

// PlanDiff computes the dynamic-adaptation delta between two plans
// (§V-C): replicas to create and replicas to deactivate.
func PlanDiff(old, new Plan) (activate, deactivate []TaskID) {
	return core.Diff(old, new)
}

// --- Cluster ---

// Cluster models processing and standby nodes with task placement and
// a hierarchical failure-domain tree (node -> rack -> zone).
type Cluster = cluster.Cluster

// NodeID identifies a cluster node.
type NodeID = cluster.NodeID

// NewCluster builds a cluster with the given node counts.
func NewCluster(processing, standby int) *Cluster {
	return cluster.New(processing, standby)
}

// DomainID identifies a failure domain; RootDomain is the cluster
// itself.
type DomainID = cluster.DomainID

// Domain is one failure domain of the cluster's domain tree.
type Domain = cluster.Domain

// RootDomain is the implicit whole-cluster failure domain.
const RootDomain = cluster.RootDomain

// DomainLayout describes a regular zones × racks failure-domain
// hierarchy for Cluster.BuildDomains.
type DomainLayout = cluster.Layout

// DefaultDomainLayout is a 2-zone, 2-racks-per-zone layout with standby
// nodes spread across the racks.
func DefaultDomainLayout() DomainLayout { return cluster.DefaultLayout() }

// PlacementPolicy selects how active replicas are placed on the standby
// nodes.
type PlacementPolicy = cluster.PlacementPolicy

// Replica placement policies: rack/zone anti-affinity (the default — a
// replica never shares its primary's rack) and the legacy domain-blind
// round-robin.
const (
	PlacementAntiAffinity = cluster.PlacementAntiAffinity
	PlacementRoundRobin   = cluster.PlacementRoundRobin
)

// ParsePlacementPolicy resolves a placement policy name
// ("anti-affinity", "round-robin").
func ParsePlacementPolicy(s string) (PlacementPolicy, error) {
	return cluster.ParsePlacementPolicy(s)
}

// ErrAntiAffinity is wrapped by replica placement when the standby pool
// cannot host a replica outside its primary's rack.
var ErrAntiAffinity = cluster.ErrAntiAffinity

// --- Engine ---

// Engine executes a topology on the deterministic discrete-event
// kernel with PPA fault tolerance.
type Engine = engine.Engine

// EngineSetup describes an engine instance.
type EngineSetup = engine.Setup

// EngineConfig is the engine cost model and fault-tolerance
// configuration.
type EngineConfig = engine.Config

// Strategy selects the fault-tolerance technique protecting a task.
type Strategy = engine.Strategy

// Fault-tolerance strategies.
const (
	StrategyCheckpoint   = engine.StrategyCheckpoint
	StrategyActive       = engine.StrategyActive
	StrategySourceReplay = engine.StrategySourceReplay
	StrategyNone         = engine.StrategyNone
)

// Tuple is one data item.
type Tuple = engine.Tuple

// Batch is the content of one processing batch on one substream.
type Batch = engine.Batch

// Emitter receives operator outputs.
type Emitter = engine.Emitter

// OperatorFunc is the user-defined function run by each task.
type OperatorFunc = engine.OperatorFunc

// OperatorFactory builds per-task operator instances.
type OperatorFactory = engine.OperatorFactory

// SourceFunc generates source batches deterministically.
type SourceFunc = engine.SourceFunc

// SourceFactory builds per-task sources.
type SourceFactory = engine.SourceFactory

// FuncSource adapts a function to SourceFunc.
type FuncSource = engine.FuncSource

// SinkRecord is one output tuple observed at a sink task. Tentative
// marks output computed from incomplete input anywhere upstream;
// Amendment marks a post-recovery correction record.
type SinkRecord = engine.SinkRecord

// AccuracyStats summarises the tentative/correction lifecycle of a
// run's sink output: firm vs tentative volume, corrected batches and
// per-batch time-to-correction (Engine.AccuracyStats).
type AccuracyStats = engine.AccuracyStats

// RecoveryStat records one task failure's detection and recovery.
type RecoveryStat = engine.RecoveryStat

// Time is virtual time in seconds.
type Time = sim.Time

// NewEngine builds an engine.
func NewEngine(s EngineSetup) (*Engine, error) { return engine.New(s) }

// NewWindowCountFactory builds the synthetic windowed operator of the
// recovery experiments.
func NewWindowCountFactory(windowBatches int, selectivity float64) OperatorFactory {
	return engine.NewWindowCountFactory(windowBatches, selectivity)
}

// NewCountSourceFactory builds a constant-rate unmaterialised source.
func NewCountSourceFactory(perBatch int) SourceFactory {
	return engine.NewCountSourceFactory(perBatch)
}

// NewPassthroughFactory builds a stateless forwarding operator.
func NewPassthroughFactory() OperatorFactory { return engine.NewPassthroughFactory() }

// --- Failure campaigns ---

// BurstModel is the shape of one randomized correlated failure
// (single node, k-of-rack, whole domain, cascading multi-domain).
type BurstModel = campaign.Model

// Burst models of the Monte-Carlo failure campaigns.
const (
	BurstSingleNode  = campaign.SingleNode
	BurstKOfRack     = campaign.KOfRack
	BurstWholeDomain = campaign.WholeDomain
	BurstCascade     = campaign.Cascade
)

// BurstModels lists every burst model.
func BurstModels() []BurstModel { return campaign.Models }

// FailureWave is one instant of a scenario: nodes failing together.
type FailureWave = campaign.Wave

// FailureScenario is one reproducible multi-wave failure scenario.
type FailureScenario = campaign.Scenario

// ScenarioSpec controls scenario generation (seed, count, burst model,
// correlation strength, injection time). Its optional timing fields are
// pointers: nil selects the documented default, Ptr(0) is honoured
// verbatim (e.g. JitterS: Ptr(0.0) disables injection-time jitter).
// CRN switches to common-random-number substreams (scenario i depends
// only on (Seed, i), enabling paired head-to-head comparisons); Tilt
// >= 1 importance-samples rare cascades, attaching a likelihood-ratio
// weight to each scenario that campaign summaries reweight by.
type ScenarioSpec = campaign.GenSpec

// Ptr returns a pointer to v — shorthand for ScenarioSpec's explicit
// optional fields.
func Ptr[T any](v T) *T { return campaign.Ptr(v) }

// GenerateScenarios draws seeded failure scenarios against the
// cluster's failure-domain tree.
func GenerateScenarios(c *Cluster, spec ScenarioSpec) ([]FailureScenario, error) {
	return campaign.Generate(c, spec)
}

// CampaignConfig describes a Monte-Carlo failure campaign. Campaigns
// aggregate by streaming: results fold into mergeable quantile
// sketches in scenario order and are then discarded, so memory stays
// flat however many scenarios run. Set KeepResults to retain
// CampaignReport.Results, or OnResult to observe each result (in
// scenario-index order) without retaining it; Shards fixes the
// reduction layout — for a fixed seed and shard count the summary is
// bit-identical at any Workers. StopTol > 0 enables CI-driven early
// stopping: the campaign halts at the first shard-block checkpoint
// where the p95-loss CI half-width is within the tolerance, at the
// same scenario whether run single-process or distributed.
type CampaignConfig = campaign.Config

// CampaignReport is the outcome of a campaign: aggregated
// recovery-latency, output-loss and answer-quality (tentative/
// corrected fraction, time-to-correction) distributions, plus the
// per-scenario results when CampaignConfig.KeepResults is set.
type CampaignReport = campaign.Report

// CampaignSummary aggregates a campaign (mean/p50/p95/p99). Counts,
// Mean and Max are exact; quantiles carry the sketch's rank-error
// bound (see QuantileSketch) and are exact for campaigns with at most
// DefaultSketchK samples per metric. ESS is the effective sample size
// of the (possibly importance-weighted) loss estimate — equal to the
// scenario count for plain campaigns, and above it when a tilt
// reduces variance.
type CampaignSummary = campaign.Summary

// CampaignResult is one scenario's outcome, as retained in
// CampaignReport.Results or streamed to CampaignConfig.OnResult.
type CampaignResult = campaign.ScenarioResult

// Distribution summarises one sample distribution.
type Distribution = campaign.Dist

// RunCampaign executes every scenario as an independent simulation on a
// worker pool; for a fixed seed (and shard count) the report is
// identical regardless of the worker count. The runner keeps one
// engine per worker and resets it between scenarios (bit-identical to
// a fresh setup); CampaignConfig.DisableReuse forces the fresh-setup
// path. A scenario error aborts the campaign promptly without
// draining the remaining scenarios.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) { return campaign.Run(cfg) }

// RunCampaignContext is RunCampaign under a context: cancelling ctx
// aborts the sweep promptly and returns the context's error. Worker
// timeouts, user cancellation and fail-fast scenario errors all share
// this one mechanism.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	return campaign.RunContext(ctx, cfg)
}

// CampaignConfigError is the typed validation error returned by
// CampaignConfig.Validate (and by the campaign entry points, which
// validate first): it names the offending field and the reason.
type CampaignConfigError = campaign.ConfigError

// CampaignBaselineVolume runs (or looks up) the failure-free baseline
// for the campaign and returns its sink volume — the denominator of
// relative output loss. Coordinators resolve the baseline once and
// ship it to every worker so all ranges measure loss identically.
func CampaignBaselineVolume(cfg CampaignConfig) (int, error) {
	return campaign.BaselineVolume(cfg)
}

// --- Distributed campaigns ---

// CampaignRange is a half-open, shard-aligned range [Lo, Hi) of a
// campaign's scenario index space — the unit of distributed work.
type CampaignRange = campaign.Range

// PartitionCampaign splits the campaign's scenario index space into at
// most parts contiguous shard-aligned ranges covering every scenario.
func PartitionCampaign(cfg CampaignConfig, parts int) ([]CampaignRange, error) {
	return campaign.Partition(cfg, parts)
}

// CampaignShardState is one shard's serialised aggregation state
// (deterministic binary sketch encodings plus exact counters) — what
// workers return and MergeCampaignShards folds back together.
type CampaignShardState = campaign.ShardState

// RunCampaignRange executes one shard-aligned scenario range and
// returns the serialised per-shard states it produced.
func RunCampaignRange(cfg CampaignConfig, r CampaignRange) ([]CampaignShardState, error) {
	return campaign.RunRange(cfg, r)
}

// RunCampaignRangeContext is RunCampaignRange under a context.
func RunCampaignRangeContext(ctx context.Context, cfg CampaignConfig, r CampaignRange) ([]CampaignShardState, error) {
	return campaign.RunRangeContext(ctx, cfg, r)
}

// MergeCampaignShards merges shard states from any partitioning of one
// campaign into its summary — bit-identical to the single-process run
// for the same (seed, Shards), whatever the range assignment.
func MergeCampaignShards(states []CampaignShardState) (CampaignSummary, error) {
	return campaign.MergeShardStates(states)
}

// CampaignWireSpec is the self-contained, JSON-serialisable form of a
// campaign: environment, scenario generators and run parameters.
// Workers rebuild the identical CampaignConfig from it — scenarios are
// regenerated from their seeds on each side, never shipped.
type CampaignWireSpec = campaign.WireSpec

// NewCampaignWireSpec captures an environment spec and scenario
// generators as a wire-transportable campaign description.
func NewCampaignWireSpec(spec CampaignEnvSpec, gens []ScenarioSpec) (CampaignWireSpec, error) {
	return campaign.NewWireSpec(spec, gens)
}

// CampaignWorkerPool is a coordinator's set of campaign worker
// processes (locally spawned via AddProcess, or remote TCP connections
// via AddConn/AcceptWorkers). RunJob partitions a campaign across the
// live workers, reassigns ranges of lost workers, and merges the
// returned shard states into the single-process summary.
type CampaignWorkerPool = coord.Pool

// CampaignWorkerPoolOptions tunes coordinator-side liveness and
// scheduling (heartbeat timeout, range retries, ranges per worker).
type CampaignWorkerPoolOptions = coord.PoolOptions

// NewCampaignWorkerPool returns an empty worker pool.
func NewCampaignWorkerPool(opts CampaignWorkerPoolOptions) *CampaignWorkerPool {
	return coord.NewPool(opts)
}

// CampaignWorkerOptions tunes the worker side of the protocol.
type CampaignWorkerOptions = coord.WorkerOptions

// ServeCampaignWorker runs the worker half of the campaign protocol
// over the given byte streams (a spawned worker's stdin/stdout) until
// EOF, shutdown, or ctx cancellation.
func ServeCampaignWorker(ctx context.Context, r io.Reader, w io.Writer, opts CampaignWorkerOptions) error {
	return coord.ServeWorker(ctx, r, w, opts)
}

// ConnectCampaignWorker dials a coordinator over TCP and serves the
// worker protocol on the connection.
func ConnectCampaignWorker(ctx context.Context, addr string, opts CampaignWorkerOptions) error {
	return coord.Connect(ctx, addr, opts)
}

// CampaignProtoVersion is the coordinator/worker wire protocol
// version; mismatched workers are dropped at the handshake.
const CampaignProtoVersion = coord.ProtoVersion

// --- Variance engineering ---

// PairedCampaign accumulates per-scenario metric pairs from two
// campaigns generated with common random numbers (ScenarioSpec.CRN)
// and summarises their difference. Feed it from the two campaigns'
// OnResult callbacks via ObserveBase/ObserveOther, keyed by scenario
// index; only indices observed on both sides enter the summary.
type PairedCampaign = campaign.Paired

// PairedCampaignSummary is the paired-difference summary: sample
// count, mean delta with a paired-t 95% CI half-width, and the
// delta's p50/p95 with an order-statistic CI on the p95. Because the
// paired deltas cancel the shared scenario-to-scenario variance, the
// CIs are far narrower than two independent campaigns' at equal
// budget.
type PairedCampaignSummary = campaign.PairedSummary

// NewPairedCampaign returns a paired accumulator for campaigns of n
// scenarios.
func NewPairedCampaign(n int) *PairedCampaign { return campaign.NewPaired(n) }

// CampaignStopMonitor evaluates the CI-driven early-stop rule
// (CampaignConfig.StopTol) over a campaign's serialised shard states,
// observed in shard order. Single-process runs and the distributed
// coordinator feed it the same state sequence, so both stop at the
// same scenario and summaries stay bit-identical.
type CampaignStopMonitor = campaign.StopMonitor

// NewCampaignStopMonitor builds the stop monitor for the config, or
// nil (the "never stops" monitor) when StopTol <= 0.
func NewCampaignStopMonitor(cfg CampaignConfig) *CampaignStopMonitor {
	return campaign.NewStopMonitor(cfg)
}

// WeightedQuantileSketch is the weighted companion of QuantileSketch:
// each sample carries an importance-sampling likelihood-ratio weight
// (ScenarioSpec.Tilt campaigns), quantiles are weighted-rank
// estimates, and merge/serialisation stay deterministic — the basis
// of bit-identical tilted campaign summaries across any worker and
// shard layout.
type WeightedQuantileSketch = sketch.Weighted

// NewWeightedQuantileSketch returns an empty weighted sketch with
// compression parameter k (0 selects DefaultSketchK).
func NewWeightedQuantileSketch(k int) *WeightedQuantileSketch { return sketch.NewWeighted(k) }

// NewSeededWeightedQuantileSketch is NewWeightedQuantileSketch with
// seeded compaction coin flips (see NewSeededQuantileSketch).
func NewSeededWeightedQuantileSketch(k int, seed uint64) *WeightedQuantileSketch {
	return sketch.NewSeededWeighted(k, seed)
}

// QuantileSketch is the deterministic mergeable streaming quantile
// sketch campaign summaries are built on (KLL-style). Count, Sum, Min
// and Max are exact; Quantile carries a rank-error bound of
// RankError()*n ranks, and is exact while the stream fits in the
// sketch (at most k items). For one compression parameter k, identical
// Add/Merge sequences yield bit-identical sketches.
type QuantileSketch = sketch.Sketch

// DefaultSketchK is the default sketch compression parameter
// (rank error about 1%), also used by campaign summaries.
const DefaultSketchK = sketch.DefaultK

// NewQuantileSketch returns an empty sketch with compression
// parameter k (0 selects DefaultSketchK).
func NewQuantileSketch(k int) *QuantileSketch { return sketch.New(k) }

// NewSeededQuantileSketch returns an empty sketch whose compaction
// coin flips derive from seed — distinct parallel sketches that must
// stay deterministic under merge should use distinct seeds.
func NewSeededQuantileSketch(k int, seed uint64) *QuantileSketch { return sketch.NewSeeded(k, seed) }

// BaselineCache memoizes failure-free baseline sink volumes per
// (key, horizon) across campaigns, so sweep cells sharing a setup run
// the baseline simulation once (CampaignConfig.Baselines/BaselineKey).
type BaselineCache = campaign.BaselineCache

// NewBaselineCache returns an empty baseline cache.
func NewBaselineCache() *BaselineCache { return campaign.NewBaselineCache() }

// CampaignEnvSpec describes a reusable campaign environment (topology,
// planner, cluster sizing, domain layout).
type CampaignEnvSpec = campaign.EnvSpec

// CampaignEnv is a reusable campaign environment; its Setup method is
// the CampaignConfig.Setup factory.
type CampaignEnv = campaign.Env

// NewCampaignEnv validates the spec, computes the replication plan and
// fixes the cluster dimensions and domain layout.
func NewCampaignEnv(spec CampaignEnvSpec) (*CampaignEnv, error) { return campaign.NewEnv(spec) }

// PresetTopology generates a named random-topology preset ("small",
// "medium", "large") for campaigns.
func PresetTopology(name string, seed int64) (*Topology, error) {
	return campaign.PresetTopology(name, seed)
}

// --- Random topologies ---

// RandomSpec controls the §VI-C random topology generator.
type RandomSpec = randtopo.Spec

// DefaultRandomSpec returns the paper's baseline random-topology
// specification.
func DefaultRandomSpec(seed int64) RandomSpec { return randtopo.DefaultSpec(seed) }

// GenerateRandom builds a random topology from the spec.
func GenerateRandom(spec RandomSpec) (*Topology, error) { return randtopo.Generate(spec) }
