package repro

// One benchmark per figure of the paper's evaluation (§VI). Each
// benchmark regenerates the figure's full series via the experiment
// drivers and reports the figure's headline quantity as a custom
// metric, so `go test -bench=. -benchmem` re-derives the entire
// evaluation. The figures are also printable as tables with
// cmd/ppabench.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/randtopo"
	"repro/internal/sim"
	"repro/internal/topology"
)

// reportSeries attaches selected series points as custom benchmark
// metrics (unit suffix chosen by the figure's y-axis).
func reportSeries(b *testing.B, r experiments.Result, unit string, picks map[string]string) {
	for series, x := range picks {
		for _, s := range r.Series {
			if s.Name != series {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					b.ReportMetric(p.Y, series+"_"+unit)
				}
			}
		}
	}
}

// BenchmarkFig07SingleNodeRecovery regenerates Fig. 7: recovery latency
// of a single node failure for Active/Checkpoint/Storm techniques over
// the window x rate matrix.
func BenchmarkFig07SingleNodeRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "s", map[string]string{
				"Active-5s":      "win:30s rate:2000tps",
				"Checkpoint-30s": "win:30s rate:2000tps",
				"Storm":          "win:30s rate:2000tps",
			})
		}
	}
}

// BenchmarkFig08CorrelatedRecovery regenerates Fig. 8: recovery latency
// of a correlated failure of all 15 processing nodes.
func BenchmarkFig08CorrelatedRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "s", map[string]string{
				"Active-5s":      "win:30s rate:2000tps",
				"Checkpoint-30s": "win:30s rate:2000tps",
				"Storm":          "win:30s rate:2000tps",
			})
		}
	}
}

// BenchmarkFig09CheckpointCost regenerates Fig. 9: the CPU cost ratio of
// checkpoint maintenance vs normal processing across intervals.
func BenchmarkFig09CheckpointCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "ratio", map[string]string{
				"1000_tuples/s": "1s",
				"2000_tuples/s": "1s",
			})
		}
	}
}

// BenchmarkFig10PPARecovery regenerates Fig. 10 (both subfigures):
// correlated-failure recovery latency under PPA-1.0 / PPA-0.5 / PPA-0
// replication plans.
func BenchmarkFig10PPARecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, rate := range []int{1000, 2000} {
			r, err := experiments.Fig10(rate)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && rate == 1000 {
				reportSeries(b, r, "s", map[string]string{
					"PPA-1.0":        "30s",
					"PPA-0.5-active": "30s",
					"PPA-0.5":        "30s",
					"PPA-0":          "30s",
				})
			}
		}
	}
}

// BenchmarkFig12MetricValidation regenerates Fig. 12 (Q1 and Q2): the
// OF and IC metric values against the actual accuracy of tentative
// outputs.
func BenchmarkFig12MetricValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q1, err := experiments.Fig12Q1()
		if err != nil {
			b.Fatal(err)
		}
		q2, err := experiments.Fig12Q2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, q1, "q1", map[string]string{"OF": "0.4", "OF-SA-Accuracy": "0.4"})
			reportSeries(b, q2, "q2", map[string]string{"IC": "0.4", "IC-SA-Accuracy": "0.4"})
		}
	}
}

// BenchmarkFig13AlgorithmComparison regenerates Fig. 13 (Q1 and Q2):
// plans by DP, SA and Greedy with their OF and actual accuracy.
func BenchmarkFig13AlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q1, err := experiments.Fig13Q1()
		if err != nil {
			b.Fatal(err)
		}
		q2, err := experiments.Fig13Q2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, q1, "q1", map[string]string{"DP-OF": "0.4", "SA-OF": "0.4", "Greedy-OF": "0.4"})
			reportSeries(b, q2, "q2", map[string]string{"DP-OF": "0.4", "SA-OF": "0.4", "Greedy-OF": "0.4"})
		}
	}
}

// fig14Topologies is the number of random topologies per variant in the
// Fig. 14 benchmarks (the paper uses 100; cmd/ppabench defaults to 100,
// the benchmark uses a smaller fleet to keep -bench runs minutes-scale).
const fig14Topologies = 25

// BenchmarkFig14aWorkloadSkew regenerates Fig. 14(a): SA vs Greedy OF on
// random topologies with uniform vs Zipfian task workloads.
func BenchmarkFig14aWorkloadSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14a(fig14Topologies)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "of", map[string]string{"SA-zipf": "0.2", "Greedy-zipf": "0.2"})
		}
	}
}

// BenchmarkFig14bParallelism regenerates Fig. 14(b): parallelisation
// degree ranges 1-10 vs 10-20.
func BenchmarkFig14bParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14b(fig14Topologies)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "of", map[string]string{"SA-para:10~20": "0.2", "Greedy-para:10~20": "0.2"})
		}
	}
}

// BenchmarkFig14cFullPartitioning regenerates Fig. 14(c): structured vs
// full topologies.
func BenchmarkFig14cFullPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14c(fig14Topologies)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "of", map[string]string{"SA-Structure": "0.4", "SA-Full": "0.4"})
		}
	}
}

// BenchmarkFig14dJoinFraction regenerates Fig. 14(d): join-operator
// fractions 0 vs 50% on identical topologies.
func BenchmarkFig14dJoinFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14d(fig14Topologies)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r, "of", map[string]string{"SA-NoJoin": "0.4", "SA-Join-50%": "0.4"})
		}
	}
}

// --- Planner benchmarks (not tied to a paper figure) ---

// benchSizes are the random-topology sizes of the planner-comparison
// benchmark: small is brute-force/DP territory, medium is the paper's
// §VI-C baseline, large stresses the sub-topology machinery.
var benchSizes = []struct {
	name           string
	minOps, maxOps int
	minPar, maxPar int
}{
	{"small", 4, 4, 1, 3},
	{"medium", 5, 10, 1, 10},
	{"large", 12, 16, 5, 15},
}

func benchTopology(b *testing.B, minOps, maxOps, minPar, maxPar int) *topology.Topology {
	spec := randtopo.DefaultSpec(4242)
	spec.MinOps, spec.MaxOps = minOps, maxOps
	spec.MinPar, spec.MaxPar = minPar, maxPar
	topo, err := randtopo.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// BenchmarkPlanners compares every planner on small/medium/large random
// topologies at a 40% replication budget, quantifying the memoized
// objective evaluation and parallel candidate search on the planner hot
// path. A fresh context per iteration makes each measurement a full
// cold planning run. Planners that cannot handle a size (DP past its
// state cap, brute force past 24 tasks) are skipped.
func BenchmarkPlanners(b *testing.B) {
	for _, name := range []string{"greedy", "full", "structured", "sa", "portfolio", "dp", "brute"} {
		pl, ok := plan.Lookup(name)
		if !ok {
			b.Fatalf("planner %q not registered", name)
		}
		for _, size := range benchSizes {
			topo := benchTopology(b, size.minOps, size.maxOps, size.minPar, size.maxPar)
			budget := 2 * topo.NumTasks() / 5
			b.Run(name+"/"+size.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ctx := plan.NewContext(topo)
					p, err := pl.Plan(ctx, budget)
					if err != nil {
						b.Skipf("%s on %s: %v", name, size.name, err)
					}
					if i == 0 {
						b.ReportMetric(ctx.OF(p), "of")
						b.ReportMetric(float64(topo.NumTasks()), "tasks")
					}
				}
			})
		}
	}
}

// BenchmarkMemoizedObjective isolates the memoization win on the
// planner hot path: a Fig. 14-style budget sweep (both SA objectives at
// five replication ratios, the workload of experiments and the plan
// Manager) over one shared context, with the objective caches enabled
// vs disabled. Candidate plans probed at one budget are cache hits at
// the next.
func BenchmarkMemoizedObjective(b *testing.B) {
	topo := benchTopology(b, 5, 10, 1, 10)
	for _, mode := range []struct {
		name string
		memo bool
	}{{"memoized", true}, {"unmemoized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := plan.NewContext(topo)
				ctx.SetMemoize(mode.memo)
				for _, frac := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
					budget := int(frac * float64(topo.NumTasks()))
					if _, err := plan.MustLookup("sa").Plan(ctx, budget); err != nil {
						b.Fatal(err)
					}
					if _, err := plan.MustLookup("sa-ic").Plan(ctx, budget); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCorrObjective measures the correlation-aware planning
// objective: a domain-correlated failure distribution is sampled from
// the standard campaign cluster for the medium topology, and each
// iteration runs a cold sa-corr plan (seed plan + hill-climbing under
// the expected-OF objective, memoized per task-set). The reported
// "corr_of" is the expected OF of the returned plan — the headline
// quality number of the *-corr planner family.
func BenchmarkCorrObjective(b *testing.B) {
	topo := benchTopology(b, 5, 10, 1, 10)
	env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo})
	if err != nil {
		b.Fatal(err)
	}
	clus, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	sets, err := campaign.SampleTaskScenarios(clus, campaign.GenSpec{
		Seed:        1,
		Scenarios:   32,
		Correlation: campaign.DefaultCorrelation,
	}, campaign.Models)
	if err != nil {
		b.Fatal(err)
	}
	scenarios, err := plan.NewScenarioSet(topo.NumTasks(), sets)
	if err != nil {
		b.Fatal(err)
	}
	budget := 2 * topo.NumTasks() / 5
	pl := plan.MustLookup("sa-corr")
	for i := 0; i < b.N; i++ {
		ctx := plan.NewContext(topo)
		if err := ctx.SetScenarios(scenarios); err != nil {
			b.Fatal(err)
		}
		p, err := pl.Plan(ctx, budget)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(ctx.CorrObjective(p), "corr_of")
			b.ReportMetric(float64(scenarios.Len()), "distinct_scenarios")
		}
	}
}

// BenchmarkParallelSearch isolates the worker-pool win on the SA
// segment enumeration: one worker vs GOMAXPROCS on the large topology.
func BenchmarkParallelSearch(b *testing.B) {
	topo := benchTopology(b, 12, 16, 5, 15)
	budget := 2 * topo.NumTasks() / 5
	for _, mode := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := plan.NewContext(topo)
				sa := plan.SA{Opts: plan.SAOptions{Workers: mode.workers}}
				if _, err := sa.Plan(ctx, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Engine / campaign hot-path benchmarks ---

// hotPathEnv builds the standard hot-path benchmark environment: the
// medium preset topology under the greedy plan with tentative outputs.
func hotPathEnv(b *testing.B) *campaign.Env {
	topo, err := campaign.PresetTopology(campaign.TopoMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo, Planner: "greedy", Tentative: true})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkEngineHotPath measures one failure-free engine simulation
// end to end (setup, 60 virtual seconds of batches, checkpoints and
// trims). Run with -benchmem: allocs/op is the headline number of the
// allocation-free kernel + dense task-state work, and CI gates on it.
func BenchmarkEngineHotPath(b *testing.B) {
	env := hotPathEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := env.Setup()
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.New(s)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(60)
		if e.SinkTupleCount() == 0 {
			b.Fatal("no sink output")
		}
	}
}

// retainedHeap forces a collection and returns the live heap, for the
// bytes_retained metric.
func retainedHeap() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc)
}

// BenchmarkCampaignThroughput measures Monte-Carlo campaign throughput
// in scenarios/sec: a domain+cascade campaign over the medium topology
// on the full worker pool, the regime every evaluation figure is
// regenerated in. Alongside allocs/op it reports bytes_retained — live
// heap growth across the benchmark after a forced collection — the
// peak-memory guard for the streaming aggregation path: per-scenario
// retention shows up here long before it ooms a million-scenario
// sweep. CI gates on both.
func BenchmarkCampaignThroughput(b *testing.B) {
	env := hotPathEnv(b)
	sample, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	var scs []campaign.Scenario
	for _, m := range []campaign.Model{campaign.WholeDomain, campaign.Cascade} {
		s, err := campaign.Generate(sample, campaign.GenSpec{
			Seed:        7,
			Scenarios:   8,
			Model:       m,
			Correlation: campaign.DefaultCorrelation,
		})
		if err != nil {
			b.Fatal(err)
		}
		scs = append(scs, s...)
	}
	baseline := 0
	b.ReportAllocs()
	before := retainedHeap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(campaign.Config{
			Setup:     env.Setup,
			Scenarios: scs,
			Horizon:   90,
			Baseline:  baseline,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseline = rep.BaselineSinkTuples
	}
	b.StopTimer()
	retained := retainedHeap() - before
	if retained < 0 {
		retained = 0
	}
	b.ReportMetric(retained, "bytes_retained")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(scs))/secs, "scenarios/s")
	}
}

// BenchmarkTiltedCascadeCampaign measures the importance-sampled
// rare-cascade campaign: a weakly correlated cascade model whose
// multi-rack bursts are rare under plain Monte-Carlo, sampled at a
// tilted join probability with per-scenario likelihood-ratio weights.
// Alongside raw scenarios/s it reports effective_samples/s — the
// effective sample size of the loss estimate per wall-clock second —
// the statistical throughput the tilt buys. benchjson -check gates
// effective_samples/s >= scenarios/s: the tilt must not increase
// variance.
func BenchmarkTiltedCascadeCampaign(b *testing.B) {
	// Checkpoint-only recovery over two-rack zones, with a long cascade
	// lag and a horizon that lets every single-rack burst recover
	// completely: the output loss is then a genuine rare event — zero
	// unless the cascade spreads — which is the regime importance
	// sampling is built for. Under this tilt the campaign's ESS is
	// several times its scenario count.
	topo, err := campaign.PresetTopology(campaign.TopoMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	env, err := campaign.NewEnv(campaign.EnvSpec{
		Topo:      topo,
		Tentative: true,
		Layout:    cluster.Layout{Zones: 4, RacksPerZone: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	sample, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	scs, err := campaign.Generate(sample, campaign.GenSpec{
		Seed:        7,
		Scenarios:   48,
		Model:       campaign.Cascade,
		Correlation: 0.05,
		CascadeLag:  campaign.Ptr(sim.Time(12)),
		CRN:         true,
		Tilt:        5,
	})
	if err != nil {
		b.Fatal(err)
	}
	baseline := 0
	var ess float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(campaign.Config{
			Setup:     env.Setup,
			Scenarios: scs,
			Horizon:   70,
			Baseline:  baseline,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseline = rep.BaselineSinkTuples
		ess = rep.Summary.ESS
	}
	b.StopTimer()
	b.ReportMetric(ess, "effective_samples")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(scs))/secs, "scenarios/s")
		b.ReportMetric(ess*float64(b.N)/secs, "effective_samples/s")
	}
}

// BenchmarkPairedSweep quantifies the common-random-numbers win on a
// placement head-to-head at equal simulation budget: the 95% CI
// half-width of the mean output-loss delta between anti-affinity and
// round-robin placement, estimated (a) paired on CRN scenarios and
// (b) from two independent campaigns. Reported as paired_ci_w,
// indep_ci_w and ci_width_ratio (indep/paired); benchjson -check gates
// the ratio at >= 2, i.e. CRN pairing reaches a target half-width with
// at least 4x fewer scenarios.
func BenchmarkPairedSweep(b *testing.B) {
	env := hotPathEnv(b)
	sample, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	const n = 24
	gen := func(seed int64) []campaign.Scenario {
		scs, err := campaign.Generate(sample, campaign.GenSpec{
			Seed:        seed,
			Scenarios:   n,
			Model:       campaign.KOfRack,
			Correlation: campaign.DefaultCorrelation,
			CRN:         true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return scs
	}
	runCell := func(scs []campaign.Scenario, placement cluster.PlacementPolicy, baseline int, obs func(campaign.ScenarioResult)) int {
		rep, err := campaign.Run(campaign.Config{
			Setup:     env.SetupFor(placement),
			Scenarios: scs,
			Horizon:   90,
			Baseline:  baseline,
			OnResult:  obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep.BaselineSinkTuples
	}
	shared := gen(7)
	indepA, indepB := gen(101), gen(202)
	var pairedW, indepW float64
	baseline := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Paired: both cells replay the same CRN draws.
		pair := campaign.NewPaired(n)
		baseline = runCell(shared, cluster.PlacementAntiAffinity, baseline, func(r campaign.ScenarioResult) {
			pair.ObserveBase(r.Scenario.Index, r.OutputLoss)
		})
		baseline = runCell(shared, cluster.PlacementRoundRobin, baseline, func(r campaign.ScenarioResult) {
			pair.ObserveOther(r.Scenario.Index, r.OutputLoss)
		})
		pairedW = pair.Summary().MeanCI
		// Independent: same budget, distinct seeds per cell.
		var lossA, lossB []float64
		baseline = runCell(indepA, cluster.PlacementAntiAffinity, baseline, func(r campaign.ScenarioResult) {
			lossA = append(lossA, r.OutputLoss)
		})
		baseline = runCell(indepB, cluster.PlacementRoundRobin, baseline, func(r campaign.ScenarioResult) {
			lossB = append(lossB, r.OutputLoss)
		})
		indepW = unpairedDeltaCI(lossA, lossB)
	}
	b.StopTimer()
	b.ReportMetric(pairedW, "paired_ci_w")
	b.ReportMetric(indepW, "indep_ci_w")
	if pairedW > 0 {
		b.ReportMetric(indepW/pairedW, "ci_width_ratio")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*4*n)/secs, "scenarios/s")
	}
}

// unpairedDeltaCI is the 95% CI half-width of mean(b) - mean(a) for
// two independent samples (Welch, z-approximation).
func unpairedDeltaCI(a, b []float64) float64 {
	varOf := func(xs []float64) float64 {
		if len(xs) < 2 {
			return 0
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return ss / float64(len(xs)-1)
	}
	se := math.Sqrt(varOf(a)/float64(len(a)) + varOf(b)/float64(len(b)))
	return 1.9599639845400545 * se
}
