package workload

import (
	"math"
	"testing"
)

func TestAccessLogDeterminism(t *testing.T) {
	m1 := NewAccessLogModel(42)
	m2 := NewAccessLogModel(42)
	for task := 0; task < 3; task++ {
		for batch := 0; batch < 5; batch++ {
			c1, r1 := m1.AccessCounts(task, batch)
			c2, r2 := m2.AccessCounts(task, batch)
			if r1 != r2 || len(c1) != len(c2) {
				t.Fatalf("task %d batch %d: nondeterministic generation", task, batch)
			}
			for k, v := range c1 {
				if c2[k] != v {
					t.Fatalf("task %d batch %d object %d: %d vs %d", task, batch, k, v, c2[k])
				}
			}
		}
	}
}

func TestAccessLogVolume(t *testing.T) {
	m := NewAccessLogModel(7)
	counts, rest := m.AccessCounts(0, 0)
	total := rest
	for _, v := range counts {
		total += v
	}
	// Total volume should be near the configured per-task rate (noise
	// can push the materialised head slightly over).
	if total < m.RatePerTask*9/10 || total > m.RatePerTask*12/10 {
		t.Errorf("batch volume %d far from rate %d", total, m.RatePerTask)
	}
}

func TestAccessLogSkew(t *testing.T) {
	m := NewAccessLogModel(3)
	// Aggregate over several batches: object 0 must dominate object 50.
	tot0, tot50 := 0, 0
	for b := 0; b < 20; b++ {
		c, _ := m.AccessCounts(0, b)
		tot0 += c[0]
		tot50 += c[50]
	}
	if tot0 <= tot50 {
		t.Errorf("object 0 count %d should exceed object 50 count %d", tot0, tot50)
	}
}

func TestTrueTopK(t *testing.T) {
	m := NewAccessLogModel(1)
	top := m.TrueTopK(100)
	if len(top) != 100 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != ObjectName(0) {
		t.Errorf("top[0] = %q", top[0])
	}
	if got := m.TrueTopK(1 << 20); len(got) != m.Objects {
		t.Errorf("TrueTopK over objects = %d entries", len(got))
	}
}

func TestTrafficUsersDistribution(t *testing.T) {
	m := NewTrafficModel(11)
	total := 0
	for i := 0; i < m.Segments; i++ {
		total += m.UsersOn(i)
	}
	if math.Abs(float64(total-m.Users)) > float64(m.Users)/100 {
		t.Errorf("total users %d far from %d", total, m.Users)
	}
	if m.UsersOn(0) <= m.UsersOn(m.Segments-1) {
		t.Error("user distribution not skewed")
	}
}

func TestIncidentsPeriodic(t *testing.T) {
	m := NewTrafficModel(5)
	for b := 0; b < 10; b++ {
		inc, ok := m.IncidentAt(b)
		if b%m.IncidentEveryBatches == 0 {
			if !ok {
				t.Errorf("batch %d: expected incident", b)
			} else if inc.Batch != b {
				t.Errorf("incident batch = %d, want %d", inc.Batch, b)
			}
		} else if ok {
			t.Errorf("batch %d: unexpected incident", b)
		}
	}
	// deterministic
	a, _ := m.IncidentAt(4)
	b, _ := m.IncidentAt(4)
	if a != b {
		t.Error("IncidentAt nondeterministic")
	}
}

func TestJamDepressesSpeed(t *testing.T) {
	m := NewTrafficModel(9)
	var jam Incident
	found := false
	for b := 0; b < 40 && !found; b++ {
		if inc, ok := m.IncidentAt(b); ok && inc.Jam {
			jam = inc
			found = true
		}
	}
	if !found {
		t.Fatal("no jam-causing incident in 40 batches")
	}
	if v := m.SpeedOf(jam.Segment, jam.Batch); v != m.JamSpeed {
		t.Errorf("speed during jam = %v, want %v", v, m.JamSpeed)
	}
	if v := m.SpeedOf(jam.Segment, jam.Batch+m.JamDurationBatches+1); v <= m.JamSpeed+5 {
		t.Errorf("speed after jam = %v, want back to normal", v)
	}
}

func TestLocRecordsVolume(t *testing.T) {
	m := NewTrafficModel(2)
	recs := m.LocRecords(0)
	total := 0
	for _, r := range recs {
		total += r
	}
	if math.Abs(float64(total-m.LocRecordsPerBatch)) > float64(m.LocRecordsPerBatch)/50 {
		t.Errorf("loc volume %d far from %d", total, m.LocRecordsPerBatch)
	}
}

func TestTrueJams(t *testing.T) {
	m := NewTrafficModel(13)
	jams := m.TrueJams(0, 100)
	if len(jams) == 0 {
		t.Fatal("no jams in 100 batches")
	}
	// roughly JamProbability of the incidents
	incidents := 0
	for b := 0; b <= 100; b++ {
		if _, ok := m.IncidentAt(b); ok {
			incidents++
		}
	}
	frac := float64(len(jams)) / float64(incidents)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("jam fraction %v far from %v", frac, m.JamProbability)
	}
}

func TestZipfCDF(t *testing.T) {
	z := newZipfCDF(10, 1)
	var sum float64
	for i := 0; i < 10; i++ {
		w := z.weight(i)
		if w <= 0 {
			t.Errorf("weight(%d) = %v", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if z.weight(0) <= z.weight(9) {
		t.Error("zipf weights not decreasing")
	}
}
