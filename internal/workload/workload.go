// Package workload provides the deterministic dataset generators of the
// evaluation (§VI-B of Su & Zhou, ICDE 2016).
//
// Q1's input in the paper is the WorldCup'98 website access log (73.3M
// records), which is not redistributable inside this repository; the
// AccessLogModel below generates a synthetic equivalent: access records
// with Zipfian object popularity, partitioned by server id, replayed at
// a configurable acceleration. Q2's input is synthetic in the paper as
// well: a user-location stream and a user-reported incident stream with
// users distributed over road segments by a Zipfian distribution
// (s=0.5); the TrafficModel reproduces that generator.
//
// All generators are deterministic functions of (seed, batch), which is
// what makes Storm-style source replay possible in the engine.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// zipfCDF precomputes a cumulative Zipf distribution over n items with
// parameter s.
type zipfCDF struct {
	cum []float64
}

func newZipfCDF(n int, s float64) zipfCDF {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return zipfCDF{cum: cum}
}

// sample draws one index from the distribution.
func (z zipfCDF) sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// weight returns the probability mass of item i.
func (z zipfCDF) weight(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// AccessLogModel generates the synthetic WorldCup-style access log.
type AccessLogModel struct {
	Seed        int64
	Servers     int     // number of servers (= source partitions)
	Objects     int     // number of distinct site objects
	Skew        float64 // Zipf parameter of object popularity
	RatePerTask int     // access records per batch per source task
	// TopSample bounds the number of distinct objects sampled per task
	// per batch (records are drawn in closed form from the Zipf weights;
	// the remainder volume is carried as unmaterialised counts).
	TopSample int

	zipf zipfCDF
}

// NewAccessLogModel builds the model with sane defaults. Fields may be
// adjusted before first use; the distribution is built lazily.
func NewAccessLogModel(seed int64) *AccessLogModel {
	return &AccessLogModel{
		Seed:        seed,
		Servers:     8,
		Objects:     5000,
		Skew:        0.8,
		RatePerTask: 2000,
		TopSample:   400,
	}
}

func (m *AccessLogModel) init() {
	if m.zipf.cum == nil {
		m.zipf = newZipfCDF(m.Objects, m.Skew)
	}
}

// ObjectName returns the canonical name of object i.
func ObjectName(i int) string { return fmt.Sprintf("obj-%05d", i) }

// objectAt maps popularity rank i on a given server task to a global
// object id. Each server has its own hot set (rank i on server t is
// object i*Servers+t), reflecting that different servers of the site
// host different content; losing a server's partition therefore removes
// its hot objects from the global top-k, which is what makes top-k
// accuracy track input completeness.
func (m *AccessLogModel) objectAt(task, rank int) int {
	return (rank*m.Servers + task) % m.Objects
}

// AccessCounts returns, for one source task and one batch, the number of
// access records per object, as a deterministic draw. The returned map
// holds materialised per-object counts for the TopSample most popular
// objects of the task's server; rest is the residual record volume of
// the unmaterialised tail.
func (m *AccessLogModel) AccessCounts(task, batch int) (counts map[int]int, rest int) {
	m.init()
	rng := rand.New(rand.NewSource(m.Seed ^ int64(task)*1_000_003 ^ int64(batch)*7_000_037))
	counts = make(map[int]int)
	// Expected counts for the head of the distribution, with
	// multiplicative noise; tail volume stays unmaterialised.
	materialised := 0
	for i := 0; i < m.TopSample && i < m.Objects; i++ {
		mean := float64(m.RatePerTask) * m.zipf.weight(i)
		n := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if n < 0 {
			n = 0
		}
		if n > 0 {
			counts[m.objectAt(task, i)] += n
			materialised += n
		}
	}
	rest = m.RatePerTask - materialised
	if rest < 0 {
		rest = 0
	}
	return counts, rest
}

// TrueTopK returns the objects with the highest total expected access
// counts — the ground truth ranking implied by the Zipf weights (rank r
// maps to the objects r*Servers..r*Servers+Servers-1, one per server).
func (m *AccessLogModel) TrueTopK(k int) []string {
	m.init()
	if k > m.Objects {
		k = m.Objects
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ObjectName(i)
	}
	return out
}

// TrafficModel generates Q2's two input streams: user locations and
// user-reported incidents (§VI-B).
type TrafficModel struct {
	Seed     int64
	Users    int     // users distributed over the segments
	Segments int     // virtual road segments
	Skew     float64 // Zipf parameter of the user distribution (paper: 0.5)
	// LocRecordsPerBatch is the total user-location records per batch
	// across all segments (paper: 20000/s).
	LocRecordsPerBatch int
	// IncidentEveryBatches is the gap between consecutive incidents
	// (paper: one incident every 2 seconds).
	IncidentEveryBatches int
	// JamProbability is the chance an incident slows its segment down
	// (producing a detectable jam).
	JamProbability float64
	// JamDurationBatches is how long a jam depresses the segment speed.
	JamDurationBatches int
	// NormalSpeed and JamSpeed are the segment speeds (km/h).
	NormalSpeed, JamSpeed float64

	zipf      zipfCDF
	userShare []float64
}

// NewTrafficModel builds the model with the paper's §VI-B parameters:
// 100000 users over 1000 segments, Zipf s=0.5, 20000 location records
// per batch, one incident every 2 batches. Fields may be adjusted before
// first use; the distribution is built lazily.
func NewTrafficModel(seed int64) *TrafficModel {
	return &TrafficModel{
		Seed:                 seed,
		Users:                100000,
		Segments:             1000,
		Skew:                 0.5,
		LocRecordsPerBatch:   20000,
		IncidentEveryBatches: 2,
		JamProbability:       0.7,
		JamDurationBatches:   10,
		NormalSpeed:          60,
		JamSpeed:             10,
	}
}

func (m *TrafficModel) init() {
	if m.zipf.cum != nil {
		return
	}
	m.zipf = newZipfCDF(m.Segments, m.Skew)
	m.userShare = make([]float64, m.Segments)
	for i := range m.userShare {
		m.userShare[i] = m.zipf.weight(i)
	}
}

// SegmentName returns the canonical segment key.
func SegmentName(i int) string { return fmt.Sprintf("seg-%04d", i) }

// UsersOn returns the number of users located on segment i.
func (m *TrafficModel) UsersOn(i int) int {
	m.init()
	return int(float64(m.Users)*m.userShare[i] + 0.5)
}

// Incident describes one generated incident.
type Incident struct {
	ID      string
	Segment int
	Batch   int
	Jam     bool // whether it actually causes a traffic jam
}

// IncidentAt returns the incident generated at the given batch, if any.
// The incident probability of a segment is proportional to the number of
// users located on it (§VI-B).
func (m *TrafficModel) IncidentAt(batch int) (Incident, bool) {
	m.init()
	if m.IncidentEveryBatches <= 0 || batch%m.IncidentEveryBatches != 0 {
		return Incident{}, false
	}
	rng := rand.New(rand.NewSource(m.Seed ^ 0x1234567 ^ int64(batch)*2_000_003))
	seg := m.zipf.sample(rng)
	return Incident{
		ID:      fmt.Sprintf("inc-%d-seg%d", batch, seg),
		Segment: seg,
		Batch:   batch,
		Jam:     rng.Float64() < m.JamProbability,
	}, true
}

// SpeedOf returns the average speed observed on segment seg at the given
// batch, accounting for active jams.
func (m *TrafficModel) SpeedOf(seg, batch int) float64 {
	m.init()
	for b := batch; b >= 0 && b > batch-m.JamDurationBatches; b-- {
		inc, ok := m.IncidentAt(b)
		if ok && inc.Segment == seg && inc.Jam {
			return m.JamSpeed
		}
	}
	// small deterministic wobble
	rng := rand.New(rand.NewSource(m.Seed ^ int64(seg)*3_000_017 ^ int64(batch)*5_000_011))
	return m.NormalSpeed + rng.Float64()*10 - 5
}

// LocRecords returns, for a batch, the per-segment user-location record
// counts (proportional to the users on each segment).
func (m *TrafficModel) LocRecords(batch int) []int {
	m.init()
	out := make([]int, m.Segments)
	for i := range out {
		out[i] = int(float64(m.LocRecordsPerBatch)*m.userShare[i] + 0.5)
	}
	return out
}

// TrueJams returns the IDs of all jam-causing incidents in the batch
// range [from, to] — Q2's ground truth (the accurate incident set IA is
// the set of incidents that incur traffic jams).
func (m *TrafficModel) TrueJams(from, to int) []string {
	var out []string
	for b := from; b <= to; b++ {
		if inc, ok := m.IncidentAt(b); ok && inc.Jam {
			out = append(out, inc.ID)
		}
	}
	return out
}
