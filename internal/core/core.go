// Package core implements the PPA plan manager — the orchestrating
// component of Su & Zhou (ICDE 2016): given a query topology and an
// active-replication resource budget, it produces a PPA replication
// plan (checkpoints for every task plus active replicas for a selected
// subset chosen by one of the §IV algorithms), exposes the plan's
// predicted quality metrics (OF, IC), converts plans into per-task
// engine strategies, and supports dynamic plan adaptation (§V-C) by
// diffing successive plans.
package core

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/topology"
)

// Algorithm selects the partially-active-plan optimiser.
type Algorithm int

const (
	// AlgorithmSA is the structure-aware planner (Alg. 5), the paper's
	// recommended choice for general topologies.
	AlgorithmSA Algorithm = iota
	// AlgorithmDP is the optimal dynamic programming planner (Alg. 1);
	// exponential in the number of MC-trees.
	AlgorithmDP
	// AlgorithmGreedy is the task-level greedy baseline (Alg. 2).
	AlgorithmGreedy
	// AlgorithmSAIC is the structure-aware planner optimising the IC
	// metric instead of OF — the paper's Fig. 12 "SA algorithm with IC
	// as the optimization metric".
	AlgorithmSAIC
	// AlgorithmPortfolio races every registered planner concurrently
	// and keeps the best plan.
	AlgorithmPortfolio

	// AlgorithmOther marks a Result produced by a registry planner with
	// no Algorithm enum value (structured, full, brute, or a
	// user-registered planner); Result.Planner carries the name.
	AlgorithmOther Algorithm = -1
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmDP:
		return "DP"
	case AlgorithmGreedy:
		return "Greedy"
	case AlgorithmSAIC:
		return "SA-IC"
	case AlgorithmPortfolio:
		return "Portfolio"
	case AlgorithmOther:
		return "Other"
	default:
		return "SA"
	}
}

// AlgorithmFor maps a registry planner name back to its Algorithm
// value; ok is false for planners without one.
func AlgorithmFor(name string) (Algorithm, bool) {
	for a, n := range algorithmNames {
		if n == name {
			return a, true
		}
	}
	return AlgorithmOther, false
}

// algorithmNames is the single Algorithm <-> planner-name table both
// PlannerName and AlgorithmFor derive from.
var algorithmNames = map[Algorithm]string{
	AlgorithmSA:        "sa",
	AlgorithmDP:        "dp",
	AlgorithmGreedy:    "greedy",
	AlgorithmSAIC:      "sa-ic",
	AlgorithmPortfolio: "portfolio",
}

// PlannerName maps the algorithm to its plan-registry planner name.
func (a Algorithm) PlannerName() string {
	if name, ok := algorithmNames[a]; ok {
		return name
	}
	return "sa"
}

// Result is a computed PPA replication plan with its predicted quality.
type Result struct {
	Algorithm Algorithm
	// Planner is the registry name of the planner that produced the
	// plan (e.g. "sa", "dp", "portfolio").
	Planner string
	Budget  int
	Plan    plan.Plan
	// OF is the worst-case Output Fidelity of the plan (Eq. 4 under the
	// §IV correlated-failure assumption).
	OF float64
	// IC is the worst-case Internal Completeness (the EDBT'14 baseline
	// metric).
	IC float64
	// CorrOF is the expected OF under the manager's domain-correlated
	// failure distribution (see Manager.SetScenarios); it equals OF when
	// no distribution is installed.
	CorrOF float64
}

// Manager plans PPA replication for one topology.
type Manager struct {
	topo *topology.Topology
	ctx  *plan.Context
}

// NewManager builds a plan manager for the topology.
func NewManager(t *topology.Topology) *Manager {
	return &Manager{topo: t, ctx: plan.NewContext(t)}
}

// Topology returns the managed topology.
func (m *Manager) Topology() *topology.Topology { return m.topo }

// Context exposes the planning context (for custom evaluation).
func (m *Manager) Context() *plan.Context { return m.ctx }

// BudgetForFraction converts a replication ratio (e.g. 0.5 for PPA-0.5)
// into a task budget.
func (m *Manager) BudgetForFraction(frac float64) int {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return int(math.Round(frac * float64(m.topo.NumTasks())))
}

// Plan computes a partially active replication plan with the given
// algorithm and budget (number of actively replicated tasks).
func (m *Manager) Plan(alg Algorithm, budget int) (Result, error) {
	switch alg {
	case AlgorithmSA, AlgorithmDP, AlgorithmGreedy, AlgorithmSAIC, AlgorithmPortfolio:
	default:
		return Result{}, fmt.Errorf("core: unknown algorithm %d", alg)
	}
	res, err := m.PlanByName(alg.PlannerName(), budget)
	if err != nil {
		return Result{}, err
	}
	res.Algorithm = alg
	return res, nil
}

// PlanByName computes a plan with any planner registered in the plan
// package (see plan.Names), including user-registered ones.
func (m *Manager) PlanByName(name string, budget int) (Result, error) {
	pl, ok := plan.Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("core: unknown planner %q (registered: %v)", name, plan.Names())
	}
	p, err := pl.Plan(m.ctx, budget)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s planning: %w", name, err)
	}
	alg, _ := AlgorithmFor(name)
	return Result{
		Algorithm: alg,
		Planner:   name,
		Budget:    budget,
		Plan:      p,
		OF:        m.ctx.OF(p),
		IC:        m.ctx.IC(p),
		CorrOF:    m.ctx.CorrObjective(p),
	}, nil
}

// SetScenarios installs a domain-correlated failure distribution on the
// manager's planning context: the *-corr planners optimise against it
// and Result.CorrOF reports the expected OF under it.
func (m *Manager) SetScenarios(s *plan.ScenarioSet) error { return m.ctx.SetScenarios(s) }

// Planners lists the names of the registered planners.
func Planners() []string { return plan.Names() }

// Strategies converts a plan into the per-task engine strategy vector:
// tasks in the plan get active replicas, all others use the passive
// default (checkpoints are taken for every task regardless — PPA's
// passive layer covers the whole set M).
func (m *Manager) Strategies(p plan.Plan, passive engine.Strategy) []engine.Strategy {
	out := make([]engine.Strategy, m.topo.NumTasks())
	for i := range out {
		if p.Has(topology.TaskID(i)) {
			out[i] = engine.StrategyActive
		} else {
			out[i] = passive
		}
	}
	return out
}

// Diff computes the dynamic-plan-adaptation delta of §V-C: which tasks
// need a new active replica and which replicas can be deactivated when
// switching from the old plan to the new one.
func Diff(old, new plan.Plan) (activate, deactivate []topology.TaskID) {
	for _, id := range new.Tasks() {
		if !old.Has(id) {
			activate = append(activate, id)
		}
	}
	for _, id := range old.Tasks() {
		if !new.Has(id) {
			deactivate = append(deactivate, id)
		}
	}
	return activate, deactivate
}
