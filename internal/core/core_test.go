package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 100)
	mid := b.AddOperator("mid", 2, topology.Independent, 1)
	snk := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(src, mid, topology.OneToOne)
	b.Connect(mid, snk, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPlanAlgorithms(t *testing.T) {
	m := NewManager(testTopo(t))
	for _, alg := range []Algorithm{AlgorithmSA, AlgorithmDP, AlgorithmGreedy, AlgorithmSAIC} {
		res, err := m.Plan(alg, 3)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Plan.Size() > 3 {
			t.Errorf("%s used %d tasks over budget 3", alg, res.Plan.Size())
		}
		if res.OF < 0 || res.OF > 1 || res.IC < 0 || res.IC > 1 {
			t.Errorf("%s: OF=%v IC=%v out of range", alg, res.OF, res.IC)
		}
	}
	if _, err := m.Plan(Algorithm(99), 3); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDPDominates(t *testing.T) {
	m := NewManager(testTopo(t))
	for budget := 0; budget <= 5; budget++ {
		dp, err := m.Plan(AlgorithmDP, budget)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := m.Plan(AlgorithmSA, budget)
		if err != nil {
			t.Fatal(err)
		}
		g, err := m.Plan(AlgorithmGreedy, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sa.OF > dp.OF+1e-12 || g.OF > dp.OF+1e-12 {
			t.Errorf("budget %d: DP OF %v beaten by SA %v or Greedy %v", budget, dp.OF, sa.OF, g.OF)
		}
	}
}

func TestSAICOptimisesIC(t *testing.T) {
	m := NewManager(testTopo(t))
	ic, err := m.Plan(AlgorithmSAIC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ic.IC <= 0 {
		t.Errorf("SA-IC plan has IC %v, want > 0 at budget 3", ic.IC)
	}
	// At a moderate budget the IC-optimised plan's IC should be at
	// least the OF-optimised plan's IC.
	icPlan, err := m.Plan(AlgorithmSAIC, 3)
	if err != nil {
		t.Fatal(err)
	}
	ofPlan, err := m.Plan(AlgorithmSA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if icPlan.IC < ofPlan.IC-1e-9 {
		t.Errorf("SA-IC plan IC %v below SA plan IC %v", icPlan.IC, ofPlan.IC)
	}
}

func TestBudgetForFraction(t *testing.T) {
	m := NewManager(testTopo(t)) // 5 tasks
	cases := map[float64]int{0: 0, 0.5: 3, 1: 5, -1: 0, 2: 5}
	for frac, want := range cases {
		if got := m.BudgetForFraction(frac); got != want {
			t.Errorf("BudgetForFraction(%v) = %d, want %d", frac, got, want)
		}
	}
}

func TestStrategies(t *testing.T) {
	m := NewManager(testTopo(t))
	res, err := m.Plan(AlgorithmSA, 3)
	if err != nil {
		t.Fatal(err)
	}
	strats := m.Strategies(res.Plan, engine.StrategyCheckpoint)
	if len(strats) != 5 {
		t.Fatalf("strategies len = %d", len(strats))
	}
	active := 0
	for i, s := range strats {
		if res.Plan.Has(topology.TaskID(i)) {
			if s != engine.StrategyActive {
				t.Errorf("task %d in plan but strategy %v", i, s)
			}
			active++
		} else if s != engine.StrategyCheckpoint {
			t.Errorf("task %d not in plan but strategy %v", i, s)
		}
	}
	if active != res.Plan.Size() {
		t.Errorf("%d active strategies, plan size %d", active, res.Plan.Size())
	}
}

func TestDiff(t *testing.T) {
	m := NewManager(testTopo(t))
	old, err := m.Plan(AlgorithmSA, 3)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := m.Plan(AlgorithmSA, 5)
	if err != nil {
		t.Fatal(err)
	}
	activate, deactivate := Diff(old.Plan, newRes.Plan)
	for _, id := range activate {
		if old.Plan.Has(id) || !newRes.Plan.Has(id) {
			t.Errorf("activate %d wrong", id)
		}
	}
	for _, id := range deactivate {
		if !old.Plan.Has(id) || newRes.Plan.Has(id) {
			t.Errorf("deactivate %d wrong", id)
		}
	}
	// Self-diff is empty.
	a, d := Diff(old.Plan, old.Plan)
	if len(a) != 0 || len(d) != 0 {
		t.Errorf("self diff = %v / %v", a, d)
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		AlgorithmSA: "SA", AlgorithmDP: "DP",
		AlgorithmGreedy: "Greedy", AlgorithmSAIC: "SA-IC",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestPlanByName(t *testing.T) {
	m := NewManager(testTopo(t))
	for _, name := range Planners() {
		res, err := m.PlanByName(name, 3)
		if err != nil {
			if name == "full" {
				continue // testTopo is not a full topology; a clean error is correct
			}
			t.Fatalf("%s: %v", name, err)
		}
		if res.Planner != name {
			t.Errorf("%s: result planner = %q", name, res.Planner)
		}
		if res.Plan.Size() > 3 {
			t.Errorf("%s: plan size %d exceeds budget", name, res.Plan.Size())
		}
	}
	if _, err := m.PlanByName("no-such-planner", 3); err == nil {
		t.Error("PlanByName accepted an unknown planner")
	}
}

func TestPlanPortfolioAlgorithm(t *testing.T) {
	m := NewManager(testTopo(t))
	res, err := m.Plan(AlgorithmPortfolio, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmPortfolio || res.Planner != "portfolio" {
		t.Errorf("result identifies as %v/%q", res.Algorithm, res.Planner)
	}
	// The portfolio includes the optimal planners; on this 5-task
	// topology budget 3 covers a complete chain, so OF must be positive
	// and at least the SA plan's.
	sa, err := m.Plan(AlgorithmSA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OF < sa.OF {
		t.Errorf("portfolio OF %v below SA OF %v", res.OF, sa.OF)
	}
	if res.OF <= 0 {
		t.Errorf("portfolio OF = %v, want > 0", res.OF)
	}
}
