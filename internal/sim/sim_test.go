package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var order []int
	c.At(2, func() { order = append(order, 2) })
	c.At(1, func() { order = append(order, 1) })
	c.At(3, func() { order = append(order, 3) })
	c.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 3 {
		t.Fatalf("Now = %v, want 3", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(5, func() { order = append(order, i) })
	}
	c.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	c := NewClock()
	var hits []Time
	c.After(1, func() {
		hits = append(hits, c.Now())
		c.After(2, func() { hits = append(hits, c.Now()) })
	})
	c.Run(100)
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	timer := c.At(1, func() { fired = true })
	timer.Cancel()
	c.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	var zero Timer
	zero.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1 and 2", fired)
	}
	if c.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", c.Now())
	}
	c.Run(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v after Run", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	c := NewClock()
	c.At(5, func() {})
	c.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past event")
		}
	}()
	c.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	c.After(-1, func() {})
}

func TestRunawayGuard(t *testing.T) {
	c := NewClock()
	var loop func()
	loop = func() { c.After(1, loop) }
	c.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected runaway panic")
		}
	}()
	c.Run(50)
}

func TestPendingAndStep(t *testing.T) {
	c := NewClock()
	c.At(1, func() {})
	c.At(2, func() {})
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	if !c.Step() || c.Now() != 1 {
		t.Fatal("Step misbehaved")
	}
	if !c.Step() || c.Now() != 2 {
		t.Fatal("second Step misbehaved")
	}
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTimeFormatting(t *testing.T) {
	if Time(1.5).String() != "1.500s" {
		t.Errorf("String = %q", Time(1.5).String())
	}
	if Time(2).Millis() != 2000 {
		t.Errorf("Millis = %v", Time(2).Millis())
	}
}

// TestCancelRemovesFromHeap pins the eager-removal behaviour: a
// cancelled timer leaves the event heap immediately instead of
// lingering until popped, so Pending reflects live events only and a
// cancelled timer can never fire.
func TestCancelRemovesFromHeap(t *testing.T) {
	c := NewClock()
	var fired []int
	t1 := c.At(1, func() { fired = append(fired, 1) })
	c.At(2, func() { fired = append(fired, 2) })
	t3 := c.At(3, func() { fired = append(fired, 3) })
	if c.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", c.Pending())
	}
	// Cancel the head and a middle element: both leave the heap now.
	t1.Cancel()
	t3.Cancel()
	if c.Pending() != 1 {
		t.Fatalf("Pending after cancels = %d, want 1", c.Pending())
	}
	// Double-cancel is a no-op.
	t3.Cancel()
	c.Run(100)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want only event 2", fired)
	}
	if c.Now() != 2 {
		t.Fatalf("Now = %v; cancelled events must not advance the clock", c.Now())
	}
}

// TestCancelDuringDrain cancels a pending timer from inside an earlier
// event and checks RunUntil never fires it.
func TestCancelDuringDrain(t *testing.T) {
	c := NewClock()
	fired := false
	victim := c.At(2, func() { fired = true })
	c.At(1, func() { victim.Cancel() })
	c.RunUntil(10)
	if fired {
		t.Fatal("timer cancelled mid-drain still fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", c.Pending())
	}
	// Cancelling after the drain (timer long gone) stays a no-op.
	victim.Cancel()
}

// TestCancelAfterFire verifies cancelling an already-fired timer does
// not disturb the remaining schedule.
func TestCancelAfterFire(t *testing.T) {
	c := NewClock()
	var fired []int
	t1 := c.At(1, func() { fired = append(fired, 1) })
	c.At(2, func() { fired = append(fired, 2) })
	if !c.Step() {
		t.Fatal("no first event")
	}
	t1.Cancel() // already fired: no-op
	c.Run(10)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events", fired)
	}
}

// TestStaleTimerHandle pins the generation fencing of recycled events:
// a Timer held across its event's firing must not cancel the unrelated
// event that later reuses the same slot.
func TestStaleTimerHandle(t *testing.T) {
	c := NewClock()
	var fired []int
	stale := c.At(1, func() { fired = append(fired, 1) })
	if !c.Step() {
		t.Fatal("no event")
	}
	// The slot of the fired event is recycled for the next schedule.
	c.At(2, func() { fired = append(fired, 2) })
	stale.Cancel() // stale handle: must be a no-op
	c.Run(10)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events (stale Cancel hit the recycled slot)", fired)
	}
}

// TestEventRecycling verifies the free list makes steady-state
// scheduling allocation-free: after warm-up, schedule+fire cycles do
// not allocate.
func TestEventRecycling(t *testing.T) {
	c := NewClock()
	tick := 0
	var loop func()
	loop = func() {
		tick++
		if tick < 2048 {
			c.After(1, loop)
		}
	}
	c.After(1, loop) // warm up the slab
	c.Run(5000)
	allocs := testing.AllocsPerRun(100, func() {
		c.At(c.Now(), func() {})
		c.Step()
	})
	// The closure itself may allocate; the kernel must not add event or
	// timer allocations on top.
	if allocs > 1 {
		t.Fatalf("schedule+fire allocates %v objects/op, want <= 1 (closure only)", allocs)
	}
}

// pooledRunner is a Runner for the AtRun path tests.
type pooledRunner struct {
	hits *[]Time
	c    *Clock
}

func (r *pooledRunner) Run() { *r.hits = append(*r.hits, r.c.Now()) }

// TestAtRun checks the closure-free Runner path fires like At and
// interleaves with closure events in (time, seq) order.
func TestAtRun(t *testing.T) {
	c := NewClock()
	var hits []Time
	r := &pooledRunner{hits: &hits, c: c}
	c.AtRun(2, r)
	c.At(1, func() { hits = append(hits, c.Now()) })
	c.AfterRun(3, r)
	c.Run(10)
	if len(hits) != 3 || hits[0] != 1 || hits[1] != 2 || hits[2] != 3 {
		t.Fatalf("hits = %v", hits)
	}
	tm := c.AtRun(5, r)
	tm.Cancel()
	c.Run(10)
	if len(hits) != 3 {
		t.Fatalf("cancelled Runner event fired: %v", hits)
	}
}

// TestClockReset verifies Reset drops pending events, rewinds time and
// seq, and that a reset clock schedules bit-identically to a fresh one.
func TestClockReset(t *testing.T) {
	run := func(c *Clock) []Time {
		var hits []Time
		c.At(1, func() { hits = append(hits, c.Now()) })
		c.At(1, func() { hits = append(hits, c.Now()+0.5) })
		c.After(2, func() { hits = append(hits, c.Now()) })
		c.RunUntil(10)
		return hits
	}
	c := NewClock()
	first := run(c)
	c.At(20, func() { t.Error("leftover event fired after Reset") })
	c.Reset()
	if c.Now() != 0 || c.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", c.Now(), c.Pending())
	}
	second := run(c)
	if len(first) != len(second) {
		t.Fatalf("reset run diverged: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset run diverged at %d: %v vs %v", i, first, second)
		}
	}
}
