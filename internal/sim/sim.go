// Package sim provides a minimal deterministic discrete-event simulation
// kernel: a virtual clock with an event heap. All recovery-latency
// experiments of the reproduction run on virtual time so that results
// are reproducible bit-for-bit and independent of host speed, replacing
// the paper's wall-clock EC2 measurements (see DESIGN.md §4).
//
// The kernel is allocation-free on the steady-state hot path: events are
// slab-allocated and recycled through a free list, so scheduling and
// cancelling reuse event objects instead of heap-allocating, and a
// fired or cancelled event drops its callback reference immediately —
// the heap retains nothing between events.
package sim

import (
	"fmt"
)

// Time is virtual time in seconds.
type Time float64

// Millis returns the time in whole milliseconds, for reporting.
func (t Time) Millis() float64 { return float64(t) * 1000 }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Runner is an event callback carried as an interface instead of a
// closure. Schedulers with a hot path (the engine's per-batch delivery
// events) implement Run on a pooled struct and pass it to AtRun /
// AfterRun, avoiding the per-event closure allocation of At / After.
type Runner interface {
	Run()
}

// Timer is a handle to a scheduled event, usable to cancel it. The zero
// Timer is valid and cancels nothing. Timers are values: they stay safe
// after their event fired and its slot was recycled for a later event —
// the generation check turns a stale Cancel into a no-op.
type Timer struct {
	clock *Clock
	ev    *event
	gen   uint32
}

// Cancel prevents the event from firing and removes it from the event
// heap immediately, so cancelled events neither linger in the queue nor
// retain their callbacks; the event object returns to the clock's free
// list. Cancelling a zero, already-fired or already-cancelled timer is
// a no-op.
func (t Timer) Cancel() {
	e := t.ev
	if e == nil || t.clock == nil || e.gen != t.gen || e.index < 0 {
		return
	}
	t.clock.remove(e.index)
	t.clock.recycle(e)
}

// event is one scheduled callback. Events live in clock-owned slabs and
// cycle through the free list; gen distinguishes incarnations of the
// same slot so stale Timer handles cannot cancel a recycled event.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	run   Runner
	index int32 // position in the heap; -1 when popped or free
	gen   uint32
}

// less orders events by time, then by scheduling order, so events at
// the same instant fire FIFO. (at, seq) pairs are unique, making the
// firing order independent of heap-internal tie-breaking.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Clock is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order. Not safe for concurrent
// use: the whole simulation is single-threaded by design.
type Clock struct {
	now  Time
	heap []*event
	seq  uint64
	free []*event
	slab []event // bump-allocation tail of the current slab chunk
}

// slabChunk is the number of events allocated per slab growth. Chunks
// amortise allocation during warm-up; after the first GC-free steady
// state is reached the free list recycles events indefinitely.
const slabChunk = 128

// NewClock returns a clock at time zero with no pending events.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would make the simulation non-causal.
func (c *Clock) At(t Time, fn func()) Timer {
	e := c.schedule(t)
	e.fn = fn
	return Timer{clock: c, ev: e, gen: e.gen}
}

// AtRun schedules r.Run at absolute virtual time t. Semantics match At;
// passing a pooled Runner avoids the closure allocation.
func (c *Clock) AtRun(t Time, r Runner) Timer {
	e := c.schedule(t)
	e.run = r
	return Timer{clock: c, ev: e, gen: e.gen}
}

// After schedules fn d seconds from now.
func (c *Clock) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// AfterRun schedules r.Run d seconds from now.
func (c *Clock) AfterRun(d Time, r Runner) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.AtRun(c.now+d, r)
}

// schedule takes an event from the free list (or slab) and pushes it
// onto the heap at time t with the next sequence number.
func (c *Clock) schedule(t Time) *event {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	var e *event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		if len(c.slab) == 0 {
			c.slab = make([]event, slabChunk)
		}
		e = &c.slab[0]
		c.slab = c.slab[1:]
	}
	c.seq++
	e.at = t
	e.seq = c.seq
	c.push(e)
	return e
}

// recycle clears an event's callback references and returns it to the
// free list. The generation bump invalidates outstanding Timer handles.
func (c *Clock) recycle(e *event) {
	e.fn = nil
	e.run = nil
	e.index = -1
	e.gen++
	c.free = append(c.free, e)
}

// Pending returns the number of events still queued. Cancelled events
// are removed from the queue eagerly and never counted.
func (c *Clock) Pending() int { return len(c.heap) }

// Step fires the next event, advancing the clock, and reports whether
// an event was fired. The event's callback reference is cleared before
// the callback runs, so a fired event retains nothing.
func (c *Clock) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := c.pop()
	fn, run := e.fn, e.run
	c.recycle(e)
	c.now = e.at
	if run != nil {
		run.Run()
	} else {
		fn()
	}
	return true
}

// Run fires events until none remain. maxEvents guards against runaway
// simulations; Run panics when it is exceeded.
func (c *Clock) Run(maxEvents int) {
	for i := 0; ; i++ {
		if i >= maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events; runaway simulation?", maxEvents))
		}
		if !c.Step() {
			return
		}
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline.
func (c *Clock) RunUntil(deadline Time) {
	for len(c.heap) > 0 && c.heap[0].at <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Reset returns the clock to time zero with no pending events. Queued
// events are cancelled and recycled (their callbacks dropped), and the
// sequence counter restarts, so a reset clock schedules and fires
// bit-identically to a freshly constructed one.
func (c *Clock) Reset() {
	for _, e := range c.heap {
		c.recycle(e)
	}
	c.heap = c.heap[:0]
	c.now = 0
	c.seq = 0
}

// --- intrusive binary heap over (at, seq) ---

func (c *Clock) push(e *event) {
	e.index = int32(len(c.heap))
	c.heap = append(c.heap, e)
	c.up(len(c.heap) - 1)
}

func (c *Clock) pop() *event {
	h := c.heap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	c.heap = h[:n]
	if n > 0 {
		c.down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i.
func (c *Clock) remove(i int32) {
	h := c.heap
	n := len(h) - 1
	e := h[i]
	if int(i) != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	c.heap = h[:n]
	if int(i) < n {
		c.down(int(i))
		c.up(int(i))
	}
	e.index = -1
}

func (c *Clock) up(i int) {
	h := c.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = int32(i)
		i = parent
	}
	h[i] = e
	e.index = int32(i)
}

func (c *Clock) down(i int) {
	h := c.heap
	n := len(h)
	e := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			child = r
		}
		if !h[child].less(e) {
			break
		}
		h[i] = h[child]
		h[i].index = int32(i)
		i = child
	}
	h[i] = e
	e.index = int32(i)
}
