// Package sim provides a minimal deterministic discrete-event simulation
// kernel: a virtual clock with an event heap. All recovery-latency
// experiments of the reproduction run on virtual time so that results
// are reproducible bit-for-bit and independent of host speed, replacing
// the paper's wall-clock EC2 measurements (see DESIGN.md §4).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds.
type Time float64

// Millis returns the time in whole milliseconds, for reporting.
func (t Time) Millis() float64 { return float64(t) * 1000 }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Timer is a handle to a scheduled event, usable to cancel it.
type Timer struct {
	cancelled bool
	clock     *Clock
	event     *event
}

// Cancel prevents the event from firing and removes it from the event
// heap immediately, so cancelled events neither linger in the queue nor
// retain their callbacks. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.cancelled {
		return
	}
	t.cancelled = true
	if t.event != nil && t.event.index >= 0 {
		heap.Remove(&t.clock.heap, t.event.index)
	}
	t.event = nil
	t.clock = nil
}

type event struct {
	at    Time
	seq   uint64
	fn    func()
	timer *Timer
	index int // position in the heap; -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order. Not safe for concurrent
// use: the whole simulation is single-threaded by design.
type Clock struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewClock returns a clock at time zero with no pending events.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would make the simulation non-causal.
func (c *Clock) At(t Time, fn func()) *Timer {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	timer := &Timer{clock: c}
	c.seq++
	e := &event{at: t, seq: c.seq, fn: fn, timer: timer}
	timer.event = e
	heap.Push(&c.heap, e)
	return timer
}

// After schedules fn d seconds from now.
func (c *Clock) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Pending returns the number of events still queued. Cancelled events
// are removed from the queue eagerly and never counted.
func (c *Clock) Pending() int { return len(c.heap) }

// Step fires the next event, advancing the clock, and reports whether
// an event was fired.
func (c *Clock) Step() bool {
	for len(c.heap) > 0 {
		e := heap.Pop(&c.heap).(*event)
		if e.timer.cancelled {
			continue // defensive: Cancel removes events eagerly
		}
		e.timer.event = nil
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain. maxEvents guards against runaway
// simulations; Run panics when it is exceeded.
func (c *Clock) Run(maxEvents int) {
	for i := 0; ; i++ {
		if i >= maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events; runaway simulation?", maxEvents))
		}
		if !c.Step() {
			return
		}
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline.
func (c *Clock) RunUntil(deadline Time) {
	for {
		e := c.peek()
		if e == nil || e.at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

func (c *Clock) peek() *event {
	if len(c.heap) > 0 {
		return c.heap[0]
	}
	return nil
}
