// Package sketch implements a deterministic, mergeable streaming
// quantile sketch in the KLL family (Karnin, Lang, Liberty: "Optimal
// Quantile Approximation in Streams"). It is the aggregation unit of
// the failure campaigns: each reduction shard folds its scenarios into
// one Sketch per metric at O(k log(n/k)) memory — independent of the
// stream length — and shards merge in shard order into the campaign
// summary. Because a Sketch is a pure function of its operation
// sequence (Add/Merge calls in order), two campaigns that feed the
// shards identically produce bit-identical summaries at any worker
// count; the sketch is also the natural wire unit for a future
// coordinator/worker split.
//
// Determinism. Classic KLL flips random coins during compaction. This
// implementation draws its coins from a splitmix64 counter seeded at
// construction, so the sketch is fully deterministic and order-stable:
// same seed, same operation sequence, same state. The counter advances
// once per coin, and Merge folds the other sketch's counter into the
// receiver's, keeping merged state deterministic too.
//
// Accuracy. Compacting a level of n items with weight w keeps every
// other item at weight 2w, perturbing any rank by at most w. Summed
// over the geometrically shrinking levels this yields the standard KLL
// additive rank-error bound epsilon*n with epsilon = O(1/k); for the
// default K = 256 the documented bound is RankError() = 1% of the
// stream length, enforced by property tests against exact references
// on random and adversarial streams. Streams of at most k items are
// never compacted, so small samples are summarised exactly. Count,
// Sum (hence Mean), Min and Max are always exact.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// DefaultK is the default accuracy parameter: the capacity of the
// highest (most recently fed) compactor level. Memory grows linearly
// with K; the rank-error bound shrinks as 1/K.
const DefaultK = 256

// Sketch is a deterministic mergeable streaming quantile sketch.
// The zero value is not usable; construct with New or NewSeeded.
type Sketch struct {
	k    int
	seed uint64
	coin uint64 // compaction-coin counter (advances once per flip)

	// levels[l] holds items of weight 1<<l; level 0 receives Adds.
	levels [][]float64
	size   int // total stored items across levels

	count    uint64
	sum      float64
	min, max float64
}

// New returns an empty sketch with accuracy parameter k (DefaultK when
// k <= 0) and seed 0.
func New(k int) *Sketch { return NewSeeded(k, 0) }

// NewSeeded returns an empty sketch with an explicit compaction-coin
// seed. Sketches that are merged together should share a seed (the
// campaign gives each metric its own).
func NewSeeded(k int, seed uint64) *Sketch {
	if k <= 0 {
		k = DefaultK
	}
	if k < 8 {
		k = 8
	}
	return &Sketch{k: k, seed: seed}
}

// K returns the accuracy parameter.
func (s *Sketch) K() int { return s.k }

// RankError returns the sketch's documented additive rank-error bound
// as a fraction of the stream length: a Quantile(q) answer is an item
// whose true rank is within RankError()*Count() of ceil(q*Count()).
// Streams of at most K items are exact (error 0).
func (s *Sketch) RankError() float64 {
	if s.count <= uint64(s.k) {
		return 0
	}
	return 2.56 / float64(s.k)
}

// Count returns the number of items added (exact, merge-safe).
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact running sum of every item added.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns Sum/Count (0 for an empty sketch).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact minimum (0 for an empty sketch).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum (0 for an empty sketch).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Reset restores the empty state, retaining level backing arrays and
// the seed (the coin counter restarts, so a reset sketch replays a
// stream bit-identically to a fresh one).
func (s *Sketch) Reset() {
	for l := range s.levels {
		s.levels[l] = s.levels[l][:0]
	}
	s.levels = s.levels[:0]
	s.size, s.coin = 0, 0
	s.count, s.sum = 0, 0
	s.min, s.max = 0, 0
}

// Add feeds one item into the sketch.
func (s *Sketch) Add(x float64) {
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sum += x
	if len(s.levels) == 0 {
		s.addLevel()
	}
	s.levels[0] = append(s.levels[0], x)
	s.size++
	s.compress()
}

// Merge folds o into s; o is left untouched. Both sketches keep their
// documented error bound; merging is deterministic for a fixed merge
// order (the campaign merges shards in shard order). The receiver's
// accuracy parameter is tightened to the smaller of the two.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.k < s.k {
		s.k = o.k
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	s.coin += o.coin
	for l, lvl := range o.levels {
		if len(lvl) == 0 {
			continue
		}
		for len(s.levels) <= l {
			s.addLevel()
		}
		s.levels[l] = append(s.levels[l], lvl...)
		s.size += len(lvl)
	}
	s.compress()
}

// Quantile returns an item of the stream whose rank approximates the
// nearest-rank quantile q in [0, 1]: for an uncompacted sketch it is
// exactly the item at rank ceil(q*Count()); after compaction the rank
// error is bounded by RankError()*Count(). q <= 0 yields the exact
// minimum, q >= 1 the exact maximum; an empty sketch yields 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	r := uint64(math.Ceil(q * float64(s.count)))
	if r < 1 {
		r = 1
	}
	if r >= s.count {
		return s.max
	}
	type weighted struct {
		v float64
		w uint64
	}
	items := make([]weighted, 0, s.size)
	for l, lvl := range s.levels {
		w := uint64(1) << uint(l)
		for _, v := range lvl {
			items = append(items, weighted{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum >= r {
			return it.v
		}
	}
	return s.max
}

// String describes the sketch state (for debugging and tests).
func (s *Sketch) String() string {
	return fmt.Sprintf("sketch{k=%d n=%d stored=%d levels=%d}", s.k, s.count, s.size, len(s.levels))
}

// addLevel extends the level stack by one empty level, reusing the
// backing array a Reset left behind when possible.
func (s *Sketch) addLevel() {
	if len(s.levels) < cap(s.levels) {
		s.levels = s.levels[:len(s.levels)+1]
		s.levels[len(s.levels)-1] = s.levels[len(s.levels)-1][:0]
	} else {
		s.levels = append(s.levels, nil)
	}
}

// capacity returns the item capacity of level l: the top level holds k
// items and each level below shrinks by 2/3 (never under 2) — the KLL
// geometric compactor schedule.
func (s *Sketch) capacity(l int) int {
	c := float64(s.k)
	for d := len(s.levels) - 1 - l; d > 0; d-- {
		c *= 2.0 / 3.0
	}
	if c < 2 {
		return 2
	}
	return int(math.Ceil(c))
}

func (s *Sketch) totalCapacity() int {
	t := 0
	for l := range s.levels {
		t += s.capacity(l)
	}
	return t
}

// compress compacts the lowest over-capacity level until the total
// stored size fits the capacity schedule again.
func (s *Sketch) compress() {
	for s.size > s.totalCapacity() {
		compacted := false
		for l := 0; l < len(s.levels); l++ {
			if len(s.levels[l]) > s.capacity(l) && len(s.levels[l]) >= 2 {
				s.compact(l)
				compacted = true
				break
			}
		}
		if !compacted {
			return
		}
	}
}

// compact sorts level l and promotes every other item (deterministic
// coin offset) to level l+1 at doubled weight; an odd leftover stays
// at level l, its end chosen by a second coin so neither extreme is
// systematically favoured.
func (s *Sketch) compact(l int) {
	b := s.levels[l]
	sort.Float64s(b)
	keepLeftover := len(b)%2 == 1
	var leftover float64
	if keepLeftover {
		if s.flip() == 0 {
			leftover = b[0]
			b = b[1:]
		} else {
			leftover = b[len(b)-1]
			b = b[:len(b)-1]
		}
	}
	if l+1 == len(s.levels) {
		s.addLevel()
	}
	off := s.flip()
	for i := off; i < len(b); i += 2 {
		s.levels[l+1] = append(s.levels[l+1], b[i])
	}
	s.size -= len(b) / 2
	dst := s.levels[l][:0]
	if keepLeftover {
		dst = append(dst, leftover)
	}
	s.levels[l] = dst
}

// flip draws one deterministic coin from the seeded splitmix64 counter.
func (s *Sketch) flip() int {
	s.coin++
	return int(mix64(s.seed+s.coin*0x9e3779b97f4a7c15) & 1)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
