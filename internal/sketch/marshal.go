package sketch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary serialisation. A sketch's state is a pure function of its
// Add/Merge sequence, and the encoding below captures that state
// exactly — k, seed, coin counter, exact aggregates and every level's
// items in order — so decode restores a sketch bit-identical to the
// original: continuing to Add, Merge or Query on the decoded copy
// matches the original operation for operation. This is what lets a
// distributed campaign ship per-shard sketch states across process
// boundaries and still merge them into the same summary a
// single-process run produces.
//
// Format (version 1, little-endian):
//
//	magic "ppaq" | version byte | uint32 k | uint64 seed | uint64 coin
//	| uint64 count | float64 sum | float64 min | float64 max
//	| uint32 nLevels | nLevels × (uint32 len | len × float64)
//	| uint32 CRC-32C of everything before
//
// Floats are IEEE-754 bit patterns, so round trips are lossless. The
// trailing checksum (Castagnoli) rejects corruption; the version byte
// rejects encodings from a different format revision.

const (
	marshalMagic   = "ppaq"
	marshalVersion = 1

	// marshalHeaderLen is the fixed-size prefix: magic, version, k,
	// seed, coin, count, sum, min, max, level count.
	marshalHeaderLen = len(marshalMagic) + 1 + 4 + 8*3 + 8*3 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalBinary encodes the sketch state deterministically: two
// sketches with identical state produce identical bytes.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	n := marshalHeaderLen + 4
	for _, lvl := range s.levels {
		n += 4 + 8*len(lvl)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, marshalMagic...)
	buf = append(buf, marshalVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, s.coin)
	buf = binary.LittleEndian.AppendUint64(buf, s.count)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sum))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.max))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.levels)))
	for _, lvl := range s.levels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lvl)))
		for _, v := range lvl {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// UnmarshalBinary replaces the receiver's state with the encoded one.
// It rejects truncated input, wrong magic, unknown versions, checksum
// mismatches and trailing garbage; on error the receiver is left
// unchanged.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < marshalHeaderLen+4 {
		return fmt.Errorf("sketch: encoding truncated: %d bytes", len(data))
	}
	if string(data[:len(marshalMagic)]) != marshalMagic {
		return fmt.Errorf("sketch: bad magic %q", data[:len(marshalMagic)])
	}
	if v := data[len(marshalMagic)]; v != marshalVersion {
		return fmt.Errorf("sketch: unsupported encoding version %d (have %d)", v, marshalVersion)
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != crc {
		return fmt.Errorf("sketch: checksum mismatch: %08x != %08x (corrupt encoding)", got, crc)
	}
	r := body[len(marshalMagic)+1:]
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(r); r = r[4:]; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(r); r = r[8:]; return v }
	k := int(u32())
	if k < 8 {
		return fmt.Errorf("sketch: invalid accuracy parameter %d in encoding", k)
	}
	seed, coin, count := u64(), u64(), u64()
	sum := math.Float64frombits(u64())
	mn := math.Float64frombits(u64())
	mx := math.Float64frombits(u64())
	nLevels := int(u32())
	// Every level costs at least a 4-byte length, so a count beyond
	// len(r)/4 cannot be satisfied by the remaining bytes. Checking
	// before the allocation keeps a crafted (checksum-valid) encoding
	// from forcing a multi-gigabyte levels slice.
	if nLevels > len(r)/4 {
		return fmt.Errorf("sketch: implausible level count %d for %d remaining bytes", nLevels, len(r))
	}
	levels := make([][]float64, nLevels)
	size := 0
	for l := range levels {
		if len(r) < 4 {
			return fmt.Errorf("sketch: encoding truncated in level %d header", l)
		}
		n := int(u32())
		if len(r) < 8*n {
			return fmt.Errorf("sketch: encoding truncated in level %d items", l)
		}
		lvl := make([]float64, n)
		for i := range lvl {
			lvl[i] = math.Float64frombits(u64())
		}
		levels[l] = lvl
		size += n
	}
	if len(r) != 0 {
		return fmt.Errorf("sketch: %d trailing bytes after encoding", len(r))
	}
	s.k, s.seed, s.coin = k, seed, coin
	s.count, s.sum, s.min, s.max = count, sum, mn, mx
	s.levels, s.size = levels, size
	return nil
}
