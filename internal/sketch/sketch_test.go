package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank reference (campaign.NewDist's
// convention): the item at rank ceil(q*n) of the sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// rankRange returns the [lo, hi] 1-based rank range the value occupies
// in the sorted sample (a range, not a point, because of duplicates).
func rankRange(sorted []float64, v float64) (int, int) {
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo + 1, hi
}

// checkRankError asserts every quantile answer of s lands within
// eps*n ranks of the exact nearest-rank target on the sorted sample.
func checkRankError(t *testing.T, name string, s *Sketch, sorted []float64, eps float64) {
	t.Helper()
	n := len(sorted)
	slack := int(math.Ceil(eps * float64(n)))
	for _, q := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		target := int(math.Ceil(q * float64(n)))
		if target < 1 {
			target = 1
		}
		lo, hi := rankRange(sorted, got)
		if hi == 0 || lo > hi {
			t.Fatalf("%s: q=%v answer %v not in stream", name, q, got)
		}
		if lo-slack > target || hi+slack < target {
			t.Errorf("%s: q=%v answer %v occupies ranks [%d,%d], target %d, slack %d",
				name, q, got, lo, hi, target, slack)
		}
	}
}

// streams builds the named test stream of length n.
func stream(name string, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	switch name {
	case "uniform":
		for i := range xs {
			xs[i] = rng.Float64()
		}
	case "gaussian":
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
	case "ascending":
		for i := range xs {
			xs[i] = float64(i)
		}
	case "descending":
		for i := range xs {
			xs[i] = float64(n - i)
		}
	case "organ-pipe":
		for i := range xs {
			if i%2 == 0 {
				xs[i] = float64(i)
			} else {
				xs[i] = float64(n - i)
			}
		}
	case "constant":
		for i := range xs {
			xs[i] = 42
		}
	case "heavy-duplicates":
		for i := range xs {
			xs[i] = float64(rng.Intn(10))
		}
	case "pareto-tail":
		for i := range xs {
			xs[i] = math.Pow(1-rng.Float64(), -2)
		}
	default:
		panic("unknown stream " + name)
	}
	return xs
}

var streamNames = []string{
	"uniform", "gaussian", "ascending", "descending",
	"organ-pipe", "constant", "heavy-duplicates", "pareto-tail",
}

// TestExactSmallSamples: streams of at most K items are never
// compacted, so every quantile matches the exact nearest-rank
// reference bit for bit, and RankError reports 0.
func TestExactSmallSamples(t *testing.T) {
	for _, name := range streamNames {
		for _, n := range []int{1, 2, 3, 17, 100, DefaultK} {
			s := New(0)
			xs := stream(name, n, 7)
			for _, x := range xs {
				s.Add(x)
			}
			if got := s.RankError(); got != 0 {
				t.Fatalf("%s n=%d: RankError = %v, want 0", name, n, got)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range []float64{0, 0.001, 0.25, 0.5, 0.95, 0.99, 1} {
				want := exactQuantile(sorted, q)
				if got := s.Quantile(q); got != want {
					t.Errorf("%s n=%d q=%v: got %v, want exact %v", name, n, q, got, want)
				}
			}
			if s.Min() != sorted[0] || s.Max() != sorted[n-1] {
				t.Errorf("%s n=%d: min/max %v/%v, want %v/%v", name, n, s.Min(), s.Max(), sorted[0], sorted[n-1])
			}
		}
	}
}

// TestRankErrorBound: the documented bound holds on random and
// adversarial streams long enough to force many compactions.
func TestRankErrorBound(t *testing.T) {
	sizes := []int{10_000, 100_000}
	if testing.Short() {
		sizes = []int{10_000}
	}
	for _, name := range streamNames {
		for _, n := range sizes {
			for seed := int64(1); seed <= 3; seed++ {
				s := NewSeeded(0, uint64(seed))
				xs := stream(name, n, seed)
				for _, x := range xs {
					s.Add(x)
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				checkRankError(t, name, s, sorted, s.RankError())
			}
		}
	}
}

// TestExactAggregates: Count, Sum, Min and Max stay exact at any
// stream length and across merges.
func TestExactAggregates(t *testing.T) {
	xs := stream("uniform", 50_000, 3)
	var sum float64
	s := New(64)
	o := New(64)
	for i, x := range xs {
		sum += x
		if i%2 == 0 {
			s.Add(x)
		} else {
			o.Add(x)
		}
	}
	s.Merge(o)
	if s.Count() != uint64(len(xs)) {
		t.Fatalf("count %d, want %d", s.Count(), len(xs))
	}
	if math.Abs(s.Sum()-sum) > 1e-9*math.Abs(sum) {
		t.Fatalf("sum %v, want %v", s.Sum(), sum)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.Min() != sorted[0] || s.Max() != sorted[len(xs)-1] {
		t.Fatalf("min/max %v/%v, want %v/%v", s.Min(), s.Max(), sorted[0], sorted[len(xs)-1])
	}
}

// shardFold splits xs round-robin over nShards sketches (fed in index
// order, the campaign's contract) and left-folds them in shard order.
func shardFold(xs []float64, nShards int, seed uint64) *Sketch {
	shards := make([]*Sketch, nShards)
	for i := range shards {
		shards[i] = NewSeeded(0, seed)
	}
	for i, x := range xs {
		shards[i%nShards].Add(x)
	}
	out := shards[0]
	for _, sh := range shards[1:] {
		out.Merge(sh)
	}
	return out
}

// TestShardFoldDeterminism: the campaign's reduction shape — shards fed
// in index order, merged in shard order — is bit-reproducible, run
// after run, for any shard count.
func TestShardFoldDeterminism(t *testing.T) {
	xs := stream("gaussian", 30_000, 11)
	for _, nShards := range []int{1, 2, 8, 13} {
		a := shardFold(xs, nShards, 5)
		b := shardFold(xs, nShards, 5)
		for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
			if av, bv := a.Quantile(q), b.Quantile(q); av != bv {
				t.Fatalf("shards=%d q=%v: %v vs %v across identical folds", nShards, q, av, bv)
			}
		}
		if a.Count() != b.Count() || a.Sum() != b.Sum() || a.coin != b.coin {
			t.Fatalf("shards=%d: diverging sketch state", nShards)
		}
	}
}

// TestMergeOrderWithinBound: merging the same shards in any order (and
// any association) still satisfies the documented rank-error bound —
// approximate commutativity/associativity, the property that lets a
// future coordinator fold worker sketches as they arrive.
func TestMergeOrderWithinBound(t *testing.T) {
	xs := stream("uniform", 40_000, 17)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	const nShards = 8
	build := func() []*Sketch {
		shards := make([]*Sketch, nShards)
		for i := range shards {
			shards[i] = NewSeeded(0, 5)
		}
		for i, x := range xs {
			shards[i%nShards].Add(x)
		}
		return shards
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		shards := build()
		order := rng.Perm(nShards)
		out := shards[order[0]]
		for _, i := range order[1:] {
			out.Merge(shards[i])
		}
		if out.Count() != uint64(len(xs)) {
			t.Fatalf("trial %d: count %d", trial, out.Count())
		}
		checkRankError(t, "merge-order", out, sorted, out.RankError())
	}
	// Tree-shaped association.
	shards := build()
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {4, 6}, {0, 4}} {
		shards[pair[0]].Merge(shards[pair[1]])
	}
	checkRankError(t, "merge-tree", shards[0], sorted, shards[0].RankError())
}

// TestMergeIntoEmpty: folding shards into a fresh empty sketch (the
// campaign's final reduction) preserves the bound and the aggregates.
func TestMergeIntoEmpty(t *testing.T) {
	xs := stream("pareto-tail", 20_000, 23)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSeeded(0, 5)
	}
	for i, x := range xs {
		shards[i%4].Add(x)
	}
	out := NewSeeded(0, 5)
	for _, sh := range shards {
		out.Merge(sh)
	}
	if out.Count() != uint64(len(xs)) {
		t.Fatalf("count %d", out.Count())
	}
	checkRankError(t, "merge-empty", out, sorted, out.RankError())
}

// TestReset: a reset sketch replays a stream bit-identically to a
// fresh one, and empty-state accessors return zeros.
func TestReset(t *testing.T) {
	s := NewSeeded(32, 9)
	for _, x := range stream("uniform", 5_000, 1) {
		s.Add(x)
	}
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("reset sketch not empty: %s", s)
	}
	fresh := NewSeeded(32, 9)
	xs := stream("gaussian", 5_000, 2)
	for _, x := range xs {
		s.Add(x)
		fresh.Add(x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a, b := s.Quantile(q), fresh.Quantile(q); a != b {
			t.Fatalf("q=%v: reset replay %v differs from fresh %v", q, a, b)
		}
	}
}

// TestMemoryFlat: stored items stay bounded by the capacity schedule —
// growing the stream 100x must not grow the stored footprint.
func TestMemoryFlat(t *testing.T) {
	s := New(0)
	for _, x := range stream("uniform", 10_000, 1) {
		s.Add(x)
	}
	at10k := s.size
	for _, x := range stream("uniform", 990_000, 2) {
		s.Add(x)
	}
	if s.size > at10k*2 {
		t.Fatalf("stored items grew with the stream: %d at 10k vs %d at 1M", at10k, s.size)
	}
	if s.size > 4*s.k {
		t.Fatalf("stored %d items, far above the O(k) schedule for k=%d", s.size, s.k)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(0)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
