package sketch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// Weighted is a deterministic, mergeable streaming quantile summary
// over weighted samples — the aggregation unit of importance-sampled
// campaigns, where each scenario carries a likelihood-ratio weight and
// quantiles must be answered against the reweighted (target)
// distribution. Like Sketch it is a pure function of its Add/Merge
// sequence: compaction draws its coins from a splitmix64 counter
// seeded at construction, Merge folds the other summary's counter into
// the receiver's, and serialisation is bit-exact — so shard states
// merge into the same bytes on every process, whatever worker produced
// them.
//
// Compaction model. The summary buffers up to 4k weighted items; when
// full it sorts by value and collapses adjacent pairs, keeping one of
// the two values per pair — chosen by a deterministic coin biased by
// the pair's weights (the heavier item survives proportionally more
// often) — at the pair's combined weight. Total weight is preserved
// exactly at every step, and each collapse displaces at most one
// pair's weight of cumulative mass, so quantile answers degrade
// gracefully (property-tested against an exact weighted reference).
// Streams of at most 4k items are summarised exactly. Count, SumW,
// SumWX (hence Mean), Min and Max are always exact.
type Weighted struct {
	k    int
	seed uint64
	coin uint64

	items []weightedItem

	count      uint64
	sumW       float64
	sumWX      float64
	sumW2      float64
	min, max   float64
	compactAt  int
	compactLen int
}

type weightedItem struct {
	v, w float64
}

// NewWeighted returns an empty weighted summary with accuracy
// parameter k (DefaultK when k <= 0) and seed 0.
func NewWeighted(k int) *Weighted { return NewSeededWeighted(k, 0) }

// NewSeededWeighted returns an empty weighted summary with an explicit
// compaction-coin seed. Summaries that are merged together should
// share a seed.
func NewSeededWeighted(k int, seed uint64) *Weighted {
	if k <= 0 {
		k = DefaultK
	}
	if k < 8 {
		k = 8
	}
	return &Weighted{k: k, seed: seed, compactAt: 4 * k, compactLen: 2 * k}
}

// K returns the accuracy parameter.
func (s *Weighted) K() int { return s.k }

// Count returns the number of Add calls (exact, merge-safe).
func (s *Weighted) Count() uint64 { return s.count }

// SumW returns the exact total weight added.
func (s *Weighted) SumW() float64 { return s.sumW }

// SumW2 returns the exact sum of squared weights — the denominator of
// the classic effective-sample-size estimate (SumW²/SumW2).
func (s *Weighted) SumW2() float64 { return s.sumW2 }

// Mean returns the weighted mean SumWX/SumW (0 when empty).
func (s *Weighted) Mean() float64 {
	if s.sumW == 0 {
		return 0
	}
	return s.sumWX / s.sumW
}

// Min returns the exact minimum value (0 when empty).
func (s *Weighted) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum value (0 when empty).
func (s *Weighted) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Add feeds one sample with weight w. Non-positive weights carry no
// probability mass and are ignored.
func (s *Weighted) Add(x, w float64) {
	if w <= 0 {
		return
	}
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sumW += w
	s.sumWX += x * w
	s.sumW2 += w * w
	s.items = append(s.items, weightedItem{x, w})
	if len(s.items) >= s.compactAt {
		s.compact()
	}
}

// Merge folds o into s; o is left untouched. Merging is deterministic
// for a fixed merge order (the campaign merges shards in shard order).
// The receiver's accuracy parameter is tightened to the smaller of the
// two.
func (s *Weighted) Merge(o *Weighted) {
	if o == nil || o.count == 0 {
		return
	}
	if o.k < s.k {
		s.k = o.k
		s.compactAt = o.compactAt
		s.compactLen = o.compactLen
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sumW += o.sumW
	s.sumWX += o.sumWX
	s.sumW2 += o.sumW2
	s.coin += o.coin
	s.items = append(s.items, o.items...)
	for len(s.items) >= s.compactAt {
		s.compact()
	}
}

// Quantile returns a stored value approximating the weighted
// nearest-rank quantile q in [0, 1]: the smallest stored value whose
// cumulative weight reaches q*SumW. q <= 0 yields the exact minimum,
// q >= 1 the exact maximum; an empty summary yields 0.
func (s *Weighted) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	sorted := append([]weightedItem(nil), s.items...)
	sortItems(sorted)
	target := q * s.sumW
	var cum float64
	for _, it := range sorted {
		cum += it.w
		if cum >= target {
			return it.v
		}
	}
	return s.max
}

// String describes the summary state (for debugging and tests).
func (s *Weighted) String() string {
	return fmt.Sprintf("weighted{k=%d n=%d stored=%d sumw=%g}", s.k, s.count, len(s.items), s.sumW)
}

// compact sorts the buffer by value and collapses adjacent pairs: each
// pair keeps one of its two values — a deterministic weighted coin
// picks the left value with probability w1/(w1+w2) — at the combined
// weight, halving the buffer while preserving total weight exactly. An
// odd trailing item survives unchanged. Repeated until the buffer is
// at most compactLen items.
func (s *Weighted) compact() {
	for len(s.items) > s.compactLen {
		sortItems(s.items)
		out := s.items[:0]
		i := 0
		for ; i+1 < len(s.items); i += 2 {
			a, b := s.items[i], s.items[i+1]
			v := a.v
			if s.flipW(a.w, b.w) == 1 {
				v = b.v
			}
			out = append(out, weightedItem{v, a.w + b.w})
		}
		if i < len(s.items) {
			out = append(out, s.items[i])
		}
		s.items = out
	}
}

// flipW draws one deterministic weighted coin: 0 (pick left) with
// probability wl/(wl+wr).
func (s *Weighted) flipW(wl, wr float64) int {
	s.coin++
	u := float64(mix64(s.seed+s.coin*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	if u*(wl+wr) < wl {
		return 0
	}
	return 1
}

// sortItems orders by value, then weight — a total order on the fields
// the compactor reads, so equal items are interchangeable and the
// compaction result depends only on the item multiset and coin state.
func sortItems(items []weightedItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v < items[j].v
		}
		return items[i].w < items[j].w
	})
}

// Binary serialisation, mirroring the Sketch format: bit-exact state
// capture with a trailing CRC-32C.
//
// Format (version 1, little-endian):
//
//	magic "ppaw" | version byte | uint32 k | uint64 seed | uint64 coin
//	| uint64 count | float64 sumW | float64 sumWX | float64 sumW2
//	| float64 min | float64 max | uint32 nItems
//	| nItems × (float64 v | float64 w) | uint32 CRC-32C
const (
	weightedMagic     = "ppaw"
	weightedVersion   = 1
	weightedHeaderLen = len(weightedMagic) + 1 + 4 + 8*2 + 8*6 + 4
)

// MarshalBinary encodes the summary state deterministically: two
// summaries with identical state produce identical bytes.
func (s *Weighted) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, weightedHeaderLen+16*len(s.items)+4)
	buf = append(buf, weightedMagic...)
	buf = append(buf, weightedVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, s.coin)
	buf = binary.LittleEndian.AppendUint64(buf, s.count)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sumW))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sumWX))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sumW2))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.max))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.items)))
	for _, it := range s.items {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.v))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.w))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// UnmarshalBinary replaces the receiver's state with the encoded one.
// It rejects truncated input, wrong magic, unknown versions, checksum
// mismatches and trailing garbage; on error the receiver is left
// unchanged.
func (s *Weighted) UnmarshalBinary(data []byte) error {
	if len(data) < weightedHeaderLen+4 {
		return fmt.Errorf("sketch: weighted encoding truncated: %d bytes", len(data))
	}
	if string(data[:len(weightedMagic)]) != weightedMagic {
		return fmt.Errorf("sketch: bad weighted magic %q", data[:len(weightedMagic)])
	}
	if v := data[len(weightedMagic)]; v != weightedVersion {
		return fmt.Errorf("sketch: unsupported weighted encoding version %d (have %d)", v, weightedVersion)
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != crc {
		return fmt.Errorf("sketch: weighted checksum mismatch: %08x != %08x (corrupt encoding)", got, crc)
	}
	r := body[len(weightedMagic)+1:]
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(r); r = r[4:]; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(r); r = r[8:]; return v }
	k := int(u32())
	if k < 8 {
		return fmt.Errorf("sketch: invalid weighted accuracy parameter %d in encoding", k)
	}
	seed, coin, count := u64(), u64(), u64()
	sumW := math.Float64frombits(u64())
	sumWX := math.Float64frombits(u64())
	sumW2 := math.Float64frombits(u64())
	mn := math.Float64frombits(u64())
	mx := math.Float64frombits(u64())
	n := int(u32())
	// Every item costs 16 bytes; a count beyond len(r)/16 cannot be
	// satisfied, so reject it before allocating.
	if n > len(r)/16 {
		return fmt.Errorf("sketch: implausible weighted item count %d for %d remaining bytes", n, len(r))
	}
	items := make([]weightedItem, n)
	for i := range items {
		items[i] = weightedItem{math.Float64frombits(u64()), math.Float64frombits(u64())}
	}
	if len(r) != 0 {
		return fmt.Errorf("sketch: %d trailing bytes after weighted encoding", len(r))
	}
	s.k, s.seed, s.coin = k, seed, coin
	s.count, s.sumW, s.sumWX, s.sumW2 = count, sumW, sumWX, sumW2
	s.min, s.max, s.items = mn, mx, items
	s.compactAt, s.compactLen = 4*k, 2*k
	return nil
}
