package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// fill feeds n deterministic pseudo-random items into s.
func fill(s *Sketch, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.Add(rng.NormFloat64()*10 + 50)
	}
}

func mustMarshal(t *testing.T, s *Sketch) []byte {
	t.Helper()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return b
}

func mustUnmarshal(t *testing.T, b []byte) *Sketch {
	t.Helper()
	var s Sketch
	if err := s.UnmarshalBinary(b); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	return &s
}

func TestMarshalRoundTripBitIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256, 5000} {
		s := NewSeeded(64, 42)
		fill(s, int64(n), n)
		enc := mustMarshal(t, s)
		if again := mustMarshal(t, s); !bytes.Equal(enc, again) {
			t.Fatalf("n=%d: marshal is not deterministic", n)
		}
		d := mustUnmarshal(t, enc)
		if got := mustMarshal(t, d); !bytes.Equal(enc, got) {
			t.Fatalf("n=%d: decode+re-encode differs from original encoding", n)
		}
		// The decoded sketch must behave bit-identically: continue the
		// stream on both and compare states again.
		fill(s, 99, 500)
		fill(d, 99, 500)
		if !bytes.Equal(mustMarshal(t, s), mustMarshal(t, d)) {
			t.Fatalf("n=%d: decoded sketch diverges from original after further Adds", n)
		}
		if s.Count() != d.Count() || s.Sum() != d.Sum() || s.Min() != d.Min() || s.Max() != d.Max() {
			t.Fatalf("n=%d: aggregate mismatch after decode", n)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
			if s.Quantile(q) != d.Quantile(q) {
				t.Fatalf("n=%d: Quantile(%v) differs after decode", n, q)
			}
		}
	}
}

func TestMergeAfterDecodeMatchesInProcessMerge(t *testing.T) {
	mk := func(seed int64, n int) *Sketch {
		s := NewSeeded(64, 7)
		fill(s, seed, n)
		return s
	}
	// In-process: a.Merge(b) directly.
	a, b := mk(1, 3000), mk(2, 1700)
	a.Merge(b)
	want := mustMarshal(t, a)

	// Across the wire: encode both, decode into fresh sketches, merge.
	da := mustUnmarshal(t, mustMarshal(t, mk(1, 3000)))
	db := mustUnmarshal(t, mustMarshal(t, mk(2, 1700)))
	da.Merge(db)
	if !bytes.Equal(want, mustMarshal(t, da)) {
		t.Fatal("merge after decode differs from in-process merge")
	}

	// Merging a decoded empty sketch is an exact no-op.
	de := mustUnmarshal(t, mustMarshal(t, NewSeeded(64, 7)))
	da.Merge(de)
	if !bytes.Equal(want, mustMarshal(t, da)) {
		t.Fatal("merging a decoded empty sketch changed the state")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := NewSeeded(32, 3)
	fill(s, 5, 1000)
	enc := mustMarshal(t, s)

	check := func(name string, data []byte) {
		t.Helper()
		var d Sketch
		if err := d.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
	}
	check("empty", nil)
	check("truncated header", enc[:10])
	check("truncated body", enc[:len(enc)-20])
	check("trailing garbage", append(append([]byte(nil), enc...), 0))

	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	check("bad magic", bad)

	bad = append([]byte(nil), enc...)
	bad[len(marshalMagic)] = marshalVersion + 1
	check("future version", bad)

	// Flip one payload byte: the checksum must catch it.
	bad = append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x40
	check("flipped bit", bad)
}

func TestUnmarshalLeavesReceiverIntactOnError(t *testing.T) {
	s := NewSeeded(32, 3)
	fill(s, 5, 200)
	before := mustMarshal(t, s)
	if err := s.UnmarshalBinary(before[:12]); err == nil {
		t.Fatal("expected an error")
	}
	if !bytes.Equal(before, mustMarshal(t, s)) {
		t.Fatal("failed UnmarshalBinary mutated the receiver")
	}
}
