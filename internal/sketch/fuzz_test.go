package sketch

import (
	"bytes"
	"testing"
)

// FuzzSketchUnmarshalBinary feeds arbitrary bytes to UnmarshalBinary.
// The decoder must either reject the input with an error or accept it
// — never panic, and never allocate proportionally to an unvalidated
// length field (a checksum-valid encoding is trivial to craft, so the
// CRC is corruption detection, not a trust boundary). Accepted inputs
// must re-marshal to the same bytes: acceptance means the encoding was
// canonical.
func FuzzSketchUnmarshalBinary(f *testing.F) {
	// Seed with real encodings at a few sizes, plus their truncations
	// and the degenerate inputs the error paths handle.
	for _, n := range []int{0, 1, 100} {
		s := NewSeeded(32, 7)
		for i := 0; i < n; i++ {
			s.Add(float64(i) * 1.5)
		}
		enc, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("ppaq"))
	f.Add([]byte("ppaq\x01"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted a non-canonical encoding:\n in: %x\nout: %x", data, out)
		}
	})
}
