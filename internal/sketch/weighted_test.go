package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// wRankCheck asserts that est is within tol of the weighted quantile q
// of the sample: the total weight strictly below est must not exceed
// q*W + tol*W, and the weight at-or-below est must reach q*W - tol*W.
func wRankCheck(t *testing.T, vs, ws []float64, q, est, tol float64) {
	t.Helper()
	var total, below, atOrBelow float64
	for i, v := range vs {
		total += ws[i]
		if v < est {
			below += ws[i]
		}
		if v <= est {
			atOrBelow += ws[i]
		}
	}
	target := q * total
	if below > target+tol*total || atOrBelow < target-tol*total {
		t.Fatalf("q=%v: estimate %v has weight-rank [%v,%v], want within %v of %v",
			q, est, below, atOrBelow, tol*total, target)
	}
}

func TestWeightedSmallIsExact(t *testing.T) {
	s := NewWeighted(64)
	vs := []float64{5, 1, 9, 3, 7}
	ws := []float64{1, 2, 1, 4, 2}
	for i, v := range vs {
		s.Add(v, ws[i])
	}
	// Cumulative weights after sorting by value: 1:2, 3:6, 5:7, 7:9, 9:10.
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.2, 1}, {0.21, 3}, {0.6, 3}, {0.7, 5}, {0.9, 7}, {0.95, 9}, {1, 9},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if s.Count() != 5 || s.SumW() != 10 {
		t.Fatalf("count=%d sumw=%v, want 5, 10", s.Count(), s.SumW())
	}
	wantMean := (5*1 + 1*2 + 9*1 + 3*4 + 7*2) / 10.0
	if got := s.Mean(); got != wantMean {
		t.Fatalf("Mean = %v, want %v", got, wantMean)
	}
}

func TestWeightedIgnoresNonPositiveWeight(t *testing.T) {
	s := NewWeighted(16)
	s.Add(1, 0)
	s.Add(2, -3)
	if s.Count() != 0 || s.SumW() != 0 {
		t.Fatalf("non-positive weights must be ignored: %v", s)
	}
}

func TestWeightedQuantilesVsExactReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewWeighted(DefaultK)
	n := 10_000
	vs := make([]float64, n)
	ws := make([]float64, n)
	for i := range vs {
		vs[i] = rng.NormFloat64() * 10
		ws[i] = 0.05 + rng.Float64()*4 // spread of likelihood-ratio-like weights
		s.Add(vs[i], ws[i])
	}
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		wRankCheck(t, vs, ws, q, s.Quantile(q), 0.02)
	}
}

func TestWeightedMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, parts := 8000, 8
	vs := make([]float64, n)
	ws := make([]float64, n)
	merged := NewSeededWeighted(DefaultK, 42)
	shards := make([]*Weighted, parts)
	for p := range shards {
		shards[p] = NewSeededWeighted(DefaultK, 42)
	}
	for i := range vs {
		vs[i] = rng.ExpFloat64()
		ws[i] = 0.1 + rng.Float64()
		shards[i*parts/n].Add(vs[i], ws[i])
	}
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.Count() != uint64(n) {
		t.Fatalf("merged count %d, want %d", merged.Count(), n)
	}
	// SumW is exact for the merge's addition order: per-shard subtotals
	// folded in shard order.
	var wantW float64
	for p := range shards {
		var sub float64
		for i := range ws {
			if i*parts/n == p {
				sub += ws[i]
			}
		}
		wantW += sub
	}
	if got := merged.SumW(); got != wantW {
		t.Fatalf("merged SumW %v, want %v (must be exact)", got, wantW)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		wRankCheck(t, vs, ws, q, merged.Quantile(q), 0.03)
	}
}

// TestWeightedDeterministicReplay pins the campaign contract: the
// summary is a pure function of its operation sequence, so replaying
// the same Adds and shard merges produces bit-identical bytes.
func TestWeightedDeterministicReplay(t *testing.T) {
	build := func() *Weighted {
		rng := rand.New(rand.NewSource(3))
		shards := make([]*Weighted, 4)
		for p := range shards {
			shards[p] = NewSeededWeighted(128, 9)
		}
		for i := 0; i < 5000; i++ {
			shards[i/1250].Add(rng.NormFloat64(), 0.2+rng.Float64())
		}
		out := NewSeededWeighted(128, 9)
		for _, sh := range shards {
			out.Merge(sh)
		}
		return out
	}
	a, _ := build().MarshalBinary()
	b, _ := build().MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("replaying the same operation sequence produced different bytes")
	}
}

func TestWeightedMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSeededWeighted(64, 17)
	for i := 0; i < 3000; i++ {
		s.Add(rng.Float64()*100, 0.5+rng.Float64())
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Weighted
	if err := d.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	re, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("decode/re-encode changed the bytes")
	}
	// The decoded copy must continue identically to the original.
	s.Add(3.5, 2)
	d.Add(3.5, 2)
	a, _ := s.MarshalBinary()
	b, _ := d.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("decoded copy diverged from the original after further Adds")
	}
}

func TestWeightedUnmarshalRejectsCorruption(t *testing.T) {
	s := NewWeighted(32)
	s.Add(1, 1)
	s.Add(2, 3)
	enc, _ := s.MarshalBinary()
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":  func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad crc":    func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"bad vers":   func(b []byte) []byte { b[4] = 99; return b },
		"bit flip":   func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b },
		"trailing":   func(b []byte) []byte { return append(b, 0) },
		"only magic": func(b []byte) []byte { return b[:4] },
	} {
		var d Weighted
		if err := d.UnmarshalBinary(mutate(append([]byte(nil), enc...))); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}
