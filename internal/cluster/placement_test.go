package cluster

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// twoRackCluster builds 2 processing + nStandby standby nodes with two
// racks in separate zones. Processing node 0 and 1 go to rack A and B;
// standby nodes are attached by the caller.
func twoRackCluster(t *testing.T, nStandby int) (c *Cluster, rackA, rackB DomainID) {
	t.Helper()
	c = New(2, nStandby)
	zoneA, err := c.AddDomain(RootDomain, "zone", "zone-a")
	if err != nil {
		t.Fatal(err)
	}
	zoneB, err := c.AddDomain(RootDomain, "zone", "zone-b")
	if err != nil {
		t.Fatal(err)
	}
	rackA, err = c.AddDomain(zoneA, "rack", "rack-a")
	if err != nil {
		t.Fatal(err)
	}
	rackB, err = c.AddDomain(zoneB, "rack", "rack-b")
	if err != nil {
		t.Fatal(err)
	}
	attach(t, c, 0, rackA)
	attach(t, c, 1, rackB)
	return c, rackA, rackB
}

func attach(t *testing.T, c *Cluster, n NodeID, dom DomainID) {
	t.Helper()
	if err := c.AttachNode(n, dom); err != nil {
		t.Fatal(err)
	}
}

// TestAntiAffinityRejectsSharedRack is the regression test for the
// headline bug: when the only free standby shares the primary's rack,
// placement must fail with the anti-affinity error instead of silently
// co-locating replica and primary in one failure domain.
func TestAntiAffinityRejectsSharedRack(t *testing.T) {
	c, rackA, _ := twoRackCluster(t, 1)
	attach(t, c, 2, rackA) // the single standby shares rack A
	c.Place(7, 0)          // primary on node 0 in rack A

	err := c.PlaceReplicas([]topology.TaskID{7}, PlacementAntiAffinity)
	if !errors.Is(err, ErrAntiAffinity) {
		t.Fatalf("co-located standby accepted: err=%v", err)
	}
	if _, ok := c.ReplicaNodeOf(7); ok {
		t.Error("replica placed despite anti-affinity error")
	}

	// The legacy policy happily co-locates — that is the bug this
	// subsystem fixes, kept only as an explicit comparison baseline.
	if err := c.PlaceReplicas([]topology.TaskID{7}, PlacementRoundRobin); err != nil {
		t.Fatalf("round-robin: %v", err)
	}
	if n, _ := c.ReplicaNodeOf(7); c.RackOf(n) != rackA {
		t.Error("round-robin placement expected to co-locate in this layout")
	}
}

// TestAntiAffinityPicksOtherDomain: with one standby in the primary's
// rack and one outside, the replica must land outside.
func TestAntiAffinityPicksOtherDomain(t *testing.T) {
	c, rackA, rackB := twoRackCluster(t, 2)
	attach(t, c, 2, rackA)
	attach(t, c, 3, rackB)
	c.Place(7, 0) // primary in rack A

	if err := c.PlaceReplicas([]topology.TaskID{7}, PlacementAntiAffinity); err != nil {
		t.Fatal(err)
	}
	n, ok := c.ReplicaNodeOf(7)
	if !ok || c.RackOf(n) != rackB {
		t.Fatalf("replica on node %v (rack %v), want the rack-B standby", n, c.RackOf(n))
	}
}

// TestAntiAffinityPrefersOtherZone: two eligible standbys outside the
// primary's rack, one in the primary's zone and one in another zone —
// the other zone wins even when it means a higher node ID.
func TestAntiAffinityPrefersOtherZone(t *testing.T) {
	c := New(1, 2)
	zoneA, _ := c.AddDomain(RootDomain, "zone", "zone-a")
	zoneB, _ := c.AddDomain(RootDomain, "zone", "zone-b")
	rackA1, _ := c.AddDomain(zoneA, "rack", "rack-a1")
	rackA2, _ := c.AddDomain(zoneA, "rack", "rack-a2")
	rackB1, _ := c.AddDomain(zoneB, "rack", "rack-b1")
	attach(t, c, 0, rackA1) // primary node
	attach(t, c, 1, rackA2) // same zone, different rack
	attach(t, c, 2, rackB1) // different zone
	c.Place(3, 0)

	if err := c.PlaceReplicas([]topology.TaskID{3}, PlacementAntiAffinity); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.ReplicaNodeOf(3); n != 2 {
		t.Errorf("replica on node %d, want the other-zone standby 2", n)
	}
}

// TestAntiAffinitySpreadsLoad: several replicas with equally eligible
// standbys must spread instead of piling on the lowest node ID, and the
// placement must be deterministic across identically built clusters.
func TestAntiAffinitySpreadsLoad(t *testing.T) {
	build := func() *Cluster {
		c := New(2, 3)
		zoneA, _ := c.AddDomain(RootDomain, "zone", "zone-a")
		zoneB, _ := c.AddDomain(RootDomain, "zone", "zone-b")
		rackA, _ := c.AddDomain(zoneA, "rack", "rack-a")
		rackB, _ := c.AddDomain(zoneB, "rack", "rack-b")
		for _, n := range []NodeID{0, 1} {
			if err := c.AttachNode(n, rackA); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []NodeID{2, 3, 4} {
			if err := c.AttachNode(n, rackB); err != nil {
				t.Fatal(err)
			}
		}
		c.Place(0, 0)
		c.Place(1, 1)
		c.Place(2, 0)
		return c
	}
	c := build()
	tasks := []topology.TaskID{0, 1, 2}
	if err := c.PlaceReplicas(tasks, PlacementAntiAffinity); err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]int{}
	for _, id := range tasks {
		n, ok := c.ReplicaNodeOf(id)
		if !ok {
			t.Fatalf("no replica for %d", id)
		}
		seen[n]++
	}
	if len(seen) != 3 {
		t.Errorf("3 replicas on %d standby nodes, want spread over 3", len(seen))
	}

	d := build()
	if err := d.PlaceReplicas(tasks, PlacementAntiAffinity); err != nil {
		t.Fatal(err)
	}
	for _, id := range tasks {
		a, _ := c.ReplicaNodeOf(id)
		b, _ := d.ReplicaNodeOf(id)
		if a != b {
			t.Errorf("task %d placed on %d vs %d across identical clusters", id, a, b)
		}
	}
}

// TestAntiAffinityWithoutDomains: on a cluster with no rack domains the
// policy degrades to load spreading and never errors.
func TestAntiAffinityWithoutDomains(t *testing.T) {
	c := New(2, 2)
	c.Place(0, 0)
	c.Place(1, 1)
	if err := c.PlaceReplicas([]topology.TaskID{0, 1}, PlacementAntiAffinity); err != nil {
		t.Fatal(err)
	}
	a, _ := c.ReplicaNodeOf(0)
	b, _ := c.ReplicaNodeOf(1)
	if a == b {
		t.Errorf("both replicas on node %d, want spread", a)
	}
}

func TestParsePlacementPolicy(t *testing.T) {
	for _, p := range PlacementPolicies {
		got, err := ParsePlacementPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlacementPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlacementPolicy("feng-shui"); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := New(1, 1).PlaceReplicas([]topology.TaskID{0}, PlacementPolicy(42)); err == nil {
		t.Error("unknown policy value accepted by PlaceReplicas")
	}
}

// TestReversePlacementIndex pins the node→tasks index that FailNode and
// the scenario sampler read: it must track placements, re-placements
// and stay sorted.
func TestReversePlacementIndex(t *testing.T) {
	c := New(2, 0)
	c.Place(3, 0)
	c.Place(1, 0)
	c.Place(2, 1)
	if got := c.TasksOn(0); !reflect.DeepEqual(got, []topology.TaskID{1, 3}) {
		t.Fatalf("TasksOn(0) = %v, want [1 3]", got)
	}
	c.Place(1, 1) // move task 1 across nodes
	if got := c.TasksOn(0); !reflect.DeepEqual(got, []topology.TaskID{3}) {
		t.Fatalf("after move, TasksOn(0) = %v, want [3]", got)
	}
	if got := c.TasksOn(1); !reflect.DeepEqual(got, []topology.TaskID{1, 2}) {
		t.Fatalf("after move, TasksOn(1) = %v, want [1 2]", got)
	}
	if got := c.FailNode(1); !reflect.DeepEqual(got, []topology.TaskID{1, 2}) {
		t.Fatalf("FailNode(1) = %v, want [1 2]", got)
	}
	// Failing an already-failed node reports nothing, but the index
	// keeps the placement (Reset models repair, not rebuilding).
	if got := c.FailNode(1); got != nil {
		t.Fatalf("second FailNode(1) = %v, want nil", got)
	}
	c.Reset()
	if got := c.FailNode(1); !reflect.DeepEqual(got, []topology.TaskID{1, 2}) {
		t.Fatalf("after Reset, FailNode(1) = %v, want [1 2]", got)
	}
}
