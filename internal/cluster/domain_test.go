package cluster

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/topology"
)

func TestDomainTree(t *testing.T) {
	c := New(4, 2)
	if c.Domain(RootDomain) == nil || c.Domain(RootDomain).Kind != "cluster" {
		t.Fatal("no root domain")
	}
	zone, err := c.AddDomain(RootDomain, "zone", "z0")
	if err != nil {
		t.Fatal(err)
	}
	rack, err := c.AddDomain(zone, "rack", "r0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDomain(99, "rack", "orphan"); err == nil {
		t.Error("unknown parent accepted")
	}
	if got := c.Domain(zone).Children(); len(got) != 1 || got[0] != rack {
		t.Errorf("zone children = %v", got)
	}
	if got := c.DomainsOfKind("rack"); len(got) != 1 || got[0] != rack {
		t.Errorf("racks = %v", got)
	}

	if err := c.AttachNode(0, rack); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachNode(1, zone); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachNode(99, rack); err == nil {
		t.Error("attaching unknown node accepted")
	}
	if err := c.AttachNode(0, 99); err == nil {
		t.Error("attaching to unknown domain accepted")
	}
	if got := c.DomainOf(0); got != rack {
		t.Errorf("DomainOf(0) = %d, want rack %d", got, rack)
	}
	if got := c.DomainOf(2); got != RootDomain {
		t.Errorf("unattached node domain = %d, want root", got)
	}
	if got := c.DomainOf(99); got != NoDomain {
		t.Errorf("unknown node domain = %d, want NoDomain", got)
	}
	// Zone subtree holds both the directly attached node and the rack's.
	if got := c.DomainNodes(zone); !reflect.DeepEqual(got, []NodeID{0, 1}) {
		t.Errorf("zone nodes = %v", got)
	}
	// Root covers everything, including never-attached nodes.
	if got := c.DomainNodes(RootDomain); len(got) != 6 {
		t.Errorf("root nodes = %v", got)
	}
	// Reattaching moves the node between domains.
	if err := c.AttachNode(0, zone); err != nil {
		t.Fatal(err)
	}
	if got := c.DomainNodes(rack); len(got) != 0 {
		t.Errorf("rack still owns %v after reattach", got)
	}
}

func TestFailDomain(t *testing.T) {
	topo := testTopo(t) // 6 tasks
	c := New(3, 1)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	zone, _ := c.AddDomain(RootDomain, "zone", "z0")
	rack, _ := c.AddDomain(zone, "rack", "r0")
	for _, n := range []NodeID{0, 1} {
		if err := c.AttachNode(n, rack); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AttachNode(3, zone); err != nil { // the standby node
		t.Fatal(err)
	}

	failed := c.FailDomain(rack)
	if len(failed) != 4 {
		t.Fatalf("rack failure hit %v, want the 4 tasks of nodes 0-1", failed)
	}
	for i := 1; i < len(failed); i++ {
		if failed[i-1] >= failed[i] {
			t.Fatal("failed tasks not sorted")
		}
	}
	if c.Node(3).Failed {
		t.Error("zone-level standby failed by rack failure")
	}
	// Failing the enclosing zone takes the standby down and returns no
	// new primary tasks beyond those already failed.
	if again := c.FailDomain(zone); len(again) != 0 {
		t.Errorf("double domain failure returned %v", again)
	}
	if !c.Node(3).Failed {
		t.Error("zone failure missed its standby node")
	}
	if c.FailDomain(99) != nil {
		t.Error("unknown domain failure returned tasks")
	}

	c.Reset()
	if got := c.FailedNodes(); len(got) != 0 {
		t.Errorf("after Reset FailedNodes = %v", got)
	}
	// Domains survive Reset; a second campaign can re-fail them.
	if got := c.FailDomain(rack); len(got) != 4 {
		t.Errorf("re-failing rack after Reset hit %v", got)
	}
}

// TestFailNodeEdgeCases covers the satellite checklist: double-fail,
// unknown node, standby nodes, Reset, FailedNodes.
func TestFailNodeEdgeCases(t *testing.T) {
	topo := testTopo(t)
	c := New(3, 2)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	if got := c.FailNode(99); got != nil {
		t.Errorf("failing unknown node returned %v", got)
	}
	if got := c.FailNode(-1); got != nil {
		t.Errorf("failing negative node returned %v", got)
	}
	// Standby nodes host no primaries: failing one returns no tasks but
	// marks it failed.
	if got := c.FailNode(3); got != nil {
		t.Errorf("failing standby returned tasks %v", got)
	}
	if !c.Node(3).Failed {
		t.Error("standby not marked failed")
	}
	first := c.FailNode(0)
	if len(first) == 0 {
		t.Fatal("failing node 0 hit no tasks")
	}
	if again := c.FailNode(0); again != nil {
		t.Errorf("double fail returned %v", again)
	}
	if got := c.FailedNodes(); !reflect.DeepEqual(got, []NodeID{0, 3}) {
		t.Errorf("FailedNodes = %v, want [0 3]", got)
	}
	c.Reset()
	if got := c.FailedNodes(); len(got) != 0 {
		t.Errorf("after Reset FailedNodes = %v", got)
	}
	// After Reset the same node fails afresh and reports its tasks.
	if got := c.FailNode(0); !reflect.DeepEqual(got, first) {
		t.Errorf("re-fail after Reset = %v, want %v", got, first)
	}
}

func TestBuildDomains(t *testing.T) {
	c := New(8, 4)
	racks, err := c.BuildDomains(Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(racks) != 4 {
		t.Fatalf("racks = %v", racks)
	}
	if got := len(c.DomainsOfKind("zone")); got != 2 {
		t.Fatalf("%d zones", got)
	}
	// Every node is attached to some rack; processing and standby both.
	total := 0
	for _, r := range racks {
		nodes := c.DomainNodes(r)
		if len(nodes) != 3 { // 2 processing + 1 standby per rack
			t.Errorf("rack %d holds %v", r, nodes)
		}
		total += len(nodes)
	}
	if total != 12 {
		t.Fatalf("racks cover %d of 12 nodes", total)
	}

	// Dedicated standby zone when not spreading.
	c2 := New(4, 2)
	if _, err := c2.BuildDomains(Layout{Zones: 1, RacksPerZone: 2}); err != nil {
		t.Fatal(err)
	}
	standbyRacks := 0
	for _, d := range c2.Domains() {
		if d.Kind == "rack" && d.Name == "rack-standby" {
			standbyRacks++
			if got := c2.DomainNodes(d.ID); len(got) != 2 {
				t.Errorf("standby rack holds %v", got)
			}
		}
	}
	if standbyRacks != 1 {
		t.Fatalf("%d standby racks", standbyRacks)
	}

	if _, err := c.BuildDomains(Layout{}); err == nil {
		t.Error("invalid layout accepted")
	}
}

// TestDegenerateEquivalence pins FailNode and FailAllProcessing as
// degenerate cases of the domain model: a single-node domain behaves
// like FailNode, and failing every rack of a spread layout covers all
// processing nodes.
func TestDegenerateEquivalence(t *testing.T) {
	topo := testTopo(t)

	a := New(3, 1)
	if err := a.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	rack, _ := a.AddDomain(RootDomain, "rack", "r0")
	if err := a.AttachNode(1, rack); err != nil {
		t.Fatal(err)
	}
	b := New(3, 1)
	if err := b.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	if got, want := a.FailDomain(rack), b.FailNode(1); !reflect.DeepEqual(got, want) {
		t.Errorf("single-node domain failure %v != FailNode %v", got, want)
	}

	c := New(4, 2)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	racks, err := c.BuildDomains(Layout{Zones: 1, RacksPerZone: 2}) // standby kept separate
	if err != nil {
		t.Fatal(err)
	}
	var all []topology.TaskID
	for _, r := range racks {
		all = append(all, c.FailDomain(r)...)
	}
	d := New(4, 2)
	if err := d.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	want := d.FailAllProcessing()
	sortTasks(all)
	if !reflect.DeepEqual(all, want) {
		t.Errorf("all-racks failure %v != FailAllProcessing %v", all, want)
	}
}

func sortTasks(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
