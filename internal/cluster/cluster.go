// Package cluster models the simulated processing cluster of the
// reproduction: processing nodes hosting primary tasks, standby nodes
// hosting checkpoints and active replicas (§V-A of Su & Zhou, ICDE
// 2016), task placement, and failure bookkeeping for single-node and
// correlated failures.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// NodeID identifies a node.
type NodeID int

// Node is one machine of the simulated cluster.
type Node struct {
	ID      NodeID
	Standby bool
	Failed  bool
}

// Cluster is a set of nodes with a task placement. Primary tasks live on
// processing nodes; checkpoints and active replicas live on standby
// nodes (§V-A).
type Cluster struct {
	nodes     []*Node
	placement map[topology.TaskID]NodeID // primary task -> processing node
	replicaOn map[topology.TaskID]NodeID // replicated task -> standby node
	// tasksOn is the reverse placement index (node -> primary tasks),
	// kept in sync by Place so that failure injection never rescans the
	// whole placement map.
	tasksOn map[NodeID][]topology.TaskID

	domains    []*Domain           // failure-domain tree, root first (see domain.go)
	nodeDomain map[NodeID]DomainID // node -> directly attached domain
}

// New builds a cluster with the given number of processing and standby
// nodes.
func New(processing, standby int) *Cluster {
	c := &Cluster{
		placement: make(map[topology.TaskID]NodeID),
		replicaOn: make(map[topology.TaskID]NodeID),
		tasksOn:   make(map[NodeID][]topology.TaskID),
	}
	for i := 0; i < processing; i++ {
		c.nodes = append(c.nodes, &Node{ID: NodeID(i)})
	}
	for i := 0; i < standby; i++ {
		c.nodes = append(c.nodes, &Node{ID: NodeID(processing + i), Standby: true})
	}
	return c
}

// Nodes returns all nodes. The returned slice must not be modified.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// ProcessingNodes returns the non-standby nodes.
func (c *Cluster) ProcessingNodes() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.Standby {
			out = append(out, n)
		}
	}
	return out
}

// StandbyNodes returns the standby nodes.
func (c *Cluster) StandbyNodes() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if n.Standby {
			out = append(out, n)
		}
	}
	return out
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// PlaceRoundRobin distributes the topology's tasks over the processing
// nodes in round-robin order, the default placement of the experiments
// ("the primary replicas of the tasks are evenly distributed among the
// nodes").
func (c *Cluster) PlaceRoundRobin(t *topology.Topology) error {
	proc := c.ProcessingNodes()
	if len(proc) == 0 {
		return fmt.Errorf("cluster: no processing nodes")
	}
	for i, task := range t.Tasks {
		c.Place(task.ID, proc[i%len(proc)].ID)
	}
	return nil
}

// Place assigns a primary task to a node, moving it off its previous
// node if it was already placed.
func (c *Cluster) Place(id topology.TaskID, node NodeID) {
	if prev, ok := c.placement[id]; ok {
		if prev == node {
			return
		}
		onPrev := c.tasksOn[prev]
		for i, t := range onPrev {
			if t == id {
				c.tasksOn[prev] = append(onPrev[:i], onPrev[i+1:]...)
				break
			}
		}
	}
	c.placement[id] = node
	c.tasksOn[node] = insertSorted(c.tasksOn[node], id)
}

// insertSorted inserts id into a sorted task slice, keeping it sorted.
func insertSorted(ids []topology.TaskID, id topology.TaskID) []topology.TaskID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// NodeOf returns the node hosting the primary of the task.
func (c *Cluster) NodeOf(id topology.TaskID) NodeID { return c.placement[id] }

// TasksOn returns the primary tasks placed on the node, in ascending
// task order. The returned slice must not be modified.
func (c *Cluster) TasksOn(id NodeID) []topology.TaskID { return c.tasksOn[id] }

// ReplicaNodeOf returns the standby node hosting the task's active
// replica, if any.
func (c *Cluster) ReplicaNodeOf(id topology.TaskID) (NodeID, bool) {
	n, ok := c.replicaOn[id]
	return n, ok
}

// FailNode marks a node failed and returns the primary tasks that were
// running on it, in ascending task order. The lookup uses the reverse
// placement index, so multi-wave campaigns never rescan the placement
// map.
func (c *Cluster) FailNode(id NodeID) []topology.TaskID {
	n := c.Node(id)
	if n == nil || n.Failed {
		return nil
	}
	n.Failed = true
	return append([]topology.TaskID(nil), c.tasksOn[id]...)
}

// FailAllProcessing marks every processing node failed — the paper's
// correlated-failure injection ("killing all the nodes on which the
// primary replicas of the tasks are deployed") — and returns all
// affected tasks.
func (c *Cluster) FailAllProcessing() []topology.TaskID {
	var out []topology.TaskID
	for _, n := range c.ProcessingNodes() {
		out = append(out, c.FailNode(n.ID)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreNode clears a node's failed flag (after repair).
func (c *Cluster) RestoreNode(id NodeID) {
	if n := c.Node(id); n != nil {
		n.Failed = false
	}
}

// Reset clears every node's failed flag, returning the cluster to its
// pre-failure state. Placement, replicas and failure domains are kept:
// Reset models repairing the hardware, not rebuilding the cluster.
func (c *Cluster) Reset() {
	for _, n := range c.nodes {
		n.Failed = false
	}
}

// FailedNodes returns the IDs of currently failed nodes.
func (c *Cluster) FailedNodes() []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if n.Failed {
			out = append(out, n.ID)
		}
	}
	return out
}
