package cluster

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// This file models hierarchical failure domains. Real correlated
// failures strike shared infrastructure — a rack loses its top-of-rack
// switch, a power feed drops a whole zone — taking down every node
// beneath the faulty component (§I of Su & Zhou, ICDE 2016). The
// cluster therefore carries a tree of failure domains: the root is the
// cluster itself, inner domains model zones (power/switch) and racks,
// and nodes attach to the domain whose failure takes them down.
// FailNode and FailAllProcessing remain the degenerate cases: a
// single-node domain and the union of all processing nodes.

// DomainID identifies a failure domain within a cluster. The root
// domain always has ID 0.
type DomainID int

// RootDomain is the implicit whole-cluster domain.
const RootDomain DomainID = 0

// NoDomain is returned for lookups that have no answer.
const NoDomain DomainID = -1

// Domain is one failure domain: a component whose failure takes down
// every node attached to it or to any of its descendants.
type Domain struct {
	ID     DomainID
	Name   string
	Kind   string // e.g. "cluster", "zone", "rack"
	Parent DomainID

	children []DomainID
	nodes    []NodeID // directly attached nodes
}

// Children returns the IDs of the direct sub-domains.
func (d *Domain) Children() []DomainID { return d.children }

// ensureDomains lazily creates the root domain so that clusters built
// before the domain model keep working unchanged.
func (c *Cluster) ensureDomains() {
	if len(c.domains) == 0 {
		c.domains = append(c.domains, &Domain{ID: RootDomain, Name: "cluster", Kind: "cluster", Parent: NoDomain})
	}
}

// AddDomain creates a sub-domain of parent and returns its ID.
func (c *Cluster) AddDomain(parent DomainID, kind, name string) (DomainID, error) {
	c.ensureDomains()
	p := c.Domain(parent)
	if p == nil {
		return NoDomain, fmt.Errorf("cluster: unknown parent domain %d", parent)
	}
	id := DomainID(len(c.domains))
	c.domains = append(c.domains, &Domain{ID: id, Name: name, Kind: kind, Parent: parent})
	p.children = append(p.children, id)
	return id, nil
}

// Domain returns the domain with the given ID, or nil.
func (c *Cluster) Domain(id DomainID) *Domain {
	c.ensureDomains()
	if int(id) < 0 || int(id) >= len(c.domains) {
		return nil
	}
	return c.domains[id]
}

// Domains returns all domains in creation order (root first). The
// returned slice must not be modified.
func (c *Cluster) Domains() []*Domain {
	c.ensureDomains()
	return c.domains
}

// DomainsOfKind returns the IDs of the domains with the given kind, in
// creation order.
func (c *Cluster) DomainsOfKind(kind string) []DomainID {
	var out []DomainID
	for _, d := range c.Domains() {
		if d.Kind == kind {
			out = append(out, d.ID)
		}
	}
	return out
}

// AttachNode attaches a node to a domain, detaching it from its
// previous domain. Nodes not explicitly attached belong to the root.
func (c *Cluster) AttachNode(id NodeID, dom DomainID) error {
	if c.Node(id) == nil {
		return fmt.Errorf("cluster: unknown node %d", id)
	}
	d := c.Domain(dom)
	if d == nil {
		return fmt.Errorf("cluster: unknown domain %d", dom)
	}
	if c.nodeDomain == nil {
		c.nodeDomain = make(map[NodeID]DomainID)
	}
	if prev, ok := c.nodeDomain[id]; ok {
		pd := c.domains[prev]
		for i, n := range pd.nodes {
			if n == id {
				pd.nodes = append(pd.nodes[:i], pd.nodes[i+1:]...)
				break
			}
		}
	}
	c.nodeDomain[id] = dom
	d.nodes = append(d.nodes, id)
	return nil
}

// DomainOf returns the domain a node is attached to (RootDomain when
// never attached), or NoDomain for an unknown node.
func (c *Cluster) DomainOf(id NodeID) DomainID {
	if c.Node(id) == nil {
		return NoDomain
	}
	if dom, ok := c.nodeDomain[id]; ok {
		return dom
	}
	return RootDomain
}

// DomainNodes returns every node attached to the domain or any of its
// descendants, in ascending node order. The root domain additionally
// owns every node never explicitly attached.
func (c *Cluster) DomainNodes(dom DomainID) []NodeID {
	d := c.Domain(dom)
	if d == nil {
		return nil
	}
	var out []NodeID
	stack := []DomainID{dom}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cd := c.domains[cur]
		out = append(out, cd.nodes...)
		stack = append(stack, cd.children...)
	}
	if dom == RootDomain {
		for _, n := range c.nodes {
			if _, ok := c.nodeDomain[n.ID]; !ok {
				out = append(out, n.ID)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FailDomain marks every node of the domain subtree failed — the
// correlated failure of one shared component — and returns the primary
// tasks that were running on those nodes, in ascending task order.
// Standby nodes in the domain are failed too: their active replicas
// become unavailable (callers track this via Node(id).Failed; the
// engine fails the hosted replicas). Checkpoints are modelled as
// living in a replicated store that survives domain failures, as in
// the paper's standby storage. FailNode is the degenerate single-node
// case.
func (c *Cluster) FailDomain(dom DomainID) []topology.TaskID {
	var out []topology.TaskID
	for _, n := range c.DomainNodes(dom) {
		out = append(out, c.FailNode(n)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Layout describes a regular two-level failure-domain hierarchy:
// Zones power/switch zones, each with RacksPerZone racks. Processing
// nodes are attached to racks round-robin; standby nodes are spread
// over the same racks (SpreadStandby) or kept in a dedicated standby
// zone, so a domain failure can also take out replicas — the paper's
// worst case for active replication.
type Layout struct {
	Zones         int
	RacksPerZone  int
	SpreadStandby bool
}

// DefaultLayout is a 2-zone, 2-racks-per-zone layout with standby
// nodes spread across the racks.
func DefaultLayout() Layout { return Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true} }

// BuildDomains constructs the Layout's domain tree and attaches every
// node. It returns the rack domain IDs in creation order. Calling it
// replaces any previous attachment of the nodes.
func (c *Cluster) BuildDomains(l Layout) ([]DomainID, error) {
	if l.Zones < 1 || l.RacksPerZone < 1 {
		return nil, fmt.Errorf("cluster: invalid layout %+v", l)
	}
	var racks []DomainID
	for z := 0; z < l.Zones; z++ {
		zone, err := c.AddDomain(RootDomain, "zone", fmt.Sprintf("zone-%d", z))
		if err != nil {
			return nil, err
		}
		for r := 0; r < l.RacksPerZone; r++ {
			rack, err := c.AddDomain(zone, "rack", fmt.Sprintf("rack-%d-%d", z, r))
			if err != nil {
				return nil, err
			}
			racks = append(racks, rack)
		}
	}
	proc := c.ProcessingNodes()
	for i, n := range proc {
		if err := c.AttachNode(n.ID, racks[i%len(racks)]); err != nil {
			return nil, err
		}
	}
	standby := c.StandbyNodes()
	if l.SpreadStandby {
		for i, n := range standby {
			if err := c.AttachNode(n.ID, racks[i%len(racks)]); err != nil {
				return nil, err
			}
		}
	} else if len(standby) > 0 {
		zone, err := c.AddDomain(RootDomain, "zone", "zone-standby")
		if err != nil {
			return nil, err
		}
		rack, err := c.AddDomain(zone, "rack", "rack-standby")
		if err != nil {
			return nil, err
		}
		for _, n := range standby {
			if err := c.AttachNode(n.ID, rack); err != nil {
				return nil, err
			}
		}
	}
	return racks, nil
}
