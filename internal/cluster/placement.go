package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// This file implements replica placement. Active replication only helps
// against correlated failures if a task's replica lives in a different
// failure domain than its primary (§V-A of Su & Zhou, ICDE 2016): a
// burst that takes out a whole rack or zone must not be able to kill
// both copies. PlacementAntiAffinity enforces exactly that; the legacy
// round-robin placement, which scatters replicas with no regard for
// domains, is kept as an explicit policy for comparison sweeps.

// PlacementPolicy selects how active replicas are placed on the standby
// nodes.
type PlacementPolicy int

const (
	// PlacementAntiAffinity places each replica on a standby node
	// outside its primary's rack (hard constraint), preferring a
	// different zone (soft constraint) and spreading replicas evenly
	// over the eligible standby nodes. It is the zero value — and
	// therefore the default policy of engine.Setup.
	PlacementAntiAffinity PlacementPolicy = iota
	// PlacementRoundRobin is the legacy placement: replicas cycle over
	// the standby nodes in ascending task order, ignoring failure
	// domains. A replica can land in its primary's rack, so a single
	// domain burst may kill both copies.
	PlacementRoundRobin
)

// PlacementPolicies lists every placement policy.
var PlacementPolicies = []PlacementPolicy{PlacementAntiAffinity, PlacementRoundRobin}

// String names the policy as used by the cmd flags.
func (p PlacementPolicy) String() string {
	switch p {
	case PlacementAntiAffinity:
		return "anti-affinity"
	case PlacementRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// ParsePlacementPolicy resolves a policy name (as printed by String).
func ParsePlacementPolicy(s string) (PlacementPolicy, error) {
	for _, p := range PlacementPolicies {
		if p.String() == strings.TrimSpace(s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown placement policy %q (known: anti-affinity, round-robin)", s)
}

// ErrAntiAffinity is wrapped by PlaceReplicas when the standby pool
// cannot host a replica outside its primary's rack.
var ErrAntiAffinity = errors.New("no standby node satisfies rack anti-affinity")

// PlaceReplicas assigns a standby node to the active replica of every
// given task under the policy. Placement is deterministic: it depends
// only on the cluster layout, the current primary placement, any
// replicas already placed, and the task set.
func (c *Cluster) PlaceReplicas(tasks []topology.TaskID, policy PlacementPolicy) error {
	standby := c.StandbyNodes()
	if len(standby) == 0 && len(tasks) > 0 {
		return fmt.Errorf("cluster: no standby nodes for %d replicas", len(tasks))
	}
	sorted := append([]topology.TaskID(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	switch policy {
	case PlacementRoundRobin:
		for i, id := range sorted {
			c.replicaOn[id] = standby[i%len(standby)].ID
		}
		return nil
	case PlacementAntiAffinity:
		return c.placeReplicasAntiAffinity(sorted, standby)
	default:
		return fmt.Errorf("cluster: unknown placement policy %d", int(policy))
	}
}

// placeReplicasAntiAffinity implements the domain-aware policy. For
// each task (ascending order) it scores every standby node by
// (same-zone-as-primary, replicas-already-hosted, node ID) and picks
// the lexicographic minimum among the nodes outside the primary's
// rack. On a cluster without rack domains every standby is eligible and
// the policy degrades to pure load spreading.
func (c *Cluster) placeReplicasAntiAffinity(sorted []topology.TaskID, standby []*Node) error {
	// Current replica load per standby node, so that incremental
	// placements (plan adaptation) keep spreading.
	load := make(map[NodeID]int, len(standby))
	for _, n := range c.replicaOn {
		load[n]++
	}
	for _, id := range sorted {
		primary, placed := c.placement[id]
		pRack, pZone := NoDomain, NoDomain
		if placed {
			pRack = c.RackOf(primary)
			pZone = c.ZoneOf(primary)
		}
		best := NoDomainNode
		bestZone, bestLoad := 0, 0
		for _, n := range standby {
			if pRack != NoDomain && c.RackOf(n.ID) == pRack {
				continue // hard constraint: never share the primary's rack
			}
			sameZone := 0
			if pZone != NoDomain && c.ZoneOf(n.ID) == pZone {
				sameZone = 1
			}
			l := load[n.ID]
			if best == NoDomainNode || sameZone < bestZone ||
				(sameZone == bestZone && l < bestLoad) {
				best, bestZone, bestLoad = n.ID, sameZone, l
			}
		}
		if best == NoDomainNode {
			return fmt.Errorf("cluster: replica for task %d: %w (primary on node %d in rack %d, all %d standby nodes share that rack)",
				id, ErrAntiAffinity, primary, pRack, len(standby))
		}
		c.replicaOn[id] = best
		load[best]++
	}
	return nil
}

// NoDomainNode marks "no node" in placement searches.
const NoDomainNode = NodeID(-1)

// RackOf returns the rack-kind failure domain containing the node: the
// nearest ancestor (including the node's own attachment) of kind
// "rack", or NoDomain when the node is not under any rack.
func (c *Cluster) RackOf(id NodeID) DomainID { return c.ancestorOfKind(id, "rack") }

// ZoneOf returns the zone-kind failure domain containing the node, or
// NoDomain.
func (c *Cluster) ZoneOf(id NodeID) DomainID { return c.ancestorOfKind(id, "zone") }

func (c *Cluster) ancestorOfKind(id NodeID, kind string) DomainID {
	dom := c.DomainOf(id)
	for dom != NoDomain {
		d := c.Domain(dom)
		if d == nil {
			return NoDomain
		}
		if d.Kind == kind {
			return d.ID
		}
		dom = d.Parent
	}
	return NoDomain
}
