package cluster

import (
	"testing"

	"repro/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 4, 100)
	op := b.AddOperator("op", 2, topology.Independent, 1)
	b.Connect(src, op, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNodeKinds(t *testing.T) {
	c := New(3, 2)
	if len(c.Nodes()) != 5 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if len(c.ProcessingNodes()) != 3 || len(c.StandbyNodes()) != 2 {
		t.Fatal("node kinds wrong")
	}
	if c.Node(3) == nil || !c.Node(3).Standby {
		t.Error("node 3 should be standby")
	}
	if c.Node(99) != nil || c.Node(-1) != nil {
		t.Error("out-of-range node lookup should return nil")
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	topo := testTopo(t)
	c := New(3, 1)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	counts := map[NodeID]int{}
	for _, task := range topo.Tasks {
		counts[c.NodeOf(task.ID)]++
	}
	for n, cnt := range counts {
		if cnt != 2 {
			t.Errorf("node %d hosts %d tasks, want 2", n, cnt)
		}
	}
	if err := New(0, 1).PlaceRoundRobin(topo); err == nil {
		t.Error("placement with no processing nodes accepted")
	}
}

func TestFailNode(t *testing.T) {
	topo := testTopo(t)
	c := New(3, 1)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	failed := c.FailNode(0)
	if len(failed) != 2 {
		t.Fatalf("failed tasks = %v, want 2 on node 0", failed)
	}
	for i := 1; i < len(failed); i++ {
		if failed[i-1] >= failed[i] {
			t.Error("failed tasks not sorted")
		}
	}
	if again := c.FailNode(0); again != nil {
		t.Errorf("double failure returned %v", again)
	}
	if got := c.FailedNodes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("FailedNodes = %v", got)
	}
	c.RestoreNode(0)
	if got := c.FailedNodes(); len(got) != 0 {
		t.Errorf("after restore FailedNodes = %v", got)
	}
}

func TestFailAllProcessing(t *testing.T) {
	topo := testTopo(t)
	c := New(3, 2)
	if err := c.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	failed := c.FailAllProcessing()
	if len(failed) != topo.NumTasks() {
		t.Fatalf("failed %d tasks, want all %d", len(failed), topo.NumTasks())
	}
	for _, n := range c.StandbyNodes() {
		if n.Failed {
			t.Error("standby node failed by FailAllProcessing")
		}
	}
}

func TestReplicaPlacement(t *testing.T) {
	c := New(2, 3)
	tasks := []topology.TaskID{5, 1, 3}
	if err := c.PlaceReplicas(tasks, PlacementRoundRobin); err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]int{}
	for _, id := range tasks {
		n, ok := c.ReplicaNodeOf(id)
		if !ok {
			t.Fatalf("no replica node for %d", id)
		}
		if !c.Node(n).Standby {
			t.Errorf("replica of %d on non-standby node %d", id, n)
		}
		seen[n]++
	}
	if len(seen) != 3 {
		t.Errorf("replicas on %d nodes, want spread over 3", len(seen))
	}
	if _, ok := c.ReplicaNodeOf(99); ok {
		t.Error("unknown task has replica node")
	}
	if err := New(2, 0).PlaceReplicas(tasks, PlacementRoundRobin); err == nil {
		t.Error("replica placement without standby nodes accepted")
	}
}
