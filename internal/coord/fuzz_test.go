package coord

import (
	"testing"
)

// FuzzCoordDecodeFrame feeds arbitrary bytes to the protocol frame
// decoder. decodeFrame sits behind the length-capped line reader on
// every worker and coordinator connection, so it must reject anything
// that is not exactly one typed JSON object — and must never panic,
// whatever a broken or hostile peer writes. Accepted frames must
// re-encode: acceptance of a frame the encoder cannot round-trip
// would mean the two ends disagree about the protocol.
func FuzzCoordDecodeFrame(f *testing.F) {
	// Seed with every frame type the protocol actually sends, plus
	// the malformed shapes the decoder rejects.
	for _, m := range []*message{
		{Type: msgHello, Version: ProtoVersion},
		{Type: msgJob, Job: 1},
		{Type: msgAssign, Job: 1},
		{Type: msgHeartbeat, Job: 1, Done: 42},
		{Type: msgResult, Job: 1},
		{Type: msgError, Job: 1, Error: "boom"},
		{Type: msgCancel, Job: 1},
		{Type: msgShutdown},
	} {
		frame, err := encodeFrame(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"type":"hello"}{"type":"hello"}` + "\n"))
	f.Add([]byte(`{"type":"result","states":[{"sketch":"AAAA"}]}` + "\n"))
	f.Add([]byte(`[1,2,3]` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeFrame(data)
		if err != nil {
			return
		}
		if m.Type == "" {
			t.Fatal("accepted a frame without a type")
		}
		if _, err := encodeFrame(m); err != nil {
			t.Fatalf("accepted frame cannot be re-encoded: %v", err)
		}
	})
}
