package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/campaign"
)

// PoolOptions tunes the coordinator.
type PoolOptions struct {
	// HeartbeatTimeout declares a worker lost when no message (result
	// or heartbeat) arrives from it for this long while a range is
	// assigned (default 15s). Lost workers are disconnected and their
	// in-flight range is reassigned to a surviving worker.
	HeartbeatTimeout time.Duration
	// RangeRetries bounds how many times one range may be reassigned
	// after worker losses before the job fails (default 3).
	RangeRetries int
	// RangesPerWorker controls partition granularity: a job is cut into
	// about RangesPerWorker ranges per worker (default 4), so a lost
	// worker forfeits only a fraction of its progress and fast workers
	// steal work from slow ones.
	RangesPerWorker int
	// OnProgress, when set, receives the total number of scenarios
	// completed so far after every heartbeat and range completion. It
	// must be safe for concurrent calls.
	OnProgress func(done int)
}

// Pool is a coordinator's set of worker connections. Add workers with
// AddProcess (local child processes over stdin/stdout) or AddConn
// (accepted TCP connections), then RunJob campaigns against them; one
// Pool serves any number of sequential jobs (a sweep reuses the same
// workers for every cell).
type Pool struct {
	opts PoolOptions

	mu      sync.Mutex
	workers []*poolWorker
	nextJob int
}

// poolWorker is one worker connection. The reader goroutine owns recv
// and forwards frames to msgs (closed when the connection dies); ready
// and dead are guarded by the pool mutex.
type poolWorker struct {
	id    int
	c     *conn
	msgs  chan *message
	close func()
	ready bool
	dead  bool
}

// NewPool returns an empty pool.
func NewPool(opts PoolOptions) *Pool {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 15 * time.Second
	}
	if opts.RangeRetries <= 0 {
		opts.RangeRetries = 3
	}
	if opts.RangesPerWorker <= 0 {
		opts.RangesPerWorker = 4
	}
	return &Pool{opts: opts}
}

// AddConn adds an established worker connection (for example an
// accepted TCP conn) to the pool. The worker becomes schedulable once
// its version hello arrives (see WaitReady).
func (p *Pool) AddConn(rwc io.ReadWriteCloser) {
	p.add(newConn(rwc, rwc), func() { rwc.Close() })
}

// AddProcess starts cmd as a local worker child with the protocol on
// its stdin/stdout (stderr is inherited unless already set) and adds
// it to the pool. The returned process handle lets callers kill the
// worker — the reassignment tests do exactly that.
func (p *Pool) AddProcess(cmd *exec.Cmd) (*os.Process, error) {
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("coord: starting worker process: %w", err)
	}
	p.add(newConn(stdout, stdin), func() {
		stdin.Close()
		_ = cmd.Process.Kill()
		//ppalint:allow ctxspawn reaper returns as soon as the just-killed process is collected
		go cmd.Wait()
	})
	return cmd.Process, nil
}

// AcceptWorkers accepts n worker connections from the listener and
// adds each to the pool.
func (p *Pool) AcceptWorkers(ln net.Listener, n int) error {
	for i := 0; i < n; i++ {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("coord: accepting worker %d: %w", i, err)
		}
		p.AddConn(c)
	}
	return nil
}

func (p *Pool) add(c *conn, closeFn func()) {
	w := &poolWorker{c: c, msgs: make(chan *message, 16), close: closeFn}
	p.mu.Lock()
	w.id = len(p.workers)
	p.workers = append(p.workers, w)
	p.mu.Unlock()
	//ppalint:allow ctxspawn reader lifetime is bounded by the connection; closing it unblocks recv
	go func() {
		defer close(w.msgs)
		defer p.markDead(w)
		first, err := c.recv()
		if err != nil || first.Type != msgHello || first.Version != ProtoVersion {
			return // version mismatch or dead on arrival: never ready
		}
		p.mu.Lock()
		w.ready = true
		p.mu.Unlock()
		for {
			m, err := c.recv()
			if err != nil {
				return
			}
			w.msgs <- m
		}
	}()
}

// markDead records the worker as unusable and closes its connection;
// idempotent.
func (p *Pool) markDead(w *poolWorker) {
	p.mu.Lock()
	wasDead := w.dead
	w.dead = true
	p.mu.Unlock()
	if !wasDead {
		w.close()
	}
}

// Live returns the number of workers that completed the handshake and
// have not died.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.ready && !w.dead {
			n++
		}
	}
	return n
}

// WaitReady blocks until n workers completed the version handshake, or
// ctx expires — spawn/connect confirmation before the first job.
func (p *Pool) WaitReady(ctx context.Context, n int) error {
	for {
		if p.Live() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("coord: %d of %d workers ready: %w", p.Live(), n, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close shuts every worker down: live ones get a shutdown message
// (local children exit on it or on the subsequent stdin close), then
// every connection is closed and child processes are reaped.
func (p *Pool) Close() {
	p.mu.Lock()
	ws := append([]*poolWorker(nil), p.workers...)
	p.mu.Unlock()
	for _, w := range ws {
		_ = w.c.send(&message{Type: msgShutdown})
		p.markDead(w)
	}
}

// RunJob runs one campaign across the pool's live workers and returns
// its report (Summary plus baseline; per-scenario results never cross
// the process boundary). The coordinator resolves the baseline volume
// locally unless the spec carries one, partitions the scenario space
// into shard-aligned ranges, schedules ranges onto workers as they
// free up, reassigns the in-flight range of any worker that dies or
// goes silent (bounded by RangeRetries), and merges the returned shard
// states in shard order — bit-identical to the single-process
// campaign.RunContext for the same (seed, Shards). A worker-reported
// scenario error or ctx cancellation fails the job fast; remaining
// workers get a cancel for the in-flight job.
func (p *Pool) RunJob(ctx context.Context, spec campaign.WireSpec) (*campaign.Report, error) {
	// Build the campaign locally too: the coordinator needs the
	// scenario count for partitioning and the baseline for the workers.
	cfg, err := spec.Config()
	if err != nil {
		return nil, fmt.Errorf("coord: building job: %w", err)
	}
	if spec.Baseline == 0 {
		base, err := campaign.BaselineVolume(cfg)
		if err != nil {
			return nil, err
		}
		spec.Baseline = base
		cfg.Baseline = base
	}

	p.mu.Lock()
	p.nextJob++
	jobID := p.nextJob
	var workers []*poolWorker
	for _, w := range p.workers {
		if w.ready && !w.dead {
			workers = append(workers, w)
		}
	}
	p.mu.Unlock()
	if len(workers) == 0 {
		return nil, errors.New("coord: no live workers")
	}

	ranges, err := partitionJob(cfg, p.opts.RangesPerWorker*len(workers))
	if err != nil {
		return nil, err
	}
	sched := newScheduler(ranges, p.opts.RangeRetries, campaign.NewStopMonitor(cfg))
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *poolWorker) {
			defer wg.Done()
			p.runWorker(ctx, w, jobID, &spec, sched)
		}(w)
	}
	wg.Wait()
	if err := sched.err(); err != nil {
		return nil, err
	}
	states, scenarios, stopped := sched.outcome(len(cfg.Scenarios))
	rep, err := mergeJob(states, scenarios, spec.Baseline)
	if err != nil {
		return nil, err
	}
	rep.Stopped = stopped
	return rep, nil
}

// runWorker drives one worker through one job: send the job spec, then
// loop taking ranges from the scheduler, assigning them, and awaiting
// results under a heartbeat-refreshed deadline. Any connection or
// liveness failure requeues the in-flight range and retires the
// worker; a worker-reported error fails the whole job.
func (p *Pool) runWorker(ctx context.Context, w *poolWorker, jobID int, spec *campaign.WireSpec, sched *scheduler) {
	lost := func(t *rangeTask) {
		p.markDead(w)
		if t != nil {
			sched.requeue(w.id, *t, fmt.Errorf("coord: worker %d lost with range %s in flight", w.id, t.r))
		}
		sched.workerGone(p.Live())
	}
	if err := w.c.send(&message{Type: msgJob, Job: jobID, Spec: spec}); err != nil {
		lost(nil)
		return
	}
	for {
		t, ok := sched.take()
		if !ok {
			// Job finished or failed: stop anything still in flight on
			// this worker before leaving.
			_ = w.c.send(&message{Type: msgCancel, Job: jobID})
			return
		}
		if err := w.c.send(&message{Type: msgAssign, Job: jobID, Range: &t.r}); err != nil {
			lost(&t)
			return
		}
		timer := time.NewTimer(p.opts.HeartbeatTimeout)
		completed := false
		for !completed {
			select {
			case m, open := <-w.msgs:
				if !open {
					timer.Stop()
					lost(&t)
					return
				}
				// Any frame proves liveness; refresh the deadline.
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(p.opts.HeartbeatTimeout)
				if m.Job != jobID {
					continue // stale frame from a superseded job
				}
				switch m.Type {
				case msgHeartbeat:
					sched.reportProgress(w.id, m.Done, p.opts.OnProgress)
				case msgResult:
					sched.complete(t, m.States, p.opts.OnProgress)
					completed = true
				case msgError:
					timer.Stop()
					sched.fail(fmt.Errorf("coord: worker %d: %s", w.id, m.Error))
					_ = w.c.send(&message{Type: msgCancel, Job: jobID})
					return
				default:
					// A frame kind the coordinator never expects on a
					// job stream (job, assign, cancel, shutdown echoed
					// back, or a newer protocol's kind): the worker is
					// confused, treat it as lost so its range is
					// reassigned instead of silently dropping frames.
					timer.Stop()
					lost(&t)
					return
				}
			case <-timer.C:
				lost(&t) // silent worker: heartbeats stopped
				return
			case <-sched.done:
				// Finished or failed elsewhere.
				timer.Stop()
				_ = w.c.send(&message{Type: msgCancel, Job: jobID})
				return
			case <-ctx.Done():
				timer.Stop()
				sched.fail(ctx.Err())
				_ = w.c.send(&message{Type: msgCancel, Job: jobID})
				return
			}
		}
		timer.Stop()
	}
}

// rangeTask is one schedulable range with its reassignment count.
type rangeTask struct {
	r       campaign.Range
	retries int
}

// scheduler is the job's shared state: a pending-range queue workers
// pull from, the collected shard states, and the finished/failed
// flag. All methods are safe for concurrent use.
//
// Early stopping: with a non-nil StopMonitor the scheduler feeds it
// each range's shard states as the contiguous completed-range frontier
// advances — the same shard-order prefix walk the single-process
// runner does, over the same serialised bytes, so both fire at the
// same checkpoint. When the rule fires the pending queue is dropped
// (a stopped campaign schedules zero further ranges), in-flight
// assignments are cancelled via the done channel, and only the shard
// states of the stopped prefix survive into the merge.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   []rangeTask
	remaining int // ranges not yet completed
	retries   int
	failure   error
	finished  bool
	done      chan struct{} // closed when finished or failed

	states    []campaign.ShardState
	perWorker map[int]int // worker id -> scenarios done per its last heartbeat

	mon        *campaign.StopMonitor
	order      []campaign.Range              // ranges in Lo order (the monitor's feed order)
	rangeState map[int][]campaign.ShardState // r.Lo -> completed range's states
	frontier   int                           // index into order: next range the monitor needs
	stopped    bool
	monErr     error
}

func newScheduler(ranges []campaign.Range, retries int, mon *campaign.StopMonitor) *scheduler {
	s := &scheduler{
		pending:   make([]rangeTask, len(ranges)),
		remaining: len(ranges),
		retries:   retries,
		done:      make(chan struct{}),
		perWorker: make(map[int]int),
		mon:       mon,
	}
	for i, r := range ranges {
		s.pending[i] = rangeTask{r: r}
	}
	if mon != nil {
		// Partition emits ranges in ascending Lo order; keep a copy as
		// the monitor's feed order and buffer out-of-order completions.
		s.order = append([]campaign.Range(nil), ranges...)
		s.rangeState = make(map[int][]campaign.ShardState, len(ranges))
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// take pops the next pending range, blocking while none is pending but
// the job is still running (a requeue may arrive); false means the job
// is finished or failed and the worker should stop.
func (s *scheduler) take() (rangeTask, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.finished {
		s.cond.Wait()
	}
	if s.finished {
		return rangeTask{}, false
	}
	t := s.pending[0]
	s.pending = s.pending[1:]
	return t, true
}

// complete records a range's shard states; finishing the last range
// finishes the job. With a stop monitor, completing the range at the
// contiguous frontier feeds the monitor — which may stop the job.
func (s *scheduler) complete(t rangeTask, states []campaign.ShardState, onProgress func(int)) {
	s.mu.Lock()
	s.states = append(s.states, states...)
	s.remaining--
	if s.mon != nil && !s.stopped {
		s.rangeState[t.r.Lo] = states
		s.advanceMonitorLocked()
	}
	done := s.progressLocked()
	if s.remaining == 0 {
		s.finishLocked(nil)
	}
	s.mu.Unlock()
	if onProgress != nil {
		onProgress(done)
	}
}

// advanceMonitorLocked feeds the monitor every completed range at the
// contiguous frontier, in Lo order. If the stop rule fires, the
// pending queue is dropped — every incomplete range lies past the
// stopped prefix (the frontier only reaches a shard once all earlier
// ranges completed, and ranges own disjoint ascending shard blocks) —
// and the job finishes as soon as the bookkeeping above observes
// remaining == 0, or right here when only dropped ranges were left.
func (s *scheduler) advanceMonitorLocked() {
	for s.frontier < len(s.order) {
		states, ok := s.rangeState[s.order[s.frontier].Lo]
		if !ok {
			return
		}
		for _, st := range states {
			if err := s.mon.Observe(st); err != nil {
				s.monErr = err
				s.finishLocked(err)
				return
			}
			if s.mon.Fired() {
				s.stopped = true
				s.remaining -= len(s.pending)
				s.pending = nil
				if s.remaining == 0 {
					s.finishLocked(nil)
				}
				return
			}
		}
		s.frontier++
	}
}

// requeue puts a lost worker's range back on the queue, failing the
// job once the range exhausted its retries. After the stop rule fired
// the range is dropped instead — it lies past the stopped prefix, and
// a stopped campaign schedules zero further ranges.
func (s *scheduler) requeue(workerID int, t rangeTask, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.perWorker, workerID) // its scenarios will be recounted by the re-runner
	if s.stopped {
		s.remaining--
		if s.remaining == 0 {
			s.finishLocked(nil)
		}
		return
	}
	t.retries++
	if t.retries > s.retries {
		s.finishLocked(fmt.Errorf("coord: range %s failed %d times: %w", t.r, t.retries, cause))
		return
	}
	s.pending = append(s.pending, t)
	s.cond.Broadcast()
}

// workerGone fails the job when no live workers remain with work
// outstanding — nobody is left to take the queue.
func (s *scheduler) workerGone(live int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if live == 0 && !s.finished && s.remaining > 0 {
		s.finishLocked(errors.New("coord: all workers lost with ranges outstanding"))
	}
}

func (s *scheduler) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finishLocked(err)
}

// finishLocked marks the job done (first failure wins), wakes blocked
// take calls and closes the done channel.
func (s *scheduler) finishLocked(err error) {
	if s.finished {
		return
	}
	s.finished = true
	s.failure = err
	close(s.done)
	s.cond.Broadcast()
}

func (s *scheduler) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

func (s *scheduler) collected() []campaign.ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states
}

// outcome returns the shard states to merge, the scenario count the
// merged summary must cover, and whether the job stopped early. On an
// early stop only the stopped prefix's shards survive: ranges that
// were already in flight past the boundary may have completed, but
// their states never reach the merge — exactly what the single-process
// stopped run produces.
func (s *scheduler) outcome(total int) ([]campaign.ShardState, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		return s.states, total, false
	}
	stopShard := s.mon.StopShard()
	var states []campaign.ShardState
	for _, st := range s.states {
		if st.Shard <= stopShard {
			states = append(states, st)
		}
	}
	return states, s.mon.PrefixScenarios(), true
}

// reportProgress records a worker's heartbeat progress (its cumulative
// scenario count for the current job) and reports the pool-wide total.
func (s *scheduler) reportProgress(workerID, done int, onProgress func(int)) {
	s.mu.Lock()
	s.perWorker[workerID] = done
	total := s.progressLocked()
	s.mu.Unlock()
	if onProgress != nil {
		onProgress(total)
	}
}

func (s *scheduler) progressLocked() int {
	t := 0
	for _, d := range s.perWorker {
		t += d
	}
	return t
}
