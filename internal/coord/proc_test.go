package coord

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// workerProcEnv re-executes the test binary as a protocol worker on
// its stdio: TestMain intercepts the variable before any test runs, so
// AddProcess(os.Executable()) spawns real worker processes without a
// separate binary.
const workerProcEnv = "PPA_COORD_WORKER_PROC"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) == "1" {
		if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, WorkerOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnWorkers adds n re-exec'd worker processes to the pool and waits
// for their handshakes.
func spawnWorkers(t testing.TB, p *Pool, n int) []*os.Process {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*os.Process, n)
	for i := range procs {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerProcEnv+"=1")
		if procs[i], err = p.AddProcess(cmd); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.WaitReady(ctx, n); err != nil {
		t.Fatal(err)
	}
	return procs
}

// TestDistributedGolden is the tentpole acceptance test: the same
// campaign run through a coordinator and N real local worker processes
// produces a Summary bit-identical to the single-process run for
// N ∈ {1, 2, 4}, verified by golden digest.
func TestDistributedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec := testSpec(t, 24)
	want := localRun(t, spec)
	wantHash := campaign.SummaryDigest(want.Summary)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			p := NewPool(PoolOptions{})
			defer p.Close()
			spawnWorkers(t, p, n)
			rep, err := p.RunJob(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := campaign.SummaryDigest(rep.Summary); got != wantHash {
				t.Errorf("summary digest %s, want single-process %s", got, wantHash)
			}
			if rep.Summary != want.Summary {
				t.Fatalf("distributed summary differs from single-process:\n%+v\n%+v", rep.Summary, want.Summary)
			}
			if rep.BaselineSinkTuples != want.BaselineSinkTuples {
				t.Fatalf("baseline %d, want %d", rep.BaselineSinkTuples, want.BaselineSinkTuples)
			}
		})
	}
}

// TestDistributedWorkerKill: killing one of two worker processes
// mid-sweep reassigns its ranges to the survivor and the campaign
// still completes with the bit-identical summary.
func TestDistributedWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec := testSpec(t, 400)
	want := localRun(t, spec)

	p := NewPool(PoolOptions{RangesPerWorker: 8})
	defer p.Close()
	procs := spawnWorkers(t, p, 2)

	var killed sync.WaitGroup
	killed.Add(1)
	go func() {
		defer killed.Done()
		time.Sleep(400 * time.Millisecond)
		_ = procs[0].Kill()
	}()
	rep, err := p.RunJob(context.Background(), spec)
	killed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary != want.Summary {
		t.Fatalf("summary differs after worker kill:\n%+v\n%+v", rep.Summary, want.Summary)
	}
	if live := p.Live(); live != 1 {
		t.Fatalf("Live() = %d after the kill, want 1", live)
	}
}

// TestDistributedSmoke10k is the CI multi-process smoke (gated behind
// PPA_DIST_SMOKE=1, minutes-long): a 10k-scenario campaign through a
// coordinator and 2 local worker processes must match the
// single-process summary digest exactly — once undisturbed, and once
// with one worker killed mid-sweep.
func TestDistributedSmoke10k(t *testing.T) {
	if os.Getenv("PPA_DIST_SMOKE") == "" {
		t.Skip("set PPA_DIST_SMOKE=1 to run the multi-process smoke")
	}
	spec := testSpec(t, 10_000)
	start := time.Now()
	want := localRun(t, spec)
	wantHash := campaign.SummaryDigest(want.Summary)
	t.Logf("single-process reference: %v, digest %s", time.Since(start), wantHash)

	run := func(name string, kill bool) {
		t.Run(name, func(t *testing.T) {
			p := NewPool(PoolOptions{RangesPerWorker: 8})
			defer p.Close()
			procs := spawnWorkers(t, p, 2)
			var killed sync.WaitGroup
			if kill {
				killed.Add(1)
				go func() {
					defer killed.Done()
					time.Sleep(5 * time.Second)
					_ = procs[0].Kill()
				}()
			}
			start := time.Now()
			rep, err := p.RunJob(context.Background(), spec)
			killed.Wait()
			if err != nil {
				t.Fatal(err)
			}
			got := campaign.SummaryDigest(rep.Summary)
			t.Logf("distributed: %v, digest %s", time.Since(start), got)
			if got != wantHash {
				t.Fatalf("summary digest %s, want single-process %s", got, wantHash)
			}
			if rep.Summary != want.Summary {
				t.Fatal("summary digest collision without struct equality")
			}
		})
	}
	run("undisturbed", false)
	run("worker-kill", true)
}
