package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
)

// WorkerOptions tunes ServeWorker.
type WorkerOptions struct {
	// HeartbeatInterval is the wall-clock period of liveness heartbeats
	// (default 1s). The coordinator's HeartbeatTimeout should be a
	// comfortable multiple of it.
	HeartbeatInterval time.Duration
}

// ServeWorker runs the worker half of the campaign protocol over the
// byte streams r and w until EOF, a shutdown message, or ctx
// cancellation. It opens with a version hello, heartbeats on a ticker
// (carrying the number of scenarios completed in the current job), and
// for each assigned range runs campaign.RunRangeContext and sends the
// serialised shard states back. A range error is reported with an
// error message — the coordinator fails the whole campaign fast — and
// a cancel message aborts the in-flight range via its context.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, opts WorkerOptions) error {
	hb := opts.HeartbeatInterval
	if hb <= 0 {
		hb = time.Second
	}
	c := newConn(r, w)
	if err := c.send(&message{Type: msgHello, Version: ProtoVersion}); err != nil {
		return fmt.Errorf("coord: worker hello: %w", err)
	}

	var (
		curJob atomic.Int64 // job the heartbeats report on
		done   atomic.Int64 // scenarios completed in the current job
	)
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A send error means the connection is going down; the
				// main recv loop observes it and exits.
				_ = c.send(&message{Type: msgHeartbeat, Job: int(curJob.Load()), Done: int(done.Load())})
			case <-stopHB:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu        sync.Mutex
		jobID     int
		cfg       campaign.Config
		cfgOK     bool
		cancelRun context.CancelFunc
		runs      sync.WaitGroup
	)
	defer runs.Wait()
	defer func() {
		mu.Lock()
		if cancelRun != nil {
			cancelRun()
		}
		mu.Unlock()
	}()

	errMsg := func(job int, text string) *message {
		return &message{Type: msgError, Job: job, Error: text}
	}
	for {
		m, err := c.recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) {
				return nil // coordinator closed the connection: done
			}
			return fmt.Errorf("coord: worker recv: %w", err)
		}
		switch m.Type {
		case msgJob:
			mu.Lock()
			jobID, cfgOK = m.Job, false
			curJob.Store(int64(m.Job))
			done.Store(0)
			mu.Unlock()
			if m.Spec == nil {
				_ = c.send(errMsg(m.Job, "job without a spec"))
				continue
			}
			jc, err := m.Spec.Config()
			if err != nil {
				_ = c.send(errMsg(m.Job, "building campaign from wire spec: "+err.Error()))
				continue
			}
			// Count completed scenarios for the heartbeat's progress
			// field (the coordinator aggregates it across workers).
			jc.OnResult = func(campaign.ScenarioResult) { done.Add(1) }
			mu.Lock()
			cfg, cfgOK = jc, true
			mu.Unlock()
		case msgAssign:
			mu.Lock()
			if m.Job != jobID || !cfgOK || m.Range == nil {
				mu.Unlock()
				_ = c.send(errMsg(m.Job, fmt.Sprintf("assign for unknown or failed job %d", m.Job)))
				continue
			}
			rctx, cancel := context.WithCancel(ctx)
			cancelRun = cancel
			rc, id, rng := cfg, m.Job, *m.Range
			mu.Unlock()
			runs.Add(1)
			go func() {
				defer runs.Done()
				defer cancel()
				states, err := campaign.RunRangeContext(rctx, rc, rng)
				if err != nil {
					if rctx.Err() != nil {
						return // cancelled: the coordinator moved on
					}
					_ = c.send(errMsg(id, err.Error()))
					return
				}
				_ = c.send(&message{Type: msgResult, Job: id, Range: &rng, States: states})
			}()
		case msgCancel:
			mu.Lock()
			if cancelRun != nil && m.Job == jobID {
				cancelRun()
			}
			mu.Unlock()
		case msgShutdown:
			return nil
		default:
			// A frame kind the worker never legitimately receives
			// (hello, heartbeat, result, error — or something newer
			// than this protocol version): fail loudly instead of
			// dropping it, so a version skew surfaces at the first
			// frame rather than as a silent hang.
			_ = c.send(errMsg(m.Job, fmt.Sprintf("unexpected frame kind %q", m.Type)))
			return fmt.Errorf("coord: worker received unexpected frame kind %q", m.Type)
		}
	}
}

// Connect dials the coordinator at addr and serves the worker protocol
// over the TCP connection until the coordinator shuts it down.
func Connect(ctx context.Context, addr string, opts WorkerOptions) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("coord: dialing coordinator: %w", err)
	}
	defer nc.Close()
	return ServeWorker(ctx, nc, nc, opts)
}
