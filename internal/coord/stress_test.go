package coord

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestServeWorkerUnknownFrame: a frame kind the worker protocol does
// not define must produce an explicit error frame and terminate the
// session — never a silent drop. This pins the exhaustive-dispatch
// behaviour the framecase analyzer enforces statically.
func TestServeWorkerUnknownFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	done := make(chan error, 1)
	go func() { done <- ServeWorker(context.Background(), b, b, WorkerOptions{}) }()

	c := newConn(a, a)
	hello, err := c.recv()
	if err != nil || hello.Type != msgHello {
		t.Fatalf("handshake = %+v, %v; want a hello frame", hello, err)
	}
	if err := c.send(&message{Type: "bogus", Job: 7}); err != nil {
		t.Fatal(err)
	}
	for {
		got, err := c.recv()
		if err != nil {
			t.Fatalf("recv after bogus frame: %v (want an error frame)", err)
		}
		if got.Type == msgHeartbeat {
			continue // liveness traffic may interleave
		}
		if got.Type != msgError || got.Job != 7 || !strings.Contains(got.Error, "bogus") {
			t.Fatalf("reply = %+v, want an error frame for job 7 naming the bogus kind", got)
		}
		break
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "unexpected frame kind") {
			t.Fatalf("ServeWorker = %v, want an unexpected-frame-kind error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWorker did not exit after the unknown frame")
	}
}

// TestCoordStress: several sequential jobs over a pool of four real
// in-process workers, every report digest bit-identical to the
// single-process reference. Run under -race this exercises the
// concurrent heartbeat/result/assign machinery hard enough to surface
// ordering bugs the single-job tests miss.
func TestCoordStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job stress run; skipped in -short")
	}
	spec := testSpec(t, 48)
	want := campaign.SummaryDigest(localRun(t, spec).Summary)

	p := NewPool(PoolOptions{RangesPerWorker: 3})
	defer p.Close()
	for i := 0; i < 4; i++ {
		addServedWorker(t, p)
	}
	waitReady(t, p, 4)

	for job := 0; job < 5; job++ {
		rep, err := p.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if got := campaign.SummaryDigest(rep.Summary); got != want {
			t.Fatalf("job %d: summary digest %s, want %s", job, got, want)
		}
	}
}
