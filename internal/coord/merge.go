// The deterministic half of distributed job execution: partitioning
// the scenario space and merging the shard states the workers return.
// This file is kept separate from pool.go — whose scheduling machinery
// legitimately runs on wall-clock heartbeats and timers. partitionJob
// and mergeJob are declared determinism roots of the detclose
// analyzer, which verifies their whole transitive call closure stays
// free of wall-clock reads, global randomness and order-sensitive
// folds — strictly stronger than the file-level marker this file used
// to carry, so nondeterminism can never leak into the path that must
// stay bit-identical to the single-process campaign.RunContext.
package coord

import (
	"fmt"

	"repro/internal/campaign"
)

// partitionJob cuts the campaign's scenario space into shard-aligned
// ranges, one unit of reassignable work per range.
func partitionJob(cfg campaign.Config, parts int) ([]campaign.Range, error) {
	return campaign.Partition(cfg, parts)
}

// mergeJob folds the collected shard states in shard order into the
// job report. The merge is pure: same states in, same bytes out,
// whatever worker produced each shard and in whatever real-time order
// the shards arrived.
func mergeJob(states []campaign.ShardState, scenarios int, baseline int) (*campaign.Report, error) {
	sum, err := campaign.MergeShardStates(states)
	if err != nil {
		return nil, err
	}
	if sum.Scenarios != scenarios {
		return nil, fmt.Errorf("coord: merged summary covers %d scenarios, want %d", sum.Scenarios, scenarios)
	}
	return &campaign.Report{Summary: sum, BaselineSinkTuples: baseline}, nil
}
