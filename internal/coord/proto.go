// Package coord implements multi-process campaign orchestration: a
// coordinator that partitions a campaign's scenario index space into
// shard-aligned ranges and farms them out to worker processes over a
// line-delimited JSON protocol — the stdin/stdout of locally spawned
// workers, or TCP connections for remote ones — then merges the
// returned per-shard sketch states into the same Summary the
// single-process path produces, bit-identical for the same (seed,
// Shards) whatever the worker count or range assignment.
//
// The system that simulates failure recovery survives its own workers
// dying: workers heartbeat while computing, a silent or disconnected
// worker is declared lost and its in-flight range is reassigned to a
// surviving worker (bounded retries), and a scenario error anywhere
// fails the whole campaign fast across the process boundary.
package coord

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/campaign"
)

// ProtoVersion is the wire protocol version. A worker opens with a
// hello carrying its version; the coordinator drops connections whose
// version does not match.
const ProtoVersion = 1

// Message types. Coordinator to worker: job (the campaign WireSpec),
// assign (one scenario range), cancel, shutdown. Worker to
// coordinator: hello (version handshake), heartbeat (liveness +
// progress), result (serialised shard states of a completed range),
// error (fail-fast propagation).
const (
	msgHello     = "hello"
	msgJob       = "job"
	msgAssign    = "assign"
	msgResult    = "result"
	msgError     = "error"
	msgHeartbeat = "heartbeat"
	msgCancel    = "cancel"
	msgShutdown  = "shutdown"
)

// message is one protocol frame: a JSON object per line. Fields are
// populated per Type; Job tags every job-scoped message so stale
// frames from a superseded job are dropped instead of corrupting the
// current one.
type message struct {
	Type    string                `json:"type"`
	Version int                   `json:"version,omitempty"`
	Job     int                   `json:"job,omitempty"`
	Spec    *campaign.WireSpec    `json:"spec,omitempty"`
	Range   *campaign.Range       `json:"range,omitempty"`
	States  []campaign.ShardState `json:"states,omitempty"`
	Done    int                   `json:"done,omitempty"`
	Error   string                `json:"error,omitempty"`
}

// conn frames messages as newline-delimited JSON over a byte stream.
// Sends are serialised by a mutex (the worker's heartbeat goroutine
// writes concurrently with result sends); receives have a single
// reader by construction.
type conn struct {
	mu  sync.Mutex
	enc *json.Encoder
	dec *json.Decoder
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{enc: json.NewEncoder(w), dec: json.NewDecoder(r)}
}

func (c *conn) send(m *message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(m)
}

func (c *conn) recv() (*message, error) {
	var m message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
