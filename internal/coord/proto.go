// Package coord implements multi-process campaign orchestration: a
// coordinator that partitions a campaign's scenario index space into
// shard-aligned ranges and farms them out to worker processes over a
// line-delimited JSON protocol — the stdin/stdout of locally spawned
// workers, or TCP connections for remote ones — then merges the
// returned per-shard sketch states into the same Summary the
// single-process path produces, bit-identical for the same (seed,
// Shards) whatever the worker count or range assignment.
//
// The system that simulates failure recovery survives its own workers
// dying: workers heartbeat while computing, a silent or disconnected
// worker is declared lost and its in-flight range is reassigned to a
// surviving worker (bounded retries), and a scenario error anywhere
// fails the whole campaign fast across the process boundary.
package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/campaign"
)

// ProtoVersion is the wire protocol version. A worker opens with a
// hello carrying its version; the coordinator drops connections whose
// version does not match.
const ProtoVersion = 1

// Message types. Coordinator to worker: job (the campaign WireSpec),
// assign (one scenario range), cancel, shutdown. Worker to
// coordinator: hello (version handshake), heartbeat (liveness +
// progress), result (serialised shard states of a completed range),
// error (fail-fast propagation).
const (
	msgHello     = "hello"
	msgJob       = "job"
	msgAssign    = "assign"
	msgResult    = "result"
	msgError     = "error"
	msgHeartbeat = "heartbeat"
	msgCancel    = "cancel"
	msgShutdown  = "shutdown"
)

// message is one protocol frame: a JSON object per line. Fields are
// populated per Type; Job tags every job-scoped message so stale
// frames from a superseded job are dropped instead of corrupting the
// current one.
type message struct {
	Type    string                `json:"type"`
	Version int                   `json:"version,omitempty"`
	Job     int                   `json:"job,omitempty"`
	Spec    *campaign.WireSpec    `json:"spec,omitempty"`
	Range   *campaign.Range       `json:"range,omitempty"`
	States  []campaign.ShardState `json:"states,omitempty"`
	Done    int                   `json:"done,omitempty"`
	Error   string                `json:"error,omitempty"`
}

// maxFrameLen bounds one protocol frame. The largest legitimate frame
// is a result carrying the serialised shard states of one range —
// megabytes at most; the cap is what keeps a malformed or hostile peer
// from making the reader buffer an endless unterminated line. Frames
// are rejected at the framing layer, before any JSON decoding.
const maxFrameLen = 64 << 20

// conn frames messages as newline-delimited JSON over a byte stream.
// Sends are serialised by a mutex (the worker's heartbeat goroutine
// writes concurrently with result sends); receives have a single
// reader by construction. Each received line is length-capped and then
// parsed by decodeFrame.
type conn struct {
	mu sync.Mutex
	w  io.Writer
	br *bufio.Reader
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{w: w, br: bufio.NewReaderSize(r, 64<<10)}
}

func (c *conn) send(m *message) error {
	buf, err := encodeFrame(m)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	//ppalint:allow lockheld the lock exists to serialise whole-frame writes; senders expect to block
	_, err = c.w.Write(buf)
	return err
}

func (c *conn) recv() (*message, error) {
	line, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	return decodeFrame(line)
}

// readFrame reads one newline-terminated frame, failing as soon as the
// accumulated line exceeds maxFrameLen instead of buffering without
// bound.
func (c *conn) readFrame() ([]byte, error) {
	var buf []byte
	for {
		chunk, err := c.br.ReadSlice('\n')
		if len(buf)+len(chunk) > maxFrameLen {
			return nil, fmt.Errorf("coord: frame exceeds %d bytes", maxFrameLen)
		}
		buf = append(buf, chunk...) // ReadSlice's buffer is only valid until the next read
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// encodeFrame renders one message as a newline-terminated JSON frame.
func encodeFrame(m *message) ([]byte, error) {
	buf, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// decodeFrame parses one length-capped frame into a message. It
// rejects oversized input, malformed JSON, frames with no type, and
// trailing data after the object — a frame is one JSON object and
// nothing else.
func decodeFrame(line []byte) (*message, error) {
	if len(line) > maxFrameLen {
		return nil, fmt.Errorf("coord: frame exceeds %d bytes", maxFrameLen)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	var m message
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("coord: bad frame: %w", err)
	}
	if dec.More() {
		return nil, errors.New("coord: trailing data after frame")
	}
	if m.Type == "" {
		return nil, errors.New("coord: frame missing type")
	}
	return &m, nil
}
