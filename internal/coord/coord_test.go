package coord

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// testSpec builds a fast, deterministic wire campaign: the small
// preset topology under the greedy plan with tentative outputs,
// single-node and k-of-rack bursts.
func testSpec(t testing.TB, scenarios int) campaign.WireSpec {
	t.Helper()
	topo, err := campaign.PresetTopology(campaign.TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.NewWireSpec(campaign.EnvSpec{Topo: topo, Planner: "greedy", Tentative: true}, []campaign.GenSpec{
		{Seed: 21, Scenarios: scenarios / 2, Model: campaign.KOfRack, Correlation: campaign.DefaultCorrelation},
		{Seed: 33, Scenarios: scenarios - scenarios/2, Model: campaign.Cascade, Correlation: campaign.DefaultCorrelation},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec.Horizon = 60
	spec.Shards = 4
	return spec
}

// localRun executes the wire campaign single-process as the reference.
func localRun(t testing.TB, spec campaign.WireSpec) *campaign.Report {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// addServedWorker runs a real in-process ServeWorker over a net.Pipe
// and adds the coordinator end to the pool.
func addServedWorker(t testing.TB, p *Pool) {
	t.Helper()
	a, b := net.Pipe()
	go func() {
		_ = ServeWorker(context.Background(), b, b, WorkerOptions{HeartbeatInterval: 50 * time.Millisecond})
		b.Close()
	}()
	p.AddConn(a)
}

// addFakeWorker runs a scripted worker: it sends a hello (with the
// given version) and then feeds every received frame to behave, which
// may reply on the conn; returning false ends the worker.
func addFakeWorker(t testing.TB, p *Pool, version int, behave func(c *conn, m *message) bool) {
	t.Helper()
	a, b := net.Pipe()
	go func() {
		defer b.Close()
		c := newConn(b, b)
		_ = c.send(&message{Type: msgHello, Version: version})
		for {
			m, err := c.recv()
			if err != nil {
				return
			}
			if behave != nil && !behave(c, m) {
				return
			}
		}
	}()
	p.AddConn(a)
}

func waitReady(t testing.TB, p *Pool, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.WaitReady(ctx, n); err != nil {
		t.Fatal(err)
	}
}

// TestPoolMatchesSingleProcess: a job run over in-process protocol
// workers merges to the exact single-process Summary, and the same
// pool serves a second job (sweep reuse).
func TestPoolMatchesSingleProcess(t *testing.T) {
	spec := testSpec(t, 24)
	want := localRun(t, spec)

	p := NewPool(PoolOptions{})
	defer p.Close()
	addServedWorker(t, p)
	addServedWorker(t, p)
	waitReady(t, p, 2)

	for job := 0; job < 2; job++ {
		rep, err := p.RunJob(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary != want.Summary {
			t.Fatalf("job %d: distributed summary differs from single-process:\n%+v\n%+v", job, rep.Summary, want.Summary)
		}
		if rep.BaselineSinkTuples != want.BaselineSinkTuples {
			t.Fatalf("job %d: baseline %d, want %d", job, rep.BaselineSinkTuples, want.BaselineSinkTuples)
		}
	}
}

// TestSilentWorkerReassigned: a worker that accepts work and then goes
// silent is declared lost after the heartbeat timeout and its range is
// re-run by the surviving worker; the summary is still bit-identical.
func TestSilentWorkerReassigned(t *testing.T) {
	spec := testSpec(t, 24)
	want := localRun(t, spec)

	p := NewPool(PoolOptions{HeartbeatTimeout: 300 * time.Millisecond})
	defer p.Close()
	// The fake accepts everything and never answers — and never
	// heartbeats, so only the timeout can unmask it.
	addFakeWorker(t, p, ProtoVersion, func(*conn, *message) bool { return true })
	addServedWorker(t, p)
	waitReady(t, p, 2)

	rep, err := p.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary != want.Summary {
		t.Fatalf("summary differs after reassignment:\n%+v\n%+v", rep.Summary, want.Summary)
	}
	if live := p.Live(); live != 1 {
		t.Fatalf("Live() = %d after losing the silent worker, want 1", live)
	}
}

// TestAllWorkersLostFails: when every worker dies with ranges
// outstanding, the job fails instead of hanging.
func TestAllWorkersLostFails(t *testing.T) {
	spec := testSpec(t, 24)
	p := NewPool(PoolOptions{HeartbeatTimeout: 200 * time.Millisecond})
	defer p.Close()
	addFakeWorker(t, p, ProtoVersion, func(*conn, *message) bool { return true })
	waitReady(t, p, 1)

	_, err := p.RunJob(context.Background(), spec)
	if err == nil {
		t.Fatal("job with only a silent worker succeeded")
	}
}

// TestWorkerErrorFailsFast: an error frame from a worker fails the
// whole job with the worker's message.
func TestWorkerErrorFailsFast(t *testing.T) {
	spec := testSpec(t, 24)
	p := NewPool(PoolOptions{})
	defer p.Close()
	addFakeWorker(t, p, ProtoVersion, func(c *conn, m *message) bool {
		if m.Type == msgAssign {
			_ = c.send(&message{Type: msgError, Job: m.Job, Error: "injected scenario failure"})
		}
		return true
	})
	waitReady(t, p, 1)

	_, err := p.RunJob(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "injected scenario failure") {
		t.Fatalf("err = %v, want the worker's injected failure", err)
	}
}

// TestVersionMismatchNeverReady: a worker with the wrong protocol
// version is dropped at the handshake.
func TestVersionMismatchNeverReady(t *testing.T) {
	p := NewPool(PoolOptions{})
	defer p.Close()
	addFakeWorker(t, p, ProtoVersion+1, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := p.WaitReady(ctx, 1); err == nil {
		t.Fatal("version-mismatched worker became ready")
	}
	if p.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", p.Live())
	}
}

// TestRunJobCancelled: cancelling the coordinator context fails the
// job promptly even while a worker keeps heartbeating (alive but
// slow), proving cancellation does not depend on the liveness timeout.
func TestRunJobCancelled(t *testing.T) {
	spec := testSpec(t, 24)
	stop := make(chan struct{})
	defer close(stop)
	p := NewPool(PoolOptions{HeartbeatTimeout: time.Hour})
	defer p.Close()
	addFakeWorker(t, p, ProtoVersion, func(c *conn, m *message) bool {
		if m.Type == msgAssign {
			go func() { // heartbeat forever, never finish
				tick := time.NewTicker(20 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-tick.C:
						if c.send(&message{Type: msgHeartbeat, Job: m.Job}) != nil {
							return
						}
					case <-stop:
						return
					}
				}
			}()
		}
		return true
	})
	waitReady(t, p, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.RunJob(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestServeWorkerEOF: a worker whose coordinator goes away exits
// cleanly on EOF.
func TestServeWorkerEOF(t *testing.T) {
	r, w := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeWorker(context.Background(), r, io.Discard, WorkerOptions{}) }()
	w.Close() // EOF on the worker's input
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeWorker = %v, want nil on EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWorker did not exit on EOF")
	}
}
