package coord

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
)

// stopSpec builds a campaign whose stop rule deterministically fires
// before the scenario space is exhausted: a generous tolerance and
// enough shards that the first eligible checkpoint (the min-sample
// guard needs 64 scenarios, and the p95 interval needs ~74 to be
// bounded at all) lands well before the last block.
func stopSpec(t testing.TB, scenarios int, tol float64) campaign.WireSpec {
	t.Helper()
	spec := testSpec(t, scenarios)
	spec.Shards = 8
	spec.StopTol = tol
	return spec
}

// TestEarlyStopMatchesSingleProcess: with early stopping enabled, the
// distributed run stops at the same shard checkpoint as the
// single-process run and merges to the exact same stopped Summary.
func TestEarlyStopMatchesSingleProcess(t *testing.T) {
	spec := stopSpec(t, 120, 10) // fires at the first eligible checkpoint
	want := localRun(t, spec)
	if !want.Stopped {
		t.Fatal("reference run did not stop early; the spec's tolerance should guarantee it")
	}
	if want.Summary.Scenarios >= 120 {
		t.Fatalf("stopped reference ran all %d scenarios", want.Summary.Scenarios)
	}

	p := NewPool(PoolOptions{})
	defer p.Close()
	addServedWorker(t, p)
	addServedWorker(t, p)
	waitReady(t, p, 2)

	rep, err := p.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stopped {
		t.Fatal("distributed run did not report Stopped")
	}
	if rep.Summary != want.Summary {
		t.Fatalf("stopped distributed summary differs from single-process:\n%+v\n%+v", rep.Summary, want.Summary)
	}
	if got, want := campaign.SummaryDigest(rep.Summary), campaign.SummaryDigest(want.Summary); got != want {
		t.Fatalf("stopped summary digest %s, want %s", got, want)
	}
}

// TestStoppedCellSchedulesNoFurtherRanges is the regression test for
// the scheduler's stop path: once the stop rule fires, the pending
// queue is dropped and the coordinator assigns zero further ranges.
// A single scripted worker executes ranges synchronously in take
// order, so the assign count is deterministic: exactly the ranges of
// the stopped prefix.
func TestStoppedCellSchedulesNoFurtherRanges(t *testing.T) {
	spec := stopSpec(t, 120, 10)
	// 8 ranges of one 15-scenario shard block each: the monitor's first
	// eligible checkpoint is shard 4 (75 scenarios ≥ the 64-sample
	// guard with a bounded p95 interval), so exactly 5 ranges may ever
	// be assigned.
	var (
		mu  sync.Mutex
		cfg campaign.Config
	)
	var assigns atomic.Int32
	p := NewPool(PoolOptions{RangesPerWorker: 8})
	defer p.Close()
	addFakeWorker(t, p, ProtoVersion, func(c *conn, m *message) bool {
		switch m.Type {
		case msgJob:
			jc, err := m.Spec.Config()
			if err != nil {
				t.Errorf("building config: %v", err)
				return false
			}
			mu.Lock()
			cfg = jc
			mu.Unlock()
		case msgAssign:
			assigns.Add(1)
			mu.Lock()
			jc := cfg
			mu.Unlock()
			states, err := campaign.RunRange(jc, *m.Range)
			if err != nil {
				t.Errorf("running range %v: %v", m.Range, err)
				return false
			}
			_ = c.send(&message{Type: msgResult, Job: m.Job, Range: m.Range, States: states})
		case msgShutdown:
			return false
		}
		return true
	})
	waitReady(t, p, 1)

	rep, err := p.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stopped {
		t.Fatal("job did not stop early")
	}
	if rep.Summary.Scenarios != 75 {
		t.Fatalf("stopped summary covers %d scenarios, want 75", rep.Summary.Scenarios)
	}
	if got := assigns.Load(); got != 5 {
		t.Fatalf("%d ranges assigned, want exactly 5 (none after the stop fired)", got)
	}
}

// TestWeightedCRNDistributedMatches: a campaign with CRN substreams
// and a tilted cascade sampler — the full variance-reduction stack —
// still merges bit-identically to the single-process run, weighted
// summaries, ESS and all.
func TestWeightedCRNDistributedMatches(t *testing.T) {
	topo, err := campaign.PresetTopology(campaign.TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.NewWireSpec(campaign.EnvSpec{Topo: topo, Planner: "greedy", Tentative: true}, []campaign.GenSpec{
		{Seed: 5, Scenarios: 12, Model: campaign.KOfRack, Correlation: 0.1, CRN: true, Tilt: 4},
		{Seed: 5, Scenarios: 12, Model: campaign.Cascade, Correlation: 0.1, CRN: true, Tilt: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec.Horizon = 60
	spec.Shards = 4
	want := localRun(t, spec)
	if want.Summary.ESS == float64(want.Summary.Scenarios) {
		t.Fatal("tilted campaign reported the unweighted ESS; weights did not reach the aggregator")
	}

	p := NewPool(PoolOptions{})
	defer p.Close()
	addServedWorker(t, p)
	addServedWorker(t, p)
	waitReady(t, p, 2)

	rep, err := p.RunJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary != want.Summary {
		t.Fatalf("weighted distributed summary differs from single-process:\n%+v\n%+v", rep.Summary, want.Summary)
	}
}
