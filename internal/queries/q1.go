// Package queries implements the evaluation queries of Su & Zhou (ICDE
// 2016), §VI: Q1, the hierarchical top-100 aggregation over the (here
// synthetic) WorldCup access log; Q2, the traffic-incident detection
// join over user-location and incident streams; and the Fig. 6
// synthetic topology used by the recovery-efficiency experiments.
package queries

import (
	"bytes"
	"encoding/gob"
	"sort"

	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Q1 is the top-k query bundle: topology plus engine factories.
type Q1 struct {
	Model *workload.AccessLogModel
	Topo  *topology.Topology
	K     int
	// WindowBatches is the sliding window of the top-k aggregation.
	WindowBatches int
}

// Q1Params sizes the query.
type Q1Params struct {
	Seed          int64
	Servers       int // parallelism of the source and O1 (default 8)
	MergeTasks    int // parallelism of O2 (default 4)
	K             int // top-k (default 100)
	WindowBatches int // sliding window (default 30)
	RatePerTask   int // access records per batch per source task (default 2000)
}

// NewQ1 builds the query: source (one task per server, partitioned by
// server id) -> O1 slice aggregation -> O2 merge -> O3 global top-k
// (single task), the hierarchical-aggregate topology of Fig. 11.
func NewQ1(p Q1Params) (*Q1, error) {
	if p.Servers == 0 {
		p.Servers = 8
	}
	if p.MergeTasks == 0 {
		p.MergeTasks = 4
	}
	if p.K == 0 {
		p.K = 100
	}
	if p.WindowBatches == 0 {
		p.WindowBatches = 30
	}
	if p.RatePerTask == 0 {
		p.RatePerTask = 2000
	}
	model := workload.NewAccessLogModel(p.Seed)
	model.Servers = p.Servers
	model.RatePerTask = p.RatePerTask

	b := topology.NewBuilder()
	src := b.AddSource("access-log", p.Servers, float64(p.RatePerTask))
	o1 := b.AddOperator("O1-slice", p.Servers, topology.Independent, 0.2)
	o2 := b.AddOperator("O2-merge", p.MergeTasks, topology.Independent, 0.5)
	o3 := b.AddOperator("O3-topk", 1, topology.Independent, 0.1)
	b.Connect(src, o1, topology.OneToOne)
	b.Connect(o1, o2, topology.Merge)
	b.Connect(o2, o3, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Q1{Model: model, Topo: topo, K: p.K, WindowBatches: p.WindowBatches}, nil
}

// Sources returns the engine source factories.
func (q *Q1) Sources() map[int]engine.SourceFactory {
	return map[int]engine.SourceFactory{
		0: func(task int) engine.SourceFunc {
			return engine.FuncSource(func(batch int) engine.Batch {
				counts, rest := q.Model.AccessCounts(task, batch)
				objs := make([]int, 0, len(counts))
				total := rest
				for o, c := range counts {
					objs = append(objs, o)
					total += c
				}
				sort.Ints(objs)
				tuples := make([]engine.Tuple, 0, len(objs))
				for _, o := range objs {
					tuples = append(tuples, engine.Tuple{Key: workload.ObjectName(o), Value: counts[o]})
				}
				return engine.Batch{Count: total, Tuples: tuples}
			})
		},
	}
}

// Operators returns the engine UDF factories.
func (q *Q1) Operators() map[int]engine.OperatorFactory {
	return map[int]engine.OperatorFactory{
		1: func(int) engine.OperatorFunc { return &countMergeOp{} },
		2: func(int) engine.OperatorFunc { return &countMergeOp{} },
		3: func(int) engine.OperatorFunc {
			return &topKOp{k: q.K, window: q.WindowBatches}
		},
	}
}

// countMergeOp sums per-key partial counts within a batch and emits one
// partial per key on batch end — both the slice aggregation (O1) and
// the merge (O2) of Q1. State does not span batches (slices), so
// snapshots are empty.
type countMergeOp struct {
	acc map[string]int
}

func (o *countMergeOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	if o.acc == nil {
		o.acc = make(map[string]int)
	}
	for _, t := range in.Tuples {
		if c, ok := t.Value.(int); ok {
			o.acc[t.Key] += c
		}
	}
}

func (o *countMergeOp) OnBatchEnd(batch int, emit engine.Emitter) {
	keys := make([]string, 0, len(o.acc))
	for k := range o.acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit.Emit(engine.Tuple{Key: k, Value: o.acc[k]})
	}
	o.acc = nil
}

func (o *countMergeOp) Snapshot() []byte       { return nil }
func (o *countMergeOp) Restore(d []byte) error { o.acc = nil; return nil }

// topKOp maintains a sliding window of per-key counts (a FIFO ring of
// per-batch maps) and emits the current top-k every batch.
type topKOp struct {
	k      int
	window int
	ring   []map[string]int // oldest first
	totals map[string]int
	cur    map[string]int
}

func (o *topKOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	if o.totals == nil {
		o.totals = make(map[string]int)
	}
	if o.cur == nil {
		o.cur = make(map[string]int)
	}
	for _, t := range in.Tuples {
		if c, ok := t.Value.(int); ok {
			o.cur[t.Key] += c
			o.totals[t.Key] += c
		}
	}
}

func (o *topKOp) OnBatchEnd(batch int, emit engine.Emitter) {
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(o.totals))
	for k, v := range o.totals {
		if v > 0 {
			all = append(all, kv{k, v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	n := o.k
	if n > len(all) {
		n = len(all)
	}
	for i := 0; i < n; i++ {
		emit.Emit(engine.Tuple{Key: all[i].k, Value: i + 1})
	}
	// Slide the window.
	if o.cur == nil {
		o.cur = map[string]int{}
	}
	o.ring = append(o.ring, o.cur)
	o.cur = nil
	if o.window > 0 && len(o.ring) > o.window {
		for k, v := range o.ring[0] {
			o.totals[k] -= v
			if o.totals[k] <= 0 {
				delete(o.totals, k)
			}
		}
		o.ring = o.ring[1:]
	}
}

type topKState struct {
	Ring   []map[string]int
	Totals map[string]int
}

func (o *topKOp) Snapshot() []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(topKState{Ring: o.ring, Totals: o.totals})
	return buf.Bytes()
}

func (o *topKOp) Restore(data []byte) error {
	o.cur = nil
	if data == nil {
		o.ring, o.totals = nil, nil
		return nil
	}
	var st topKState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	o.ring, o.totals = st.Ring, st.Totals
	return nil
}

// LastBatchKeys extracts the key set emitted at the given sink batch; if
// batch is negative, the highest batch present is used.
func LastBatchKeys(records []engine.SinkRecord, batch int) (map[string]bool, int) {
	if batch < 0 {
		for _, r := range records {
			if r.Batch > batch {
				batch = r.Batch
			}
		}
	}
	out := make(map[string]bool)
	for _, r := range records {
		if r.Batch == batch {
			out[r.Tuple.Key] = true
		}
	}
	return out, batch
}

// SetAccuracy computes |test ∩ truth| / |truth| — the paper's accuracy
// function for both Q1 (top-k overlap) and Q2 (incident overlap).
func SetAccuracy(test, truth map[string]bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	inter := 0
	for k := range test {
		if truth[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(truth))
}
