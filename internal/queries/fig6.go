package queries

import (
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/topology"
)

// Fig6Params configures the synthetic recovery-efficiency topology of
// §VI-A (Fig. 6): one source operator with 16 tasks on 4 nodes feeding
// a chain of 4 synthetic operators with 8/4/2/1 tasks on 15 nodes, plus
// 15 standby nodes for checkpoints and active replicas.
type Fig6Params struct {
	// RatePerTask is the source rate in tuples per second per source
	// task (paper: 1000 or 2000).
	RatePerTask int
	// WindowBatches is the sliding window of the synthetic operators in
	// batches (paper: 10 s or 30 s with a 1 s slide).
	WindowBatches int
	// Selectivity of the synthetic operators (paper: 0.5).
	Selectivity float64
}

func (p *Fig6Params) defaults() {
	if p.RatePerTask == 0 {
		p.RatePerTask = 1000
	}
	if p.WindowBatches == 0 {
		p.WindowBatches = 30
	}
	if p.Selectivity == 0 {
		p.Selectivity = 0.5
	}
}

// Fig6 bundles the synthetic topology with its cluster layout.
type Fig6 struct {
	Topo *topology.Topology
	Clus *cluster.Cluster
	// SyntheticNodes are the 15 processing nodes hosting the synthetic
	// operator tasks; the correlated-failure experiment kills exactly
	// these.
	SyntheticNodes []cluster.NodeID
	// SyntheticTasks are the 15 tasks of the four synthetic operators.
	SyntheticTasks []topology.TaskID
	params         Fig6Params
}

// NewFig6 builds the topology, the 4+15+15 node cluster and the
// placement of §VI-A.
func NewFig6(p Fig6Params) (*Fig6, error) {
	p.defaults()
	b := topology.NewBuilder()
	src := b.AddSource("source", 16, float64(p.RatePerTask))
	o1 := b.AddOperator("O1", 8, topology.Independent, p.Selectivity)
	o2 := b.AddOperator("O2", 4, topology.Independent, p.Selectivity)
	o3 := b.AddOperator("O3", 2, topology.Independent, p.Selectivity)
	o4 := b.AddOperator("O4", 1, topology.Independent, p.Selectivity)
	b.Connect(src, o1, topology.Merge) // each O1 task reads two source tasks
	b.Connect(o1, o2, topology.Merge)
	b.Connect(o2, o3, topology.Merge)
	b.Connect(o3, o4, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}

	// 4 source nodes + 15 synthetic nodes + 15 standby nodes.
	clus := cluster.New(19, 15)
	f := &Fig6{Topo: topo, Clus: clus, params: p}
	// 16 source tasks spread over 4 nodes.
	for i, id := range topo.TasksOf(0) {
		clus.Place(id, cluster.NodeID(i%4))
	}
	// 15 synthetic tasks, one per node 4..18.
	node := 4
	for op := 1; op <= 4; op++ {
		for _, id := range topo.TasksOf(op) {
			clus.Place(id, cluster.NodeID(node))
			f.SyntheticNodes = append(f.SyntheticNodes, cluster.NodeID(node))
			f.SyntheticTasks = append(f.SyntheticTasks, id)
			node++
		}
	}
	return f, nil
}

// Setup assembles the engine setup for the experiment with the given
// engine config and per-task strategies.
func (f *Fig6) Setup(cfg engine.Config, strategies []engine.Strategy) engine.Setup {
	if cfg.WindowBatches == 0 {
		cfg.WindowBatches = f.params.WindowBatches
	}
	return engine.Setup{
		Topology: f.Topo,
		Cluster:  f.Clus,
		Config:   cfg,
		Sources: map[int]engine.SourceFactory{
			0: engine.NewCountSourceFactory(f.params.RatePerTask),
		},
		Operators: map[int]engine.OperatorFactory{
			1: engine.NewWindowCountFactory(f.params.WindowBatches, f.params.Selectivity),
			2: engine.NewWindowCountFactory(f.params.WindowBatches, f.params.Selectivity),
			3: engine.NewWindowCountFactory(f.params.WindowBatches, f.params.Selectivity),
			4: engine.NewWindowCountFactory(f.params.WindowBatches, f.params.Selectivity),
		},
		Strategies: strategies,
	}
}

// Strategies builds a per-task strategy vector: every task gets def,
// except the tasks in active, which get StrategyActive.
func (f *Fig6) Strategies(def engine.Strategy, active []topology.TaskID) []engine.Strategy {
	out := make([]engine.Strategy, f.Topo.NumTasks())
	for i := range out {
		out[i] = def
	}
	for _, id := range active {
		out[id] = engine.StrategyActive
	}
	return out
}
