package queries

import (
	"bytes"
	"encoding/gob"
	"sort"

	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Q2 is the traffic-incident detection query bundle (§VI-B): a join of
// the segment-speed stream (from user locations) with the
// distinct-incident stream (from user incident reports); incidents that
// coincide with a depressed segment speed are reported as jams.
type Q2 struct {
	Model *workload.TrafficModel
	Topo  *topology.Topology
	// WindowBatches is the join window (paper: 5-minute window, 10 s
	// slide; scaled to batches here).
	WindowBatches int
	// JamThreshold is the speed below which a segment counts as jammed.
	JamThreshold float64
}

// Q2Params sizes the query.
type Q2Params struct {
	Seed          int64
	LocTasks      int // parallelism of the location source and O1 (default 8)
	IncTasks      int // parallelism of the incident source and O2 (default 2)
	JoinTasks     int // parallelism of the join O3 (default 4)
	WindowBatches int // join window in batches (default 30)
	Users         int // users in the traffic model (default 100000)
	Segments      int // road segments (default 1000)
	LocRate       int // location records per batch (default 20000)
}

// NewQ2 builds the query topology of Fig. 11: two sources, the
// per-segment speed aggregation O1, the incident deduplication O2, the
// correlated-input join O3 and the aggregation sink O4.
func NewQ2(p Q2Params) (*Q2, error) {
	if p.LocTasks == 0 {
		p.LocTasks = 8
	}
	if p.IncTasks == 0 {
		p.IncTasks = 2
	}
	if p.JoinTasks == 0 {
		p.JoinTasks = 4
	}
	if p.WindowBatches == 0 {
		p.WindowBatches = 30
	}
	model := workload.NewTrafficModel(p.Seed)
	if p.Users != 0 {
		model.Users = p.Users
	}
	if p.Segments != 0 {
		model.Segments = p.Segments
	}
	if p.LocRate != 0 {
		model.LocRecordsPerBatch = p.LocRate
	}

	b := topology.NewBuilder()
	locSrc := b.AddSource("loc-src", p.LocTasks, float64(model.LocRecordsPerBatch)/float64(p.LocTasks))
	incSrc := b.AddSource("inc-src", p.IncTasks, 50)
	o1 := b.AddOperator("O1-speed", p.LocTasks, topology.Independent, 0.05)
	o2 := b.AddOperator("O2-dedup", p.IncTasks, topology.Independent, 0.05)
	o3 := b.AddOperator("O3-join", p.JoinTasks, topology.Correlated, 0.05)
	o4 := b.AddOperator("O4-agg", 1, topology.Independent, 1)
	b.Connect(locSrc, o1, topology.OneToOne)
	b.Connect(incSrc, o2, topology.OneToOne)
	b.Connect(o1, o3, topology.Full)
	b.Connect(o2, o3, topology.Full)
	b.Connect(o3, o4, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Q2{Model: model, Topo: topo, WindowBatches: p.WindowBatches, JamThreshold: 30}, nil
}

// speedObs is the per-segment speed observation flowing O1 -> O3.
type speedObs struct {
	Speed float64
}

// Sources returns the engine source factories: operator 0 emits
// user-location records (one summarised tuple per covered segment, with
// the raw record volume in Count), operator 1 emits user incident
// reports.
func (q *Q2) Sources() map[int]engine.SourceFactory {
	locTasks := q.Topo.Ops[0].Parallelism
	incTasks := q.Topo.Ops[1].Parallelism
	return map[int]engine.SourceFactory{
		0: func(task int) engine.SourceFunc {
			return engine.FuncSource(func(batch int) engine.Batch {
				recs := q.Model.LocRecords(batch)
				var tuples []engine.Tuple
				total := 0
				for seg := task; seg < q.Model.Segments; seg += locTasks {
					n := recs[seg]
					if n == 0 {
						continue
					}
					total += n
					tuples = append(tuples, engine.Tuple{
						Key:   workload.SegmentName(seg),
						Value: speedObs{Speed: q.Model.SpeedOf(seg, batch)},
					})
				}
				return engine.Batch{Count: total, Tuples: tuples}
			})
		},
		1: func(task int) engine.SourceFunc {
			return engine.FuncSource(func(batch int) engine.Batch {
				inc, ok := q.Model.IncidentAt(batch)
				if !ok || inc.Segment%incTasks != task {
					return engine.Batch{}
				}
				// Every user on the segment reports the incident; one
				// summarised tuple carries the report volume.
				reports := q.Model.UsersOn(inc.Segment)
				if reports < 1 {
					reports = 1
				}
				return engine.Batch{
					Count: reports,
					Tuples: []engine.Tuple{{
						Key:   workload.SegmentName(inc.Segment),
						Value: inc.ID,
					}},
				}
			})
		},
	}
}

// Operators returns the engine UDF factories.
func (q *Q2) Operators() map[int]engine.OperatorFactory {
	return map[int]engine.OperatorFactory{
		2: func(int) engine.OperatorFunc { return &speedAggOp{} },
		3: func(int) engine.OperatorFunc { return &dedupOp{} },
		4: func(int) engine.OperatorFunc {
			return &joinOp{window: q.WindowBatches, threshold: q.JamThreshold}
		},
		5: func(int) engine.OperatorFunc { return &collectOp{} },
	}
}

// speedAggOp (O1) forwards the per-segment average speed each batch.
type speedAggOp struct {
	cur map[string]float64
}

func (o *speedAggOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	if o.cur == nil {
		o.cur = make(map[string]float64)
	}
	for _, t := range in.Tuples {
		if s, ok := t.Value.(speedObs); ok {
			o.cur[t.Key] = s.Speed
		}
	}
}

func (o *speedAggOp) OnBatchEnd(batch int, emit engine.Emitter) {
	keys := make([]string, 0, len(o.cur))
	for k := range o.cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit.Emit(engine.Tuple{Key: k, Value: speedObs{Speed: o.cur[k]}})
	}
	o.cur = nil
}

func (o *speedAggOp) Snapshot() []byte     { return nil }
func (o *speedAggOp) Restore([]byte) error { o.cur = nil; return nil }

// dedupOp (O2) combines the user-reported incident events into distinct
// incident events.
type dedupOp struct {
	cur map[string]string // segment -> incident id
}

func (o *dedupOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	if o.cur == nil {
		o.cur = make(map[string]string)
	}
	for _, t := range in.Tuples {
		if id, ok := t.Value.(string); ok {
			o.cur[t.Key] = id
		}
	}
}

func (o *dedupOp) OnBatchEnd(batch int, emit engine.Emitter) {
	keys := make([]string, 0, len(o.cur))
	for k := range o.cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit.Emit(engine.Tuple{Key: k, Value: o.cur[k]})
	}
	o.cur = nil
}

func (o *dedupOp) Snapshot() []byte     { return nil }
func (o *dedupOp) Restore([]byte) error { o.cur = nil; return nil }

// joinState is the serialisable state of joinOp.
type joinState struct {
	Incidents map[string]incidentEntry
	Emitted   map[string]bool
}

type incidentEntry struct {
	ID    string
	Since int
}

// joinOp (O3) is the correlated-input operator: it joins the
// segment-speed stream with the distinct-incident stream; an incident
// whose segment speed drops below the threshold within the join window
// is emitted as a traffic jam.
type joinOp struct {
	window    int
	threshold float64
	incidents map[string]incidentEntry // segment -> active incident
	emitted   map[string]bool          // incident ids already reported
	speeds    map[string]float64       // current-batch speeds
}

func (o *joinOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	if o.incidents == nil {
		o.incidents = make(map[string]incidentEntry)
		o.emitted = make(map[string]bool)
	}
	if o.speeds == nil {
		o.speeds = make(map[string]float64)
	}
	for _, t := range in.Tuples {
		switch v := t.Value.(type) {
		case speedObs:
			o.speeds[t.Key] = v.Speed
		case string:
			o.incidents[t.Key] = incidentEntry{ID: v, Since: batch}
		}
	}
}

func (o *joinOp) OnBatchEnd(batch int, emit engine.Emitter) {
	segs := make([]string, 0, len(o.incidents))
	for s := range o.incidents {
		segs = append(segs, s)
	}
	sort.Strings(segs)
	for _, s := range segs {
		entry := o.incidents[s]
		if batch-entry.Since > o.window {
			delete(o.incidents, s)
			continue
		}
		speed, ok := o.speeds[s]
		if !ok || speed >= o.threshold || o.emitted[entry.ID] {
			continue
		}
		o.emitted[entry.ID] = true
		emit.Emit(engine.Tuple{Key: entry.ID, Value: s})
	}
	o.speeds = nil
}

func (o *joinOp) Snapshot() []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(joinState{Incidents: o.incidents, Emitted: o.emitted})
	return buf.Bytes()
}

func (o *joinOp) Restore(data []byte) error {
	o.speeds = nil
	if data == nil {
		o.incidents, o.emitted = nil, nil
		return nil
	}
	var st joinState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	o.incidents, o.emitted = st.Incidents, st.Emitted
	return nil
}

// collectOp (O4) forwards jam reports to the sink output.
type collectOp struct{}

func (collectOp) ProcessBatch(batch, fromOp int, in engine.Batch, emit engine.Emitter) {
	for _, t := range in.Tuples {
		emit.Emit(t)
	}
}
func (collectOp) OnBatchEnd(int, engine.Emitter) {}
func (collectOp) Snapshot() []byte               { return nil }
func (collectOp) Restore([]byte) error           { return nil }

// AllKeys extracts the distinct tuple keys seen at the sink — Q2's
// incident set.
func AllKeys(records []engine.SinkRecord) map[string]bool {
	out := make(map[string]bool)
	for _, r := range records {
		out[r.Tuple.Key] = true
	}
	return out
}
