package queries

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// runQuery builds an engine for a query bundle and runs it with the
// given failed tasks unrecoverable from t=2.1s, tentative outputs on.
func runQuery(t *testing.T, topo *topology.Topology, sources map[int]engine.SourceFactory,
	operators map[int]engine.OperatorFactory, failed []topology.TaskID, until sim.Time) *engine.Engine {
	t.Helper()
	clus := cluster.New(topo.NumTasks(), 4)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	strategies := make([]engine.Strategy, topo.NumTasks())
	for _, id := range failed {
		strategies[id] = engine.StrategyNone
	}
	e, err := engine.New(engine.Setup{
		Topology:   topo,
		Cluster:    clus,
		Config:     engine.Config{TentativeOutputs: true, HeartbeatInterval: 1, ProcRate: 1e7},
		Sources:    sources,
		Operators:  operators,
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) > 0 {
		e.ScheduleTaskFailures(failed, 2.1)
	}
	e.Run(until)
	return e
}

func TestQ1BaselineFindsTrueTopK(t *testing.T) {
	q, err := NewQ1(Q1Params{Seed: 42, K: 50, RatePerTask: 2000, WindowBatches: 20})
	if err != nil {
		t.Fatal(err)
	}
	e := runQuery(t, q.Topo, q.Sources(), q.Operators(), nil, 40)
	got, batch := LastBatchKeys(e.SinkRecords(), -1)
	if batch < 30 {
		t.Fatalf("sink only reached batch %d", batch)
	}
	if len(got) != 50 {
		t.Fatalf("top-k emitted %d keys, want 50", len(got))
	}
	truth := map[string]bool{}
	for _, k := range q.Model.TrueTopK(50) {
		truth[k] = true
	}
	if acc := SetAccuracy(got, truth); acc < 0.8 {
		t.Errorf("baseline top-k accuracy vs Zipf ground truth = %v, want >= 0.8", acc)
	}
}

func TestQ1FailureDegradesAccuracy(t *testing.T) {
	build := func() (*Q1, *engine.Engine, []topology.TaskID) {
		q, err := NewQ1(Q1Params{Seed: 7, K: 50, RatePerTask: 2000, WindowBatches: 20})
		if err != nil {
			t.Fatal(err)
		}
		// Fail half of the O1 tasks (operator index 1).
		var failed []topology.TaskID
		o1 := q.Topo.TasksOf(1)
		for i := 0; i < len(o1); i += 2 {
			failed = append(failed, o1[i])
		}
		return q, nil, failed
	}
	q, _, failed := build()
	base := runQuery(t, q.Topo, q.Sources(), q.Operators(), nil, 40)
	baseKeys, _ := LastBatchKeys(base.SinkRecords(), -1)

	q2, err := NewQ1(Q1Params{Seed: 7, K: 50, RatePerTask: 2000, WindowBatches: 20})
	if err != nil {
		t.Fatal(err)
	}
	tent := runQuery(t, q2.Topo, q2.Sources(), q2.Operators(), failed, 40)
	tentKeys, batch := LastBatchKeys(tent.SinkRecords(), -1)
	if batch < 30 {
		t.Fatalf("tentative run stalled at batch %d; tentative outputs not flowing", batch)
	}
	acc := SetAccuracy(tentKeys, baseKeys)
	if acc <= 0.2 || acc >= 1 {
		t.Errorf("tentative accuracy = %v, want degraded but nonzero", acc)
	}
}

func TestQ2BaselineDetectsJams(t *testing.T) {
	q, err := NewQ2(Q2Params{Seed: 42, Users: 10000, Segments: 100, LocRate: 2000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	e := runQuery(t, q.Topo, q.Sources(), q.Operators(), nil, 60)
	got := AllKeys(e.SinkRecords())
	truth := map[string]bool{}
	for _, id := range q.Model.TrueJams(0, 50) {
		truth[id] = true
	}
	if len(truth) == 0 {
		t.Fatal("no ground-truth jams")
	}
	if acc := SetAccuracy(got, truth); acc < 0.9 {
		t.Errorf("baseline jam accuracy = %v, want >= 0.9 (got %d of %d)", acc, len(got), len(truth))
	}
	// High precision: nearly every reported id is a true jam. (A non-jam
	// incident on a segment still slowed by an earlier jam is a
	// semantically correct detection, so allow a small margin.)
	truthAll := map[string]bool{}
	for _, id := range q.Model.TrueJams(0, 60) {
		truthAll[id] = true
	}
	false_ := 0
	for id := range got {
		if !truthAll[id] {
			false_++
		}
	}
	if len(got) > 0 && float64(false_)/float64(len(got)) > 0.15 {
		t.Errorf("%d of %d reported jams are false", false_, len(got))
	}
}

func TestQ2JoinInputLossKillsDetection(t *testing.T) {
	// Killing all the incident-side tasks (O2) starves the join's
	// correlated input: no jams can be detected even though speeds
	// still flow — the behaviour that makes IC mispredict join queries.
	q, err := NewQ2(Q2Params{Seed: 9, Users: 10000, Segments: 100, LocRate: 2000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	failed := append([]topology.TaskID(nil), q.Topo.TasksOf(3)...) // O2-dedup tasks
	e := runQuery(t, q.Topo, q.Sources(), q.Operators(), failed, 60)
	got := AllKeys(e.SinkRecords())
	// Jams reported before the failure at t=2.1 are fine; none after.
	truthBefore := map[string]bool{}
	for _, id := range q.Model.TrueJams(0, 1) {
		truthBefore[id] = true
	}
	for id := range got {
		if !truthBefore[id] {
			t.Errorf("jam %s detected despite losing the incident stream", id)
		}
	}
}

func TestQ2PartialFailureDegradesGracefully(t *testing.T) {
	q, err := NewQ2(Q2Params{Seed: 21, Users: 10000, Segments: 100, LocRate: 2000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	base := runQuery(t, q.Topo, q.Sources(), q.Operators(), nil, 60)
	baseKeys := AllKeys(base.SinkRecords())

	q2, err := NewQ2(Q2Params{Seed: 21, Users: 10000, Segments: 100, LocRate: 2000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Fail half the join tasks.
	var failed []topology.TaskID
	o3 := q2.Topo.TasksOf(4)
	for i := 0; i < len(o3); i += 2 {
		failed = append(failed, o3[i])
	}
	tent := runQuery(t, q2.Topo, q2.Sources(), q2.Operators(), failed, 60)
	tentKeys := AllKeys(tent.SinkRecords())
	acc := SetAccuracy(tentKeys, baseKeys)
	if acc <= 0 || acc >= 1 {
		t.Errorf("accuracy with half the join tasks = %v, want in (0,1)", acc)
	}
}

func TestFig6Construction(t *testing.T) {
	f, err := NewFig6(Fig6Params{RatePerTask: 1000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Topo.NumTasks(); got != 31 {
		t.Errorf("tasks = %d, want 31 (16 sources + 15 synthetic)", got)
	}
	if len(f.SyntheticNodes) != 15 || len(f.SyntheticTasks) != 15 {
		t.Errorf("synthetic layout = %d nodes / %d tasks, want 15/15",
			len(f.SyntheticNodes), len(f.SyntheticTasks))
	}
	// All synthetic tasks on distinct nodes 4..18.
	seen := map[cluster.NodeID]bool{}
	for i, id := range f.SyntheticTasks {
		n := f.Clus.NodeOf(id)
		if n != f.SyntheticNodes[i] {
			t.Errorf("task %d on node %d, layout says %d", id, n, f.SyntheticNodes[i])
		}
		if seen[n] {
			t.Errorf("node %d hosts two synthetic tasks", n)
		}
		seen[n] = true
	}
}

func TestFig6CorrelatedRecovery(t *testing.T) {
	f, err := NewFig6(Fig6Params{RatePerTask: 1000, WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	setup := f.Setup(engine.Config{CheckpointInterval: 5}, nil)
	e, err := engine.New(setup)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f.SyntheticNodes {
		e.ScheduleNodeFailure(n, 30.2)
	}
	e.Run(200)
	stats := e.RecoveryStats()
	if len(stats) != 15 {
		t.Fatalf("recovery stats for %d tasks, want 15", len(stats))
	}
	for _, st := range stats {
		if !st.Recovered {
			t.Errorf("task %d (%s) not recovered", st.Task, st.Strategy)
		}
	}
}

func TestTopKOpWindowSlides(t *testing.T) {
	op := &topKOp{k: 2, window: 2}
	c := &capture{}
	// batch 0: a dominates
	op.ProcessBatch(0, 0, engine.Batch{Count: 2, Tuples: []engine.Tuple{
		{Key: "a", Value: 10}, {Key: "b", Value: 1}}}, c)
	op.OnBatchEnd(0, c)
	if c.keys()[0] != "a" {
		t.Fatalf("batch 0 top = %v", c.keys())
	}
	c.reset()
	// batches 1 and 2: b dominates; a's count must expire after the
	// window slides past batch 0.
	for b := 1; b <= 2; b++ {
		op.ProcessBatch(b, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{{Key: "b", Value: 5}}}, c)
		op.OnBatchEnd(b, c)
		c.reset()
	}
	op.ProcessBatch(3, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{{Key: "b", Value: 5}}}, c)
	op.OnBatchEnd(3, c)
	ks := c.keys()
	if len(ks) == 0 || ks[0] != "b" {
		t.Errorf("after sliding, top = %v, want b first", ks)
	}
	for _, k := range ks {
		if k == "a" {
			t.Error("expired key a still in top-k")
		}
	}
}

func TestTopKSnapshotRoundTrip(t *testing.T) {
	op := &topKOp{k: 3, window: 5}
	c := &capture{}
	for b := 0; b < 4; b++ {
		op.ProcessBatch(b, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{
			{Key: workload.ObjectName(b), Value: b + 1}}}, c)
		op.OnBatchEnd(b, c)
	}
	snap := op.Snapshot()
	op2 := &topKOp{k: 3, window: 5}
	if err := op2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	c1, c2 := &capture{}, &capture{}
	op.ProcessBatch(4, 0, engine.Batch{}, c1)
	op.OnBatchEnd(4, c1)
	op2.ProcessBatch(4, 0, engine.Batch{}, c2)
	op2.OnBatchEnd(4, c2)
	k1, k2 := c1.keys(), c2.keys()
	if len(k1) != len(k2) {
		t.Fatalf("restored op emits %d keys, original %d", len(k2), len(k1))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Errorf("emission %d differs: %q vs %q", i, k1[i], k2[i])
		}
	}
	if err := op2.Restore(nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinOpSnapshotRoundTrip(t *testing.T) {
	op := &joinOp{window: 5, threshold: 30}
	c := &capture{}
	op.ProcessBatch(0, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{
		{Key: "seg-1", Value: "inc-1"}}}, c)
	op.OnBatchEnd(0, c)
	snap := op.Snapshot()
	op2 := &joinOp{window: 5, threshold: 30}
	if err := op2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Now a slow speed arrives: both must emit the jam.
	c1, c2 := &capture{}, &capture{}
	op.ProcessBatch(1, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{
		{Key: "seg-1", Value: speedObs{Speed: 5}}}}, c1)
	op.OnBatchEnd(1, c1)
	op2.ProcessBatch(1, 0, engine.Batch{Count: 1, Tuples: []engine.Tuple{
		{Key: "seg-1", Value: speedObs{Speed: 5}}}}, c2)
	op2.OnBatchEnd(1, c2)
	if len(c1.tuples) != 1 || len(c2.tuples) != 1 {
		t.Fatalf("jam emissions: original %d, restored %d, want 1 and 1", len(c1.tuples), len(c2.tuples))
	}
	if c1.tuples[0].Key != "inc-1" || c2.tuples[0].Key != "inc-1" {
		t.Error("wrong jam id emitted")
	}
}

type capture struct {
	tuples []engine.Tuple
	count  int
}

func (c *capture) Emit(t engine.Tuple) { c.tuples = append(c.tuples, t) }
func (c *capture) EmitCount(n int)     { c.count += n }
func (c *capture) keys() []string {
	var out []string
	for _, t := range c.tuples {
		out = append(out, t.Key)
	}
	return out
}
func (c *capture) reset() { c.tuples = nil; c.count = 0 }
