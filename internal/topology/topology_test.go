package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// diamond builds the Fig. 2 style topology: two source operators feeding
// a single downstream operator.
func diamond(kind InputKind) (*Topology, error) {
	b := NewBuilder()
	o1 := b.AddSource("O1", 2, 100)
	o2 := b.AddSource("O2", 2, 100)
	o3 := b.AddOperator("O3", 1, kind, 1)
	b.Connect(o1, o3, Full)
	b.Connect(o2, o3, Full)
	return b.Build()
}

func TestBuildDiamond(t *testing.T) {
	topo, err := diamond(Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.NumTasks(); got != 5 {
		t.Fatalf("NumTasks = %d, want 5", got)
	}
	if got := len(topo.SourceOps()); got != 2 {
		t.Fatalf("len(SourceOps) = %d, want 2", got)
	}
	if got := len(topo.SinkOps()); got != 1 {
		t.Fatalf("len(SinkOps) = %d, want 1", got)
	}
	sink := topo.TasksOf(2)[0]
	ins := topo.InputsOf(sink)
	if len(ins) != 2 {
		t.Fatalf("sink has %d input streams, want 2", len(ins))
	}
	for _, in := range ins {
		if !almostEqual(in.Rate(), 200) {
			t.Errorf("input stream from op %d rate = %v, want 200", in.FromOp, in.Rate())
		}
		if len(in.Subs) != 2 {
			t.Errorf("input stream from op %d has %d substreams, want 2", in.FromOp, len(in.Subs))
		}
	}
	if !almostEqual(topo.OutRate(sink), 400) {
		t.Errorf("sink out rate = %v, want 400", topo.OutRate(sink))
	}
}

func TestSelectivityPropagation(t *testing.T) {
	b := NewBuilder()
	src := b.AddSource("src", 4, 1000)
	o1 := b.AddOperator("O1", 2, Independent, 0.5)
	o2 := b.AddOperator("O2", 1, Independent, 0.5)
	b.Connect(src, o1, Merge)
	b.Connect(o1, o2, Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 4*1000 input -> O1 outputs 2000 total -> O2 outputs 1000.
	sink := topo.TasksOf(2)[0]
	if !almostEqual(topo.OutRate(sink), 1000) {
		t.Errorf("sink rate = %v, want 1000", topo.OutRate(sink))
	}
}

func TestPartitioningShapes(t *testing.T) {
	cases := []struct {
		name       string
		part       Partitioning
		n1, n2     int
		wantUpOut  int // substreams per upstream task
		wantDownIn int // substreams per downstream task
	}{
		{"one-to-one", OneToOne, 4, 4, 1, 1},
		{"split", Split, 2, 8, 4, 1},
		{"merge", Merge, 8, 2, 1, 4},
		{"full", Full, 3, 5, 5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			up := b.AddSource("up", tc.n1, 100)
			down := b.AddOperator("down", tc.n2, Independent, 1)
			b.Connect(up, down, tc.part)
			topo, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range topo.TasksOf(0) {
				if got := len(topo.OutputsOf(id)); got != tc.wantUpOut {
					t.Errorf("upstream task %d has %d outputs, want %d", id, got, tc.wantUpOut)
				}
			}
			for _, id := range topo.TasksOf(1) {
				ins := topo.InputsOf(id)
				if len(ins) != 1 {
					t.Fatalf("downstream task %d has %d input streams, want 1", id, len(ins))
				}
				if got := len(ins[0].Subs); got != tc.wantDownIn {
					t.Errorf("downstream task %d has %d substreams, want %d", id, got, tc.wantDownIn)
				}
			}
		})
	}
}

func TestPartitioningArityErrors(t *testing.T) {
	cases := []struct {
		name   string
		part   Partitioning
		n1, n2 int
	}{
		{"one-to-one unequal", OneToOne, 2, 3},
		{"split shrinking", Split, 4, 2},
		{"merge growing", Merge, 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			up := b.AddSource("up", tc.n1, 100)
			down := b.AddOperator("down", tc.n2, Independent, 1)
			b.Connect(up, down, tc.part)
			if _, err := b.Build(); err == nil {
				t.Fatal("Build succeeded, want arity error")
			}
		})
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder()
	a := b.AddSource("src", 1, 10)
	x := b.AddOperator("X", 1, Independent, 1)
	y := b.AddOperator("Y", 1, Independent, 1)
	b.Connect(a, x, OneToOne)
	b.Connect(x, y, OneToOne)
	b.Connect(y, x, OneToOne)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Build err = %v, want cycle error", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder()
	x := b.AddSource("X", 1, 10)
	b.Connect(x, x, Full)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded, want self-subscription error")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder()
	s := b.AddSource("s", 1, 10)
	x := b.AddOperator("X", 1, Independent, 1)
	b.Connect(s, x, Full)
	b.Connect(s, x, Full)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded, want duplicate edge error")
	}
}

func TestNoSourceRejected(t *testing.T) {
	b := NewBuilder()
	b.AddOperator("X", 1, Independent, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded, want no-source error")
	}
}

func TestWeightsSkewSubstreamRates(t *testing.T) {
	b := NewBuilder()
	src := b.AddSource("src", 1, 100)
	down := b.AddOperator("down", 2, Independent, 1)
	b.SetWeights(down, []float64{3, 1})
	b.Connect(src, down, Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := topo.TasksOf(1)
	if r := topo.InputsOf(d[0])[0].Rate(); !almostEqual(r, 75) {
		t.Errorf("heavy task input rate = %v, want 75", r)
	}
	if r := topo.InputsOf(d[1])[0].Rate(); !almostEqual(r, 25) {
		t.Errorf("light task input rate = %v, want 25", r)
	}
}

func TestWeightValidation(t *testing.T) {
	b := NewBuilder()
	src := b.AddSource("src", 2, 100)
	b.SetWeights(src, []float64{1}) // wrong length
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded, want weight-length error")
	}
	b2 := NewBuilder()
	src2 := b2.AddSource("src", 2, 100)
	b2.SetWeights(src2, []float64{1, -1})
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build succeeded, want negative-weight error")
	}
}

// Flow conservation: for every non-source task, the sum of substream
// rates out of the task equals its output rate; for every edge, total
// upstream output rate equals total downstream input rate.
func TestFlowConservation(t *testing.T) {
	b := NewBuilder()
	src := b.AddSource("src", 16, 1000)
	o1 := b.AddOperator("O1", 8, Independent, 0.5)
	o2 := b.AddOperator("O2", 4, Independent, 0.5)
	o3 := b.AddOperator("O3", 2, Independent, 0.5)
	o4 := b.AddOperator("O4", 1, Independent, 0.5)
	b.Connect(src, o1, Merge)
	b.Connect(o1, o2, Merge)
	b.Connect(o2, o3, Merge)
	b.Connect(o3, o4, Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range topo.Tasks {
		outs := topo.OutputsOf(task.ID)
		if len(outs) == 0 {
			continue
		}
		var sum float64
		for _, s := range outs {
			sum += s.Rate
		}
		if !almostEqual(sum, topo.OutRate(task.ID)) {
			t.Errorf("task %d: outgoing substream sum %v != out rate %v", task.ID, sum, topo.OutRate(task.ID))
		}
	}
	// end-to-end: 16*1000 * 0.5^4 = 1000 at the sink
	sink := topo.SinkTasks()[0]
	if !almostEqual(topo.OutRate(sink), 1000) {
		t.Errorf("sink rate = %v, want 1000", topo.OutRate(sink))
	}
}

func TestBalancedGroups(t *testing.T) {
	check := func(n, k uint8) bool {
		nn, kk := int(n%32)+1, int(k%8)+1
		if kk > nn {
			nn, kk = kk, nn
		}
		groups := balancedGroups(nn, kk)
		if len(groups) != kk {
			return false
		}
		seen := make(map[int]bool)
		minSize, maxSize := nn, 0
		for _, g := range groups {
			if len(g) < minSize {
				minSize = len(g)
			}
			if len(g) > maxSize {
				maxSize = len(g)
			}
			for _, x := range g {
				if seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		return len(seen) == nn && maxSize-minSize <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	b := NewBuilder()
	src := b.AddSource("src", 4, 500)
	join := b.AddOperator("join", 2, Correlated, 0.25)
	agg := b.AddOperator("agg", 1, Independent, 1)
	b.SetWeights(join, []float64{2, 1})
	b.Connect(src, join, Merge)
	b.Connect(join, agg, Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, topo); err != nil {
		t.Fatal(err)
	}
	topo2, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if topo2.NumTasks() != topo.NumTasks() {
		t.Fatalf("round-trip tasks = %d, want %d", topo2.NumTasks(), topo.NumTasks())
	}
	for _, task := range topo.Tasks {
		if !almostEqual(topo.OutRate(task.ID), topo2.OutRate(task.ID)) {
			t.Errorf("task %d rate %v != %v after round trip", task.ID, topo.OutRate(task.ID), topo2.OutRate(task.ID))
		}
	}
	if topo2.Ops[1].Kind != Correlated {
		t.Error("join operator kind lost in round trip")
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []string{
		`{"operators":[{"name":"a","parallelism":1,"sourceRate":1},{"name":"a","parallelism":1}],"edges":[]}`,
		`{"operators":[{"name":"a","parallelism":1,"sourceRate":1}],"edges":[{"from":"a","to":"zzz","partitioning":"full"}]}`,
		`{"operators":[{"name":"a","parallelism":1,"sourceRate":1},{"name":"b","parallelism":1}],"edges":[{"from":"a","to":"b","partitioning":"bogus"}]}`,
		`{"operators":[{"name":"a","parallelism":1,"sourceRate":1},{"name":"b","parallelism":1,"kind":"bogus"}],"edges":[{"from":"a","to":"b","partitioning":"full"}]}`,
	}
	for i, src := range cases {
		if _, err := ReadSpec(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: ReadSpec succeeded, want error", i)
		}
	}
}

func TestUpDownstreamQueries(t *testing.T) {
	topo, err := diamond(Independent)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.UpstreamOps(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("UpstreamOps(2) = %v, want [0 1]", got)
	}
	if got := topo.DownstreamOps(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("DownstreamOps(0) = %v, want [2]", got)
	}
	if _, ok := topo.EdgeBetween(0, 2); !ok {
		t.Error("EdgeBetween(0,2) not found")
	}
	if _, ok := topo.EdgeBetween(2, 0); ok {
		t.Error("EdgeBetween(2,0) unexpectedly found")
	}
	sink := topo.TasksOf(2)[0]
	if got := topo.UpstreamTasks(sink); len(got) != 4 {
		t.Errorf("UpstreamTasks(sink) = %v, want 4 tasks", got)
	}
	src := topo.TasksOf(0)[0]
	if got := topo.DownstreamTasks(src); len(got) != 1 || got[0] != sink {
		t.Errorf("DownstreamTasks(src) = %v, want [%d]", got, sink)
	}
}

func TestPartitioningString(t *testing.T) {
	for p, want := range map[Partitioning]string{OneToOne: "one-to-one", Split: "split", Merge: "merge", Full: "full"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if got := InputKind(Correlated).String(); got != "correlated" {
		t.Errorf("Correlated.String() = %q", got)
	}
	if got := InputKind(Independent).String(); got != "independent" {
		t.Errorf("Independent.String() = %q", got)
	}
}
