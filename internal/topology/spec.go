package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is a serialisable description of a topology, used by the command
// line tools to exchange topologies as JSON.
type Spec struct {
	Operators []OpSpec   `json:"operators"`
	Edges     []EdgeSpec `json:"edges"`
}

// OpSpec describes one operator in a Spec.
type OpSpec struct {
	Name        string    `json:"name"`
	Parallelism int       `json:"parallelism"`
	Kind        string    `json:"kind,omitempty"`        // "independent" (default) or "correlated"
	Selectivity float64   `json:"selectivity,omitempty"` // default 1
	SourceRate  float64   `json:"sourceRate,omitempty"`  // >0 marks a source
	Weights     []float64 `json:"weights,omitempty"`
}

// EdgeSpec describes one operator-level edge in a Spec.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	Part string `json:"partitioning"` // "one-to-one", "split", "merge", "full"
}

// ParsePartitioning converts the textual partitioning name used in specs.
func ParsePartitioning(s string) (Partitioning, error) {
	switch s {
	case "one-to-one", "onetoone", "1:1":
		return OneToOne, nil
	case "split":
		return Split, nil
	case "merge":
		return Merge, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("topology: unknown partitioning %q", s)
}

// ParseKind converts the textual input-kind name used in specs.
func ParseKind(s string) (InputKind, error) {
	switch s {
	case "", "independent":
		return Independent, nil
	case "correlated", "join":
		return Correlated, nil
	}
	return 0, fmt.Errorf("topology: unknown input kind %q", s)
}

// FromSpec builds a validated Topology from a Spec.
func FromSpec(spec Spec) (*Topology, error) {
	b := NewBuilder()
	refs := make(map[string]OpRef, len(spec.Operators))
	for _, os := range spec.Operators {
		if _, dup := refs[os.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate operator name %q", os.Name)
		}
		sel := os.Selectivity
		if sel == 0 {
			sel = 1
		}
		var ref OpRef
		if os.SourceRate > 0 {
			ref = b.AddSource(os.Name, os.Parallelism, os.SourceRate)
		} else {
			kind, err := ParseKind(os.Kind)
			if err != nil {
				return nil, err
			}
			ref = b.AddOperator(os.Name, os.Parallelism, kind, sel)
		}
		if os.Weights != nil {
			b.SetWeights(ref, os.Weights)
		}
		refs[os.Name] = ref
	}
	for _, es := range spec.Edges {
		from, ok := refs[es.From]
		if !ok {
			return nil, fmt.Errorf("topology: edge references unknown operator %q", es.From)
		}
		to, ok := refs[es.To]
		if !ok {
			return nil, fmt.Errorf("topology: edge references unknown operator %q", es.To)
		}
		part, err := ParsePartitioning(es.Part)
		if err != nil {
			return nil, err
		}
		b.Connect(from, to, part)
	}
	return b.Build()
}

// ToSpec converts a Topology back into its serialisable Spec form.
func ToSpec(t *Topology) Spec {
	var spec Spec
	for i, op := range t.Ops {
		os := OpSpec{
			Name:        op.Name,
			Parallelism: op.Parallelism,
			Selectivity: op.Selectivity,
			Weights:     op.Weights,
		}
		if op.Kind == Correlated {
			os.Kind = "correlated"
		}
		if t.IsSource(i) {
			os.SourceRate = op.SourceRate
		}
		spec.Operators = append(spec.Operators, os)
	}
	for _, e := range t.Edges {
		spec.Edges = append(spec.Edges, EdgeSpec{
			From: t.Ops[e.From].Name,
			To:   t.Ops[e.To].Name,
			Part: e.Part.String(),
		})
	}
	return spec
}

// ReadSpec decodes a JSON topology spec and builds the topology.
func ReadSpec(r io.Reader) (*Topology, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("topology: decoding spec: %w", err)
	}
	return FromSpec(spec)
}

// WriteSpec encodes the topology's spec as indented JSON.
func WriteSpec(w io.Writer, t *Topology) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToSpec(t))
}
