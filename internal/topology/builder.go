package topology

import (
	"errors"
	"fmt"
)

// OpRef refers to an operator added to a Builder.
type OpRef struct{ idx int }

// Builder assembles and validates a Topology. The zero value is not
// usable; call NewBuilder.
type Builder struct {
	ops   []*Operator
	edges []Edge
	err   error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder { return &Builder{} }

// AddSource adds a source operator with the given per-task output rate.
func (b *Builder) AddSource(name string, parallelism int, ratePerTask float64) OpRef {
	return b.add(&Operator{
		Name:        name,
		Kind:        Independent,
		Parallelism: parallelism,
		SourceRate:  ratePerTask,
		Selectivity: 1,
	})
}

// AddOperator adds a non-source operator.
func (b *Builder) AddOperator(name string, parallelism int, kind InputKind, selectivity float64) OpRef {
	return b.add(&Operator{
		Name:        name,
		Kind:        kind,
		Parallelism: parallelism,
		Selectivity: selectivity,
	})
}

// SetWeights skews the workload distribution of the tasks of op. weights
// must have one entry per task; they are normalised internally, only
// ratios matter.
func (b *Builder) SetWeights(op OpRef, weights []float64) {
	if b.err != nil {
		return
	}
	o := b.ops[op.idx]
	if len(weights) != o.Parallelism {
		b.err = fmt.Errorf("topology: operator %s has %d tasks but %d weights given", o.Name, o.Parallelism, len(weights))
		return
	}
	for _, w := range weights {
		if w <= 0 {
			b.err = fmt.Errorf("topology: operator %s: weights must be positive, got %v", o.Name, w)
			return
		}
	}
	o.Weights = append([]float64(nil), weights...)
}

func (b *Builder) add(op *Operator) OpRef {
	if b.err == nil {
		if op.Parallelism <= 0 {
			b.err = fmt.Errorf("topology: operator %s: parallelism must be positive, got %d", op.Name, op.Parallelism)
		} else if op.Selectivity < 0 {
			b.err = fmt.Errorf("topology: operator %s: selectivity must be non-negative, got %v", op.Name, op.Selectivity)
		}
	}
	b.ops = append(b.ops, op)
	return OpRef{idx: len(b.ops) - 1}
}

// Connect adds a stream from operator `from` to operator `to` with the
// given partitioning. An operator cannot subscribe to itself (§II-A).
func (b *Builder) Connect(from, to OpRef, part Partitioning) {
	if b.err != nil {
		return
	}
	if from.idx == to.idx {
		b.err = fmt.Errorf("topology: operator %s cannot subscribe to itself", b.ops[from.idx].Name)
		return
	}
	for _, e := range b.edges {
		if e.From == from.idx && e.To == to.idx {
			b.err = fmt.Errorf("topology: duplicate edge %s -> %s", b.ops[from.idx].Name, b.ops[to.idx].Name)
			return
		}
	}
	b.edges = append(b.edges, Edge{From: from.idx, To: to.idx, Part: part})
}

// Build validates the topology, derives the task-level graph and the
// failure-free stream rates, and returns the immutable result.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.ops) == 0 {
		return nil, errors.New("topology: no operators")
	}
	t := &Topology{Ops: b.ops, Edges: b.edges}
	if err := t.derive(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) derive() error {
	n := len(t.Ops)
	t.inEdges = make([][]int, n)
	t.outEdges = make([][]int, n)
	for i, e := range t.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("topology: edge %d references unknown operator", i)
		}
		t.outEdges[e.From] = append(t.outEdges[e.From], i)
		t.inEdges[e.To] = append(t.inEdges[e.To], i)
	}

	order, err := t.topoSort()
	if err != nil {
		return err
	}
	t.opOrder = order

	for i := range t.Ops {
		if t.IsSource(i) {
			if t.Ops[i].SourceRate <= 0 {
				return fmt.Errorf("topology: source operator %s needs a positive source rate", t.Ops[i].Name)
			}
			t.sourceOps = append(t.sourceOps, i)
		}
		if t.IsSink(i) {
			t.sinkOps = append(t.sinkOps, i)
		}
	}
	if len(t.sourceOps) == 0 {
		return errors.New("topology: no source operator")
	}

	// Validate partitioning arities.
	for _, e := range t.Edges {
		n1 := t.Ops[e.From].Parallelism
		n2 := t.Ops[e.To].Parallelism
		switch e.Part {
		case OneToOne:
			if n1 != n2 {
				return fmt.Errorf("topology: one-to-one edge %s -> %s requires equal parallelism (%d vs %d)",
					t.Ops[e.From].Name, t.Ops[e.To].Name, n1, n2)
			}
		case Split:
			if n2 < n1 {
				return fmt.Errorf("topology: split edge %s -> %s requires downstream parallelism >= upstream (%d vs %d)",
					t.Ops[e.From].Name, t.Ops[e.To].Name, n1, n2)
			}
		case Merge:
			if n1 < n2 {
				return fmt.Errorf("topology: merge edge %s -> %s requires upstream parallelism >= downstream (%d vs %d)",
					t.Ops[e.From].Name, t.Ops[e.To].Name, n1, n2)
			}
		case Full:
			// always valid
		default:
			return fmt.Errorf("topology: unknown partitioning %d", e.Part)
		}
	}

	// Assign task IDs, operator by operator.
	for opIdx, op := range t.Ops {
		ids := make([]TaskID, op.Parallelism)
		for j := 0; j < op.Parallelism; j++ {
			id := TaskID(len(t.Tasks))
			w := 1.0
			if op.Weights != nil {
				w = op.Weights[j]
			}
			t.Tasks = append(t.Tasks, Task{ID: id, Op: opIdx, Index: j, Weight: w})
			ids[j] = id
		}
		t.opTasks = append(t.opTasks, ids)
	}

	t.inputs = make([][]InputStream, len(t.Tasks))
	t.outputs = make([][]Substream, len(t.Tasks))
	t.outRate = make([]float64, len(t.Tasks))

	// Walk operators in topological order, computing output rates and
	// task-level substreams.
	for _, opIdx := range t.opOrder {
		op := t.Ops[opIdx]
		for _, id := range t.opTasks[opIdx] {
			if t.IsSource(opIdx) {
				t.outRate[id] = op.SourceRate * t.Tasks[id].Weight / t.avgWeight(opIdx)
				continue
			}
			var in float64
			for _, is := range t.inputs[id] {
				in += is.Rate()
			}
			t.outRate[id] = in * op.Selectivity
		}
		// Fan out along each outgoing operator edge.
		for _, ei := range t.outEdges[opIdx] {
			e := t.Edges[ei]
			if err := t.wire(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// avgWeight returns the mean task weight of an operator, used to keep the
// operator-level total source rate equal to parallelism*SourceRate
// regardless of skew.
func (t *Topology) avgWeight(op int) float64 {
	var sum float64
	ids := t.opTasks[op]
	for _, id := range ids {
		sum += t.Tasks[id].Weight
	}
	return sum / float64(len(ids))
}

// wire materialises the task-level substreams of one operator edge and
// appends the downstream input stream entries.
func (t *Topology) wire(e Edge) error {
	ups := t.opTasks[e.From]
	downs := t.opTasks[e.To]
	// recipients[i] lists the downstream tasks the i-th upstream task
	// sends to.
	recipients := make([][]TaskID, len(ups))
	switch e.Part {
	case OneToOne:
		for i := range ups {
			recipients[i] = []TaskID{downs[i]}
		}
	case Split:
		// Contiguous balanced ranges: downstream tasks are divided into
		// len(ups) groups; group i receives from upstream task i only.
		groups := balancedGroups(len(downs), len(ups))
		for i := range ups {
			for _, j := range groups[i] {
				recipients[i] = append(recipients[i], downs[j])
			}
		}
	case Merge:
		// Upstream tasks are divided into len(downs) groups; all members
		// of group j send to downstream task j only.
		groups := balancedGroups(len(ups), len(downs))
		for j := range downs {
			for _, i := range groups[j] {
				recipients[i] = append(recipients[i], downs[j])
			}
		}
	case Full:
		for i := range ups {
			recipients[i] = append([]TaskID(nil), downs...)
		}
	}

	// Substream rates: each upstream task's output is key-partitioned
	// among its recipients proportionally to the recipients' workload
	// weights.
	inSubs := make(map[TaskID][]Substream)
	for i, up := range ups {
		recs := recipients[i]
		if len(recs) == 0 {
			return fmt.Errorf("topology: task %d of %s has no recipients on edge to %s",
				i, t.Ops[e.From].Name, t.Ops[e.To].Name)
		}
		var wsum float64
		for _, r := range recs {
			wsum += t.Tasks[r].Weight
		}
		for _, r := range recs {
			rate := t.outRate[up] * t.Tasks[r].Weight / wsum
			inSubs[r] = append(inSubs[r], Substream{From: up, To: r, Rate: rate})
			t.outputs[up] = append(t.outputs[up], Substream{From: up, To: r, Rate: rate})
		}
	}
	for _, d := range downs {
		subs := inSubs[d]
		if len(subs) == 0 {
			return fmt.Errorf("topology: task %d of %s receives nothing on edge from %s",
				t.Tasks[d].Index, t.Ops[e.To].Name, t.Ops[e.From].Name)
		}
		t.inputs[d] = append(t.inputs[d], InputStream{FromOp: e.From, Subs: subs})
	}
	return nil
}

// balancedGroups partitions the integers [0,n) into k contiguous groups
// whose sizes differ by at most one.
func balancedGroups(n, k int) [][]int {
	groups := make([][]int, k)
	base := n / k
	rem := n % k
	idx := 0
	for g := 0; g < k; g++ {
		size := base
		if g < rem {
			size++
		}
		for s := 0; s < size; s++ {
			groups[g] = append(groups[g], idx)
			idx++
		}
	}
	return groups
}

func (t *Topology) topoSort() ([]int, error) {
	n := len(t.Ops)
	indeg := make([]int, n)
	for _, e := range t.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		op := queue[0]
		queue = queue[1:]
		order = append(order, op)
		for _, ei := range t.outEdges[op] {
			to := t.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("topology: cycle detected; query topologies must be DAGs")
	}
	return order, nil
}
