// Package topology models the query topologies of a massively parallel
// stream processing engine (MPSPE) as described in Su & Zhou, "Tolerating
// Correlated Failures in Massively Parallel Stream Processing Engines"
// (ICDE 2016), §II.
//
// A query plan consists of operators, each parallelised into a number of
// tasks. Data flows between the tasks of neighbouring operators along
// key-partitioned substreams. The task-level graph is a DAG. Four
// partitioning situations between neighbouring operators are modelled:
// one-to-one, split, merge and full.
package topology

import (
	"fmt"
	"sort"
)

// Partitioning describes how the output stream of an upstream operator is
// partitioned among the tasks of a downstream operator (§II-A).
type Partitioning int

const (
	// OneToOne: each upstream task sends to exactly one downstream task
	// and each downstream task receives from exactly one upstream task.
	// Requires equal parallelism.
	OneToOne Partitioning = iota
	// Split: each upstream task sends to several downstream tasks, each
	// downstream task receives from a single upstream task. Requires the
	// downstream parallelism to be >= the upstream parallelism.
	Split
	// Merge: each upstream task sends to a single downstream task, each
	// downstream task receives from several upstream tasks. Requires the
	// upstream parallelism to be >= the downstream parallelism.
	Merge
	// Full: each upstream task sends to all downstream tasks.
	Full
)

// String returns the paper's name for the partitioning kind.
func (p Partitioning) String() string {
	switch p {
	case OneToOne:
		return "one-to-one"
	case Split:
		return "split"
	case Merge:
		return "merge"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Partitioning(%d)", int(p))
	}
}

// InputKind classifies an operator by the correlation of its input
// streams (§III-A1). The distinction drives the information-loss model:
// a correlated-input operator (e.g. a join) computes over the effective
// Cartesian product of its input streams, an independent-input operator
// over their union.
type InputKind int

const (
	// Independent input: the operator treats its input streams as a
	// union; losing part of one input stream does not invalidate tuples
	// of the others.
	Independent InputKind = iota
	// Correlated input: the operator joins its input streams; losing
	// part of one input stream makes the matching parts of the other
	// streams useless.
	Correlated
)

// String returns a short name for the input kind.
func (k InputKind) String() string {
	if k == Correlated {
		return "correlated"
	}
	return "independent"
}

// TaskID identifies a task globally within a topology. IDs are dense,
// starting at 0, assigned operator by operator in insertion order.
type TaskID int

// Task is a single parallel instance of an operator assigned to one
// processing node.
type Task struct {
	ID     TaskID
	Op     int     // index of the owning operator in Topology.Ops
	Index  int     // index of this task within its operator
	Weight float64 // relative share of the operator's workload routed to this task
}

// Operator is one logical query operator, parallelised into Parallelism
// tasks that all conduct the same computation.
type Operator struct {
	Name        string
	Kind        InputKind
	Parallelism int
	// Selectivity is the ratio of output rate to total input rate of a
	// task of this operator. Sources ignore it.
	Selectivity float64
	// SourceRate is the per-task output rate in tuples per second; only
	// meaningful for source operators (operators with no inputs).
	SourceRate float64
	// Weights optionally skews the share of upstream output routed to
	// each task of this operator. len(Weights) must equal Parallelism
	// when non-nil; nil means uniform.
	Weights []float64
}

// Edge connects two operators at the operator level.
type Edge struct {
	From, To int // operator indices
	Part     Partitioning
}

// Substream is the flow from one task to one downstream task, carrying
// Rate tuples per second under failure-free operation.
type Substream struct {
	From, To TaskID
	Rate     float64
}

// InputStream groups the substreams a task receives from the tasks of a
// single upstream neighbouring operator (§II-A: "the input substreams
// received from the tasks belonging to the same upstream neighbouring
// operator constitute an input stream").
type InputStream struct {
	FromOp int
	Subs   []Substream
}

// Rate returns the total rate of the input stream, i.e. the sum of its
// substream rates.
func (s InputStream) Rate() float64 {
	var r float64
	for _, sub := range s.Subs {
		r += sub.Rate
	}
	return r
}

// Topology is an immutable, validated task-level DAG together with the
// failure-free stream rates, produced by a Builder.
type Topology struct {
	Ops   []*Operator
	Edges []Edge
	Tasks []Task

	// derived structures, computed by Build
	opTasks   [][]TaskID      // operator index -> its task IDs
	inEdges   [][]int         // operator index -> incoming Edge indices
	outEdges  [][]int         // operator index -> outgoing Edge indices
	inputs    [][]InputStream // task -> input streams (one per upstream op)
	outputs   [][]Substream   // task -> outgoing substreams
	outRate   []float64       // task -> failure-free output rate
	opOrder   []int           // operator indices in topological order
	sourceOps []int
	sinkOps   []int
}

// NumTasks returns the total number of tasks in the topology (|M|).
func (t *Topology) NumTasks() int { return len(t.Tasks) }

// NumOps returns the number of operators.
func (t *Topology) NumOps() int { return len(t.Ops) }

// TasksOf returns the task IDs of operator op in task-index order. The
// returned slice must not be modified.
func (t *Topology) TasksOf(op int) []TaskID { return t.opTasks[op] }

// InputsOf returns the input streams of the given task, one per upstream
// neighbouring operator, ordered by upstream operator index. The returned
// slice must not be modified.
func (t *Topology) InputsOf(id TaskID) []InputStream { return t.inputs[id] }

// OutputsOf returns the outgoing substreams of the given task. The
// returned slice must not be modified.
func (t *Topology) OutputsOf(id TaskID) []Substream { return t.outputs[id] }

// OutRate returns the failure-free output rate of the given task.
func (t *Topology) OutRate(id TaskID) float64 { return t.outRate[id] }

// SourceOps returns the indices of the source operators (no inputs).
func (t *Topology) SourceOps() []int { return t.sourceOps }

// SinkOps returns the indices of the sink operators (no outputs). These
// produce the final outputs of the topology (§III-A2).
func (t *Topology) SinkOps() []int { return t.sinkOps }

// SinkTasks returns the IDs of all tasks belonging to sink operators.
func (t *Topology) SinkTasks() []TaskID {
	var out []TaskID
	for _, op := range t.sinkOps {
		out = append(out, t.opTasks[op]...)
	}
	return out
}

// OpOrder returns the operator indices in a topological order (sources
// first). The returned slice must not be modified.
func (t *Topology) OpOrder() []int { return t.opOrder }

// UpstreamOps returns the indices of the operators feeding op, ordered by
// operator index.
func (t *Topology) UpstreamOps(op int) []int {
	var ups []int
	for _, ei := range t.inEdges[op] {
		ups = append(ups, t.Edges[ei].From)
	}
	sort.Ints(ups)
	return ups
}

// DownstreamOps returns the indices of the operators fed by op, ordered
// by operator index.
func (t *Topology) DownstreamOps(op int) []int {
	var downs []int
	for _, ei := range t.outEdges[op] {
		downs = append(downs, t.Edges[ei].To)
	}
	sort.Ints(downs)
	return downs
}

// EdgeBetween returns the operator-level edge from -> to, if any.
func (t *Topology) EdgeBetween(from, to int) (Edge, bool) {
	for _, ei := range t.outEdges[from] {
		if t.Edges[ei].To == to {
			return t.Edges[ei], true
		}
	}
	return Edge{}, false
}

// IsSource reports whether op is a source operator.
func (t *Topology) IsSource(op int) bool {
	return len(t.inEdges[op]) == 0
}

// IsSink reports whether op is a sink operator.
func (t *Topology) IsSink(op int) bool {
	return len(t.outEdges[op]) == 0
}

// UpstreamTasks returns the IDs of all tasks with a substream into id.
func (t *Topology) UpstreamTasks(id TaskID) []TaskID {
	var ups []TaskID
	for _, in := range t.inputs[id] {
		for _, sub := range in.Subs {
			ups = append(ups, sub.From)
		}
	}
	return ups
}

// DownstreamTasks returns the IDs of all tasks id has a substream to.
func (t *Topology) DownstreamTasks(id TaskID) []TaskID {
	var downs []TaskID
	for _, sub := range t.outputs[id] {
		downs = append(downs, sub.To)
	}
	return downs
}

// Weight returns the workload weight of task id (1 when the operator has
// uniform weights).
func (t *Topology) Weight(id TaskID) float64 {
	return t.Tasks[id].Weight
}
