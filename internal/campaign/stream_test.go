package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/sim"
)

// exactSummarise is the pre-sketch exact reference reduction (the old
// summarise): full sample arrays through NewDist. Kept in tests as the
// ground truth the sketch path is cross-checked against.
func exactSummarise(results []ScenarioResult) Summary {
	sum := Summary{Scenarios: len(results)}
	var lats, losses, blast, tent, corr, t2c []float64
	for _, r := range results {
		losses = append(losses, r.OutputLoss)
		blast = append(blast, float64(r.FailedTasks))
		tent = append(tent, r.TentativeFrac)
		if r.TentativeFrac > 0 {
			corr = append(corr, r.CorrectedFrac)
		}
		t2c = append(t2c, r.CorrectionDelays...)
		if !r.Recovered {
			sum.Unrecovered++
			continue
		}
		if r.FailedTasks > 0 {
			lats = append(lats, float64(r.WorstLatency))
		}
	}
	sum.Latency = NewDist(lats)
	sum.Loss = NewDist(losses)
	sum.FailedTasks = NewDist(blast)
	sum.TentativeFrac = NewDist(tent)
	sum.CorrectedFrac = NewDist(corr)
	sum.TimeToCorrection = NewDist(t2c)
	return sum
}

// checkDistWithinBound asserts the sketch-path distribution matches
// the exact reference within the documented rank-error bound eps: Max
// bit-identical, Mean within float-reassociation noise, and every
// quantile an actual sample whose rank is within eps*n of the target.
func checkDistWithinBound(t *testing.T, metric string, got, exact Dist, sample []float64, eps float64) {
	t.Helper()
	if len(sample) == 0 {
		if got != (Dist{}) {
			t.Errorf("%s: empty sample but dist %+v", metric, got)
		}
		return
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	if got.Max != exact.Max {
		t.Errorf("%s: max %v, want exact %v", metric, got.Max, exact.Max)
	}
	if d := math.Abs(got.Mean - exact.Mean); d > 1e-9*(math.Abs(exact.Mean)+1) {
		t.Errorf("%s: mean %v, want %v", metric, got.Mean, exact.Mean)
	}
	n := len(sorted)
	slack := int(math.Ceil(eps * float64(n)))
	for _, qv := range []struct {
		q   float64
		got float64
	}{{0.50, got.P50}, {0.95, got.P95}, {0.99, got.P99}} {
		target := int(math.Ceil(qv.q * float64(n)))
		if target < 1 {
			target = 1
		}
		lo := sort.SearchFloat64s(sorted, qv.got)
		hi := sort.Search(n, func(i int) bool { return sorted[i] > qv.got })
		if lo >= hi {
			t.Errorf("%s: q=%v answer %v not in sample", metric, qv.q, qv.got)
			continue
		}
		if lo+1-slack > target || hi+slack < target {
			t.Errorf("%s: q=%v answer %v at ranks [%d,%d], target %d, slack %d",
				metric, qv.q, qv.got, lo+1, hi, target, slack)
		}
	}
}

// syntheticResults draws n plausible scenario results.
func syntheticResults(n int, seed int64) []ScenarioResult {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ScenarioResult, n)
	for i := range out {
		r := &out[i]
		r.Scenario = Scenario{Index: i}
		r.FailedTasks = rng.Intn(20)
		r.Recovered = rng.Float64() < 0.9
		if r.Recovered && r.FailedTasks > 0 {
			r.WorstLatency = sim.Time(1 + 20*rng.Float64()*rng.Float64())
		}
		r.SinkTuples = 1000 + rng.Intn(1000)
		r.OutputLoss = rng.Float64() * rng.Float64()
		if rng.Float64() < 0.7 {
			r.TentativeFrac = rng.Float64()
			r.CorrectedFrac = rng.Float64()
			for d := rng.Intn(5); d > 0; d-- {
				r.CorrectionDelays = append(r.CorrectionDelays, 30*rng.Float64())
			}
		}
	}
	return out
}

// reduceSynthetic pushes pre-computed results through the production
// reduction machinery (streamer + sharded sketch aggregators) on a
// worker pool, exactly as Run does.
func reduceSynthetic(t *testing.T, results []ScenarioResult, workers, shards int) Summary {
	t.Helper()
	aggs := make([]*aggregator, shards)
	for s := range aggs {
		aggs[s] = newAggregator(false)
	}
	block := blockSize(len(results), shards)
	st := newStreamer(64, func(i int, e *entry) { aggs[i/block].add(&e.res) })
	par.Each(len(results), workers, func(i int) {
		st.deliver(i, entry{res: results[i]})
	})
	agg := aggs[0]
	for s := 1; s < shards; s++ {
		agg.merge(aggs[s])
	}
	return agg.summary()
}

// TestShardedReductionCrossCheck runs a 10k-result reduction through
// the sketch path and cross-checks every summary distribution against
// the exact NewDist reference within the documented rank-error bound —
// the acceptance check for sketch accuracy at campaign scale, minus
// the simulation cost.
func TestShardedReductionCrossCheck(t *testing.T) {
	results := syntheticResults(10_000, 42)
	exact := exactSummarise(results)
	sum := reduceSynthetic(t, results, 8, DefaultShards)
	if sum.Scenarios != exact.Scenarios || sum.Unrecovered != exact.Unrecovered {
		t.Fatalf("counts %d/%d, want %d/%d", sum.Scenarios, sum.Unrecovered, exact.Scenarios, exact.Unrecovered)
	}
	var lats, losses, blast, tent, corr, t2c []float64
	for _, r := range results {
		losses = append(losses, r.OutputLoss)
		blast = append(blast, float64(r.FailedTasks))
		tent = append(tent, r.TentativeFrac)
		if r.TentativeFrac > 0 {
			corr = append(corr, r.CorrectedFrac)
		}
		t2c = append(t2c, r.CorrectionDelays...)
		if r.Recovered && r.FailedTasks > 0 {
			lats = append(lats, float64(r.WorstLatency))
		}
	}
	const eps = 2.56 / SketchK // sketch.RankError for the campaign K
	checkDistWithinBound(t, "latency", sum.Latency, exact.Latency, lats, eps)
	checkDistWithinBound(t, "loss", sum.Loss, exact.Loss, losses, eps)
	checkDistWithinBound(t, "failed_tasks", sum.FailedTasks, exact.FailedTasks, blast, eps)
	checkDistWithinBound(t, "tentative", sum.TentativeFrac, exact.TentativeFrac, tent, eps)
	checkDistWithinBound(t, "corrected", sum.CorrectedFrac, exact.CorrectedFrac, corr, eps)
	checkDistWithinBound(t, "t2c", sum.TimeToCorrection, exact.TimeToCorrection, t2c, eps)
}

// TestShardedReductionDeterminism: for a fixed shard count the summary
// is bit-identical at any worker count; the exact aggregates are also
// shard-count-independent.
func TestShardedReductionDeterminism(t *testing.T) {
	results := syntheticResults(5_000, 7)
	base := reduceSynthetic(t, results, 1, 4)
	for _, workers := range []int{2, 8, 16} {
		if got := reduceSynthetic(t, results, workers, 4); got != base {
			t.Fatalf("workers=%d: summary differs from sequential:\n%+v\n%+v", workers, got, base)
		}
	}
	for _, shards := range []int{1, 2, 13} {
		got := reduceSynthetic(t, results, 8, shards)
		if got.Scenarios != base.Scenarios || got.Unrecovered != base.Unrecovered {
			t.Fatalf("shards=%d: counts changed", shards)
		}
		if got.Loss.Max != base.Loss.Max || got.Latency.Max != base.Latency.Max {
			t.Fatalf("shards=%d: exact Max changed", shards)
		}
	}
}

// TestCampaignStreamsInOrder: OnResult observes every scenario exactly
// once, in scenario-index order, while Results stays nil on the
// flat-memory path.
func TestCampaignStreamsInOrder(t *testing.T) {
	env := testEnv(t, "greedy")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 21, Scenarios: 24, Model: KOfRack, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	rep, err := Run(Config{
		Setup:     env.Setup,
		Scenarios: scenarios,
		Horizon:   90,
		OnResult:  func(r ScenarioResult) { seen = append(seen, r.Scenario.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != nil {
		t.Fatalf("streaming path retained %d results", len(rep.Results))
	}
	if len(seen) != 24 {
		t.Fatalf("OnResult saw %d of 24 scenarios", len(seen))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("OnResult order broken at position %d: scenario %d", i, idx)
		}
	}
	if rep.Summary.Scenarios != 24 {
		t.Fatalf("summary covers %d scenarios", rep.Summary.Scenarios)
	}
}

// TestCampaignFailFast: a persistently failing Setup aborts the
// campaign promptly — the runner must not drain thousands of remaining
// scenarios before reporting the error.
func TestCampaignFailFast(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 3, Scenarios: 5000, Model: SingleNode, Correlation: 0})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	setup := func() (engine.Setup, error) {
		if n := calls.Add(1); n > 3 {
			return engine.Setup{}, fmt.Errorf("injected setup failure %d", n)
		}
		return env.Setup()
	}
	_, err = Run(Config{
		Setup:        setup,
		Scenarios:    scenarios,
		Horizon:      40,
		Workers:      8,
		DisableReuse: true, // every scenario calls Setup
	})
	if err == nil {
		t.Fatal("failing campaign returned no error")
	}
	if got := calls.Load(); got > 200 {
		t.Fatalf("campaign attempted %d setups of 5000 after a persistent failure", got)
	}
}
