package campaign

import "math/bits"

// Common-random-numbers substreams. A splitStream is a counter-based
// splitmix64 generator keyed by (sweep seed, scenario index): scenario
// i's burst and jitter draws are a pure function of that pair, with no
// sequential generator state shared between scenarios. Two campaign
// cells (planner × placement) built over the same seed therefore
// replay bit-identical failure draws — the common-random-numbers
// pairing that makes head-to-head deltas low-variance — and a
// distributed range [lo, hi) needs no substream offset or skip-ahead:
// every process derives scenario i's stream from (seed, i) alone.
// The derivation mirrors internal/sketch's compaction coins: a
// golden-ratio-stepped counter finalised by mix64.
type splitStream struct {
	state uint64
}

// newSplitStream keys a stream by (seed, index). The two inputs pass
// through separate mix rounds so adjacent indices (and adjacent seeds)
// decorrelate fully before the first draw.
func newSplitStream(seed int64, index int) *splitStream {
	s := crnMix(uint64(seed))
	s = crnMix(s ^ crnMix(uint64(index)+0x9e3779b97f4a7c15))
	return &splitStream{state: s}
}

// next advances the splitmix64 counter and returns the finalised word.
func (s *splitStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return crnMix(s.state)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *splitStream) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n) via Lemire's multiply-shift
// reduction with a rejection pass, so the draw is exactly uniform.
func (s *splitStream) Intn(n int) int {
	if n <= 0 {
		panic("campaign: splitStream.Intn with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.next(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.next(), un)
		}
	}
	return int(hi)
}

// Perm returns a uniform permutation of [0, n) (Fisher-Yates).
func (s *splitStream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// crnMix is the splitmix64 finalizer (same constants as
// internal/sketch's coin mixer).
func crnMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
