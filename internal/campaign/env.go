package campaign

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/randtopo"
	"repro/internal/topology"
)

// EnvSpec describes a campaign environment: a topology executed with
// the synthetic count workload (constant-rate sources, windowed
// operators — the §VI-A methodology generalised to arbitrary DAGs),
// placed on a domain-structured cluster, protected by a PPA plan.
type EnvSpec struct {
	// Topo is the query topology (required).
	Topo *topology.Topology
	// Planner is a plan-registry name ("sa", "greedy", "dp", ...); ""
	// disables active replication (pure checkpoint recovery). The
	// *-corr variants plan against a domain-correlated failure
	// distribution sampled from this environment's own cluster layout
	// (see CorrScenarios).
	Planner string
	// Fraction is the actively replicated fraction of tasks for Planner
	// (default 0.3).
	Fraction float64
	// Placement selects how active replicas are placed on standby
	// nodes; the zero value is cluster.PlacementAntiAffinity (a replica
	// never shares its primary's rack). cluster.PlacementRoundRobin
	// reproduces the legacy domain-blind placement for comparison
	// sweeps.
	Placement cluster.PlacementPolicy
	// CorrScenarios is the number of scenarios sampled per burst model
	// for the correlation-aware planning objective (default 24; the
	// sampled sets are deduplicated, so cost grows with distinct
	// bursts, not the count). CorrSeed seeds the sampling (default 1).
	// The distribution is sampled and installed only for *-corr
	// planners (name suffix "-corr") — no other planner reads it.
	CorrScenarios int
	CorrSeed      int64
	// Tentative enables the tentative-output/correction pipeline
	// (engine.Config.TentativeOutputs): during failures the surviving
	// topology keeps producing tentative-marked results, and recovered
	// tasks emit amendment corrections. The campaign accuracy metrics
	// (tentative fraction, corrected fraction, time-to-correction) are
	// all zero without it. Failure-free runs are unaffected.
	Tentative bool
	// TasksPerNode controls cluster sizing (default 2 primary tasks per
	// processing node).
	TasksPerNode int
	// Layout is the failure-domain layout; the zero value scales
	// DefaultLayout to ~4 processing nodes per rack.
	Layout cluster.Layout
	// WindowBatches is the operators' sliding window (default 10). It
	// is the single window knob: Setup always propagates it into the
	// engine config, so the operator windows and the engine's
	// source-replay window can never diverge. Setting
	// Config.WindowBatches instead (and leaving this zero) is
	// equivalent.
	WindowBatches int
	// Config overrides engine defaults; zero fields keep them.
	// Config.WindowBatches is unified with WindowBatches above.
	Config engine.Config
}

// Env is a reusable campaign environment. The expensive, immutable
// parts (topology, plan, factories) are computed once; Setup rebuilds
// the mutable cluster per simulation.
type Env struct {
	spec       EnvSpec
	strategies []engine.Strategy
	sources    map[int]engine.SourceFactory
	operators  map[int]engine.OperatorFactory
	processing int
	standby    int
	layout     cluster.Layout
}

// NewEnv validates the spec, computes the replication plan and the
// operator factories, and fixes the cluster dimensions and domain
// layout.
func NewEnv(spec EnvSpec) (*Env, error) {
	if spec.Topo == nil {
		return nil, fmt.Errorf("campaign: no topology")
	}
	if spec.Fraction == 0 {
		spec.Fraction = 0.3
	}
	if spec.TasksPerNode <= 0 {
		spec.TasksPerNode = 2
	}
	if spec.WindowBatches == 0 {
		spec.WindowBatches = spec.Config.WindowBatches
	}
	if spec.WindowBatches == 0 {
		spec.WindowBatches = 10
	}
	if spec.Config.WindowBatches != 0 && spec.Config.WindowBatches != spec.WindowBatches {
		return nil, fmt.Errorf("campaign: WindowBatches %d and Config.WindowBatches %d disagree",
			spec.WindowBatches, spec.Config.WindowBatches)
	}
	n := spec.Topo.NumTasks()
	env := &Env{
		spec:       spec,
		processing: max(2, (n+spec.TasksPerNode-1)/spec.TasksPerNode),
		sources:    make(map[int]engine.SourceFactory),
		operators:  make(map[int]engine.OperatorFactory),
	}
	env.standby = max(2, env.processing/2)
	env.layout = spec.Layout
	if env.layout.Zones == 0 {
		env.layout = cluster.DefaultLayout()
		env.layout.RacksPerZone = max(1, int(math.Ceil(float64(env.processing)/float64(env.layout.Zones*4))))
	}

	batch := spec.Config.BatchInterval
	if batch == 0 {
		batch = 1
	}
	for op, o := range spec.Topo.Ops {
		if spec.Topo.IsSource(op) {
			per := int(o.SourceRate * float64(batch))
			if per <= 0 {
				per = 1000
			}
			env.sources[op] = engine.NewCountSourceFactory(per)
		} else {
			env.operators[op] = engine.NewWindowCountFactory(spec.WindowBatches, o.Selectivity)
		}
	}

	env.strategies = make([]engine.Strategy, n)
	if spec.Planner != "" {
		pl, ok := plan.Lookup(spec.Planner)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown planner %q (registered: %v)", spec.Planner, plan.Names())
		}
		ctx := plan.NewContext(spec.Topo)
		if strings.HasSuffix(spec.Planner, "-corr") {
			if err := env.installCorrDistribution(ctx); err != nil {
				return nil, err
			}
		}
		budget := int(math.Round(spec.Fraction * float64(n)))
		p, err := pl.Plan(ctx, budget)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s planning: %w", spec.Planner, err)
		}
		for _, id := range p.Tasks() {
			env.strategies[id] = engine.StrategyActive
		}
	}
	return env, nil
}

// installCorrDistribution samples the environment's domain-correlated
// failure distribution (all burst models against the environment's own
// cluster layout and primary placement) and installs it on the planning
// context, so *-corr planners optimise the failures this environment
// will actually inject.
func (env *Env) installCorrDistribution(ctx *plan.Context) error {
	scenarios := env.spec.CorrScenarios
	if scenarios <= 0 {
		scenarios = 24
	}
	seed := env.spec.CorrSeed
	if seed == 0 {
		seed = 1
	}
	c, err := env.Cluster()
	if err != nil {
		return err
	}
	sets, err := SampleTaskScenarios(c, GenSpec{
		Seed:        seed,
		Scenarios:   scenarios,
		Correlation: DefaultCorrelation,
	}, Models)
	if err != nil {
		return fmt.Errorf("campaign: sampling correlation distribution: %w", err)
	}
	set, err := plan.NewScenarioSet(env.spec.Topo.NumTasks(), sets)
	if err != nil {
		return err
	}
	return ctx.SetScenarios(set)
}

// Cluster builds a fresh domain-structured cluster with the environment
// layout and round-robin placement. Every call yields an identical
// layout, so scenario node IDs are portable across simulations.
func (env *Env) Cluster() (*cluster.Cluster, error) {
	c := cluster.New(env.processing, env.standby)
	if _, err := c.BuildDomains(env.layout); err != nil {
		return nil, err
	}
	if err := c.PlaceRoundRobin(env.spec.Topo); err != nil {
		return nil, err
	}
	return c, nil
}

// Setup implements Config.Setup: a fresh engine setup per simulation,
// using the spec's replica placement policy.
func (env *Env) Setup() (engine.Setup, error) {
	return env.setup(env.spec.Placement)
}

// SetupFor returns a Config.Setup factory with the replica placement
// policy overridden. The replication plan depends only on the topology
// and planner, never on replica placement, so one Env can serve a
// placement sweep without re-planning per policy.
func (env *Env) SetupFor(placement cluster.PlacementPolicy) func() (engine.Setup, error) {
	return func() (engine.Setup, error) { return env.setup(placement) }
}

func (env *Env) setup(placement cluster.PlacementPolicy) (engine.Setup, error) {
	c, err := env.Cluster()
	if err != nil {
		return engine.Setup{}, err
	}
	cfg := env.spec.Config
	cfg.WindowBatches = env.spec.WindowBatches
	if env.spec.Tentative {
		cfg.TentativeOutputs = true
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 15
	}
	return engine.Setup{
		Topology:   env.spec.Topo,
		Cluster:    c,
		Config:     cfg,
		Sources:    env.sources,
		Operators:  env.operators,
		Strategies: append([]engine.Strategy(nil), env.strategies...),
		Placement:  placement,
	}, nil
}

// Topology preset names for cmd/ppastorm and the experiments.
const (
	TopoSmall  = "small"
	TopoMedium = "medium"
	TopoLarge  = "large"
)

// PresetSpec returns the randtopo spec of a named topology preset:
// small (5-6 ops, parallelism 1-4), medium (the paper's §VI-C baseline:
// 5-10 ops, parallelism 1-10) and large (10-14 ops, parallelism 6-16).
func PresetSpec(name string, seed int64) (randtopo.Spec, error) {
	spec := randtopo.DefaultSpec(seed)
	switch name {
	case TopoSmall:
		spec.MinOps, spec.MaxOps = 5, 6
		spec.MinPar, spec.MaxPar = 1, 4
	case TopoMedium:
		// the §VI-C baseline
	case TopoLarge:
		spec.MinOps, spec.MaxOps = 10, 14
		spec.MinPar, spec.MaxPar = 6, 16
	default:
		return randtopo.Spec{}, fmt.Errorf("campaign: unknown topology preset %q (known: small, medium, large)", name)
	}
	return spec, nil
}

// PresetTopology generates a named preset topology.
func PresetTopology(name string, seed int64) (*topology.Topology, error) {
	spec, err := PresetSpec(name, seed)
	if err != nil {
		return nil, err
	}
	return randtopo.Generate(spec)
}
