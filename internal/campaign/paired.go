package campaign

import (
	"math"
	"sort"
)

// Paired accumulates a common-random-numbers head-to-head: the same
// metric observed under two configurations (base and other) on
// scenarios generated from the same CRN substreams, paired by scenario
// index. Because both cells replay bit-identical failure draws, the
// per-scenario deltas cancel the scenario-to-scenario variance and the
// comparison's confidence interval shrinks far below what two
// independent campaigns of the same budget achieve — the classic CRN
// variance reduction. Memory is O(n): Paired is a head-to-head
// reporting tool for sweep cells, not a streaming aggregate.
type Paired struct {
	base, other []float64
	seenB, seen []bool
}

// NewPaired sizes the accumulator for scenario indices [0, n).
func NewPaired(n int) *Paired {
	return &Paired{
		base:  make([]float64, n),
		other: make([]float64, n),
		seenB: make([]bool, n),
		seen:  make([]bool, n),
	}
}

// ObserveBase records the base cell's metric for scenario i. Out-of-
// range indices are ignored.
func (p *Paired) ObserveBase(i int, v float64) {
	if i >= 0 && i < len(p.base) {
		p.base[i], p.seenB[i] = v, true
	}
}

// ObserveOther records the other cell's metric for scenario i.
func (p *Paired) ObserveOther(i int, v float64) {
	if i >= 0 && i < len(p.other) {
		p.other[i], p.seen[i] = v, true
	}
}

// PairedSummary reports the paired-difference statistics of a CRN
// head-to-head: deltas are other − base, so a negative MeanDelta means
// the other cell improved on the base. Half-widths are 95% two-sided.
type PairedSummary struct {
	// N is the number of scenario indices observed by both cells.
	N int `json:"n"`
	// MeanDelta is the mean per-scenario delta, with the paired-t CI
	// half-width MeanCI.
	MeanDelta float64 `json:"mean_delta"`
	MeanCI    float64 `json:"mean_delta_ci"`
	// DeltaP50/DeltaP95 are nearest-rank quantiles of the per-scenario
	// delta distribution; DeltaP95CI is the distribution-free
	// order-statistic CI half-width of the p95 delta.
	DeltaP50   float64 `json:"delta_p50"`
	DeltaP95   float64 `json:"delta_p95"`
	DeltaP95CI float64 `json:"delta_p95_ci"`
}

// Summary computes the paired statistics over the scenarios both cells
// observed. The zero PairedSummary is returned when no pair completed.
func (p *Paired) Summary() PairedSummary {
	var deltas []float64
	for i := range p.base {
		if p.seenB[i] && p.seen[i] {
			deltas = append(deltas, p.other[i]-p.base[i])
		}
	}
	if len(deltas) == 0 {
		return PairedSummary{}
	}
	n := len(deltas)
	var sum float64
	for _, d := range deltas {
		sum += d
	}
	mean := sum / float64(n)
	var ss float64
	for _, d := range deltas {
		ss += (d - mean) * (d - mean)
	}
	out := PairedSummary{N: n, MeanDelta: mean}
	if n > 1 {
		sd := math.Sqrt(ss / float64(n-1))
		out.MeanCI = stopZ * sd / math.Sqrt(float64(n))
	}
	sort.Float64s(deltas)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return deltas[i]
	}
	out.DeltaP50 = pick(0.50)
	out.DeltaP95 = pick(0.95)
	out.DeltaP95CI = quantileCIHalfWidth(func(q float64) float64 { return pick(q) }, 0.95, float64(n))
	return out
}
