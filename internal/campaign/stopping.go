package campaign

import (
	"fmt"
	"math"

	"repro/internal/sketch"
)

// CI-driven early stopping. A campaign with Config.StopTol > 0 halts
// once the 95% confidence interval of its p95 output-loss estimate is
// tighter than the tolerance. The stop rule is deterministic and
// replay-independent: it is evaluated only at shard-block boundaries
// (the campaign's fixed scenario-count checkpoints), over the merged
// reduction state of the completed shard prefix 0..j, and fires at the
// smallest such j. Single-process runs evaluate the blocks in order;
// the distributed coordinator feeds the monitor shard states as its
// contiguous completed-range frontier advances — both walk the same
// prefix sequence over the same serialised states, so they stop at the
// same scenario and produce bit-identical summaries. Workers never
// evaluate the rule (a range sees only its own slice of the prefix);
// stop decisions are owned by whoever merges.

// stopZ is the two-sided 95% normal quantile of the stop rule's
// interval; the confidence level is fixed so the rule stays part of
// the campaign's reproducibility contract rather than a tunable.
const stopZ = 1.9599639845400545

// stopMinSamples is the fewest scenarios a prefix needs before the
// rule is evaluated, guarding against a lucky tiny prefix stopping a
// campaign its later scenarios would have widened.
const stopMinSamples = 64

// quantileCIHalfWidth returns the half-width of the distribution-free
// 95% confidence interval for quantile q given neff effective samples:
// the quantile function evaluated at q ± z·sqrt(q(1-q)/neff), halved.
// +Inf when the interval's rank bounds fall outside (0, 1) — too few
// samples to bound the quantile at all.
func quantileCIHalfWidth(quantile func(float64) float64, q, neff float64) float64 {
	if neff <= 0 {
		return math.Inf(1)
	}
	d := stopZ * math.Sqrt(q*(1-q)/neff)
	if q-d <= 0 || q+d >= 1 {
		return math.Inf(1)
	}
	return (quantile(q+d) - quantile(q-d)) / 2
}

// StopMonitor evaluates the early-stop rule over a campaign's shard
// states, observed in shard order. The coordinator of a distributed
// campaign and the single-process runner both feed it the same
// serialised per-shard reduction states, so both arrive at the same
// decision. Construct with NewStopMonitor.
type StopMonitor struct {
	tol      float64
	blocks   int // total shard blocks of the campaign
	weighted bool

	next      int // next expected shard index
	scenarios int // scenarios covered by the observed prefix
	loss      *sketch.Sketch
	wloss     *sketch.Weighted

	fired     bool
	stopShard int
	lastHW    float64
}

// NewStopMonitor builds the monitor for cfg, or returns nil when the
// config does not ask for early stopping (StopTol <= 0) — a nil
// monitor is the "never stops" monitor.
func NewStopMonitor(cfg Config) *StopMonitor {
	if cfg.StopTol <= 0 {
		return nil
	}
	cfg = cfg.resolved()
	n := len(cfg.Scenarios)
	block := blockSize(n, cfg.Shards)
	m := &StopMonitor{
		tol:       cfg.StopTol,
		blocks:    (n + block - 1) / block,
		weighted:  scenariosWeighted(cfg.Scenarios),
		stopShard: -1,
		lastHW:    math.Inf(1),
	}
	if m.weighted {
		m.wloss = sketch.NewSeededWeighted(SketchK, 2)
	} else {
		m.loss = sketch.NewSeeded(SketchK, 2)
	}
	return m
}

// Observe folds the next shard's state into the monitored prefix and
// evaluates the stop rule at the new boundary. States must arrive in
// shard order with no gaps; after the monitor fired, further states
// are rejected (the campaign should not have run them).
func (m *StopMonitor) Observe(st ShardState) error {
	if m.fired {
		return fmt.Errorf("campaign: shard %d observed after the stop rule fired at shard %d", st.Shard, m.stopShard)
	}
	if st.Shard != m.next {
		return fmt.Errorf("campaign: stop monitor needs shard %d next, got %d", m.next, st.Shard)
	}
	if st.Weighted != m.weighted {
		return fmt.Errorf("campaign: shard %d weighted=%v, monitor expects %v", st.Shard, st.Weighted, m.weighted)
	}
	var neff float64
	var quant func(float64) float64
	if m.weighted {
		var s sketch.Weighted
		if err := s.UnmarshalBinary(st.Loss); err != nil {
			return fmt.Errorf("campaign: stop monitor decoding shard %d loss: %w", st.Shard, err)
		}
		m.wloss.Merge(&s)
		// The classic ESS (Σw)²/Σw² is the conservative effective count
		// for interval width: it never exceeds the scenario count, so a
		// weighted campaign stops no earlier than its weights justify.
		if w2 := m.wloss.SumW2(); w2 > 0 {
			neff = m.wloss.SumW() * m.wloss.SumW() / w2
		}
		quant = m.wloss.Quantile
	} else {
		var s sketch.Sketch
		if err := s.UnmarshalBinary(st.Loss); err != nil {
			return fmt.Errorf("campaign: stop monitor decoding shard %d loss: %w", st.Shard, err)
		}
		m.loss.Merge(&s)
		neff = float64(m.loss.Count())
		quant = m.loss.Quantile
	}
	m.next++
	m.scenarios += st.Scenarios
	// The last block completes the campaign anyway; evaluating there
	// would label an exhausted run as stopped.
	if m.next >= m.blocks || m.scenarios < stopMinSamples {
		return nil
	}
	m.lastHW = quantileCIHalfWidth(quant, 0.95, neff)
	if m.lastHW <= m.tol {
		m.fired = true
		m.stopShard = m.next - 1
	}
	return nil
}

// Fired reports whether the stop rule has fired. Nil-safe: a nil
// monitor never fires.
func (m *StopMonitor) Fired() bool { return m != nil && m.fired }

// StopShard returns the last shard included in the stopped prefix, or
// -1 when the rule has not fired.
func (m *StopMonitor) StopShard() int {
	if m == nil {
		return -1
	}
	return m.stopShard
}

// PrefixScenarios returns the number of scenarios covered by the
// observed prefix — the scenario count a stopped campaign's summary
// must report. Nil-safe.
func (m *StopMonitor) PrefixScenarios() int {
	if m == nil {
		return 0
	}
	return m.scenarios
}

// HalfWidth returns the p95-loss CI half-width at the last evaluated
// checkpoint (+Inf before the first evaluation). Nil-safe.
func (m *StopMonitor) HalfWidth() float64 {
	if m == nil {
		return math.Inf(1)
	}
	return m.lastHW
}
