package campaign

import (
	"sync"

	"repro/internal/sketch"
)

// DefaultShards is the default number of reduction shards. The summary
// depends on the shard count (sketch state folds per shard), so it is
// part of a campaign's reproducibility key alongside the seed — but
// never on Workers.
const DefaultShards = 8

// SketchK is the accuracy parameter of the campaign summary sketches:
// quantiles in Summary are within sketch.RankError() (1% of the
// scenario count for the default 256) of the exact nearest-rank value,
// and exact outright for campaigns with at most SketchK samples per
// metric.
const SketchK = sketch.DefaultK

// delayPool recycles the per-scenario correction-delay buffers on the
// flat-memory path (KeepResults off): a buffer lives from runOne until
// the reducer has streamed its delays into the time-to-correction
// sketch, then returns to the pool.
var delayPool = sync.Pool{New: func() any { return new([]float64) }}

// entry is one in-flight scenario result awaiting in-order reduction.
type entry struct {
	res ScenarioResult
	// box, when non-nil, is the pooled backing of res.CorrectionDelays,
	// returned to delayPool after the reducer consumed the delays.
	box *[]float64
}

func (e *entry) release() {
	if e.box != nil {
		*e.box = e.res.CorrectionDelays[:0]
		delayPool.Put(e.box)
		e.box = nil
		e.res.CorrectionDelays = nil
	}
}

// streamer delivers scenario results to a consume function in strict
// scenario-index order, whatever order the workers finish in. A
// bounded reorder window applies backpressure: a worker that finished
// an index far ahead of the reduction frontier blocks until the
// frontier catches up, so buffered results — the only per-scenario
// state the campaign retains — stay O(workers), not O(scenarios).
//
// Deadlock-freedom: the worker pool claims indices in ascending order,
// so the scenario at the frontier (next) is always already claimed by
// some worker; that worker's deliver never blocks (i == next bypasses
// the window check), and consuming it advances the frontier and wakes
// the blocked ones.
type streamer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	window  int
	pending map[int]entry
	aborted bool
	consume func(i int, e *entry)
}

func newStreamer(window int, consume func(int, *entry)) *streamer {
	st := &streamer{
		window:  window,
		pending: make(map[int]entry),
		consume: consume,
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// deliver hands the result of scenario i to the reducer. It blocks
// while i is more than window ahead of the reduction frontier. The
// consume callback runs under the streamer lock — serially, in index
// order.
func (st *streamer) deliver(i int, e entry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.aborted && i != st.next && i-st.next >= st.window {
		st.cond.Wait()
	}
	if st.aborted {
		e.release()
		return
	}
	if i != st.next {
		st.pending[i] = e
		return
	}
	st.consume(i, &e)
	st.next++
	for {
		ne, ok := st.pending[st.next]
		if !ok {
			break
		}
		delete(st.pending, st.next)
		st.consume(st.next, &ne)
		st.next++
	}
	st.cond.Broadcast()
}

// abort releases every waiter and drops all buffered results; called
// on the first scenario error so the fail-fast campaign cannot wedge
// workers blocked on the reorder window.
func (st *streamer) abort() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.aborted = true
	for i, e := range st.pending {
		e.release()
		delete(st.pending, i)
	}
	st.cond.Broadcast()
}

// aggregator folds scenario results of one reduction shard into
// mergeable summary sketches — constant memory per shard, independent
// of the scenario count. An unweighted campaign (every scenario weight
// exactly 1, the historical default) uses the exact-count Sketch path
// bit-identically to before; an importance-sampled campaign (any
// scenario carrying a non-unit likelihood ratio) switches every metric
// to the weighted summaries and additionally folds the exact moment
// counters behind the effective-sample-size estimate.
type aggregator struct {
	scenarios   int
	unrecovered int
	weighted    bool

	// Unweighted metric sketches (weighted == false).
	lat   *sketch.Sketch
	loss  *sketch.Sketch
	blast *sketch.Sketch
	tent  *sketch.Sketch
	corr  *sketch.Sketch
	t2c   *sketch.Sketch

	// Weighted metric summaries (weighted == true).
	wlat   *sketch.Weighted
	wloss  *sketch.Weighted
	wblast *sketch.Weighted
	wtent  *sketch.Weighted
	wcorr  *sketch.Weighted
	wt2c   *sketch.Weighted

	// Exact moment counters over (weight, OutputLoss), maintained on
	// the weighted path only and folded in shard order like everything
	// else: Σw, Σw², Σwx, Σwx², Σw²x, Σw²x². They determine both the
	// classic ESS (Σw)²/Σw² and the variance-ratio ESS reported in
	// Summary.ESS.
	sumW, sumW2, sumWX, sumWX2, sumW2X, sumW2X2 float64
}

// newAggregator builds one shard accumulator. Every shard seeds each
// metric's sketch identically, so shard sketches merge into the same
// deterministic state regardless of which shard the merge starts from.
func newAggregator(weighted bool) *aggregator {
	a := &aggregator{weighted: weighted}
	if weighted {
		a.wlat = sketch.NewSeededWeighted(SketchK, 1)
		a.wloss = sketch.NewSeededWeighted(SketchK, 2)
		a.wblast = sketch.NewSeededWeighted(SketchK, 3)
		a.wtent = sketch.NewSeededWeighted(SketchK, 4)
		a.wcorr = sketch.NewSeededWeighted(SketchK, 5)
		a.wt2c = sketch.NewSeededWeighted(SketchK, 6)
		return a
	}
	a.lat = sketch.NewSeeded(SketchK, 1)
	a.loss = sketch.NewSeeded(SketchK, 2)
	a.blast = sketch.NewSeeded(SketchK, 3)
	a.tent = sketch.NewSeeded(SketchK, 4)
	a.corr = sketch.NewSeeded(SketchK, 5)
	a.t2c = sketch.NewSeeded(SketchK, 6)
	return a
}

// scenariosWeighted reports whether any scenario carries a non-unit
// importance weight. Every process of a distributed campaign scans the
// full regenerated scenario list — never its own range — so all sides
// agree on the aggregation mode.
func scenariosWeighted(scs []Scenario) bool {
	for i := range scs {
		if w := scs[i].Weight; w != 0 && w != 1 {
			return true
		}
	}
	return false
}

// add folds one scenario result (same metric semantics as the old
// exact summarise: latency only over recovered scenarios that lost
// tasks, corrected fraction only over scenarios with tentative
// output, delays pooled across scenarios).
func (a *aggregator) add(r *ScenarioResult) {
	a.scenarios++
	if a.weighted {
		a.addWeighted(r)
		return
	}
	a.loss.Add(r.OutputLoss)
	a.blast.Add(float64(r.FailedTasks))
	a.tent.Add(r.TentativeFrac)
	if r.TentativeFrac > 0 {
		a.corr.Add(r.CorrectedFrac)
	}
	for _, d := range r.CorrectionDelays {
		a.t2c.Add(d)
	}
	if !r.Recovered {
		a.unrecovered++
		return
	}
	if r.FailedTasks > 0 {
		a.lat.Add(float64(r.WorstLatency))
	}
}

// addWeighted is add for importance-sampled campaigns: every metric
// sample carries the scenario's likelihood ratio (zero, from hand-built
// scenarios, counts as 1).
func (a *aggregator) addWeighted(r *ScenarioResult) {
	w := r.Scenario.Weight
	if w == 0 {
		w = 1
	}
	x := r.OutputLoss
	a.sumW += w
	a.sumW2 += w * w
	a.sumWX += w * x
	a.sumWX2 += w * x * x
	a.sumW2X += w * w * x
	a.sumW2X2 += w * w * x * x
	a.wloss.Add(x, w)
	a.wblast.Add(float64(r.FailedTasks), w)
	a.wtent.Add(r.TentativeFrac, w)
	if r.TentativeFrac > 0 {
		a.wcorr.Add(r.CorrectedFrac, w)
	}
	for _, d := range r.CorrectionDelays {
		a.wt2c.Add(d, w)
	}
	if !r.Recovered {
		a.unrecovered++
		return
	}
	if r.FailedTasks > 0 {
		a.wlat.Add(float64(r.WorstLatency), w)
	}
}

// merge folds shard b into a (called in shard order).
func (a *aggregator) merge(b *aggregator) {
	a.scenarios += b.scenarios
	a.unrecovered += b.unrecovered
	if a.weighted {
		a.sumW += b.sumW
		a.sumW2 += b.sumW2
		a.sumWX += b.sumWX
		a.sumWX2 += b.sumWX2
		a.sumW2X += b.sumW2X
		a.sumW2X2 += b.sumW2X2
		a.wlat.Merge(b.wlat)
		a.wloss.Merge(b.wloss)
		a.wblast.Merge(b.wblast)
		a.wtent.Merge(b.wtent)
		a.wcorr.Merge(b.wcorr)
		a.wt2c.Merge(b.wt2c)
		return
	}
	a.lat.Merge(b.lat)
	a.loss.Merge(b.loss)
	a.blast.Merge(b.blast)
	a.tent.Merge(b.tent)
	a.corr.Merge(b.corr)
	a.t2c.Merge(b.t2c)
}

// ess returns the campaign's effective sample size. For an unweighted
// campaign every scenario contributes one full sample: ESS = N. For an
// importance-sampled campaign it is the variance-ratio ESS of the
// self-normalised loss estimator — naive-Monte-Carlo variance over
// importance-sampling variance — i.e. the number of plain scenarios
// that would estimate the mean loss equally well. With
// Sw = Σw, μ = Σwx/Σw, A = Σw(x-μ)² and B = Σw²(x-μ)²:
// ESS = A·Sw/B (delta-method variance of the reweighted mean). A good
// tilt makes this EXCEED N — the whole point of tilting — where the
// classic (Σw)²/Σw² (the fallback when the loss is empirically
// constant, B = 0) can only reach N.
func (a *aggregator) ess() float64 {
	if !a.weighted {
		return float64(a.scenarios)
	}
	if a.sumW <= 0 {
		return 0
	}
	mu := a.sumWX / a.sumW
	varA := a.sumWX2 - 2*mu*a.sumWX + mu*mu*a.sumW
	varB := a.sumW2X2 - 2*mu*a.sumW2X + mu*mu*a.sumW2
	if varB <= 0 || varA <= 0 {
		return a.sumW * a.sumW / a.sumW2
	}
	return varA * a.sumW / varB
}

func (a *aggregator) summary() Summary {
	s := Summary{
		Scenarios:   a.scenarios,
		Unrecovered: a.unrecovered,
		ESS:         a.ess(),
	}
	if a.weighted {
		s.Latency = wdistOf(a.wlat)
		s.Loss = wdistOf(a.wloss)
		s.FailedTasks = wdistOf(a.wblast)
		s.TentativeFrac = wdistOf(a.wtent)
		s.CorrectedFrac = wdistOf(a.wcorr)
		s.TimeToCorrection = wdistOf(a.wt2c)
		return s
	}
	s.Latency = distOf(a.lat)
	s.Loss = distOf(a.loss)
	s.FailedTasks = distOf(a.blast)
	s.TentativeFrac = distOf(a.tent)
	s.CorrectedFrac = distOf(a.corr)
	s.TimeToCorrection = distOf(a.t2c)
	return s
}

// distOf renders one metric sketch as the summary distribution. Mean
// and Max are exact; quantiles carry the sketch's rank-error bound.
func distOf(s *sketch.Sketch) Dist {
	if s.Count() == 0 {
		return Dist{}
	}
	return Dist{
		Mean: s.Mean(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
		Max:  s.Max(),
	}
}

// wdistOf is distOf for the weighted summaries: means and quantiles
// are taken against the reweighted (nominal) distribution.
func wdistOf(s *sketch.Weighted) Dist {
	if s.Count() == 0 {
		return Dist{}
	}
	return Dist{
		Mean: s.Mean(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
		Max:  s.Max(),
	}
}
