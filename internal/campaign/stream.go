package campaign

import (
	"sync"

	"repro/internal/sketch"
)

// DefaultShards is the default number of reduction shards. The summary
// depends on the shard count (sketch state folds per shard), so it is
// part of a campaign's reproducibility key alongside the seed — but
// never on Workers.
const DefaultShards = 8

// SketchK is the accuracy parameter of the campaign summary sketches:
// quantiles in Summary are within sketch.RankError() (1% of the
// scenario count for the default 256) of the exact nearest-rank value,
// and exact outright for campaigns with at most SketchK samples per
// metric.
const SketchK = sketch.DefaultK

// delayPool recycles the per-scenario correction-delay buffers on the
// flat-memory path (KeepResults off): a buffer lives from runOne until
// the reducer has streamed its delays into the time-to-correction
// sketch, then returns to the pool.
var delayPool = sync.Pool{New: func() any { return new([]float64) }}

// entry is one in-flight scenario result awaiting in-order reduction.
type entry struct {
	res ScenarioResult
	// box, when non-nil, is the pooled backing of res.CorrectionDelays,
	// returned to delayPool after the reducer consumed the delays.
	box *[]float64
}

func (e *entry) release() {
	if e.box != nil {
		*e.box = e.res.CorrectionDelays[:0]
		delayPool.Put(e.box)
		e.box = nil
		e.res.CorrectionDelays = nil
	}
}

// streamer delivers scenario results to a consume function in strict
// scenario-index order, whatever order the workers finish in. A
// bounded reorder window applies backpressure: a worker that finished
// an index far ahead of the reduction frontier blocks until the
// frontier catches up, so buffered results — the only per-scenario
// state the campaign retains — stay O(workers), not O(scenarios).
//
// Deadlock-freedom: the worker pool claims indices in ascending order,
// so the scenario at the frontier (next) is always already claimed by
// some worker; that worker's deliver never blocks (i == next bypasses
// the window check), and consuming it advances the frontier and wakes
// the blocked ones.
type streamer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	window  int
	pending map[int]entry
	aborted bool
	consume func(i int, e *entry)
}

func newStreamer(window int, consume func(int, *entry)) *streamer {
	st := &streamer{
		window:  window,
		pending: make(map[int]entry),
		consume: consume,
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// deliver hands the result of scenario i to the reducer. It blocks
// while i is more than window ahead of the reduction frontier. The
// consume callback runs under the streamer lock — serially, in index
// order.
func (st *streamer) deliver(i int, e entry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.aborted && i != st.next && i-st.next >= st.window {
		st.cond.Wait()
	}
	if st.aborted {
		e.release()
		return
	}
	if i != st.next {
		st.pending[i] = e
		return
	}
	st.consume(i, &e)
	st.next++
	for {
		ne, ok := st.pending[st.next]
		if !ok {
			break
		}
		delete(st.pending, st.next)
		st.consume(st.next, &ne)
		st.next++
	}
	st.cond.Broadcast()
}

// abort releases every waiter and drops all buffered results; called
// on the first scenario error so the fail-fast campaign cannot wedge
// workers blocked on the reorder window.
func (st *streamer) abort() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.aborted = true
	for i, e := range st.pending {
		e.release()
		delete(st.pending, i)
	}
	st.cond.Broadcast()
}

// aggregator folds scenario results of one reduction shard into
// mergeable summary sketches — constant memory per shard, independent
// of the scenario count.
type aggregator struct {
	scenarios   int
	unrecovered int
	lat         *sketch.Sketch
	loss        *sketch.Sketch
	blast       *sketch.Sketch
	tent        *sketch.Sketch
	corr        *sketch.Sketch
	t2c         *sketch.Sketch
}

// newAggregator builds one shard accumulator. Every shard seeds each
// metric's sketch identically, so shard sketches merge into the same
// deterministic state regardless of which shard the merge starts from.
func newAggregator() *aggregator {
	return &aggregator{
		lat:   sketch.NewSeeded(SketchK, 1),
		loss:  sketch.NewSeeded(SketchK, 2),
		blast: sketch.NewSeeded(SketchK, 3),
		tent:  sketch.NewSeeded(SketchK, 4),
		corr:  sketch.NewSeeded(SketchK, 5),
		t2c:   sketch.NewSeeded(SketchK, 6),
	}
}

// add folds one scenario result (same metric semantics as the old
// exact summarise: latency only over recovered scenarios that lost
// tasks, corrected fraction only over scenarios with tentative
// output, delays pooled across scenarios).
func (a *aggregator) add(r *ScenarioResult) {
	a.scenarios++
	a.loss.Add(r.OutputLoss)
	a.blast.Add(float64(r.FailedTasks))
	a.tent.Add(r.TentativeFrac)
	if r.TentativeFrac > 0 {
		a.corr.Add(r.CorrectedFrac)
	}
	for _, d := range r.CorrectionDelays {
		a.t2c.Add(d)
	}
	if !r.Recovered {
		a.unrecovered++
		return
	}
	if r.FailedTasks > 0 {
		a.lat.Add(float64(r.WorstLatency))
	}
}

// merge folds shard b into a (called in shard order).
func (a *aggregator) merge(b *aggregator) {
	a.scenarios += b.scenarios
	a.unrecovered += b.unrecovered
	a.lat.Merge(b.lat)
	a.loss.Merge(b.loss)
	a.blast.Merge(b.blast)
	a.tent.Merge(b.tent)
	a.corr.Merge(b.corr)
	a.t2c.Merge(b.t2c)
}

func (a *aggregator) summary() Summary {
	return Summary{
		Scenarios:        a.scenarios,
		Unrecovered:      a.unrecovered,
		Latency:          distOf(a.lat),
		Loss:             distOf(a.loss),
		FailedTasks:      distOf(a.blast),
		TentativeFrac:    distOf(a.tent),
		CorrectedFrac:    distOf(a.corr),
		TimeToCorrection: distOf(a.t2c),
	}
}

// distOf renders one metric sketch as the summary distribution. Mean
// and Max are exact; quantiles carry the sketch's rank-error bound.
func distOf(s *sketch.Sketch) Dist {
	if s.Count() == 0 {
		return Dist{}
	}
	return Dist{
		Mean: s.Mean(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
		Max:  s.Max(),
	}
}
