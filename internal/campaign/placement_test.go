package campaign

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sim"
)

// TestGenSpecExplicitZeros pins the sentinel semantics of the optional
// GenSpec fields: nil selects the default, Ptr(0) is honoured verbatim
// — jitter can be disabled, injection can happen at t=0 and cascade
// waves can be simultaneous.
func TestGenSpecExplicitZeros(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Generate(c, GenSpec{
		Seed:      3,
		Scenarios: 8,
		Model:     SingleNode,
		FailAt:    Ptr(sim.Time(12)),
		JitterS:   Ptr(0.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		for _, w := range sc.Waves {
			if w.At != 12 {
				t.Fatalf("scenario %d wave at %v, want exactly 12 (jitter disabled)", sc.Index, w.At)
			}
		}
	}
	// Cascades need a zone with several racks to produce multiple waves.
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	multiRack, err := NewEnv(EnvSpec{Topo: topo, Layout: cluster.Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true}})
	if err != nil {
		t.Fatal(err)
	}
	if c, err = multiRack.Cluster(); err != nil {
		t.Fatal(err)
	}
	scs, err = Generate(c, GenSpec{
		Seed:        3,
		Scenarios:   8,
		Model:       Cascade,
		JitterS:     Ptr(0.0),
		Correlation: 1,
		CascadeLag:  Ptr(sim.Time(0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, sc := range scs {
		for i, w := range sc.Waves {
			if w.At != sc.Waves[0].At {
				t.Fatalf("scenario %d wave %d at %v, want simultaneous waves (zero lag)", sc.Index, i, w.At)
			}
		}
		if len(sc.Waves) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("correlation 1 produced no multi-wave cascade; zero-lag case untested")
	}
	// And the defaults still apply when the fields are nil.
	scs, err = Generate(c, GenSpec{Seed: 3, Scenarios: 4, Model: SingleNode})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if at := sc.Waves[0].At; at < 30.5 || at > 31.5 {
			t.Fatalf("default injection time %v outside [30.5, 31.5]", at)
		}
	}
}

// TestSampleTaskScenarios checks the node→task mapping of the
// correlation-distribution sampler against the cluster's reverse
// placement index.
func TestSampleTaskScenarios(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	const perModel = 6
	sets, err := SampleTaskScenarios(c, GenSpec{Seed: 9, Scenarios: perModel, Correlation: DefaultCorrelation}, Models)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != perModel*len(Models) {
		t.Fatalf("%d sampled sets, want %d", len(sets), perModel*len(Models))
	}
	n := env.spec.Topo.NumTasks()
	nonEmpty := 0
	for _, set := range sets {
		for i, id := range set {
			if int(id) < 0 || int(id) >= n {
				t.Fatalf("task %d outside topology", id)
			}
			if i > 0 && set[i-1] >= id {
				t.Fatalf("set %v not strictly sorted", set)
			}
		}
		if len(set) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no sampled scenario hits any primary task")
	}
}

// TestCorrPlannerEnv: a *-corr planner works end to end through NewEnv
// (the environment samples and installs its own distribution).
func TestCorrPlannerEnv(t *testing.T) {
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: "sa-corr", CorrScenarios: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := env.Setup()
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, st := range s.Strategies {
		if st == engine.StrategyActive {
			active++
		}
	}
	if active == 0 {
		t.Fatal("sa-corr produced no active replicas")
	}
}

// TestAntiAffinityBeatsRoundRobin is the acceptance test of the
// placement fix: on a multi-rack cluster with active-replicated tasks,
// rack anti-affinity must yield strictly lower p95 output loss than the
// legacy round-robin placement under the WholeDomain and Cascade burst
// models — round-robin can co-locate a replica with its primary's rack,
// so one domain burst kills both copies and forces the slow checkpoint
// fallback.
func TestAntiAffinityBeatsRoundRobin(t *testing.T) {
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{WholeDomain, Cascade} {
		run := func(placement cluster.PlacementPolicy) Summary {
			env, err := NewEnv(EnvSpec{
				Topo:      topo,
				Planner:   "greedy",
				Fraction:  1.0, // every task replicated: placement is the only variable
				Placement: placement,
				Layout:    cluster.Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			c, err := env.Cluster()
			if err != nil {
				t.Fatal(err)
			}
			scenarios, err := Generate(c, GenSpec{
				Seed:        21,
				Scenarios:   24,
				Model:       model,
				Correlation: 0.8,
			})
			if err != nil {
				t.Fatal(err)
			}
			// The horizon ends while a checkpoint fallback is still
			// replaying but well after a replica takeover has caught
			// up, so surviving replicas show up as less output loss.
			rep, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 45})
			if err != nil {
				t.Fatal(err)
			}
			return rep.Summary
		}
		aa := run(cluster.PlacementAntiAffinity)
		rr := run(cluster.PlacementRoundRobin)
		if aa.Loss.P95 >= rr.Loss.P95 {
			t.Errorf("%s: anti-affinity p95 loss %v not strictly below round-robin %v", model, aa.Loss.P95, rr.Loss.P95)
		}
		if aa.Latency.P95 >= rr.Latency.P95 {
			t.Errorf("%s: anti-affinity p95 latency %v not strictly below round-robin %v", model, aa.Latency.P95, rr.Latency.P95)
		}
	}
}
