package campaign

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/topology"
)

// testEnv builds a small, fast campaign environment.
func testEnv(t testing.TB, planner string) *Env {
	t.Helper()
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range Models {
		spec := GenSpec{Seed: 7, Scenarios: 20, Model: model, Correlation: DefaultCorrelation}
		a, err := Generate(c, spec)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		b, err := Generate(c, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different scenarios", model)
		}
		for _, sc := range a {
			if len(sc.Waves) == 0 {
				t.Fatalf("%s: scenario %d has no waves", model, sc.Index)
			}
			for _, w := range sc.Waves {
				if len(w.Nodes) == 0 {
					t.Fatalf("%s: scenario %d has an empty wave", model, sc.Index)
				}
				if w.At < 30.5 {
					t.Fatalf("%s: wave before FailAt: %v", model, w.At)
				}
			}
			switch model {
			case SingleNode:
				if len(sc.Waves) != 1 || len(sc.Waves[0].Nodes) != 1 {
					t.Fatalf("single-node scenario %d fails %v", sc.Index, sc.Waves)
				}
			case KOfRack, WholeDomain:
				if len(sc.Waves) != 1 {
					t.Fatalf("%s scenario %d has %d waves", model, sc.Index, len(sc.Waves))
				}
				rack := c.DomainOf(sc.Waves[0].Nodes[0])
				rackNodes := map[cluster.NodeID]bool{}
				for _, n := range c.DomainNodes(rack) {
					rackNodes[n] = true
				}
				for _, n := range sc.Waves[0].Nodes {
					if !rackNodes[n] {
						t.Fatalf("%s scenario %d: node %d outside rack %d", model, sc.Index, n, rack)
					}
				}
				if model == WholeDomain && len(sc.Waves[0].Nodes) != len(c.DomainNodes(rack)) {
					t.Fatalf("domain scenario %d fails %d of %d rack nodes", sc.Index, len(sc.Waves[0].Nodes), len(c.DomainNodes(rack)))
				}
			case Cascade:
				for i := 1; i < len(sc.Waves); i++ {
					if sc.Waves[i].At <= sc.Waves[i-1].At {
						t.Fatalf("cascade scenario %d: waves not staggered", sc.Index)
					}
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(c, GenSpec{Scenarios: 0}); err == nil {
		t.Error("zero scenarios accepted")
	}
	if _, err := Generate(c, GenSpec{Scenarios: 1, Correlation: 2}); err == nil {
		t.Error("correlation > 1 accepted")
	}
	// A cluster without rack domains only supports SingleNode.
	bare := cluster.New(4, 2)
	if _, err := Generate(bare, GenSpec{Scenarios: 1, Model: WholeDomain}); err == nil {
		t.Error("domain model without rack domains accepted")
	}
	if _, err := Generate(bare, GenSpec{Scenarios: 3, Model: SingleNode}); err != nil {
		t.Errorf("single-node on bare cluster: %v", err)
	}
}

// TestCampaignDeterministicAcrossWorkers is the determinism acceptance
// check: the same seed yields identical aggregate results whether the
// scenarios run sequentially or on the full worker pool.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	env := testEnv(t, "greedy")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 42, Scenarios: 16, Model: KOfRack, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Report {
		rep, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 90, Workers: workers, KeepResults: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel campaign differs from sequential:\nseq: %+v\npar: %+v", seq.Summary, par.Summary)
	}
	again := run(8)
	if !reflect.DeepEqual(par, again) {
		t.Fatal("same seed, same workers produced different reports")
	}
}

func TestCampaignRecoversAndMeasures(t *testing.T) {
	env := testEnv(t, "sa")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 1, Scenarios: 8, Model: WholeDomain, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 150, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("KeepResults retained %d of 8 results", len(rep.Results))
	}
	if rep.BaselineSinkTuples <= 0 {
		t.Fatal("baseline produced no sink output")
	}
	if rep.Summary.Scenarios != 8 {
		t.Fatalf("summary covers %d scenarios", rep.Summary.Scenarios)
	}
	if rep.Summary.Unrecovered > 0 {
		t.Fatalf("%d of 8 domain scenarios unrecovered by 150s", rep.Summary.Unrecovered)
	}
	if rep.Summary.Latency.Mean <= 0 || rep.Summary.Latency.Max < rep.Summary.Latency.P95 {
		t.Fatalf("implausible latency distribution %+v", rep.Summary.Latency)
	}
	if rep.Summary.FailedTasks.Max <= 0 {
		t.Fatal("domain failures hit no tasks")
	}
	for _, r := range rep.Results {
		if r.OutputLoss < 0 || r.OutputLoss > 1 {
			t.Fatalf("loss %v out of range", r.OutputLoss)
		}
	}
}

// deepChainTopo builds src(2) -> A(2) -> B(2) -> C(1): three operator
// levels below the sources, so whole-rack bursts regularly leave the
// sink two or more hops from a failed task.
func deepChainTopo(t testing.TB) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 1000)
	a := b.AddOperator("A", 2, topology.Independent, 1)
	bb := b.AddOperator("B", 2, topology.Independent, 0.8)
	c := b.AddOperator("C", 1, topology.Independent, 0.8)
	b.Connect(src, a, topology.OneToOne)
	b.Connect(a, bb, topology.Split)
	b.Connect(bb, c, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestCampaignAccuracyMetrics is the acceptance check of the
// tentative/correction pipeline at campaign scale: a whole-rack burst
// campaign over a three-level topology reports tentative sink output,
// a nonzero corrected fraction with plausible time-to-correction, and
// a failure-free baseline that is firm-only and bit-identical to a run
// without the feature.
func TestCampaignAccuracyMetrics(t *testing.T) {
	topo := deepChainTopo(t)
	env, err := NewEnv(EnvSpec{Topo: topo, Tentative: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 9, Scenarios: 8, Model: WholeDomain, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 150, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 150, Workers: 1, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, seq) {
		t.Fatalf("accuracy metrics differ across worker counts:\npar: %+v\nseq: %+v", rep.Summary, seq.Summary)
	}
	s := rep.Summary
	if s.TentativeFrac.Max <= 0 {
		t.Fatal("no scenario produced tentative sink output")
	}
	if s.CorrectedFrac.Max <= 0 {
		t.Fatal("no scenario corrected any tentative output")
	}
	if s.TimeToCorrection.P95 <= 0 || s.TimeToCorrection.P50 <= 0 {
		t.Fatalf("implausible time-to-correction distribution %+v", s.TimeToCorrection)
	}
	if s.TimeToCorrection.Max > 150 {
		t.Fatalf("correction delay %v beyond the horizon", s.TimeToCorrection.Max)
	}
	for _, r := range rep.Results {
		if r.OutputLoss < 0 {
			t.Errorf("scenario %d: negative loss %v (sink accounting overcounts)", r.Scenario.Index, r.OutputLoss)
		}
		for _, d := range r.CorrectionDelays {
			if d <= 0 || d > 150 {
				t.Errorf("scenario %d: implausible correction delay %v", r.Scenario.Index, d)
			}
		}
	}

	// The failure-free baseline is unaffected by the pipeline: same
	// volume with the feature on and off, and zero tentative output.
	plain, err := NewEnv(EnvSpec{Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Env{env, plain} {
		setup, err := e.Setup()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(setup)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(150)
		if got := eng.SinkTupleCount(); got != rep.BaselineSinkTuples {
			t.Errorf("failure-free volume %d differs from campaign baseline %d", got, rep.BaselineSinkTuples)
		}
		if acc := eng.AccuracyStats(); acc.TentativeBatches != 0 {
			t.Errorf("failure-free run recorded %d tentative batches", acc.TentativeBatches)
		}
	}
}

func TestRunValidation(t *testing.T) {
	env := testEnv(t, "")
	scs := []Scenario{{}}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"missing Setup", Config{Scenarios: scs}, "Setup"},
		{"empty scenario list", Config{Setup: env.Setup}, "Scenarios"},
		{"negative horizon", Config{Setup: env.Setup, Scenarios: scs, Horizon: -1}, "Horizon"},
		{"negative baseline", Config{Setup: env.Setup, Scenarios: scs, Baseline: -5}, "Baseline"},
		{"baseline key without cache", Config{Setup: env.Setup, Scenarios: scs, BaselineKey: "k"}, "BaselineKey"},
	}
	for _, c := range cases {
		_, err := Run(c.cfg)
		if err == nil {
			t.Errorf("%s accepted", c.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", c.name, err)
			continue
		}
		if ce.Field != c.field {
			t.Errorf("%s: error names field %q, want %q", c.name, ce.Field, c.field)
		}
		if got := c.cfg.Validate(); got == nil || got.Error() != err.Error() {
			t.Errorf("%s: Validate() = %v, Run error = %v", c.name, got, err)
		}
	}
	if err := (Config{Setup: env.Setup, Scenarios: scs, Horizon: 90}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range Models {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("meteor"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{TopoSmall, TopoMedium, TopoLarge} {
		topo, err := PresetTopology(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.NumTasks() == 0 {
			t.Fatalf("%s: empty topology", name)
		}
	}
	if _, err := PresetTopology("galactic", 3); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := NewEnv(EnvSpec{}); err == nil {
		t.Error("nil topology accepted")
	}
	topo, _ := PresetTopology(TopoSmall, 3)
	if _, err := NewEnv(EnvSpec{Topo: topo, Planner: "astrology"}); err == nil {
		t.Error("unknown planner accepted")
	}
}

// TestEnvClusterStable verifies the property Run relies on: every
// Cluster() call yields an identical node/domain layout.
func TestEnvClusterStable(t *testing.T) {
	env := testEnv(t, "")
	a, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes()) != len(b.Nodes()) || len(a.Domains()) != len(b.Domains()) {
		t.Fatal("cluster layout not reproducible")
	}
	for _, n := range a.Nodes() {
		if a.DomainOf(n.ID) != b.DomainOf(n.ID) {
			t.Fatalf("node %d attached to different domains across builds", n.ID)
		}
	}
}

var benchSink *Report

// BenchmarkCampaign measures the campaign runner sequentially and on
// the full worker pool; the parallel/sequential ratio is the headline
// scalability number (>2x expected on 4+ cores).
func BenchmarkCampaign(b *testing.B) {
	topo, err := PresetTopology(TopoMedium, 1)
	if err != nil {
		b.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: "greedy"})
	if err != nil {
		b.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 5, Scenarios: 32, Model: KOfRack, Correlation: DefaultCorrelation})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 90, Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = rep
			}
		})
	}
}

// BenchmarkAccuracyCampaign runs a small tentative-output campaign and
// reports the answer-quality metrics via b.ReportMetric, so the CI
// bench artifact (BENCH_<sha>.json) carries the tentative/corrected
// fields across commits.
func BenchmarkAccuracyCampaign(b *testing.B) {
	topo := deepChainTopo(b)
	env, err := NewEnv(EnvSpec{Topo: topo, Tentative: true})
	if err != nil {
		b.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 9, Scenarios: 8, Model: WholeDomain, Correlation: DefaultCorrelation})
	if err != nil {
		b.Fatal(err)
	}
	var rep *Report
	for i := 0; i < b.N; i++ {
		rep, err = Run(Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 150})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Summary.TentativeFrac.Mean, "tentative_frac")
	b.ReportMetric(rep.Summary.CorrectedFrac.Mean, "corrected_frac")
	b.ReportMetric(rep.Summary.TimeToCorrection.P95, "t2c_p95_s")
}

func TestEnvWindowKnobsUnified(t *testing.T) {
	topo, err := PresetTopology(TopoSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Config.WindowBatches alone propagates everywhere.
	env, err := NewEnv(EnvSpec{Topo: topo, Config: engine.Config{WindowBatches: 30}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := env.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if s.Config.WindowBatches != 30 {
		t.Errorf("engine window = %d, want 30", s.Config.WindowBatches)
	}
	// Conflicting knobs are rejected instead of silently diverging.
	_, err = NewEnv(EnvSpec{Topo: topo, WindowBatches: 10, Config: engine.Config{WindowBatches: 30}})
	if err == nil {
		t.Error("conflicting window knobs accepted")
	}
}
