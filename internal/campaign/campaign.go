package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/sim"
)

// Config describes one campaign: N scenarios run as independent engine
// simulations against instances of the same environment. By default the
// runner keeps one engine per worker and engine.Reset()s it between
// scenarios instead of rebuilding the environment per simulation;
// Reset is bit-identical to a fresh Setup, so results do not depend on
// which path (or worker) ran a scenario.
type Config struct {
	// Setup returns a fresh engine setup for one simulation. It must be
	// safe for concurrent calls and must rebuild anything a run mutates
	// (in particular the cluster — failure flags are per-run state);
	// the node IDs and failure-domain layout must be identical across
	// calls so that scenario node sets stay meaningful. The source and
	// operator factories must return equivalent fresh instances on
	// every call — engine reuse resets engines through those factories.
	Setup func() (engine.Setup, error)
	// Scenarios to execute, typically from Generate.
	Scenarios []Scenario
	// Horizon is the virtual run time of each simulation (default 120s).
	Horizon sim.Time
	// Workers bounds the worker pool; <=0 selects GOMAXPROCS, 1 runs
	// sequentially. Results stream into the reduction shards in
	// scenario-index order, so the campaign is deterministic for a
	// given seed and shard count regardless of Workers.
	Workers int
	// Shards is the number of reduction shards: scenario i folds into
	// the summary sketches of shard i mod Shards (in index order), and
	// the shards merge in shard order into the final Summary. The
	// summary therefore depends on the shard count — fix it alongside
	// the seed for bit-reproducible reports — but never on Workers.
	// <= 0 selects DefaultShards.
	Shards int
	// KeepResults retains every ScenarioResult in Report.Results. Off
	// by default: the streaming aggregation needs only O(Workers +
	// Shards) memory however many scenarios run, which is what makes
	// million-scenario sweeps possible; turning this on restores the
	// old linear-memory behaviour for callers that post-process
	// individual scenarios.
	KeepResults bool
	// OnResult, when set, receives every scenario result in strict
	// scenario-index order as soon as the reduction frontier reaches
	// it — the streaming alternative to KeepResults (per-scenario CSV
	// rows, progress reporting). It is called serially under the
	// reducer lock: keep it fast, and do not call back into the
	// campaign. Unless KeepResults is set, the result's
	// CorrectionDelays slice is pooled and only valid during the call.
	OnResult func(ScenarioResult)
	// Baseline is the failure-free sink-tuple volume the loss metric is
	// measured against; 0 runs one baseline simulation. The baseline
	// depends only on Setup and Horizon, so sweeps sharing both (e.g.
	// the same planner over several burst models) can reuse the
	// BaselineSinkTuples of an earlier Report — or, more conveniently,
	// share a BaselineCache.
	Baseline int
	// Baselines, when set together with BaselineKey, memoizes the
	// failure-free baseline volume per (BaselineKey, Horizon) across
	// campaigns: sweep cells sharing a Setup and horizon run the
	// baseline simulation once instead of once per cell. Ignored when
	// Baseline is non-zero.
	Baselines *BaselineCache
	// BaselineKey identifies the Setup in the BaselineCache. Callers
	// must choose keys so that equal keys imply baseline-equivalent
	// Setups (same topology, workload and engine config; placement and
	// failure model do not affect the failure-free baseline).
	BaselineKey string
	// DisableReuse forces a fresh Setup + engine.New per scenario
	// instead of resetting per-worker engines — the fallback for
	// environments whose factories are not safely reusable (e.g.
	// closures over shared mutable state). The determinism test pins
	// that both paths produce bit-identical reports.
	DisableReuse bool
}

// BaselineCache memoizes failure-free baseline sink volumes per
// (key, horizon) across campaigns. Safe for concurrent use.
type BaselineCache struct {
	mu sync.Mutex
	m  map[baselineKey]int
}

type baselineKey struct {
	key     string
	horizon sim.Time
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{m: make(map[baselineKey]int)}
}

// Get returns the cached baseline for (key, horizon), if any.
func (c *BaselineCache) Get(key string, horizon sim.Time) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[baselineKey{key, horizon}]
	return v, ok
}

// Put stores the baseline for (key, horizon).
func (c *BaselineCache) Put(key string, horizon sim.Time, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[baselineKey{key, horizon}] = v
}

// ScenarioResult is the outcome of one simulated scenario.
type ScenarioResult struct {
	Scenario Scenario
	// FailedTasks is the number of primary tasks hit by the scenario.
	FailedTasks int
	// Recovered reports whether every failed task caught up with its
	// pre-failure progress before the horizon.
	Recovered bool
	// WorstLatency is the maximum per-task recovery latency (detection
	// to catch-up, §VI) — the completion time of the whole recovery.
	// Only meaningful when Recovered.
	WorstLatency sim.Time
	// SinkTuples is the output volume observed at the sinks.
	SinkTuples int
	// OutputLoss is the relative output deficit vs the failure-free
	// baseline. Sink accounting deduplicates replayed batches, so the
	// loss needs no clamping.
	OutputLoss float64
	// TentativeFrac is the share of sink tuples first emitted tentative
	// (computed from incomplete input anywhere upstream). Requires
	// engine.Config.TentativeOutputs (EnvSpec.Tentative).
	TentativeFrac float64
	// CorrectedFrac is the share of tentative sink batches corrected by
	// the post-recovery amendment layer before the horizon.
	CorrectedFrac float64
	// CorrectionDelays are the per-batch times (virtual seconds) from
	// tentative emission to correction. On the streaming path (Config.
	// KeepResults off) the backing array is pooled: inside a
	// Config.OnResult callback the slice is valid only for the
	// duration of the call.
	CorrectionDelays []float64
}

// Dist summarises a sample distribution.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// NewDist computes the summary of a sample (nearest-rank percentiles).
// The zero Dist is returned for an empty sample.
func NewDist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Dist{
		Mean: sum / float64(len(s)),
		P50:  pick(0.50),
		P95:  pick(0.95),
		P99:  pick(0.99),
		Max:  s[len(s)-1],
	}
}

// Summary aggregates a campaign.
type Summary struct {
	Scenarios   int `json:"scenarios"`
	Unrecovered int `json:"unrecovered"`
	// Latency summarises the worst-task recovery latency (seconds) of
	// the scenarios that fully recovered.
	Latency Dist `json:"latency_s"`
	// Loss summarises the relative output loss of every scenario.
	Loss Dist `json:"output_loss"`
	// FailedTasks summarises the blast radius (failed primary tasks per
	// scenario).
	FailedTasks Dist `json:"failed_tasks"`
	// TentativeFrac summarises the per-scenario share of sink tuples
	// first emitted tentative; CorrectedFrac the share of tentative
	// sink batches corrected before the horizon, over the scenarios
	// that produced tentative output at all. Both are zero unless the
	// environment enables tentative outputs.
	TentativeFrac Dist `json:"tentative_fraction"`
	CorrectedFrac Dist `json:"corrected_fraction"`
	// TimeToCorrection summarises the per-batch correction delays
	// (seconds), pooled over every scenario of the campaign.
	TimeToCorrection Dist `json:"time_to_correction_s"`
}

// Report is the full outcome of one campaign.
type Report struct {
	// Results holds the per-scenario outcomes only when
	// Config.KeepResults was set; the streaming default leaves it nil.
	Results []ScenarioResult
	Summary Summary
	// BaselineSinkTuples is the failure-free output volume the loss
	// metric is measured against.
	BaselineSinkTuples int
}

// Run executes the campaign: one failure-free baseline simulation, then
// every scenario on the worker pool, streaming results in scenario
// order into sharded quantile-sketch accumulators (see Config.Shards).
// For a fixed Config (same scenarios, same Setup semantics, same shard
// count) the report is identical regardless of Workers. Memory stays
// flat in the scenario count unless KeepResults is set. A scenario
// error aborts the campaign promptly (remaining scenarios are not
// started) and Run returns the error of the smallest failing index.
func Run(cfg Config) (*Report, error) {
	if cfg.Setup == nil {
		return nil, fmt.Errorf("campaign: no Setup factory")
	}
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("campaign: no scenarios")
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = 120
	}
	// One engine per worker, reset between scenarios. A buffered channel
	// serves as the free list: a worker takes any idle engine (Reset
	// makes them interchangeable) and falls back to a fresh Setup when
	// none is idle yet.
	var pool chan *engine.Engine
	if !cfg.DisableReuse {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		pool = make(chan *engine.Engine, workers)
	}
	base := cfg.Baseline
	if base == 0 && cfg.Baselines != nil && cfg.BaselineKey != "" {
		if v, ok := cfg.Baselines.Get(cfg.BaselineKey, horizon); ok {
			base = v
		}
	}
	if base == 0 {
		baseline, err := runOne(cfg.Setup, pool, nil, horizon, false)
		if err != nil {
			return nil, fmt.Errorf("campaign: baseline run: %w", err)
		}
		baseline.release()
		base = baseline.res.SinkTuples
		if cfg.Baselines != nil && cfg.BaselineKey != "" {
			cfg.Baselines.Put(cfg.BaselineKey, horizon, base)
		}
	}

	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	aggs := make([]*aggregator, shards)
	for s := range aggs {
		aggs[s] = newAggregator()
	}
	var results []ScenarioResult
	if cfg.KeepResults {
		results = make([]ScenarioResult, len(cfg.Scenarios))
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := 4 * workers
	if window < 16 {
		window = 16
	}
	st := newStreamer(window, func(i int, e *entry) {
		aggs[i%shards].add(&e.res)
		if cfg.OnResult != nil {
			cfg.OnResult(e.res)
		}
		if cfg.KeepResults {
			results[i] = e.res
		} else {
			e.release()
		}
	})
	err := par.EachErr(len(cfg.Scenarios), cfg.Workers, func(i int) error {
		sc := cfg.Scenarios[i]
		e, err := runOne(cfg.Setup, pool, sc.Waves, horizon, cfg.KeepResults)
		if err != nil {
			st.abort()
			return fmt.Errorf("campaign: scenario %d (%s): %w", sc.Index, sc.Label, err)
		}
		e.res.Scenario = sc
		if base > 0 {
			e.res.OutputLoss = 1 - float64(e.res.SinkTuples)/float64(base)
		}
		st.deliver(i, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg := aggs[0]
	for s := 1; s < shards; s++ {
		agg.merge(aggs[s])
	}
	return &Report{
		Results:            results,
		Summary:            agg.summary(),
		BaselineSinkTuples: base,
	}, nil
}

// runOne executes one simulation with the given failure waves, taking a
// reusable engine from the pool (resetting it) when one is idle and
// returning it afterwards; with a nil pool every run builds a fresh
// environment. With keep false the correction delays land in a pooled
// buffer (released by entry.release once the reducer streamed them
// into the time-to-correction sketch) instead of a fresh allocation
// per scenario.
func runOne(setup func() (engine.Setup, error), pool chan *engine.Engine, waves []Wave, horizon sim.Time, keep bool) (entry, error) {
	var e *engine.Engine
	if pool != nil {
		select {
		case e = <-pool:
			e.Reset()
		default:
		}
	}
	if e == nil {
		s, err := setup()
		if err != nil {
			return entry{}, err
		}
		e, err = engine.New(s)
		if err != nil {
			return entry{}, err
		}
	}
	for _, w := range waves {
		e.ScheduleNodeFailures(w.Nodes, w.At)
	}
	e.Run(horizon)
	defer func() {
		if pool != nil {
			select {
			case pool <- e:
			default:
			}
		}
	}()
	out := entry{res: ScenarioResult{Recovered: true, SinkTuples: e.SinkTupleCount()}}
	res := &out.res
	acc := e.AccuracyStats()
	res.TentativeFrac = acc.TentativeFraction()
	res.CorrectedFrac = acc.CorrectedFraction()
	if n := len(acc.CorrectionDelays); n > 0 {
		if keep {
			res.CorrectionDelays = make([]float64, 0, n)
		} else {
			out.box = delayPool.Get().(*[]float64)
			res.CorrectionDelays = (*out.box)[:0]
		}
		for _, d := range acc.CorrectionDelays {
			res.CorrectionDelays = append(res.CorrectionDelays, float64(d))
		}
	}
	for _, st := range e.RecoveryStats() {
		res.FailedTasks++
		if !st.Recovered {
			res.Recovered = false
			continue
		}
		if lat := st.RecoveredAt - st.DetectedAt; lat > res.WorstLatency {
			res.WorstLatency = lat
		}
	}
	return out, nil
}
