package campaign

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/sim"
)

// Config describes one campaign: N scenarios run as independent engine
// simulations against instances of the same environment. By default the
// runner keeps one engine per worker and engine.Reset()s it between
// scenarios instead of rebuilding the environment per simulation;
// Reset is bit-identical to a fresh Setup, so results do not depend on
// which path (or worker) ran a scenario.
type Config struct {
	// Setup returns a fresh engine setup for one simulation. It must be
	// safe for concurrent calls and must rebuild anything a run mutates
	// (in particular the cluster — failure flags are per-run state);
	// the node IDs and failure-domain layout must be identical across
	// calls so that scenario node sets stay meaningful. The source and
	// operator factories must return equivalent fresh instances on
	// every call — engine reuse resets engines through those factories.
	Setup func() (engine.Setup, error)
	// Scenarios to execute, typically from Generate.
	Scenarios []Scenario
	// Horizon is the virtual run time of each simulation (default 120s).
	Horizon sim.Time
	// Workers bounds the worker pool; <=0 selects GOMAXPROCS, 1 runs
	// sequentially. Results stream into the reduction shards in
	// scenario-index order, so the campaign is deterministic for a
	// given seed and shard count regardless of Workers.
	Workers int
	// Shards is the number of reduction shards. The scenario index
	// space is cut into Shards contiguous blocks of ceil(N/Shards)
	// scenarios: scenario i folds (in index order) into the summary
	// sketches of shard i/blockSize, and the shards merge in shard
	// order into the final Summary. Block ownership makes every shard's
	// state a pure function of (scenario list, Shards) alone — a
	// contiguous scenario range owns whole shards, which is what lets a
	// distributed campaign (Partition/RunRangeContext/MergeShardStates)
	// reproduce the single-process Summary bit for bit. The summary
	// therefore depends on the shard count — fix it alongside the seed
	// for bit-reproducible reports — but never on Workers or on how
	// ranges were assigned to processes. <= 0 selects DefaultShards.
	Shards int
	// KeepResults retains every ScenarioResult in Report.Results. Off
	// by default: the streaming aggregation needs only O(Workers +
	// Shards) memory however many scenarios run, which is what makes
	// million-scenario sweeps possible; turning this on restores the
	// old linear-memory behaviour for callers that post-process
	// individual scenarios.
	KeepResults bool
	// OnResult, when set, receives every scenario result in strict
	// scenario-index order as soon as the reduction frontier reaches
	// it — the streaming alternative to KeepResults (per-scenario CSV
	// rows, progress reporting). It is called serially under the
	// reducer lock: keep it fast, and do not call back into the
	// campaign. Unless KeepResults is set, the result's
	// CorrectionDelays slice is pooled and only valid during the call.
	OnResult func(ScenarioResult)
	// Baseline is the failure-free sink-tuple volume the loss metric is
	// measured against; 0 runs one baseline simulation. The baseline
	// depends only on Setup and Horizon, so sweeps sharing both (e.g.
	// the same planner over several burst models) can reuse the
	// BaselineSinkTuples of an earlier Report — or, more conveniently,
	// share a BaselineCache.
	Baseline int
	// Baselines, when set together with BaselineKey, memoizes the
	// failure-free baseline volume per (BaselineKey, Horizon) across
	// campaigns: sweep cells sharing a Setup and horizon run the
	// baseline simulation once instead of once per cell. Ignored when
	// Baseline is non-zero.
	Baselines *BaselineCache
	// BaselineKey identifies the Setup in the BaselineCache. Callers
	// must choose keys so that equal keys imply baseline-equivalent
	// Setups (same topology, workload and engine config; placement and
	// failure model do not affect the failure-free baseline).
	BaselineKey string
	// DisableReuse forces a fresh Setup + engine.New per scenario
	// instead of resetting per-worker engines — the fallback for
	// environments whose factories are not safely reusable (e.g.
	// closures over shared mutable state). The determinism test pins
	// that both paths produce bit-identical reports.
	DisableReuse bool
	// StopTol > 0 enables CI-driven early stopping: the campaign halts
	// once the 95% confidence half-width of its p95 output-loss
	// estimate falls to StopTol or below. The rule is checked only at
	// shard-block boundaries over the merged prefix of completed
	// shards (see StopMonitor), so the decision is deterministic and a
	// distributed run stops at exactly the same scenario as a
	// single-process one. A stopped Report sets Stopped and its
	// Summary covers the executed prefix only. Scenario-level
	// execution (RunRangeContext) ignores the field — a worker sees
	// only its own range; stop decisions belong to whoever merges.
	StopTol float64
}

// BaselineCache memoizes failure-free baseline sink volumes per
// (key, horizon) across campaigns. Safe for concurrent use.
type BaselineCache struct {
	mu sync.Mutex
	m  map[baselineKey]int
}

type baselineKey struct {
	key     string
	horizon sim.Time
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{m: make(map[baselineKey]int)}
}

// Get returns the cached baseline for (key, horizon), if any.
func (c *BaselineCache) Get(key string, horizon sim.Time) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[baselineKey{key, horizon}]
	return v, ok
}

// Put stores the baseline for (key, horizon).
func (c *BaselineCache) Put(key string, horizon sim.Time, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[baselineKey{key, horizon}] = v
}

// ScenarioResult is the outcome of one simulated scenario.
type ScenarioResult struct {
	Scenario Scenario
	// FailedTasks is the number of primary tasks hit by the scenario.
	FailedTasks int
	// Recovered reports whether every failed task caught up with its
	// pre-failure progress before the horizon.
	Recovered bool
	// WorstLatency is the maximum per-task recovery latency (detection
	// to catch-up, §VI) — the completion time of the whole recovery.
	// Only meaningful when Recovered.
	WorstLatency sim.Time
	// SinkTuples is the output volume observed at the sinks.
	SinkTuples int
	// OutputLoss is the relative output deficit vs the failure-free
	// baseline. Sink accounting deduplicates replayed batches, so the
	// loss needs no clamping.
	OutputLoss float64
	// TentativeFrac is the share of sink tuples first emitted tentative
	// (computed from incomplete input anywhere upstream). Requires
	// engine.Config.TentativeOutputs (EnvSpec.Tentative).
	TentativeFrac float64
	// CorrectedFrac is the share of tentative sink batches corrected by
	// the post-recovery amendment layer before the horizon.
	CorrectedFrac float64
	// CorrectionDelays are the per-batch times (virtual seconds) from
	// tentative emission to correction. On the streaming path (Config.
	// KeepResults off) the backing array is pooled: inside a
	// Config.OnResult callback the slice is valid only for the
	// duration of the call.
	CorrectionDelays []float64
}

// Dist summarises a sample distribution.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// NewDist computes the summary of a sample (nearest-rank percentiles).
// The zero Dist is returned for an empty sample.
func NewDist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Dist{
		Mean: sum / float64(len(s)),
		P50:  pick(0.50),
		P95:  pick(0.95),
		P99:  pick(0.99),
		Max:  s[len(s)-1],
	}
}

// Summary aggregates a campaign.
type Summary struct {
	Scenarios   int `json:"scenarios"`
	Unrecovered int `json:"unrecovered"`
	// ESS is the effective sample size of the loss estimate: exactly
	// Scenarios for an unweighted campaign, and the variance-ratio
	// effective count for an importance-sampled one — the number of
	// plain Monte-Carlo scenarios that would estimate the mean loss
	// equally well. A well-tilted rare-event campaign reports
	// ESS > Scenarios; that surplus is the statistical speedup the
	// effective_samples_per_s benchmark metric measures.
	ESS float64 `json:"effective_samples"`
	// Latency summarises the worst-task recovery latency (seconds) of
	// the scenarios that fully recovered.
	Latency Dist `json:"latency_s"`
	// Loss summarises the relative output loss of every scenario.
	Loss Dist `json:"output_loss"`
	// FailedTasks summarises the blast radius (failed primary tasks per
	// scenario).
	FailedTasks Dist `json:"failed_tasks"`
	// TentativeFrac summarises the per-scenario share of sink tuples
	// first emitted tentative; CorrectedFrac the share of tentative
	// sink batches corrected before the horizon, over the scenarios
	// that produced tentative output at all. Both are zero unless the
	// environment enables tentative outputs.
	TentativeFrac Dist `json:"tentative_fraction"`
	CorrectedFrac Dist `json:"corrected_fraction"`
	// TimeToCorrection summarises the per-batch correction delays
	// (seconds), pooled over every scenario of the campaign.
	TimeToCorrection Dist `json:"time_to_correction_s"`
}

// Report is the full outcome of one campaign.
type Report struct {
	// Results holds the per-scenario outcomes only when
	// Config.KeepResults was set; the streaming default leaves it nil.
	Results []ScenarioResult
	Summary Summary
	// BaselineSinkTuples is the failure-free output volume the loss
	// metric is measured against.
	BaselineSinkTuples int
	// Stopped reports that the campaign halted early under
	// Config.StopTol: the Summary covers the executed shard prefix,
	// not the full scenario list. False on an exhausted run (even one
	// whose final CI would have satisfied the tolerance).
	Stopped bool
}

// ConfigError reports one invalid Config field from Validate: which
// field, and why. Errors returned by Run/RunContext/Partition/
// RunRangeContext for configuration mistakes unwrap to this type.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("campaign: invalid Config.%s: %s", e.Field, e.Reason)
}

// Validate checks the configuration and returns a *ConfigError naming
// the first invalid field, or nil. Run, RunContext, Partition and
// RunRangeContext all validate with it, so configuration mistakes
// surface the same typed error on every execution path.
func (cfg Config) Validate() error {
	switch {
	case cfg.Setup == nil:
		return &ConfigError{"Setup", "no engine setup factory"}
	case len(cfg.Scenarios) == 0:
		return &ConfigError{"Scenarios", "no scenarios"}
	case cfg.Horizon < 0:
		return &ConfigError{"Horizon", fmt.Sprintf("negative horizon %v", cfg.Horizon)}
	case cfg.Baseline < 0:
		return &ConfigError{"Baseline", fmt.Sprintf("negative baseline volume %d", cfg.Baseline)}
	case cfg.BaselineKey != "" && cfg.Baselines == nil:
		return &ConfigError{"BaselineKey", "set without a Baselines cache"}
	case cfg.StopTol < 0:
		return &ConfigError{"StopTol", fmt.Sprintf("negative stop tolerance %v", cfg.StopTol)}
	}
	return nil
}

// resolved returns the config with defaulted execution parameters
// (horizon, worker count, shard count) filled in.
func (cfg Config) resolved() Config {
	if cfg.Horizon == 0 {
		cfg.Horizon = 120
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	return cfg
}

// newEnginePool builds the per-campaign engine free list: one engine
// per worker, reset between scenarios. A buffered channel serves as
// the free list — a worker takes any idle engine (Reset makes them
// interchangeable) and falls back to a fresh Setup when none is idle
// yet. Nil when reuse is disabled. cfg must be resolved.
func newEnginePool(cfg Config) chan *engine.Engine {
	if cfg.DisableReuse {
		return nil
	}
	return make(chan *engine.Engine, cfg.Workers)
}

// resolveBaseline returns the failure-free sink volume the loss metric
// is measured against: the explicit Config.Baseline, a BaselineCache
// hit, or one baseline simulation (whose engine seeds the pool). cfg
// must be resolved.
func resolveBaseline(cfg Config, pool chan *engine.Engine) (int, error) {
	if cfg.Baseline > 0 {
		return cfg.Baseline, nil
	}
	if cfg.Baselines != nil && cfg.BaselineKey != "" {
		if v, ok := cfg.Baselines.Get(cfg.BaselineKey, cfg.Horizon); ok {
			return v, nil
		}
	}
	baseline, err := runOne(cfg.Setup, pool, nil, cfg.Horizon, false)
	if err != nil {
		return 0, fmt.Errorf("campaign: baseline run: %w", err)
	}
	baseline.release()
	base := baseline.res.SinkTuples
	if cfg.Baselines != nil && cfg.BaselineKey != "" {
		cfg.Baselines.Put(cfg.BaselineKey, cfg.Horizon, base)
	}
	return base, nil
}

// BaselineVolume computes (or fetches from the cache) the campaign's
// failure-free baseline sink volume without running any scenarios. The
// coordinator of a distributed campaign calls it once and ships the
// volume to every worker, so all ranges measure loss against the same
// baseline the single-process run would use.
func BaselineVolume(cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return resolveBaseline(cfg.resolved(), nil)
}

// Run executes the campaign: one failure-free baseline simulation, then
// every scenario on the worker pool, streaming results in scenario
// order into sharded quantile-sketch accumulators (see Config.Shards).
// For a fixed Config (same scenarios, same Setup semantics, same shard
// count) the report is identical regardless of Workers. Memory stays
// flat in the scenario count unless KeepResults is set. A scenario
// error aborts the campaign promptly (remaining scenarios are not
// started) and Run returns the error of the smallest failing index.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: once ctx is done no further
// scenario is started (simulations already in flight finish first) and
// the context's error is returned — unless a scenario failed before
// the cancellation, in which case that error wins. The coordinator's
// per-worker cancel, a caller's timeout, and fail-fast abort all share
// this one mechanism.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.resolved()
	pool := newEnginePool(cfg)
	base, err := resolveBaseline(cfg, pool)
	if err != nil {
		return nil, err
	}
	if cfg.StopTol > 0 {
		return runStopping(ctx, cfg, pool, base)
	}
	aggs, results, err := runShards(ctx, cfg, Range{0, len(cfg.Scenarios)}, pool, base)
	if err != nil {
		return nil, err
	}
	agg := aggs[0]
	for s := 1; s < len(aggs); s++ {
		agg.merge(aggs[s])
	}
	return &Report{
		Results:            results,
		Summary:            agg.summary(),
		BaselineSinkTuples: base,
	}, nil
}

// runStopping is RunContext's early-stopping path: the shard blocks
// run one at a time (the worker pool still parallelises within each
// block), and after every block the serialised shard state feeds the
// StopMonitor — the exact bytes a distributed coordinator would
// observe, so both fire at the same checkpoint. On fire the remaining
// blocks are never started and the summary merges the executed prefix
// only. cfg must be resolved and carry StopTol > 0.
func runStopping(ctx context.Context, cfg Config, pool chan *engine.Engine, base int) (*Report, error) {
	n := len(cfg.Scenarios)
	block := blockSize(n, cfg.Shards)
	mon := NewStopMonitor(cfg)
	var (
		merged  *aggregator
		results []ScenarioResult
		stopped bool
	)
	for lo := 0; lo < n && !stopped; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		aggs, res, err := runShards(ctx, cfg, Range{lo, hi}, pool, base)
		if err != nil {
			return nil, err
		}
		if cfg.KeepResults {
			results = append(results, res...)
		}
		st, err := aggs[0].state(lo / block)
		if err != nil {
			return nil, err
		}
		if err := mon.Observe(st); err != nil {
			return nil, err
		}
		if merged == nil {
			merged = aggs[0]
		} else {
			merged.merge(aggs[0])
		}
		stopped = mon.Fired()
	}
	return &Report{
		Results:            results,
		Summary:            merged.summary(),
		BaselineSinkTuples: base,
		Stopped:            stopped,
	}, nil
}

// runOne executes one simulation with the given failure waves, taking a
// reusable engine from the pool (resetting it) when one is idle and
// returning it afterwards; with a nil pool every run builds a fresh
// environment. With keep false the correction delays land in a pooled
// buffer (released by entry.release once the reducer streamed them
// into the time-to-correction sketch) instead of a fresh allocation
// per scenario.
func runOne(setup func() (engine.Setup, error), pool chan *engine.Engine, waves []Wave, horizon sim.Time, keep bool) (entry, error) {
	var e *engine.Engine
	if pool != nil {
		select {
		case e = <-pool:
			e.Reset()
		default:
		}
	}
	if e == nil {
		s, err := setup()
		if err != nil {
			return entry{}, err
		}
		e, err = engine.New(s)
		if err != nil {
			return entry{}, err
		}
	}
	for _, w := range waves {
		e.ScheduleNodeFailures(w.Nodes, w.At)
	}
	e.Run(horizon)
	defer func() {
		if pool != nil {
			select {
			case pool <- e:
			default:
			}
		}
	}()
	out := entry{res: ScenarioResult{Recovered: true, SinkTuples: e.SinkTupleCount()}}
	res := &out.res
	acc := e.AccuracyStats()
	res.TentativeFrac = acc.TentativeFraction()
	res.CorrectedFrac = acc.CorrectedFraction()
	if n := len(acc.CorrectionDelays); n > 0 {
		if keep {
			res.CorrectionDelays = make([]float64, 0, n)
		} else {
			out.box = delayPool.Get().(*[]float64)
			res.CorrectionDelays = (*out.box)[:0]
		}
		for _, d := range acc.CorrectionDelays {
			res.CorrectionDelays = append(res.CorrectionDelays, float64(d))
		}
	}
	for _, st := range e.RecoveryStats() {
		res.FailedTasks++
		if !st.Recovered {
			res.Recovered = false
			continue
		}
		if lat := st.RecoveredAt - st.DetectedAt; lat > res.WorstLatency {
			res.WorstLatency = lat
		}
	}
	return out, nil
}
