package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Canonical determinism digests. The golden-hash test in this package,
// the distributed-golden test in internal/coord and ad-hoc log
// comparisons all reduce campaign output to the same two digests, so
// "bit-identical" means the same thing everywhere: floats are
// formatted with strconv 'g'/-1 — the shortest exact representation —
// and hashed with SHA-256, so two values digest equal iff they are
// bit-identical.

// shortestExact is the canonical float rendering of the digests.
func shortestExact(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReportDigest reduces a campaign Report to a canonical digest
// covering every per-scenario outcome the campaign reports (recovery
// latency, output loss, tentative/corrected fractions, correction
// delays) plus the baseline volume.
func ReportDigest(rep *Report) string {
	f := shortestExact
	h := sha256.New()
	fmt.Fprintf(h, "baseline=%d\n", rep.BaselineSinkTuples)
	for _, r := range rep.Results {
		fmt.Fprintf(h, "%d|%s|%s|failed=%d|rec=%v|lat=%s|sink=%d|loss=%s|tent=%s|corr=%s|delays=",
			r.Scenario.Index, r.Scenario.Model, r.Scenario.Label,
			r.FailedTasks, r.Recovered, f(float64(r.WorstLatency)),
			r.SinkTuples, f(r.OutputLoss), f(r.TentativeFrac), f(r.CorrectedFrac))
		for _, d := range r.CorrectionDelays {
			fmt.Fprintf(h, "%s,", f(d))
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SummaryDigest digests the sketch-path Summary: scenario counts plus
// every quantile of every distribution.
func SummaryDigest(s Summary) string {
	f := shortestExact
	h := sha256.New()
	fmt.Fprintf(h, "scen=%d|unrec=%d\n", s.Scenarios, s.Unrecovered)
	for _, d := range []Dist{s.Latency, s.Loss, s.FailedTasks, s.TentativeFrac, s.CorrectedFrac, s.TimeToCorrection} {
		fmt.Fprintf(h, "%s|%s|%s|%s|%s\n", f(d.Mean), f(d.P50), f(d.P95), f(d.P99), f(d.Max))
	}
	return hex.EncodeToString(h.Sum(nil))
}
