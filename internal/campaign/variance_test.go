package campaign

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// smallCluster builds the small preset's cluster, the substrate of the
// generation-level variance tests. The explicit multi-rack layout
// gives Cascade sibling racks to spread to (the default small layout
// has one rack per zone, which would leave the tilt nothing to act
// on).
func smallCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: "greedy", Layout: cluster.Layout{Zones: 2, RacksPerZone: 3}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCRNPairingIdenticalAcrossPlanners is the CRN property test: two
// campaign cells that differ in planner and replica placement — the
// head-to-head axes — draw bit-identical failure scenarios (waves,
// labels, weights) from the same CRN seed, because scenario i is a
// pure function of (Seed, i) and the identically laid-out cluster.
func TestCRNPairingIdenticalAcrossPlanners(t *testing.T) {
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec := GenSpec{Seed: 99, Scenarios: 64, Model: Cascade, Correlation: 0.3, CRN: true, Tilt: 3}
	var first []Scenario
	for _, planner := range []string{"greedy", "sa-corr"} {
		for _, placement := range cluster.PlacementPolicies {
			env, err := NewEnv(EnvSpec{Topo: topo, Planner: planner, Placement: placement})
			if err != nil {
				t.Fatal(err)
			}
			c, err := env.Cluster()
			if err != nil {
				t.Fatal(err)
			}
			scs, err := Generate(c, spec)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = scs
				continue
			}
			if !reflect.DeepEqual(scs, first) {
				t.Fatalf("%s/%s drew different CRN scenarios than the first cell", planner, placement)
			}
		}
	}
}

// TestCRNSubstreamProperties: CRN scenarios are derived per index, not
// sequentially, so a campaign prefix regenerates bit-identically at
// any campaign size — the property that lets distributed ranges
// regenerate scenarios without substream offsets.
func TestCRNSubstreamProperties(t *testing.T) {
	c := smallCluster(t)
	spec := GenSpec{Seed: 7, Scenarios: 40, Model: KOfRack, Correlation: 0.4, CRN: true}
	a, err := Generate(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix stability: a shorter campaign over the same seed is an
	// exact prefix — the property that lets distributed ranges
	// regenerate scenarios without substream offsets.
	short := spec
	short.Scenarios = 17
	b, err := Generate(c, short)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a[:17], b) {
		t.Fatal("CRN scenarios are not prefix-stable in the campaign size")
	}
	// Replays are bit-identical.
	a2, err := Generate(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, a2) {
		t.Fatal("CRN generation is not reproducible")
	}
	// Untilted generation carries unit weights on both RNG paths.
	for _, sc := range a {
		if sc.Weight != 1 {
			t.Fatalf("untilted CRN scenario %d has weight %v, want 1", sc.Index, sc.Weight)
		}
	}
}

// burstSize is the estimand of the reweighting cross-check: the number
// of distinct nodes a scenario fails.
func burstSize(sc Scenario) float64 {
	n := 0
	for _, w := range sc.Waves {
		n += len(w.Nodes)
	}
	return float64(n)
}

// TestReweightedMeanMatchesMonteCarlo10k is the importance-sampling
// property test: over 10k scenarios, the tilted sampler's
// self-normalised reweighted mean burst size must agree with the
// plain Monte-Carlo mean under the nominal correlation within their
// combined confidence intervals, for both tilted models.
func TestReweightedMeanMatchesMonteCarlo10k(t *testing.T) {
	c := smallCluster(t)
	const n = 10_000
	for _, model := range []Model{KOfRack, Cascade} {
		plain, err := Generate(c, GenSpec{Seed: 3, Scenarios: n, Model: model, Correlation: 0.15, CRN: true})
		if err != nil {
			t.Fatal(err)
		}
		tilted, err := Generate(c, GenSpec{Seed: 4, Scenarios: n, Model: model, Correlation: 0.15, CRN: true, Tilt: 6})
		if err != nil {
			t.Fatal(err)
		}
		var mcSum, mcSS float64
		for _, sc := range plain {
			x := burstSize(sc)
			mcSum += x
			mcSS += x * x
		}
		mcMean := mcSum / n
		mcSD := math.Sqrt(mcSS/n - mcMean*mcMean)

		var sw, swx, sw2, swDev2 float64
		for _, sc := range tilted {
			x := burstSize(sc)
			sw += sc.Weight
			swx += sc.Weight * x
			sw2 += sc.Weight * sc.Weight
		}
		isMean := swx / sw
		for _, sc := range tilted {
			d := burstSize(sc) - isMean
			swDev2 += sc.Weight * sc.Weight * d * d
		}
		// Delta-method SE of the self-normalised estimator plus the MC
		// SE; 4 sigma keeps the deterministic check far from flaking
		// while still catching any systematic likelihood-ratio bug.
		isSE := math.Sqrt(swDev2) / sw
		mcSE := mcSD / math.Sqrt(n)
		tol := 4 * (isSE + mcSE)
		if diff := math.Abs(isMean - mcMean); diff > tol {
			t.Fatalf("%s: reweighted mean %v vs MC mean %v differ by %v (> %v): likelihood ratios are biased",
				model, isMean, mcMean, diff, tol)
		}
		// The tilted sampler must actually over-draw large bursts.
		if isMeanRaw := func() float64 {
			var s float64
			for _, sc := range tilted {
				s += burstSize(sc)
			}
			return s / n
		}(); isMeanRaw <= mcMean {
			t.Fatalf("%s: tilted raw mean burst %v not above nominal %v; tilt had no effect", model, isMeanRaw, mcMean)
		}
	}
}

// TestWeightedCampaignDeterministicAcrossWorkers pins the acceptance
// bit: with CRN, tilting and early stopping all enabled, the summary
// digest is identical across worker counts and engine-reuse modes.
func TestWeightedCampaignDeterministicAcrossWorkers(t *testing.T) {
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: "greedy", Tentative: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Generate(c, GenSpec{Seed: 17, Scenarios: 120, Model: Cascade, Correlation: 0.1, CRN: true, Tilt: 4})
	if err != nil {
		t.Fatal(err)
	}
	var digest string
	var stopped bool
	for _, cse := range []struct {
		workers      int
		disableReuse bool
	}{{1, false}, {0, false}, {0, true}} {
		rep, err := Run(Config{
			Setup:        env.Setup,
			Scenarios:    scs,
			Horizon:      60,
			Workers:      cse.workers,
			Shards:       8,
			StopTol:      10, // fires at the first eligible checkpoint
			DisableReuse: cse.disableReuse,
		})
		if err != nil {
			t.Fatal(err)
		}
		if digest == "" {
			digest, stopped = SummaryDigest(rep.Summary), rep.Stopped
			if !rep.Stopped {
				t.Fatal("stop rule did not fire; the test tolerance should guarantee it")
			}
			if rep.Summary.Scenarios >= len(scs) {
				t.Fatalf("stopped run covers %d of %d scenarios", rep.Summary.Scenarios, len(scs))
			}
			continue
		}
		if got := SummaryDigest(rep.Summary); got != digest || rep.Stopped != stopped {
			t.Fatalf("workers=%d reuse=%v: summary digest %s (stopped=%v), want %s (stopped=%v)",
				cse.workers, !cse.disableReuse, got, rep.Stopped, digest, stopped)
		}
	}
}

// TestStopMonitorContract covers the monitor's ordering rules: shard
// states must arrive in order, nothing is accepted after the fire, and
// the nil monitor never fires.
func TestStopMonitorContract(t *testing.T) {
	var nilMon *StopMonitor
	if nilMon.Fired() || nilMon.StopShard() != -1 || nilMon.PrefixScenarios() != 0 {
		t.Fatal("nil monitor must behave as the never-stopping monitor")
	}
	if !math.IsInf(nilMon.HalfWidth(), 1) {
		t.Fatal("nil monitor half-width must be +Inf")
	}

	env, err := NewEnv(EnvSpec{Topo: mustTopo(t), Planner: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Generate(c, GenSpec{Seed: 1, Scenarios: 160, Model: SingleNode})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Setup: env.Setup, Scenarios: scs, Shards: 8, StopTol: 10}
	if NewStopMonitor(Config{Setup: env.Setup, Scenarios: scs, Shards: 8}) != nil {
		t.Fatal("StopTol=0 must yield a nil monitor")
	}
	mon := NewStopMonitor(cfg)
	mk := func(shard, scenarios int) ShardState {
		a := newAggregator(false)
		for i := 0; i < scenarios; i++ {
			a.add(&ScenarioResult{Recovered: true, OutputLoss: 0.25})
		}
		st, err := a.state(shard)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if err := mon.Observe(mk(1, 20)); err == nil {
		t.Fatal("out-of-order shard accepted")
	}
	for s := 0; s < 8; s++ {
		if mon.Fired() {
			break
		}
		if err := mon.Observe(mk(s, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Fired() {
		t.Fatal("constant-loss campaign never satisfied a huge tolerance")
	}
	// Constant loss: zero half-width at the first eligible checkpoint
	// (80 scenarios ≥ the 64-sample guard), stop shard 3.
	if mon.StopShard() != 3 || mon.PrefixScenarios() != 80 {
		t.Fatalf("fired at shard %d after %d scenarios, want shard 3 after 80", mon.StopShard(), mon.PrefixScenarios())
	}
	if err := mon.Observe(mk(4, 20)); err == nil {
		t.Fatal("state accepted after the stop rule fired")
	}
}

func mustTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := PresetTopology(TopoSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestPairedSummaryStats checks the paired-difference accumulator on a
// hand-computable sample.
func TestPairedSummaryStats(t *testing.T) {
	p := NewPaired(4)
	base := []float64{1, 2, 3, 4}
	other := []float64{1.5, 2.5, 3.5, 10}
	for i := range base {
		p.ObserveBase(i, base[i])
		p.ObserveOther(i, other[i])
	}
	// Index observed by one side only must be excluded.
	p.ObserveBase(5, 100)
	s := p.Summary()
	if s.N != 4 {
		t.Fatalf("N = %d, want 4", s.N)
	}
	// Deltas: 0.5, 0.5, 0.5, 6 → mean 1.875, p50 = 0.5, p95 = 6.
	if math.Abs(s.MeanDelta-1.875) > 1e-12 {
		t.Fatalf("MeanDelta = %v, want 1.875", s.MeanDelta)
	}
	if s.DeltaP50 != 0.5 || s.DeltaP95 != 6 {
		t.Fatalf("DeltaP50/DeltaP95 = %v/%v, want 0.5/6", s.DeltaP50, s.DeltaP95)
	}
	if s.MeanCI <= 0 {
		t.Fatalf("MeanCI = %v, want > 0", s.MeanCI)
	}
	if empty := NewPaired(3).Summary(); empty != (PairedSummary{}) {
		t.Fatalf("empty paired summary = %+v, want zero", empty)
	}
}
