package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

// TestPartitionCoversAligned: partitions cover the index space exactly
// once with contiguous, shard-block-aligned ranges, for assorted
// scenario counts, shard counts and part counts.
func TestPartitionCoversAligned(t *testing.T) {
	for _, tc := range []struct{ n, shards, parts int }{
		{10, 4, 2}, {10, 4, 100}, {1, 1, 1}, {7, 8, 3}, {1000, 8, 5},
		{1000, 16, 16}, {12, 4, 3}, {12, 4, 4}, {5000, 8, 7},
	} {
		cfg := Config{Scenarios: make([]Scenario, tc.n), Shards: tc.shards}
		ranges, err := Partition(cfg, tc.parts)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(ranges) == 0 || len(ranges) > tc.parts {
			t.Fatalf("%+v: %d ranges", tc, len(ranges))
		}
		block := blockSize(tc.n, tc.shards)
		next := 0
		for _, r := range ranges {
			if r.Lo != next {
				t.Fatalf("%+v: range %s does not continue at %d", tc, r, next)
			}
			if err := r.validate(tc.n, block); err != nil {
				t.Fatalf("%+v: %v", tc, err)
			}
			next = r.Hi
		}
		if next != tc.n {
			t.Fatalf("%+v: partition ends at %d of %d", tc, next, tc.n)
		}
	}
	if _, err := Partition(Config{}, 2); err == nil {
		t.Fatal("empty scenario list accepted")
	}
	if _, err := Partition(Config{Scenarios: make([]Scenario, 5)}, 0); err == nil {
		t.Fatal("zero parts accepted")
	}
}

// TestRangeMergeMatchesRun is the heart of the distributed-campaign
// determinism guarantee, in process: running the golden campaign as
// shard-aligned ranges (each returning serialised shard states, pushed
// through a JSON round trip as on the wire) and merging the states
// must reproduce the single-process Summary bit for bit, for several
// partitionings — including ranges executed in scrambled order.
func TestRangeMergeMatchesRun(t *testing.T) {
	env, scs := goldenCampaign(t)
	cfg := Config{Setup: env.Setup, Scenarios: scs, Horizon: 90, Shards: 4}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Baseline = want.BaselineSinkTuples // skip redundant baseline re-runs
	for _, parts := range []int{1, 2, 3, 4} {
		ranges, err := Partition(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		var states []ShardState
		// Execute ranges back to front: state order must not matter.
		for i := len(ranges) - 1; i >= 0; i-- {
			st, err := RunRange(cfg, ranges[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded []ShardState
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatal(err)
			}
			states = append(states, decoded...)
		}
		sum, err := MergeShardStates(states)
		if err != nil {
			t.Fatal(err)
		}
		if sum != want.Summary {
			t.Fatalf("parts=%d: merged summary differs from single-process run:\n%+v\n%+v", parts, sum, want.Summary)
		}
		if got, wantH := SummaryDigest(sum), SummaryDigest(want.Summary); got != wantH {
			t.Fatalf("parts=%d: summary hash %s, want %s", parts, got, wantH)
		}
	}
}

// TestRunRangeRejections: misaligned ranges and KeepResults are typed
// errors on the range path.
func TestRunRangeRejections(t *testing.T) {
	env, scs := goldenCampaign(t) // 12 scenarios; Shards 4 -> block 3
	cfg := Config{Setup: env.Setup, Scenarios: scs, Horizon: 90, Shards: 4, Baseline: 1}
	if _, err := RunRange(cfg, Range{1, 6}); err == nil {
		t.Error("misaligned range accepted")
	}
	if _, err := RunRange(cfg, Range{0, 24}); err == nil {
		t.Error("out-of-space range accepted")
	}
	keep := cfg
	keep.KeepResults = true
	_, err := RunRange(keep, Range{0, 3})
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "KeepResults" {
		t.Errorf("KeepResults on the range path: err = %v, want ConfigError{KeepResults}", err)
	}
}

// TestMergeShardStatesErrors: empty input, duplicate shards and
// corrupted sketch bytes are rejected.
func TestMergeShardStatesErrors(t *testing.T) {
	env, scs := goldenCampaign(t)
	cfg := Config{Setup: env.Setup, Scenarios: scs, Horizon: 90, Shards: 4, Baseline: 1000}
	states, err := RunRange(cfg, Range{0, len(scs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardStates(nil); err == nil {
		t.Error("empty state list accepted")
	}
	if _, err := MergeShardStates(append(states, states[0])); err == nil {
		t.Error("duplicate shard accepted")
	}
	bad := append([]ShardState(nil), states...)
	bad[1].Loss = bad[1].Loss[:len(bad[1].Loss)-3]
	if _, err := MergeShardStates(bad); err == nil {
		t.Error("corrupted sketch state accepted")
	}
}

// TestRunContextCancel: a cancelled context stops the campaign
// promptly (scenarios in flight finish, the rest are never started)
// and surfaces the context error; a pre-cancelled context runs
// nothing.
func TestRunContextCancel(t *testing.T) {
	env := testEnv(t, "")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Generate(c, GenSpec{Seed: 3, Scenarios: 5000, Model: SingleNode, Correlation: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, err = RunContext(ctx, Config{
		Setup:     env.Setup,
		Scenarios: scenarios,
		Horizon:   40,
		Workers:   4,
		OnResult: func(ScenarioResult) {
			if done.Add(1) == 10 {
				cancel()
			}
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := done.Load(); n > 500 {
		t.Fatalf("%d of 5000 scenarios ran after cancellation at 10", n)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := RunContext(pre, Config{Setup: env.Setup, Scenarios: scenarios, Horizon: 40, Baseline: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v", err)
	}
}
