package campaign

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/par"
)

// Distributed campaigns. Config.Shards cuts the scenario index space
// into contiguous blocks of blockSize(N, Shards) scenarios, each owned
// by one reduction shard. Partition cuts that same space into
// block-aligned Ranges; RunRangeContext executes one range and returns
// the serialised sketch state of every shard the range owns; and
// MergeShardStates folds the states of all ranges — in shard order —
// into a Summary.
//
// Determinism argument: a shard's sketch state is a pure function of
// the Add sequence it saw, and with block ownership that sequence is
// exactly the shard's own scenarios in index order — never interleaved
// with another range's. Sketch serialisation is bit-exact and shard
// merging happens in shard order at the coordinator, identical to the
// merge loop of the single-process RunContext. Hence, for the same
// (scenario list, Shards), the merged Summary is bit-identical to the
// single-process one regardless of how many ranges or processes the
// campaign was split across, or which worker ran which range.

// Range is a half-open interval [Lo, Hi) of a campaign's scenario
// index space. Ranges handed to RunRangeContext must be aligned to the
// shard blocks of the Config that produced them (Partition guarantees
// this), so every range owns whole reduction shards.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of scenarios in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// blockSize returns the length of one reduction-shard block: scenario
// i belongs to shard i/blockSize (see Config.Shards).
func blockSize(n, shards int) int { return (n + shards - 1) / shards }

// validate checks that the range lies inside [0, n) and is aligned to
// shard blocks of the given size (the tail block may be short).
func (r Range) validate(n, block int) error {
	if r.Lo < 0 || r.Hi > n || r.Lo >= r.Hi {
		return fmt.Errorf("campaign: range %s outside the scenario space [0,%d)", r, n)
	}
	if r.Lo%block != 0 || (r.Hi%block != 0 && r.Hi != n) {
		return fmt.Errorf("campaign: range %s not aligned to shard blocks of %d scenarios", r, block)
	}
	return nil
}

// Partition cuts the campaign's scenario index space into at most
// parts contiguous, shard-block-aligned Ranges of near-equal size,
// covering every index exactly once. Fewer ranges come back when the
// shard count does not support parts ranges (a range must own at
// least one whole shard block). The partition depends only on
// (len(Scenarios), Shards, parts) — never on worker identity — so any
// assignment of the returned ranges to processes reproduces the same
// Summary.
func Partition(cfg Config, parts int) ([]Range, error) {
	if len(cfg.Scenarios) == 0 {
		return nil, &ConfigError{"Scenarios", "no scenarios to partition"}
	}
	if parts <= 0 {
		return nil, fmt.Errorf("campaign: need a positive range count, got %d", parts)
	}
	n := len(cfg.Scenarios)
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	block := blockSize(n, shards)
	blocks := (n + block - 1) / block
	if parts > blocks {
		parts = blocks
	}
	out := make([]Range, 0, parts)
	for p := 0; p < parts; p++ {
		lo := p * blocks / parts * block
		hi := (p + 1) * blocks / parts * block
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out, nil
}

// runShards executes the scenarios of one shard-aligned range on the
// worker pool, streaming results in scenario-index order into the
// aggregators of the shard blocks the range owns. It returns those
// aggregators in shard order (and the retained per-scenario results
// when KeepResults is set — indexed relative to r.Lo). cfg must be
// resolved and the baseline already known.
func runShards(ctx context.Context, cfg Config, r Range, pool chan *engine.Engine, base int) ([]*aggregator, []ScenarioResult, error) {
	n := len(cfg.Scenarios)
	block := blockSize(n, cfg.Shards)
	if err := r.validate(n, block); err != nil {
		return nil, nil, err
	}
	first := r.Lo / block
	weighted := scenariosWeighted(cfg.Scenarios)
	aggs := make([]*aggregator, (r.Hi-1)/block-first+1)
	for s := range aggs {
		aggs[s] = newAggregator(weighted)
	}
	var results []ScenarioResult
	if cfg.KeepResults {
		results = make([]ScenarioResult, r.Len())
	}
	window := 4 * cfg.Workers
	if window < 16 {
		window = 16
	}
	st := newStreamer(window, func(j int, e *entry) {
		aggs[(r.Lo+j)/block-first].add(&e.res)
		if cfg.OnResult != nil {
			cfg.OnResult(e.res)
		}
		if cfg.KeepResults {
			results[j] = e.res
		} else {
			e.release()
		}
	})
	stop := watchCancel(ctx, st)
	defer stop()
	err := par.EachErrCtx(ctx, r.Len(), cfg.Workers, func(j int) error {
		sc := cfg.Scenarios[r.Lo+j]
		e, err := runOne(cfg.Setup, pool, sc.Waves, cfg.Horizon, cfg.KeepResults)
		if err != nil {
			st.abort()
			return fmt.Errorf("campaign: scenario %d (%s): %w", sc.Index, sc.Label, err)
		}
		e.res.Scenario = sc
		if base > 0 {
			e.res.OutputLoss = 1 - float64(e.res.SinkTuples)/float64(base)
		}
		st.deliver(j, e)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return aggs, results, nil
}

// watchCancel aborts the streamer when ctx is cancelled, so workers
// blocked on the reorder window wake up and observe the cancellation
// instead of wedging; the returned stop function ends the watch.
func watchCancel(ctx context.Context, st *streamer) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.abort()
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// ShardState is the serialisable reduction state of one shard: the
// exact counters plus the binary encoding of every metric sketch (see
// sketch.MarshalBinary). It is the unit a distributed campaign ships
// from workers back to the coordinator; JSON encodes the sketch bytes
// as base64.
type ShardState struct {
	// Shard is the shard index in [0, Shards); MergeShardStates merges
	// states in this order.
	Shard       int    `json:"shard"`
	Scenarios   int    `json:"scenarios"`
	Unrecovered int    `json:"unrecovered"`
	Latency     []byte `json:"latency"`
	Loss        []byte `json:"loss"`
	FailedTasks []byte `json:"failed_tasks"`
	Tentative   []byte `json:"tentative"`
	Corrected   []byte `json:"corrected"`
	T2C         []byte `json:"t2c"`
	// Weighted marks an importance-sampled shard: the sketch bytes
	// above are sketch.Weighted encodings, and the exact moment
	// counters below carry the effective-sample-size state (see
	// aggregator). All shards of one campaign agree on the mode.
	Weighted bool    `json:"weighted,omitempty"`
	SumW     float64 `json:"sum_w,omitempty"`
	SumW2    float64 `json:"sum_w2,omitempty"`
	SumWX    float64 `json:"sum_wx,omitempty"`
	SumWX2   float64 `json:"sum_wx2,omitempty"`
	SumW2X   float64 `json:"sum_w2x,omitempty"`
	SumW2X2  float64 `json:"sum_w2x2,omitempty"`
}

// state serialises the aggregator as the state of the given shard.
func (a *aggregator) state(shard int) (ShardState, error) {
	st := ShardState{Shard: shard, Scenarios: a.scenarios, Unrecovered: a.unrecovered}
	type enc interface{ MarshalBinary() ([]byte, error) }
	var metrics []struct {
		dst *[]byte
		s   enc
	}
	if a.weighted {
		st.Weighted = true
		st.SumW, st.SumW2 = a.sumW, a.sumW2
		st.SumWX, st.SumWX2 = a.sumWX, a.sumWX2
		st.SumW2X, st.SumW2X2 = a.sumW2X, a.sumW2X2
		metrics = []struct {
			dst *[]byte
			s   enc
		}{
			{&st.Latency, a.wlat}, {&st.Loss, a.wloss}, {&st.FailedTasks, a.wblast},
			{&st.Tentative, a.wtent}, {&st.Corrected, a.wcorr}, {&st.T2C, a.wt2c},
		}
	} else {
		metrics = []struct {
			dst *[]byte
			s   enc
		}{
			{&st.Latency, a.lat}, {&st.Loss, a.loss}, {&st.FailedTasks, a.blast},
			{&st.Tentative, a.tent}, {&st.Corrected, a.corr}, {&st.T2C, a.t2c},
		}
	}
	for _, m := range metrics {
		b, err := m.s.MarshalBinary()
		if err != nil {
			return ShardState{}, fmt.Errorf("campaign: encoding shard %d state: %w", shard, err)
		}
		*m.dst = b
	}
	return st, nil
}

// decodeState rebuilds the aggregator a ShardState was serialised from.
func decodeState(st ShardState) (*aggregator, error) {
	a := newAggregator(st.Weighted)
	a.scenarios, a.unrecovered = st.Scenarios, st.Unrecovered
	type dec interface{ UnmarshalBinary([]byte) error }
	var metrics []struct {
		src []byte
		s   dec
	}
	if st.Weighted {
		a.sumW, a.sumW2 = st.SumW, st.SumW2
		a.sumWX, a.sumWX2 = st.SumWX, st.SumWX2
		a.sumW2X, a.sumW2X2 = st.SumW2X, st.SumW2X2
		metrics = []struct {
			src []byte
			s   dec
		}{
			{st.Latency, a.wlat}, {st.Loss, a.wloss}, {st.FailedTasks, a.wblast},
			{st.Tentative, a.wtent}, {st.Corrected, a.wcorr}, {st.T2C, a.wt2c},
		}
	} else {
		metrics = []struct {
			src []byte
			s   dec
		}{
			{st.Latency, a.lat}, {st.Loss, a.loss}, {st.FailedTasks, a.blast},
			{st.Tentative, a.tent}, {st.Corrected, a.corr}, {st.T2C, a.t2c},
		}
	}
	for _, m := range metrics {
		if err := m.s.UnmarshalBinary(m.src); err != nil {
			return nil, fmt.Errorf("campaign: decoding shard %d state: %w", st.Shard, err)
		}
	}
	return a, nil
}

// RunRange executes one shard-aligned range of the campaign and
// returns the serialised state of every shard the range owns, in
// shard order. See RunRangeContext.
func RunRange(cfg Config, r Range) ([]ShardState, error) {
	return RunRangeContext(context.Background(), cfg, r)
}

// RunRangeContext is the worker half of a distributed campaign: it
// executes the scenarios of one shard-aligned range (typically from
// Partition) and returns the serialised reduction state of every shard
// block the range owns. States from all ranges merge bit-identically
// to the single-process RunContext via MergeShardStates. KeepResults
// is rejected — per-scenario retention does not serialise; use
// OnResult locally instead. When Config.Baseline is zero every range
// runs its own (deterministic) baseline simulation; a coordinator
// should resolve it once with BaselineVolume and ship the volume in
// the config.
func RunRangeContext(ctx context.Context, cfg Config, r Range) ([]ShardState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.KeepResults {
		return nil, &ConfigError{"KeepResults", "per-scenario retention is not available on the range path (use OnResult)"}
	}
	cfg = cfg.resolved()
	pool := newEnginePool(cfg)
	base, err := resolveBaseline(cfg, pool)
	if err != nil {
		return nil, err
	}
	aggs, _, err := runShards(ctx, cfg, r, pool, base)
	if err != nil {
		return nil, err
	}
	first := r.Lo / blockSize(len(cfg.Scenarios), cfg.Shards)
	states := make([]ShardState, len(aggs))
	for i, a := range aggs {
		if states[i], err = a.state(first + i); err != nil {
			return nil, err
		}
	}
	return states, nil
}

// MergeShardStates folds serialised shard states — one per shard,
// collected from any number of ranges — into the campaign Summary. The
// merge happens in shard order regardless of the slice order, exactly
// like the single-process merge loop, so the result is bit-identical
// to RunContext for the same (scenario list, Shards). A duplicated
// shard index or an undecodable state is an error.
func MergeShardStates(states []ShardState) (Summary, error) {
	if len(states) == 0 {
		return Summary{}, fmt.Errorf("campaign: no shard states to merge")
	}
	sorted := append([]ShardState(nil), states...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	agg, err := decodeState(sorted[0])
	if err != nil {
		return Summary{}, err
	}
	prev := sorted[0].Shard
	for _, st := range sorted[1:] {
		if st.Shard == prev {
			return Summary{}, fmt.Errorf("campaign: duplicate state for shard %d", st.Shard)
		}
		if st.Weighted != sorted[0].Weighted {
			return Summary{}, fmt.Errorf("campaign: shard %d weighted=%v mixed with shard %d weighted=%v", st.Shard, st.Weighted, sorted[0].Shard, sorted[0].Weighted)
		}
		prev = st.Shard
		b, err := decodeState(st)
		if err != nil {
			return Summary{}, err
		}
		agg.merge(b)
	}
	return agg.summary(), nil
}
