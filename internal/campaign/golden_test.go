package campaign

import (
	"testing"
)

// goldenCampaign builds the fixed campaign the determinism test hashes:
// the medium preset topology under the greedy plan with tentative
// outputs on, swept with domain and cascade bursts.
func goldenCampaign(t *testing.T) (*Env, []Scenario) {
	t.Helper()
	topo, err := PresetTopology(TopoMedium, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvSpec{Topo: topo, Planner: "greedy", Tentative: true})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	var scs []Scenario
	for _, m := range []Model{WholeDomain, Cascade} {
		s, err := Generate(sample, GenSpec{
			Seed:        7,
			Scenarios:   6,
			Model:       m,
			Correlation: DefaultCorrelation,
		})
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, s...)
	}
	return env, scs
}

// goldenWant is the report digest of the pre-refactor engine (computed
// on main before the allocation-free kernel/dense-state/Reset rework)
// for the goldenCampaign configuration. Any engine change that alters a
// single reported bit for fixed seeds changes this hash.
const goldenWant = "037ed8e09f269984edd39fbe4213b524b9747a358f3b54ae99dfd464c8f7c381"

// goldenSummaryWant pins the sketch-path summary for the golden
// campaign at 4 reduction shards: the sharded sketch reduction must
// stay bit-identical across worker counts and engine reuse modes, and
// across refactors of the sketch itself. (Recomputed when shard
// ownership moved from i mod Shards to contiguous blocks — the mapping
// that makes distributed ranges merge bit-identically; the
// per-scenario goldenWant was unaffected.)
const goldenSummaryWant = "ae131174de61b8ac4d6b547a4eabbf6bb0e39480867db3e1948bdb264748c5a6"

// TestGoldenReportHash pins campaign determinism end to end: the
// per-scenario results must be bit-identical to the pre-refactor
// engine's, and the sketch-path summary bit-identical across every
// combination of worker count (sequential vs full pool) and engine
// reuse (per-worker Reset vs fresh Setup per scenario), for a fixed
// shard count.
func TestGoldenReportHash(t *testing.T) {
	env, scs := goldenCampaign(t)
	cases := []struct {
		name         string
		workers      int
		disableReuse bool
	}{
		{"workers=1/reset", 1, false},
		{"workers=1/fresh-setup", 1, true},
		{"workers=max/reset", 0, false},
		{"workers=max/fresh-setup", 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, err := Run(Config{
				Setup:        env.Setup,
				Scenarios:    scs,
				Horizon:      90,
				Workers:      c.workers,
				Shards:       4,
				KeepResults:  true,
				DisableReuse: c.disableReuse,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := ReportDigest(rep); got != goldenWant {
				t.Fatalf("golden hash = %s, want %s", got, goldenWant)
			}
			if got := SummaryDigest(rep.Summary); got != goldenSummaryWant {
				t.Fatalf("summary hash = %s, want %s", got, goldenSummaryWant)
			}
		})
	}
}

// TestBaselineCache verifies baseline memoization: two campaigns
// sharing a key and horizon run the baseline once, keys and horizons
// are distinguished, and the cached report equals the uncached one.
func TestBaselineCache(t *testing.T) {
	env, scs := goldenCampaign(t)
	cache := NewBaselineCache()
	cfg := Config{
		Setup:       env.Setup,
		Scenarios:   scs[:3],
		Horizon:     90,
		Workers:     1,
		Baselines:   cache,
		BaselineKey: "golden",
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := cache.Get("golden", 90)
	if !ok || cached != first.BaselineSinkTuples {
		t.Fatalf("cache holds (%d, %v), want %d", cached, ok, first.BaselineSinkTuples)
	}
	if _, ok := cache.Get("golden", 120); ok {
		t.Fatal("cache hit for a different horizon")
	}
	if _, ok := cache.Get("other", 90); ok {
		t.Fatal("cache hit for a different key")
	}
	// Poison the cache entry: a second run must trust the cache (no
	// baseline re-run) and measure loss against the poisoned volume.
	cache.Put("golden", 90, first.BaselineSinkTuples*2)
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.BaselineSinkTuples != first.BaselineSinkTuples*2 {
		t.Fatalf("second run baseline = %d, want cached %d",
			second.BaselineSinkTuples, first.BaselineSinkTuples*2)
	}
	// An explicit Baseline takes precedence over the cache.
	cfg.Baseline = first.BaselineSinkTuples
	third, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.BaselineSinkTuples != first.BaselineSinkTuples {
		t.Fatalf("explicit baseline ignored: %d", third.BaselineSinkTuples)
	}
}
