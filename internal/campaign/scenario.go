// Package campaign generates and executes Monte-Carlo failure
// campaigns: thousands of seeded, reproducible correlated-failure
// scenarios drawn from a cluster's failure-domain tree, each run as an
// independent engine simulation on a worker pool, with recovery-latency
// and output-loss distributions aggregated per configuration. It is the
// repo's standard scale/perf harness: where the §VI experiments replay
// the paper's fixed failure injections, a campaign sweeps the space of
// correlated failures (single node, k-of-rack bursts, whole-domain
// outages, cascading multi-domain bursts) that the failure-domain model
// makes expressible.
package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Model is a burst model: the shape of one randomized correlated
// failure.
type Model int

const (
	// SingleNode fails one uniformly drawn processing node — the
	// paper's single-failure baseline as a degenerate domain.
	SingleNode Model = iota
	// KOfRack fails a partial blast radius: one rack is drawn, each of
	// its remaining nodes fails with probability Correlation alongside
	// a seed node.
	KOfRack
	// WholeDomain fails every node of one drawn rack — the shared
	// switch/power-feed outage.
	WholeDomain
	// Cascade fails one rack of a drawn zone, then spreads to each
	// sibling rack with probability Correlation, staggered by
	// CascadeLag — a rolling multi-domain burst.
	Cascade
)

// Models lists every burst model.
var Models = []Model{SingleNode, KOfRack, WholeDomain, Cascade}

// DefaultCorrelation is the baseline correlation strength of the
// sweeps (GenSpec.Correlation is honoured verbatim, including 0).
const DefaultCorrelation = 0.5

// String names the model as used by cmd/ppastorm.
func (m Model) String() string {
	switch m {
	case SingleNode:
		return "single"
	case KOfRack:
		return "k-of-rack"
	case WholeDomain:
		return "domain"
	case Cascade:
		return "cascade"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel resolves a model name (as printed by String).
func ParseModel(s string) (Model, error) {
	for _, m := range Models {
		if m.String() == strings.TrimSpace(s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown burst model %q (known: single, k-of-rack, domain, cascade)", s)
}

// Wave is one instant of a scenario: a set of nodes failing together.
type Wave struct {
	At    sim.Time
	Nodes []cluster.NodeID
}

// Scenario is one reproducible failure scenario: one or more waves of
// simultaneous node failures.
type Scenario struct {
	Index int
	Model Model
	Label string
	Waves []Wave
}

// GenSpec controls scenario generation. The zero value is not valid;
// fill at least Scenarios and use withDefaults-documented defaults for
// the rest.
type GenSpec struct {
	// Seed drives all randomness. Scenario i depends only on Seed+i, so
	// campaigns are reproducible and individual scenarios can be replayed
	// in isolation.
	Seed int64
	// Scenarios is the number of scenarios to generate.
	Scenarios int
	// Model selects the burst shape.
	Model Model
	// FailAt is the base injection time (default 30.5 virtual seconds);
	// each scenario jitters it by up to JitterS.
	FailAt sim.Time
	// JitterS is the injection-time jitter in seconds (default 1) —
	// avoids phase-locking failures with checkpoint timers.
	JitterS float64
	// Correlation in [0,1] is the correlation strength: the probability
	// that a node (KOfRack) or sibling rack (Cascade) joins the burst.
	// Zero is honoured as fully uncorrelated (one node / one rack);
	// DefaultCorrelation is a reasonable sweep baseline.
	Correlation float64
	// CascadeLag is the delay between successive Cascade waves
	// (default 2s).
	CascadeLag sim.Time
}

func (s GenSpec) withDefaults() GenSpec {
	if s.FailAt == 0 {
		s.FailAt = 30.5
	}
	if s.JitterS == 0 {
		s.JitterS = 1
	}
	if s.CascadeLag == 0 {
		s.CascadeLag = 2
	}
	return s
}

// Generate draws spec.Scenarios scenarios against the cluster's
// failure-domain tree. The cluster is only inspected, never mutated;
// node IDs refer to any identically laid-out cluster, so the campaign
// runner can rebuild a fresh cluster per simulation. KOfRack,
// WholeDomain and Cascade require the cluster to have rack domains
// (cluster.BuildDomains).
func Generate(c *cluster.Cluster, spec GenSpec) ([]Scenario, error) {
	spec = spec.withDefaults()
	if spec.Scenarios <= 0 {
		return nil, fmt.Errorf("campaign: need a positive scenario count, got %d", spec.Scenarios)
	}
	if spec.Correlation < 0 || spec.Correlation > 1 {
		return nil, fmt.Errorf("campaign: correlation %v out of [0,1]", spec.Correlation)
	}
	proc := c.ProcessingNodes()
	if len(proc) == 0 {
		return nil, fmt.Errorf("campaign: cluster has no processing nodes")
	}
	// Only racks that actually hold nodes can produce a burst.
	var racks []cluster.DomainID
	for _, r := range c.DomainsOfKind("rack") {
		if len(c.DomainNodes(r)) > 0 {
			racks = append(racks, r)
		}
	}
	if spec.Model != SingleNode && len(racks) == 0 {
		return nil, fmt.Errorf("campaign: model %s needs non-empty rack domains (call cluster.BuildDomains)", spec.Model)
	}
	zones := c.DomainsOfKind("zone")

	out := make([]Scenario, spec.Scenarios)
	for i := range out {
		// Per-scenario RNG: scenario i is a pure function of Seed+i.
		rng := rand.New(rand.NewSource(spec.Seed + int64(i)*1_000_003))
		at := spec.FailAt + sim.Time(rng.Float64()*spec.JitterS)
		sc := Scenario{Index: i, Model: spec.Model}
		switch spec.Model {
		case SingleNode:
			n := proc[rng.Intn(len(proc))].ID
			sc.Label = fmt.Sprintf("node-%d", n)
			sc.Waves = []Wave{{At: at, Nodes: []cluster.NodeID{n}}}
		case KOfRack:
			rack, nodes := pickRack(c, racks, rng)
			burst := []cluster.NodeID{nodes[rng.Intn(len(nodes))]}
			for _, n := range nodes {
				if n != burst[0] && rng.Float64() < spec.Correlation {
					burst = append(burst, n)
				}
			}
			sortNodes(burst)
			sc.Label = fmt.Sprintf("rack-%d/k=%d", rack, len(burst))
			sc.Waves = []Wave{{At: at, Nodes: burst}}
		case WholeDomain:
			rack, nodes := pickRack(c, racks, rng)
			sc.Label = fmt.Sprintf("rack-%d/all", rack)
			sc.Waves = []Wave{{At: at, Nodes: nodes}}
		case Cascade:
			sc.Label, sc.Waves = genCascade(c, racks, zones, rng, at, spec)
		default:
			return nil, fmt.Errorf("campaign: unknown burst model %d", spec.Model)
		}
		out[i] = sc
	}
	return out, nil
}

// pickRack draws one rack; Generate pre-filters racks to non-empty
// ones, so the node list is never empty.
func pickRack(c *cluster.Cluster, racks []cluster.DomainID, rng *rand.Rand) (cluster.DomainID, []cluster.NodeID) {
	rack := racks[rng.Intn(len(racks))]
	return rack, c.DomainNodes(rack)
}

// genCascade builds a rolling multi-rack burst within one zone.
func genCascade(c *cluster.Cluster, racks []cluster.DomainID, zones []cluster.DomainID, rng *rand.Rand, at sim.Time, spec GenSpec) (string, []Wave) {
	// Group racks by zone; fall back to treating all racks as one zone.
	var pool []cluster.DomainID
	if len(zones) > 0 {
		zone := zones[rng.Intn(len(zones))]
		for _, r := range racks {
			if c.Domain(r).Parent == zone {
				pool = append(pool, r)
			}
		}
	}
	if len(pool) == 0 {
		pool = racks
	}
	order := rng.Perm(len(pool))
	var waves []Wave
	var labels []string
	for j, idx := range order {
		rack := pool[idx]
		if j > 0 && rng.Float64() >= spec.Correlation {
			continue
		}
		nodes := c.DomainNodes(rack)
		if len(nodes) == 0 {
			continue
		}
		waves = append(waves, Wave{At: at + sim.Time(len(waves))*spec.CascadeLag, Nodes: nodes})
		labels = append(labels, fmt.Sprintf("rack-%d", rack))
	}
	return "cascade[" + strings.Join(labels, ",") + "]", waves
}

func sortNodes(ns []cluster.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
