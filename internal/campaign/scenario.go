// Package campaign generates and executes Monte-Carlo failure
// campaigns: thousands of seeded, reproducible correlated-failure
// scenarios drawn from a cluster's failure-domain tree, each run as an
// independent engine simulation on a worker pool, with recovery-latency
// and output-loss distributions aggregated per configuration. It is the
// repo's standard scale/perf harness: where the §VI experiments replay
// the paper's fixed failure injections, a campaign sweeps the space of
// correlated failures (single node, k-of-rack bursts, whole-domain
// outages, cascading multi-domain bursts) that the failure-domain model
// makes expressible.
package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Model is a burst model: the shape of one randomized correlated
// failure.
type Model int

const (
	// SingleNode fails one uniformly drawn processing node — the
	// paper's single-failure baseline as a degenerate domain.
	SingleNode Model = iota
	// KOfRack fails a partial blast radius: one rack is drawn, each of
	// its remaining nodes fails with probability Correlation alongside
	// a seed node.
	KOfRack
	// WholeDomain fails every node of one drawn rack — the shared
	// switch/power-feed outage.
	WholeDomain
	// Cascade fails one rack of a drawn zone, then spreads to each
	// sibling rack with probability Correlation, staggered by
	// CascadeLag — a rolling multi-domain burst.
	Cascade
)

// Models lists every burst model.
var Models = []Model{SingleNode, KOfRack, WholeDomain, Cascade}

// DefaultCorrelation is the baseline correlation strength of the
// sweeps (GenSpec.Correlation is honoured verbatim, including 0).
const DefaultCorrelation = 0.5

// String names the model as used by cmd/ppastorm.
func (m Model) String() string {
	switch m {
	case SingleNode:
		return "single"
	case KOfRack:
		return "k-of-rack"
	case WholeDomain:
		return "domain"
	case Cascade:
		return "cascade"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel resolves a model name (as printed by String).
func ParseModel(s string) (Model, error) {
	for _, m := range Models {
		if m.String() == strings.TrimSpace(s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown burst model %q (known: single, k-of-rack, domain, cascade)", s)
}

// Wave is one instant of a scenario: a set of nodes failing together.
type Wave struct {
	At    sim.Time
	Nodes []cluster.NodeID
}

// Scenario is one reproducible failure scenario: one or more waves of
// simultaneous node failures.
type Scenario struct {
	Index int
	Model Model
	Label string
	Waves []Wave
	// Weight is the scenario's importance-sampling likelihood ratio:
	// the probability of its burst-join draws under the nominal
	// correlation divided by the probability under the tilted sampler
	// (GenSpec.Tilt). Untilted generation sets 1; a zero value (e.g. a
	// hand-built Scenario literal) is treated as 1 everywhere, so
	// existing callers are unaffected.
	Weight float64
}

// GenSpec controls scenario generation. The zero value is not valid;
// fill at least Scenarios. The optional timing fields are pointers so
// that an explicit zero is distinguishable from "use the default": a
// nil field selects the documented default, while Ptr(0) is honoured
// verbatim (no jitter, injection at the start of the run, simultaneous
// cascade waves) — the same explicit-zero contract Correlation has
// always had.
type GenSpec struct {
	// Seed drives all randomness. Scenario i depends only on Seed+i, so
	// campaigns are reproducible and individual scenarios can be replayed
	// in isolation.
	Seed int64
	// Scenarios is the number of scenarios to generate.
	Scenarios int
	// Model selects the burst shape.
	Model Model
	// FailAt is the base injection time; nil selects the default 30.5
	// virtual seconds. Each scenario jitters it by up to JitterS.
	FailAt *sim.Time
	// JitterS is the injection-time jitter in seconds; nil selects the
	// default 1 (avoids phase-locking failures with checkpoint timers),
	// Ptr(0.0) disables jitter.
	JitterS *float64
	// Correlation in [0,1] is the correlation strength: the probability
	// that a node (KOfRack) or sibling rack (Cascade) joins the burst.
	// Zero is honoured as fully uncorrelated (one node / one rack);
	// DefaultCorrelation is a reasonable sweep baseline.
	Correlation float64
	// CascadeLag is the delay between successive Cascade waves; nil
	// selects the default 2s, Ptr(sim.Time(0)) makes the waves
	// simultaneous.
	CascadeLag *sim.Time
	// CRN switches scenario i's draws to a counter-based splitmix64
	// substream keyed by (Seed, i) — common random numbers. Unlike the
	// default math/rand path, the substream derivation is documented
	// and stable across Go releases, and every campaign cell sharing a
	// seed replays bit-identical failure draws, which is what makes
	// paired head-to-head deltas low-variance. Off by default so
	// existing seeds keep generating the exact scenarios they always
	// have.
	CRN bool
	// Tilt >= 1 turns on importance sampling of rare correlated bursts:
	// each burst-join draw (KOfRack node joins, Cascade sibling rack
	// joins) is taken at the tilted probability q = 1-(1-p)^Tilt
	// instead of the nominal p = Correlation, over-drawing multi-node
	// and multi-rack cascades, and the scenario's Weight records the
	// likelihood ratio so reweighted summaries estimate the nominal
	// distribution. 0 (or 1) disables tilting; values in (0, 1) are
	// rejected. Models without join draws (SingleNode, WholeDomain) are
	// unaffected.
	Tilt float64
}

// Ptr returns a pointer to v — shorthand for GenSpec's explicit
// optional fields, e.g. GenSpec{JitterS: campaign.Ptr(0.0)}.
func Ptr[T any](v T) *T { return &v }

// genParams is GenSpec with the optional fields resolved to concrete
// values.
type genParams struct {
	failAt  sim.Time
	jitterS float64
	lag     sim.Time
}

func (s GenSpec) resolve() genParams {
	p := genParams{failAt: 30.5, jitterS: 1, lag: 2}
	if s.FailAt != nil {
		p.failAt = *s.FailAt
	}
	if s.JitterS != nil {
		p.jitterS = *s.JitterS
	}
	if s.CascadeLag != nil {
		p.lag = *s.CascadeLag
	}
	return p
}

// burstRNG is the draw interface of scenario generation, satisfied by
// both the default *rand.Rand and the CRN splitStream. Generate calls
// it in a fixed order per scenario, so either source yields a
// reproducible scenario from (Seed, index) alone.
type burstRNG interface {
	Float64() float64
	Intn(n int) int
	Perm(n int) []int
}

// stream returns scenario i's random source: the historical math/rand
// stream by default (existing seeds keep their scenarios), or the
// counter-based CRN substream.
func (s GenSpec) stream(i int) burstRNG {
	if s.CRN {
		return newSplitStream(s.Seed, i)
	}
	return rand.New(rand.NewSource(s.Seed + int64(i)*1_000_003))
}

// joiner draws the burst-join Bernoullis of one scenario, tilted to
// probability q = 1-(1-p)^tilt, and accumulates the likelihood ratio
// of the draws it made: p/q per join, (1-p)/(1-q) per non-join. With
// tilt off (0 or 1) q equals p and the weight stays exactly 1.
type joiner struct {
	rng  burstRNG
	p, q float64
	w    float64
}

func newJoiner(rng burstRNG, p, tilt float64) *joiner {
	q := p
	if tilt > 1 {
		q = 1 - math.Pow(1-p, tilt)
	}
	return &joiner{rng: rng, p: p, q: q, w: 1}
}

// join draws one tilted Bernoulli and folds its likelihood ratio into
// the running weight. Degenerate probabilities (0 or 1) tilt to
// themselves, so their factor is exactly 1.
func (j *joiner) join() bool {
	joined := j.rng.Float64() < j.q
	if j.q > 0 && j.q < 1 {
		if joined {
			j.w *= j.p / j.q
		} else {
			j.w *= (1 - j.p) / (1 - j.q)
		}
	}
	return joined
}

// Generate draws spec.Scenarios scenarios against the cluster's
// failure-domain tree. The cluster is only inspected, never mutated;
// node IDs refer to any identically laid-out cluster, so the campaign
// runner can rebuild a fresh cluster per simulation. KOfRack,
// WholeDomain and Cascade require the cluster to have rack domains
// (cluster.BuildDomains).
func Generate(c *cluster.Cluster, spec GenSpec) ([]Scenario, error) {
	params := spec.resolve()
	if spec.Scenarios <= 0 {
		return nil, fmt.Errorf("campaign: need a positive scenario count, got %d", spec.Scenarios)
	}
	if spec.Correlation < 0 || spec.Correlation > 1 {
		return nil, fmt.Errorf("campaign: correlation %v out of [0,1]", spec.Correlation)
	}
	if spec.Tilt < 0 || (spec.Tilt > 0 && spec.Tilt < 1) {
		return nil, fmt.Errorf("campaign: tilt %v invalid (want 0 to disable, or >= 1)", spec.Tilt)
	}
	proc := c.ProcessingNodes()
	if len(proc) == 0 {
		return nil, fmt.Errorf("campaign: cluster has no processing nodes")
	}
	// Only racks that actually hold nodes can produce a burst.
	var racks []cluster.DomainID
	for _, r := range c.DomainsOfKind("rack") {
		if len(c.DomainNodes(r)) > 0 {
			racks = append(racks, r)
		}
	}
	if spec.Model != SingleNode && len(racks) == 0 {
		return nil, fmt.Errorf("campaign: model %s needs non-empty rack domains (call cluster.BuildDomains)", spec.Model)
	}
	zones := c.DomainsOfKind("zone")

	out := make([]Scenario, spec.Scenarios)
	for i := range out {
		// Per-scenario RNG: scenario i is a pure function of (Seed, i) —
		// the historical math/rand stream, or the CRN substream.
		rng := spec.stream(i)
		at := params.failAt + sim.Time(rng.Float64()*params.jitterS)
		sc := Scenario{Index: i, Model: spec.Model, Weight: 1}
		switch spec.Model {
		case SingleNode:
			n := proc[rng.Intn(len(proc))].ID
			sc.Label = fmt.Sprintf("node-%d", n)
			sc.Waves = []Wave{{At: at, Nodes: []cluster.NodeID{n}}}
		case KOfRack:
			rack, nodes := pickRack(c, racks, rng)
			burst := []cluster.NodeID{nodes[rng.Intn(len(nodes))]}
			jn := newJoiner(rng, spec.Correlation, spec.Tilt)
			for _, n := range nodes {
				if n != burst[0] && jn.join() {
					burst = append(burst, n)
				}
			}
			sc.Weight = jn.w
			sortNodes(burst)
			sc.Label = fmt.Sprintf("rack-%d/k=%d", rack, len(burst))
			sc.Waves = []Wave{{At: at, Nodes: burst}}
		case WholeDomain:
			rack, nodes := pickRack(c, racks, rng)
			sc.Label = fmt.Sprintf("rack-%d/all", rack)
			sc.Waves = []Wave{{At: at, Nodes: nodes}}
		case Cascade:
			jn := newJoiner(rng, spec.Correlation, spec.Tilt)
			sc.Label, sc.Waves = genCascade(c, racks, zones, jn, at, params.lag)
			sc.Weight = jn.w
		default:
			return nil, fmt.Errorf("campaign: unknown burst model %d", spec.Model)
		}
		out[i] = sc
	}
	return out, nil
}

// pickRack draws one rack; Generate pre-filters racks to non-empty
// ones, so the node list is never empty.
func pickRack(c *cluster.Cluster, racks []cluster.DomainID, rng burstRNG) (cluster.DomainID, []cluster.NodeID) {
	rack := racks[rng.Intn(len(racks))]
	return rack, c.DomainNodes(rack)
}

// genCascade builds a rolling multi-rack burst within one zone. The
// spread draws go through the joiner so a tilted sampler over-draws
// long cascades while the weight records the likelihood ratio.
func genCascade(c *cluster.Cluster, racks []cluster.DomainID, zones []cluster.DomainID, jn *joiner, at sim.Time, lag sim.Time) (string, []Wave) {
	rng := jn.rng
	// Group racks by zone; fall back to treating all racks as one zone.
	var pool []cluster.DomainID
	if len(zones) > 0 {
		zone := zones[rng.Intn(len(zones))]
		for _, r := range racks {
			if c.Domain(r).Parent == zone {
				pool = append(pool, r)
			}
		}
	}
	if len(pool) == 0 {
		pool = racks
	}
	order := rng.Perm(len(pool))
	var waves []Wave
	var labels []string
	for j, idx := range order {
		rack := pool[idx]
		if j > 0 && !jn.join() {
			continue
		}
		nodes := c.DomainNodes(rack)
		if len(nodes) == 0 {
			continue
		}
		waves = append(waves, Wave{At: at + sim.Time(len(waves))*lag, Nodes: nodes})
		labels = append(labels, fmt.Sprintf("rack-%d", rack))
	}
	return "cascade[" + strings.Join(labels, ",") + "]", waves
}

// SampleTaskScenarios draws spec.Scenarios scenarios per burst model and
// maps each to the set of primary tasks its waves kill under the
// cluster's current placement — the domain-correlated task-failure
// distribution consumed by the *-corr planners (plan.NewScenarioSet).
// Replica hosts are deliberately ignored: the correlation-aware
// objective assumes a replicated task survives the burst, which the
// anti-affinity placer makes true by keeping every replica out of its
// primary's rack. Scenarios that hit no primaries are kept; they are
// real probability mass at OF 1.
func SampleTaskScenarios(c *cluster.Cluster, spec GenSpec, models []Model) ([][]topology.TaskID, error) {
	if len(models) == 0 {
		models = Models
	}
	var out [][]topology.TaskID
	for _, m := range models {
		s := spec
		s.Model = m
		scs, err := Generate(c, s)
		if err != nil {
			return nil, err
		}
		for _, sc := range scs {
			set := map[topology.TaskID]bool{}
			for _, w := range sc.Waves {
				for _, n := range w.Nodes {
					for _, id := range c.TasksOn(n) {
						set[id] = true
					}
				}
			}
			ids := make([]topology.TaskID, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			out = append(out, ids)
		}
	}
	return out, nil
}

func sortNodes(ns []cluster.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
