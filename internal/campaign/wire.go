package campaign

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// WireSpec is the fully serialisable description of one campaign: the
// environment (EnvSpec with the topology flattened to topology.Spec
// and the placement policy to its name), the scenario-generation
// batches, and the execution parameters. It is the job unit of the
// coordinator/worker protocol (internal/coord): a coordinator ships
// one WireSpec per campaign and every worker rebuilds the identical
// Env, scenario list and Config from it. Scenarios are regenerated
// deterministically from the GenSpec seeds on each side rather than
// shipped — Generate(i) depends only on (cluster layout, Seed, i), so
// the rebuilt campaign is the same campaign on every process.
type WireSpec struct {
	Topo          topology.Spec  `json:"topo"`
	Planner       string         `json:"planner,omitempty"`
	Fraction      float64        `json:"fraction,omitempty"`
	Placement     string         `json:"placement,omitempty"`
	CorrScenarios int            `json:"corr_scenarios,omitempty"`
	CorrSeed      int64          `json:"corr_seed,omitempty"`
	Tentative     bool           `json:"tentative,omitempty"`
	TasksPerNode  int            `json:"tasks_per_node,omitempty"`
	Layout        cluster.Layout `json:"layout"`
	WindowBatches int            `json:"window_batches,omitempty"`
	Engine        engine.Config  `json:"engine"`

	// Gens are the scenario-generation batches; the campaign's scenario
	// list is their Generate outputs concatenated in order (exactly as a
	// local caller would concatenate them).
	Gens []GenSpec `json:"gens"`

	// Execution parameters, mirroring Config. StopTol rides along so
	// the coordinator's rebuilt Config carries the stop rule; workers
	// ignore it (RunRangeContext never evaluates stop rules — the
	// coordinator owns the decision, see Config.StopTol).
	Horizon  sim.Time `json:"horizon,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	Baseline int      `json:"baseline,omitempty"`
	StopTol  float64  `json:"stop_tol,omitempty"`
}

// NewWireSpec flattens a campaign environment spec and its scenario
// generation batches into the serialisable form. Execution parameters
// (Horizon, Workers, Shards, Baseline) start zero; set them on the
// returned value.
func NewWireSpec(spec EnvSpec, gens []GenSpec) (WireSpec, error) {
	if spec.Topo == nil {
		return WireSpec{}, fmt.Errorf("campaign: no topology")
	}
	if len(gens) == 0 {
		return WireSpec{}, fmt.Errorf("campaign: no scenario generation batches")
	}
	return WireSpec{
		Topo:          topology.ToSpec(spec.Topo),
		Planner:       spec.Planner,
		Fraction:      spec.Fraction,
		Placement:     spec.Placement.String(),
		CorrScenarios: spec.CorrScenarios,
		CorrSeed:      spec.CorrSeed,
		Tentative:     spec.Tentative,
		TasksPerNode:  spec.TasksPerNode,
		Layout:        spec.Layout,
		WindowBatches: spec.WindowBatches,
		Engine:        spec.Config,
		Gens:          append([]GenSpec(nil), gens...),
	}, nil
}

// EnvSpec rebuilds the environment spec, parsing the topology and the
// placement policy back from their wire forms.
func (w WireSpec) EnvSpec() (EnvSpec, error) {
	topo, err := topology.FromSpec(w.Topo)
	if err != nil {
		return EnvSpec{}, fmt.Errorf("campaign: wire topology: %w", err)
	}
	placement := cluster.PlacementAntiAffinity
	if w.Placement != "" {
		if placement, err = cluster.ParsePlacementPolicy(w.Placement); err != nil {
			return EnvSpec{}, fmt.Errorf("campaign: wire placement: %w", err)
		}
	}
	return EnvSpec{
		Topo:          topo,
		Planner:       w.Planner,
		Fraction:      w.Fraction,
		Placement:     placement,
		CorrScenarios: w.CorrScenarios,
		CorrSeed:      w.CorrSeed,
		Tentative:     w.Tentative,
		TasksPerNode:  w.TasksPerNode,
		Layout:        w.Layout,
		WindowBatches: w.WindowBatches,
		Config:        w.Engine,
	}, nil
}

// Config rebuilds the executable campaign: environment, regenerated
// scenario list, and execution parameters. Every process that calls
// Config on the same WireSpec gets the same campaign — the basis of
// the coordinator/worker bit-identity guarantee.
func (w WireSpec) Config() (Config, error) {
	es, err := w.EnvSpec()
	if err != nil {
		return Config{}, err
	}
	env, err := NewEnv(es)
	if err != nil {
		return Config{}, err
	}
	if len(w.Gens) == 0 {
		return Config{}, fmt.Errorf("campaign: wire spec has no scenario generation batches")
	}
	c, err := env.Cluster()
	if err != nil {
		return Config{}, err
	}
	var scenarios []Scenario
	for _, g := range w.Gens {
		scs, err := Generate(c, g)
		if err != nil {
			return Config{}, fmt.Errorf("campaign: wire scenario batch (model %v, seed %d): %w", g.Model, g.Seed, err)
		}
		scenarios = append(scenarios, scs...)
	}
	return Config{
		Setup:     env.Setup,
		Scenarios: scenarios,
		Horizon:   w.Horizon,
		Workers:   w.Workers,
		Shards:    w.Shards,
		Baseline:  w.Baseline,
		StopTol:   w.StopTol,
	}, nil
}
