package campaign

import (
	"os"
	"runtime"
	"testing"
)

// heapAlloc forces a collection and returns the live heap.
func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestFlatMemoryCampaignSmoke is the CI memory-ceiling guard: a
// 100k-scenario streaming campaign whose retained heap must stay
// within a fixed bound of the pre-campaign baseline, sampled at
// deterministic points mid-run. If someone reintroduces per-scenario
// retention (results, pooled delay slices, reorder buffers growing
// with N) this fails long before the 1M-scenario regime does. Gated
// behind PPA_FLATMEM_SMOKE=1 because it runs minutes, not seconds —
// CI's bench-smoke job sets it.
func TestFlatMemoryCampaignSmoke(t *testing.T) {
	if os.Getenv("PPA_FLATMEM_SMOKE") == "" {
		t.Skip("set PPA_FLATMEM_SMOKE=1 to run the 100k-scenario flat-memory smoke")
	}
	const scenarios = 100_000
	// Retained-heap budget above the post-generation baseline. The
	// streaming path retains only the per-worker engines, the shard
	// sketches and the bounded reorder window — far below this bound —
	// while retaining 100k results (the old behaviour) costs tens of
	// MB and trips it.
	const budget = 24 << 20

	env := testEnv(t, "greedy")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Generate(c, GenSpec{Seed: 13, Scenarios: scenarios, Model: KOfRack, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	base := heapAlloc() // after scenario generation: inputs are not the regression under test
	var peak uint64
	var n int
	rep, err := Run(Config{
		Setup:     env.Setup,
		Scenarios: scs,
		Horizon:   60,
		OnResult: func(ScenarioResult) {
			n++
			if n%20_000 == 0 {
				if h := heapAlloc(); h > peak {
					peak = h
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Scenarios != scenarios {
		t.Fatalf("summary covers %d of %d scenarios", rep.Summary.Scenarios, scenarios)
	}
	if h := heapAlloc(); h > peak {
		peak = h
	}
	t.Logf("retained heap: base %.1f MB, peak during campaign %.1f MB (+%.1f MB)",
		float64(base)/(1<<20), float64(peak)/(1<<20), (float64(peak)-float64(base))/(1<<20))
	if peak > base+budget {
		t.Fatalf("retained heap grew %.1f MB over baseline (budget %.1f MB) — scenario-linear retention is back",
			(float64(peak)-float64(base))/(1<<20), float64(budget)/(1<<20))
	}
}

// TestCampaignCrossCheck10k is the acceptance cross-check at real
// campaign scale: a 10k-scenario run with results kept, whose sketch
// summary must match the exact NewDist reference within the documented
// rank-error bound. Gated with the flat-memory smoke (minutes).
func TestCampaignCrossCheck10k(t *testing.T) {
	if os.Getenv("PPA_FLATMEM_SMOKE") == "" {
		t.Skip("set PPA_FLATMEM_SMOKE=1 to run the 10k-scenario cross-check")
	}
	env := testEnv(t, "greedy")
	c, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Generate(c, GenSpec{Seed: 29, Scenarios: 10_000, Model: KOfRack, Correlation: DefaultCorrelation})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Setup: env.Setup, Scenarios: scs, Horizon: 60, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	exact := exactSummarise(rep.Results)
	if rep.Summary.Scenarios != exact.Scenarios || rep.Summary.Unrecovered != exact.Unrecovered {
		t.Fatalf("counts: %d/%d vs exact %d/%d",
			rep.Summary.Scenarios, rep.Summary.Unrecovered, exact.Scenarios, exact.Unrecovered)
	}
	var lats, losses, blast, tent, corr, t2c []float64
	for _, r := range rep.Results {
		losses = append(losses, r.OutputLoss)
		blast = append(blast, float64(r.FailedTasks))
		tent = append(tent, r.TentativeFrac)
		if r.TentativeFrac > 0 {
			corr = append(corr, r.CorrectedFrac)
		}
		t2c = append(t2c, r.CorrectionDelays...)
		if r.Recovered && r.FailedTasks > 0 {
			lats = append(lats, float64(r.WorstLatency))
		}
	}
	const eps = 2.56 / SketchK
	checkDistWithinBound(t, "latency", rep.Summary.Latency, exact.Latency, lats, eps)
	checkDistWithinBound(t, "loss", rep.Summary.Loss, exact.Loss, losses, eps)
	checkDistWithinBound(t, "failed_tasks", rep.Summary.FailedTasks, exact.FailedTasks, blast, eps)
	checkDistWithinBound(t, "tentative", rep.Summary.TentativeFrac, exact.TentativeFrac, tent, eps)
	checkDistWithinBound(t, "corrected", rep.Summary.CorrectedFrac, exact.CorrectedFrac, corr, eps)
	checkDistWithinBound(t, "t2c", rep.Summary.TimeToCorrection, exact.TimeToCorrection, t2c, eps)
}
