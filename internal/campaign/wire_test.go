package campaign

import (
	"encoding/json"
	"testing"

	"repro/internal/cluster"
)

// TestWireSpecRoundTrip: a campaign rebuilt from a WireSpec after a
// JSON round trip — topology flattened to its spec, placement to its
// name, scenarios regenerated from seeds — reports bit-identically to
// the locally built golden campaign. This is the fidelity guarantee
// the coordinator/worker protocol rests on: a worker that only ever
// saw the wire bytes runs the same campaign as the coordinator.
func TestWireSpecRoundTrip(t *testing.T) {
	env, scs := goldenCampaign(t)
	want, err := Run(Config{Setup: env.Setup, Scenarios: scs, Horizon: 90, Shards: 4, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}

	spec, err := NewWireSpec(EnvSpec{Topo: env.spec.Topo, Planner: "greedy", Tentative: true}, []GenSpec{
		{Seed: 7, Scenarios: 6, Model: WholeDomain, Correlation: DefaultCorrelation},
		{Seed: 7, Scenarios: 6, Model: Cascade, Correlation: DefaultCorrelation},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec.Horizon = 90
	spec.Shards = 4

	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded WireSpec
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	cfg, err := decoded.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scenarios) != len(scs) {
		t.Fatalf("rebuilt %d scenarios, want %d", len(cfg.Scenarios), len(scs))
	}
	cfg.KeepResults = true
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaselineSinkTuples != want.BaselineSinkTuples {
		t.Fatalf("baseline %d, want %d", got.BaselineSinkTuples, want.BaselineSinkTuples)
	}
	if gh, wh := ReportDigest(got), ReportDigest(want); gh != wh {
		t.Fatalf("per-scenario golden hash %s, want %s", gh, wh)
	}
	if got.Summary != want.Summary {
		t.Fatalf("summary differs:\n%+v\n%+v", got.Summary, want.Summary)
	}
}

// TestWireSpecPlacementRoundTrip: both placement policies survive the
// name round trip, and the empty name defaults to anti-affinity.
func TestWireSpecPlacementRoundTrip(t *testing.T) {
	env, _ := goldenCampaign(t)
	for _, p := range []cluster.PlacementPolicy{cluster.PlacementAntiAffinity, cluster.PlacementRoundRobin} {
		spec, err := NewWireSpec(EnvSpec{Topo: env.spec.Topo, Placement: p}, []GenSpec{{Seed: 1, Scenarios: 1}})
		if err != nil {
			t.Fatal(err)
		}
		es, err := spec.EnvSpec()
		if err != nil {
			t.Fatal(err)
		}
		if es.Placement != p {
			t.Errorf("placement %v round-tripped to %v", p, es.Placement)
		}
	}
	def := WireSpec{}
	if _, err := def.EnvSpec(); err == nil {
		t.Error("empty wire topology accepted")
	}
	if _, err := NewWireSpec(EnvSpec{Topo: env.spec.Topo}, nil); err == nil {
		t.Error("wire spec without generation batches accepted")
	}
}
