// Package randtopo generates random query topologies with controllable
// specifications, reproducing the synthetic-topology methodology of
// Su & Zhou (ICDE 2016), §VI-C: operator count, per-operator
// parallelisation degree, workload skewness of the tasks within an
// operator (uniform or Zipfian), structured vs full partitioning, and
// the fraction of join (correlated-input) operators.
package randtopo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/topology"
)

// Spec controls the random topology generator. The zero value is not
// valid; use DefaultSpec as a starting point.
type Spec struct {
	// Seed drives all randomness; equal specs generate equal topologies.
	Seed int64
	// MinOps and MaxOps bound the operator count (inclusive).
	MinOps, MaxOps int
	// MinPar and MaxPar bound the per-operator parallelisation degree
	// (inclusive).
	MinPar, MaxPar int
	// Skew is the Zipfian parameter s of the task workload distribution
	// within each operator; 0 means uniform workloads (Fig. 14a).
	Skew float64
	// Full selects an all-Full topology; otherwise a structured topology
	// is generated (Fig. 14c).
	Full bool
	// JoinFraction is the fraction of eligible operators made
	// correlated-input joins (Fig. 14d). An operator is eligible when at
	// least two upstream operators are available.
	JoinFraction float64
	// Sources is the number of source operators (default 1; at least 2
	// when JoinFraction > 0 so that joins have two input streams).
	Sources int
	// SourceRate is the per-task source rate (default 1000).
	SourceRate float64
	// MinSelectivity and MaxSelectivity bound operator selectivity
	// (defaults 0.5 and 1.0).
	MinSelectivity, MaxSelectivity float64
}

// DefaultSpec returns the paper's §VI-C baseline specification: 5-10
// operators with parallelisation degree 1-10, uniform workloads,
// structured partitioning and no joins.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Seed:           seed,
		MinOps:         5,
		MaxOps:         10,
		MinPar:         1,
		MaxPar:         10,
		SourceRate:     1000,
		Sources:        1,
		MinSelectivity: 0.5,
		MaxSelectivity: 1.0,
	}
}

func (s *Spec) validate() error {
	if s.MinOps < 2 || s.MaxOps < s.MinOps {
		return fmt.Errorf("randtopo: invalid operator bounds [%d,%d]", s.MinOps, s.MaxOps)
	}
	if s.MinPar < 1 || s.MaxPar < s.MinPar {
		return fmt.Errorf("randtopo: invalid parallelism bounds [%d,%d]", s.MinPar, s.MaxPar)
	}
	if s.JoinFraction < 0 || s.JoinFraction > 1 {
		return fmt.Errorf("randtopo: join fraction %v out of [0,1]", s.JoinFraction)
	}
	if s.Sources == 0 {
		s.Sources = 1
	}
	if s.JoinFraction > 0 && s.Sources < 2 {
		s.Sources = 2
	}
	if s.SourceRate == 0 {
		s.SourceRate = 1000
	}
	if s.MinSelectivity == 0 {
		s.MinSelectivity = 0.5
	}
	if s.MaxSelectivity == 0 {
		s.MaxSelectivity = 1.0
	}
	if s.MinOps <= s.Sources {
		return fmt.Errorf("randtopo: need more than %d operators for %d sources", s.MinOps, s.Sources)
	}
	return nil
}

// ZipfWeights returns n weights following w_i = 1/i^s (i starting at 1),
// normalised to sum to n so that uniform corresponds to all-ones.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] = w[i] * float64(n) / sum
	}
	return w
}

// Generate builds a random topology from the spec. The result is a
// validated DAG: sources first, every non-source operator subscribed to
// one upstream operator (two for joins), partitionings chosen to respect
// the drawn parallelisation degrees.
func Generate(spec Spec) (*topology.Topology, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nOps := spec.MinOps + rng.Intn(spec.MaxOps-spec.MinOps+1)

	par := make([]int, nOps)
	for i := range par {
		par[i] = spec.MinPar + rng.Intn(spec.MaxPar-spec.MinPar+1)
	}

	// Choose join operators among those with at least two predecessors
	// available.
	isJoin := make([]bool, nOps)
	if spec.JoinFraction > 0 {
		eligible := 0
		for i := spec.Sources; i < nOps; i++ {
			if i >= 2 {
				eligible++
			}
		}
		want := int(math.Round(spec.JoinFraction * float64(eligible)))
		var pool []int
		for i := spec.Sources; i < nOps; i++ {
			if i >= 2 {
				pool = append(pool, i)
			}
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		for _, op := range pool[:min(want, len(pool))] {
			isJoin[op] = true
		}
	}

	b := topology.NewBuilder()
	refs := make([]topology.OpRef, nOps)
	for i := 0; i < nOps; i++ {
		name := fmt.Sprintf("O%d", i+1)
		if i < spec.Sources {
			refs[i] = b.AddSource(name, par[i], spec.SourceRate)
		} else {
			kind := topology.Independent
			if isJoin[i] {
				kind = topology.Correlated
			}
			sel := spec.MinSelectivity + rng.Float64()*(spec.MaxSelectivity-spec.MinSelectivity)
			refs[i] = b.AddOperator(name, par[i], kind, sel)
		}
		if spec.Skew > 0 {
			b.SetWeights(refs[i], ZipfWeights(par[i], spec.Skew))
		}
	}

	for i := spec.Sources; i < nOps; i++ {
		nUp := 1
		if isJoin[i] {
			nUp = 2
		}
		ups := rng.Perm(i)[:nUp]
		for _, u := range ups {
			b.Connect(refs[u], refs[i], pickPartitioning(rng, spec.Full, par[u], par[i]))
		}
	}
	return b.Build()
}

// pickPartitioning chooses a partitioning compatible with the drawn
// parallelisation degrees. Full topologies always use Full; structured
// topologies use merge/split/one-to-one as the degrees allow.
func pickPartitioning(rng *rand.Rand, full bool, up, down int) topology.Partitioning {
	if full {
		return topology.Full
	}
	switch {
	case up == down:
		if rng.Intn(2) == 0 {
			return topology.OneToOne
		}
		return topology.Merge
	case up > down:
		return topology.Merge
	default:
		return topology.Split
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WithoutJoins returns a copy of the topology where every
// correlated-input operator is downgraded to independent input,
// preserving structure, parallelism, weights and rates. It enables the
// paper's controlled Fig. 14d comparison: the same topology with and
// without join semantics.
func WithoutJoins(t *topology.Topology) (*topology.Topology, error) {
	spec := topology.ToSpec(t)
	for i := range spec.Operators {
		spec.Operators[i].Kind = ""
	}
	return topology.FromSpec(spec)
}
