package randtopo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mctree"
	"repro/internal/topology"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec(42)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumOps() != b.NumOps() || a.NumTasks() != b.NumTasks() {
		t.Fatalf("same seed produced different topologies: %d/%d ops, %d/%d tasks",
			a.NumOps(), b.NumOps(), a.NumTasks(), b.NumTasks())
	}
	for i := range a.Tasks {
		if a.OutRate(a.Tasks[i].ID) != b.OutRate(b.Tasks[i].ID) {
			t.Fatalf("task %d rate differs between runs", i)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		spec := DefaultSpec(seed)
		spec.MinOps, spec.MaxOps = 5, 10
		spec.MinPar, spec.MaxPar = 1, 10
		topo, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if n := topo.NumOps(); n < 5 || n > 10 {
			t.Errorf("seed %d: %d operators out of [5,10]", seed, n)
		}
		for i, op := range topo.Ops {
			if op.Parallelism < 1 || op.Parallelism > 10 {
				t.Errorf("seed %d: op %d parallelism %d out of [1,10]", seed, i, op.Parallelism)
			}
		}
	}
}

func TestGenerateFullTopology(t *testing.T) {
	spec := DefaultSpec(7)
	spec.Full = true
	topo, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !mctree.IsFullTopology(topo) {
		t.Error("spec.Full did not produce an all-Full topology")
	}
}

func TestGenerateStructured(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		topo, err := Generate(DefaultSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range topo.Edges {
			if e.Part == topology.Full {
				t.Errorf("seed %d: structured spec produced a Full edge", seed)
			}
		}
	}
}

func TestGenerateJoins(t *testing.T) {
	spec := DefaultSpec(11)
	spec.JoinFraction = 0.5
	topo, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	for i, op := range topo.Ops {
		if op.Kind == topology.Correlated {
			joins++
			if got := len(topo.UpstreamOps(i)); got != 2 {
				t.Errorf("join op %d has %d upstream operators, want 2", i, got)
			}
		}
	}
	if joins == 0 {
		t.Error("JoinFraction 0.5 produced no join operators")
	}
	if got := len(topo.SourceOps()); got < 2 {
		t.Errorf("join topologies need >= 2 sources, got %d", got)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 0)
	for i, v := range w {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("uniform weight[%d] = %v, want 1", i, v)
		}
	}
	w = ZipfWeights(4, 1)
	if !(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]) {
		t.Errorf("zipf weights not decreasing: %v", w)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-4) > 1e-9 {
		t.Errorf("zipf weights sum = %v, want 4", sum)
	}
}

func TestGenerateSkewedWeights(t *testing.T) {
	spec := DefaultSpec(3)
	spec.Skew = 0.5
	spec.MinPar = 3
	topo, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	skewed := false
	for op := range topo.Ops {
		ids := topo.TasksOf(op)
		if len(ids) >= 2 && topo.Weight(ids[0]) > topo.Weight(ids[1]) {
			skewed = true
		}
	}
	if !skewed {
		t.Error("Skew produced no skewed operator weights")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{MinOps: 1, MaxOps: 5, MinPar: 1, MaxPar: 2},
		{MinOps: 5, MaxOps: 4, MinPar: 1, MaxPar: 2},
		{MinOps: 5, MaxOps: 6, MinPar: 0, MaxPar: 2},
		{MinOps: 5, MaxOps: 6, MinPar: 3, MaxPar: 2},
		{MinOps: 5, MaxOps: 6, MinPar: 1, MaxPar: 2, JoinFraction: 1.5},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

// Property: every generated topology is a valid DAG with positive rates
// everywhere.
func TestGeneratedAlwaysValid(t *testing.T) {
	check := func(seed int64, full bool, join bool) bool {
		spec := DefaultSpec(seed)
		spec.Full = full
		if join {
			spec.JoinFraction = 0.5
		}
		topo, err := Generate(spec)
		if err != nil {
			return false
		}
		for _, task := range topo.Tasks {
			if topo.OutRate(task.ID) <= 0 {
				return false
			}
		}
		return len(topo.SinkOps()) >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
