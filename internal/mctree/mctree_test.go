package mctree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fidelity"
	"repro/internal/topology"
)

// fullChain builds a chain of k operators with the given parallelisms,
// all connected with Full partitioning.
func fullChain(parallelism ...int) *topology.Topology {
	b := topology.NewBuilder()
	prev := b.AddSource("O0", parallelism[0], 100)
	for i := 1; i < len(parallelism); i++ {
		op := b.AddOperator("O", parallelism[i], topology.Independent, 1)
		b.Connect(prev, op, topology.Full)
		prev = op
	}
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	return topo
}

// TestFullChainCount verifies §IV-C: for a sequence of k operators all
// using Full partitioning, the number of MC-trees equals the product of
// the operator parallelisms.
func TestFullChainCount(t *testing.T) {
	cases := [][]int{{2, 2}, {2, 3, 2}, {4, 1, 3}, {2, 2, 2, 2}}
	for _, par := range cases {
		topo := fullChain(par...)
		want := 1.0
		for _, p := range par {
			want *= float64(p)
		}
		if got := Count(topo); got != want {
			t.Errorf("Count(%v) = %v, want %v", par, got, want)
		}
		trees, err := Enumerate(topo, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if len(trees) != int(want) {
			t.Errorf("Enumerate(%v) found %d trees, want %d", par, len(trees), int(want))
		}
		// Every tree has exactly one task per operator.
		for _, tr := range trees {
			if len(tr.Tasks) != len(par) {
				t.Errorf("tree %v has %d tasks, want %d", tr.Tasks, len(tr.Tasks), len(par))
			}
		}
	}
}

// diamondTopo builds the Fig. 1 style shape: two source operators
// feeding O3 (kind selectable), which feeds O4.
func diamondTopo(kind topology.InputKind, p1, p2, p3, p4 int) *topology.Topology {
	b := topology.NewBuilder()
	o1 := b.AddSource("O1", p1, 100)
	o2 := b.AddSource("O2", p2, 100)
	o3 := b.AddOperator("O3", p3, kind, 1)
	o4 := b.AddOperator("O4", p4, topology.Independent, 1)
	b.Connect(o1, o3, topology.Full)
	b.Connect(o2, o3, topology.Full)
	b.Connect(o3, o4, topology.Full)
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	return topo
}

// TestDiamondSemantics checks the Fig. 1 discussion: with an
// independent-input O3 an MC-tree contains one source task from either
// O1 or O2; with a correlated-input O3 it must contain one task from
// each of O1 and O2.
func TestDiamondSemantics(t *testing.T) {
	indep := diamondTopo(topology.Independent, 2, 2, 1, 1)
	trees, err := Enumerate(indep, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 4 { // one of 4 source tasks + o3 + o4
		t.Fatalf("independent: %d trees, want 4", len(trees))
	}
	for _, tr := range trees {
		if len(tr.Tasks) != 3 {
			t.Errorf("independent tree %v should have 3 tasks", tr.Tasks)
		}
	}

	corr := diamondTopo(topology.Correlated, 2, 2, 1, 1)
	trees, err = Enumerate(corr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 4 { // 2 choices from O1 x 2 from O2
		t.Fatalf("correlated: %d trees, want 4", len(trees))
	}
	for _, tr := range trees {
		if len(tr.Tasks) != 4 {
			t.Errorf("correlated tree %v should have 4 tasks (one per operator side)", tr.Tasks)
		}
	}
	if got, want := Count(corr), 4.0; got != want {
		t.Errorf("Count(correlated diamond) = %v, want %v", got, want)
	}
	if got, want := Count(indep), 4.0; got != want {
		t.Errorf("Count(independent diamond) = %v, want %v", got, want)
	}
}

func TestEnumerateCap(t *testing.T) {
	topo := fullChain(4, 4, 4, 4) // 256 trees
	if _, err := Enumerate(topo, 100); !errors.Is(err, ErrTooManyTrees) {
		t.Fatalf("err = %v, want ErrTooManyTrees", err)
	}
	if trees, err := Enumerate(topo, 256); err != nil || len(trees) != 256 {
		t.Fatalf("Enumerate = %d trees, %v; want 256, nil", len(trees), err)
	}
}

func TestTreeHelpers(t *testing.T) {
	tr := Tree{Tasks: []topology.TaskID{1, 3, 5}}
	if tr.Key() != "1,3,5" {
		t.Errorf("Key = %q", tr.Key())
	}
	if !tr.Contains(3) || tr.Contains(2) {
		t.Error("Contains misbehaves")
	}
	if tr.Size() != 3 {
		t.Errorf("Size = %d", tr.Size())
	}
	rep := make([]bool, 6)
	rep[3] = true
	if got := tr.NonReplicated(rep); got != 2 {
		t.Errorf("NonReplicated = %d, want 2", got)
	}
}

// TestTreeAliveImpliesOutput: replicating exactly the tasks of one
// MC-tree yields positive worst-case OF (the tree is complete), and
// dropping any single task of the tree yields zero OF (the tree is
// minimal). This is Definition 1 as an executable property.
func TestTreeAliveImpliesOutput(t *testing.T) {
	topos := []*topology.Topology{
		fullChain(2, 3, 2),
		diamondTopo(topology.Correlated, 2, 2, 2, 1),
		diamondTopo(topology.Independent, 2, 2, 2, 1),
	}
	for ti, topo := range topos {
		trees, err := Enumerate(topo, 1000)
		if err != nil {
			t.Fatal(err)
		}
		ev := fidelity.NewModel(topo).NewEvaluator()
		for _, tr := range trees {
			plan := make([]bool, topo.NumTasks())
			for _, id := range tr.Tasks {
				plan[id] = true
			}
			if of := ev.OFPlan(plan); of <= 0 {
				t.Errorf("topo %d: complete tree %v has OF %v, want > 0", ti, tr.Tasks, of)
			}
			for _, id := range tr.Tasks {
				plan[id] = false
				if of := ev.OFPlan(plan); of != 0 {
					t.Errorf("topo %d: tree %v without task %d has OF %v, want 0", ti, tr.Tasks, id, of)
				}
				plan[id] = true
			}
		}
	}
}

func TestDecomposeAllFull(t *testing.T) {
	topo := fullChain(2, 2, 2)
	subs := Decompose(topo)
	if len(subs) != 1 || subs[0].Kind != FullSub || len(subs[0].Ops) != 3 {
		t.Fatalf("Decompose(full chain) = %+v, want one full sub with 3 ops", subs)
	}
	if !IsFullTopology(topo) {
		t.Error("IsFullTopology = false for full chain")
	}
}

func TestDecomposeStructured(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 8, 100)
	o1 := b.AddOperator("O1", 4, topology.Independent, 1)
	o2 := b.AddOperator("O2", 2, topology.Independent, 1)
	b.Connect(src, o1, topology.Merge)
	b.Connect(o1, o2, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	subs := Decompose(topo)
	if len(subs) != 1 || subs[0].Kind != StructuredSub || len(subs[0].Ops) != 3 {
		t.Fatalf("Decompose(merge chain) = %+v, want one structured sub", subs)
	}
	if !IsStructuredTopology(topo) {
		t.Error("IsStructuredTopology = false for merge chain")
	}
}

// TestDecomposeGeneral builds a Fig. 4 style general topology: a
// structured upper part {O1,O2} feeding an all-Full lower part
// {O3,O4,O5}; the decomposition must split at the junction.
func TestDecomposeGeneral(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("O1", 8, 100)
	o2 := b.AddOperator("O2", 8, topology.Independent, 1)
	o3 := b.AddOperator("O3", 4, topology.Independent, 1)
	o4 := b.AddOperator("O4", 2, topology.Independent, 1)
	o5 := b.AddOperator("O5", 1, topology.Independent, 1)
	b.Connect(src, o2, topology.OneToOne)
	b.Connect(o2, o3, topology.Merge)
	b.Connect(o3, o4, topology.Full)
	b.Connect(o4, o5, topology.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	subs := Decompose(topo)
	if len(subs) != 2 {
		t.Fatalf("Decompose = %+v, want 2 subs", subs)
	}
	// subs sorted by smallest op: first is the structured upper part
	if subs[0].Kind != StructuredSub || len(subs[0].Ops) != 2 {
		t.Errorf("upper sub = %+v, want structured {O1,O2}", subs[0])
	}
	if subs[1].Kind != FullSub || len(subs[1].Ops) != 3 {
		t.Errorf("lower sub = %+v, want full {O3,O4,O5}", subs[1])
	}
	if IsFullTopology(topo) || IsStructuredTopology(topo) {
		t.Error("general topology misclassified")
	}
}

// TestDecomposeFullIntoSink: a single layer of Full edges into the sink
// operator is the legal Full partitioning into a structured topology's
// output operator, so no split happens.
func TestDecomposeFullIntoSink(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("O1", 8, 100)
	o2 := b.AddOperator("O2", 4, topology.Independent, 1)
	o3 := b.AddOperator("O3", 2, topology.Independent, 1)
	b.Connect(src, o2, topology.Merge)
	b.Connect(o2, o3, topology.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !IsStructuredTopology(topo) {
		t.Fatal("topology should classify as structured (Full only into sink)")
	}
	subs := Decompose(topo)
	if len(subs) != 1 || subs[0].Kind != StructuredSub || len(subs[0].Ops) != 3 {
		t.Fatalf("Decompose = %+v, want one structured sub with 3 ops", subs)
	}
}

// TestSplitUnitsMergeSplit reproduces Fig. 3(a): a merge into an
// operator that splits its output forces a unit boundary before the
// merge.
func TestSplitUnitsMergeSplit(t *testing.T) {
	b := topology.NewBuilder()
	o1 := b.AddSource("O1", 4, 100)
	o2 := b.AddOperator("O2", 2, topology.Independent, 1)
	o3 := b.AddOperator("O3", 4, topology.Independent, 1)
	b.Connect(o1, o2, topology.Merge)
	b.Connect(o2, o3, topology.Split)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	subs := Decompose(topo)
	if len(subs) != 1 {
		t.Fatalf("want single structured sub, got %+v", subs)
	}
	units, err := SplitUnits(topo, subs[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %+v, want 2 (boundary between O1 and O2)", units)
	}
	if len(units[0].Ops) != 1 || units[0].Ops[0] != 0 {
		t.Errorf("first unit = %+v, want {O1}", units[0])
	}
	if len(units[1].Ops) != 2 {
		t.Errorf("second unit = %+v, want {O2,O3}", units[1])
	}
}

// TestSplitUnitsJoinMerge reproduces Fig. 3(b): a join operator with a
// merge input forces a unit boundary between the merging upstream and
// the join.
func TestSplitUnitsJoinMerge(t *testing.T) {
	b := topology.NewBuilder()
	o1 := b.AddSource("O1", 4, 100)
	o2 := b.AddSource("O2", 2, 100)
	o3 := b.AddOperator("O3", 2, topology.Correlated, 1)
	b.Connect(o1, o3, topology.Merge)
	b.Connect(o2, o3, topology.OneToOne)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	subs := Decompose(topo)
	if len(subs) != 1 {
		t.Fatalf("want single sub, got %+v", subs)
	}
	units, err := SplitUnits(topo, subs[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %v, want 2 (boundary between O1 and O3)", units)
	}
}

func TestSegmentsConnected(t *testing.T) {
	topo := fullChain(2, 2)
	src := topo.TasksOf(0)
	down := topo.TasksOf(1)
	a := Tree{Tasks: []topology.TaskID{src[0]}}
	b := Tree{Tasks: []topology.TaskID{down[0]}}
	if !SegmentsConnected(topo, a, b) {
		t.Error("expected connection across Full edge")
	}
	if !SegmentsConnected(topo, b, a) {
		t.Error("expected connection to be symmetric")
	}
	c := Tree{Tasks: []topology.TaskID{src[1]}}
	if SegmentsConnected(topo, a, c) {
		t.Error("tasks of the same operator are not connected")
	}
}

// Property: enumeration agrees with Count on random layered topologies
// without diamonds (every derivation yields a distinct task set there).
func TestEnumerateMatchesCount(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := topology.NewBuilder()
		layers := 2 + rng.Intn(3)
		prev := b.AddSource("src", 1+rng.Intn(3), 100)
		for l := 1; l < layers; l++ {
			op := b.AddOperator("op", 1+rng.Intn(3), topology.Independent, 1)
			b.Connect(prev, op, topology.Full)
			prev = op
		}
		topo, err := b.Build()
		if err != nil {
			return false
		}
		trees, err := Enumerate(topo, 100000)
		if err != nil {
			return false
		}
		return float64(len(trees)) == Count(topo)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated tree's task set is sorted, unique, contains
// exactly one sink task and at least one source task.
func TestTreeWellFormed(t *testing.T) {
	topo := diamondTopo(topology.Correlated, 3, 2, 2, 2)
	trees, err := Enumerate(topo, 10000)
	if err != nil {
		t.Fatal(err)
	}
	sinkSet := map[topology.TaskID]bool{}
	for _, id := range topo.SinkTasks() {
		sinkSet[id] = true
	}
	srcSet := map[topology.TaskID]bool{}
	for _, op := range topo.SourceOps() {
		for _, id := range topo.TasksOf(op) {
			srcSet[id] = true
		}
	}
	keys := map[string]bool{}
	for _, tr := range trees {
		if keys[tr.Key()] {
			t.Fatalf("duplicate tree %v", tr.Tasks)
		}
		keys[tr.Key()] = true
		sinks, srcs := 0, 0
		for i, id := range tr.Tasks {
			if i > 0 && tr.Tasks[i-1] >= id {
				t.Fatalf("tree %v not sorted", tr.Tasks)
			}
			if sinkSet[id] {
				sinks++
			}
			if srcSet[id] {
				srcs++
			}
		}
		if sinks != 1 {
			t.Errorf("tree %v has %d sink tasks, want 1", tr.Tasks, sinks)
		}
		if srcs < 1 {
			t.Errorf("tree %v has no source task", tr.Tasks)
		}
	}
}

func TestSubKindString(t *testing.T) {
	if StructuredSub.String() != "structured" || FullSub.String() != "full" {
		t.Error("SubKind.String misbehaves")
	}
}
