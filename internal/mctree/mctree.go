// Package mctree implements the Minimal Complete Tree (MC-tree) analysis
// of Su & Zhou (ICDE 2016), §III-B and §IV-C: enumeration and counting
// of MC-trees, the classification of topologies into structured and full
// topologies, the unit/segment decomposition of structured topologies,
// and the DFS-based decomposition of a general topology into
// sub-topologies.
//
// An MC-tree (Definition 1) is a tree-structured subgraph of the
// topology DAG whose source vertices are tasks of source operators and
// whose sink vertex is a task of an output operator; it can contribute
// to final outputs if and only if all of its tasks are alive. For a
// correlated-input (join) task the tree must contain one upstream
// subtree per input stream; for an independent-input task a single
// upstream subtree of any one input substream suffices.
package mctree

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// ErrTooManyTrees is returned when enumeration would exceed the caller's
// cap; the number of MC-trees grows as the product of operator
// parallelisms for chains of Full partitionings (§IV-C).
var ErrTooManyTrees = errors.New("mctree: too many MC-trees")

// Tree is one MC-tree, represented as its sorted set of task IDs.
type Tree struct {
	Tasks []topology.TaskID
}

// Key returns a canonical string identity for the tree's task set.
func (tr Tree) Key() string {
	var b strings.Builder
	for i, id := range tr.Tasks {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	return b.String()
}

// Contains reports whether the tree includes the task.
func (tr Tree) Contains(id topology.TaskID) bool {
	i := sort.Search(len(tr.Tasks), func(i int) bool { return tr.Tasks[i] >= id })
	return i < len(tr.Tasks) && tr.Tasks[i] == id
}

// Size returns the number of tasks in the tree.
func (tr Tree) Size() int { return len(tr.Tasks) }

// NonReplicated returns the number of the tree's tasks that are not set
// in the replicated vector (the paper's nonrep_tasks(tr, CP)).
func (tr Tree) NonReplicated(replicated []bool) int {
	n := 0
	for _, id := range tr.Tasks {
		if !replicated[id] {
			n++
		}
	}
	return n
}

// MissingTasks returns the tree's tasks absent from the replicated
// vector, in ascending order — the tree-local delta a planner must add
// on top of an existing plan to complete the tree. It returns nil when
// the tree is fully covered.
func (tr Tree) MissingTasks(replicated []bool) []topology.TaskID {
	var out []topology.TaskID
	for _, id := range tr.Tasks {
		if !replicated[id] {
			out = append(out, id)
		}
	}
	return out
}

func newTree(set map[topology.TaskID]bool) Tree {
	tasks := make([]topology.TaskID, 0, len(set))
	for id := range set {
		tasks = append(tasks, id)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	return Tree{Tasks: tasks}
}

// scope restricts the traversal to a subset of operators; nil means the
// whole topology.
type scope struct {
	t   *topology.Topology
	ops map[int]bool // nil = all
}

func (s scope) inScope(op int) bool { return s.ops == nil || s.ops[op] }

// inputStreams returns the input streams of a task restricted to the
// scope (streams from out-of-scope operators are treated as external and
// ignored, making in-scope boundary tasks behave as sources).
func (s scope) inputStreams(id topology.TaskID) []topology.InputStream {
	var out []topology.InputStream
	for _, in := range s.t.InputsOf(id) {
		if s.inScope(in.FromOp) {
			out = append(out, in)
		}
	}
	return out
}

// sinkTasks returns the tasks of in-scope operators that have no
// downstream operator within the scope.
func (s scope) sinkTasks() []topology.TaskID {
	var out []topology.TaskID
	for op := range s.t.Ops {
		if !s.inScope(op) {
			continue
		}
		hasDown := false
		for _, d := range s.t.DownstreamOps(op) {
			if s.inScope(d) {
				hasDown = true
				break
			}
		}
		if !hasDown {
			out = append(out, s.t.TasksOf(op)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Enumerate lists all MC-trees of the topology. It fails with
// ErrTooManyTrees once more than maxTrees distinct trees exist.
func Enumerate(t *topology.Topology, maxTrees int) ([]Tree, error) {
	return enumerateScope(scope{t: t}, maxTrees)
}

// EnumerateSub lists the MC-trees of the sub-graph induced by the given
// operators, treated as a standalone topology: tasks of operators with
// no in-scope upstream act as sources, tasks of operators with no
// in-scope downstream act as sinks. These are the "segments" of §IV-C1.
func EnumerateSub(t *topology.Topology, ops []int, maxTrees int) ([]Tree, error) {
	m := make(map[int]bool, len(ops))
	for _, op := range ops {
		m[op] = true
	}
	return enumerateScope(scope{t: t, ops: m}, maxTrees)
}

func enumerateScope(s scope, maxTrees int) ([]Tree, error) {
	memo := make(map[topology.TaskID][]map[topology.TaskID]bool)
	var build func(id topology.TaskID) ([]map[topology.TaskID]bool, error)
	build = func(id topology.TaskID) ([]map[topology.TaskID]bool, error) {
		if sets, ok := memo[id]; ok {
			return sets, nil
		}
		ins := s.inputStreams(id)
		var sets []map[topology.TaskID]bool
		if len(ins) == 0 {
			sets = []map[topology.TaskID]bool{{id: true}}
		} else if s.t.Ops[s.t.Tasks[id].Op].Kind == topology.Correlated {
			// one upstream subtree per input stream: cross product
			sets = []map[topology.TaskID]bool{{id: true}}
			for _, in := range ins {
				var streamOpts []map[topology.TaskID]bool
				for _, sub := range in.Subs {
					up, err := build(sub.From)
					if err != nil {
						return nil, err
					}
					streamOpts = append(streamOpts, up...)
				}
				var next []map[topology.TaskID]bool
				for _, base := range sets {
					for _, opt := range streamOpts {
						merged := make(map[topology.TaskID]bool, len(base)+len(opt))
						for k := range base {
							merged[k] = true
						}
						for k := range opt {
							merged[k] = true
						}
						next = append(next, merged)
						if len(next) > maxTrees {
							return nil, fmt.Errorf("%w (cap %d)", ErrTooManyTrees, maxTrees)
						}
					}
				}
				sets = next
			}
		} else {
			// independent input: any single substream suffices
			for _, in := range ins {
				for _, sub := range in.Subs {
					up, err := build(sub.From)
					if err != nil {
						return nil, err
					}
					for _, opt := range up {
						merged := make(map[topology.TaskID]bool, len(opt)+1)
						for k := range opt {
							merged[k] = true
						}
						merged[id] = true
						sets = append(sets, merged)
						if len(sets) > maxTrees {
							return nil, fmt.Errorf("%w (cap %d)", ErrTooManyTrees, maxTrees)
						}
					}
				}
			}
		}
		memo[id] = sets
		return sets, nil
	}

	seen := make(map[string]bool)
	var trees []Tree
	for _, sink := range s.sinkTasks() {
		sets, err := build(sink)
		if err != nil {
			return nil, err
		}
		for _, set := range sets {
			tr := newTree(set)
			k := tr.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			trees = append(trees, tr)
			if len(trees) > maxTrees {
				return nil, fmt.Errorf("%w (cap %d)", ErrTooManyTrees, maxTrees)
			}
		}
	}
	// Deterministic order: by size then key.
	sort.Slice(trees, func(i, j int) bool {
		if len(trees[i].Tasks) != len(trees[j].Tasks) {
			return len(trees[i].Tasks) < len(trees[j].Tasks)
		}
		return lessTasks(trees[i].Tasks, trees[j].Tasks)
	})
	return trees, nil
}

func lessTasks(a, b []topology.TaskID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Count computes the number of MC-tree derivations of the topology
// without enumerating them. For chains of Full partitionings this equals
// the product of the operator parallelisms (§IV-C). The count is an
// upper bound on the number of distinct trees (different derivations can
// induce the same task set in diamond-shaped DAGs).
func Count(t *topology.Topology) float64 {
	memo := make(map[topology.TaskID]float64)
	var count func(id topology.TaskID) float64
	count = func(id topology.TaskID) float64 {
		if c, ok := memo[id]; ok {
			return c
		}
		ins := t.InputsOf(id)
		var c float64
		if len(ins) == 0 {
			c = 1
		} else if t.Ops[t.Tasks[id].Op].Kind == topology.Correlated {
			c = 1
			for _, in := range ins {
				var streamSum float64
				for _, sub := range in.Subs {
					streamSum += count(sub.From)
				}
				c *= streamSum
			}
		} else {
			for _, in := range ins {
				for _, sub := range in.Subs {
					c += count(sub.From)
				}
			}
		}
		memo[id] = c
		return c
	}
	var total float64
	for _, sink := range t.SinkTasks() {
		total += count(sink)
	}
	return total
}

// MinTreeSize returns the number of tasks in the smallest MC-tree of
// the topology — the minimum replication budget that can yield a
// non-zero worst-case OF. For correlated-input operators the per-stream
// minima are summed, which slightly overestimates trees whose branches
// share tasks in diamond-shaped DAGs.
func MinTreeSize(t *topology.Topology) int {
	memo := make(map[topology.TaskID]int)
	var size func(id topology.TaskID) int
	size = func(id topology.TaskID) int {
		if s, ok := memo[id]; ok {
			return s
		}
		memo[id] = 1 << 30 // cycle guard; topologies are DAGs anyway
		ins := t.InputsOf(id)
		s := 1
		if len(ins) > 0 {
			if t.Ops[t.Tasks[id].Op].Kind == topology.Correlated {
				for _, in := range ins {
					best := 1 << 30
					for _, sub := range in.Subs {
						if v := size(sub.From); v < best {
							best = v
						}
					}
					s += best
				}
			} else {
				best := 1 << 30
				for _, in := range ins {
					for _, sub := range in.Subs {
						if v := size(sub.From); v < best {
							best = v
						}
					}
				}
				s += best
			}
		}
		memo[id] = s
		return s
	}
	best := 1 << 30
	for _, sink := range t.SinkTasks() {
		if v := size(sink); v < best {
			best = v
		}
	}
	if best == 1<<30 {
		return 0
	}
	return best
}
