package mctree

import (
	"sort"

	"repro/internal/topology"
)

// SubKind classifies a sub-topology per §IV-C.
type SubKind int

const (
	// StructuredSub: only the operators producing the sub-topology's
	// outputs may use Full partitioning; internal edges are one-to-one,
	// split or merge.
	StructuredSub SubKind = iota
	// FullSub: all operators use Full partitioning.
	FullSub
)

// String returns a short name for the sub-topology kind.
func (k SubKind) String() string {
	if k == FullSub {
		return "full"
	}
	return "structured"
}

// SubTopology is one piece of the general-topology decomposition of
// Algorithm 5: a set of operators handled as a unit by either the
// structured-topology planner (Alg. 3) or the full-topology planner
// (Alg. 4).
type SubTopology struct {
	Ops  []int
	Kind SubKind
}

// Decompose splits a general topology into sub-topologies, each either
// a full topology or a structured topology, by multiple upstream DFS
// traversals starting from the sink operators (§IV-C3). Boundaries are
// placed so that at least one partitioning function between neighbouring
// sub-topologies is Full, which makes segment selection in the
// sub-topologies independent of each other.
func Decompose(t *topology.Topology) []SubTopology {
	assigned := make([]bool, t.NumOps())
	startSet := map[int]bool{}
	var starts []int
	for _, op := range t.SinkOps() {
		starts = append(starts, op)
		startSet[op] = true
	}
	var subs []SubTopology
	for len(starts) > 0 {
		os := starts[0]
		starts = starts[1:]
		if assigned[os] {
			continue
		}
		kind := classifyStart(t, os)
		member := map[int]bool{os: true}
		assigned[os] = true
		// Upstream DFS. An upstream operator is compatible if all of its
		// edges into the current sub-topology match the kind: Full for a
		// full topology; non-Full for a structured one, except that Full
		// partitioning may feed the structured sub-topology's output
		// operator (its start operator), per the structured-topology
		// definition of §IV-C.
		stack := []int{os}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range t.UpstreamOps(cur) {
				if member[u] || assigned[u] {
					continue
				}
				if compatible(t, u, os, member, kind) {
					member[u] = true
					assigned[u] = true
					stack = append(stack, u)
				} else if !startSet[u] {
					startSet[u] = true
					starts = append(starts, u)
				}
			}
		}
		sub := SubTopology{Kind: kind}
		for op := range member {
			sub.Ops = append(sub.Ops, op)
		}
		sort.Ints(sub.Ops)
		subs = append(subs, sub)
	}
	// Deterministic order: by smallest member operator.
	sort.Slice(subs, func(i, j int) bool { return subs[i].Ops[0] < subs[j].Ops[0] })
	return subs
}

// classifyStart decides whether the sub-topology grown from start
// operator os is a full topology or a structured topology. It is a full
// topology when all of os's input edges are Full and the immediate
// upstream operators are themselves full-type (sources, or all of their
// own inputs are Full); a single layer of Full edges into os is instead
// the legal Full partitioning into a structured topology's output
// operator.
func classifyStart(t *topology.Topology, os int) SubKind {
	ups := t.UpstreamOps(os)
	if len(ups) == 0 {
		return StructuredSub
	}
	for _, u := range ups {
		if e, ok := t.EdgeBetween(u, os); !ok || e.Part != topology.Full {
			return StructuredSub
		}
	}
	for _, u := range ups {
		for _, uu := range t.UpstreamOps(u) {
			if e, ok := t.EdgeBetween(uu, u); !ok || e.Part != topology.Full {
				return StructuredSub
			}
		}
	}
	return FullSub
}

// compatible reports whether operator u may join the sub-topology with
// the given members and kind, considering every edge from u into the
// member set. start is the sub-topology's output operator.
func compatible(t *topology.Topology, u, start int, member map[int]bool, kind SubKind) bool {
	for _, d := range t.DownstreamOps(u) {
		if !member[d] {
			continue
		}
		e, _ := t.EdgeBetween(u, d)
		if kind == FullSub && e.Part != topology.Full {
			return false
		}
		if kind == StructuredSub && e.Part == topology.Full && d != start {
			return false
		}
	}
	return true
}

// Unit is one unit of a structured (sub-)topology per §IV-C1, together
// with its segments (the MC-trees of the unit treated as a standalone
// topology).
type Unit struct {
	Ops      []int
	Segments []Tree
}

// SplitUnits divides a structured sub-topology into units so that the
// number of segments per unit stays small. Unit boundaries are placed on
// a merge edge (u -> v) when v also splits its output or when v is a
// correlated-input (join) operator — the two situations of Fig. 3 that
// multiply MC-tree counts — and on any Full edge.
func SplitUnits(t *topology.Topology, sub SubTopology, maxSegments int) ([]Unit, error) {
	inSub := make(map[int]bool, len(sub.Ops))
	for _, op := range sub.Ops {
		inSub[op] = true
	}
	boundary := func(u, v int) bool {
		e, ok := t.EdgeBetween(u, v)
		if !ok {
			return true
		}
		if e.Part == topology.Full {
			return true
		}
		if e.Part == topology.Merge {
			if t.Ops[v].Kind == topology.Correlated {
				return true
			}
			for _, d := range t.DownstreamOps(v) {
				if !inSub[d] {
					continue
				}
				if de, ok := t.EdgeBetween(v, d); ok && de.Part == topology.Split {
					return true
				}
			}
		}
		return false
	}
	// Union of operators connected by non-boundary edges.
	uf := newUnionFind(t.NumOps())
	for _, u := range sub.Ops {
		for _, d := range t.DownstreamOps(u) {
			if inSub[d] && !boundary(u, d) {
				uf.union(u, d)
			}
		}
	}
	groups := map[int][]int{}
	for _, op := range sub.Ops {
		r := uf.find(op)
		groups[r] = append(groups[r], op)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var units []Unit
	for _, r := range roots {
		ops := groups[r]
		sort.Ints(ops)
		segs, err := EnumerateSub(t, ops, maxSegments)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{Ops: ops, Segments: segs})
	}
	return units, nil
}

// UnitsConnected reports whether two segments are connected: some task
// of a has a substream to some task of b or vice versa.
func SegmentsConnected(t *topology.Topology, a, b Tree) bool {
	inB := make(map[topology.TaskID]bool, len(b.Tasks))
	for _, id := range b.Tasks {
		inB[id] = true
	}
	for _, id := range a.Tasks {
		for _, d := range t.DownstreamTasks(id) {
			if inB[d] {
				return true
			}
		}
		for _, u := range t.UpstreamTasks(id) {
			if inB[u] {
				return true
			}
		}
	}
	return false
}

// IsFullTopology reports whether every operator of the topology connects
// to each downstream neighbour with Full partitioning.
func IsFullTopology(t *topology.Topology) bool {
	for _, e := range t.Edges {
		if e.Part != topology.Full {
			return false
		}
	}
	return true
}

// IsStructuredTopology reports whether Full partitioning appears only on
// edges into sink operators.
func IsStructuredTopology(t *topology.Topology) bool {
	for _, e := range t.Edges {
		if e.Part == topology.Full && !t.IsSink(e.To) {
			return false
		}
	}
	return true
}

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
