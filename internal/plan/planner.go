package plan

import (
	"fmt"
	"sort"
	"sync"
)

// Planner is the uniform interface of every replication-plan optimiser:
// given a shared planning context and a budget of actively replicated
// tasks, produce a plan. Implementations are stateless option structs —
// a Planner value may be used concurrently and reused across contexts.
type Planner interface {
	// Name is the planner's registry name (e.g. "dp", "sa", "greedy").
	Name() string
	// Plan computes a replication plan within the budget.
	Plan(c *Context, budget int) (Plan, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Planner{}
)

// Register adds a planner to the package registry under its Name. It
// panics on an empty or duplicate name; the default planners are
// registered at package init.
func Register(p Planner) {
	name := p.Name()
	if name == "" {
		panic("plan: Register with empty planner name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("plan: Register called twice for planner %q", name))
	}
	registry[name] = p
}

// Lookup returns the registered planner with the given name.
func Lookup(name string) (Planner, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// MustLookup returns the registered planner or panics; for tests and
// internal call sites that name built-in planners.
func MustLookup(name string) Planner {
	p, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("plan: unknown planner %q", name))
	}
	return p
}

// Names lists the registered planner names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(DP{})
	Register(Greedy{})
	Register(SA{})
	Register(SA{Opts: SAOptions{Metric: MetricIC}})
	Register(Structured{})
	Register(Full{})
	Register(Brute{})
	Register(Portfolio{})
	// Correlation-aware variants: inner planner seeds, hill-climbing
	// under the context's domain-correlated failure distribution
	// refines (see corr.go).
	Register(Corr{Inner: DP{}})
	Register(Corr{Inner: Structured{}})
	Register(Corr{Inner: SA{}})
}
