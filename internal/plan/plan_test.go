package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// chainTopo builds src -> mid -> sink, all Full, with the given
// parallelisms.
func chainTopo(par ...int) *topology.Topology {
	b := topology.NewBuilder()
	prev := b.AddSource("O0", par[0], 100)
	for i := 1; i < len(par); i++ {
		op := b.AddOperator("O", par[i], topology.Independent, 1)
		b.Connect(prev, op, topology.Full)
		prev = op
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

func TestPlanBasics(t *testing.T) {
	p := New(5)
	if p.Size() != 0 {
		t.Fatalf("empty plan size = %d", p.Size())
	}
	p.Add(2)
	p.Add(2) // duplicate
	p.Add(4)
	if p.Size() != 2 {
		t.Fatalf("size = %d, want 2", p.Size())
	}
	if !p.Has(2) || p.Has(3) {
		t.Error("Has misbehaves")
	}
	got := p.Tasks()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Tasks = %v", got)
	}
	q := p.Clone()
	q.Add(0)
	if p.Has(0) {
		t.Error("Clone is not independent")
	}
	if p.Key() == q.Key() {
		t.Error("different plans share a key")
	}
}

func TestGreedyBudgetAndDeterminism(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	for budget := 0; budget <= 6; budget++ {
		p, _ := Greedy{}.Plan(c, budget)
		if p.Size() != budget {
			t.Errorf("Greedy(%d) size = %d", budget, p.Size())
		}
		p2, _ := Greedy{}.Plan(c, budget)
		if p.Key() != p2.Key() {
			t.Errorf("Greedy(%d) not deterministic", budget)
		}
	}
	if p, _ := (Greedy{}).Plan(c, 100); p.Size() != 6 {
		t.Errorf("Greedy(overbudget) size = %d, want 6", p.Size())
	}
}

// TestGreedyTreeBlindness demonstrates the paper's central criticism of
// the greedy algorithm (§IV-B): at small replication ratios it picks
// individually important tasks that do not form a complete MC-tree,
// yielding zero worst-case OF where the structure-aware planner finds a
// working plan.
func TestGreedyTreeBlindness(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	budget := 3 // exactly one task per operator is affordable
	g, _ := Greedy{}.Plan(c, budget)
	sa, err := SA{}.Plan(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	gOF := c.OF(g)
	saOF := c.OF(sa)
	if gOF != 0 {
		t.Errorf("greedy OF = %v, want 0 (picks the sink pair, no complete chain)", gOF)
	}
	if saOF <= 0 {
		t.Errorf("structure-aware OF = %v, want > 0", saOF)
	}
}

func TestDPOptimalOnChain(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	for budget := 0; budget <= 6; budget++ {
		dp, err := DP{}.Plan(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := Brute{}.Plan(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if dpOF, bfOF := c.OF(dp), c.OF(bf); dpOF != bfOF {
			t.Errorf("budget %d: DP OF = %v, brute force OF = %v", budget, dpOF, bfOF)
		}
		if dp.Size() > budget {
			t.Errorf("budget %d: DP used %d tasks", budget, dp.Size())
		}
	}
}

// randomSmallTopo builds a random topology small enough for brute force.
func randomSmallTopo(rng *rand.Rand) *topology.Topology {
	b := topology.NewBuilder()
	nOps := 2 + rng.Intn(2)
	parts := []topology.Partitioning{topology.Full, topology.Merge, topology.OneToOne, topology.Split}
	par := 1 + rng.Intn(3)
	prev := b.AddSource("src", par, 100*(1+rng.Float64()))
	total := par
	for i := 1; i < nOps; i++ {
		kind := topology.Independent
		if rng.Intn(3) == 0 {
			kind = topology.Correlated
		}
		part := parts[rng.Intn(len(parts))]
		var np int
		switch part {
		case topology.OneToOne:
			np = par
		case topology.Merge:
			np = 1 + rng.Intn(par)
		case topology.Split:
			np = par + rng.Intn(3)
		default:
			np = 1 + rng.Intn(3)
		}
		if total+np > 10 {
			break
		}
		op := b.AddOperator("op", np, kind, 0.5+rng.Float64())
		b.Connect(prev, op, part)
		prev = op
		par = np
		total += np
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Property: the dynamic programming planner matches the brute-force
// optimum (Theorem 1), and dominates both SA and greedy.
func TestDPMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		budget := rng.Intn(topo.NumTasks() + 1)
		dp, err := DP{}.Plan(c, budget)
		if err != nil {
			return false
		}
		bf, err := Brute{}.Plan(c, budget)
		if err != nil {
			return false
		}
		dpOF, bfOF := c.OF(dp), c.OF(bf)
		if dpOF < bfOF-1e-12 || dpOF > bfOF+1e-12 {
			t.Logf("seed %d: DP OF %v != brute %v (budget %d)", seed, dpOF, bfOF, budget)
			return false
		}
		sa, err := SA{}.Plan(c, budget)
		if err != nil {
			return false
		}
		if c.OF(sa) > dpOF+1e-12 {
			t.Logf("seed %d: SA OF %v beats optimal %v", seed, c.OF(sa), dpOF)
			return false
		}
		g, _ := Greedy{}.Plan(c, budget)
		if c.OF(g) > dpOF+1e-12 {
			t.Logf("seed %d: greedy OF %v beats optimal %v", seed, c.OF(g), dpOF)
			return false
		}
		return dp.Size() <= budget && sa.Size() <= budget && g.Size() <= budget
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFullTopologyPlanner(t *testing.T) {
	topo := chainTopo(3, 3, 3)
	c := NewContext(topo)
	ops := allOps(topo)

	// Budget below one task per operator: no complete MC-tree, empty.
	p, _ := Full{Ops: ops}.Plan(c, 2)
	if p.Size() != 0 {
		t.Errorf("FullTopology(budget 2) size = %d, want 0", p.Size())
	}

	// Budget of exactly the operator count: one task per operator.
	p, _ = Full{Ops: ops}.Plan(c, 3)
	if p.Size() != 3 {
		t.Fatalf("FullTopology(budget 3) size = %d, want 3", p.Size())
	}
	if of := c.OF(p); of <= 0 {
		t.Errorf("OF = %v, want > 0", of)
	}

	// Full budget: everything replicated, perfect fidelity.
	p, _ = Full{Ops: ops}.Plan(c, 9)
	if p.Size() != 9 {
		t.Errorf("FullTopology(budget 9) size = %d, want 9", p.Size())
	}
	if of := c.OF(p); of < 0.999 {
		t.Errorf("OF = %v, want ~1", of)
	}
}

func TestFullTopologyPrefersHeavyTasks(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 100)
	down := b.AddOperator("down", 2, topology.Independent, 1)
	b.SetWeights(src, []float64{5, 1})
	b.SetWeights(down, []float64{5, 1})
	b.Connect(src, down, topology.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(topo)
	p, _ := Full{}.Plan(c, 2)
	// must pick the heavy task of each operator
	if !p.Has(topo.TasksOf(0)[0]) || !p.Has(topo.TasksOf(1)[0]) {
		t.Errorf("plan %v should pick the heavy tasks", p.Tasks())
	}
}

func TestStructuredTopologyPlanner(t *testing.T) {
	// 4-2-1 merge pyramid: MC-trees are root-to-leaf chains.
	b := topology.NewBuilder()
	src := b.AddSource("src", 4, 100)
	mid := b.AddOperator("mid", 2, topology.Independent, 1)
	sink := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(src, mid, topology.Merge)
	b.Connect(mid, sink, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(topo)
	p, err := Structured{}.Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d, want 3 (one complete chain)", p.Size())
	}
	if of := c.OF(p); of <= 0 {
		t.Errorf("OF = %v, want > 0 for a complete chain", of)
	}
	// With the full budget the plan must reach fidelity 1.
	p, err = Structured{}.Plan(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(p); of < 0.999 {
		t.Errorf("full-budget OF = %v, want ~1", of)
	}
}

func TestStructureAwareSmallBudget(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	p, err := SA{}.Plan(c, 2) // < NumOps
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 {
		t.Errorf("StructureAware below operator count should return empty plan, got %v", p.Tasks())
	}
}

// Property: SA OF is monotone non-decreasing in budget and within
// budget.
func TestSAMonotoneInBudget(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		prev := -1.0
		for budget := 0; budget <= topo.NumTasks(); budget++ {
			p, err := SA{}.Plan(c, budget)
			if err != nil {
				return false
			}
			if p.Size() > budget {
				return false
			}
			of := c.OF(p)
			if of < prev-1e-12 {
				t.Logf("seed %d: OF fell from %v to %v at budget %d", seed, prev, of, budget)
				return false
			}
			prev = of
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScopedOFWholeTopologyMatchesOF(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		p := New(topo.NumTasks())
		for i := 0; i < topo.NumTasks(); i++ {
			if rng.Intn(2) == 0 {
				p.Add(topology.TaskID(i))
			}
		}
		a := c.OF(p)
		b := c.ScopedOF(allOps(topo), p)
		return a-b < 1e-9 && b-a < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStructureAwareGeneralTopology(t *testing.T) {
	// Structured upper part + full lower part (Fig. 4 shape).
	b := topology.NewBuilder()
	src := b.AddSource("O1", 4, 100)
	o2 := b.AddOperator("O2", 2, topology.Independent, 1)
	o3 := b.AddOperator("O3", 2, topology.Independent, 1)
	o4 := b.AddOperator("O4", 2, topology.Independent, 1)
	b.Connect(src, o2, topology.Merge)
	b.Connect(o2, o3, topology.Full)
	b.Connect(o3, o4, topology.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(topo)
	p, err := SA{}.Plan(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(p); of <= 0 {
		t.Errorf("SA OF = %v, want > 0 with budget 4 on 4 operators", of)
	}
	// Full budget reaches fidelity 1.
	p, err = SA{}.Plan(c, topo.NumTasks())
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(p); of < 0.999 {
		t.Errorf("full-budget SA OF = %v, want ~1", of)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	topo := chainTopo(9, 9, 9)
	c := NewContext(topo)
	if _, err := (Brute{}).Plan(c, 3); err == nil {
		t.Fatal("BruteForce accepted a 27-task topology")
	}
}

func TestContextICConsistency(t *testing.T) {
	topo := chainTopo(2, 2)
	c := NewContext(topo)
	full := New(topo.NumTasks())
	for i := 0; i < topo.NumTasks(); i++ {
		full.Add(topology.TaskID(i))
	}
	if ic := c.IC(full); ic < 0.999 {
		t.Errorf("IC(full plan) = %v, want ~1", ic)
	}
	if ic := c.IC(New(topo.NumTasks())); ic != 0 {
		t.Errorf("IC(empty plan) = %v, want 0", ic)
	}
}
