package plan

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/topology"
)

// Scope is a precomputed evaluation scope: a sub-topology (set of
// operators) together with everything the scoped objective evaluation
// needs — the in-scope task order, the scope's sink tasks and their
// total failure-free output rate, and the in-scope downstream adjacency
// used for incremental re-evaluation. Scopes are created by
// Context.ScopeOf and shared; a Scope is safe for concurrent use.
//
// For each metric the scope caches the per-task propagation vector of
// the most recent "base" plan evaluated through Extend, so that probing
// base ∪ {ids} — the inner loop of every sub-topology planner —
// recomputes only the tasks downstream of the added ones instead of
// re-traversing the whole scope.
type Scope struct {
	c   *Context
	sig string
	ops []int

	opIn   []bool            // by operator
	taskIn []bool            // by task
	tasks  []topology.TaskID // in-scope tasks in operator-topological order
	sinks  []topology.TaskID // tasks of scope sink operators
	// totalOut is the failure-free output rate of the scope sinks (the
	// OF normalisation constant).
	totalOut float64
	// down[id] lists the in-scope tasks directly downstream of task id.
	down [][]topology.TaskID

	mu   sync.Mutex
	base [2]scopedBase // indexed by Metric
}

// scopedBase is an immutable snapshot of the per-task propagation
// vector (OF: information loss; IC: throughput fraction) of one plan.
type scopedBase struct {
	key string
	vec []float64
}

// scopeSig returns the canonical identity of an operator set.
func scopeSig(ops []int) string {
	sorted := append([]int(nil), ops...)
	sort.Ints(sorted)
	var b strings.Builder
	for i, op := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(op))
	}
	return b.String()
}

func newScope(c *Context, sig string, ops []int) *Scope {
	t := c.Topo
	s := &Scope{
		c:      c,
		sig:    sig,
		ops:    append([]int(nil), ops...),
		opIn:   make([]bool, t.NumOps()),
		taskIn: make([]bool, t.NumTasks()),
		down:   make([][]topology.TaskID, t.NumTasks()),
	}
	for _, op := range s.ops {
		s.opIn[op] = true
	}
	for _, op := range t.OpOrder() {
		if !s.opIn[op] {
			continue
		}
		for _, id := range t.TasksOf(op) {
			s.taskIn[id] = true
			s.tasks = append(s.tasks, id)
		}
	}
	for _, op := range s.ops {
		hasDown := false
		for _, d := range t.DownstreamOps(op) {
			if s.opIn[d] {
				hasDown = true
				break
			}
		}
		if hasDown {
			continue
		}
		for _, id := range t.TasksOf(op) {
			s.sinks = append(s.sinks, id)
			s.totalOut += t.OutRate(id)
		}
	}
	for _, id := range s.tasks {
		for _, d := range t.DownstreamTasks(id) {
			if s.taskIn[d] {
				s.down[id] = append(s.down[id], d)
			}
		}
	}
	return s
}

// Ops returns the scope's operator set.
func (s *Scope) Ops() []int { return s.ops }

// Eval computes the scoped objective of a plan, memoized on the plan
// key.
func (s *Scope) Eval(m Metric, p Plan) float64 {
	key := scopedMemoKey{scope: s.sig, metric: m, plan: p.Key()}
	if v, ok := s.c.scopedMemoGet(key); ok {
		return v
	}
	vec := make([]float64, s.c.Topo.NumTasks())
	s.compute(m, p, vec, s.tasks)
	v := s.objective(m, vec)
	s.c.scopedMemoPut(key, v)
	return v
}

// EvalBase computes the scoped objective of a plan that is about to
// serve as the base of Extend probes. Unlike Eval it always goes
// through the base-vector cache, so the traversal that produces the
// scalar is the same one the subsequent Extend calls reuse.
func (s *Scope) EvalBase(m Metric, p Plan) float64 {
	v := s.objective(m, s.baseVector(m, p))
	s.c.scopedMemoPut(scopedMemoKey{scope: s.sig, metric: m, plan: p.Key()}, v)
	return v
}

// Extend computes the scoped objective of base ∪ ids. The base plan's
// propagation vector is cached per metric; on a cache hit only the
// tasks downstream of ids are recomputed, so growing a candidate by one
// task costs a local update instead of a whole-scope traversal. The
// result is bit-identical to a full evaluation of the extended plan.
func (s *Scope) Extend(m Metric, base Plan, ids []topology.TaskID) float64 {
	probe := base.Clone()
	probe.AddAll(ids)
	key := scopedMemoKey{scope: s.sig, metric: m, plan: probe.Key()}
	if v, ok := s.c.scopedMemoGet(key); ok {
		return v
	}
	vec := append([]float64(nil), s.baseVector(m, base)...)
	// Dirty set: the added tasks and everything downstream of them
	// within the scope, re-evaluated in scope topological order.
	n := s.c.Topo.NumTasks()
	dirty := make([]bool, n)
	nDirty := 0
	queue := make([]topology.TaskID, 0, len(ids))
	for _, id := range ids {
		if s.taskIn[id] && !dirty[id] {
			dirty[id] = true
			nDirty++
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, d := range s.down[id] {
			if !dirty[d] {
				dirty[d] = true
				nDirty++
				queue = append(queue, d)
			}
		}
	}
	order := make([]topology.TaskID, 0, nDirty)
	for _, id := range s.tasks {
		if dirty[id] {
			order = append(order, id)
		}
	}
	s.compute(m, probe, vec, order)
	v := s.objective(m, vec)
	s.c.scopedMemoPut(key, v)
	return v
}

// baseVector returns the cached propagation vector of the base plan,
// computing and caching it on mismatch. The returned slice is the
// immutable cached snapshot; callers must copy before mutating.
func (s *Scope) baseVector(m Metric, base Plan) []float64 {
	key := base.Key()
	s.mu.Lock()
	if b := s.base[m]; b.key == key {
		s.mu.Unlock()
		return b.vec
	}
	s.mu.Unlock()
	vec := make([]float64, s.c.Topo.NumTasks())
	s.compute(m, base, vec, s.tasks)
	s.mu.Lock()
	s.base[m] = scopedBase{key: key, vec: vec}
	s.mu.Unlock()
	return vec
}

// compute fills vec for the given in-scope tasks (which must be in
// scope topological order) under the plan. Entries for tasks outside
// the listed set are read as-is, so passing a dirty subset on top of a
// base vector yields an incremental update.
func (s *Scope) compute(m Metric, p Plan, vec []float64, order []topology.TaskID) {
	if m == MetricIC {
		for _, id := range order {
			vec[id] = s.fracIC(p, id, vec)
		}
		return
	}
	for _, id := range order {
		vec[id] = s.lossOF(p, id, vec)
	}
}

// objective folds a propagation vector into the scoped metric value.
func (s *Scope) objective(m Metric, vec []float64) float64 {
	t := s.c.Topo
	if m == MetricIC {
		var processed, normal float64
		for _, id := range s.tasks {
			var full float64
			ins := t.InputsOf(id)
			if len(ins) == 0 {
				full = t.OutRate(id)
			} else {
				for _, in := range ins {
					full += in.Rate()
				}
			}
			normal += full
			processed += full * vec[id]
		}
		if normal == 0 {
			return 0
		}
		return clamp01(processed / normal)
	}
	if s.totalOut == 0 {
		return 0
	}
	var lost float64
	for _, id := range s.sinks {
		lost += t.OutRate(id) * vec[id]
	}
	return clamp01(1 - lost/s.totalOut)
}

// lossOF computes the information loss of one in-scope task from the
// upstream entries of vec: out-of-scope upstreams are alive (loss 0),
// in-scope non-replicated tasks are failed under the worst case
// (Eqs. 1–3 restricted to the scope).
func (s *Scope) lossOF(p Plan, id topology.TaskID, vec []float64) float64 {
	t := s.c.Topo
	if !p.Has(id) {
		return 1
	}
	inputLoss := func(in topology.InputStream) float64 {
		var num, den float64
		for _, sub := range in.Subs {
			den += sub.Rate
			if s.taskIn[sub.From] {
				num += sub.Rate * vec[sub.From]
			}
		}
		if den == 0 {
			return 1
		}
		return num / den
	}
	correlated := t.Ops[t.Tasks[id].Op].Kind == topology.Correlated
	prod, num, den := 1.0, 0.0, 0.0
	seen := false
	for _, in := range t.InputsOf(id) {
		if !s.opIn[in.FromOp] {
			continue
		}
		seen = true
		if correlated {
			prod *= 1 - inputLoss(in)
		} else {
			r := in.Rate()
			num += r * inputLoss(in)
			den += r
		}
	}
	if !seen {
		return 0 // scope-local source
	}
	if correlated {
		return 1 - prod
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// fracIC computes the throughput fraction of one in-scope task from the
// upstream entries of vec. Unlike lossOF it considers all input
// streams: out-of-scope upstreams are alive and contribute their full
// rate (fraction 1).
func (s *Scope) fracIC(p Plan, id topology.TaskID, vec []float64) float64 {
	t := s.c.Topo
	if !p.Has(id) {
		return 0
	}
	ins := t.InputsOf(id)
	if len(ins) == 0 {
		return 1
	}
	var recv, full float64
	for _, in := range ins {
		for _, sub := range in.Subs {
			full += sub.Rate
			f := 1.0
			if s.taskIn[sub.From] {
				f = vec[sub.From]
			}
			recv += sub.Rate * f
		}
	}
	if full == 0 {
		return 0
	}
	return recv / full
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// allOps returns [0, NumOps) for planning over a whole topology.
func allOps(t *topology.Topology) []int {
	ops := make([]int, t.NumOps())
	for i := range ops {
		ops[i] = i
	}
	return ops
}
