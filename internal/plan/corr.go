package plan

import (
	"fmt"

	"repro/internal/fidelity"
	"repro/internal/par"
	"repro/internal/topology"
)

// This file implements the correlation-aware planning objective and the
// *-corr planner variants. The paper's planners optimise the worst-case
// Output Fidelity: every non-replicated task is assumed failed at once.
// Real correlated failures are narrower — a rack or zone burst kills the
// tasks placed under one shared component — so a plan can trade a little
// worst-case OF for much better expected OF under the failure
// distribution the cluster's domain tree actually produces (cf. the
// approximate fault-tolerance trade-off of Cheng et al.,
// arXiv:1811.04570). A ScenarioSet carries that distribution as sampled
// task-failure sets (typically produced by campaign.SampleTaskScenarios
// from the burst models); CorrObjective is the expected OF of a plan
// under it, with replicated tasks surviving — the assumption the
// cluster's anti-affinity replica placement makes valid, since a replica
// never shares its primary's rack.

// ScenarioSet is a domain-correlated failure distribution over task
// sets: each scenario is one set of primary tasks failing together, with
// a probability weight. Identical scenarios are deduplicated at
// construction with their weights accumulated — burst models like
// whole-domain outages produce few distinct task sets, so evaluation
// cost scales with the distinct bursts, not the sample count. A
// ScenarioSet is immutable and safe for concurrent use.
type ScenarioSet struct {
	n       int
	failed  [][]bool  // distinct failure vectors, in first-seen order
	weights []float64 // per distinct scenario, summing to 1
}

// NewScenarioSet builds the distribution from equally likely sampled
// task sets for a topology with n tasks. Task IDs outside [0, n) are
// rejected.
func NewScenarioSet(n int, sets [][]topology.TaskID) (*ScenarioSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("plan: scenario set needs a positive task count, got %d", n)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("plan: scenario set needs at least one scenario")
	}
	s := &ScenarioSet{n: n}
	index := map[string]int{}
	w := 1 / float64(len(sets))
	for _, set := range sets {
		vec := make([]bool, n)
		for _, id := range set {
			if int(id) < 0 || int(id) >= n {
				return nil, fmt.Errorf("plan: scenario task %d outside topology of %d tasks", id, n)
			}
			vec[id] = true
		}
		key := boolKey(vec)
		if i, ok := index[key]; ok {
			s.weights[i] += w
			continue
		}
		index[key] = len(s.failed)
		s.failed = append(s.failed, vec)
		s.weights = append(s.weights, w)
	}
	return s, nil
}

// Len returns the number of distinct scenarios.
func (s *ScenarioSet) Len() int { return len(s.failed) }

// NumTasks returns the topology size the distribution was built for.
func (s *ScenarioSet) NumTasks() int { return s.n }

// boolKey packs a bool vector into a compact string — the shared
// encoding behind Plan.Key and ScenarioSet dedup.
func boolKey(v []bool) string {
	b := make([]byte, (len(v)+7)/8)
	for i, x := range v {
		if x {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// SetScenarios installs the domain-correlated failure distribution used
// by CorrObjective and the *-corr planners, replacing any previous one
// and invalidating the correlation memo. A nil set reverts
// CorrObjective to the worst-case OF.
func (c *Context) SetScenarios(s *ScenarioSet) error {
	if s != nil && s.n != c.Topo.NumTasks() {
		return fmt.Errorf("plan: scenario set for %d tasks installed on a %d-task topology", s.n, c.Topo.NumTasks())
	}
	c.mu.Lock()
	c.corr = s
	c.corrMemo = map[string]float64{}
	c.mu.Unlock()
	return nil
}

// Scenarios returns the installed failure distribution, or nil.
func (c *Context) Scenarios() *ScenarioSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corr
}

// CorrObjective evaluates the correlation-aware objective of a plan:
// the expected Output Fidelity over the installed failure distribution,
// where a scenario fails exactly its non-replicated tasks (replicated
// tasks survive via their out-of-domain replicas). Values are memoized
// per plan key like the other objectives; the distinct scenarios of a
// memo miss are evaluated on the shared internal/par worker pool and
// folded in scenario order, so the value is deterministic at any worker
// count. Without a distribution it degrades to the worst-case OF.
func (c *Context) CorrObjective(p Plan) float64 {
	c.mu.Lock()
	s := c.corr
	c.mu.Unlock()
	if s == nil || s.Len() == 0 {
		return c.OF(p)
	}
	key := p.Key()
	c.mu.Lock()
	if c.memo {
		if v, ok := c.corrMemo[key]; ok {
			c.mu.Unlock()
			return v
		}
	}
	c.mu.Unlock()
	v := c.evalCorr(s, p)
	c.mu.Lock()
	// Only memoize if the distribution is still the one the value was
	// computed under — a concurrent SetScenarios swaps both the
	// distribution and the memo, and a stale value must not leak into
	// the fresh cache.
	if c.memo && c.corr == s && len(c.corrMemo) < maxMemoEntries {
		c.corrMemo[key] = v
	}
	c.mu.Unlock()
	return v
}

// CorrExpectedLoss is 1 - CorrObjective: the expected relative output
// loss of the plan under the distribution.
func (c *Context) CorrExpectedLoss(p Plan) float64 { return 1 - c.CorrObjective(p) }

func (c *Context) evalCorr(s *ScenarioSet, p Plan) float64 {
	rep := p.Vector()
	ofs := par.Map(s.Len(), 0, func(i int) float64 {
		e := c.evals.Get().(*fidelity.Evaluator)
		defer c.evals.Put(e)
		failed := make([]bool, len(rep))
		for t, f := range s.failed[i] {
			failed[t] = f && !rep[t]
		}
		return e.OF(failed)
	})
	var v float64
	for i, of := range ofs {
		v += s.weights[i] * of
	}
	return v
}

// CorrOptions configures the correlation-aware refinement of a Corr
// planner.
type CorrOptions struct {
	// Rounds caps the hill-climbing rounds (default 8). Each round
	// applies the single best add or 1-for-1 swap move.
	Rounds int
	// Workers sets the move-evaluation parallelism: 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are identical at any worker count.
	Workers int
}

func (o *CorrOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 8
	}
}

// Corr is a correlation-aware planner variant: it seeds with the inner
// planner's plan (chosen under the paper's worst-case single-burst
// objective) and hill-climbs under CorrObjective — per round, every
// affordable add and every 1-for-1 swap of a replicated task for an
// unreplicated one is scored on the worker pool, and the best strictly
// improving move is applied; ties break towards the first move in
// enumeration order (adds before swaps, ascending task IDs), so the
// result is deterministic. With no distribution installed on the
// context the refinement is skipped and the inner plan is returned
// unchanged (CorrObjective would equal the inner objective).
type Corr struct {
	Inner Planner
	Opts  CorrOptions
}

// Name implements Planner: the inner planner's name with a "-corr"
// suffix ("dp-corr", "structured-corr", ...).
func (p Corr) Name() string { return p.Inner.Name() + "-corr" }

// Plan implements Planner.
func (p Corr) Plan(c *Context, budget int) (Plan, error) {
	opts := p.Opts
	opts.defaults()
	cur, err := p.Inner.Plan(c, budget)
	if err != nil {
		return Plan{}, err
	}
	if c.Scenarios() == nil {
		return cur, nil
	}
	n := c.Topo.NumTasks()
	if budget > n {
		budget = n
	}
	best := c.CorrObjective(cur)
	type move struct {
		add topology.TaskID
		del topology.TaskID // noTask for a pure add
	}
	const noTask = topology.TaskID(-1)
	for round := 0; round < opts.Rounds; round++ {
		var ins, outs []topology.TaskID
		for id := 0; id < n; id++ {
			if cur.Has(topology.TaskID(id)) {
				outs = append(outs, topology.TaskID(id))
			} else {
				ins = append(ins, topology.TaskID(id))
			}
		}
		var moves []move
		if cur.Size() < budget {
			for _, in := range ins {
				moves = append(moves, move{add: in, del: noTask})
			}
		}
		for _, out := range outs {
			for _, in := range ins {
				moves = append(moves, move{add: in, del: out})
			}
		}
		if len(moves) == 0 {
			break
		}
		vals := par.Map(len(moves), opts.Workers, func(i int) float64 {
			probe := cur.Clone()
			if moves[i].del != noTask {
				probe.Remove(moves[i].del)
			}
			probe.Add(moves[i].add)
			return c.CorrObjective(probe)
		})
		bestMove := -1
		for i, v := range vals {
			if v > best {
				best = v
				bestMove = i
			}
		}
		if bestMove < 0 {
			break
		}
		if moves[bestMove].del != noTask {
			cur.Remove(moves[bestMove].del)
		}
		cur.Add(moves[bestMove].add)
	}
	return cur, nil
}
