package plan

import (
	"fmt"
	"sort"

	"repro/internal/mctree"
	"repro/internal/topology"
)

// structuredState caches the unit decomposition of one structured
// (sub-)topology so that repeated planning steps do not recompute it.
type structuredState struct {
	ops   []int
	units []mctree.Unit
	adj   [][]int // unit adjacency
}

func newStructuredState(c *Context, ops []int, maxSegments int) (*structuredState, error) {
	units, err := mctree.SplitUnits(c.Topo, mctree.SubTopology{Ops: ops, Kind: mctree.StructuredSub}, maxSegments)
	if err != nil {
		return nil, fmt.Errorf("plan: splitting units: %w", err)
	}
	st := &structuredState{ops: ops, units: units, adj: make([][]int, len(units))}
	// Units are adjacent when an operator edge crosses between them.
	opUnit := map[int]int{}
	for ui, u := range units {
		for _, op := range u.Ops {
			opUnit[op] = ui
		}
	}
	seen := map[[2]int]bool{}
	for ui, u := range units {
		for _, op := range u.Ops {
			for _, d := range c.Topo.DownstreamOps(op) {
				vi, ok := opUnit[d]
				if !ok || vi == ui {
					continue
				}
				for _, pair := range [][2]int{{ui, vi}, {vi, ui}} {
					if !seen[pair] {
						seen[pair] = true
						st.adj[pair[0]] = append(st.adj[pair[0]], pair[1])
					}
				}
			}
		}
	}
	for _, a := range st.adj {
		sort.Ints(a)
	}
	return st, nil
}

// segmentValue scores a segment by the scoped OF of its unit treated as
// an independent topology with only the segment alive (the paper's
// max_of ranking).
func (st *structuredState) segmentValue(c *Context, ui int, seg mctree.Tree) float64 {
	p := New(c.Topo.NumTasks())
	p.AddAll(seg.Tasks)
	return c.ScopedObjective(st.units[ui].Ops, p)
}

// step proposes the next expansion per one iteration of Algorithm 3
// (PLANSTRUCTUREDTOPOLOGY): every non-replicated segment seeds a
// candidate; a segment that alone does not raise the scoped OF is
// extended by a BFS over the neighbouring units, each visited unit
// contributing its best segment connected to the candidate, stopping
// when maxCost would be exceeded. The candidate with the maximal profit
// density is returned (nil when no affordable candidate exists).
func (st *structuredState) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	if maxCost <= 0 {
		return nil
	}
	baseOF := c.ScopedObjective(st.ops, cur)
	type candidate struct {
		tasks []topology.TaskID
		cost  int
	}
	var candidates []candidate

	newTasks := func(segs []mctree.Tree) ([]topology.TaskID, int) {
		set := map[topology.TaskID]bool{}
		for _, s := range segs {
			for _, id := range s.Tasks {
				if !cur.Has(id) {
					set[id] = true
				}
			}
		}
		ids := make([]topology.TaskID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sortTaskIDs(ids)
		return ids, len(ids)
	}

	for ui, unit := range st.units {
		for _, seg := range unit.Segments {
			if seg.NonReplicated(cur.Vector()) == 0 {
				continue // segment already fully replicated
			}
			cg := []mctree.Tree{seg}
			ids, cost := newTasks(cg)
			if cost > maxCost {
				continue
			}
			probe := cur.Clone()
			probe.AddAll(ids)
			if c.ScopedObjective(st.ops, probe) <= baseOF {
				// The segment alone does not help: grow a connected set
				// of segments across the units by BFS (Alg. 3 lines
				// 10-15).
				visited := map[int]bool{ui: true}
				queue := append([]int(nil), st.adj[ui]...)
				for len(queue) > 0 {
					vi := queue[0]
					queue = queue[1:]
					if visited[vi] {
						continue
					}
					visited[vi] = true
					gj, ok := st.bestConnected(c, vi, cg, cur)
					if !ok {
						continue
					}
					_, curCost := newTasks(cg)
					extra := gj.NonReplicated(cur.Vector())
					if curCost+extra > maxCost {
						break // Alg. 3 line 15: stop the BFS
					}
					cg = append(cg, gj)
					for _, next := range st.adj[vi] {
						if !visited[next] {
							queue = append(queue, next)
						}
					}
				}
				ids, cost = newTasks(cg)
				if cost > maxCost {
					continue
				}
			}
			if cost == 0 {
				continue
			}
			candidates = append(candidates, candidate{tasks: ids, cost: cost})
		}
	}

	// Select the candidate with the maximal profit density
	// (OF(P ∪ CG) - OF(P)) / |CG| (Alg. 3 line 17).
	bestDensity := -1.0
	var best []topology.TaskID
	for _, cand := range candidates {
		probe := cur.Clone()
		probe.AddAll(cand.tasks)
		density := (c.ScopedObjective(st.ops, probe) - baseOF) / float64(cand.cost)
		if density > bestDensity ||
			(density == bestDensity && (best == nil || lessIDs(cand.tasks, best))) {
			bestDensity = density
			best = cand.tasks
		}
	}
	return best
}

// bestConnected returns the segment of unit vi that is connected to the
// candidate segment set and has the maximal standalone value.
func (st *structuredState) bestConnected(c *Context, vi int, cg []mctree.Tree, cur Plan) (mctree.Tree, bool) {
	bestVal := -1.0
	var best mctree.Tree
	found := false
	for _, seg := range st.units[vi].Segments {
		if seg.NonReplicated(cur.Vector()) == 0 {
			continue
		}
		connected := false
		for _, s := range cg {
			if mctree.SegmentsConnected(c.Topo, seg, s) {
				connected = true
				break
			}
		}
		if !connected {
			continue
		}
		if v := st.segmentValue(c, vi, seg); v > bestVal {
			bestVal = v
			best = seg
			found = true
		}
	}
	return best, found
}

func lessIDs(a, b []topology.TaskID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// StructuredTopology implements Algorithm 3: plan active replication
// within a structured (sub-)topology under a budget of replicated tasks
// within the scope, starting from an initial plan.
func StructuredTopology(c *Context, ops []int, initial Plan, budget, maxSegments int) (Plan, error) {
	st, err := newStructuredState(c, ops, maxSegments)
	if err != nil {
		return Plan{}, err
	}
	p := initial.Clone()
	for {
		used := scopeUsage(c.Topo, ops, p)
		if used >= budget {
			return p, nil
		}
		ids := st.step(c, p, budget-used)
		if len(ids) == 0 {
			return p, nil
		}
		p.AddAll(ids)
	}
}
