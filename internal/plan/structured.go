package plan

import (
	"fmt"
	"sort"

	"repro/internal/mctree"
	"repro/internal/par"
	"repro/internal/topology"
)

// structuredState caches the unit decomposition of one structured
// (sub-)topology so that repeated planning steps do not recompute it.
type structuredState struct {
	scope   *Scope
	metric  Metric
	workers int
	units   []mctree.Unit
	// unitScopes caches each unit's evaluation scope; segmentValue runs
	// in the BFS inner loop and must not rebuild scope signatures there.
	unitScopes []*Scope
	adj        [][]int // unit adjacency
}

func newStructuredState(c *Context, ops []int, m Metric, maxSegments, workers int) (*structuredState, error) {
	units, err := mctree.SplitUnits(c.Topo, mctree.SubTopology{Ops: ops, Kind: mctree.StructuredSub}, maxSegments)
	if err != nil {
		return nil, fmt.Errorf("plan: splitting units: %w", err)
	}
	st := &structuredState{
		scope:      c.ScopeOf(ops),
		metric:     m,
		workers:    workers,
		units:      units,
		unitScopes: make([]*Scope, len(units)),
		adj:        make([][]int, len(units)),
	}
	for ui, u := range units {
		st.unitScopes[ui] = c.ScopeOf(u.Ops)
	}
	// Units are adjacent when an operator edge crosses between them.
	opUnit := map[int]int{}
	for ui, u := range units {
		for _, op := range u.Ops {
			opUnit[op] = ui
		}
	}
	seen := map[[2]int]bool{}
	for ui, u := range units {
		for _, op := range u.Ops {
			for _, d := range c.Topo.DownstreamOps(op) {
				vi, ok := opUnit[d]
				if !ok || vi == ui {
					continue
				}
				for _, pair := range [][2]int{{ui, vi}, {vi, ui}} {
					if !seen[pair] {
						seen[pair] = true
						st.adj[pair[0]] = append(st.adj[pair[0]], pair[1])
					}
				}
			}
		}
	}
	for _, a := range st.adj {
		sort.Ints(a)
	}
	return st, nil
}

// segmentValue scores a segment by the scoped OF of its unit treated as
// an independent topology with only the segment alive (the paper's
// max_of ranking).
func (st *structuredState) segmentValue(c *Context, ui int, seg mctree.Tree) float64 {
	p := New(c.Topo.NumTasks())
	p.AddAll(seg.Tasks)
	return st.unitScopes[ui].Eval(st.metric, p)
}

// candidate is one proposed expansion of the current plan.
type candidate struct {
	tasks []topology.TaskID
	cost  int
}

// step proposes the next expansion per one iteration of Algorithm 3
// (PLANSTRUCTUREDTOPOLOGY): every non-replicated segment seeds a
// candidate; a segment that alone does not raise the scoped OF is
// extended by a BFS over the neighbouring units, each visited unit
// contributing its best segment connected to the candidate, stopping
// when maxCost would be exceeded. The candidate with the maximal profit
// density is returned (nil when no affordable candidate exists).
//
// The per-segment candidate construction is independent of the other
// segments, so it fans out across the worker pool; candidates are
// merged and ranked in segment-enumeration order, making the result
// bit-identical to a sequential run.
func (st *structuredState) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	if maxCost <= 0 {
		return nil
	}
	baseOF := st.scope.EvalBase(st.metric, cur)

	newTasks := func(segs []mctree.Tree) ([]topology.TaskID, int) {
		set := map[topology.TaskID]bool{}
		for _, s := range segs {
			for _, id := range s.Tasks {
				if !cur.Has(id) {
					set[id] = true
				}
			}
		}
		ids := make([]topology.TaskID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sortTaskIDs(ids)
		return ids, len(ids)
	}

	// Flatten the (unit, segment) enumeration so that every seed
	// candidate is built independently on the worker pool.
	type seed struct {
		ui  int
		seg mctree.Tree
	}
	var seeds []seed
	for ui, unit := range st.units {
		for _, seg := range unit.Segments {
			seeds = append(seeds, seed{ui: ui, seg: seg})
		}
	}
	built := par.Map(len(seeds), st.workers, func(i int) *candidate {
		ui, seg := seeds[i].ui, seeds[i].seg
		if seg.NonReplicated(cur.Vector()) == 0 {
			return nil // segment already fully replicated
		}
		cg := []mctree.Tree{seg}
		ids, cost := newTasks(cg)
		if cost > maxCost {
			return nil
		}
		if st.scope.Extend(st.metric, cur, ids) <= baseOF {
			// The segment alone does not help: grow a connected set
			// of segments across the units by BFS (Alg. 3 lines
			// 10-15).
			visited := map[int]bool{ui: true}
			queue := append([]int(nil), st.adj[ui]...)
			for len(queue) > 0 {
				vi := queue[0]
				queue = queue[1:]
				if visited[vi] {
					continue
				}
				visited[vi] = true
				gj, ok := st.bestConnected(c, vi, cg, cur)
				if !ok {
					continue
				}
				_, curCost := newTasks(cg)
				extra := gj.NonReplicated(cur.Vector())
				if curCost+extra > maxCost {
					break // Alg. 3 line 15: stop the BFS
				}
				cg = append(cg, gj)
				for _, next := range st.adj[vi] {
					if !visited[next] {
						queue = append(queue, next)
					}
				}
			}
			ids, cost = newTasks(cg)
			if cost > maxCost {
				return nil
			}
		}
		if cost == 0 {
			return nil
		}
		return &candidate{tasks: ids, cost: cost}
	})

	// Select the candidate with the maximal profit density
	// (OF(P ∪ CG) - OF(P)) / |CG| (Alg. 3 line 17), in enumeration
	// order.
	bestDensity := -1.0
	var best []topology.TaskID
	for _, cand := range built {
		if cand == nil {
			continue
		}
		density := (st.scope.Extend(st.metric, cur, cand.tasks) - baseOF) / float64(cand.cost)
		if density > bestDensity ||
			(density == bestDensity && (best == nil || lessIDs(cand.tasks, best))) {
			bestDensity = density
			best = cand.tasks
		}
	}
	return best
}

// bestConnected returns the segment of unit vi that is connected to the
// candidate segment set and has the maximal standalone value.
func (st *structuredState) bestConnected(c *Context, vi int, cg []mctree.Tree, cur Plan) (mctree.Tree, bool) {
	bestVal := -1.0
	var best mctree.Tree
	found := false
	for _, seg := range st.units[vi].Segments {
		if seg.NonReplicated(cur.Vector()) == 0 {
			continue
		}
		connected := false
		for _, s := range cg {
			if mctree.SegmentsConnected(c.Topo, seg, s) {
				connected = true
				break
			}
		}
		if !connected {
			continue
		}
		if v := st.segmentValue(c, vi, seg); v > bestVal {
			bestVal = v
			best = seg
			found = true
		}
	}
	return best, found
}

func lessIDs(a, b []topology.TaskID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Structured implements Algorithm 3: plan active replication within a
// structured (sub-)topology under a budget of replicated tasks within
// the scope, starting from an initial plan.
type Structured struct {
	// Ops is the operator scope; nil plans over the whole topology.
	Ops []int
	// Initial is the starting plan; nil starts empty.
	Initial *Plan
	// MaxSegments caps segment enumeration per unit (default 4096).
	MaxSegments int
	// Metric selects the optimisation objective (default MetricOF).
	Metric Metric
	// Workers sets the segment-enumeration parallelism: 0 uses
	// GOMAXPROCS, 1 runs sequentially.
	Workers int
}

// Name implements Planner.
func (Structured) Name() string { return "structured" }

// Plan implements Planner.
func (s Structured) Plan(c *Context, budget int) (Plan, error) {
	ops := s.Ops
	if ops == nil {
		ops = allOps(c.Topo)
	}
	maxSegments := s.MaxSegments
	if maxSegments == 0 {
		maxSegments = 4096
	}
	st, err := newStructuredState(c, ops, s.Metric, maxSegments, s.Workers)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if s.Initial != nil {
		p = s.Initial.Clone()
	} else {
		p = New(c.Topo.NumTasks())
	}
	for {
		used := scopeUsage(c.Topo, ops, p)
		if used >= budget {
			return p, nil
		}
		ids := st.step(c, p, budget-used)
		if len(ids) == 0 {
			return p, nil
		}
		p.AddAll(ids)
	}
}
