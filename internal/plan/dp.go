package plan

import (
	"errors"
	"fmt"

	"repro/internal/mctree"
	"repro/internal/par"
)

// ErrSearchSpace is returned by the dynamic programming planner when the
// candidate-plan set exceeds its configured cap; the paper notes the
// algorithm's complexity is O(2^T) in the number of MC-trees and uses it
// only on moderately sized topologies (§VI-C skips DP for the random
// topologies for the same reason).
var ErrSearchSpace = errors.New("plan: dynamic programming search space exceeds cap")

// DPOptions configures the dynamic programming planner.
type DPOptions struct {
	// MaxTrees caps MC-tree enumeration (default 4096).
	MaxTrees int
	// MaxStates caps the candidate-plan set size (default 1 << 18).
	MaxStates int
	// Workers sets the candidate-expansion parallelism: 0 uses
	// GOMAXPROCS, 1 runs sequentially. Results are bit-identical
	// regardless of the worker count.
	Workers int
}

func (o *DPOptions) defaults() {
	if o.MaxTrees == 0 {
		o.MaxTrees = 4096
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 18
	}
}

// DP implements Algorithm 1 (PLANCORRELATEDFAILURE): an optimal
// bottom-up search over unions of MC-trees. Resource usage is increased
// one task at a time; every candidate plan is expanded by the MC-trees
// whose number of non-replicated tasks exactly matches the available
// slack, and exhausted candidates are pruned. The best plan by
// worst-case OF (ties broken by smaller resource usage) is returned.
//
// Candidate expansion at each usage level fans out across a worker
// pool; the per-state expansions are merged in state order, so the
// search (including dedup and tie-breaking) is bit-identical to a
// sequential run.
type DP struct {
	Opts DPOptions
}

// Name implements Planner.
func (DP) Name() string { return "dp" }

// Plan implements Planner.
func (d DP) Plan(c *Context, budget int) (Plan, error) {
	opts := d.Opts
	opts.defaults()
	n := c.Topo.NumTasks()
	if budget > n {
		budget = n
	}
	trees, err := mctree.Enumerate(c.Topo, opts.MaxTrees)
	if err != nil {
		return Plan{}, fmt.Errorf("plan: enumerating MC-trees: %w", err)
	}

	empty := New(n)
	states := []Plan{empty}
	seen := map[string]bool{empty.Key(): true}

	best := empty.Clone()
	bestOF := c.OF(best)

	// expansion is one state's fate at a usage level: whether the state
	// survives into the next level, plus its new candidate plans in
	// tree order. Candidates carry their OF (computed in the worker) so
	// the sequential merge only deduplicates and selects.
	type candidate struct {
		p   Plan
		key string
		of  float64
	}
	type expansion struct {
		keep  bool
		cands []candidate
	}

	for usage := 1; usage <= budget; usage++ {
		exps := par.Map(len(states), opts.Workers, func(i int) expansion {
			st := states[i]
			dif := usage - st.Size()
			if dif < 0 {
				return expansion{}
			}
			// Count each tree's non-replicated tasks once; the counts
			// serve both the pruning bound and the expansion filter.
			counts := make([]int, len(trees))
			maxNonrep := 0
			for ti, tr := range trees {
				nr := tr.NonReplicated(st.Vector())
				counts[ti] = nr
				if nr > maxNonrep {
					maxNonrep = nr
				}
			}
			if dif > maxNonrep {
				// All possible expansions of this candidate have been
				// considered; prune it (it stays a contender via best).
				return expansion{}
			}
			ex := expansion{keep: true}
			for ti, tr := range trees {
				if counts[ti] != dif {
					continue
				}
				np := st.Clone()
				np.AddAll(tr.MissingTasks(st.Vector()))
				ex.cands = append(ex.cands, candidate{p: np, key: np.Key(), of: c.OF(np)})
			}
			return ex
		})
		var next []Plan
		for i, ex := range exps {
			if !ex.keep {
				continue
			}
			next = append(next, states[i])
			for _, cd := range ex.cands {
				if seen[cd.key] {
					continue
				}
				seen[cd.key] = true
				if len(seen) > opts.MaxStates {
					return Plan{}, ErrSearchSpace
				}
				if cd.of > bestOF || (cd.of == bestOF && cd.p.Size() < best.Size()) {
					best = cd.p
					bestOF = cd.of
				}
				next = append(next, cd.p)
			}
		}
		states = next
	}
	return best, nil
}
