package plan

import (
	"errors"
	"fmt"

	"repro/internal/mctree"
)

// ErrSearchSpace is returned by the dynamic programming planner when the
// candidate-plan set exceeds its configured cap; the paper notes the
// algorithm's complexity is O(2^T) in the number of MC-trees and uses it
// only on moderately sized topologies (§VI-C skips DP for the random
// topologies for the same reason).
var ErrSearchSpace = errors.New("plan: dynamic programming search space exceeds cap")

// DPOptions configures the dynamic programming planner.
type DPOptions struct {
	// MaxTrees caps MC-tree enumeration (default 4096).
	MaxTrees int
	// MaxStates caps the candidate-plan set size (default 1 << 18).
	MaxStates int
}

func (o *DPOptions) defaults() {
	if o.MaxTrees == 0 {
		o.MaxTrees = 4096
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 18
	}
}

// DynamicProgramming implements Algorithm 1 (PLANCORRELATEDFAILURE): an
// optimal bottom-up search over unions of MC-trees. Resource usage is
// increased one task at a time; every candidate plan is expanded by the
// MC-trees whose number of non-replicated tasks exactly matches the
// available slack, and exhausted candidates are pruned. The best plan by
// worst-case OF (ties broken by smaller resource usage) is returned.
func DynamicProgramming(c *Context, budget int, opts DPOptions) (Plan, error) {
	opts.defaults()
	n := c.Topo.NumTasks()
	if budget > n {
		budget = n
	}
	trees, err := mctree.Enumerate(c.Topo, opts.MaxTrees)
	if err != nil {
		return Plan{}, fmt.Errorf("plan: enumerating MC-trees: %w", err)
	}

	type state struct{ p Plan }
	empty := New(n)
	sc := []state{{p: empty}}
	seen := map[string]bool{empty.Key(): true}

	best := empty.Clone()
	bestOF := c.OF(best)

	consider := func(p Plan) {
		of := c.OF(p)
		if of > bestOF || (of == bestOF && p.Size() < best.Size()) {
			best = p.Clone()
			bestOF = of
		}
	}

	for usage := 1; usage <= budget; usage++ {
		var next []state
		for _, st := range sc {
			dif := usage - st.p.Size()
			if dif < 0 {
				continue
			}
			// The largest number of non-replicated tasks among trees not
			// yet fully included in the plan.
			maxNonrep := 0
			for _, tr := range trees {
				if nr := tr.NonReplicated(st.p.Vector()); nr > 0 && nr > maxNonrep {
					maxNonrep = nr
				}
			}
			if dif > maxNonrep {
				// All possible expansions of this candidate have been
				// considered; prune it (it stays a contender via best).
				continue
			}
			next = append(next, st)
			for _, tr := range trees {
				if tr.NonReplicated(st.p.Vector()) != dif {
					continue
				}
				np := st.p.Clone()
				np.AddAll(tr.Tasks)
				key := np.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				if len(seen) > opts.MaxStates {
					return Plan{}, ErrSearchSpace
				}
				consider(np)
				next = append(next, state{p: np})
			}
		}
		sc = next
	}
	return best, nil
}
