package plan

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMap computes fn(i) for every i in [0, n) on up to workers
// goroutines and returns the results in index order. Because each index
// is computed independently and the caller merges the ordered result
// slice sequentially, a parallel run is observationally identical to a
// sequential loop — planners rely on this for bit-identical plans.
// workers <= 0 selects GOMAXPROCS; workers == 1 runs inline.
func parallelMap[T any](n, workers int, fn func(int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]T, n)
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
