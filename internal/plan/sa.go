package plan

import (
	"fmt"
	"sort"

	"repro/internal/mctree"
	"repro/internal/topology"
)

// SAOptions configures the structure-aware planner.
type SAOptions struct {
	// MaxSegments caps segment enumeration per unit (default 4096).
	MaxSegments int
	// Metric selects the optimisation objective (default MetricOF;
	// MetricIC reproduces the paper's Fig. 12 IC-optimised plans).
	Metric Metric
}

func (o *SAOptions) defaults() {
	if o.MaxSegments == 0 {
		o.MaxSegments = 4096
	}
}

// subPlanner produces incremental expansions within one sub-topology.
type subPlanner interface {
	step(c *Context, cur Plan, maxCost int) []topology.TaskID
	scope() []int
}

type fullPlanner struct{ ops []int }

func (f *fullPlanner) scope() []int { return f.ops }
func (f *fullPlanner) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	ids := fullStep(c, f.ops, cur)
	if len(ids) == 0 || len(ids) > maxCost {
		return nil
	}
	return ids
}

type structuredPlanner struct{ st *structuredState }

func (s *structuredPlanner) scope() []int { return s.st.ops }
func (s *structuredPlanner) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	return s.st.step(c, cur, maxCost)
}

// StructureAware implements Algorithm 5: decompose the general topology
// into full and structured sub-topologies (§IV-C3), give each
// sub-topology an initial complete MC-tree, then repeatedly apply the
// sub-topology expansion with the best profit density until the budget
// is exhausted. A budget smaller than the smallest MC-tree yields the
// empty plan: no complete MC-tree is affordable, so no plan can have a
// positive worst-case OF (the paper's Alg. 5 lines 3-4 use the operator
// count as this bound, which is exact only when every tree spans all
// operators).
func StructureAware(c *Context, budget int, opts SAOptions) (Plan, error) {
	opts.defaults()
	prevMetric := c.Metric
	c.Metric = opts.Metric
	defer func() { c.Metric = prevMetric }()
	t := c.Topo
	p := New(t.NumTasks())
	if budget < mctree.MinTreeSize(t) && opts.Metric == MetricOF {
		return p, nil
	}

	subs := mctree.Decompose(t)
	// Seed downstream sub-topologies first: without a complete segment
	// chain on the sink side no upstream replication can contribute to
	// the output, so the initial pass must not exhaust the budget on
	// upstream subs.
	pos := make(map[int]int, t.NumOps())
	for i, op := range t.OpOrder() {
		pos[op] = i
	}
	depth := func(ops []int) int {
		d := 0
		for _, op := range ops {
			if pos[op] > d {
				d = pos[op]
			}
		}
		return d
	}
	sort.SliceStable(subs, func(i, j int) bool { return depth(subs[i].Ops) > depth(subs[j].Ops) })

	planners := make([]subPlanner, 0, len(subs))
	for _, sub := range subs {
		if sub.Kind == mctree.FullSub {
			planners = append(planners, &fullPlanner{ops: sub.Ops})
			continue
		}
		st, err := newStructuredState(c, sub.Ops, opts.MaxSegments)
		if err != nil {
			return Plan{}, fmt.Errorf("plan: structure-aware: %w", err)
		}
		planners = append(planners, &structuredPlanner{st: st})
	}

	usage := 0
	// Initialisation: one expansion per sub-topology so that a complete
	// MC-tree spans the whole topology.
	for _, sp := range planners {
		ids := sp.step(c, p, budget-usage)
		if len(ids) == 0 {
			continue
		}
		p.AddAll(ids)
		usage += len(ids)
	}

	// Iterate: apply the sub-topology step with the maximal profit
	// density, measured on the global worst-case OF (Alg. 5 lines
	// 11-18). Scoped improvement breaks ties so that progress continues
	// while some sub-topology is still below a complete tree.
	for usage < budget {
		baseOF := c.Objective(p)
		bestDensity, bestScoped := -1.0, -1.0
		var bestIDs []topology.TaskID
		for _, sp := range planners {
			ids := sp.step(c, p, budget-usage)
			if len(ids) == 0 {
				continue
			}
			probe := p.Clone()
			probe.AddAll(ids)
			density := (c.Objective(probe) - baseOF) / float64(len(ids))
			scopedBase := c.ScopedObjective(sp.scope(), p)
			scoped := (c.ScopedObjective(sp.scope(), probe) - scopedBase) / float64(len(ids))
			if density > bestDensity || (density == bestDensity && scoped > bestScoped) {
				bestDensity = density
				bestScoped = scoped
				bestIDs = ids
			}
		}
		if len(bestIDs) == 0 {
			break
		}
		p.AddAll(bestIDs)
		usage += len(bestIDs)
	}
	return p, nil
}
