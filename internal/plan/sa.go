package plan

import (
	"fmt"
	"sort"

	"repro/internal/mctree"
	"repro/internal/topology"
)

// SAOptions configures the structure-aware planner.
type SAOptions struct {
	// MaxSegments caps segment enumeration per unit (default 4096).
	MaxSegments int
	// Metric selects the optimisation objective (default MetricOF;
	// MetricIC reproduces the paper's Fig. 12 IC-optimised plans and
	// registers as the "sa-ic" planner).
	Metric Metric
	// Workers sets the candidate-enumeration parallelism: 0 uses
	// GOMAXPROCS, 1 runs sequentially. Results are bit-identical
	// regardless of the worker count.
	Workers int
}

func (o *SAOptions) defaults() {
	if o.MaxSegments == 0 {
		o.MaxSegments = 4096
	}
}

// subPlanner produces incremental expansions within one sub-topology.
type subPlanner interface {
	step(c *Context, cur Plan, maxCost int) []topology.TaskID
	scope() *Scope
}

type fullSub struct{ st *fullState }

func (f *fullSub) scope() *Scope { return f.st.scope }
func (f *fullSub) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	ids := f.st.step(c, cur)
	if len(ids) == 0 || len(ids) > maxCost {
		return nil
	}
	return ids
}

type structuredSub struct{ st *structuredState }

func (s *structuredSub) scope() *Scope { return s.st.scope }
func (s *structuredSub) step(c *Context, cur Plan, maxCost int) []topology.TaskID {
	return s.st.step(c, cur, maxCost)
}

// SA implements Algorithm 5, the structure-aware general planner:
// decompose the general topology into full and structured
// sub-topologies (§IV-C3), give each sub-topology an initial complete
// MC-tree, then repeatedly apply the sub-topology expansion with the
// best profit density until the budget is exhausted. A budget smaller
// than the smallest MC-tree yields the empty plan: no complete MC-tree
// is affordable, so no plan can have a positive worst-case OF (the
// paper's Alg. 5 lines 3-4 use the operator count as this bound, which
// is exact only when every tree spans all operators).
type SA struct {
	Opts SAOptions
}

// Name implements Planner: "sa" for the OF objective, "sa-ic" for the
// IC variant.
func (s SA) Name() string {
	if s.Opts.Metric == MetricIC {
		return "sa-ic"
	}
	return "sa"
}

// Plan implements Planner.
func (s SA) Plan(c *Context, budget int) (Plan, error) {
	opts := s.Opts
	opts.defaults()
	m := opts.Metric
	t := c.Topo
	p := New(t.NumTasks())
	if budget < mctree.MinTreeSize(t) && m == MetricOF {
		return p, nil
	}

	subs := mctree.Decompose(t)
	// Seed downstream sub-topologies first: without a complete segment
	// chain on the sink side no upstream replication can contribute to
	// the output, so the initial pass must not exhaust the budget on
	// upstream subs.
	pos := make(map[int]int, t.NumOps())
	for i, op := range t.OpOrder() {
		pos[op] = i
	}
	depth := func(ops []int) int {
		d := 0
		for _, op := range ops {
			if pos[op] > d {
				d = pos[op]
			}
		}
		return d
	}
	sort.SliceStable(subs, func(i, j int) bool { return depth(subs[i].Ops) > depth(subs[j].Ops) })

	planners := make([]subPlanner, 0, len(subs))
	for _, sub := range subs {
		if sub.Kind == mctree.FullSub {
			planners = append(planners, &fullSub{st: newFullState(c, sub.Ops, m)})
			continue
		}
		st, err := newStructuredState(c, sub.Ops, m, opts.MaxSegments, opts.Workers)
		if err != nil {
			return Plan{}, fmt.Errorf("plan: structure-aware: %w", err)
		}
		planners = append(planners, &structuredSub{st: st})
	}

	usage := 0
	// Initialisation: one expansion per sub-topology so that a complete
	// MC-tree spans the whole topology.
	for _, sp := range planners {
		ids := sp.step(c, p, budget-usage)
		if len(ids) == 0 {
			continue
		}
		p.AddAll(ids)
		usage += len(ids)
	}

	// Iterate: apply the sub-topology step with the maximal profit
	// density, measured on the global worst-case OF (Alg. 5 lines
	// 11-18). Scoped improvement breaks ties so that progress continues
	// while some sub-topology is still below a complete tree.
	for usage < budget {
		baseOF := c.ObjectiveWith(m, p)
		bestDensity, bestScoped := -1.0, -1.0
		var bestIDs []topology.TaskID
		for _, sp := range planners {
			ids := sp.step(c, p, budget-usage)
			if len(ids) == 0 {
				continue
			}
			probe := p.Clone()
			probe.AddAll(ids)
			density := (c.ObjectiveWith(m, probe) - baseOF) / float64(len(ids))
			scopedBase := sp.scope().EvalBase(m, p)
			scoped := (sp.scope().Extend(m, p, ids) - scopedBase) / float64(len(ids))
			if density > bestDensity || (density == bestDensity && scoped > bestScoped) {
				bestDensity = density
				bestScoped = scoped
				bestIDs = ids
			}
		}
		if len(bestIDs) == 0 {
			break
		}
		p.AddAll(bestIDs)
		usage += len(bestIDs)
	}
	return p, nil
}
