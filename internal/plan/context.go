package plan

import (
	"sync"

	"repro/internal/fidelity"
	"repro/internal/topology"
)

// maxMemoEntries bounds each objective cache so that exhaustive
// searches (brute force, huge DP levels) cannot exhaust memory; once a
// cache is full further values are still computed, just not retained.
const maxMemoEntries = 1 << 20

// Context bundles the topology and the fidelity evaluator shared by the
// planners. It memoizes objective evaluations keyed on Plan.Key so that
// the repeated candidate evaluations of the planners (and planners
// racing each other inside a Portfolio) share work, and it is safe for
// concurrent use by multiple goroutines.
type Context struct {
	Topo *topology.Topology
	// Metric selects the objective used by the metric-agnostic entry
	// points Objective/ScopedObjective and by Portfolio when ranking the
	// plans of its inner planners. Planners with a fixed objective
	// (e.g. the sa-ic variant) pass their metric explicitly and never
	// mutate this field.
	Metric Metric

	model *fidelity.Model
	evals sync.Pool // *fidelity.Evaluator

	mu     sync.Mutex
	memo   bool
	ofMemo map[string]float64
	icMemo map[string]float64
	// corr is the domain-correlated failure distribution of the
	// correlation-aware objective; corrMemo caches CorrObjective values
	// per plan key and is invalidated whenever corr changes.
	corr     *ScenarioSet
	corrMemo map[string]float64
	// scopedMemo caches scoped objectives keyed on scope signature,
	// metric and plan key.
	scopedMemo map[scopedMemoKey]float64
	scopes     map[string]*Scope
}

type scopedMemoKey struct {
	scope  string
	metric Metric
	plan   string
}

// NewContext builds a planning context for the topology. Memoization is
// enabled by default; see SetMemoize.
func NewContext(t *topology.Topology) *Context {
	c := &Context{
		Topo:       t,
		model:      fidelity.NewModel(t),
		memo:       true,
		ofMemo:     map[string]float64{},
		icMemo:     map[string]float64{},
		corrMemo:   map[string]float64{},
		scopedMemo: map[scopedMemoKey]float64{},
		scopes:     map[string]*Scope{},
	}
	c.evals.New = func() any { return c.model.NewEvaluator() }
	return c
}

// SetMemoize enables or disables memoization of objective values (it
// is on by default). Disabling clears the OF/IC and scoped-objective
// caches; it exists so benchmarks can quantify the value-memoization
// win and is not needed in normal use. The per-Scope base-vector reuse
// that powers incremental Extend evaluation is part of the planning
// algorithms themselves and is not affected by this switch.
func (c *Context) SetMemoize(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo = on
	if !on {
		c.ofMemo = map[string]float64{}
		c.icMemo = map[string]float64{}
		c.corrMemo = map[string]float64{}
		c.scopedMemo = map[scopedMemoKey]float64{}
	}
}

// Objective evaluates the context's configured metric of a plan under
// the worst-case correlated failure.
func (c *Context) Objective(p Plan) float64 { return c.ObjectiveWith(c.Metric, p) }

// ObjectiveWith evaluates the given metric of a plan under the
// worst-case correlated failure, memoized on the plan key. The hit
// path takes the context mutex once; planners' worker pools hammer
// this, so the critical sections stay minimal.
func (c *Context) ObjectiveWith(m Metric, p Plan) float64 {
	key := p.Key()
	c.mu.Lock()
	if !c.memo {
		c.mu.Unlock()
		return c.evalGlobal(m, p)
	}
	if v, ok := c.globalCache(m)[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.evalGlobal(m, p)
	c.mu.Lock()
	if cache := c.globalCache(m); c.memo && len(cache) < maxMemoEntries {
		cache[key] = v
	}
	c.mu.Unlock()
	return v
}

func (c *Context) globalCache(m Metric) map[string]float64 {
	if m == MetricIC {
		return c.icMemo
	}
	return c.ofMemo
}

// evalGlobal computes the metric directly, bypassing the caches (used
// by the memo miss path and by brute force, whose 2^N distinct plans
// would only pollute them).
func (c *Context) evalGlobal(m Metric, p Plan) float64 {
	e := c.evals.Get().(*fidelity.Evaluator)
	defer c.evals.Put(e)
	if m == MetricIC {
		return e.ICPlan(p.replicated)
	}
	return e.OFPlan(p.replicated)
}

// OF evaluates the worst-case Output Fidelity of a plan: every
// non-replicated task is failed.
func (c *Context) OF(p Plan) float64 { return c.ObjectiveWith(MetricOF, p) }

// IC evaluates the worst-case Internal Completeness of a plan.
func (c *Context) IC(p Plan) float64 { return c.ObjectiveWith(MetricIC, p) }

// OFSingleFailure evaluates OF when only the given task fails (greedy
// ranking criterion). The per-task values are computed once per model
// and shared.
func (c *Context) OFSingleFailure(id topology.TaskID) float64 {
	return c.model.SingleFailureOFs()[id]
}

// ScopeOf returns the (cached) precomputed evaluation scope for the
// given operator set. Scopes are keyed by their sorted operator
// signature, so planners working on the same sub-topology share one
// scope and its memoized base vectors.
func (c *Context) ScopeOf(ops []int) *Scope {
	sig := scopeSig(ops)
	c.mu.Lock()
	if s, ok := c.scopes[sig]; ok {
		c.mu.Unlock()
		return s
	}
	c.mu.Unlock()
	s := newScope(c, sig, ops)
	c.mu.Lock()
	if prev, ok := c.scopes[sig]; ok {
		s = prev
	} else {
		c.scopes[sig] = s
	}
	c.mu.Unlock()
	return s
}

// ScopedObjective evaluates the context's configured metric restricted
// to a sub-topology scope.
func (c *Context) ScopedObjective(ops []int, p Plan) float64 {
	return c.ScopeOf(ops).Eval(c.Metric, p)
}

// ScopedObjectiveWith evaluates the given metric restricted to a
// sub-topology scope.
func (c *Context) ScopedObjectiveWith(m Metric, ops []int, p Plan) float64 {
	return c.ScopeOf(ops).Eval(m, p)
}

// ScopedOF evaluates the worst-case OF of a plan restricted to a
// sub-topology: within the scope operators, non-replicated tasks are
// failed; tasks outside the scope are alive. Fidelity is measured at the
// scope's own sink tasks (operators without a downstream operator inside
// the scope), treating the scope as a standalone topology. This is the
// evaluation the sub-topology planners use so that segment selection in
// different sub-topologies stays independent (§IV-C3).
func (c *Context) ScopedOF(ops []int, p Plan) float64 {
	return c.ScopeOf(ops).Eval(MetricOF, p)
}

// ScopedIC evaluates the worst-case Internal Completeness restricted to
// a sub-topology scope: the fraction of tuples still processed by the
// scope's tasks relative to failure-free operation, with out-of-scope
// tasks alive. Like IC, it propagates plain rates and credits partial
// processing even when a join's other input is lost.
func (c *Context) ScopedIC(ops []int, p Plan) float64 {
	return c.ScopeOf(ops).Eval(MetricIC, p)
}

// scopedMemoGet looks up a memoized scoped objective.
func (c *Context) scopedMemoGet(k scopedMemoKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.memo {
		return 0, false
	}
	v, ok := c.scopedMemo[k]
	return v, ok
}

// scopedMemoPut stores a memoized scoped objective.
func (c *Context) scopedMemoPut(k scopedMemoKey, v float64) {
	c.mu.Lock()
	if c.memo && len(c.scopedMemo) < maxMemoEntries {
		c.scopedMemo[k] = v
	}
	c.mu.Unlock()
}
