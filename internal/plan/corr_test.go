package plan

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// corrChainTopo builds src(1) -> A(2) -> B(1): tasks 0=src, 1/2=A, 3=B.
func corrChainTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 1, 1000)
	a := b.AddOperator("A", 2, topology.Independent, 0.5)
	bb := b.AddOperator("B", 1, topology.Independent, 0.5)
	b.Connect(src, a, topology.Split)
	b.Connect(a, bb, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestScenarioSetDedup(t *testing.T) {
	s, err := NewScenarioSet(4, [][]topology.TaskID{{1}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct scenarios", s.Len())
	}
	var sum float64
	for _, w := range s.weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	if math.Abs(s.weights[0]-2.0/3) > 1e-12 {
		t.Fatalf("duplicated scenario weight %v, want 2/3", s.weights[0])
	}
	if _, err := NewScenarioSet(4, nil); err == nil {
		t.Error("empty scenario list accepted")
	}
	if _, err := NewScenarioSet(2, [][]topology.TaskID{{5}}); err == nil {
		t.Error("out-of-range task accepted")
	}
	if _, err := NewScenarioSet(0, [][]topology.TaskID{{}}); err == nil {
		t.Error("zero task count accepted")
	}
}

func TestCorrObjectiveDefaultsToWorstCase(t *testing.T) {
	topo := corrChainTopo(t)
	c := NewContext(topo)
	p := New(topo.NumTasks())
	p.AddAll([]topology.TaskID{0, 1, 3})
	if got, want := c.CorrObjective(p), c.OF(p); got != want {
		t.Fatalf("without a distribution CorrObjective = %v, want OF %v", got, want)
	}
	// Installing a mismatched distribution is rejected.
	s, err := NewScenarioSet(2, [][]topology.TaskID{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetScenarios(s); err == nil {
		t.Error("scenario set with wrong task count accepted")
	}
}

// TestCorrObjectiveMemoParity pins the memoized evaluation: values with
// the cache enabled equal the uncached computation, and the cache is
// invalidated when the distribution changes.
func TestCorrObjectiveMemoParity(t *testing.T) {
	topo := corrChainTopo(t)
	n := topo.NumTasks()
	s, err := NewScenarioSet(n, [][]topology.TaskID{{1}, {1}, {2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	memo := NewContext(topo)
	if err := memo.SetScenarios(s); err != nil {
		t.Fatal(err)
	}
	raw := NewContext(topo)
	raw.SetMemoize(false)
	if err := raw.SetScenarios(s); err != nil {
		t.Fatal(err)
	}
	plans := [][]topology.TaskID{{}, {1}, {2}, {0, 1, 3}, {0, 1, 2, 3}}
	for _, tasks := range plans {
		p := New(n)
		p.AddAll(tasks)
		a := memo.CorrObjective(p)
		b := memo.CorrObjective(p) // memo hit
		c := raw.CorrObjective(p)
		if a != b || a != c {
			t.Fatalf("plan %v: memoized %v / hit %v / unmemoized %v differ", tasks, a, b, c)
		}
		if loss := memo.CorrExpectedLoss(p); math.Abs(loss-(1-a)) > 1e-15 {
			t.Fatalf("plan %v: expected loss %v, want %v", tasks, loss, 1-a)
		}
	}
	// A new distribution must not serve stale values.
	full := New(n)
	full.AddAll([]topology.TaskID{0, 1, 2, 3})
	before := memo.CorrObjective(New(n))
	s2, err := NewScenarioSet(n, [][]topology.TaskID{{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := memo.SetScenarios(s2); err != nil {
		t.Fatal(err)
	}
	if got := memo.CorrObjective(New(n)); got == before {
		t.Fatalf("stale memo value %v survived SetScenarios", got)
	}
}

// TestCorrPlannersRegistered: the *-corr variants are selectable from
// the registry.
func TestCorrPlannersRegistered(t *testing.T) {
	names := Names()
	reg := map[string]bool{}
	for _, n := range names {
		reg[n] = true
	}
	for _, want := range []string{"dp-corr", "structured-corr", "sa-corr"} {
		if !reg[want] {
			t.Errorf("planner %q not registered (have %v)", want, names)
		}
	}
}

// TestCorrPlannerRefines: under a distribution that only ever fails A's
// first task with higher probability, the correlation-aware planner
// must replicate exactly that task with budget 1 — a strict improvement
// over the greedy seed, which replicates the task whose single failure
// hurts the worst case most.
func TestCorrPlannerRefines(t *testing.T) {
	topo := corrChainTopo(t)
	n := topo.NumTasks()
	c := NewContext(topo)
	s, err := NewScenarioSet(n, [][]topology.TaskID{{1}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetScenarios(s); err != nil {
		t.Fatal(err)
	}
	inner, err := Greedy{}.Plan(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := Corr{Inner: Greedy{}}.Plan(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !corr.Has(1) || corr.Size() != 1 {
		t.Fatalf("corr plan %v, want exactly task 1 (the dominant burst)", corr.Tasks())
	}
	if got, seed := c.CorrObjective(corr), c.CorrObjective(inner); got <= seed {
		t.Fatalf("corr objective %v not above the seed's %v", got, seed)
	}
}

// TestCorrPlannerDeterministicAcrossWorkers: the hill climb merges move
// evaluations in enumeration order, so the plan is identical at any
// worker count (and with memoization off).
func TestCorrPlannerDeterministicAcrossWorkers(t *testing.T) {
	topo := corrChainTopo(t)
	n := topo.NumTasks()
	sets := [][]topology.TaskID{{1}, {2}, {1, 2}, {3}, {0, 3}}
	run := func(workers int, memo bool) Plan {
		c := NewContext(topo)
		c.SetMemoize(memo)
		s, err := NewScenarioSet(n, sets)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetScenarios(s); err != nil {
			t.Fatal(err)
		}
		p, err := Corr{Inner: Greedy{}, Opts: CorrOptions{Workers: workers}}.Plan(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := run(1, true)
	for _, alt := range []Plan{run(0, true), run(4, true), run(1, false)} {
		if !reflect.DeepEqual(base.Tasks(), alt.Tasks()) {
			t.Fatalf("plans differ across workers/memo: %v vs %v", base.Tasks(), alt.Tasks())
		}
	}
}
