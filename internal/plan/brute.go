package plan

import (
	"errors"

	"repro/internal/topology"
)

// ErrTooLarge is returned by BruteForce when the topology exceeds the
// feasible exhaustive-search size.
var ErrTooLarge = errors.New("plan: topology too large for brute-force search")

// BruteForce exhaustively searches every subset of at most budget tasks
// and returns a plan with the maximal worst-case OF (ties broken by
// smaller size, then lexicographically). It exists as the ground-truth
// reference for testing the optimality of the dynamic programming
// algorithm and is limited to topologies with at most 24 tasks.
func BruteForce(c *Context, budget int) (Plan, error) {
	n := c.Topo.NumTasks()
	if n > 24 {
		return Plan{}, ErrTooLarge
	}
	if budget > n {
		budget = n
	}
	best := New(n)
	bestOF := c.OF(best)
	for mask := uint32(0); mask < 1<<n; mask++ {
		if popcount(mask) > budget {
			continue
		}
		p := New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p.Add(topology.TaskID(i))
			}
		}
		of := c.OF(p)
		if of > bestOF || (of == bestOF && p.Size() < best.Size()) {
			best = p
			bestOF = of
		}
	}
	return best, nil
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
