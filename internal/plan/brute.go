package plan

import (
	"errors"
	"math/bits"

	"repro/internal/topology"
)

// ErrTooLarge is returned by the brute-force planner when the topology
// exceeds the feasible exhaustive-search size.
var ErrTooLarge = errors.New("plan: topology too large for brute-force search")

// Brute exhaustively searches every subset of at most budget tasks and
// returns a plan with the maximal worst-case OF (ties broken by smaller
// size, then by first occurrence in ascending-bitmask order, matching
// the DP planner's keep-first convention). It exists as the ground-truth
// reference for testing the optimality of the dynamic programming
// algorithm and is limited to topologies with at most 24 tasks.
type Brute struct{}

// Name implements Planner.
func (Brute) Name() string { return "brute" }

// Plan implements Planner.
func (Brute) Plan(c *Context, budget int) (Plan, error) {
	n := c.Topo.NumTasks()
	if n > 24 {
		return Plan{}, ErrTooLarge
	}
	if budget > n {
		budget = n
	}
	best := New(n)
	// Evaluate directly: the 2^N distinct plans of the exhaustive sweep
	// are each seen once, so memoizing them would only burn memory.
	bestOF := c.evalGlobal(MetricOF, best)
	for mask := uint32(0); mask < 1<<n; mask++ {
		if bits.OnesCount32(mask) > budget {
			continue
		}
		p := New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p.Add(topology.TaskID(i))
			}
		}
		of := c.evalGlobal(MetricOF, p)
		if of > bestOF || (of == bestOF && p.Size() < best.Size()) {
			best = p
			bestOF = of
		}
	}
	return best, nil
}
