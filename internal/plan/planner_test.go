package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// TestRegistryLookup checks that every built-in planner is registered
// and resolvable by name, and that the registry is consistent.
func TestRegistryLookup(t *testing.T) {
	want := []string{"brute", "dp", "dp-corr", "full", "greedy", "portfolio", "sa", "sa-corr", "sa-ic", "structured", "structured-corr"}
	for _, name := range want {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("planner %q not registered", name)
		}
		if p.Name() != name {
			t.Errorf("planner registered as %q reports Name() = %q", name, p.Name())
		}
	}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v missing %q", names, w)
		}
	}
	if _, ok := Lookup("no-such-planner"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if MustLookup("sa").Name() != "sa" {
		t.Error("MustLookup(sa) returned wrong planner")
	}
}

// TestEveryPlannerThroughInterface invokes all registered planners
// uniformly on one topology; every plan must respect the budget.
func TestEveryPlannerThroughInterface(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	budget := 4
	for _, name := range Names() {
		p, err := MustLookup(name).Plan(c, budget)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Size() > budget {
			t.Errorf("%s: plan size %d exceeds budget %d", name, p.Size(), budget)
		}
	}
}

// TestFullPlannerRejectsNonFullScope: the full planner's precondition
// (Full partitioning throughout the scope) is validated instead of
// silently producing a plan with no complete MC-tree.
func TestFullPlannerRejectsNonFullScope(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 4, 100)
	mid := b.AddOperator("mid", 2, topology.Independent, 1)
	b.Connect(src, mid, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(topo)
	if _, err := (Full{}).Plan(c, 3); err == nil {
		t.Error("full planner accepted a Merge-partitioned topology")
	}
}

// TestPortfolioDefaultExcludesBrute: the default planner set must not
// block on the exponential brute-force sweep.
func TestPortfolioDefaultExcludesBrute(t *testing.T) {
	// 2^20 brute evaluations would dominate this test's runtime; with
	// brute excluded the portfolio finishes promptly and still plans.
	topo := chainTopo(4, 4, 4, 4, 4)
	c := NewContext(topo)
	p, err := Portfolio{}.Plan(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(p); of <= 0 {
		t.Errorf("portfolio OF = %v, want > 0 (one complete chain affordable)", of)
	}
}

// TestPortfolioMatchesBruteForce: on topologies small enough for the
// exhaustive reference, the portfolio contains the optimal DP planner
// and so must match the brute-force optimum.
func TestPortfolioMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		budget := rng.Intn(topo.NumTasks() + 1)
		pf, err := Portfolio{}.Plan(c, budget)
		if err != nil {
			return false
		}
		bf, err := Brute{}.Plan(c, budget)
		if err != nil {
			return false
		}
		pfOF, bfOF := c.OF(pf), c.OF(bf)
		if pfOF < bfOF-1e-12 || pfOF > bfOF+1e-12 {
			t.Logf("seed %d: portfolio OF %v != brute-force optimum %v (budget %d)", seed, pfOF, bfOF, budget)
			return false
		}
		return pf.Size() <= budget
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPortfolioDeterministic: racing the planners concurrently must not
// make the selected plan depend on goroutine scheduling. Run under
// -race this also exercises the shared memoized Context.
func TestPortfolioDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		topo := randomSmallTopo(rng)
		budget := 1 + rng.Intn(topo.NumTasks())
		var firstKey string
		for run := 0; run < 4; run++ {
			c := NewContext(topo)
			p, err := Portfolio{}.Plan(c, budget)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				firstKey = p.Key()
			} else if p.Key() != firstKey {
				t.Fatalf("trial %d: portfolio run %d picked a different plan", trial, run)
			}
		}
	}
}

// TestPortfolioSharedContext runs the portfolio repeatedly on one
// shared context (the memo caches grow across runs) and checks the
// result stays stable.
func TestPortfolioSharedContext(t *testing.T) {
	topo := chainTopo(2, 3, 2)
	c := NewContext(topo)
	var firstKey string
	for run := 0; run < 3; run++ {
		p, err := Portfolio{}.Plan(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			firstKey = p.Key()
		} else if p.Key() != firstKey {
			t.Fatalf("run %d: portfolio plan changed on a warm context", run)
		}
	}
}

// TestParallelSearchBitIdentical: DP candidate expansion and SA segment
// enumeration must produce bit-identical plans regardless of the
// worker count.
func TestParallelSearchBitIdentical(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		budget := rng.Intn(topo.NumTasks() + 1)

		seqCtx := NewContext(topo)
		parCtx := NewContext(topo)

		dpSeq, err1 := DP{Opts: DPOptions{Workers: 1}}.Plan(seqCtx, budget)
		dpPar, err2 := DP{Opts: DPOptions{Workers: 8}}.Plan(parCtx, budget)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: DP error mismatch: %v vs %v", seed, err1, err2)
			return false
		}
		if err1 == nil && dpSeq.Key() != dpPar.Key() {
			t.Logf("seed %d: DP parallel plan %v != sequential %v (budget %d)",
				seed, dpPar.Tasks(), dpSeq.Tasks(), budget)
			return false
		}

		saSeq, err1 := SA{Opts: SAOptions{Workers: 1}}.Plan(seqCtx, budget)
		saPar, err2 := SA{Opts: SAOptions{Workers: 8}}.Plan(parCtx, budget)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: SA error mismatch: %v vs %v", seed, err1, err2)
			return false
		}
		if err1 == nil && saSeq.Key() != saPar.Key() {
			t.Logf("seed %d: SA parallel plan %v != sequential %v (budget %d)",
				seed, saPar.Tasks(), saSeq.Tasks(), budget)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMemoizationTransparent: objective values must be identical with
// and without memoization, for global and scoped evaluation.
func TestMemoizationTransparent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		memo := NewContext(topo)
		raw := NewContext(topo)
		raw.SetMemoize(false)
		p := New(topo.NumTasks())
		for i := 0; i < topo.NumTasks(); i++ {
			if rng.Intn(2) == 0 {
				p.Add(topology.TaskID(i))
			}
		}
		ops := allOps(topo)
		// Evaluate twice on the memoized context: the second read comes
		// from the cache and must be bit-identical.
		for run := 0; run < 2; run++ {
			if memo.OF(p) != raw.OF(p) || memo.IC(p) != raw.IC(p) {
				return false
			}
			if memo.ScopedOF(ops, p) != raw.ScopedOF(ops, p) {
				return false
			}
			if memo.ScopedIC(ops, p) != raw.ScopedIC(ops, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestScopeExtendMatchesFullEval: the incremental scoped evaluation
// (base vector + dirty downstream update) must equal a from-scratch
// evaluation of the extended plan, bit for bit.
func TestScopeExtendMatchesFullEval(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		base := New(topo.NumTasks())
		for i := 0; i < topo.NumTasks(); i++ {
			if rng.Intn(2) == 0 {
				base.Add(topology.TaskID(i))
			}
		}
		var ids []topology.TaskID
		for i := 0; i < topo.NumTasks(); i++ {
			if rng.Intn(3) == 0 {
				ids = append(ids, topology.TaskID(i))
			}
		}
		full := base.Clone()
		full.AddAll(ids)
		sc := c.ScopeOf(allOps(topo))
		for _, m := range []Metric{MetricOF, MetricIC} {
			// Fresh context per metric check so Eval cannot serve Extend
			// from the memo cache — force the incremental path.
			cc := NewContext(topo)
			cc.SetMemoize(false)
			scc := cc.ScopeOf(allOps(topo))
			if scc.Extend(m, base, ids) != sc.Eval(m, full) {
				t.Logf("seed %d metric %d: incremental != full", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPortfolioExplicitPlanners: a portfolio over an explicit planner
// list uses exactly those planners.
func TestPortfolioExplicitPlanners(t *testing.T) {
	topo := chainTopo(2, 2, 2)
	c := NewContext(topo)
	// Greedy alone at budget 3 yields OF 0 on this chain; the portfolio
	// over {greedy} must reproduce that, while adding SA must beat it.
	g, err := Portfolio{Planners: []Planner{Greedy{}}}.Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(g); of != 0 {
		t.Errorf("greedy-only portfolio OF = %v, want 0", of)
	}
	both, err := Portfolio{Planners: []Planner{Greedy{}, SA{}}}.Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(both); of <= 0 {
		t.Errorf("greedy+sa portfolio OF = %v, want > 0", of)
	}
}
