package plan

import (
	"sort"

	"repro/internal/topology"
)

// Greedy implements Algorithm 2: rank every task by the Output Fidelity
// of the topology when only that task fails (ascending — a task whose
// individual failure hurts the most ranks first) and replicate the
// top-budget tasks. The algorithm is fast (O(N·M) fidelity evaluations,
// computed once per model and memoized) but agnostic to MC-tree
// completeness, which the paper shows ruins its plans at small
// replication ratios (§VI-B, §VI-C).
type Greedy struct{}

// Name implements Planner.
func (Greedy) Name() string { return "greedy" }

// Plan implements Planner. It never fails; the error is always nil.
func (Greedy) Plan(c *Context, budget int) (Plan, error) {
	n := c.Topo.NumTasks()
	if budget > n {
		budget = n
	}
	type ranked struct {
		id topology.TaskID
		of float64
	}
	rs := make([]ranked, 0, n)
	for id := 0; id < n; id++ {
		rs = append(rs, ranked{id: topology.TaskID(id), of: c.OFSingleFailure(topology.TaskID(id))})
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].of != rs[j].of {
			return rs[i].of < rs[j].of
		}
		return rs[i].id < rs[j].id
	})
	p := New(n)
	for i := 0; i < budget; i++ {
		p.Add(rs[i].id)
	}
	return p, nil
}
