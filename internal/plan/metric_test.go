package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mctree"
	"repro/internal/topology"
)

// joinTopo builds loc(2) + inc(2) sources feeding a correlated join(2)
// feeding a sink(1) — a miniature Q2.
func joinTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	loc := b.AddSource("loc", 2, 1000) // heavy stream
	inc := b.AddSource("inc", 2, 10)   // light stream
	join := b.AddOperator("join", 2, topology.Correlated, 0.1)
	sink := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(loc, join, topology.Full)
	b.Connect(inc, join, topology.Full)
	b.Connect(join, sink, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestICPrefersVolumeOverCompleteness is the Fig. 12 mechanism in
// miniature: replicating only the heavy input side of a join yields a
// high IC but zero OF (no complete MC-tree).
func TestICPrefersVolumeOverCompleteness(t *testing.T) {
	topo := joinTopo(t)
	c := NewContext(topo)
	p := New(topo.NumTasks())
	p.AddAll(topo.TasksOf(0)) // both loc sources
	p.AddAll(topo.TasksOf(2)) // both join tasks
	p.AddAll(topo.TasksOf(3)) // the sink
	if of := c.OF(p); of != 0 {
		t.Errorf("OF = %v, want 0 without the incident side", of)
	}
	if ic := c.IC(p); ic <= 0.4 {
		t.Errorf("IC = %v, want substantial despite the missing join side", ic)
	}
}

// TestScopedICMatchesGlobal: with the scope covering the whole topology
// the scoped IC equals the global IC.
func TestScopedICMatchesGlobal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomSmallTopo(rng)
		c := NewContext(topo)
		p := New(topo.NumTasks())
		for i := 0; i < topo.NumTasks(); i++ {
			if rng.Intn(2) == 0 {
				p.Add(topology.TaskID(i))
			}
		}
		a := c.IC(p)
		b := c.ScopedIC(allOps(topo), p)
		return a-b < 1e-9 && b-a < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStructureAwareICMetric: the SA planner with the IC objective
// should produce plans whose IC is at least the OF-optimised plan's IC
// on the join topology, and the OF plan must dominate on OF.
func TestStructureAwareICMetric(t *testing.T) {
	topo := joinTopo(t)
	c := NewContext(topo)
	budget := 5
	ofPlan, err := SA{}.Plan(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	icPlan, err := SA{Opts: SAOptions{Metric: MetricIC}}.Plan(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric != MetricOF {
		t.Error("context metric not restored after SA run")
	}
	if c.OF(icPlan) > c.OF(ofPlan)+1e-9 {
		t.Errorf("IC-optimised plan OF %v beats OF-optimised plan OF %v", c.OF(icPlan), c.OF(ofPlan))
	}
	if c.IC(icPlan) < c.IC(ofPlan)-1e-9 {
		t.Errorf("IC plan IC %v below OF plan IC %v", c.IC(icPlan), c.IC(ofPlan))
	}
	if of := c.OF(ofPlan); of <= 0 {
		t.Errorf("OF plan has zero fidelity: %v", of)
	}
}

// TestObjectiveDispatch: Objective/ScopedObjective follow the context
// metric.
func TestObjectiveDispatch(t *testing.T) {
	topo := joinTopo(t)
	c := NewContext(topo)
	p := New(topo.NumTasks())
	p.AddAll(topo.TasksOf(0))
	if c.Objective(p) != c.OF(p) {
		t.Error("MetricOF objective != OF")
	}
	c.Metric = MetricIC
	if c.Objective(p) != c.IC(p) {
		t.Error("MetricIC objective != IC")
	}
	if c.ScopedObjective(allOps(topo), p) != c.ScopedIC(allOps(topo), p) {
		t.Error("MetricIC scoped objective != ScopedIC")
	}
}

// TestMinTreeSize checks the minimum MC-tree sizes of representative
// shapes.
func TestMinTreeSize(t *testing.T) {
	if got := mctree.MinTreeSize(joinTopo(t)); got != 4 {
		t.Errorf("join topology min tree = %d, want 4 (one task per side: loc+inc+join+sink)", got)
	}
	if got := mctree.MinTreeSize(chainTopo(3, 3, 3)); got != 3 {
		t.Errorf("chain min tree = %d, want 3", got)
	}
	// Independent two-source diamond: a single path suffices.
	b := topology.NewBuilder()
	s1 := b.AddSource("s1", 2, 100)
	s2 := b.AddSource("s2", 2, 100)
	m := b.AddOperator("m", 1, topology.Independent, 1)
	b.Connect(s1, m, topology.Full)
	b.Connect(s2, m, topology.Full)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := mctree.MinTreeSize(topo); got != 2 {
		t.Errorf("independent diamond min tree = %d, want 2 (one source + sink)", got)
	}
}

// TestSAFeasibleBelowOpsCount: with an independent multi-source
// topology the minimum tree is smaller than the operator count and SA
// must still produce a plan (the relaxation of the paper's Alg. 5
// guard).
func TestSAFeasibleBelowOpsCount(t *testing.T) {
	b := topology.NewBuilder()
	s1 := b.AddSource("s1", 2, 100)
	s2 := b.AddSource("s2", 2, 100)
	m := b.AddOperator("m", 2, topology.Independent, 1)
	snk := b.AddOperator("snk", 1, topology.Independent, 1)
	b.Connect(s1, m, topology.Full)
	b.Connect(s2, m, topology.Full)
	b.Connect(m, snk, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(topo)
	// 4 operators but the min tree is 3 tasks (one source, one m, snk).
	p, err := SA{}.Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if of := c.OF(p); of <= 0 {
		t.Errorf("SA OF = %v at budget 3, want > 0 (min tree is 3)", of)
	}
}
