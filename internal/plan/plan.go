// Package plan implements the partially-active replication planners of
// Su & Zhou (ICDE 2016), §IV: the optimal dynamic-programming algorithm
// over MC-trees (Alg. 1), the task-level greedy algorithm (Alg. 2), the
// structured-topology planner (Alg. 3), the full-topology planner
// (Alg. 4) and the structure-aware general planner (Alg. 5), plus a
// brute-force reference optimiser used to validate optimality in tests.
//
// All planners solve the same problem (Definition 2): given a topology
// and a resource budget of R actively replicated tasks, choose the R
// tasks that maximise the Output Fidelity of the partial topology that
// survives a worst-case correlated failure (every non-replicated task
// failed).
package plan

import (
	"sort"

	"repro/internal/fidelity"
	"repro/internal/topology"
)

// Plan is a partially active replication plan: the set of tasks chosen
// for active replication.
type Plan struct {
	replicated []bool
	size       int
}

// New returns an empty plan for a topology with n tasks.
func New(n int) Plan {
	return Plan{replicated: make([]bool, n)}
}

// Clone returns an independent copy of the plan.
func (p Plan) Clone() Plan {
	q := Plan{replicated: make([]bool, len(p.replicated)), size: p.size}
	copy(q.replicated, p.replicated)
	return q
}

// Size returns the number of replicated tasks (the plan's resource
// usage).
func (p Plan) Size() int { return p.size }

// Has reports whether the task is replicated under the plan.
func (p Plan) Has(id topology.TaskID) bool { return p.replicated[id] }

// Add marks a task as replicated. Adding an already-replicated task is a
// no-op.
func (p *Plan) Add(id topology.TaskID) {
	if !p.replicated[id] {
		p.replicated[id] = true
		p.size++
	}
}

// AddAll marks every listed task as replicated.
func (p *Plan) AddAll(ids []topology.TaskID) {
	for _, id := range ids {
		p.Add(id)
	}
}

// Tasks returns the replicated task IDs in ascending order.
func (p Plan) Tasks() []topology.TaskID {
	out := make([]topology.TaskID, 0, p.size)
	for i, r := range p.replicated {
		if r {
			out = append(out, topology.TaskID(i))
		}
	}
	return out
}

// Vector returns the plan as a boolean vector indexed by TaskID. The
// returned slice aliases the plan's storage and must not be modified.
func (p Plan) Vector() []bool { return p.replicated }

// Key returns a canonical identity of the plan's task set, used to
// deduplicate candidate plans in the dynamic programming algorithm.
func (p Plan) Key() string {
	// compact bitmap representation
	b := make([]byte, (len(p.replicated)+7)/8)
	for i, r := range p.replicated {
		if r {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// Metric selects the quality model a planner optimises: the paper's
// Output Fidelity, or the Internal Completeness baseline it compares
// against in Fig. 12.
type Metric int

const (
	// MetricOF optimises Output Fidelity (the paper's metric).
	MetricOF Metric = iota
	// MetricIC optimises Internal Completeness (the EDBT'14 baseline;
	// rate completeness that ignores input-stream correlation).
	MetricIC
)

// Context bundles the topology and the fidelity evaluator shared by the
// planners. Metric selects the objective the structure-aware machinery
// optimises (default MetricOF). Not safe for concurrent use.
type Context struct {
	Topo   *topology.Topology
	Metric Metric
	eval   *fidelity.Evaluator
	// scratch
	failed []bool
}

// NewContext builds a planning context for the topology.
func NewContext(t *topology.Topology) *Context {
	return &Context{
		Topo:   t,
		eval:   fidelity.NewModel(t).NewEvaluator(),
		failed: make([]bool, t.NumTasks()),
	}
}

// Objective evaluates the configured metric of a plan under the
// worst-case correlated failure.
func (c *Context) Objective(p Plan) float64 {
	if c.Metric == MetricIC {
		return c.IC(p)
	}
	return c.OF(p)
}

// ScopedObjective evaluates the configured metric restricted to a
// sub-topology scope.
func (c *Context) ScopedObjective(ops []int, p Plan) float64 {
	if c.Metric == MetricIC {
		return c.ScopedIC(ops, p)
	}
	return c.ScopedOF(ops, p)
}

// OF evaluates the worst-case Output Fidelity of a plan: every
// non-replicated task is failed.
func (c *Context) OF(p Plan) float64 {
	return c.eval.OFPlan(p.replicated)
}

// IC evaluates the worst-case Internal Completeness of a plan.
func (c *Context) IC(p Plan) float64 {
	return c.eval.ICPlan(p.replicated)
}

// OFSingleFailure evaluates OF when only the given task fails (greedy
// ranking criterion).
func (c *Context) OFSingleFailure(id topology.TaskID) float64 {
	return c.eval.OFSingleFailure(id)
}

// ScopedOF evaluates the worst-case OF of a plan restricted to a
// sub-topology: within the scope operators, non-replicated tasks are
// failed; tasks outside the scope are alive. Fidelity is measured at the
// scope's own sink tasks (operators without a downstream operator inside
// the scope), treating the scope as a standalone topology. This is the
// evaluation the sub-topology planners use so that segment selection in
// different sub-topologies stays independent (§IV-C3).
func (c *Context) ScopedOF(ops []int, p Plan) float64 {
	inScope := make(map[int]bool, len(ops))
	for _, op := range ops {
		inScope[op] = true
	}
	t := c.Topo
	il := make(map[topology.TaskID]float64)
	var visit func(id topology.TaskID) float64
	visit = func(id topology.TaskID) float64 {
		if v, ok := il[id]; ok {
			return v
		}
		v := c.scopedLoss(id, inScope, p, visit)
		il[id] = v
		return v
	}
	var lost, total float64
	for _, op := range ops {
		if hasDownstreamIn(t, op, inScope) {
			continue
		}
		for _, id := range t.TasksOf(op) {
			r := t.OutRate(id)
			total += r
			lost += r * visit(id)
		}
	}
	if total == 0 {
		return 0
	}
	of := 1 - lost/total
	if of < 0 {
		return 0
	}
	if of > 1 {
		return 1
	}
	return of
}

func (c *Context) scopedLoss(id topology.TaskID, inScope map[int]bool, p Plan, visit func(topology.TaskID) float64) float64 {
	t := c.Topo
	op := t.Tasks[id].Op
	if !inScope[op] {
		return 0 // outside the scope: alive, lossless
	}
	if !p.Has(id) {
		return 1 // in scope and not replicated: failed under worst case
	}
	var ins []topology.InputStream
	for _, in := range t.InputsOf(id) {
		if inScope[in.FromOp] {
			ins = append(ins, in)
		}
	}
	if len(ins) == 0 {
		return 0 // scope-local source
	}
	inputLoss := func(in topology.InputStream) float64 {
		var num, den float64
		for _, sub := range in.Subs {
			num += sub.Rate * visit(sub.From)
			den += sub.Rate
		}
		if den == 0 {
			return 1
		}
		return num / den
	}
	if t.Ops[op].Kind == topology.Correlated {
		prod := 1.0
		for _, in := range ins {
			prod *= 1 - inputLoss(in)
		}
		return 1 - prod
	}
	var num, den float64
	for _, in := range ins {
		r := in.Rate()
		num += r * inputLoss(in)
		den += r
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// ScopedIC evaluates the worst-case Internal Completeness restricted to
// a sub-topology scope: the fraction of tuples still processed by the
// scope's tasks relative to failure-free operation, with out-of-scope
// tasks alive. Like IC, it propagates plain rates and credits partial
// processing even when a join's other input is lost.
func (c *Context) ScopedIC(ops []int, p Plan) float64 {
	inScope := make(map[int]bool, len(ops))
	for _, op := range ops {
		inScope[op] = true
	}
	t := c.Topo
	frac := make(map[topology.TaskID]float64) // output fraction vs failure-free
	var visit func(id topology.TaskID) float64
	var processed, normal float64
	visit = func(id topology.TaskID) float64 {
		if v, ok := frac[id]; ok {
			return v
		}
		op := t.Tasks[id].Op
		if !inScope[op] {
			frac[id] = 1
			return 1
		}
		if !p.Has(id) {
			frac[id] = 0
			return 0
		}
		ins := t.InputsOf(id)
		if len(ins) == 0 {
			frac[id] = 1
			return 1
		}
		var recv, full float64
		for _, in := range ins {
			for _, sub := range in.Subs {
				full += sub.Rate
				recv += sub.Rate * visit(sub.From)
			}
		}
		v := 0.0
		if full > 0 {
			v = recv / full
		}
		frac[id] = v
		return v
	}
	for _, op := range ops {
		for _, id := range t.TasksOf(op) {
			var full float64
			ins := t.InputsOf(id)
			if len(ins) == 0 {
				full = t.OutRate(id)
			} else {
				for _, in := range ins {
					full += in.Rate()
				}
			}
			normal += full
			processed += full * visit(id)
		}
	}
	if normal == 0 {
		return 0
	}
	v := processed / normal
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func hasDownstreamIn(t *topology.Topology, op int, inScope map[int]bool) bool {
	for _, d := range t.DownstreamOps(op) {
		if inScope[d] {
			return true
		}
	}
	return false
}

// sortTaskIDs sorts task IDs ascending, used for deterministic output.
func sortTaskIDs(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
