// Package plan implements the partially-active replication planners of
// Su & Zhou (ICDE 2016), §IV: the optimal dynamic-programming algorithm
// over MC-trees (Alg. 1), the task-level greedy algorithm (Alg. 2), the
// structured-topology planner (Alg. 3), the full-topology planner
// (Alg. 4) and the structure-aware general planner (Alg. 5), plus a
// brute-force reference optimiser used to validate optimality in tests
// and a Portfolio meta-planner that races every registered planner.
//
// All planners solve the same problem (Definition 2): given a topology
// and a resource budget of R actively replicated tasks, choose the R
// tasks that maximise the Output Fidelity of the partial topology that
// survives a worst-case correlated failure (every non-replicated task
// failed). They are exposed uniformly through the Planner interface and
// the package registry (Register/Lookup/Names), and share one Context —
// a concurrency-safe, memoizing objective evaluator.
package plan

import (
	"sort"

	"repro/internal/topology"
)

// Plan is a partially active replication plan: the set of tasks chosen
// for active replication.
type Plan struct {
	replicated []bool
	size       int
}

// New returns an empty plan for a topology with n tasks.
func New(n int) Plan {
	return Plan{replicated: make([]bool, n)}
}

// Clone returns an independent copy of the plan.
func (p Plan) Clone() Plan {
	q := Plan{replicated: make([]bool, len(p.replicated)), size: p.size}
	copy(q.replicated, p.replicated)
	return q
}

// Size returns the number of replicated tasks (the plan's resource
// usage).
func (p Plan) Size() int { return p.size }

// Has reports whether the task is replicated under the plan.
func (p Plan) Has(id topology.TaskID) bool { return p.replicated[id] }

// Add marks a task as replicated. Adding an already-replicated task is a
// no-op.
func (p *Plan) Add(id topology.TaskID) {
	if !p.replicated[id] {
		p.replicated[id] = true
		p.size++
	}
}

// Remove unmarks a replicated task. Removing a non-replicated task is a
// no-op.
func (p *Plan) Remove(id topology.TaskID) {
	if p.replicated[id] {
		p.replicated[id] = false
		p.size--
	}
}

// AddAll marks every listed task as replicated.
func (p *Plan) AddAll(ids []topology.TaskID) {
	for _, id := range ids {
		p.Add(id)
	}
}

// Tasks returns the replicated task IDs in ascending order.
func (p Plan) Tasks() []topology.TaskID {
	out := make([]topology.TaskID, 0, p.size)
	for i, r := range p.replicated {
		if r {
			out = append(out, topology.TaskID(i))
		}
	}
	return out
}

// Vector returns the plan as a boolean vector indexed by TaskID. The
// returned slice aliases the plan's storage and must not be modified.
func (p Plan) Vector() []bool { return p.replicated }

// Key returns a canonical identity of the plan's task set (a compact
// bitmap), used to deduplicate candidate plans in the dynamic
// programming algorithm and as the memoization key of the Context's
// objective caches. ScenarioSet dedup uses the same encoding (boolKey).
func (p Plan) Key() string { return boolKey(p.replicated) }

// Metric selects the quality model a planner optimises: the paper's
// Output Fidelity, or the Internal Completeness baseline it compares
// against in Fig. 12.
type Metric int

const (
	// MetricOF optimises Output Fidelity (the paper's metric).
	MetricOF Metric = iota
	// MetricIC optimises Internal Completeness (the EDBT'14 baseline;
	// rate completeness that ignores input-stream correlation).
	MetricIC
)

// sortTaskIDs sorts task IDs ascending, used for deterministic output.
func sortTaskIDs(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
