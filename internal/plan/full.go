package plan

import (
	"sort"

	"repro/internal/topology"
)

// fullRank orders the tasks of each scope operator by delta_ij, the
// scoped-OF increase obtained by replicating the task under the
// assumption that all other tasks of the same operator are failed and
// the tasks of the other operators are alive (§IV-C2).
func fullRank(c *Context, ops []int) map[int][]topology.TaskID {
	t := c.Topo
	inScope := make(map[int]bool, len(ops))
	for _, op := range ops {
		inScope[op] = true
	}
	ranked := make(map[int][]topology.TaskID, len(ops))
	for _, op := range ops {
		// pseudo-plan: every in-scope task of the other operators is
		// alive ("replicated"), operator op contributes only the probe.
		base := New(t.NumTasks())
		for _, other := range ops {
			if other == op {
				continue
			}
			base.AddAll(t.TasksOf(other))
		}
		type scored struct {
			id topology.TaskID
			d  float64
		}
		var ss []scored
		for _, id := range t.TasksOf(op) {
			probe := base.Clone()
			probe.Add(id)
			ss = append(ss, scored{id: id, d: c.ScopedObjective(ops, probe)})
		}
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].d != ss[j].d {
				return ss[i].d > ss[j].d
			}
			return ss[i].id < ss[j].id
		})
		ids := make([]topology.TaskID, len(ss))
		for i, s := range ss {
			ids[i] = s.id
		}
		ranked[op] = ids
	}
	return ranked
}

// fullStep proposes the next expansion of the current plan within a full
// (sub-)topology per Algorithm 4. When the plan covers no complete
// MC-tree of the scope yet, the proposal is one best task per operator
// (in a full topology any one task per operator forms an MC-tree);
// afterwards it is the single next-best task across operators. It
// returns nil when every scope task is already replicated.
func fullStep(c *Context, ops []int, cur Plan) []topology.TaskID {
	t := c.Topo
	ranked := fullRank(c, ops)

	// Does the current plan include at least one task of every operator?
	complete := true
	for _, op := range ops {
		found := false
		for _, id := range t.TasksOf(op) {
			if cur.Has(id) {
				found = true
				break
			}
		}
		if !found {
			complete = false
			break
		}
	}

	if !complete {
		// Initial MC-tree: the best non-replicated task of each operator
		// that lacks one.
		var out []topology.TaskID
		for _, op := range ops {
			has := false
			for _, id := range t.TasksOf(op) {
				if cur.Has(id) {
					has = true
					break
				}
			}
			if has {
				continue
			}
			for _, id := range ranked[op] {
				if !cur.Has(id) {
					out = append(out, id)
					break
				}
			}
		}
		sortTaskIDs(out)
		return out
	}

	// Single-task expansion: per operator, the next best task; choose
	// the candidate plan with maximal scoped OF.
	bestOF := -1.0
	var bestID topology.TaskID = -1
	for _, op := range ops {
		for _, id := range ranked[op] {
			if cur.Has(id) {
				continue
			}
			cand := cur.Clone()
			cand.Add(id)
			of := c.ScopedObjective(ops, cand)
			if of > bestOF || (of == bestOF && id < bestID) {
				bestOF = of
				bestID = id
			}
			break // only the operator's next-best task is considered
		}
	}
	if bestID < 0 {
		return nil
	}
	return []topology.TaskID{bestID}
}

// FullTopology implements Algorithm 4 (PLANFULLTOPOLOGY): plan active
// replication within a full (sub-)topology given an initial plan and a
// budget of replicated tasks within the scope. If the budget cannot
// cover one task per operator and the initial plan is empty, the empty
// plan is returned (no complete MC-tree is affordable).
func FullTopology(c *Context, ops []int, initial Plan, budget int) Plan {
	p := initial.Clone()
	for {
		used := scopeUsage(c.Topo, ops, p)
		if used >= budget {
			return p
		}
		ids := fullStep(c, ops, p)
		if len(ids) == 0 {
			return p
		}
		if used+len(ids) > budget {
			return p
		}
		p.AddAll(ids)
	}
}

// scopeUsage counts the plan's replicated tasks within the scope ops.
func scopeUsage(t *topology.Topology, ops []int, p Plan) int {
	n := 0
	for _, op := range ops {
		for _, id := range t.TasksOf(op) {
			if p.Has(id) {
				n++
			}
		}
	}
	return n
}

// allOps returns [0, NumOps) for planning over a whole topology.
func allOps(t *topology.Topology) []int {
	ops := make([]int, t.NumOps())
	for i := range ops {
		ops[i] = i
	}
	return ops
}
