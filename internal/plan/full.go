package plan

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/topology"
)

// fullState caches the per-operator task ranking of one full
// (sub-)topology. The ranking (delta_ij of §IV-C2) depends only on the
// scope and metric — not on the plan being grown — so it is computed
// once and reused by every expansion step.
type fullState struct {
	scope  *Scope
	metric Metric

	once   sync.Once
	ranked map[int][]topology.TaskID
}

func newFullState(c *Context, ops []int, m Metric) *fullState {
	return &fullState{scope: c.ScopeOf(ops), metric: m}
}

// rank orders the tasks of each scope operator by delta_ij, the
// scoped-OF increase obtained by replicating the task under the
// assumption that all other tasks of the same operator are failed and
// the tasks of the other operators are alive (§IV-C2).
func (f *fullState) rank(c *Context) map[int][]topology.TaskID {
	f.once.Do(func() {
		t := c.Topo
		ops := f.scope.Ops()
		f.ranked = make(map[int][]topology.TaskID, len(ops))
		for _, op := range ops {
			// pseudo-plan: every in-scope task of the other operators is
			// alive ("replicated"), operator op contributes only the probe.
			base := New(t.NumTasks())
			for _, other := range ops {
				if other == op {
					continue
				}
				base.AddAll(t.TasksOf(other))
			}
			type scored struct {
				id topology.TaskID
				d  float64
			}
			var ss []scored
			for _, id := range t.TasksOf(op) {
				ss = append(ss, scored{id: id, d: f.scope.Extend(f.metric, base, []topology.TaskID{id})})
			}
			sort.SliceStable(ss, func(i, j int) bool {
				if ss[i].d != ss[j].d {
					return ss[i].d > ss[j].d
				}
				return ss[i].id < ss[j].id
			})
			ids := make([]topology.TaskID, len(ss))
			for i, s := range ss {
				ids[i] = s.id
			}
			f.ranked[op] = ids
		}
	})
	return f.ranked
}

// step proposes the next expansion of the current plan within the full
// (sub-)topology per Algorithm 4. When the plan covers no complete
// MC-tree of the scope yet, the proposal is one best task per operator
// (in a full topology any one task per operator forms an MC-tree);
// afterwards it is the single next-best task across operators. It
// returns nil when every scope task is already replicated.
func (f *fullState) step(c *Context, cur Plan) []topology.TaskID {
	t := c.Topo
	ops := f.scope.Ops()
	ranked := f.rank(c)

	// Does the current plan include at least one task of every operator?
	complete := true
	for _, op := range ops {
		found := false
		for _, id := range t.TasksOf(op) {
			if cur.Has(id) {
				found = true
				break
			}
		}
		if !found {
			complete = false
			break
		}
	}

	if !complete {
		// Initial MC-tree: the best non-replicated task of each operator
		// that lacks one.
		var out []topology.TaskID
		for _, op := range ops {
			has := false
			for _, id := range t.TasksOf(op) {
				if cur.Has(id) {
					has = true
					break
				}
			}
			if has {
				continue
			}
			for _, id := range ranked[op] {
				if !cur.Has(id) {
					out = append(out, id)
					break
				}
			}
		}
		sortTaskIDs(out)
		return out
	}

	// Single-task expansion: per operator, the next best task; choose
	// the candidate plan with maximal scoped OF. The candidates extend
	// cur by one task, so each evaluation is an incremental update of
	// cur's cached propagation vector.
	bestOF := -1.0
	var bestID topology.TaskID = -1
	for _, op := range ops {
		for _, id := range ranked[op] {
			if cur.Has(id) {
				continue
			}
			of := f.scope.Extend(f.metric, cur, []topology.TaskID{id})
			if of > bestOF || (of == bestOF && id < bestID) {
				bestOF = of
				bestID = id
			}
			break // only the operator's next-best task is considered
		}
	}
	if bestID < 0 {
		return nil
	}
	return []topology.TaskID{bestID}
}

// Full implements Algorithm 4 (PLANFULLTOPOLOGY): plan active
// replication within a full (sub-)topology given an initial plan and a
// budget of replicated tasks within the scope. If the budget cannot
// cover one task per operator and the initial plan is empty, the empty
// plan is returned (no complete MC-tree is affordable).
type Full struct {
	// Ops is the operator scope; nil plans over the whole topology.
	Ops []int
	// Initial is the starting plan; nil starts empty.
	Initial *Plan
	// Metric selects the optimisation objective (default MetricOF).
	Metric Metric
}

// Name implements Planner.
func (Full) Name() string { return "full" }

// Plan implements Planner. It fails when the scope is not a full
// (sub-)topology — Algorithm 4's "one task per operator forms an
// MC-tree" seeding is unsound anywhere else and would silently spend
// the budget on a plan with zero worst-case OF.
func (f Full) Plan(c *Context, budget int) (Plan, error) {
	ops := f.Ops
	if ops == nil {
		ops = allOps(c.Topo)
	}
	inScope := make(map[int]bool, len(ops))
	for _, op := range ops {
		inScope[op] = true
	}
	for _, e := range c.Topo.Edges {
		if inScope[e.From] && inScope[e.To] && e.Part != topology.Full {
			return Plan{}, fmt.Errorf("plan: full planner requires Full partitioning throughout the scope (edge %d->%d is %v)", e.From, e.To, e.Part)
		}
	}
	var p Plan
	if f.Initial != nil {
		p = f.Initial.Clone()
	} else {
		p = New(c.Topo.NumTasks())
	}
	st := newFullState(c, ops, f.Metric)
	for {
		used := scopeUsage(c.Topo, ops, p)
		if used >= budget {
			return p, nil
		}
		ids := st.step(c, p)
		if len(ids) == 0 {
			return p, nil
		}
		if used+len(ids) > budget {
			return p, nil
		}
		p.AddAll(ids)
	}
}

// scopeUsage counts the plan's replicated tasks within the scope ops.
func scopeUsage(t *topology.Topology, ops []int, p Plan) int {
	n := 0
	for _, op := range ops {
		for _, id := range t.TasksOf(op) {
			if p.Has(id) {
				n++
			}
		}
	}
	return n
}
