package plan

import (
	"errors"
	"sync"
)

// Portfolio is a meta-planner: it runs a set of planners concurrently
// on the shared context and returns the best plan by the context's
// configured metric, ties broken by smaller plan size, then
// lexicographically smaller task set, then planner order. Planners that
// fail (e.g. brute force on a large topology, DP past its state cap)
// are skipped; Portfolio errors only when every inner planner fails.
//
// Because all inner planners share the context's memoized evaluator,
// the portfolio costs far less than the sum of its parts: candidate
// plans probed by one planner are cache hits for the others.
type Portfolio struct {
	// Planners is the set to race; nil selects every registered planner
	// in sorted name order, except portfolios themselves, the
	// brute-force reference (whose exponential sweep would stall the
	// portfolio on topologies approaching its 24-task limit) and the
	// *-corr variants (which optimise the correlation-aware objective,
	// not the metric the portfolio ranks by); race those explicitly via
	// Planners when that is wanted.
	Planners []Planner
}

// Name implements Planner.
func (Portfolio) Name() string { return "portfolio" }

// Plan implements Planner.
func (pf Portfolio) Plan(c *Context, budget int) (Plan, error) {
	planners := pf.Planners
	if planners == nil {
		for _, name := range Names() {
			p := MustLookup(name)
			switch p.(type) {
			case Portfolio, Brute, Corr:
				continue
			}
			planners = append(planners, p)
		}
	}
	if len(planners) == 0 {
		return Plan{}, errors.New("plan: portfolio has no planners")
	}
	type result struct {
		p   Plan
		err error
	}
	results := make([]result, len(planners))
	var wg sync.WaitGroup
	wg.Add(len(planners))
	for i, pl := range planners {
		go func(i int, pl Planner) {
			defer wg.Done()
			p, err := pl.Plan(c, budget)
			results[i] = result{p: p, err: err}
		}(i, pl)
	}
	wg.Wait()

	// Selection is sequential in planner order, so the outcome does not
	// depend on goroutine scheduling.
	var (
		best    Plan
		bestObj float64
		found   bool
		errs    []error
	)
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		obj := c.Objective(r.p)
		if !found || obj > bestObj ||
			(obj == bestObj && (r.p.Size() < best.Size() ||
				(r.p.Size() == best.Size() && lessIDs(r.p.Tasks(), best.Tasks())))) {
			best, bestObj, found = r.p, obj, true
		}
	}
	if !found {
		return Plan{}, errors.Join(errs...)
	}
	return best, nil
}
