package engine

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// deepTupleEngine builds a three-level chain with materialised tuples:
// src(2) -1:1-> A(2) -merge-> B(1) -1:1-> sink(1). Task IDs: sources
// 0-1, A 2-3, B 4, sink 5. The sink is two hops from the A tasks and
// three from the sources, so it exercises taint propagation and
// correction beyond the first hop.
func deepTupleEngine(t *testing.T, cfg Config, strategies []Strategy) *Engine {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 10)
	a := b.AddOperator("A", 2, topology.Independent, 1)
	bb := b.AddOperator("B", 1, topology.Independent, 1)
	snk := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(src, a, topology.OneToOne)
	b.Connect(a, bb, topology.Merge)
	b.Connect(bb, snk, topology.OneToOne)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clus := cluster.New(6, 6)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   cfg,
		Sources: map[int]SourceFactory{0: func(idx int) SourceFunc {
			return FuncSource(func(b int) Batch {
				var ts []Tuple
				for j := 0; j < 10; j++ {
					ts = append(ts, Tuple{Key: fmt.Sprintf("s%d-b%d-k%d", idx, b, j), Value: b})
				}
				return Batch{Count: len(ts), Tuples: ts}
			})
		}},
		Operators: map[int]OperatorFactory{
			1: NewPassthroughFactory(),
			2: NewPassthroughFactory(),
			3: NewPassthroughFactory(),
		},
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMultiHopTentativeTaint: a sink two hops away from a failed task
// flags its outputs tentative — the taint travels with every emitted
// batch, not just one hop out of the fabrication.
func TestMultiHopTentativeTaint(t *testing.T) {
	strategies := allStrategies(6, StrategyCheckpoint)
	strategies[2] = StrategyNone // A[0] never recovers
	e := deepTupleEngine(t, Config{TentativeOutputs: true}, strategies)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 10.2)
	e.Run(40)
	if p := e.TaskProgress(5); p < 30 {
		t.Fatalf("sink progress %d, want tentative progress past 30", p)
	}
	sawTentative, sawFirmBefore := false, false
	for _, rec := range e.SinkRecords() {
		if rec.Task != 5 {
			t.Fatalf("record at unexpected task %d", rec.Task)
		}
		if rec.Batch < 9 && !rec.Tentative {
			sawFirmBefore = true
		}
		// The failure window: detection at 15, fabrication from then on.
		if rec.Batch >= 16 && rec.Batch <= 30 && rec.Tentative {
			sawTentative = true
			// Tentative batches carry only the surviving path's tuples.
			if rec.Tuple.Key[:2] == "s0" {
				t.Errorf("tentative batch %d contains tuple %q from the failed path", rec.Batch, rec.Tuple.Key)
			}
		}
	}
	if !sawFirmBefore {
		t.Error("no firm outputs before the failure")
	}
	if !sawTentative {
		t.Error("no tentative-flagged outputs at the sink two hops from the failure")
	}
	acc := e.AccuracyStats()
	if acc.TentativeBatches == 0 || acc.TentativeFraction() <= 0 {
		t.Errorf("accuracy stats report no tentative output: %+v", acc)
	}
	if acc.CorrectedBatches != 0 {
		t.Errorf("%d batches corrected although the failed task never recovers", acc.CorrectedBatches)
	}
}

// TestAmendmentCorrectionAfterRecovery: once the failed task recovers,
// the downstream tasks that consumed fabricated batches reprocess the
// real data and amendment records reach the sink, closing the output
// gap and stamping each tentative batch with a correction time.
func TestAmendmentCorrectionAfterRecovery(t *testing.T) {
	e := deepTupleEngine(t, Config{TentativeOutputs: true, CheckpointInterval: 5}, nil)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2) // A[0], checkpoint recovery
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 1 || !stats[0].Recovered {
		t.Fatalf("recovery failed: %+v", stats)
	}
	acc := e.AccuracyStats()
	if acc.TentativeBatches == 0 {
		t.Fatal("no tentative batches during the failure window")
	}
	if acc.CorrectedBatches == 0 {
		t.Fatal("no corrections after recovery")
	}
	if acc.CorrectedFraction() < 1 {
		t.Errorf("corrected fraction %v, want 1 (every tentative batch correctable)", acc.CorrectedFraction())
	}
	for _, d := range acc.CorrectionDelays {
		if d <= 0 || d > 120 {
			t.Errorf("implausible time-to-correction %v", d)
		}
	}
	sawAmendment := false
	for _, rec := range e.SinkRecords() {
		if rec.Amendment {
			sawAmendment = true
			if rec.Tuple.Key[:2] != "s0" {
				t.Errorf("amendment carries tuple %q, want only the failed path's data", rec.Tuple.Key)
			}
		}
	}
	if !sawAmendment {
		t.Error("no amendment records at the sink")
	}

	// The corrections close the output gap: the run's deduplicated sink
	// volume matches the failure-free baseline over the common progress.
	base := deepTupleEngine(t, Config{TentativeOutputs: true, CheckpointInterval: 5}, nil)
	base.Run(120)
	if got, want := e.TaskProgress(5), base.TaskProgress(5); got != want {
		t.Fatalf("sink progress %d differs from baseline %d", got, want)
	}
	if got, want := e.SinkTupleCount(), base.SinkTupleCount(); got != want {
		t.Errorf("corrected sink volume %d, want baseline %d", got, want)
	}
}

// TestFailureFreeFirmOnly: without failures the tentative machinery is
// inert — no tentative or amendment records, zero accuracy stats, and a
// sink volume bit-identical to a run with the feature disabled.
func TestFailureFreeFirmOnly(t *testing.T) {
	on := deepTupleEngine(t, Config{TentativeOutputs: true, CheckpointInterval: 5}, nil)
	on.Run(60)
	for _, rec := range on.SinkRecords() {
		if rec.Tentative || rec.Amendment {
			t.Fatalf("failure-free run produced tentative/amendment record %+v", rec)
		}
	}
	acc := on.AccuracyStats()
	if acc.TentativeBatches != 0 || acc.TentativeTuples != 0 || acc.CorrectedBatches != 0 || acc.AmendedTuples != 0 {
		t.Errorf("failure-free accuracy stats not zero: %+v", acc)
	}
	if acc.FirmBatches == 0 || acc.FirmTuples == 0 {
		t.Error("failure-free run recorded no firm output")
	}

	off := deepTupleEngine(t, Config{CheckpointInterval: 5}, nil)
	off.Run(60)
	if on.SinkTupleCount() != off.SinkTupleCount() {
		t.Errorf("TentativeOutputs changed the failure-free sink volume: %d vs %d",
			on.SinkTupleCount(), off.SinkTupleCount())
	}
	if on.TaskProgress(5) != off.TaskProgress(5) {
		t.Errorf("TentativeOutputs changed the failure-free sink progress: %d vs %d",
			on.TaskProgress(5), off.TaskProgress(5))
	}
}

// TestSinkRestoreNoDoubleCount: a restored sink reprocesses batches it
// already recorded; the per-(task, batch) accounting must not count
// them twice, so the recovered run's volume equals the baseline's at
// equal progress (before the fix it exceeded it, masked by the loss
// clamp).
func TestSinkRestoreNoDoubleCount(t *testing.T) {
	base := deepTupleEngine(t, Config{CheckpointInterval: 5}, nil)
	base.Run(120)

	e := deepTupleEngine(t, Config{CheckpointInterval: 5}, nil)
	e.ScheduleTaskFailures([]topology.TaskID{5}, 20.2) // the sink task
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 1 || !stats[0].Recovered {
		t.Fatalf("sink recovery failed: %+v", stats)
	}
	if got, want := e.TaskProgress(5), base.TaskProgress(5); got != want {
		t.Fatalf("sink progress %d differs from baseline %d", got, want)
	}
	if got, want := e.SinkTupleCount(), base.SinkTupleCount(); got != want {
		t.Errorf("sink volume after restore = %d, want %d (no double counting)", got, want)
	}
	// And the record stream has no duplicates either.
	seen := map[string]int{}
	for _, rec := range e.SinkRecords() {
		seen[rec.Tuple.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("tuple %s recorded %d times", k, n)
		}
	}
}

// TestMultiWaveNoDoubleAmendment: a task that corrected a tentative
// batch and is then killed before its next checkpoint is restored with
// the owed-input record of that batch; the recovery replay resends the
// same firm data, and without the settle write-through to the stored
// checkpoint the amendment would fire twice, pushing the sink volume
// past the failure-free baseline (negative output loss).
func TestMultiWaveNoDoubleAmendment(t *testing.T) {
	cfg := Config{TentativeOutputs: true, CheckpointInterval: 15, ProcRate: 30}
	base := deepTupleEngine(t, cfg, nil)
	base.Run(200)

	e := deepTupleEngine(t, cfg, nil)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2) // A[0]: slow checkpoint reprocessing
	e.ScheduleTaskFailures([]topology.TaskID{4}, 32.2) // B, right after its corrections
	e.Run(200)
	for _, st := range e.RecoveryStats() {
		if !st.Recovered {
			t.Fatalf("task %d not recovered: %+v", st.Task, st)
		}
	}
	acc := e.AccuracyStats()
	if acc.TentativeBatches == 0 || acc.CorrectedBatches == 0 {
		t.Fatalf("scenario produced no tentative/corrected batches: %+v", acc)
	}
	if got, want := e.TaskProgress(5), base.TaskProgress(5); got != want {
		t.Fatalf("sink progress %d differs from baseline %d", got, want)
	}
	if got, want := e.SinkTupleCount(), base.SinkTupleCount(); got > want {
		t.Errorf("sink volume %d exceeds failure-free baseline %d (amendment double-count)", got, want)
	}
}

// TestDecodeIntError: a truncated source checkpoint payload is an
// explicit error, not a silent restart from batch 0.
func TestDecodeIntError(t *testing.T) {
	if v, err := decodeInt(encodeInt(42)); err != nil || v != 42 {
		t.Fatalf("decodeInt(encodeInt(42)) = %d, %v", v, err)
	}
	if _, err := decodeInt([]byte{1, 2, 3}); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := decodeInt(nil); err == nil {
		t.Error("empty payload decoded without error")
	}
}

// TestDeadReplicaNotAcked: the periodic progress ack skips (and stops
// for) a replica whose standby node failed — acking it would trim a
// buffer nobody can ever use.
func TestDeadReplicaNotAcked(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5, ReplicaTrimInterval: 5},
		allStrategies(5, StrategyActive))
	standby, ok := e.clus.ReplicaNodeOf(2)
	if !ok {
		t.Fatal("no replica placed for task 2")
	}
	e.ScheduleNodeFailure(standby, 2.0) // before the first trim at 5
	e.Run(30)
	reps := 0
	for id := range e.replicas {
		rep := e.replicas[id]
		if rep == nil {
			continue
		}
		if n, ok := e.clus.ReplicaNodeOf(topology.TaskID(id)); ok && n == standby {
			reps++
			if !rep.failed {
				t.Errorf("replica of task %d survived its standby node", id)
			}
			if rep.ackBatch != -1 {
				t.Errorf("dead replica of task %d was acked to batch %d", id, rep.ackBatch)
			}
		}
	}
	if reps == 0 {
		t.Fatal("standby node hosted no replicas; placement changed?")
	}
}

// TestRecoveryPollIntervalDefault pins the Config default: the upstream
// recovery poll scales with the heartbeat instead of a magic constant.
func TestRecoveryPollIntervalDefault(t *testing.T) {
	c := Config{}.withDefaults()
	if c.RecoveryPollInterval != c.HeartbeatInterval/20 {
		t.Errorf("RecoveryPollInterval = %v, want HeartbeatInterval/20 = %v",
			c.RecoveryPollInterval, c.HeartbeatInterval/20)
	}
	c2 := Config{HeartbeatInterval: 10}.withDefaults()
	if c2.RecoveryPollInterval != 0.5 {
		t.Errorf("RecoveryPollInterval = %v for 10s heartbeat, want 0.5", c2.RecoveryPollInterval)
	}
	c3 := Config{RecoveryPollInterval: 2}.withDefaults()
	if c3.RecoveryPollInterval != 2 {
		t.Errorf("explicit RecoveryPollInterval overridden to %v", c3.RecoveryPollInterval)
	}
}
