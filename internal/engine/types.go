// Package engine implements the reproduction's Storm-like massively
// parallel stream processing engine on a deterministic discrete-event
// simulation kernel, following §V of Su & Zhou (ICDE 2016): operators
// parallelised into tasks, key-partitioned substreams, batch processing
// with batch-over punctuations, output buffers with trimming, periodic
// checkpoints to standby nodes, active replicas for a selected task
// subset, failure detection by heartbeat, recovery by replica take-over
// / checkpoint restore + buffer replay / Storm-style source replay, and
// tentative outputs with fabricated punctuations.
//
// Tuples are real data: the engine executes the user-defined operator
// functions on the actual tuple stream, so output-quality experiments
// measure genuine query accuracy. Time, however, is virtual: processing
// and recovery costs advance a sim.Clock according to the calibrated
// cost model in Config, making every run deterministic (see DESIGN.md).
package engine

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Tuple is one data item: a key and an opaque value (§II-A).
type Tuple struct {
	Key   string
	Value interface{}
}

// Batch is the content of one processing batch on one substream. For
// workloads where only volumes matter (the recovery-latency
// experiments), tuples may be left unmaterialised: Count carries the
// tuple count and Tuples stays nil. Count >= len(Tuples) always holds.
type Batch struct {
	Count  int
	Tuples []Tuple
}

// Append merges another batch into b.
func (b *Batch) Append(other Batch) {
	b.Count += other.Count
	b.Tuples = append(b.Tuples, other.Tuples...)
}

// Emitter receives the outputs of an operator function.
type Emitter interface {
	// Emit outputs one materialised tuple.
	Emit(t Tuple)
	// EmitCount outputs n unmaterialised tuples (volume-only workloads).
	EmitCount(n int)
}

// OperatorFunc is the user-defined function executed by every task of a
// non-source operator. Implementations must be deterministic: recovery
// replays inputs in the original order and expects identical outputs.
type OperatorFunc interface {
	// ProcessBatch consumes the input of one batch from one upstream
	// operator. in.Count is the tuple count even when in.Tuples is nil.
	// The in.Tuples slice is only valid during the call: the engine
	// recycles the backing array once the batch closes, so an operator
	// that needs tuples beyond the call must copy the values out (all
	// the repo's operators already do — they fold tuples into their own
	// state).
	ProcessBatch(batch int, fromOp int, in Batch, emit Emitter)
	// OnBatchEnd runs after all input streams of the batch were
	// processed; windowed operators typically emit here.
	OnBatchEnd(batch int, emit Emitter)
	// Snapshot serialises the operator state for checkpointing.
	Snapshot() []byte
	// Restore loads a snapshot produced by Snapshot.
	Restore(data []byte) error
}

// SnapshotAppender is an optional OperatorFunc extension: operators
// implementing it serialise their checkpoint into a caller-provided
// buffer (reusing its capacity) instead of allocating a fresh one per
// Snapshot. The engine recycles each task's previous checkpoint buffer
// through this path, which removes the dominant byte churn of periodic
// checkpointing for large windowed states.
type SnapshotAppender interface {
	// SnapshotAppend appends the snapshot to buf (typically passed with
	// len 0 and reusable capacity) and returns the resulting slice. The
	// content must equal Snapshot().
	SnapshotAppend(buf []byte) []byte
}

// OperatorFactory builds the OperatorFunc instance for one task of an
// operator; taskIndex is the task's index within the operator.
type OperatorFactory func(taskIndex int) OperatorFunc

// SourceFunc generates the input batches of one source task. BatchAt
// must be deterministic in b — Storm-style recovery replays source
// batches by regenerating them.
type SourceFunc interface {
	BatchAt(b int) Batch
}

// SourceFactory builds the SourceFunc for one task of a source operator.
type SourceFactory func(taskIndex int) SourceFunc

// Strategy selects the fault-tolerance technique protecting a task.
type Strategy int

const (
	// StrategyCheckpoint recovers the task from its latest checkpoint
	// plus upstream buffer replay (the passive approach; all tasks in a
	// PPA plan have at least this).
	StrategyCheckpoint Strategy = iota
	// StrategyActive recovers the task from its active replica on a
	// standby node.
	StrategyActive
	// StrategySourceReplay recovers by replaying source data through the
	// topology (Storm's default technique; no checkpoints).
	StrategySourceReplay
	// StrategyNone never recovers the task. It models the tentative
	// window of a worst-case correlated failure, where passive recovery
	// is far slower than the horizon of interest: the master detects the
	// failure and fabricates punctuations (§V-B) but no new incarnation
	// is started.
	StrategyNone
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyActive:
		return "active"
	case StrategySourceReplay:
		return "source-replay"
	case StrategyNone:
		return "none"
	default:
		return "checkpoint"
	}
}

// SinkRecord is one output tuple observed at a sink task.
type SinkRecord struct {
	Task  topology.TaskID
	Batch int
	Tuple Tuple
	// Tentative marks outputs produced from a batch that closed with at
	// least one fabricated or tentative punctuation (incomplete input
	// anywhere upstream — the taint propagates to sinks at any depth).
	Tentative bool
	// Amendment marks a correction record: output produced by
	// reprocessing the real data of a batch previously recorded
	// tentative, emitted by the post-recovery correction layer.
	Amendment bool
	// At is the virtual time the record was observed.
	At sim.Time
}
