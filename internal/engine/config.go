package engine

import (
	"repro/internal/sim"
)

// Config is the engine's calibrated cost model and fault-tolerance
// configuration. Zero fields take the documented defaults (applied by
// withDefaults); the defaults are calibrated so that the experiment
// latencies land in the paper's regime (seconds to tens of seconds for
// the Fig. 6 topology at 1000-2000 tuples/s per source task).
type Config struct {
	// BatchInterval is the length of one processing batch in virtual
	// seconds (default 1s). Batch-over punctuations delimit batches
	// (§V-B).
	BatchInterval sim.Time
	// NetDelay is the one-hop delivery delay between tasks (default
	// 50ms).
	NetDelay sim.Time
	// ProcRate is each task's processing capacity in tuples per second
	// (default 8000, calibrated to the paper's m1.medium nodes so that
	// replay-driven recovery latencies land in the reported regime).
	// Recovery replay speed is bounded by ProcRate minus the ongoing
	// input rate.
	ProcRate float64
	// PerBatchOverhead is the fixed processing cost per batch (default
	// 2ms).
	PerBatchOverhead sim.Time
	// HeartbeatInterval drives failure detection (default 5s, §VI).
	HeartbeatInterval sim.Time
	// CheckpointInterval is the per-task checkpoint period; 0 disables
	// checkpoints (Storm mode).
	CheckpointInterval sim.Time
	// CheckpointFixed and CheckpointByteRate model snapshot cost:
	// save time = CheckpointFixed + bytes/CheckpointByteRate
	// (defaults 20ms and 5 MB/s).
	CheckpointFixed    sim.Time
	CheckpointByteRate float64
	// RestoreFixed and RestoreByteRate model checkpoint loading
	// (defaults 500ms — includes redeployment of the task binary on a
	// standby node — and 10 MB/s).
	RestoreFixed    sim.Time
	RestoreByteRate float64
	// RestartCost is the extra cost of restarting a task from scratch
	// in source-replay recovery (default 1s).
	RestartCost sim.Time
	// ReplicaTrimInterval is the period at which a primary acknowledges
	// output progress to its active replica so the replica can trim its
	// output buffer (default 5s). Longer intervals mean more buffered
	// tuples to resend at take-over (§V-B Active Replication).
	ReplicaTrimInterval sim.Time
	// ReplicaActivateCost is the fixed cost of switching a replica's
	// output on (default 200ms).
	ReplicaActivateCost sim.Time
	// ResendRate is the rate at which buffered tuples are resent and
	// deduplicated during replica take-over, in tuples per second
	// (default 50000; resending is cheaper than processing).
	ResendRate float64
	// RecoveryPollInterval is the period at which a checkpoint-restored
	// task polls for its failed upstream peers to catch up before its
	// own recovery starts (the §V-B synchronisation). The default is
	// HeartbeatInterval/20, so the synchronisation cost scales with the
	// failure-detection cadence.
	RecoveryPollInterval sim.Time
	// TentativeOutputs enables fabricated batch-over punctuations for
	// failed tasks so the surviving topology keeps producing (§V-B).
	// Tentativeness propagates: a task that processed any fabricated or
	// tentative input emits tentative output, so the taint reaches sinks
	// at any depth, and recovered tasks trigger amendment corrections.
	TentativeOutputs bool
	// WindowBatches is the number of batches covered by the query's
	// sliding window; source-replay recovery replays the unfinished
	// windows, i.e. this many batches back (default 30).
	WindowBatches int
	// MaxEvents guards against runaway simulations (default 20M).
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.BatchInterval == 0 {
		c.BatchInterval = 1
	}
	if c.NetDelay == 0 {
		c.NetDelay = 0.05
	}
	if c.ProcRate == 0 {
		c.ProcRate = 8000
	}
	if c.PerBatchOverhead == 0 {
		c.PerBatchOverhead = 0.002
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 5
	}
	if c.RecoveryPollInterval == 0 {
		c.RecoveryPollInterval = c.HeartbeatInterval / 20
	}
	if c.CheckpointFixed == 0 {
		c.CheckpointFixed = 0.02
	}
	if c.CheckpointByteRate == 0 {
		c.CheckpointByteRate = 5e6
	}
	if c.RestoreFixed == 0 {
		c.RestoreFixed = 0.5
	}
	if c.RestoreByteRate == 0 {
		c.RestoreByteRate = 10e6
	}
	if c.RestartCost == 0 {
		c.RestartCost = 1
	}
	if c.ReplicaTrimInterval == 0 {
		c.ReplicaTrimInterval = 5
	}
	if c.ReplicaActivateCost == 0 {
		c.ReplicaActivateCost = 0.2
	}
	if c.ResendRate == 0 {
		c.ResendRate = 50000
	}
	if c.WindowBatches == 0 {
		c.WindowBatches = 30
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 20_000_000
	}
	return c
}
