package engine

// This file provides the dense per-batch input state of a task: a
// windowed ring of batch records indexed by batch number, with the
// per-upstream punctuation/taint/miss flags held in bitsets over the
// compact upstream index and the staged input in a per-upstream Batch
// slice. It replaces the four nested map[int]map[topology.TaskID] maps
// that used to be rebuilt per batch on the engine hot path; records are
// recycled in place as the window slides, so steady-state batch
// processing allocates nothing.

// ubits is a bitset over the compact upstream indexes of one task.
type ubits []uint64

func newUbits(n int) ubits { return make(ubits, (n+63)/64) }

// set sets bit i and reports whether it was newly set.
func (b ubits) set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

// clear clears bit i and reports whether it was set.
func (b ubits) clear(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b[w]&m == 0 {
		return false
	}
	b[w] &^= m
	return true
}

func (b ubits) test(i int) bool { return b[i>>6]&(uint64(1)<<(uint(i)&63)) != 0 }

func (b ubits) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

func (b ubits) reset() {
	for i := range b {
		b[i] = 0
	}
}

// batchRec is the input state of one open batch: the staged input and
// punctuation/taint/miss flags per upstream, indexed by the compact
// upstream index.
type batchRec struct {
	batch  int // batch number held by this slot; -1 when free
	staged []Batch
	punct  ubits
	taint  ubits
	miss   ubits
	// punctCount is the number of set punct bits, making the readiness
	// check O(1) instead of a scan over the upstreams.
	punctCount int
}

// batchWindow is the sliding window of open-batch records of one task.
// Records live in a power-of-two ring addressed by batch & mask; the
// window spans [base, base+len(recs)), growing on demand (a recovering
// task can have inputs staged far ahead of its own progress). Released
// records are cleared in place and reused, returning their staged tuple
// backing arrays to the engine's pool.
type batchWindow struct {
	nup  int
	base int // lowest batch that may hold a live record (== task nextBatch)
	recs []batchRec
}

const initialWindow = 8

func (w *batchWindow) init(nup int) {
	w.nup = nup
	w.base = 0
	if w.recs == nil {
		w.recs = make([]batchRec, initialWindow)
		for i := range w.recs {
			w.recs[i].batch = -1
		}
	}
}

// peek returns the record of batch b, or nil if none exists. It never
// creates a record.
func (w *batchWindow) peek(b int) *batchRec {
	if b < w.base || b-w.base >= len(w.recs) {
		return nil
	}
	r := &w.recs[b&(len(w.recs)-1)]
	if r.batch != b {
		return nil
	}
	return r
}

// rec returns the record of batch b (b >= base), creating it if needed.
func (w *batchWindow) rec(b int) *batchRec {
	if b-w.base >= len(w.recs) {
		w.grow(b - w.base + 1)
	}
	r := &w.recs[b&(len(w.recs)-1)]
	if r.batch == b {
		return r
	}
	// Free slot (the span check above makes a live collision impossible).
	r.batch = b
	if r.staged == nil {
		r.staged = make([]Batch, w.nup)
		r.punct = newUbits(w.nup)
		r.taint = newUbits(w.nup)
		r.miss = newUbits(w.nup)
	}
	return r
}

// grow resizes the ring to hold at least span batches, repositioning
// live records and redistributing the spare state of free slots.
func (w *batchWindow) grow(span int) {
	size := len(w.recs)
	for size < span {
		size *= 2
	}
	old := w.recs
	w.recs = make([]batchRec, size)
	for i := range w.recs {
		w.recs[i].batch = -1
	}
	var spare []batchRec // allocated state of free slots, reusable
	for i := range old {
		r := &old[i]
		if r.batch >= 0 {
			w.recs[r.batch&(size-1)] = *r
		} else if r.staged != nil {
			spare = append(spare, *r)
		}
	}
	// Hand the spare state to empty slots so it is not wasted.
	si := 0
	for i := range w.recs {
		if si >= len(spare) {
			break
		}
		if w.recs[i].batch == -1 && w.recs[i].staged == nil {
			s := spare[si]
			si++
			s.batch = -1
			w.recs[i] = s
		}
	}
}

// release clears the record of batch b in place, recycling the staged
// tuple backings into the pool, and advances the window base when b is
// the front.
func (w *batchWindow) release(b int, pool *tuplePool) {
	if r := w.peek(b); r != nil {
		for i := range r.staged {
			s := &r.staged[i]
			if s.Tuples != nil {
				pool.put(s.Tuples)
			}
			*s = Batch{}
		}
		r.punct.reset()
		r.taint.reset()
		r.miss.reset()
		r.punctCount = 0
		r.batch = -1
	}
	if b == w.base {
		w.base = b + 1
	}
}

// resetTo drops every record and rebases the window at batch.
func (w *batchWindow) resetTo(batch int, pool *tuplePool) {
	for i := range w.recs {
		r := &w.recs[i]
		if r.batch >= 0 {
			w.release(r.batch, pool)
		}
	}
	w.base = batch
}

// tuplePool recycles the backing arrays of staged input batches. A
// backing is returned to the pool when its batch record is released —
// after the batch was processed — which is safe because operators must
// not retain input slices past ProcessBatch (see OperatorFunc). The
// pool is per-engine and single-threaded like the simulation itself.
type tuplePool struct {
	free [][]Tuple
}

func (p *tuplePool) get() []Tuple {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	return nil
}

func (p *tuplePool) put(t []Tuple) {
	if cap(t) == 0 {
		return
	}
	p.free = append(p.free, t[:0])
}
