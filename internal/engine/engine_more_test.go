package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// TestSourceFailureCheckpointRecovery: a failed source task regenerates
// its missed batches on recovery and the downstream totals stay exact.
func TestSourceFailureCheckpointRecovery(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	e.ScheduleTaskFailures([]topology.TaskID{0}, 20.2) // a source task
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 1 || !stats[0].Recovered {
		t.Fatalf("source recovery failed: %+v", stats)
	}
	sink := e.topo.SinkTasks()[0]
	srt := e.tasks[sink]
	var total int64
	for _, c := range srt.tupleProgress {
		total += c
	}
	if want := int64(1000) * int64(srt.processedBatch+1); total != want {
		t.Errorf("sink consumed %d tuples, want %d after source recovery", total, want)
	}
}

// TestRepeatedFailure: a task that fails again after recovering is
// recovered again.
func TestRepeatedFailure(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 60.2)
	e.Run(160)
	stats := e.RecoveryStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v, want two recorded failures", stats)
	}
	for _, st := range stats {
		if !st.Recovered {
			t.Fatalf("failure at %v not recovered", st.FailedAt)
		}
	}
	// The task must be caught up after the second recovery.
	if got, cur := e.TaskProgress(2), e.currentBatch; cur-got > 3 {
		t.Errorf("task progress %d lags current batch %d after repeated failure", got, cur)
	}
}

// TestMultipleRunCalls: Run may be invoked repeatedly with growing
// horizons without duplicating ticker chains (checkpoint CPU must match
// a single long run).
func TestMultipleRunCalls(t *testing.T) {
	a := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	a.Run(30)
	a.Run(60)
	a.Run(90)

	b := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	b.Run(90)

	sa, sb := a.CPUStats(), b.CPUStats()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("task %d: split runs diverge from single run: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if a.TaskProgress(4) != b.TaskProgress(4) {
		t.Fatalf("sink progress differs: %d vs %d", a.TaskProgress(4), b.TaskProgress(4))
	}
}

// TestEmitCountConservation: EmitCount distributes exactly n tuples over
// each route regardless of weights (property test of the cumulative
// rounding).
func TestEmitCountConservation(t *testing.T) {
	check := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5000) + 1
		parts := 1 + rng.Intn(7)
		b := topology.NewBuilder()
		src := b.AddSource("s", 1, 100)
		down := b.AddOperator("d", parts, topology.Independent, 1)
		w := make([]float64, parts)
		for i := range w {
			w[i] = 0.1 + rng.Float64()*10
		}
		b.SetWeights(down, w)
		b.Connect(src, down, topology.Full)
		topo, err := b.Build()
		if err != nil {
			return false
		}
		e, err := New(Setup{
			Topology:  topo,
			Sources:   map[int]SourceFactory{0: NewCountSourceFactory(1)},
			Operators: map[int]OperatorFactory{1: NewPassthroughFactory()},
		})
		if err != nil {
			return false
		}
		rt := e.tasks[0]
		rt.EmitCount(n)
		total := 0
		for i := range rt.emitBuf {
			total += rt.emitBuf[i].Count
			rt.emitBuf[i] = Batch{}
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointTrimsUpstreamBuffers: after a downstream checkpoint the
// upstream's buffered batches up to the checkpointed batch are dropped,
// on both the primary and the replica.
func TestCheckpointTrimsUpstreamBuffers(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5, ReplicaTrimInterval: 1000},
		allStrategies(5, StrategyActive))
	e.Run(40)
	// Task 2 (an A task) has downstream task 4 (the B task). After ~40s
	// with 5s checkpoints, old batches must be gone from the buffer.
	for _, rt := range []*taskRuntime{e.tasks[2], e.replicas[2]} {
		if rt == nil {
			t.Fatal("missing runtime")
		}
		buf := rt.outBuf[4]
		if len(buf) == 0 {
			t.Fatal("no buffered output at all")
		}
		for b := range buf {
			if b <= 20 {
				t.Errorf("batch %d still buffered despite downstream checkpoints", b)
			}
		}
	}
}

// TestNoCheckpointNoTrim: without checkpoints (pure active), the replica
// trims on acks alone.
func TestNoCheckpointNoTrim(t *testing.T) {
	e := newChainEngine(t, Config{ReplicaTrimInterval: 5}, allStrategies(5, StrategyActive))
	e.Run(40)
	rep := e.replicas[2]
	if rep == nil {
		t.Fatal("missing replica")
	}
	for b := range rep.outBuf[4] {
		if b <= rep.ackBatch-1 {
			t.Errorf("batch %d buffered on replica despite ack %d (no checkpointing)", b, rep.ackBatch)
		}
	}
}

// TestStrategyNoneNeverRecovers: a StrategyNone task stays down but the
// master keeps fabricating punctuations.
func TestStrategyNoneNeverRecovers(t *testing.T) {
	e := newChainEngine(t, Config{TentativeOutputs: true}, allStrategies(5, StrategyNone))
	e.ScheduleTaskFailures([]topology.TaskID{2}, 10.2)
	e.Run(60)
	stats := e.RecoveryStats()
	if len(stats) != 1 || stats[0].Recovered {
		t.Fatalf("StrategyNone task recovered: %+v", stats)
	}
	if stats[0].Latency() != -1 {
		t.Errorf("unrecovered latency = %v, want -1", stats[0].Latency())
	}
	// The sink keeps moving on fabricated punctuations.
	if p := e.TaskProgress(4); p < 50 {
		t.Errorf("sink progress %d, want tentative progress past 50", p)
	}
}

// TestActiveFallbackWithoutReplica: a task marked active whose replica
// is unavailable falls back to checkpoint recovery.
func TestActiveFallbackWithoutReplica(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5}, allStrategies(5, StrategyActive))
	// Sabotage: drop the replica before the failure.
	e.replicas[2] = nil
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 1 || !stats[0].Recovered {
		t.Fatalf("fallback recovery failed: %+v", stats)
	}
	if l := stats[0].Latency(); l < 0.4 {
		t.Errorf("latency %v suspiciously low for a checkpoint fallback", l)
	}
}
