package engine

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// route is the fan-out of one task along one operator edge.
type route struct {
	downOp     int
	recipients []topology.TaskID
	weights    []float64
	weightSum  float64
}

// delivery carries the control flags of one batch message between tasks.
type delivery struct {
	// punct marks the message as carrying the batch-over punctuation.
	punct bool
	// tent marks the payload (and punctuation) as tentative: it was
	// computed from incomplete or itself-tentative input, so every
	// downstream consumer inherits the taint (§V-B Tentative Outputs).
	tent bool
	// fab marks a master-fabricated punctuation: the upstream task is
	// down and its input data for the batch is missing entirely. Implies
	// tent. The receiver records which input is owed so the late real
	// data can trigger an amendment after recovery.
	fab bool
	// amend marks an amendment delta: a correction for a batch the
	// receiver may have already closed on tentative input.
	amend bool
}

// taskRuntime is one incarnation of a task (primary or active replica).
// A task that fails and recovers gets a fresh incarnation; stale events
// of the old incarnation are fenced by the failed flag and the epoch
// counter.
type taskRuntime struct {
	eng       *Engine
	id        topology.TaskID
	opIdx     int
	taskIndex int
	isSource  bool
	src       SourceFunc
	udf       OperatorFunc
	isReplica bool
	failed    bool
	// recovering is set while the incarnation works to reach the failed
	// predecessor's progress.
	recovering bool
	// promoted marks a primary incarnation that started life as an
	// active replica: it runs on the standby node of the cluster's
	// replica placement, not on the task's primary placement, so node
	// failures must check that host instead.
	promoted bool
	epoch    int

	upstreams []topology.TaskID
	upOp      map[topology.TaskID]int
	routes    []route

	staged map[int]map[topology.TaskID]*Batch
	puncts map[int]map[topology.TaskID]bool
	// taintIn records, per open batch and upstream, a tentative (or
	// fabricated) punctuation: a batch closed with any entry left is
	// tentative and its output carries the taint downstream.
	taintIn map[int]map[topology.TaskID]bool
	// missIn records, per batch and upstream, a master-fabricated
	// punctuation whose real data never arrived: the input is owed.
	// Entries survive the batch close so that the recovered upstream's
	// late real data can be matched and reprocessed as an amendment.
	missIn map[int]map[topology.TaskID]bool
	// tentOut marks the batches this incarnation closed (and emitted)
	// tentative. Amendments are only accepted for batches in tentOut,
	// and replayed buffered output re-delivers the taint.
	tentOut   map[int]bool
	nextBatch int
	// processedBatch is the progress measure: the last batch fully
	// processed (§VI's progress vector collapses to the batch index
	// under the batch discipline).
	processedBatch int
	busyUntil      sim.Time
	procScheduled  bool

	// outBuf buffers emitted batches per downstream task for replay
	// (§II-B); trimmed when the downstream checkpoints.
	outBuf map[topology.TaskID]map[int]Batch
	// ckptBound tracks, per downstream task, the last batch covered by
	// a downstream checkpoint: buffered output up to it can never be
	// requested for replay again.
	ckptBound map[topology.TaskID]int
	// ackBatch is, on a replica, the primary's output progress at the
	// last periodic ack (§V-B): the take-over resend covers only later
	// batches.
	ackBatch int
	// tupleProgress counts processed tuples per upstream task
	// (auxiliary fine-grained progress, used in tests).
	tupleProgress map[topology.TaskID]int64

	procCPU sim.Time
	ckptCPU sim.Time

	// emit staging during batch processing
	emitting  map[topology.TaskID]*Batch
	sinkOut   []Tuple
	sinkCount int // unmaterialised tuples emitted at a sink this batch
}

func newTaskRuntime(e *Engine, id topology.TaskID, isReplica bool) *taskRuntime {
	t := e.topo
	task := t.Tasks[id]
	rt := &taskRuntime{
		eng:            e,
		id:             id,
		opIdx:          task.Op,
		taskIndex:      task.Index,
		isSource:       t.IsSource(task.Op),
		isReplica:      isReplica,
		upOp:           make(map[topology.TaskID]int),
		staged:         make(map[int]map[topology.TaskID]*Batch),
		puncts:         make(map[int]map[topology.TaskID]bool),
		taintIn:        make(map[int]map[topology.TaskID]bool),
		missIn:         make(map[int]map[topology.TaskID]bool),
		tentOut:        make(map[int]bool),
		outBuf:         make(map[topology.TaskID]map[int]Batch),
		ckptBound:      make(map[topology.TaskID]int),
		tupleProgress:  make(map[topology.TaskID]int64),
		processedBatch: -1,
		ackBatch:       -1,
	}
	for _, in := range t.InputsOf(id) {
		for _, sub := range in.Subs {
			rt.upstreams = append(rt.upstreams, sub.From)
			rt.upOp[sub.From] = in.FromOp
		}
	}
	sort.Slice(rt.upstreams, func(i, j int) bool { return rt.upstreams[i] < rt.upstreams[j] })

	// Group outgoing substreams into per-operator routes.
	byOp := map[int]*route{}
	var ops []int
	for _, sub := range t.OutputsOf(id) {
		downOp := t.Tasks[sub.To].Op
		r, ok := byOp[downOp]
		if !ok {
			r = &route{downOp: downOp}
			byOp[downOp] = r
			ops = append(ops, downOp)
		}
		r.recipients = append(r.recipients, sub.To)
		w := t.Weight(sub.To)
		r.weights = append(r.weights, w)
		r.weightSum += w
	}
	sort.Ints(ops)
	for _, op := range ops {
		rt.routes = append(rt.routes, *byOp[op])
	}

	if rt.isSource {
		rt.src = e.sources[task.Op](task.Index)
	} else {
		rt.udf = e.operators[task.Op](task.Index)
	}
	return rt
}

// receive stages an incoming batch fragment; duplicates of already
// processed batches are dropped (the dedup that skips replayed and
// replica-duplicated output, §V-B) unless they correct a batch that was
// closed on fabricated input, in which case they trigger an amendment.
func (rt *taskRuntime) receive(from topology.TaskID, batch int, content Batch, d delivery) {
	if rt.failed || rt.isSource {
		return
	}
	if _, known := rt.upOp[from]; !known {
		return
	}
	if batch < rt.nextBatch {
		rt.receiveLate(from, batch, content, d)
		return
	}
	if d.amend {
		// Amendment delta for a batch still open here: it simply joins
		// the staged input and is processed with the batch. The
		// upstream's taint is deliberately NOT lifted: the amendment may
		// be partial (one per resolved missing input upstream), so
		// closing the batch firm could silently miss a later delta —
		// a conservative never-corrected tentative mark is safer.
		if content.Count > 0 {
			rt.stageInput(from, batch, content)
		}
		rt.tryProcess()
		return
	}
	m := rt.puncts[batch]
	seen := m != nil && m[from]
	// A recorded punctuation means this upstream already delivered the
	// batch in full: later payloads for the same (upstream, batch) are
	// replay duplicates and are dropped — unless the punctuation was
	// fabricated (the data is owed) and the real payload arrives now.
	// Absorbing that payload settles the debt immediately, whether it is
	// firm or still tentative: a repeated resend must not stage it twice.
	if content.Count > 0 && (!seen || rt.missIn[batch][from]) {
		rt.stageInput(from, batch, content)
		rt.settleOwed(batch, from)
	}
	if d.punct {
		if m == nil {
			m = make(map[topology.TaskID]bool)
			rt.puncts[batch] = m
		}
		if !seen {
			m[from] = true
			if d.tent {
				markIn(rt.taintIn, batch, from)
				if d.fab {
					markIn(rt.missIn, batch, from)
				}
			}
		}
		if !d.tent {
			// The real, firm payload arrived before the batch closed
			// (e.g. a recovered upstream resent it after the master had
			// fabricated its punctuation): the input is complete after
			// all, so the taint and the missing mark are lifted.
			clearIn(rt.taintIn, batch, from)
			clearIn(rt.missIn, batch, from)
		}
	}
	rt.tryProcess()
}

// receiveLate handles messages for batches this incarnation already
// closed: amendment deltas from upstream corrections, and the late real
// data of batches that were closed on fabricated punctuations. Both are
// reprocessed as amendments, which is how a correction propagates hop
// by hop until it reaches the sinks.
func (rt *taskRuntime) receiveLate(from topology.TaskID, batch int, content Batch, d delivery) {
	if !rt.tentOut[batch] {
		return // the batch closed firm here: replayed duplicates are dropped
	}
	if d.amend {
		rt.reprocessAmendment(from, batch, content)
		return
	}
	if !d.punct || d.tent {
		return // a still-tentative replay cannot correct anything
	}
	if miss := rt.missIn[batch]; miss[from] {
		rt.settleOwed(batch, from)
		rt.reprocessAmendment(from, batch, content)
	}
}

// settleOwed clears the owed-input record of (batch, from) on the live
// incarnation AND in the stored checkpoint: once the late data has been
// absorbed or amended, a restore from a pre-correction snapshot must
// not repeat the amendment (the upstream resends the same batch on
// every recovery, and a duplicate amendment would overcount at sinks).
func (rt *taskRuntime) settleOwed(batch int, from topology.TaskID) {
	clearIn(rt.missIn, batch, from)
	if ck := rt.eng.store[rt.id]; ck != nil {
		if owed := ck.missIn[batch]; owed != nil {
			delete(owed, from)
			if len(owed) == 0 {
				delete(ck.missIn, batch)
			}
		}
	}
}

// stageInput merges one incoming batch fragment into the staged input.
func (rt *taskRuntime) stageInput(from topology.TaskID, batch int, content Batch) {
	m := rt.staged[batch]
	if m == nil {
		m = make(map[topology.TaskID]*Batch)
		rt.staged[batch] = m
	}
	b := m[from]
	if b == nil {
		b = &Batch{}
		m[from] = b
	}
	b.Append(content)
}

func markIn(m map[int]map[topology.TaskID]bool, batch int, from topology.TaskID) {
	s := m[batch]
	if s == nil {
		s = make(map[topology.TaskID]bool)
		m[batch] = s
	}
	s[from] = true
}

func clearIn(m map[int]map[topology.TaskID]bool, batch int, from topology.TaskID) {
	if s := m[batch]; s != nil {
		delete(s, from)
		if len(s) == 0 {
			delete(m, batch)
		}
	}
}

// ready reports whether every upstream punctuation for the batch is in.
func (rt *taskRuntime) ready(batch int) bool {
	m := rt.puncts[batch]
	if len(m) < len(rt.upstreams) {
		return false
	}
	for _, u := range rt.upstreams {
		if !m[u] {
			return false
		}
	}
	return true
}

// tryProcess schedules processing of the next batch when it is ready.
// A task processes one batch at a time (§V-B): the start waits for
// busyUntil and the cost follows the Config cost model.
func (rt *taskRuntime) tryProcess() {
	if rt.failed || rt.procScheduled || rt.isSource {
		return
	}
	b := rt.nextBatch
	if !rt.ready(b) {
		return
	}
	total := 0
	for _, in := range rt.staged[b] {
		total += in.Count
	}
	cost := rt.eng.cfg.PerBatchOverhead + sim.Time(float64(total)/rt.eng.cfg.ProcRate)
	now := rt.eng.clock.Now()
	start := now
	if rt.busyUntil > start {
		start = rt.busyUntil
	}
	rt.busyUntil = start + cost
	rt.procScheduled = true
	epoch := rt.epoch
	rt.eng.clock.At(start+cost, func() {
		if rt.failed || rt.epoch != epoch {
			return
		}
		rt.completeBatch(b, cost)
	})
}

// completeBatch runs the UDF over the staged input of batch b, emits and
// buffers the outputs, and advances progress.
func (rt *taskRuntime) completeBatch(b int, cost sim.Time) {
	rt.procScheduled = false
	rt.procCPU += cost
	rt.beginEmit()
	staged := rt.staged[b]
	for _, u := range rt.upstreams {
		var in Batch
		if sb := staged[u]; sb != nil {
			in = *sb
		}
		rt.udf.ProcessBatch(b, rt.upOp[u], in, rt)
		rt.tupleProgress[u] += int64(in.Count)
	}
	rt.udf.OnBatchEnd(b, rt)
	// A batch closed with any tentative or fabricated punctuation left
	// standing produces tentative output, whatever the task's distance
	// from the failure: the taint travels with the emitted batches.
	tentative := len(rt.taintIn[b]) > 0
	if tentative {
		rt.tentOut[b] = true
	} else {
		delete(rt.tentOut, b) // reprocessed firm (e.g. after a rewind)
	}
	rt.finishEmit(b, tentative)
	delete(rt.staged, b)
	delete(rt.puncts, b)
	delete(rt.taintIn, b)
	// missIn[b] is kept: it records which upstream inputs are still
	// owed, matched against the recovered upstream's late real data to
	// trigger the amendment that corrects this batch.
	if !tentative {
		delete(rt.missIn, b)
	}
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.eng.topo.IsSink(rt.opIdx) && !rt.isReplica {
		rt.eng.recordSinkBatch(rt.id, b, rt.sinkOut, rt.sinkCount, tentative)
	}
	rt.sinkOut = nil
	rt.sinkCount = 0
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
	rt.tryProcess()
}

// Emit implements Emitter: route one materialised tuple by key hash.
func (rt *taskRuntime) Emit(t Tuple) {
	if len(rt.routes) == 0 {
		rt.sinkOut = append(rt.sinkOut, t)
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		idx := int(hashKey(t.Key) % uint64(len(r.recipients)))
		rt.stageEmit(r.recipients[idx], Batch{Count: 1, Tuples: []Tuple{t}})
	}
}

// EmitCount implements Emitter: distribute n unmaterialised tuples over
// each route proportionally to the recipients' workload weights, with
// deterministic cumulative rounding.
func (rt *taskRuntime) EmitCount(n int) {
	if n <= 0 {
		return
	}
	if len(rt.routes) == 0 {
		rt.sinkCount += n
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		var cum, prevRounded float64
		for j, rec := range r.recipients {
			cum += float64(n) * r.weights[j] / r.weightSum
			rounded := float64(int(cum + 0.5))
			share := int(rounded - prevRounded)
			prevRounded = rounded
			if share > 0 {
				rt.stageEmit(rec, Batch{Count: share})
			}
		}
	}
}

func (rt *taskRuntime) beginEmit() {
	rt.emitting = make(map[topology.TaskID]*Batch)
}

func (rt *taskRuntime) stageEmit(to topology.TaskID, content Batch) {
	b := rt.emitting[to]
	if b == nil {
		b = &Batch{}
		rt.emitting[to] = b
	}
	b.Append(content)
}

// finishEmit buffers the batch outputs and, on a primary, delivers them
// with batch-over punctuations to every downstream task. The tentative
// bit rides on the punctuation so downstream tasks inherit the taint.
func (rt *taskRuntime) finishEmit(batch int, tentative bool) {
	for i := range rt.routes {
		r := &rt.routes[i]
		for _, rec := range r.recipients {
			var content Batch
			if b := rt.emitting[rec]; b != nil {
				content = *b
			}
			buf := rt.outBuf[rec]
			if buf == nil {
				buf = make(map[int]Batch)
				rt.outBuf[rec] = buf
			}
			buf[batch] = content
			if !rt.isReplica {
				rt.eng.deliver(rt.id, rec, batch, content, delivery{punct: true, tent: tentative})
			}
		}
	}
	rt.emitting = nil
}

// reprocessAmendment re-runs a late input delta of an already-closed
// tentative batch through a fresh operator instance and emits the
// result as an amendment. For the engine's linear synthetic operators
// (counts, passthrough, windowed selectivity) the output of the delta
// equals the delta of the outputs, so the amendment exactly closes the
// gap the fabricated input left; for non-linear operators it is the
// standard delta-correction approximation. Reprocessing is charged at
// the normal processing rate.
func (rt *taskRuntime) reprocessAmendment(from topology.TaskID, batch int, delta Batch) {
	cost := rt.eng.cfg.PerBatchOverhead + sim.Time(float64(delta.Count)/rt.eng.cfg.ProcRate)
	now := rt.eng.clock.Now()
	start := maxTime(rt.busyUntil, now)
	rt.busyUntil = start + cost
	epoch := rt.epoch
	rt.eng.clock.At(start+cost, func() {
		if rt.failed || rt.epoch != epoch {
			return
		}
		rt.procCPU += cost
		op := rt.eng.operators[rt.opIdx](rt.taskIndex)
		rt.beginEmit()
		op.ProcessBatch(batch, rt.upOp[from], delta, rt)
		op.OnBatchEnd(batch, rt)
		rt.finishAmend(batch)
	})
}

// finishAmend records or forwards the amendment output of one batch.
// Amendments are delivered to every recipient — even when the delta is
// empty — so the corrected-at mark reaches the sinks of all paths; they
// are not buffered for replay (a later restore replays the original
// tentative output, a documented approximation).
func (rt *taskRuntime) finishAmend(batch int) {
	if rt.eng.topo.IsSink(rt.opIdx) && !rt.isReplica {
		rt.eng.recordSinkAmendment(rt.id, batch, rt.sinkOut, rt.sinkCount)
	}
	rt.sinkOut = nil
	rt.sinkCount = 0
	if rt.isReplica {
		rt.emitting = nil
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		for _, rec := range r.recipients {
			var content Batch
			if b := rt.emitting[rec]; b != nil {
				content = *b
			}
			rt.eng.deliver(rt.id, rec, batch, content, delivery{amend: true})
		}
	}
	rt.emitting = nil
}

// emitSourceBatch generates and sends one source batch (the source task
// path; no UDF).
func (rt *taskRuntime) emitSourceBatch(b int) {
	if rt.failed || !rt.isSource || b < rt.nextBatch {
		return
	}
	content := rt.src.BatchAt(b)
	rt.beginEmit()
	if len(content.Tuples) > 0 {
		for _, t := range content.Tuples {
			rt.Emit(t)
		}
		if extra := content.Count - len(content.Tuples); extra > 0 {
			rt.EmitCount(extra)
		}
	} else {
		rt.EmitCount(content.Count)
	}
	rt.finishEmit(b, false) // source data is always firm
	rt.tupleProgress[rt.id] += int64(content.Count)
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
}

// catchUpSource regenerates all batches from nextBatch through target
// (inclusive), used after source recovery and for source replay.
func (rt *taskRuntime) catchUpSource(target int) {
	for b := rt.nextBatch; b <= target; b++ {
		rt.emitSourceBatch(b)
	}
}

// resendAll redelivers every buffered output batch to the downstream
// tasks (buffer replay after a restore; duplicates are dropped by the
// receivers). The cost is charged at ResendRate.
func (rt *taskRuntime) resendAll() {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			batches = append(batches, b)
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], delivery{punct: true, tent: rt.tentOut[b]})
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

func (rt *taskRuntime) downstreamIDs() []topology.TaskID {
	var out []topology.TaskID
	for i := range rt.routes {
		out = append(out, rt.routes[i].recipients...)
	}
	sortIDs(out)
	return out
}

// trimFor drops buffered output for one downstream task up to and
// including the given batch (invoked when the downstream checkpoints,
// §II-B) and records the checkpoint bound.
func (rt *taskRuntime) trimFor(down topology.TaskID, upTo int) {
	if cur, ok := rt.ckptBound[down]; !ok || upTo > cur {
		rt.ckptBound[down] = upTo
	}
	buf := rt.outBuf[down]
	for b := range buf {
		if b <= upTo {
			delete(buf, b)
		}
	}
}

// trimAll drops all buffered output up to and including the given batch
// unconditionally. Only safe when downstream replay can never reach back
// that far (pure-active deployments without checkpoints).
func (rt *taskRuntime) trimAll(upTo int) {
	for _, buf := range rt.outBuf {
		for b := range buf {
			if b <= upTo {
				delete(buf, b)
			}
		}
	}
}

// ackAndTrim is the periodic primary->replica progress ack (§V-B). The
// replica records the ack (bounding the take-over resend) and trims its
// buffer, retaining everything a downstream checkpoint recovery could
// still request: per downstream the trim is bounded by the downstream's
// last checkpoint. Without checkpointing in the deployment, downstream
// recovery never replays, so the ack alone bounds retention.
func (rt *taskRuntime) ackAndTrim(ack int, checkpointing bool) {
	rt.ackBatch = ack
	if !checkpointing {
		rt.trimAll(ack)
		return
	}
	for d, buf := range rt.outBuf {
		bound, ok := rt.ckptBound[d]
		if !ok {
			continue
		}
		if ack < bound {
			bound = ack
		}
		for b := range buf {
			if b <= bound {
				delete(buf, b)
			}
		}
	}
}

// resendSince redelivers buffered output batches strictly after the
// given batch to the downstream tasks — the take-over resend of an
// activated replica. The cost is charged at ResendRate.
func (rt *taskRuntime) resendSince(since int) {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			if b > since {
				batches = append(batches, b)
			}
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], delivery{punct: true, tent: rt.tentOut[b]})
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

// bufferedCount returns the number of buffered output tuples.
func (rt *taskRuntime) bufferedCount() int {
	total := 0
	for _, buf := range rt.outBuf {
		for _, b := range buf {
			total += b.Count
		}
	}
	return total
}

// resetTo rewinds a live task to re-process from the given batch with
// fresh state (Storm-style source replay through live ancestors).
func (rt *taskRuntime) resetTo(batch int) {
	rt.epoch++
	rt.procScheduled = false
	rt.staged = make(map[int]map[topology.TaskID]*Batch)
	rt.puncts = make(map[int]map[topology.TaskID]bool)
	rt.taintIn = make(map[int]map[topology.TaskID]bool)
	// Batches at or above the rewind point are reprocessed from scratch;
	// older tentative batches stay closed, so their owed-input records
	// and tentative marks must survive for the correction layer.
	for b := range rt.missIn {
		if b >= batch {
			delete(rt.missIn, b)
		}
	}
	for b := range rt.tentOut {
		if b >= batch {
			delete(rt.tentOut, b)
		}
	}
	rt.nextBatch = batch
	rt.processedBatch = batch - 1
	if rt.udf != nil {
		// Restore(nil) resets the operator to its initial state.
		_ = rt.udf.Restore(nil)
	}
}

// snapshotState captures the checkpoint payload of this task.
func (rt *taskRuntime) snapshotState() []byte {
	if rt.isSource {
		return encodeInt(rt.nextBatch)
	}
	return rt.udf.Snapshot()
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

func encodeInt(v int) []byte {
	b := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

// decodeInt decodes the 8-byte checkpoint payload of a source task. A
// short payload is a corrupt or truncated checkpoint: restoring it
// silently as batch 0 would disguise data loss as a cold start, so it
// is reported as an explicit error.
func decodeInt(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("engine: source checkpoint payload truncated: %d bytes, want 8", len(b))
	}
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int(u), nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func sortIDs(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
