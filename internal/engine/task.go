package engine

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// route is the fan-out of one task along one operator edge.
type route struct {
	downOp     int
	recipients []topology.TaskID
	// recIdx maps each recipient to its compact index in the task's
	// flattened recipient list (emitBuf slot).
	recIdx    []int32
	weights   []float64
	weightSum float64
}

// delivery carries the control flags of one batch message between tasks.
type delivery struct {
	// punct marks the message as carrying the batch-over punctuation.
	punct bool
	// tent marks the payload (and punctuation) as tentative: it was
	// computed from incomplete or itself-tentative input, so every
	// downstream consumer inherits the taint (§V-B Tentative Outputs).
	tent bool
	// fab marks a master-fabricated punctuation: the upstream task is
	// down and its input data for the batch is missing entirely. Implies
	// tent. The receiver records which input is owed so the late real
	// data can trigger an amendment after recovery.
	fab bool
	// amend marks an amendment delta: a correction for a batch the
	// receiver may have already closed on tentative input.
	amend bool
}

// taskRuntime is one incarnation of a task (primary or active replica).
// A task that fails and recovers gets a fresh incarnation; stale events
// of the old incarnation are fenced by the failed flag and the epoch
// counter.
type taskRuntime struct {
	eng       *Engine
	id        topology.TaskID
	opIdx     int
	taskIndex int
	isSource  bool
	src       SourceFunc
	udf       OperatorFunc
	isReplica bool
	failed    bool
	// recovering is set while the incarnation works to reach the failed
	// predecessor's progress.
	recovering bool
	// promoted marks a primary incarnation that started life as an
	// active replica: it runs on the standby node of the cluster's
	// replica placement, not on the task's primary placement, so node
	// failures must check that host instead.
	promoted bool
	epoch    int

	upstreams []topology.TaskID
	// upIdx maps an upstream task to its compact index into upOps, the
	// window's per-batch state and tupleProgress; upOps holds the
	// upstream operator per compact index.
	upIdx  map[topology.TaskID]int32
	upOps  []int
	routes []route

	// win holds the per-open-batch input state (staged input and
	// punctuation/taint/miss flags per upstream) as a dense ring of
	// recycled records — see window.go.
	win batchWindow
	// missIn records, per closed batch and upstream, a master-fabricated
	// punctuation whose real data never arrived: the input is owed.
	// Open-batch miss flags live in the window; they are spilled here
	// when a batch closes tentative, surviving the close so that the
	// recovered upstream's late real data can be matched and reprocessed
	// as an amendment.
	missIn map[int]map[topology.TaskID]bool
	// tentOut marks the batches this incarnation closed (and emitted)
	// tentative. Amendments are only accepted for batches in tentOut,
	// and replayed buffered output re-delivers the taint.
	tentOut   map[int]bool
	nextBatch int
	// processedBatch is the progress measure: the last batch fully
	// processed (§VI's progress vector collapses to the batch index
	// under the batch discipline).
	processedBatch int
	busyUntil      sim.Time
	procScheduled  bool

	// outBuf buffers emitted batches per downstream task for replay
	// (§II-B); trimmed when the downstream checkpoints.
	outBuf map[topology.TaskID]map[int]Batch
	// ckptBound tracks, per downstream task, the last batch covered by
	// a downstream checkpoint: buffered output up to it can never be
	// requested for replay again.
	ckptBound map[topology.TaskID]int
	// ackBatch is, on a replica, the primary's output progress at the
	// last periodic ack (§V-B): the take-over resend covers only later
	// batches.
	ackBatch int
	// tupleProgress counts processed tuples per compact upstream index
	// (auxiliary fine-grained progress, used in tests). A source task
	// has a single slot counting its own generated tuples.
	tupleProgress []int64

	procCPU sim.Time
	ckptCPU sim.Time

	// emit staging during batch processing: one slot per downstream
	// recipient in route order, reused across batches (the tuple
	// backing is handed off to outBuf at finishEmit, so slots restart
	// empty each batch).
	emitBuf   []Batch
	sinkOut   []Tuple
	sinkCount int // unmaterialised tuples emitted at a sink this batch
}

func newTaskRuntime(e *Engine, id topology.TaskID, isReplica bool) *taskRuntime {
	t := e.topo
	task := t.Tasks[id]
	rt := &taskRuntime{
		eng:       e,
		id:        id,
		opIdx:     task.Op,
		taskIndex: task.Index,
		isSource:  t.IsSource(task.Op),
		isReplica: isReplica,
		upIdx:     make(map[topology.TaskID]int32),
		missIn:    make(map[int]map[topology.TaskID]bool),
		tentOut:   make(map[int]bool),
		outBuf:    make(map[topology.TaskID]map[int]Batch),
		ckptBound: make(map[topology.TaskID]int),
	}
	for _, in := range t.InputsOf(id) {
		for _, sub := range in.Subs {
			rt.upstreams = append(rt.upstreams, sub.From)
		}
	}
	sort.Slice(rt.upstreams, func(i, j int) bool { return rt.upstreams[i] < rt.upstreams[j] })
	rt.upOps = make([]int, len(rt.upstreams))
	for i, u := range rt.upstreams {
		rt.upIdx[u] = int32(i)
	}
	for _, in := range t.InputsOf(id) {
		for _, sub := range in.Subs {
			rt.upOps[rt.upIdx[sub.From]] = in.FromOp
		}
	}
	rt.win.init(len(rt.upstreams))

	// Group outgoing substreams into per-operator routes.
	byOp := map[int]*route{}
	var ops []int
	for _, sub := range t.OutputsOf(id) {
		downOp := t.Tasks[sub.To].Op
		r, ok := byOp[downOp]
		if !ok {
			r = &route{downOp: downOp}
			byOp[downOp] = r
			ops = append(ops, downOp)
		}
		r.recipients = append(r.recipients, sub.To)
		w := t.Weight(sub.To)
		r.weights = append(r.weights, w)
		r.weightSum += w
	}
	sort.Ints(ops)
	nrec := 0
	for _, op := range ops {
		r := byOp[op]
		r.recIdx = make([]int32, len(r.recipients))
		for j := range r.recipients {
			r.recIdx[j] = int32(nrec)
			nrec++
		}
		rt.routes = append(rt.routes, *r)
	}
	rt.emitBuf = make([]Batch, nrec)

	if rt.isSource {
		rt.tupleProgress = make([]int64, 1)
	} else {
		rt.tupleProgress = make([]int64, len(rt.upstreams))
	}
	rt.resetVolatile(isReplica)
	return rt
}

// resetVolatile (re)initialises the run-mutable state of the runtime:
// fresh operator/source instances from the factories, empty buffers and
// progress counters. newTaskRuntime calls it on construction and
// Engine.Reset reuses it to return a runtime to its pristine state
// without rebuilding the immutable routing.
func (rt *taskRuntime) resetVolatile(isReplica bool) {
	e := rt.eng
	rt.isReplica = isReplica
	rt.failed = false
	rt.recovering = false
	rt.promoted = false
	rt.epoch++
	rt.procScheduled = false
	rt.busyUntil = 0
	rt.nextBatch = 0
	rt.processedBatch = -1
	rt.ackBatch = -1
	rt.procCPU = 0
	rt.ckptCPU = 0
	rt.sinkOut = rt.sinkOut[:0]
	rt.sinkCount = 0
	rt.win.resetTo(0, &e.tuples)
	clear(rt.missIn)
	clear(rt.tentOut)
	for _, buf := range rt.outBuf {
		clear(buf)
	}
	clear(rt.ckptBound)
	for i := range rt.tupleProgress {
		rt.tupleProgress[i] = 0
	}
	for i := range rt.emitBuf {
		rt.emitBuf[i] = Batch{}
	}
	if rt.isSource {
		rt.src = e.sources[rt.opIdx](rt.taskIndex)
	} else {
		rt.udf = e.operators[rt.opIdx](rt.taskIndex)
	}
}

// rebase points a runtime (with no open-batch records) at a new next
// batch, keeping the window base in sync.
func (rt *taskRuntime) rebase(next int) {
	rt.nextBatch = next
	rt.processedBatch = next - 1
	rt.win.base = next
}

// receive stages an incoming batch fragment; duplicates of already
// processed batches are dropped (the dedup that skips replayed and
// replica-duplicated output, §V-B) unless they correct a batch that was
// closed on fabricated input, in which case they trigger an amendment.
func (rt *taskRuntime) receive(from topology.TaskID, batch int, content Batch, d delivery) {
	if rt.failed || rt.isSource {
		return
	}
	ui, known := rt.upIdx[from]
	if !known {
		return
	}
	if batch < rt.nextBatch {
		rt.receiveLate(from, batch, content, d)
		return
	}
	if d.amend {
		// Amendment delta for a batch still open here: it simply joins
		// the staged input and is processed with the batch. The
		// upstream's taint is deliberately NOT lifted: the amendment may
		// be partial (one per resolved missing input upstream), so
		// closing the batch firm could silently miss a later delta —
		// a conservative never-corrected tentative mark is safer.
		if content.Count > 0 {
			rt.stageInput(rt.win.rec(batch), ui, content)
		}
		rt.tryProcess()
		return
	}
	r := rt.win.peek(batch)
	seen := r != nil && r.punct.test(int(ui))
	// A recorded punctuation means this upstream already delivered the
	// batch in full: later payloads for the same (upstream, batch) are
	// replay duplicates and are dropped — unless the punctuation was
	// fabricated (the data is owed) and the real payload arrives now.
	// Absorbing that payload settles the debt immediately, whether it is
	// firm or still tentative: a repeated resend must not stage it twice.
	if content.Count > 0 && (!seen || r.miss.test(int(ui))) {
		if r == nil {
			r = rt.win.rec(batch)
		}
		rt.stageInput(r, ui, content)
		rt.settleOwed(batch, from)
	}
	if d.punct {
		if r == nil {
			r = rt.win.rec(batch)
		}
		if !seen {
			if r.punct.set(int(ui)) {
				r.punctCount++
			}
			if d.tent {
				r.taint.set(int(ui))
				if d.fab {
					r.miss.set(int(ui))
				}
			}
		}
		if !d.tent {
			// The real, firm payload arrived before the batch closed
			// (e.g. a recovered upstream resent it after the master had
			// fabricated its punctuation): the input is complete after
			// all, so the taint and the missing mark are lifted.
			r.taint.clear(int(ui))
			r.miss.clear(int(ui))
		}
	}
	rt.tryProcess()
}

// receiveLate handles messages for batches this incarnation already
// closed: amendment deltas from upstream corrections, and the late real
// data of batches that were closed on fabricated punctuations. Both are
// reprocessed as amendments, which is how a correction propagates hop
// by hop until it reaches the sinks.
func (rt *taskRuntime) receiveLate(from topology.TaskID, batch int, content Batch, d delivery) {
	if !rt.tentOut[batch] {
		return // the batch closed firm here: replayed duplicates are dropped
	}
	if d.amend {
		rt.reprocessAmendment(from, batch, content)
		return
	}
	if !d.punct || d.tent {
		return // a still-tentative replay cannot correct anything
	}
	if miss := rt.missIn[batch]; miss[from] {
		rt.settleOwed(batch, from)
		rt.reprocessAmendment(from, batch, content)
	}
}

// settleOwed clears the owed-input record of (batch, from) on the live
// incarnation AND in the stored checkpoint: once the late data has been
// absorbed or amended, a restore from a pre-correction snapshot must
// not repeat the amendment (the upstream resends the same batch on
// every recovery, and a duplicate amendment would overcount at sinks).
func (rt *taskRuntime) settleOwed(batch int, from topology.TaskID) {
	if r := rt.win.peek(batch); r != nil {
		if ui, ok := rt.upIdx[from]; ok {
			r.miss.clear(int(ui))
		}
	}
	clearIn(rt.missIn, batch, from)
	if ck := rt.eng.store[rt.id]; ck != nil {
		if owed := ck.missIn[batch]; owed != nil {
			delete(owed, from)
			if len(owed) == 0 {
				delete(ck.missIn, batch)
			}
		}
	}
}

// stageInput merges one incoming batch fragment into the staged input
// of the record, priming the tuple backing from the engine pool.
func (rt *taskRuntime) stageInput(r *batchRec, ui int32, content Batch) {
	b := &r.staged[ui]
	if b.Tuples == nil && len(content.Tuples) > 0 {
		b.Tuples = rt.eng.tuples.get()
	}
	b.Append(content)
}

func markIn(m map[int]map[topology.TaskID]bool, batch int, from topology.TaskID) {
	s := m[batch]
	if s == nil {
		s = make(map[topology.TaskID]bool)
		m[batch] = s
	}
	s[from] = true
}

func clearIn(m map[int]map[topology.TaskID]bool, batch int, from topology.TaskID) {
	if s := m[batch]; s != nil {
		delete(s, from)
		if len(s) == 0 {
			delete(m, batch)
		}
	}
}

// hasPunct reports whether the batch-over punctuation of (batch, from)
// has been recorded (used by the master's fabrication loop).
func (rt *taskRuntime) hasPunct(batch int, from topology.TaskID) bool {
	r := rt.win.peek(batch)
	if r == nil {
		return false
	}
	ui, ok := rt.upIdx[from]
	return ok && r.punct.test(int(ui))
}

// ready reports whether every upstream punctuation for the batch is in.
func (rt *taskRuntime) ready(batch int) bool {
	if len(rt.upstreams) == 0 {
		return true
	}
	r := rt.win.peek(batch)
	return r != nil && r.punctCount == len(rt.upstreams)
}

// tryProcess schedules processing of the next batch when it is ready.
// A task processes one batch at a time (§V-B): the start waits for
// busyUntil and the cost follows the Config cost model.
func (rt *taskRuntime) tryProcess() {
	if rt.failed || rt.procScheduled || rt.isSource {
		return
	}
	b := rt.nextBatch
	if !rt.ready(b) {
		return
	}
	total := 0
	if r := rt.win.peek(b); r != nil {
		for i := range r.staged {
			total += r.staged[i].Count
		}
	}
	cost := rt.eng.cfg.PerBatchOverhead + sim.Time(float64(total)/rt.eng.cfg.ProcRate)
	now := rt.eng.clock.Now()
	start := now
	if rt.busyUntil > start {
		start = rt.busyUntil
	}
	rt.busyUntil = start + cost
	rt.procScheduled = true
	pe := rt.eng.getProcEvent()
	pe.rt, pe.b, pe.cost, pe.epoch = rt, b, cost, rt.epoch
	rt.eng.clock.AtRun(start+cost, pe)
}

// procEvent is the pooled completion event of one scheduled batch. It
// recycles itself on fire; it is never cancelled (stale incarnations
// are fenced by the epoch check), so the pool discipline is safe.
type procEvent struct {
	rt    *taskRuntime
	b     int
	cost  sim.Time
	epoch int
}

// Run implements sim.Runner.
func (pe *procEvent) Run() {
	rt, b, cost, epoch := pe.rt, pe.b, pe.cost, pe.epoch
	rt.eng.putProcEvent(pe)
	if rt.failed || rt.epoch != epoch {
		return
	}
	rt.completeBatch(b, cost)
}

// completeBatch runs the UDF over the staged input of batch b, emits and
// buffers the outputs, and advances progress.
func (rt *taskRuntime) completeBatch(b int, cost sim.Time) {
	rt.procScheduled = false
	rt.procCPU += cost
	r := rt.win.peek(b)
	for ui := range rt.upstreams {
		var in Batch
		if r != nil {
			in = r.staged[ui]
		}
		rt.udf.ProcessBatch(b, rt.upOps[ui], in, rt)
		rt.tupleProgress[ui] += int64(in.Count)
	}
	rt.udf.OnBatchEnd(b, rt)
	// A batch closed with any tentative or fabricated punctuation left
	// standing produces tentative output, whatever the task's distance
	// from the failure: the taint travels with the emitted batches.
	tentative := r != nil && r.taint.any()
	if tentative {
		rt.tentOut[b] = true
	} else if len(rt.tentOut) > 0 {
		delete(rt.tentOut, b) // reprocessed firm (e.g. after a rewind)
	}
	rt.finishEmit(b, tentative)
	// The open-batch miss flags record which upstream inputs are still
	// owed; on a tentative close they are spilled to the missIn map so
	// they survive the record's release and can be matched against the
	// recovered upstream's late real data to trigger the amendment that
	// corrects this batch.
	if tentative && r != nil && r.miss.any() {
		for ui, u := range rt.upstreams {
			if r.miss.test(ui) {
				markIn(rt.missIn, b, u)
			}
		}
	}
	rt.win.release(b, &rt.eng.tuples)
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.eng.topo.IsSink(rt.opIdx) && !rt.isReplica {
		rt.eng.recordSinkBatch(rt.id, b, rt.sinkOut, rt.sinkCount, tentative)
	}
	rt.sinkOut = rt.sinkOut[:0]
	rt.sinkCount = 0
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
	rt.tryProcess()
}

// Emit implements Emitter: route one materialised tuple by key hash.
func (rt *taskRuntime) Emit(t Tuple) {
	if len(rt.routes) == 0 {
		rt.sinkOut = append(rt.sinkOut, t)
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		idx := int(hashKey(t.Key) % uint64(len(r.recipients)))
		b := &rt.emitBuf[r.recIdx[idx]]
		b.Count++
		b.Tuples = append(b.Tuples, t)
	}
}

// EmitCount implements Emitter: distribute n unmaterialised tuples over
// each route proportionally to the recipients' workload weights, with
// deterministic cumulative rounding.
func (rt *taskRuntime) EmitCount(n int) {
	if n <= 0 {
		return
	}
	if len(rt.routes) == 0 {
		rt.sinkCount += n
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		var cum, prevRounded float64
		for j := range r.recipients {
			cum += float64(n) * r.weights[j] / r.weightSum
			rounded := float64(int(cum + 0.5))
			share := int(rounded - prevRounded)
			prevRounded = rounded
			if share > 0 {
				rt.emitBuf[r.recIdx[j]].Count += share
			}
		}
	}
}

// finishEmit buffers the batch outputs and, on a primary, delivers them
// with batch-over punctuations to every downstream task. The tentative
// bit rides on the punctuation so downstream tasks inherit the taint.
// Emit-buffer slots hand their tuple backing off to the output buffer
// and restart empty, so a slot is never aliased across batches.
func (rt *taskRuntime) finishEmit(batch int, tentative bool) {
	for i := range rt.routes {
		r := &rt.routes[i]
		for j, rec := range r.recipients {
			slot := &rt.emitBuf[r.recIdx[j]]
			content := *slot
			*slot = Batch{}
			buf := rt.outBuf[rec]
			if buf == nil {
				buf = make(map[int]Batch)
				rt.outBuf[rec] = buf
			}
			buf[batch] = content
			if !rt.isReplica {
				rt.eng.deliver(rt.id, rec, batch, content, delivery{punct: true, tent: tentative})
			}
		}
	}
}

// reprocessAmendment re-runs a late input delta of an already-closed
// tentative batch through a fresh operator instance and emits the
// result as an amendment. For the engine's linear synthetic operators
// (counts, passthrough, windowed selectivity) the output of the delta
// equals the delta of the outputs, so the amendment exactly closes the
// gap the fabricated input left; for non-linear operators it is the
// standard delta-correction approximation. Reprocessing is charged at
// the normal processing rate.
func (rt *taskRuntime) reprocessAmendment(from topology.TaskID, batch int, delta Batch) {
	cost := rt.eng.cfg.PerBatchOverhead + sim.Time(float64(delta.Count)/rt.eng.cfg.ProcRate)
	now := rt.eng.clock.Now()
	start := maxTime(rt.busyUntil, now)
	rt.busyUntil = start + cost
	epoch := rt.epoch
	fromOp := rt.upOps[rt.upIdx[from]]
	rt.eng.clock.At(start+cost, func() {
		if rt.failed || rt.epoch != epoch {
			return
		}
		rt.procCPU += cost
		op := rt.eng.operators[rt.opIdx](rt.taskIndex)
		op.ProcessBatch(batch, fromOp, delta, rt)
		op.OnBatchEnd(batch, rt)
		rt.finishAmend(batch)
	})
}

// finishAmend records or forwards the amendment output of one batch.
// Amendments are delivered to every recipient — even when the delta is
// empty — so the corrected-at mark reaches the sinks of all paths; they
// are not buffered for replay (a later restore replays the original
// tentative output, a documented approximation).
func (rt *taskRuntime) finishAmend(batch int) {
	if rt.eng.topo.IsSink(rt.opIdx) && !rt.isReplica {
		rt.eng.recordSinkAmendment(rt.id, batch, rt.sinkOut, rt.sinkCount)
	}
	rt.sinkOut = rt.sinkOut[:0]
	rt.sinkCount = 0
	for i := range rt.routes {
		r := &rt.routes[i]
		for j, rec := range r.recipients {
			slot := &rt.emitBuf[r.recIdx[j]]
			content := *slot
			*slot = Batch{}
			if !rt.isReplica {
				rt.eng.deliver(rt.id, rec, batch, content, delivery{amend: true})
			}
		}
	}
}

// emitSourceBatch generates and sends one source batch (the source task
// path; no UDF).
func (rt *taskRuntime) emitSourceBatch(b int) {
	if rt.failed || !rt.isSource || b < rt.nextBatch {
		return
	}
	content := rt.src.BatchAt(b)
	if len(content.Tuples) > 0 {
		for _, t := range content.Tuples {
			rt.Emit(t)
		}
		if extra := content.Count - len(content.Tuples); extra > 0 {
			rt.EmitCount(extra)
		}
	} else {
		rt.EmitCount(content.Count)
	}
	rt.finishEmit(b, false) // source data is always firm
	rt.tupleProgress[0] += int64(content.Count)
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
}

// catchUpSource regenerates all batches from nextBatch through target
// (inclusive), used after source recovery and for source replay.
func (rt *taskRuntime) catchUpSource(target int) {
	for b := rt.nextBatch; b <= target; b++ {
		rt.emitSourceBatch(b)
	}
}

// resendAll redelivers every buffered output batch to the downstream
// tasks (buffer replay after a restore; duplicates are dropped by the
// receivers). The cost is charged at ResendRate.
func (rt *taskRuntime) resendAll() {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			batches = append(batches, b)
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], delivery{punct: true, tent: rt.tentOut[b]})
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

func (rt *taskRuntime) downstreamIDs() []topology.TaskID {
	var out []topology.TaskID
	for i := range rt.routes {
		out = append(out, rt.routes[i].recipients...)
	}
	sortIDs(out)
	return out
}

// trimFor drops buffered output for one downstream task up to and
// including the given batch (invoked when the downstream checkpoints,
// §II-B) and records the checkpoint bound.
func (rt *taskRuntime) trimFor(down topology.TaskID, upTo int) {
	if cur, ok := rt.ckptBound[down]; !ok || upTo > cur {
		rt.ckptBound[down] = upTo
	}
	buf := rt.outBuf[down]
	for b := range buf {
		if b <= upTo {
			delete(buf, b)
		}
	}
}

// trimAll drops all buffered output up to and including the given batch
// unconditionally. Only safe when downstream replay can never reach back
// that far (pure-active deployments without checkpoints).
func (rt *taskRuntime) trimAll(upTo int) {
	for _, buf := range rt.outBuf {
		for b := range buf {
			if b <= upTo {
				delete(buf, b)
			}
		}
	}
}

// ackAndTrim is the periodic primary->replica progress ack (§V-B). The
// replica records the ack (bounding the take-over resend) and trims its
// buffer, retaining everything a downstream checkpoint recovery could
// still request: per downstream the trim is bounded by the downstream's
// last checkpoint. Without checkpointing in the deployment, downstream
// recovery never replays, so the ack alone bounds retention.
func (rt *taskRuntime) ackAndTrim(ack int, checkpointing bool) {
	rt.ackBatch = ack
	if !checkpointing {
		rt.trimAll(ack)
		return
	}
	for d, buf := range rt.outBuf {
		bound, ok := rt.ckptBound[d]
		if !ok {
			continue
		}
		if ack < bound {
			bound = ack
		}
		for b := range buf {
			if b <= bound {
				delete(buf, b)
			}
		}
	}
}

// resendSince redelivers buffered output batches strictly after the
// given batch to the downstream tasks — the take-over resend of an
// activated replica. The cost is charged at ResendRate.
func (rt *taskRuntime) resendSince(since int) {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			if b > since {
				batches = append(batches, b)
			}
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], delivery{punct: true, tent: rt.tentOut[b]})
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

// bufferedCount returns the number of buffered output tuples.
func (rt *taskRuntime) bufferedCount() int {
	total := 0
	for _, buf := range rt.outBuf {
		for _, b := range buf {
			total += b.Count
		}
	}
	return total
}

// resetTo rewinds a live task to re-process from the given batch with
// fresh state (Storm-style source replay through live ancestors).
func (rt *taskRuntime) resetTo(batch int) {
	rt.epoch++
	rt.procScheduled = false
	rt.win.resetTo(batch, &rt.eng.tuples)
	// Batches at or above the rewind point are reprocessed from scratch;
	// older tentative batches stay closed, so their owed-input records
	// and tentative marks must survive for the correction layer.
	for b := range rt.missIn {
		if b >= batch {
			delete(rt.missIn, b)
		}
	}
	for b := range rt.tentOut {
		if b >= batch {
			delete(rt.tentOut, b)
		}
	}
	rt.nextBatch = batch
	rt.processedBatch = batch - 1
	if rt.udf != nil {
		// Restore(nil) resets the operator to its initial state.
		_ = rt.udf.Restore(nil)
	}
}

// snapshotState captures the checkpoint payload of this task, reusing
// buf's capacity when possible.
func (rt *taskRuntime) snapshotState(buf []byte) []byte {
	if rt.isSource {
		return appendInt(buf[:0], rt.nextBatch)
	}
	if sa, ok := rt.udf.(SnapshotAppender); ok {
		return sa.SnapshotAppend(buf[:0])
	}
	return rt.udf.Snapshot()
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

func encodeInt(v int) []byte { return appendInt(nil, v) }

// appendInt appends the 8-byte little-endian encoding of v to b.
func appendInt(b []byte, v int) []byte {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b = append(b, byte(u>>(8*i)))
	}
	return b
}

// decodeInt decodes the 8-byte checkpoint payload of a source task. A
// short payload is a corrupt or truncated checkpoint: restoring it
// silently as batch 0 would disguise data loss as a cold start, so it
// is reported as an explicit error.
func decodeInt(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("engine: source checkpoint payload truncated: %d bytes, want 8", len(b))
	}
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int(u), nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func sortIDs(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
