package engine

import (
	"hash/fnv"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// route is the fan-out of one task along one operator edge.
type route struct {
	downOp     int
	recipients []topology.TaskID
	weights    []float64
	weightSum  float64
}

// taskRuntime is one incarnation of a task (primary or active replica).
// A task that fails and recovers gets a fresh incarnation; stale events
// of the old incarnation are fenced by the failed flag and the epoch
// counter.
type taskRuntime struct {
	eng       *Engine
	id        topology.TaskID
	opIdx     int
	taskIndex int
	isSource  bool
	src       SourceFunc
	udf       OperatorFunc
	isReplica bool
	failed    bool
	// recovering is set while the incarnation works to reach the failed
	// predecessor's progress.
	recovering bool
	// promoted marks a primary incarnation that started life as an
	// active replica: it runs on the standby node of the cluster's
	// replica placement, not on the task's primary placement, so node
	// failures must check that host instead.
	promoted bool
	epoch    int

	upstreams []topology.TaskID
	upOp      map[topology.TaskID]int
	routes    []route

	staged     map[int]map[topology.TaskID]*Batch
	puncts     map[int]map[topology.TaskID]bool
	fabricated map[int]bool
	nextBatch  int
	// processedBatch is the progress measure: the last batch fully
	// processed (§VI's progress vector collapses to the batch index
	// under the batch discipline).
	processedBatch int
	busyUntil      sim.Time
	procScheduled  bool

	// outBuf buffers emitted batches per downstream task for replay
	// (§II-B); trimmed when the downstream checkpoints.
	outBuf map[topology.TaskID]map[int]Batch
	// ckptBound tracks, per downstream task, the last batch covered by
	// a downstream checkpoint: buffered output up to it can never be
	// requested for replay again.
	ckptBound map[topology.TaskID]int
	// ackBatch is, on a replica, the primary's output progress at the
	// last periodic ack (§V-B): the take-over resend covers only later
	// batches.
	ackBatch int
	// tupleProgress counts processed tuples per upstream task
	// (auxiliary fine-grained progress, used in tests).
	tupleProgress map[topology.TaskID]int64

	procCPU sim.Time
	ckptCPU sim.Time

	// emit staging during batch processing
	emitting  map[topology.TaskID]*Batch
	sinkOut   []Tuple
	sinkCount int // unmaterialised tuples emitted at a sink this batch
}

func newTaskRuntime(e *Engine, id topology.TaskID, isReplica bool) *taskRuntime {
	t := e.topo
	task := t.Tasks[id]
	rt := &taskRuntime{
		eng:            e,
		id:             id,
		opIdx:          task.Op,
		taskIndex:      task.Index,
		isSource:       t.IsSource(task.Op),
		isReplica:      isReplica,
		upOp:           make(map[topology.TaskID]int),
		staged:         make(map[int]map[topology.TaskID]*Batch),
		puncts:         make(map[int]map[topology.TaskID]bool),
		fabricated:     make(map[int]bool),
		outBuf:         make(map[topology.TaskID]map[int]Batch),
		ckptBound:      make(map[topology.TaskID]int),
		tupleProgress:  make(map[topology.TaskID]int64),
		processedBatch: -1,
		ackBatch:       -1,
	}
	for _, in := range t.InputsOf(id) {
		for _, sub := range in.Subs {
			rt.upstreams = append(rt.upstreams, sub.From)
			rt.upOp[sub.From] = in.FromOp
		}
	}
	sort.Slice(rt.upstreams, func(i, j int) bool { return rt.upstreams[i] < rt.upstreams[j] })

	// Group outgoing substreams into per-operator routes.
	byOp := map[int]*route{}
	var ops []int
	for _, sub := range t.OutputsOf(id) {
		downOp := t.Tasks[sub.To].Op
		r, ok := byOp[downOp]
		if !ok {
			r = &route{downOp: downOp}
			byOp[downOp] = r
			ops = append(ops, downOp)
		}
		r.recipients = append(r.recipients, sub.To)
		w := t.Weight(sub.To)
		r.weights = append(r.weights, w)
		r.weightSum += w
	}
	sort.Ints(ops)
	for _, op := range ops {
		rt.routes = append(rt.routes, *byOp[op])
	}

	if rt.isSource {
		rt.src = e.sources[task.Op](task.Index)
	} else {
		rt.udf = e.operators[task.Op](task.Index)
	}
	return rt
}

// receive stages an incoming batch fragment; duplicates of already
// processed batches are dropped (the dedup that skips replayed and
// replica-duplicated output, §V-B).
func (rt *taskRuntime) receive(from topology.TaskID, batch int, content Batch, punct, fab bool) {
	if rt.failed || rt.isSource {
		return
	}
	if batch < rt.nextBatch {
		return
	}
	if _, known := rt.upOp[from]; !known {
		return
	}
	if content.Count > 0 {
		m := rt.staged[batch]
		if m == nil {
			m = make(map[topology.TaskID]*Batch)
			rt.staged[batch] = m
		}
		b := m[from]
		if b == nil {
			b = &Batch{}
			m[from] = b
		}
		b.Append(content)
	}
	if punct {
		m := rt.puncts[batch]
		if m == nil {
			m = make(map[topology.TaskID]bool)
			rt.puncts[batch] = m
		}
		if !m[from] {
			m[from] = true
			if fab {
				rt.fabricated[batch] = true
			}
		}
	}
	rt.tryProcess()
}

// ready reports whether every upstream punctuation for the batch is in.
func (rt *taskRuntime) ready(batch int) bool {
	m := rt.puncts[batch]
	if len(m) < len(rt.upstreams) {
		return false
	}
	for _, u := range rt.upstreams {
		if !m[u] {
			return false
		}
	}
	return true
}

// tryProcess schedules processing of the next batch when it is ready.
// A task processes one batch at a time (§V-B): the start waits for
// busyUntil and the cost follows the Config cost model.
func (rt *taskRuntime) tryProcess() {
	if rt.failed || rt.procScheduled || rt.isSource {
		return
	}
	b := rt.nextBatch
	if !rt.ready(b) {
		return
	}
	total := 0
	for _, in := range rt.staged[b] {
		total += in.Count
	}
	cost := rt.eng.cfg.PerBatchOverhead + sim.Time(float64(total)/rt.eng.cfg.ProcRate)
	now := rt.eng.clock.Now()
	start := now
	if rt.busyUntil > start {
		start = rt.busyUntil
	}
	rt.busyUntil = start + cost
	rt.procScheduled = true
	epoch := rt.epoch
	rt.eng.clock.At(start+cost, func() {
		if rt.failed || rt.epoch != epoch {
			return
		}
		rt.completeBatch(b, cost)
	})
}

// completeBatch runs the UDF over the staged input of batch b, emits and
// buffers the outputs, and advances progress.
func (rt *taskRuntime) completeBatch(b int, cost sim.Time) {
	rt.procScheduled = false
	rt.procCPU += cost
	rt.beginEmit()
	staged := rt.staged[b]
	for _, u := range rt.upstreams {
		var in Batch
		if sb := staged[u]; sb != nil {
			in = *sb
		}
		rt.udf.ProcessBatch(b, rt.upOp[u], in, rt)
		rt.tupleProgress[u] += int64(in.Count)
	}
	rt.udf.OnBatchEnd(b, rt)
	rt.finishEmit(b)
	delete(rt.staged, b)
	delete(rt.puncts, b)
	tentative := rt.fabricated[b]
	delete(rt.fabricated, b)
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.eng.topo.IsSink(rt.opIdx) && !rt.isReplica {
		for _, t := range rt.sinkOut {
			rt.eng.sinks = append(rt.eng.sinks, SinkRecord{Task: rt.id, Batch: b, Tuple: t, Tentative: tentative})
		}
		rt.eng.sinkTuples += len(rt.sinkOut) + rt.sinkCount
	}
	rt.sinkOut = nil
	rt.sinkCount = 0
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
	rt.tryProcess()
}

// Emit implements Emitter: route one materialised tuple by key hash.
func (rt *taskRuntime) Emit(t Tuple) {
	if len(rt.routes) == 0 {
		rt.sinkOut = append(rt.sinkOut, t)
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		idx := int(hashKey(t.Key) % uint64(len(r.recipients)))
		rt.stageEmit(r.recipients[idx], Batch{Count: 1, Tuples: []Tuple{t}})
	}
}

// EmitCount implements Emitter: distribute n unmaterialised tuples over
// each route proportionally to the recipients' workload weights, with
// deterministic cumulative rounding.
func (rt *taskRuntime) EmitCount(n int) {
	if n <= 0 {
		return
	}
	if len(rt.routes) == 0 {
		rt.sinkCount += n
		return
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		var cum, prevRounded float64
		for j, rec := range r.recipients {
			cum += float64(n) * r.weights[j] / r.weightSum
			rounded := float64(int(cum + 0.5))
			share := int(rounded - prevRounded)
			prevRounded = rounded
			if share > 0 {
				rt.stageEmit(rec, Batch{Count: share})
			}
		}
	}
}

func (rt *taskRuntime) beginEmit() {
	rt.emitting = make(map[topology.TaskID]*Batch)
}

func (rt *taskRuntime) stageEmit(to topology.TaskID, content Batch) {
	b := rt.emitting[to]
	if b == nil {
		b = &Batch{}
		rt.emitting[to] = b
	}
	b.Append(content)
}

// finishEmit buffers the batch outputs and, on a primary, delivers them
// with batch-over punctuations to every downstream task.
func (rt *taskRuntime) finishEmit(batch int) {
	for i := range rt.routes {
		r := &rt.routes[i]
		for _, rec := range r.recipients {
			var content Batch
			if b := rt.emitting[rec]; b != nil {
				content = *b
			}
			buf := rt.outBuf[rec]
			if buf == nil {
				buf = make(map[int]Batch)
				rt.outBuf[rec] = buf
			}
			buf[batch] = content
			if !rt.isReplica {
				rt.eng.deliver(rt.id, rec, batch, content, true, false)
			}
		}
	}
	rt.emitting = nil
}

// emitSourceBatch generates and sends one source batch (the source task
// path; no UDF).
func (rt *taskRuntime) emitSourceBatch(b int) {
	if rt.failed || !rt.isSource || b < rt.nextBatch {
		return
	}
	content := rt.src.BatchAt(b)
	rt.beginEmit()
	if len(content.Tuples) > 0 {
		for _, t := range content.Tuples {
			rt.Emit(t)
		}
		if extra := content.Count - len(content.Tuples); extra > 0 {
			rt.EmitCount(extra)
		}
	} else {
		rt.EmitCount(content.Count)
	}
	rt.finishEmit(b)
	rt.tupleProgress[rt.id] += int64(content.Count)
	rt.nextBatch = b + 1
	rt.processedBatch = b
	if rt.recovering {
		rt.eng.master.checkRecovered(rt)
	}
}

// catchUpSource regenerates all batches from nextBatch through target
// (inclusive), used after source recovery and for source replay.
func (rt *taskRuntime) catchUpSource(target int) {
	for b := rt.nextBatch; b <= target; b++ {
		rt.emitSourceBatch(b)
	}
}

// resendAll redelivers every buffered output batch to the downstream
// tasks (buffer replay after a restore; duplicates are dropped by the
// receivers). The cost is charged at ResendRate.
func (rt *taskRuntime) resendAll() {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			batches = append(batches, b)
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], true, false)
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

func (rt *taskRuntime) downstreamIDs() []topology.TaskID {
	var out []topology.TaskID
	for i := range rt.routes {
		out = append(out, rt.routes[i].recipients...)
	}
	sortIDs(out)
	return out
}

// trimFor drops buffered output for one downstream task up to and
// including the given batch (invoked when the downstream checkpoints,
// §II-B) and records the checkpoint bound.
func (rt *taskRuntime) trimFor(down topology.TaskID, upTo int) {
	if cur, ok := rt.ckptBound[down]; !ok || upTo > cur {
		rt.ckptBound[down] = upTo
	}
	buf := rt.outBuf[down]
	for b := range buf {
		if b <= upTo {
			delete(buf, b)
		}
	}
}

// trimAll drops all buffered output up to and including the given batch
// unconditionally. Only safe when downstream replay can never reach back
// that far (pure-active deployments without checkpoints).
func (rt *taskRuntime) trimAll(upTo int) {
	for _, buf := range rt.outBuf {
		for b := range buf {
			if b <= upTo {
				delete(buf, b)
			}
		}
	}
}

// ackAndTrim is the periodic primary->replica progress ack (§V-B). The
// replica records the ack (bounding the take-over resend) and trims its
// buffer, retaining everything a downstream checkpoint recovery could
// still request: per downstream the trim is bounded by the downstream's
// last checkpoint. Without checkpointing in the deployment, downstream
// recovery never replays, so the ack alone bounds retention.
func (rt *taskRuntime) ackAndTrim(ack int, checkpointing bool) {
	rt.ackBatch = ack
	if !checkpointing {
		rt.trimAll(ack)
		return
	}
	for d, buf := range rt.outBuf {
		bound, ok := rt.ckptBound[d]
		if !ok {
			continue
		}
		if ack < bound {
			bound = ack
		}
		for b := range buf {
			if b <= bound {
				delete(buf, b)
			}
		}
	}
}

// resendSince redelivers buffered output batches strictly after the
// given batch to the downstream tasks — the take-over resend of an
// activated replica. The cost is charged at ResendRate.
func (rt *taskRuntime) resendSince(since int) {
	if rt.failed {
		return
	}
	total := 0
	for _, rec := range rt.downstreamIDs() {
		buf := rt.outBuf[rec]
		batches := make([]int, 0, len(buf))
		for b := range buf {
			if b > since {
				batches = append(batches, b)
			}
		}
		sort.Ints(batches)
		for _, b := range batches {
			rt.eng.deliver(rt.id, rec, b, buf[b], true, false)
			total += buf[b].Count
		}
	}
	if total > 0 {
		rt.busyUntil = maxTime(rt.busyUntil, rt.eng.clock.Now()) + sim.Time(float64(total)/rt.eng.cfg.ResendRate)
	}
}

// bufferedCount returns the number of buffered output tuples.
func (rt *taskRuntime) bufferedCount() int {
	total := 0
	for _, buf := range rt.outBuf {
		for _, b := range buf {
			total += b.Count
		}
	}
	return total
}

// resetTo rewinds a live task to re-process from the given batch with
// fresh state (Storm-style source replay through live ancestors).
func (rt *taskRuntime) resetTo(batch int) {
	rt.epoch++
	rt.procScheduled = false
	rt.staged = make(map[int]map[topology.TaskID]*Batch)
	rt.puncts = make(map[int]map[topology.TaskID]bool)
	rt.fabricated = make(map[int]bool)
	rt.nextBatch = batch
	rt.processedBatch = batch - 1
	if rt.udf != nil {
		// Restore(nil) resets the operator to its initial state.
		_ = rt.udf.Restore(nil)
	}
}

// snapshotState captures the checkpoint payload of this task.
func (rt *taskRuntime) snapshotState() []byte {
	if rt.isSource {
		return encodeInt(rt.nextBatch)
	}
	return rt.udf.Snapshot()
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

func encodeInt(v int) []byte {
	b := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b
}

func decodeInt(b []byte) int {
	if len(b) < 8 {
		return 0
	}
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int(u)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func sortIDs(ids []topology.TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
