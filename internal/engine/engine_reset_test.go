package engine

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// resetFingerprint summarises everything an engine run reports.
type resetFingerprint struct {
	sinkTuples int
	records    int
	recovered  int
	acc        AccuracyStats
	progress   []int
}

func fingerprint(e *Engine) resetFingerprint {
	fp := resetFingerprint{
		sinkTuples: e.SinkTupleCount(),
		records:    len(e.SinkRecords()),
		acc:        e.AccuracyStats(),
	}
	for _, st := range e.RecoveryStats() {
		if st.Recovered {
			fp.recovered++
		}
	}
	for id := range e.tasks {
		fp.progress = append(fp.progress, e.TaskProgress(topology.TaskID(id)))
	}
	return fp
}

func eqFingerprint(a, b resetFingerprint) bool {
	if a.sinkTuples != b.sinkTuples || a.records != b.records || a.recovered != b.recovered {
		return false
	}
	if a.acc.FirmTuples != b.acc.FirmTuples || a.acc.TentativeTuples != b.acc.TentativeTuples ||
		a.acc.CorrectedBatches != b.acc.CorrectedBatches || a.acc.AmendedTuples != b.acc.AmendedTuples {
		return false
	}
	for i := range a.progress {
		if a.progress[i] != b.progress[i] {
			return false
		}
	}
	return true
}

// TestEngineResetBitIdentical runs a failure scenario, resets the
// engine, and checks both a failure-free rerun and a repeat of the same
// scenario reproduce exactly what fresh engines produce: Reset leaks no
// state from the previous run in either direction.
func TestEngineResetBitIdentical(t *testing.T) {
	setup := func() Setup {
		topo := chainTopo(1000)
		c := cluster.New(5, 3)
		if _, err := c.BuildDomains(cluster.Layout{Zones: 1, RacksPerZone: 2, SpreadStandby: true}); err != nil {
			t.Fatal(err)
		}
		if err := c.PlaceRoundRobin(topo); err != nil {
			t.Fatal(err)
		}
		return Setup{
			Topology:   topo,
			Cluster:    c,
			Config:     Config{CheckpointInterval: 10, TentativeOutputs: true},
			Sources:    map[int]SourceFactory{0: NewCountSourceFactory(1000)},
			Operators:  map[int]OperatorFactory{1: NewWindowCountFactory(5, 1), 2: NewWindowCountFactory(5, 1)},
			Strategies: allStrategies(5, StrategyActive),
		}
	}
	scenario := func(e *Engine) {
		e.ScheduleNodeFailures([]cluster.NodeID{0, 1}, 20.25)
		e.Run(90)
	}

	// Fresh engine, failure run.
	fresh1, err := New(setup())
	if err != nil {
		t.Fatal(err)
	}
	scenario(fresh1)
	failFP := fingerprint(fresh1)
	if failFP.recovered == 0 {
		t.Fatal("scenario recovered nothing; test misconfigured")
	}

	// Fresh engine, failure-free run.
	fresh2, err := New(setup())
	if err != nil {
		t.Fatal(err)
	}
	fresh2.Run(90)
	cleanFP := fingerprint(fresh2)
	if eqFingerprint(failFP, cleanFP) {
		t.Fatal("failure scenario indistinguishable from failure-free run; test misconfigured")
	}

	// Reset after a failure run must reproduce the failure-free run.
	fresh1.Reset()
	fresh1.Run(90)
	if got := fingerprint(fresh1); !eqFingerprint(got, cleanFP) {
		t.Errorf("reset-after-failure run diverged: %+v vs fresh %+v", got, cleanFP)
	}

	// Reset and repeat the same scenario: same outcome as the first run.
	fresh1.Reset()
	scenario(fresh1)
	if got := fingerprint(fresh1); !eqFingerprint(got, failFP) {
		t.Errorf("reset scenario rerun diverged: %+v vs fresh %+v", got, failFP)
	}

	// A reset engine must also repeat corrections/accuracy bit-for-bit.
	if d1, d2 := fingerprint(fresh1).acc.CorrectionDelays, failFP.acc.CorrectionDelays; len(d1) == len(d2) {
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Errorf("correction delay %d diverged: %v vs %v", i, d1[i], d2[i])
			}
		}
	} else {
		t.Errorf("correction delays diverged: %v vs %v", d1, d2)
	}
}
