package engine

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// RecoveryStat records the lifecycle of one task failure. Latency is
// measured from detection to progress catch-up, exactly as in §VI:
// "the time interval between the moment that the failure is detected
// and the instant when the failed task is recovered to its processing
// progress before failure".
type RecoveryStat struct {
	Task        topology.TaskID
	Strategy    Strategy
	FailedAt    sim.Time
	DetectedAt  sim.Time
	RecoveredAt sim.Time
	Recovered   bool
}

// Latency returns the recovery latency (detection to catch-up).
func (r RecoveryStat) Latency() sim.Time {
	if !r.Recovered {
		return -1
	}
	return r.RecoveredAt - r.DetectedAt
}

// master models the Storm master node: failure detection via heartbeats,
// recovery orchestration per the PPA replication plan, and fabrication
// of batch-over punctuations for tentative outputs (§V-A, §V-B).
type master struct {
	eng *Engine
	// failures tracked per task
	pending map[topology.TaskID]*failure
	done    []RecoveryStat
}

type failure struct {
	stat RecoveryStat
	// preFailProgress is the progress vector captured at failure time
	// (the batch index, which under the batch discipline determines the
	// per-input-stream tuple sequence numbers).
	preFailProgress int
	detected        bool
}

func newMaster(e *Engine) *master {
	return &master{eng: e, pending: make(map[topology.TaskID]*failure)}
}

// reset clears all failure bookkeeping (Engine.Reset).
func (m *master) reset() {
	clear(m.pending)
	m.done = m.done[:0]
}

// onFailure captures the failed task's progress; detection happens at
// the next heartbeat.
func (m *master) onFailure(id topology.TaskID, rt *taskRuntime) {
	m.pending[id] = &failure{
		stat: RecoveryStat{
			Task:     id,
			Strategy: m.eng.strategy[id],
			FailedAt: m.eng.clock.Now(),
		},
		preFailProgress: rt.processedBatch,
	}
}

// heartbeat detects failed tasks and starts their recovery.
func (m *master) heartbeat() {
	now := m.eng.clock.Now()
	for _, id := range m.pendingIDs() {
		f := m.pending[id]
		if f.detected {
			continue
		}
		f.detected = true
		f.stat.DetectedAt = now
		m.recover(id, f)
	}
}

func (m *master) pendingIDs() []topology.TaskID {
	ids := make([]topology.TaskID, 0, len(m.pending))
	for id := range m.pending {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// recover dispatches on the task's fault-tolerance strategy.
func (m *master) recover(id topology.TaskID, f *failure) {
	switch m.eng.strategy[id] {
	case StrategyActive:
		m.recoverActive(id, f)
	case StrategySourceReplay:
		m.recoverSourceReplay(id, f)
	case StrategyNone:
		// Unrecoverable within the experiment horizon: fabrication
		// continues, the task stays down.
	default:
		m.recoverCheckpoint(id, f)
	}
}

// recoverActive promotes the task's replica: outputs on, buffered output
// resent to the downstream tasks (which deduplicate by batch), §V-B.
func (m *master) recoverActive(id topology.TaskID, f *failure) {
	e := m.eng
	rep := e.replicas[id]
	if rep == nil || rep.failed {
		// No usable replica (not planned, or standby failed): fall back
		// to checkpoint recovery.
		m.recoverCheckpoint(id, f)
		return
	}
	e.clock.After(e.cfg.ReplicaActivateCost, func() {
		rep.isReplica = false
		rep.recovering = true
		rep.promoted = true
		e.tasks[id] = rep
		e.replicas[id] = nil
		if rep.isSource && e.cfg.CheckpointInterval > 0 {
			// A source replica is driven by no one: it holds no generated
			// batches. Rewind to the oldest batch any downstream could
			// still request on recovery — its last checkpoint (ckptBound,
			// kept fresh by checkpoint trims), or batch 0 for a downstream
			// that never checkpointed and would cold-restart — and
			// regenerate. Without checkpointing there is nothing
			// downstream could replay, so no regeneration is needed.
			// Regeneration costs no virtual time: the promoted source is
			// caught up immediately.
			from := 0
			for i, d := range rep.downstreamIDs() {
				b, ok := rep.ckptBound[d]
				if !ok {
					from = 0
					break
				}
				if i == 0 || b+1 < from {
					from = b + 1
				}
			}
			rep.rebase(from)
			rep.catchUpSource(e.currentBatch)
		}
		// Resend the output the failed primary may not have delivered:
		// everything since the last progress ack. Older buffered batches
		// stay available for downstream checkpoint replay.
		rep.resendSince(rep.ackBatch)
		// The replica may already be caught up; check both now and when
		// its resend work drains.
		m.checkRecovered(rep)
		if !m.isDone(id) {
			e.clock.At(maxTime(rep.busyUntil, e.clock.Now()), func() { m.checkRecovered(rep) })
		}
	})
}

// recoverCheckpoint restores the task from its latest checkpoint on a
// standby node and replays the upstream output buffers (§V-B Passive
// Replication).
func (m *master) recoverCheckpoint(id topology.TaskID, f *failure) {
	e := m.eng
	ck := e.store[id]
	var restoreCost sim.Time
	if ck != nil {
		restoreCost = e.cfg.RestoreFixed + sim.Time(float64(ck.bytes)/e.cfg.RestoreByteRate)
	} else {
		// No checkpoint yet: cold restart reprocesses from batch 0.
		restoreCost = e.cfg.RestoreFixed
	}
	e.clock.After(restoreCost, func() { m.installCheckpoint(id, ck) })
}

// installCheckpoint finishes a checkpoint recovery once the paper's
// synchronisation condition holds (§V-B): "if a task and its upstream
// neighbouring task are failed simultaneously and its checkpoint is made
// later than its upstream peers', the recovery of the downstream task
// can only be started after its upstream peer has caught up with the
// processing progress". Under a correlated failure this serialises the
// recovery waves level by level — the main reason checkpoint recovery
// of a correlated failure is so much slower than of a single failure.
func (m *master) installCheckpoint(id topology.TaskID, ck *checkpointData) {
	e := m.eng
	for _, u := range e.topo.UpstreamTasks(id) {
		urt := e.tasks[u]
		if urt == nil || urt.failed || urt.recovering {
			// An upstream peer is still failed or catching up: poll
			// until it has recovered (the §V-B synchronisation). The
			// poll period scales with the failure-detection cadence.
			e.clock.After(e.cfg.RecoveryPollInterval, func() { m.installCheckpoint(id, ck) })
			return
		}
	}

	rt := newTaskRuntime(e, id, false)
	rt.recovering = true
	if ck != nil {
		if rt.isSource {
			nb, err := decodeInt(ck.state)
			if err != nil {
				panic("engine: checkpoint restore failed: " + err.Error())
			}
			rt.nextBatch = nb
		} else if err := rt.udf.Restore(ck.state); err != nil {
			panic("engine: checkpoint restore failed: " + err.Error())
		}
		if !rt.isSource {
			rt.nextBatch = ck.batch + 1
		}
		rt.rebase(rt.nextBatch)
		for d, buf := range ck.outBuf {
			mm := make(map[int]Batch, len(buf))
			for b, content := range buf {
				mm[b] = content
			}
			rt.outBuf[d] = mm
		}
		for b, t := range ck.tentOut {
			rt.tentOut[b] = t
		}
		for b, owed := range ck.missIn {
			for u, v := range owed {
				if v {
					markIn(rt.missIn, b, u)
				}
			}
		}
	}
	e.tasks[id] = rt
	rt.busyUntil = e.clock.Now()
	// Replay: the restored task resends its (restored) buffered output
	// downstream, and every live upstream resends its buffer to it.
	// Receivers deduplicate already-processed batches.
	rt.resendAll()
	for _, u := range rt.upstreams {
		if up := e.tasks[u]; up != nil && !up.failed {
			up.resendAll()
		}
	}
	if rt.isSource {
		rt.catchUpSource(e.currentBatch)
		m.checkRecovered(rt)
	}
	// The task's original checkpoint timer chain keeps running; it
	// resolves the current incarnation at fire time.
}

// recoverSourceReplay implements Storm's technique: restart the failed
// task with empty state and reprocess the source data of the unfinished
// windows through the whole upstream topology (§VI-A). Live ancestor
// tasks rewind and rebuild their states by reprocessing; their duplicate
// outputs toward non-rewound tasks are dropped by batch deduplication.
func (m *master) recoverSourceReplay(id topology.TaskID, f *failure) {
	e := m.eng
	replayFrom := e.currentBatch - e.cfg.WindowBatches
	if replayFrom < 0 {
		replayFrom = 0
	}
	e.clock.After(e.cfg.RestartCost, func() {
		anc := m.ancestors(id)
		// Rewind live ancestors (deepest first is unnecessary: batch
		// staging regulates order).
		for _, a := range anc {
			art := e.tasks[a]
			if art == nil || art.failed || art.id == id {
				continue
			}
			if art.isSource {
				art.resetTo(min(replayFrom, art.nextBatch))
			} else {
				art.resetTo(replayFrom)
			}
		}
		// Fresh incarnation of the failed task.
		rt := newTaskRuntime(e, id, false)
		rt.recovering = true
		rt.rebase(replayFrom)
		if rt.isSource {
			rt.rebase(0)
		}
		e.tasks[id] = rt
		// Sources regenerate the replayed batches (and the failed task
		// itself, if it is a source, regenerates everything it owes).
		for _, a := range anc {
			art := e.tasks[a]
			if art != nil && !art.failed && art.isSource {
				art.catchUpSource(e.currentBatch)
			}
		}
		if rt.isSource {
			rt.catchUpSource(e.currentBatch)
			m.checkRecovered(rt)
		}
	})
}

// ancestors returns the failed task plus every task with a path to it,
// sorted ascending.
func (m *master) ancestors(id topology.TaskID) []topology.TaskID {
	t := m.eng.topo
	seen := map[topology.TaskID]bool{id: true}
	stack := []topology.TaskID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range t.UpstreamTasks(cur) {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	out := make([]topology.TaskID, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sortIDs(out)
	return out
}

// checkRecovered marks the task recovered once its current incarnation
// has reached the pre-failure progress.
func (m *master) checkRecovered(rt *taskRuntime) {
	f, ok := m.pending[rt.id]
	if !ok || !f.detected {
		return
	}
	if rt.processedBatch < f.preFailProgress {
		return
	}
	now := maxTime(m.eng.clock.Now(), rt.busyUntil)
	f.stat.RecoveredAt = now
	f.stat.Recovered = true
	rt.recovering = false
	m.done = append(m.done, f.stat)
	delete(m.pending, rt.id)
}

// isDone reports whether the task's failure has been fully recovered.
func (m *master) isDone(id topology.TaskID) bool {
	_, pending := m.pending[id]
	return !pending
}

// fabricate delivers batch-over punctuations on behalf of failed or
// still-recovering tasks so their downstream tasks keep producing
// tentative outputs (§V-B Tentative Outputs). Runs on every batch tick.
// Replicas of the downstream tasks receive the fabrication too, keeping
// the identical-input discipline of §V-B: a replica promoted during the
// tentative window has processed the same (fabricated) batches as the
// primary it replaces.
func (m *master) fabricate() {
	e := m.eng
	if !e.cfg.TentativeOutputs {
		return
	}
	fab := delivery{punct: true, tent: true, fab: true}
	for _, id := range m.pendingIDs() {
		f := m.pending[id]
		if !f.detected {
			continue
		}
		downs := e.topo.DownstreamTasks(id)
		sortIDs(downs)
		for _, d := range downs {
			for _, drt := range []*taskRuntime{e.tasks[d], e.replicas[d]} {
				if drt == nil || drt.failed {
					continue
				}
				for b := drt.nextBatch; b <= e.currentBatch; b++ {
					if drt.hasPunct(b, id) {
						continue
					}
					drt.receive(id, b, Batch{}, fab)
				}
			}
		}
	}
}

// stats returns finished and pending recovery stats sorted by task.
func (m *master) stats() []RecoveryStat {
	out := append([]RecoveryStat(nil), m.done...)
	for _, f := range m.pending {
		out = append(out, f.stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}
