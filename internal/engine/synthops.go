package engine

import (
	"encoding/binary"
	"fmt"
)

// This file provides the reusable synthetic operators and sources used
// by the recovery-efficiency experiments (§VI-A) and the engine tests.

// CountSource emits a fixed number of unmaterialised tuples per batch —
// the constant-rate synthetic source of the Fig. 6 topology.
type CountSource struct {
	PerBatch int
}

// BatchAt implements SourceFunc.
func (s CountSource) BatchAt(int) Batch { return Batch{Count: s.PerBatch} }

// NewCountSourceFactory returns a SourceFactory emitting perBatch
// unmaterialised tuples per batch on every task.
func NewCountSourceFactory(perBatch int) SourceFactory {
	return func(int) SourceFunc { return CountSource{PerBatch: perBatch} }
}

// WindowCountOp is the synthetic operator of §VI-A: it maintains a
// sliding window over its input (state size equal to the input volume of
// the window interval times the per-tuple footprint) and forwards
// selectivity * input per batch. Tuples are counted, not materialised.
type WindowCountOp struct {
	WindowBatches int
	Selectivity   float64
	TupleBytes    int // per-tuple state footprint (default 16)

	window []int // per-batch input counts, ring of WindowBatches entries
	seen   int   // batches processed
	acc    int   // current batch input count
}

// NewWindowCountFactory builds the factory for a synthetic windowed
// operator with the given window length (in batches) and selectivity.
func NewWindowCountFactory(windowBatches int, selectivity float64) OperatorFactory {
	return func(int) OperatorFunc {
		return &WindowCountOp{WindowBatches: windowBatches, Selectivity: selectivity}
	}
}

// ProcessBatch implements OperatorFunc.
func (o *WindowCountOp) ProcessBatch(batch, fromOp int, in Batch, emit Emitter) {
	o.acc += in.Count
}

// OnBatchEnd implements OperatorFunc: slide the window and emit the
// selectivity share of the batch input.
func (o *WindowCountOp) OnBatchEnd(batch int, emit Emitter) {
	if o.WindowBatches > 0 {
		if len(o.window) < o.WindowBatches {
			o.window = append(o.window, o.acc)
		} else {
			o.window[o.seen%o.WindowBatches] = o.acc
		}
	}
	o.seen++
	out := int(float64(o.acc) * o.Selectivity)
	o.acc = 0
	if out > 0 {
		emit.EmitCount(out)
	}
}

// Snapshot implements OperatorFunc. The snapshot's size equals the
// window content's footprint (count * TupleBytes), modelling the
// "state composed by the input data within the current window" of
// §VI-A, so checkpoint save/restore costs scale with rate x window.
func (o *WindowCountOp) Snapshot() []byte { return o.SnapshotAppend(nil) }

// SnapshotAppend implements SnapshotAppender: the same payload as
// Snapshot, written into buf's reusable capacity. The payload body
// (the modelled window tuples) is zero-filled, so only the header is
// actually written; its size is what the checkpoint cost model charges.
func (o *WindowCountOp) SnapshotAppend(buf []byte) []byte {
	tb := o.TupleBytes
	if tb == 0 {
		tb = 16
	}
	tuples := 0
	for _, c := range o.window {
		tuples += c
	}
	head := 16 + 8*len(o.window)
	size := head + tuples*tb
	if cap(buf) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
		// The payload body is always zero — only header bytes are ever
		// written — and every previous writer of this buffer was an
		// instance of the same operator (checkpoint buffers are
		// per-task), so clearing the maximal header extent suffices:
		// re-zeroing the whole modelled body would dominate checkpoint
		// CPU for large windows.
		dirty := 16 + 8*o.WindowBatches
		if len(o.window) > o.WindowBatches {
			dirty = 16 + 8*len(o.window)
		}
		if dirty > size {
			dirty = size
		}
		clear(buf[:dirty])
	}
	binary.LittleEndian.PutUint64(buf[0:], uint64(o.seen))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(o.window)))
	for i, c := range o.window {
		binary.LittleEndian.PutUint64(buf[16+8*i:], uint64(c))
	}
	return buf
}

// Restore implements OperatorFunc; Restore(nil) resets to initial state.
func (o *WindowCountOp) Restore(data []byte) error {
	o.window = nil
	o.seen = 0
	o.acc = 0
	if data == nil {
		return nil
	}
	if len(data) < 16 {
		return fmt.Errorf("engine: window snapshot too short (%d bytes)", len(data))
	}
	o.seen = int(binary.LittleEndian.Uint64(data[0:]))
	n := int(binary.LittleEndian.Uint64(data[8:]))
	if len(data) < 16+8*n {
		return fmt.Errorf("engine: window snapshot truncated")
	}
	for i := 0; i < n; i++ {
		o.window = append(o.window, int(binary.LittleEndian.Uint64(data[16+8*i:])))
	}
	return nil
}

// PassthroughOp forwards every input tuple unchanged; counted input is
// forwarded as counts. Used in tests and as a trivial example operator.
type PassthroughOp struct{}

// NewPassthroughFactory builds the factory for PassthroughOp.
func NewPassthroughFactory() OperatorFactory {
	return func(int) OperatorFunc { return &PassthroughOp{} }
}

// ProcessBatch implements OperatorFunc.
func (o *PassthroughOp) ProcessBatch(batch, fromOp int, in Batch, emit Emitter) {
	for _, t := range in.Tuples {
		emit.Emit(t)
	}
	if extra := in.Count - len(in.Tuples); extra > 0 {
		emit.EmitCount(extra)
	}
}

// OnBatchEnd implements OperatorFunc.
func (o *PassthroughOp) OnBatchEnd(int, Emitter) {}

// Snapshot implements OperatorFunc (stateless).
func (o *PassthroughOp) Snapshot() []byte { return nil }

// Restore implements OperatorFunc.
func (o *PassthroughOp) Restore([]byte) error { return nil }

// FuncSource adapts a function to SourceFunc.
type FuncSource func(b int) Batch

// BatchAt implements SourceFunc.
func (f FuncSource) BatchAt(b int) Batch { return f(b) }
