package engine

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestReplicaSurvivesDomainBurst is the engine-level regression test
// for the placement bug: under the default anti-affinity placement a
// whole-rack burst that kills a task's primary must leave its replica
// alive (it lives outside the rack), so recovery is a fast replica
// takeover; under the legacy round-robin placement the same burst kills
// the co-located replica too and recovery falls back to the slower
// checkpoint replay.
func TestReplicaSurvivesDomainBurst(t *testing.T) {
	run := func(placement cluster.PlacementPolicy) (recovered bool, latency sim.Time, replicaRack, primaryRack cluster.DomainID) {
		topo := chainTopo(1000)
		clus := cluster.New(5, 5)
		_, err := clus.BuildDomains(cluster.Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := clus.PlaceRoundRobin(topo); err != nil {
			t.Fatal(err)
		}
		strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
		strategies[4] = StrategyActive // the B task
		e, err := New(Setup{
			Topology: topo,
			Cluster:  clus,
			Config:   Config{CheckpointInterval: 5},
			Sources:  map[int]SourceFactory{0: NewCountSourceFactory(1000)},
			Operators: map[int]OperatorFactory{
				1: NewWindowCountFactory(10, 0.5),
				2: NewWindowCountFactory(10, 0.5),
			},
			Strategies: strategies,
			Placement:  placement,
		})
		if err != nil {
			t.Fatal(err)
		}
		primaryRack = clus.RackOf(clus.NodeOf(4))
		standby, ok := clus.ReplicaNodeOf(4)
		if !ok {
			t.Fatal("no replica placed for task 4")
		}
		replicaRack = clus.RackOf(standby)
		e.ScheduleDomainFailure(primaryRack, 15.2)
		e.Run(120)
		for _, st := range e.RecoveryStats() {
			if st.Task == 4 {
				return st.Recovered, st.RecoveredAt - st.DetectedAt, replicaRack, primaryRack
			}
		}
		t.Fatal("no recovery stat for task 4")
		return
	}

	recAA, latAA, repRack, primRack := run(cluster.PlacementAntiAffinity)
	if repRack == primRack {
		t.Fatalf("anti-affinity placed the replica in the primary's rack %d", primRack)
	}
	if !recAA {
		t.Fatal("task 4 not recovered under anti-affinity placement")
	}
	recRR, latRR, repRackRR, primRackRR := run(cluster.PlacementRoundRobin)
	if repRackRR != primRackRR {
		t.Skipf("layout no longer co-locates under round-robin (replica rack %d, primary rack %d)", repRackRR, primRackRR)
	}
	if !recRR {
		t.Fatal("task 4 not recovered under round-robin placement")
	}
	if latAA >= latRR {
		t.Errorf("replica takeover (%v) not faster than checkpoint fallback (%v)", latAA, latRR)
	}
}

// TestNewSurfacesAntiAffinityError: when the standby pool cannot host a
// replica outside the primary's rack, engine construction must fail
// with the placement error instead of silently co-locating.
func TestNewSurfacesAntiAffinityError(t *testing.T) {
	topo := chainTopo(1000)
	clus := cluster.New(5, 1)
	zone, err := clus.AddDomain(cluster.RootDomain, "zone", "z")
	if err != nil {
		t.Fatal(err)
	}
	rack, err := clus.AddDomain(zone, "rack", "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range clus.Nodes() {
		if err := clus.AttachNode(n.ID, rack); err != nil {
			t.Fatal(err)
		}
	}
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
	strategies[4] = StrategyActive
	_, err = New(Setup{
		Topology: topo,
		Cluster:  clus,
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(1000)},
		Operators: map[int]OperatorFactory{
			1: NewWindowCountFactory(10, 0.5),
			2: NewWindowCountFactory(10, 0.5),
		},
		Strategies: strategies,
	})
	if !errors.Is(err, cluster.ErrAntiAffinity) {
		t.Fatalf("engine.New = %v, want the anti-affinity placement error", err)
	}
}
