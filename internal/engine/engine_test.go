package engine

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chainTopo builds src(2) -> A(2) -> B(1), merge partitioning.
func chainTopo(rate float64) *topology.Topology {
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, rate)
	a := b.AddOperator("A", 2, topology.Independent, 0.5)
	bb := b.AddOperator("B", 1, topology.Independent, 0.5)
	b.Connect(src, a, topology.OneToOne)
	b.Connect(a, bb, topology.Merge)
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// newChainEngine builds an engine over chainTopo with synthetic window
// operators.
func newChainEngine(t *testing.T, cfg Config, strategies []Strategy) *Engine {
	t.Helper()
	topo := chainTopo(1000)
	clus := cluster.New(5, 5)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	windowBatches := cfg.WindowBatches
	if windowBatches == 0 {
		windowBatches = 10
	}
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   cfg,
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(1000)},
		Operators: map[int]OperatorFactory{
			1: NewWindowCountFactory(windowBatches, 0.5),
			2: NewWindowCountFactory(windowBatches, 0.5),
		},
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func allStrategies(n int, s Strategy) []Strategy {
	out := make([]Strategy, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestNoFailureProgress(t *testing.T) {
	e := newChainEngine(t, Config{}, nil)
	e.Run(20)
	// Sources emitted batches 0..18 (batch b at time b+1), downstream a
	// little behind due to network and processing delay.
	sink := e.topo.SinkTasks()[0]
	if got := e.TaskProgress(sink); got < 15 {
		t.Errorf("sink progress = %d, want >= 15 after 20s", got)
	}
	// Flow: each A task gets 1000 tuples per batch, emits 500; the B
	// task gets 2x500 per batch.
	srt := e.tasks[sink]
	var total int64
	for _, c := range srt.tupleProgress {
		total += c
	}
	wantPerBatch := int64(1000)
	processed := int64(srt.processedBatch + 1)
	if total != wantPerBatch*processed {
		t.Errorf("sink consumed %d tuples over %d batches, want %d", total, processed, wantPerBatch*processed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]CPUStat, int) {
		e := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
		e.ScheduleTaskFailures([]topology.TaskID{2}, 12.3)
		e.Run(60)
		return e.CPUStats(), e.TaskProgress(e.topo.SinkTasks()[0])
	}
	c1, p1 := run()
	c2, p2 := run()
	if p1 != p2 {
		t.Fatalf("sink progress differs: %d vs %d", p1, p2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("CPU stats differ at task %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}

func TestCheckpointRecoverySingleFailure(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	failed := topology.TaskID(2) // first A task
	e.ScheduleTaskFailures([]topology.TaskID{failed}, 20.2)
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v, want 1 entry", stats)
	}
	st := stats[0]
	if !st.Recovered {
		t.Fatalf("task not recovered: %+v", st)
	}
	if st.DetectedAt < st.FailedAt || st.DetectedAt > st.FailedAt+5 {
		t.Errorf("detection at %v for failure at %v (heartbeat 5s)", st.DetectedAt, st.FailedAt)
	}
	if l := st.Latency(); l <= 0 || l > 60 {
		t.Errorf("latency = %v, want (0, 60)", l)
	}
	// The task must be caught up with the live topology afterwards.
	if got, cur := e.TaskProgress(failed), e.currentBatch; cur-got > 3 {
		t.Errorf("recovered task progress %d lags current batch %d", got, cur)
	}
	// And the sink must have kept its total input exact (no loss, no
	// duplication) despite the failure.
	sink := e.topo.SinkTasks()[0]
	srt := e.tasks[sink]
	var total int64
	for _, c := range srt.tupleProgress {
		total += c
	}
	if want := int64(1000) * int64(srt.processedBatch+1); total != want {
		t.Errorf("sink consumed %d tuples, want %d (exactness)", total, want)
	}
}

func TestCheckpointIntervalShape(t *testing.T) {
	latency := func(interval sim.Time) sim.Time {
		e := newChainEngine(t, Config{CheckpointInterval: interval}, nil)
		e.ScheduleTaskFailures([]topology.TaskID{2}, 40.2)
		e.Run(150)
		stats := e.RecoveryStats()
		if len(stats) != 1 || !stats[0].Recovered {
			t.Fatalf("interval %v: no recovery: %+v", interval, stats)
		}
		return stats[0].Latency()
	}
	l5, l30 := latency(5), latency(30)
	if l30 <= l5 {
		t.Errorf("latency(ckpt=30s) = %v should exceed latency(ckpt=5s) = %v", l30, l5)
	}
}

func TestActiveRecoveryFast(t *testing.T) {
	n := 5 // tasks in chainTopo
	eA := newChainEngine(t, Config{CheckpointInterval: 5}, allStrategies(n, StrategyActive))
	eA.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	eA.Run(120)
	aStats := eA.RecoveryStats()
	if len(aStats) != 1 || !aStats[0].Recovered {
		t.Fatalf("active: %+v", aStats)
	}

	eC := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	eC.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	eC.Run(120)
	cStats := eC.RecoveryStats()
	if len(cStats) != 1 || !cStats[0].Recovered {
		t.Fatalf("checkpoint: %+v", cStats)
	}
	if aStats[0].Latency() >= cStats[0].Latency() {
		t.Errorf("active latency %v should beat checkpoint latency %v",
			aStats[0].Latency(), cStats[0].Latency())
	}
	if aStats[0].Latency() > 3 {
		t.Errorf("active latency %v unexpectedly high", aStats[0].Latency())
	}
}

func TestReplicaTrimIntervalShape(t *testing.T) {
	latency := func(trim sim.Time) sim.Time {
		e := newChainEngine(t, Config{CheckpointInterval: 5, ReplicaTrimInterval: trim},
			allStrategies(5, StrategyActive))
		e.ScheduleTaskFailures([]topology.TaskID{2}, 40.2)
		e.Run(120)
		stats := e.RecoveryStats()
		if len(stats) != 1 || !stats[0].Recovered {
			t.Fatalf("trim %v: %+v", trim, stats)
		}
		return stats[0].Latency()
	}
	l5, l30 := latency(5), latency(30)
	if l30 < l5 {
		t.Errorf("latency(trim=30s) = %v should be >= latency(trim=5s) = %v", l30, l5)
	}
}

func TestSourceReplayRecovery(t *testing.T) {
	latency := func(windowBatches int) sim.Time {
		e := newChainEngine(t, Config{WindowBatches: windowBatches},
			allStrategies(5, StrategySourceReplay))
		e.ScheduleTaskFailures([]topology.TaskID{2}, 60.2)
		e.Run(200)
		stats := e.RecoveryStats()
		if len(stats) != 1 || !stats[0].Recovered {
			t.Fatalf("window %d: %+v", windowBatches, stats)
		}
		return stats[0].Latency()
	}
	l10, l30 := latency(10), latency(30)
	if l30 <= l10 {
		t.Errorf("storm latency(window=30) = %v should exceed latency(window=10) = %v", l30, l10)
	}
}

func TestCorrelatedFailureSynchronisation(t *testing.T) {
	e := newChainEngine(t, Config{CheckpointInterval: 5}, nil)
	// Fail both levels: one A task and the B task.
	e.ScheduleTaskFailures([]topology.TaskID{2, 3, 4}, 30.2)
	e.Run(200)
	stats := e.RecoveryStats()
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	var aRec, bRec sim.Time
	for _, st := range stats {
		if !st.Recovered {
			t.Fatalf("task %d not recovered", st.Task)
		}
		switch st.Task {
		case 2:
			aRec = st.RecoveredAt
		case 4:
			bRec = st.RecoveredAt
		}
	}
	// The downstream task depends on the upstream's replay; it cannot
	// finish before its failed upstream.
	if bRec < aRec {
		t.Errorf("downstream recovered at %v before upstream at %v", bRec, aRec)
	}
}

func TestCheckpointCPUShape(t *testing.T) {
	ratio := func(interval sim.Time) float64 {
		e := newChainEngine(t, Config{CheckpointInterval: interval, WindowBatches: 30}, nil)
		e.Run(120)
		var proc, ck sim.Time
		for _, st := range e.CPUStats() {
			proc += st.ProcCPU
			ck += st.CkptCPU
		}
		if proc == 0 {
			t.Fatal("no processing CPU recorded")
		}
		return float64(ck) / float64(proc)
	}
	r1, r15 := ratio(1), ratio(15)
	if r1 <= r15 {
		t.Errorf("checkpoint CPU ratio at 1s (%v) should exceed ratio at 15s (%v)", r1, r15)
	}
	if r1 <= 0 {
		t.Error("checkpoint CPU ratio is zero")
	}
}

// tupleEngine builds a two-path chain src(2) -1:1-> mid(2) -merge->
// sink(1) with materialised tuples, for exactness and tentative-output
// tests. Task IDs: sources 0-1, mids 2-3, sink 4.
func tupleEngine(t *testing.T, cfg Config, strategies []Strategy) *Engine {
	t.Helper()
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 10)
	mid := b.AddOperator("mid", 2, topology.Independent, 1)
	snk := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(src, mid, topology.OneToOne)
	b.Connect(mid, snk, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clus := cluster.New(5, 5)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   cfg,
		Sources: map[int]SourceFactory{0: func(idx int) SourceFunc {
			return FuncSource(func(b int) Batch {
				var ts []Tuple
				for j := 0; j < 10; j++ {
					ts = append(ts, Tuple{Key: fmt.Sprintf("s%d-b%d-k%d", idx, b, j), Value: b})
				}
				return Batch{Count: len(ts), Tuples: ts}
			})
		}},
		Operators: map[int]OperatorFactory{
			1: NewPassthroughFactory(),
			2: NewPassthroughFactory(),
		},
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sinkKeySet(e *Engine) map[string]int {
	out := map[string]int{}
	for _, rec := range e.SinkRecords() {
		out[rec.Tuple.Key]++
	}
	return out
}

// TestRecoveryExactness: after a checkpoint recovery without tentative
// outputs, the sink sees every tuple exactly once — identical to a
// failure-free run.
func TestRecoveryExactness(t *testing.T) {
	base := tupleEngine(t, Config{CheckpointInterval: 5}, nil)
	base.Run(60)
	want := sinkKeySet(base)

	e := tupleEngine(t, Config{CheckpointInterval: 5}, nil)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2) // first mid task
	e.Run(60)
	stats := e.RecoveryStats()
	if len(stats) != 1 || !stats[0].Recovered {
		t.Fatalf("recovery failed: %+v", stats)
	}
	got := sinkKeySet(e)
	// Compare the common prefix of batches both runs fully processed.
	limit := min(e.TaskProgress(4), base.TaskProgress(4))
	for b := 0; b <= limit; b++ {
		for s := 0; s < 2; s++ {
			for j := 0; j < 10; j++ {
				k := fmt.Sprintf("s%d-b%d-k%d", s, b, j)
				if want[k] != 1 {
					t.Fatalf("baseline missing %s", k)
				}
				if got[k] != 1 {
					t.Errorf("recovered run saw %s %d times, want exactly once", k, got[k])
				}
			}
		}
	}
}

// TestTentativeOutputs: with fabricated punctuations the sink keeps
// producing (tentative) results while the failed task slowly recovers;
// without them it stalls until the recovering task catches up. Recovery
// is made slow by disabling checkpoints (cold restart reprocesses from
// batch 0) and throttling the processing rate.
func TestTentativeOutputs(t *testing.T) {
	slow := Config{ProcRate: 50, TentativeOutputs: true}
	e := tupleEngine(t, slow, nil)
	e.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	e.Run(30) // mid-recovery: the failed task is still replaying
	tentative := 0
	for _, rec := range e.SinkRecords() {
		if rec.Tentative {
			tentative++
		}
	}
	if tentative == 0 {
		t.Error("tentative mode produced no tentative-flagged outputs")
	}
	if p := e.TaskProgress(4); p < 26 {
		t.Errorf("tentative mode: sink progress %d, want >= 26 at t=30", p)
	}

	slow.TentativeOutputs = false
	stall := tupleEngine(t, slow, nil)
	stall.ScheduleTaskFailures([]topology.TaskID{2}, 20.2)
	stall.Run(30)
	if p := stall.TaskProgress(4); p > 22 {
		t.Errorf("without tentative outputs sink progress %d should stall near the failure point", p)
	}
}

// TestTentativeBatchesMarked: batches closed by fabricated punctuations
// are flagged tentative at the sink.
func TestTentativeBatchesMarked(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 10)
	snk := b.AddOperator("sink", 1, topology.Independent, 1)
	b.Connect(src, snk, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clus := cluster.New(3, 3)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   Config{CheckpointInterval: 30, TentativeOutputs: true},
		Sources: map[int]SourceFactory{0: func(idx int) SourceFunc {
			return FuncSource(func(bi int) Batch {
				return Batch{Count: 1, Tuples: []Tuple{{Key: fmt.Sprintf("s%d-b%d", idx, bi)}}}
			})
		}},
		Operators: map[int]OperatorFactory{1: NewPassthroughFactory()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.ScheduleTaskFailures([]topology.TaskID{0}, 10.2) // one source task
	e.Run(30)
	// The failure window spans from the stall (~batch 10) to recovery
	// shortly after detection at t=15; those batches close with a
	// fabricated punctuation and must be flagged.
	sawTentative, sawExactAfter := false, false
	for _, rec := range e.SinkRecords() {
		if rec.Batch >= 10 && rec.Batch <= 14 && rec.Tentative {
			sawTentative = true
		}
		if rec.Batch >= 20 && !rec.Tentative {
			sawExactAfter = true
		}
	}
	if !sawTentative {
		t.Error("no tentative outputs flagged during the failure window")
	}
	if !sawExactAfter {
		t.Error("no exact outputs after recovery")
	}
}

// TestReplicaMirrorsPrimary: before any failure the replica's buffered
// outputs are identical to the primary's (the identical-processing-order
// guarantee of §V-B).
func TestReplicaMirrorsPrimary(t *testing.T) {
	e := tupleEngine(t, Config{CheckpointInterval: 5, ReplicaTrimInterval: 1000},
		allStrategies(5, StrategyActive))
	e.Run(30)
	for id := 0; id < 5; id++ {
		prim := e.tasks[id]
		rep := e.replicas[id]
		if rep == nil {
			t.Fatalf("task %d has no replica", id)
		}
		if rep.isSource {
			continue // sources are generators, replicas idle
		}
		if rep.processedBatch < prim.processedBatch-2 {
			t.Errorf("replica of %d lags: %d vs %d", id, rep.processedBatch, prim.processedBatch)
		}
		for d, buf := range prim.outBuf {
			rbuf := rep.outBuf[d]
			for batch, content := range buf {
				if batch > rep.processedBatch {
					continue
				}
				rcontent, ok := rbuf[batch]
				if !ok {
					t.Errorf("replica of %d missing batch %d for %d", id, batch, d)
					continue
				}
				if rcontent.Count != content.Count || len(rcontent.Tuples) != len(content.Tuples) {
					t.Errorf("replica of %d batch %d differs: %d/%d tuples", id, batch, rcontent.Count, content.Count)
					continue
				}
				for i := range content.Tuples {
					if content.Tuples[i].Key != rcontent.Tuples[i].Key {
						t.Errorf("replica of %d batch %d tuple %d key %q != %q",
							id, batch, i, rcontent.Tuples[i].Key, content.Tuples[i].Key)
					}
				}
			}
		}
	}
}

func TestSetupValidation(t *testing.T) {
	topo := chainTopo(100)
	if _, err := New(Setup{Topology: topo}); err == nil {
		t.Error("missing source factory accepted")
	}
	if _, err := New(Setup{
		Topology: topo,
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(10)},
	}); err == nil {
		t.Error("missing operator factory accepted")
	}
	if _, err := New(Setup{
		Topology: topo,
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(10)},
		Operators: map[int]OperatorFactory{
			1: NewPassthroughFactory(), 2: NewPassthroughFactory(),
		},
		Strategies: make([]Strategy, 1),
	}); err == nil {
		t.Error("wrong-length strategies accepted")
	}
	if _, err := New(Setup{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestWindowOpSnapshotRoundTrip(t *testing.T) {
	op := &WindowCountOp{WindowBatches: 3, Selectivity: 0.5}
	sink := &collectEmitter{}
	for b := 0; b < 5; b++ {
		op.ProcessBatch(b, 0, Batch{Count: 100 * (b + 1)}, sink)
		op.OnBatchEnd(b, sink)
	}
	snap := op.Snapshot()
	op2 := &WindowCountOp{WindowBatches: 3, Selectivity: 0.5}
	if err := op2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if op2.seen != op.seen {
		t.Errorf("seen = %d, want %d", op2.seen, op.seen)
	}
	if len(op2.window) != len(op.window) {
		t.Fatalf("window len = %d, want %d", len(op2.window), len(op.window))
	}
	for i := range op.window {
		if op.window[i] != op2.window[i] {
			t.Errorf("window[%d] = %d, want %d", i, op2.window[i], op.window[i])
		}
	}
	if err := op2.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if op2.seen != 0 || len(op2.window) != 0 {
		t.Error("Restore(nil) did not reset")
	}
	if err := op2.Restore([]byte{1, 2}); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

type collectEmitter struct {
	tuples []Tuple
	count  int
}

func (c *collectEmitter) Emit(t Tuple)    { c.tuples = append(c.tuples, t) }
func (c *collectEmitter) EmitCount(n int) { c.count += n }

func TestStrategyString(t *testing.T) {
	if StrategyActive.String() != "active" ||
		StrategyCheckpoint.String() != "checkpoint" ||
		StrategySourceReplay.String() != "source-replay" {
		t.Error("Strategy.String misbehaves")
	}
}
