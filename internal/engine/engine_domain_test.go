package engine

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
)

// domainChainEngine builds the chain topology on a domain-structured
// cluster: tasks round-robin over 5 processing nodes, replicas on 5
// standby nodes, all spread over 2 zones x 2 racks.
func domainChainEngine(t *testing.T, cfg Config, strategies []Strategy) (*Engine, []cluster.DomainID) {
	t.Helper()
	topo := chainTopo(1000)
	clus := cluster.New(5, 5)
	racks, err := clus.BuildDomains(cluster.Layout{Zones: 2, RacksPerZone: 2, SpreadStandby: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	windowBatches := cfg.WindowBatches
	if windowBatches == 0 {
		windowBatches = 10
	}
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   cfg,
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(1000)},
		Operators: map[int]OperatorFactory{
			1: NewWindowCountFactory(windowBatches, 0.5),
			2: NewWindowCountFactory(windowBatches, 0.5),
		},
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, racks
}

// TestScheduleDomainFailure fails one rack and checks that exactly the
// primaries of the rack's processing nodes fail and recover.
func TestScheduleDomainFailure(t *testing.T) {
	cfg := Config{CheckpointInterval: 5}
	e, racks := domainChainEngine(t, cfg, nil)
	rack := racks[0]
	var want []topology.TaskID
	for _, n := range e.clus.DomainNodes(rack) {
		if nd := e.clus.Node(n); nd != nil && !nd.Standby {
			for _, task := range e.topo.Tasks {
				if e.clus.NodeOf(task.ID) == n {
					want = append(want, task.ID)
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("rack hosts no primaries; layout changed?")
	}
	e.ScheduleDomainFailure(rack, 15.2)
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != len(want) {
		t.Fatalf("%d recovery stats, want %d (tasks %v)", len(stats), len(want), want)
	}
	for _, st := range stats {
		if !st.Recovered {
			t.Errorf("task %d not recovered", st.Task)
		}
	}
}

// TestReplicaLostWithStandbyNode is the correlated worst case the
// domain model exposes: the burst takes out a primary AND the standby
// hosting its active replica, forcing the checkpoint fallback. Recovery
// must still succeed, and must be slower than a replica take-over.
func TestReplicaLostWithStandbyNode(t *testing.T) {
	cfg := Config{CheckpointInterval: 5}

	run := func(withStandby bool) sim.Time {
		topo := chainTopo(1000)
		// Replicate the B task (task 4) actively, checkpoint the rest.
		strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
		strategies[4] = StrategyActive
		e := newChainEngine(t, cfg, strategies)
		primary := e.clus.NodeOf(4)
		nodes := []cluster.NodeID{primary}
		if withStandby {
			standby, ok := e.clus.ReplicaNodeOf(4)
			if !ok {
				t.Fatal("no replica placed for task 4")
			}
			nodes = append(nodes, standby)
		}
		e.ScheduleNodeFailures(nodes, 15.2)
		e.Run(120)
		for _, st := range e.RecoveryStats() {
			if st.Task != 4 {
				continue
			}
			if !st.Recovered {
				t.Fatalf("task 4 not recovered (withStandby=%v)", withStandby)
			}
			return st.RecoveredAt - st.DetectedAt
		}
		t.Fatalf("no recovery stat for task 4 (withStandby=%v)", withStandby)
		return 0
	}

	replicaTakeover := run(false)
	checkpointFallback := run(true)
	if checkpointFallback <= replicaTakeover {
		t.Errorf("checkpoint fallback (%v) should be slower than replica take-over (%v)",
			checkpointFallback, replicaTakeover)
	}
}

// TestSourceReplicaServesCheckpointReplay is the regression test for
// the correlated burst that takes out an actively replicated SOURCE
// task together with its checkpoint-protected downstream task. The
// promoted source replica holds no generated batches, so it must
// rewind and regenerate the range the downstream checkpoint replays;
// before that fix the downstream task waited forever for source
// batches nobody could resend.
func TestSourceReplicaServesCheckpointReplay(t *testing.T) {
	topo := chainTopo(1000)
	strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
	strategies[0] = StrategyActive // src[0]
	e := newChainEngine(t, Config{CheckpointInterval: 5}, strategies)
	// src[0] and its direct downstream A[0] (one-to-one) fail together.
	burst := []cluster.NodeID{e.clus.NodeOf(0), e.clus.NodeOf(2)}
	e.ScheduleNodeFailures(burst, 25.2)
	e.Run(120)
	stats := e.RecoveryStats()
	if len(stats) != 2 {
		t.Fatalf("%d recovery stats, want 2", len(stats))
	}
	for _, st := range stats {
		if !st.Recovered {
			t.Errorf("task %d (%v) not recovered by 120s", st.Task, st.Strategy)
		}
	}
}

// TestSourceReplicaRegeneratesForUncheckpointedDownstream pins the
// rewind bound of the promoted source replica: a downstream task that
// never checkpointed before the burst cold-restarts from batch 0, so
// the source must regenerate from 0 even though its other downstream
// has a checkpoint bound. The burst fires before the later golden-ratio
// checkpoint offset, so exactly one of the two downstream tasks has a
// checkpoint.
func TestSourceReplicaRegeneratesForUncheckpointedDownstream(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 1, 1000)
	a := b.AddOperator("A", 2, topology.Independent, 0.5)
	bb := b.AddOperator("B", 1, topology.Independent, 0.5)
	b.Connect(src, a, topology.Split)
	b.Connect(a, bb, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clus := cluster.New(4, 4)
	if err := clus.PlaceRoundRobin(topo); err != nil {
		t.Fatal(err)
	}
	strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
	strategies[0] = StrategyActive // the source
	e, err := New(Setup{
		Topology: topo,
		Cluster:  clus,
		Config:   Config{CheckpointInterval: 15},
		Sources:  map[int]SourceFactory{0: NewCountSourceFactory(1000)},
		Operators: map[int]OperatorFactory{
			1: NewWindowCountFactory(10, 0.5),
			2: NewWindowCountFactory(10, 0.5),
		},
		Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Golden-ratio offsets: task 1 checkpoints at ~3.5s, task 2 at
	// ~12.8s. Failing at 8.2s catches task 2 with no checkpoint at all.
	burst := []cluster.NodeID{e.clus.NodeOf(0), e.clus.NodeOf(2)}
	e.ScheduleNodeFailures(burst, 8.2)
	e.Run(150)
	for _, st := range e.RecoveryStats() {
		if !st.Recovered {
			t.Errorf("task %d (%v) not recovered by 150s", st.Task, st.Strategy)
		}
	}
}

// TestPromotedReplicaDiesWithStandbyNode covers the multi-wave case:
// wave 1 fails a primary and its replica is promoted (now running on a
// standby node); wave 2 fails that standby node. The promoted
// incarnation must fail with its host — the placement map does not
// know it — and recover again via checkpoint fallback.
func TestPromotedReplicaDiesWithStandbyNode(t *testing.T) {
	topo := chainTopo(1000)
	strategies := allStrategies(topo.NumTasks(), StrategyCheckpoint)
	strategies[4] = StrategyActive // the B task
	e := newChainEngine(t, Config{CheckpointInterval: 5}, strategies)
	standby, ok := e.clus.ReplicaNodeOf(4)
	if !ok {
		t.Fatal("no replica placed for task 4")
	}
	// Wave 1 at 20.2: primary dies, detection at 25, promotion ~25.2.
	e.ScheduleNodeFailure(e.clus.NodeOf(4), 20.2)
	// Wave 2 at 32.2: the standby hosting the promoted task dies.
	e.ScheduleNodeFailure(standby, 32.2)
	e.Run(150)
	var stats []RecoveryStat
	for _, st := range e.RecoveryStats() {
		if st.Task == 4 {
			stats = append(stats, st)
		}
	}
	if len(stats) != 2 {
		t.Fatalf("%d failures recorded for task 4, want 2 (second wave missed the promoted host?)", len(stats))
	}
	for i, st := range stats {
		if !st.Recovered {
			t.Errorf("failure %d of task 4 not recovered", i)
		}
	}
}
