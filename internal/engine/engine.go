package engine

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Setup describes an engine instance.
type Setup struct {
	Topology *topology.Topology
	Cluster  *cluster.Cluster
	Config   Config
	// Sources maps each source operator index to its source factory.
	Sources map[int]SourceFactory
	// Operators maps each non-source operator index to its UDF factory.
	Operators map[int]OperatorFactory
	// Strategies selects the fault-tolerance technique per task; nil
	// means StrategyCheckpoint for every task.
	Strategies []Strategy
	// Placement selects how active replicas are placed on standby
	// nodes. The zero value is cluster.PlacementAntiAffinity: a replica
	// never shares its primary's rack, so a whole-domain burst cannot
	// kill both copies. Replicas already placed on the cluster are kept.
	Placement cluster.PlacementPolicy
}

// Engine executes a topology on the discrete-event kernel, implementing
// the PPA fault-tolerance framework of §V.
type Engine struct {
	topo      *topology.Topology
	clus      *cluster.Cluster
	cfg       Config
	clock     *sim.Clock
	sources   map[int]SourceFactory
	operators map[int]OperatorFactory
	strategy  []Strategy

	tasks    []*taskRuntime // current primary incarnation per task
	replicas []*taskRuntime // active replica per task (nil if none)
	// prim and repl are the immortal runtime objects built at New:
	// recovery may point tasks/replicas at fresh incarnations, but
	// Reset always restores (and reuses) these originals.
	prim []*taskRuntime
	repl []*taskRuntime

	master *master
	store  map[topology.TaskID]*checkpointData

	sinks      []SinkRecord
	sinkTuples int // total tuples (materialised + counted) seen at sinks
	// sinkIdx/sinkAcct are the per-(sink task, batch) accounting arena:
	// the map holds indexes into the slice so batch accounting never
	// heap-allocates per record.
	sinkIdx      map[sinkKey]int32
	sinkAcct     []sinkBatchAcct
	currentBatch int // last batch emitted by the source ticker
	horizon      sim.Time

	// Hot-path object pools, all single-threaded like the simulation:
	// staged-input tuple backings, batch-completion events, delivery
	// events and checkpoint-trim notifications are recycled instead of
	// allocated per event.
	tuples    tuplePool
	procFree  []*procEvent
	delivFree []*deliveryEvent
	trimFree  []*trimEvent
}

// checkpointData is one stored checkpoint: computation state plus the
// output buffer (§II-B), the tentative marks of the buffered batches
// and the record of still-owed (fabricated) inputs, so a restored task
// keeps accepting the late corrections of batches it closed tentative
// before the snapshot. The object (and its maps and state buffer) is
// recycled in place when the task's next checkpoint replaces it.
type checkpointData struct {
	batch   int
	state   []byte
	outBuf  map[topology.TaskID]map[int]Batch
	tentOut map[int]bool
	missIn  map[int]map[topology.TaskID]bool
	bytes   int
}

// sinkKey identifies one batch of one sink task in the output-accuracy
// accounting.
type sinkKey struct {
	task  topology.TaskID
	batch int
}

// sinkBatchAcct is the per-(sink task, batch) output accounting: it
// deduplicates replayed re-emissions (a restored sink reprocesses
// batches it already recorded) and tracks the tentative/corrected
// lifecycle of the batch.
type sinkBatchAcct struct {
	count        int  // tuples currently accounted for the batch
	firstCount   int  // tuples recorded when the batch was first seen
	tentative    bool // still tentative (no firm reprocessing yet)
	wasTentative bool // ever recorded tentative
	firstAt      sim.Time
	correctedAt  sim.Time // latest amendment / firm reprocessing; -1 if never
}

// New builds an engine. Placement must already be set on the cluster (or
// use cluster.PlaceRoundRobin); replicas for StrategyActive tasks are
// placed on standby nodes automatically if not placed, using
// Setup.Placement (rack anti-affinity by default).
func New(s Setup) (*Engine, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("engine: no topology")
	}
	cfg := s.Config.withDefaults()
	e := &Engine{
		topo:      s.Topology,
		clus:      s.Cluster,
		cfg:       cfg,
		clock:     sim.NewClock(),
		sources:   s.Sources,
		operators: s.Operators,
		store:     make(map[topology.TaskID]*checkpointData),
		sinkIdx:   make(map[sinkKey]int32),
	}
	if e.clus == nil {
		e.clus = cluster.New(1, 1)
		if err := e.clus.PlaceRoundRobin(e.topo); err != nil {
			return nil, err
		}
	}
	for _, op := range e.topo.SourceOps() {
		if _, ok := e.sources[op]; !ok {
			return nil, fmt.Errorf("engine: no source factory for operator %s", e.topo.Ops[op].Name)
		}
	}
	for op := range e.topo.Ops {
		if e.topo.IsSource(op) {
			continue
		}
		if _, ok := e.operators[op]; !ok {
			return nil, fmt.Errorf("engine: no operator factory for %s", e.topo.Ops[op].Name)
		}
	}
	n := e.topo.NumTasks()
	e.strategy = make([]Strategy, n)
	if s.Strategies != nil {
		if len(s.Strategies) != n {
			return nil, fmt.Errorf("engine: %d strategies for %d tasks", len(s.Strategies), n)
		}
		copy(e.strategy, s.Strategies)
	}
	e.tasks = make([]*taskRuntime, n)
	e.replicas = make([]*taskRuntime, n)
	e.prim = make([]*taskRuntime, n)
	e.repl = make([]*taskRuntime, n)
	var replicated []topology.TaskID
	for id := 0; id < n; id++ {
		tid := topology.TaskID(id)
		e.prim[id] = newTaskRuntime(e, tid, false)
		e.tasks[id] = e.prim[id]
		if e.strategy[id] == StrategyActive {
			e.repl[id] = newTaskRuntime(e, tid, true)
			e.replicas[id] = e.repl[id]
			if _, ok := e.clus.ReplicaNodeOf(tid); !ok {
				replicated = append(replicated, tid)
			}
		}
	}
	if len(replicated) > 0 {
		if err := e.clus.PlaceReplicas(replicated, s.Placement); err != nil {
			return nil, err
		}
	}
	e.master = newMaster(e)
	e.armTickers()
	return e, nil
}

// armTickers arms the self-perpetuating tickers once; Run only advances
// the clock, so ticker events beyond the horizon simply wait.
func (e *Engine) armTickers() {
	e.scheduleBatchTick(0)
	e.scheduleHeartbeat(e.cfg.HeartbeatInterval)
	if e.cfg.CheckpointInterval > 0 {
		e.scheduleCheckpoints()
	}
	e.scheduleReplicaTrims()
}

// Reset returns the engine to its failure-free initial state at virtual
// time zero, reusing the routing, buffers and pools built by New: the
// clock is cleared, every task gets a pristine incarnation with fresh
// operator/source instances from the factories, checkpoints and sink
// accounting are dropped, and the cluster's failure flags are cleared
// (placement is kept). A reset engine runs bit-identically to a freshly
// constructed one for the same Setup, so Monte-Carlo campaigns reuse
// one engine per worker instead of rebuilding the environment per
// scenario. Reset assumes the Setup's factories return equivalent fresh
// instances on every call — the same property a fresh Setup per
// scenario relies on.
func (e *Engine) Reset() {
	e.clock.Reset()
	e.clus.Reset()
	for id := range e.tasks {
		e.prim[id].resetVolatile(false)
		e.tasks[id] = e.prim[id]
		if rep := e.repl[id]; rep != nil {
			rep.resetVolatile(true)
			e.replicas[id] = rep
		} else {
			e.replicas[id] = nil
		}
	}
	e.master.reset()
	clear(e.store)
	e.sinks = e.sinks[:0]
	e.sinkTuples = 0
	clear(e.sinkIdx)
	e.sinkAcct = e.sinkAcct[:0]
	e.currentBatch = 0
	e.horizon = 0
	e.armTickers()
}

// Clock exposes the virtual clock (to schedule custom events in tests
// and experiments).
func (e *Engine) Clock() *sim.Clock { return e.clock }

// Config returns the effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Topology returns the executed topology.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// PPAPlanTasks returns the tasks protected by active replication.
func (e *Engine) PPAPlanTasks() []topology.TaskID {
	var out []topology.TaskID
	for id, st := range e.strategy {
		if st == StrategyActive {
			out = append(out, topology.TaskID(id))
		}
	}
	return out
}

// deliveryEvent is the pooled delivery of one batch fragment (and
// punctuation) between tasks. Delivery events are never cancelled, so
// recycling on fire is safe.
type deliveryEvent struct {
	e        *Engine
	from, to topology.TaskID
	batch    int
	content  Batch
	d        delivery
}

// Run implements sim.Runner: the delivery fires after the network
// delay; the current primary incarnation and the replica of the
// destination both receive it.
func (de *deliveryEvent) Run() {
	e, from, to, batch, content, d := de.e, de.from, de.to, de.batch, de.content, de.d
	de.content = Batch{} // drop the tuple reference while pooled
	e.delivFree = append(e.delivFree, de)
	if rt := e.tasks[to]; rt != nil {
		rt.receive(from, batch, content, d)
	}
	if rep := e.replicas[to]; rep != nil {
		rep.receive(from, batch, content, d)
	}
}

// deliver schedules the delivery of a batch fragment from one task to
// another after the network delay, on a pooled event.
func (e *Engine) deliver(from, to topology.TaskID, batch int, content Batch, d delivery) {
	var de *deliveryEvent
	if n := len(e.delivFree); n > 0 {
		de = e.delivFree[n-1]
		e.delivFree[n-1] = nil
		e.delivFree = e.delivFree[:n-1]
	} else {
		de = &deliveryEvent{}
	}
	de.e, de.from, de.to, de.batch, de.content, de.d = e, from, to, batch, content, d
	e.clock.AfterRun(e.cfg.NetDelay, de)
}

func (e *Engine) getProcEvent() *procEvent {
	if n := len(e.procFree); n > 0 {
		pe := e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
		return pe
	}
	return &procEvent{}
}

func (e *Engine) putProcEvent(pe *procEvent) {
	pe.rt = nil
	e.procFree = append(e.procFree, pe)
}

// Run advances the simulation to the given virtual time, driving source
// batches, heartbeats, checkpoints and replica trims. Run may be called
// repeatedly with increasing times.
func (e *Engine) Run(until sim.Time) {
	if until > e.horizon {
		e.horizon = until
	}
	e.clock.RunUntil(until)
}

// scheduleBatchTick arms the source batch ticker: batch b is emitted at
// its end boundary (b+1)*BatchInterval.
func (e *Engine) scheduleBatchTick(b int) {
	at := sim.Time(float64(b+1)) * e.cfg.BatchInterval
	e.clock.At(at, func() {
		e.currentBatch = b
		for _, op := range e.topo.SourceOps() {
			for _, id := range e.topo.TasksOf(op) {
				rt := e.tasks[id]
				if rt != nil && !rt.failed && rt.isSource {
					rt.emitSourceBatch(b)
				}
			}
		}
		e.master.fabricate()
		e.scheduleBatchTick(b + 1)
	})
}

func (e *Engine) scheduleHeartbeat(at sim.Time) {
	e.clock.At(at, func() {
		e.master.heartbeat()
		e.scheduleHeartbeat(at + e.cfg.HeartbeatInterval)
	})
}

// scheduleCheckpoints arms the per-task checkpoint timers. Offsets are
// scattered deterministically (golden-ratio hashing of the task id) so
// that checkpoints are asynchronous and uncorrelated across tasks, as
// in real deployments — the source of the §V-B synchronisation cost
// when recovering correlated failures.
func (e *Engine) scheduleCheckpoints() {
	n := e.topo.NumTasks()
	for id := 0; id < n; id++ {
		tid := topology.TaskID(id)
		if e.strategy[id] == StrategySourceReplay {
			continue // Storm mode keeps no checkpoints
		}
		frac := float64(id+1) * 0.6180339887498949
		frac -= float64(int(frac))
		offset := e.cfg.CheckpointInterval * sim.Time(frac)
		at := e.clock.Now() + offset
		e.scheduleCheckpoint(tid, at)
	}
}

func (e *Engine) scheduleCheckpoint(id topology.TaskID, at sim.Time) {
	e.clock.At(at, func() {
		// A failed StrategyNone task never gets a new incarnation: stop
		// the dead timer chain instead of re-arming it forever.
		if rt := e.tasks[id]; rt != nil && rt.failed && e.strategy[id] == StrategyNone {
			return
		}
		e.takeCheckpoint(id)
		e.scheduleCheckpoint(id, at+e.cfg.CheckpointInterval)
	})
}

// takeCheckpoint snapshots one task's state and output buffer, charges
// the save cost, stores the checkpoint on the standby store and asks the
// upstream tasks to trim their output buffers (§II-B, §V-B). The task's
// previous checkpointData (maps and state buffer) is recycled in place:
// once replaced it can never be restored again.
func (e *Engine) takeCheckpoint(id topology.TaskID) {
	rt := e.tasks[id]
	if rt == nil || rt.failed {
		return
	}
	ck := e.store[id]
	if ck == nil {
		ck = &checkpointData{
			outBuf:  make(map[topology.TaskID]map[int]Batch, len(rt.outBuf)),
			tentOut: make(map[int]bool),
			missIn:  make(map[int]map[topology.TaskID]bool),
		}
		e.store[id] = ck
	}
	ck.state = rt.snapshotState(ck.state)
	bytes := len(ck.state)
	for d, buf := range rt.outBuf {
		m := ck.outBuf[d]
		if m == nil {
			m = make(map[int]Batch, len(buf))
			ck.outBuf[d] = m
		} else {
			clear(m)
		}
		for b, content := range buf {
			m[b] = content
			bytes += content.Count * 16 // buffered tuples are part of the checkpoint payload
		}
	}
	for d, m := range ck.outBuf {
		if _, live := rt.outBuf[d]; !live {
			clear(m)
		}
	}
	clear(ck.tentOut)
	for b, t := range rt.tentOut {
		ck.tentOut[b] = t
	}
	clear(ck.missIn)
	for b, owed := range rt.missIn {
		if b > rt.processedBatch {
			continue // open batches are re-staged from scratch on restore
		}
		m := make(map[topology.TaskID]bool, len(owed))
		for u, v := range owed {
			m[u] = v
		}
		ck.missIn[b] = m
	}
	ck.batch = rt.processedBatch
	ck.bytes = bytes
	cost := e.cfg.CheckpointFixed + sim.Time(float64(bytes)/e.cfg.CheckpointByteRate)
	rt.busyUntil = maxTime(rt.busyUntil, e.clock.Now()) + cost
	rt.ckptCPU += cost

	// Notify upstream neighbours (and their replicas, which hold the
	// same buffers) to trim their buffers for this task.
	for _, u := range rt.upstreams {
		e.scheduleTrim(u, id, rt.processedBatch)
	}
}

// trimEvent is the pooled trim notification of one upstream task after
// a downstream checkpoint.
type trimEvent struct {
	e        *Engine
	up, down topology.TaskID
	ck       int
}

// Run implements sim.Runner.
func (te *trimEvent) Run() {
	e, up, down, ck := te.e, te.up, te.down, te.ck
	e.trimFree = append(e.trimFree, te)
	if u := e.tasks[up]; u != nil && !u.failed {
		u.trimFor(down, ck)
	}
	if rep := e.replicas[up]; rep != nil && !rep.failed {
		rep.trimFor(down, ck)
	}
}

func (e *Engine) scheduleTrim(up, down topology.TaskID, ck int) {
	var te *trimEvent
	if n := len(e.trimFree); n > 0 {
		te = e.trimFree[n-1]
		e.trimFree[n-1] = nil
		e.trimFree = e.trimFree[:n-1]
	} else {
		te = &trimEvent{}
	}
	te.e, te.up, te.down, te.ck = e, up, down, ck
	e.clock.AfterRun(e.cfg.NetDelay, te)
}

// scheduleReplicaTrims arms the periodic primary->replica progress acks.
func (e *Engine) scheduleReplicaTrims() {
	for id := range e.replicas {
		if e.replicas[id] == nil {
			continue
		}
		tid := topology.TaskID(id)
		e.scheduleReplicaTrim(tid, e.clock.Now()+e.cfg.ReplicaTrimInterval)
	}
}

func (e *Engine) scheduleReplicaTrim(id topology.TaskID, at sim.Time) {
	e.clock.At(at, func() {
		rep := e.replicas[id]
		// The replica is gone (promoted) or its standby node failed:
		// acking a dead replica is wrong and the timer chain can never
		// become useful again, so it stops here.
		if rep == nil || rep.failed || !rep.isReplica {
			return
		}
		if prim := e.tasks[id]; prim != nil && !prim.failed {
			rep.ackAndTrim(prim.processedBatch, e.cfg.CheckpointInterval > 0)
		}
		e.scheduleReplicaTrim(id, at+e.cfg.ReplicaTrimInterval)
	})
}

// ScheduleNodeFailure injects a node failure at the given virtual time.
func (e *Engine) ScheduleNodeFailure(node cluster.NodeID, at sim.Time) {
	e.ScheduleNodeFailures([]cluster.NodeID{node}, at)
}

// ScheduleNodeFailures injects a simultaneous failure of a set of nodes
// at the given virtual time — one correlated burst. Failing a standby
// node kills the active replicas it hosts, so a burst that spans both a
// primary and its replica forces the fallback to checkpoint recovery.
func (e *Engine) ScheduleNodeFailures(nodes []cluster.NodeID, at sim.Time) {
	set := append([]cluster.NodeID(nil), nodes...)
	e.clock.At(at, func() { e.injectNodeFailures(set) })
}

// ScheduleDomainFailure injects the correlated failure of one failure
// domain (rack, zone, ...) at the given virtual time: every node of the
// domain subtree goes down at once.
func (e *Engine) ScheduleDomainFailure(dom cluster.DomainID, at sim.Time) {
	e.clock.At(at, func() { e.injectNodeFailures(e.clus.DomainNodes(dom)) })
}

// injectNodeFailures is the common burst handler: mark the nodes
// failed, fail the primary tasks placed on them, fail the primaries
// that are promoted replicas running on a failed standby node (the
// placement map does not know those hosts), and kill the active
// replicas hosted on failed standby nodes.
func (e *Engine) injectNodeFailures(nodes []cluster.NodeID) {
	var ids []topology.TaskID
	for _, n := range nodes {
		ids = append(ids, e.clus.FailNode(n)...)
	}
	for id, rt := range e.tasks {
		if rt == nil || rt.failed || !rt.promoted {
			continue
		}
		if n, ok := e.clus.ReplicaNodeOf(topology.TaskID(id)); ok {
			if nd := e.clus.Node(n); nd != nil && nd.Failed {
				ids = append(ids, topology.TaskID(id))
			}
		}
	}
	sortIDs(ids)
	e.failReplicasOnFailedNodes()
	e.failTasks(ids)
}

// failReplicasOnFailedNodes marks the active replicas hosted on failed
// standby nodes as failed themselves; recovery then falls back to the
// passive (checkpoint) layer.
func (e *Engine) failReplicasOnFailedNodes() {
	for id, rep := range e.replicas {
		if rep == nil || rep.failed {
			continue
		}
		node, ok := e.clus.ReplicaNodeOf(topology.TaskID(id))
		if !ok {
			continue
		}
		if n := e.clus.Node(node); n != nil && n.Failed {
			rep.failed = true
		}
	}
}

// ScheduleCorrelatedFailure fails every processing node at the given
// time — the paper's correlated-failure injection.
func (e *Engine) ScheduleCorrelatedFailure(at sim.Time) {
	e.clock.At(at, func() {
		ids := e.clus.FailAllProcessing()
		e.failTasks(ids)
	})
}

// ScheduleTaskFailures fails a specific set of tasks at the given time
// (independent of node placement), useful for targeted experiments.
func (e *Engine) ScheduleTaskFailures(ids []topology.TaskID, at sim.Time) {
	sorted := append([]topology.TaskID(nil), ids...)
	sortIDs(sorted)
	e.clock.At(at, func() { e.failTasks(sorted) })
}

func (e *Engine) failTasks(ids []topology.TaskID) {
	for _, id := range ids {
		rt := e.tasks[id]
		if rt == nil || rt.failed {
			continue
		}
		rt.failed = true
		e.master.onFailure(id, rt)
	}
}

// recordSinkBatch accounts one batch completion at a sink task.
// Accounting is deduplicated per (task, batch): a restored sink that
// reprocesses batches it already recorded does not count them twice. A
// firm reprocessing of a batch first recorded tentative replaces it and
// marks the batch corrected — the post-recovery correction a restored
// sink performs implicitly.
func (e *Engine) recordSinkBatch(task topology.TaskID, batch int, tuples []Tuple, extra int, tentative bool) {
	total := len(tuples) + extra
	key := sinkKey{task: task, batch: batch}
	now := e.clock.Now()
	idx, ok := e.sinkIdx[key]
	if !ok {
		e.sinkIdx[key] = int32(len(e.sinkAcct))
		e.sinkAcct = append(e.sinkAcct, sinkBatchAcct{
			count:        total,
			firstCount:   total,
			tentative:    tentative,
			wasTentative: tentative,
			firstAt:      now,
			correctedAt:  -1,
		})
		e.sinkTuples += total
		for _, t := range tuples {
			e.sinks = append(e.sinks, SinkRecord{Task: task, Batch: batch, Tuple: t, Tentative: tentative, At: now})
		}
		return
	}
	a := &e.sinkAcct[idx]
	if a.tentative && !tentative {
		e.sinkTuples += total - a.count
		a.count = total
		a.tentative = false
		a.correctedAt = now
		for _, t := range tuples {
			e.sinks = append(e.sinks, SinkRecord{Task: task, Batch: batch, Tuple: t, Amendment: true, At: now})
		}
	}
}

// recordSinkAmendment accounts an amendment delta arriving at a sink
// for a batch it recorded tentative: the delta tuples are added and the
// batch gains (or refreshes) its corrected-at timestamp. Amendments for
// batches never recorded tentative are replay duplicates and ignored.
func (e *Engine) recordSinkAmendment(task topology.TaskID, batch int, tuples []Tuple, extra int) {
	idx, ok := e.sinkIdx[sinkKey{task: task, batch: batch}]
	if !ok {
		return
	}
	a := &e.sinkAcct[idx]
	if !a.wasTentative {
		return
	}
	total := len(tuples) + extra
	now := e.clock.Now()
	a.count += total
	a.correctedAt = now
	e.sinkTuples += total
	for _, t := range tuples {
		e.sinks = append(e.sinks, SinkRecord{Task: task, Batch: batch, Tuple: t, Amendment: true, At: now})
	}
}

// SinkRecords returns all outputs observed at sink tasks so far,
// including amendment records emitted by the correction layer.
func (e *Engine) SinkRecords() []SinkRecord { return e.sinks }

// SinkTupleCount returns the total number of tuples observed at sink
// tasks so far, counting both materialised tuples and unmaterialised
// (count-only) output. Accounting is deduplicated per (task, batch), so
// recovery replay that re-emits batches at a restored sink does not
// inflate the count past the failure-free volume.
func (e *Engine) SinkTupleCount() int { return e.sinkTuples }

// AccuracyStats summarises the tentative/correction lifecycle of the
// sink output: how much of it was first emitted tentative, how much of
// the tentative output was later corrected (by amendments or firm
// reprocessing), and how long each correction took.
type AccuracyStats struct {
	// FirmTuples and FirmBatches count output that was firm on first
	// emission. TentativeTuples and TentativeBatches count output first
	// emitted tentative (at its original, possibly deficient volume).
	FirmTuples       int
	FirmBatches      int
	TentativeTuples  int
	TentativeBatches int
	// CorrectedBatches counts the tentative batches that received a
	// correction; AmendedTuples is the net tuple volume the corrections
	// added. TentativeBatches - CorrectedBatches batches were never
	// corrected within the run.
	CorrectedBatches int
	AmendedTuples    int
	// CorrectionDelays holds, per corrected batch, the virtual time from
	// the tentative emission to its (latest) correction.
	CorrectionDelays []sim.Time
}

// TentativeFraction is the share of sink tuples first emitted
// tentative. Zero in a failure-free run.
func (s AccuracyStats) TentativeFraction() float64 {
	total := s.FirmTuples + s.TentativeTuples
	if total == 0 {
		return 0
	}
	return float64(s.TentativeTuples) / float64(total)
}

// CorrectedFraction is the share of tentative sink batches that were
// corrected before the end of the run.
func (s AccuracyStats) CorrectedFraction() float64 {
	if s.TentativeBatches == 0 {
		return 0
	}
	return float64(s.CorrectedBatches) / float64(s.TentativeBatches)
}

// AccuracyStats aggregates the per-(task, batch) sink accounting in
// deterministic (task, batch) order.
func (e *Engine) AccuracyStats() AccuracyStats {
	keys := make([]sinkKey, 0, len(e.sinkIdx))
	for k := range e.sinkIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		return keys[i].batch < keys[j].batch
	})
	var s AccuracyStats
	for _, k := range keys {
		a := &e.sinkAcct[e.sinkIdx[k]]
		if !a.wasTentative {
			s.FirmBatches++
			s.FirmTuples += a.firstCount
			continue
		}
		s.TentativeBatches++
		s.TentativeTuples += a.firstCount
		s.AmendedTuples += a.count - a.firstCount
		if a.correctedAt >= 0 {
			s.CorrectedBatches++
			s.CorrectionDelays = append(s.CorrectionDelays, a.correctedAt-a.firstAt)
		}
	}
	return s
}

// RecoveryStats returns per-task failure/recovery measurements, sorted
// by task ID.
func (e *Engine) RecoveryStats() []RecoveryStat {
	return e.master.stats()
}

// CPUStats returns per-task cumulative processing and checkpointing CPU
// time; the checkpoint/processing ratio reproduces Fig. 9.
type CPUStat struct {
	Task    topology.TaskID
	ProcCPU sim.Time
	CkptCPU sim.Time
}

// CPUStats returns per-task CPU accounting, sorted by task ID.
func (e *Engine) CPUStats() []CPUStat {
	out := make([]CPUStat, 0, len(e.tasks))
	for id, rt := range e.tasks {
		if rt == nil {
			continue
		}
		out = append(out, CPUStat{Task: topology.TaskID(id), ProcCPU: rt.procCPU, CkptCPU: rt.ckptCPU})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// TaskProgress returns the last fully processed batch of the task's
// current incarnation.
func (e *Engine) TaskProgress(id topology.TaskID) int {
	if rt := e.tasks[id]; rt != nil {
		return rt.processedBatch
	}
	return -1
}
