package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// defaultDeterministicPackages are the package-path suffixes whose
// results must be a pure function of their inputs: everything the
// golden-hash and distributed-golden tests pin. internal/coord is
// absent deliberately — its heartbeat machinery is wall-clock by
// design, and only its merge/partition files opt in via the
// //ppalint:deterministic marker.
const defaultDeterministicPackages = "internal/sim,internal/engine,internal/campaign,internal/sketch,internal/plan,internal/cluster"

// wallTimeFuncs are the time package functions that read or wait on
// the wall clock. Referencing one (not just calling it) is reported:
// storing time.Now in a variable smuggles nondeterminism just as well.
var wallTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime reports wall-clock time usage inside deterministic
// packages. Simulation, planning and aggregation code runs on virtual
// time so that results are bit-reproducible and independent of host
// speed; one time.Now() in a hot path silently breaks the golden
// hashes and every paired-comparison statistic built on them.
var WallTime = &analysis.Analyzer{
	Name: wallTimeName,
	Doc: "forbid wall-clock time in deterministic packages\n\n" +
		"Deterministic packages (default: " + defaultDeterministicPackages + ")\n" +
		"must compute identical results for identical inputs; time.Now, time.Since,\n" +
		"time.Sleep, time.After, timers and tickers make results depend on host speed\n" +
		"and scheduling. Use the sim.Clock. Other files opt in with a file-level\n" +
		"//ppalint:deterministic comment; intentional uses carry\n" +
		"//ppalint:allow walltime <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWallTime,
}

func init() {
	WallTime.Flags.String("packages", defaultDeterministicPackages,
		"comma-separated package path suffixes treated as deterministic")
}

func runWallTime(pass *analysis.Pass) (interface{}, error) {
	dirs := scanDirectives(pass, wallTimeName)
	pkgInScope := pkgInPatterns(pass.Pkg.Path(), pass.Analyzer.Flags.Lookup("packages").Value.String())

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallTimeFuncs[fn.Name()] {
			return
		}
		f := enclosingFile(pass, sel.Pos())
		if f == nil || isTestFile(pass.Fset, f) {
			return
		}
		if !pkgInScope && !dirs.isDeterministicFile(f) {
			return
		}
		if dirs.allowed(sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(),
			"time.%s reads the wall clock in deterministic code; use the sim clock (or //ppalint:allow walltime <reason>)",
			fn.Name())
	})
	return nil, nil
}
