package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PooledEscape reports uses of a pooled value after its release in
// the same function. The sim event free-list, the engine's tuple and
// record pools, and the campaign's sync.Pool delay buffers all
// recycle objects in place: a reference that survives the Put/release
// call aliases memory the next Get may already be rewriting —
// corruption that surfaces later as an inexplicable flipped golden
// hash. Storing the value into a struct field or capturing it in a
// closure after release is the escape variant of the same bug.
//
// Detection is linear within a function body: a value is considered
// pooled when it is assigned from a Get()/get() call on a
// sync.Pool-like receiver (type name containing "Pool" or "pool"),
// released by pool.Put(v)/pool.put(v) or v.release()/v.Free(), and
// reported at every syntactic use positioned after the release unless
// an intervening reassignment refreshed it. A deferred Put runs at
// function exit, after every use, and never flags. Control flow is not
// modelled; annotate the rare safe case with
// //ppalint:allow pooledescape <reason>.
var PooledEscape = &analysis.Analyzer{
	Name: pooledEscapeName,
	Doc: "forbid use of pooled values after their release\n\n" +
		"Objects from a sync.Pool or a free list are recycled in place; any use,\n" +
		"struct-field store or closure capture after the Put/release call in the\n" +
		"same function aliases memory a later Get may rewrite concurrently. Move\n" +
		"the release after the last use, or annotate a provably safe case with\n" +
		"//ppalint:allow pooledescape <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPooledEscape,
}

// releaseMethods are method names that return their receiver to a
// pool or free list.
var releaseMethods = map[string]bool{
	"release": true, "Release": true, "Free": true, "free": true, "Recycle": true, "recycle": true,
}

func runPooledEscape(pass *analysis.Pass) (interface{}, error) {
	dirs := scanDirectives(pass, pooledEscapeName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		f := enclosingFile(pass, fd.Pos())
		if f == nil || isTestFile(pass.Fset, f) {
			return
		}
		checkPooledFunc(pass, dirs, fd.Body)
	})
	return nil, nil
}

// poolRecv reports whether e looks like a pool: its (possibly
// pointer) named type is sync.Pool or has "Pool"/"pool" in its name.
func poolRecv(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && name == "Pool" {
		return true
	}
	return strings.Contains(name, "Pool") || strings.Contains(name, "pool") || strings.Contains(name, "freeList")
}

// getCall unwraps `expr` (through type assertions and parens) to a
// pool Get call, returning true when it is one.
func getCall(pass *analysis.Pass, e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.TypeAssertExpr:
			e = v.X
			continue
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			if n := sel.Sel.Name; n != "Get" && n != "get" {
				return false
			}
			return poolRecv(pass, sel.X)
		default:
			return false
		}
	}
}

func checkPooledFunc(pass *analysis.Pass, dirs *directives, body *ast.BlockStmt) {
	pooled := make(map[types.Object]bool)          // vars assigned from a pool Get
	releases := make(map[types.Object][]token.Pos) // release positions (call End)
	resets := make(map[types.Object][]token.Pos)   // reassignment positions
	deferred := make(map[*ast.CallExpr]bool)       // calls under a defer: run at exit, after every use

	// First walk: find pooled vars, releases, resets.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			deferred[st.Call] = true
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if i < len(st.Rhs) && getCall(pass, st.Rhs[i]) {
					pooled[obj] = true
				}
				resets[obj] = append(resets[obj], id.Pos())
			}
		case *ast.CallExpr:
			if deferred[st] {
				return true // a deferred Put runs at function exit
			}
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			// pool.Put(v) / pool.put(v)
			if (name == "Put" || name == "put") && len(st.Args) == 1 && poolRecv(pass, sel.X) {
				if id, ok := st.Args[0].(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						releases[obj] = append(releases[obj], st.End())
					}
				}
			}
			// v.release() / v.Free() on a pooled var
			if releaseMethods[name] && len(st.Args) == 0 {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && pooled[obj] {
						releases[obj] = append(releases[obj], st.End())
					}
				}
			}
		}
		return true
	})

	flagged := false
	for obj := range releases {
		if !pooled[obj] {
			delete(releases, obj)
		} else {
			flagged = true
		}
	}
	if !flagged {
		return
	}
	for obj := range releases {
		sort.Slice(releases[obj], func(i, j int) bool { return releases[obj][i] < releases[obj][j] })
		sort.Slice(resets[obj], func(i, j int) bool { return resets[obj][i] < resets[obj][j] })
	}

	// Second walk: any use positioned after a release without an
	// intervening reassignment is a use-after-release.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		rels, ok := releases[obj]
		if !ok {
			return true
		}
		var last token.Pos = token.NoPos
		for _, r := range rels {
			if r <= id.Pos() && r > last {
				last = r
			}
		}
		if last == token.NoPos {
			return true
		}
		for _, rs := range resets[obj] {
			if rs > last && rs <= id.Pos() {
				return true // refreshed between release and this use
			}
		}
		if dirs.allowed(id.Pos()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"%s is used after its release at %s; released pool values may be recycled concurrently — move the release after the last use (or //ppalint:allow pooledescape <reason>)",
			id.Name, pass.Fset.Position(last-1))
		return true
	})
}
