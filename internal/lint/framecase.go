package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// defaultCoordPackages scopes the coordinator-focused analyzers
// (framecase, ctxspawn, lockheld) to the distribution layer, the only
// place in the tree that speaks a wire protocol and juggles
// goroutines per connection.
const defaultCoordPackages = "internal/coord"

// FrameCase requires switches over protocol frame kinds to be
// exhaustive. The frame kinds form a closed set (a package-level
// const block of string constants); a dispatch switch that handles a
// subset and falls through silently drops the rest — the coordinator
// bug class where an unhandled message kind disappears instead of
// failing the handshake. A switch is accepted when it covers every
// member of the const group or carries a non-empty default; an empty
// default is the silent drop spelled out and is reported too.
var FrameCase = &analysis.Analyzer{
	Name: frameCaseName,
	Doc: "require exhaustive switches over protocol frame kinds\n\n" +
		"A switch whose cases reference members of a package-level string-constant\n" +
		"group (the frame/message kinds) must either cover every member or carry a\n" +
		"non-empty default that handles the unknown kind explicitly. An empty\n" +
		"default silently drops frames and is reported. Suppress an intentional\n" +
		"partial dispatch with //ppalint:allow framecase <reason>.",
	Run: runFrameCase,
}

func init() {
	FrameCase.Flags.String("packages", defaultCoordPackages,
		"comma-separated package path suffixes checked for frame-kind exhaustiveness")
}

// constGroup is one package-level parenthesized const block of ≥2
// string constants — a closed frame/message kind enumeration.
type constGroup struct {
	label   string // common name prefix of the members, for diagnostics
	members []*types.Const
}

func runFrameCase(pass *analysis.Pass) (interface{}, error) {
	if !pkgInPatterns(pass.Pkg.Path(), pass.Analyzer.Flags.Lookup("packages").Value.String()) {
		return nil, nil
	}
	dirs := scanDirectives(pass, frameCaseName)

	byConst := make(map[types.Object]*constGroup)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST || !gd.Lparen.IsValid() {
				continue
			}
			g := &constGroup{}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						g.members = append(g.members, c)
					}
				}
			}
			if len(g.members) < 2 {
				continue
			}
			g.label = groupLabel(g.members)
			for _, m := range g.members {
				byConst[m] = g
			}
		}
	}
	if len(byConst) == 0 {
		return nil, nil
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkFrameSwitch(pass, dirs, byConst, sw)
			}
			return true
		})
	}
	return nil, nil
}

// checkFrameSwitch verifies one tag switch whose cases reference a
// frame-kind const group.
func checkFrameSwitch(pass *analysis.Pass, dirs *directives, byConst map[types.Object]*constGroup, sw *ast.SwitchStmt) {
	seen := make(map[types.Object]bool)
	var group *constGroup
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			obj := caseConst(pass, e)
			if obj == nil {
				continue
			}
			if g := byConst[obj]; g != nil {
				group = g
				seen[obj] = true
			}
		}
	}
	if group == nil {
		return // not a switch over a frame-kind group
	}
	if dirs.allowed(sw.Pos()) {
		return
	}
	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			pass.Reportf(defaultClause.Pos(),
				"empty default in a switch over %s* kinds silently drops unhandled frames; reject the unknown kind explicitly (or //ppalint:allow framecase <reason>)",
				group.label)
		}
		return
	}
	var missing []string
	for _, m := range group.members {
		if !seen[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s* kinds is not exhaustive: missing %s; add the cases or a default that rejects the unknown kind (or //ppalint:allow framecase <reason>)",
			group.label, strings.Join(missing, ", "))
	}
}

// caseConst resolves a case expression to the constant it references,
// or nil for literals and non-constant expressions.
func caseConst(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[v].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[v.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// groupLabel derives a short name for a const group from the longest
// common prefix of its member names (msgHello, msgJob, ... -> "msg").
func groupLabel(members []*types.Const) string {
	prefix := members[0].Name()
	for _, m := range members[1:] {
		name := m.Name()
		for !strings.HasPrefix(name, prefix) {
			prefix = prefix[:len(prefix)-1]
		}
	}
	if prefix == "" {
		return members[0].Name()
	}
	return prefix
}
