package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// LockHeld reports blocking operations performed while a sync mutex
// is held: channel sends and receives, selects without a default, and
// blocking I/O (reads, writes, accepts, dials). A goroutine that
// blocks with a lock held stalls every contender for the duration of
// the block — in the coordinator that turns one slow worker
// connection into a pool-wide freeze. The analysis is a per-function
// syntactic walk: Lock/RLock adds the receiver to the held set,
// Unlock/RUnlock removes it, a deferred Unlock keeps it held to the
// end of the function, and branch bodies are scanned with a copy of
// the set.
var LockHeld = &analysis.Analyzer{
	Name: lockHeldName,
	Doc: "forbid blocking operations while holding a mutex\n\n" +
		"Between mu.Lock() and mu.Unlock() (including the span of a deferred\n" +
		"unlock) the scoped packages must not send or receive on channels, select\n" +
		"without a default, or perform blocking I/O (io/net/bufio/os reads and\n" +
		"writes, net dials and accepts). A blocked lock holder stalls every\n" +
		"contender. Intentional short critical-section I/O is annotated with\n" +
		"//ppalint:allow lockheld <reason>. sync.Cond.Wait is exempt: it releases\n" +
		"the lock while blocking.",
	Run: runLockHeld,
}

func init() {
	LockHeld.Flags.String("packages", defaultCoordPackages,
		"comma-separated package path suffixes checked for blocking ops under locks")
}

// blockingIOMethods are method names that block on I/O when the
// method comes from io, net, bufio or os.
var blockingIOMethods = map[string]bool{
	"Read": true, "Write": true, "ReadSlice": true, "ReadString": true,
	"ReadBytes": true, "ReadLine": true, "ReadRune": true, "ReadByte": true,
	"WriteTo": true, "ReadFrom": true, "Flush": true, "Accept": true,
}

// blockingNetFuncs are net package functions that block on the
// network.
var blockingNetFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
}

func runLockHeld(pass *analysis.Pass) (interface{}, error) {
	if !pkgInPatterns(pass.Pkg.Path(), pass.Analyzer.Flags.Lookup("packages").Value.String()) {
		return nil, nil
	}
	dirs := scanDirectives(pass, lockHeldName)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lh := &lockHeldScan{pass: pass, dirs: dirs}
			lh.stmts(fd.Body.List, map[string]token.Pos{})
			// Function literals run on their own goroutine or call
			// stack: scan each with an empty held set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lh.stmts(lit.Body.List, map[string]token.Pos{})
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockHeldScan walks one function's statements tracking held mutexes.
type lockHeldScan struct {
	pass *analysis.Pass
	dirs *directives
}

// stmts scans a statement list in order, mutating held.
func (lh *lockHeldScan) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		lh.stmt(st, held)
	}
}

// copyHeld returns an independent copy for branch bodies.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (lh *lockHeldScan) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if lh.lockOp(s.X, held) {
			return
		}
		lh.expr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end: the
		// held set is deliberately not cleared. The deferred call
		// itself runs during unwinding; not scanned.
	case *ast.GoStmt:
		// New goroutine: holds nothing. Its literal body is scanned
		// separately with an empty set; arguments are evaluated here.
		for _, arg := range s.Call.Args {
			lh.expr(arg, held)
		}
	case *ast.SendStmt:
		lh.report(s.Pos(), "channel send", held)
		lh.expr(s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lh.report(s.Pos(), "select without default", held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				lh.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		lh.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lh.stmt(s.Init, held)
		}
		lh.expr(s.Cond, held)
		lh.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lh.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lh.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lh.expr(s.Cond, held)
		}
		lh.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if tv, ok := lh.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				lh.report(s.Pos(), "range over channel", held)
			}
		}
		lh.expr(s.X, held)
		lh.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lh.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lh.expr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lh.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lh.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lh.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lh.expr(e, held)
		}
	case *ast.DeclStmt, *ast.BranchStmt, *ast.IncDecStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := st.(*ast.LabeledStmt); ok {
			lh.stmt(ls.Stmt, held)
		}
	}
}

// lockOp handles mu.Lock()/mu.Unlock() expression statements,
// returning true when e was one.
func (lh *lockHeldScan) lockOp(e ast.Expr, held map[string]token.Pos) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := lh.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	key := lockKey(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	}
	return false
}

// expr scans an expression for blocking operations, not descending
// into function literals (they run on their own stack).
func (lh *lockHeldScan) expr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				lh.report(v.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			lh.blockingCall(v, held)
		}
		return true
	})
}

// blockingCall reports call when it is blocking I/O.
func (lh *lockHeldScan) blockingCall(call *ast.CallExpr, held map[string]token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := lh.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch pkg {
		case "io", "net", "bufio", "os":
			if blockingIOMethods[fn.Name()] {
				lh.report(call.Pos(), sprintf("%s.%s", lockKey(sel.X), fn.Name()), held)
			}
		}
		return
	}
	if pkg == "net" && blockingNetFuncs[fn.Name()] {
		lh.report(call.Pos(), "net."+fn.Name(), held)
	}
}

// report emits one finding if any mutex is held at pos.
func (lh *lockHeldScan) report(pos token.Pos, what string, held map[string]token.Pos) {
	if len(held) == 0 || lh.dirs.allowed(pos) {
		return
	}
	// Deterministic order for multi-lock spans: sort the keys, then
	// render.
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	locks := make([]string, 0, len(keys))
	for _, k := range keys {
		locks = append(locks, sprintf("%s (locked at %s)", k, lh.pass.Fset.Position(held[k])))
	}
	lh.pass.Reportf(pos,
		"%s while holding %s blocks every contender for the lock; release it first (or //ppalint:allow lockheld <reason>)",
		what, strings.Join(locks, ", "))
}

// lockKey renders the mutex receiver path (c.mu, p.state.mu) for the
// held-set key and diagnostics.
func lockKey(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return lockKey(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return lockKey(v.X)
	case *ast.StarExpr:
		return lockKey(v.X)
	case *ast.IndexExpr:
		return lockKey(v.X) + "[...]"
	}
	return "mutex"
}
