package lint_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSelfLint builds the ppalint vet tool and runs the full suite —
// detclose root-closure verification included — over this repository.
// The tree must be clean: every intentional exception is annotated in
// place, so any new finding is a regression. This is the test that
// keeps the declared determinism roots actually deterministic.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vet tool and re-vets the tree; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "ppalint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ppalint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ppalint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("ppalint is not clean on ./...: %v\n%s", err, out)
	}
}
