package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// sprintf is fmt.Sprintf under a short name for the detection cores,
// which build diagnostic messages for two consumers (the per-analyzer
// report and detclose's taint-source scan).
func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// taintSource is one direct determinism hazard inside a function body:
// the same findings the walltime, globalrand, maporder and floatfold
// analyzers report, here attributed to the enclosing function so
// detclose can seed its interprocedural taint propagation.
type taintSource struct {
	pos  token.Pos
	kind string // the source analyzer's name: its allow directive also suppresses the taint
	desc string
}

// scanTaintSources walks root (a function body, or any decl subtree)
// and returns its direct taint sources in position order, skipping
// sources suppressed by an //ppalint:allow directive of the source
// analyzer's name or of detclose itself. Suppressing a source this
// way asserts the construct is deterministic after all, so it also
// stops the taint from propagating to callers.
func scanTaintSources(pass *analysis.Pass, root ast.Node, dirs *directives) []taintSource {
	var out []taintSource
	add := func(pos token.Pos, kind, desc string) {
		if dirs.allowedFor(kind, pos) || dirs.allowedFor(detCloseName, pos) {
			return
		}
		out = append(out, taintSource{pos: pos, kind: kind, desc: desc})
	}

	// walltime: any reference to a wall-clock time function — calling
	// or merely storing it — makes the result depend on host time.
	wallClockRefs(pass, root, func(pos token.Pos, name string) {
		add(pos, wallTimeName, sprintf("reads the wall clock via time.%s", name))
	})

	// globalrand: top-level math/rand draws come from the shared
	// process-global source and cannot be replayed from a seed.
	globalRandRefs(pass, root, func(pos token.Pos, name string) {
		add(pos, globalRandName, sprintf("draws from the process-global source via rand.%s", name))
	})

	// maporder: order-sensitive work inside range-over-map.
	mapRangeLoops(pass, root, func(loop *ast.RangeStmt, after []ast.Stmt) {
		checkMapLoop(pass, loop, after, func(pos token.Pos, msg string) {
			add(pos, mapOrderName, msg)
		})
	})

	// floatfold: non-associative FP accumulation in scheduling-
	// dependent order.
	floatFoldContexts(pass, root, func(body ast.Node, boundary ast.Node, context string) {
		checkFloatFold(pass, body, boundary, context, func(pos token.Pos, msg string) {
			add(pos, floatFoldName, msg)
		})
	})

	sortSources(out)
	return out
}

func sortSources(ss []taintSource) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].pos < ss[j-1].pos; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// wallClockRefs calls emit for every reference under root to a time
// package function that reads or waits on the wall clock.
func wallClockRefs(pass *analysis.Pass, root ast.Node, emit func(pos token.Pos, name string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallTimeFuncs[fn.Name()] {
			emit(sel.Pos(), fn.Name())
		}
		return true
	})
}

// globalRandRefs calls emit for every reference under root to a
// top-level math/rand (or math/rand/v2) function other than the
// explicit source constructors. Methods on *rand.Rand are fine: the
// caller owns the seed. Wall-clock-seeded constructors are covered by
// wallClockRefs, which flags the time.Now reference itself.
func globalRandRefs(pass *analysis.Pass, root ast.Node, emit func(pos token.Pos, name string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		if !randConstructors[fn.Name()] {
			emit(sel.Pos(), fn.Name())
		}
		return true
	})
}
