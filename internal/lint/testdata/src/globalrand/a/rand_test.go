package a

import "math/rand"

// Test files may use throwaway global randomness freely.
func testOnlyHelper() int { return rand.Intn(10) }
