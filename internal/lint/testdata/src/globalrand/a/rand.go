package a

import (
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Intn(10)                  // want "rand.Intn draws from the process-global source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the process-global source"
	_ = rand.Perm(4)                   // want "rand.Perm draws from the process-global source"
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
}

func seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10) // methods on an owned *rand.Rand are fine
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the wall clock" "rand.NewSource seeded from the wall clock"
}

func suppressed() int {
	return rand.Intn(10) //ppalint:allow globalrand fixture exercising suppression
}
