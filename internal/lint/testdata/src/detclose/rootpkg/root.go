// Package rootpkg declares the determinism roots of the detclose
// fixture. Run reaches a wall-clock read two calls down in package
// dep; the diagnostic must carry the full chain.
package rootpkg

import "repro/fixture/dep"

func Run(n int) int { // want "(?s)rootpkg.Run is a declared determinism root.*rootpkg.Run .root.go:[0-9]+. calls dep.Step.*dep.Step .dep.go:[0-9]+. calls dep.stamp.*dep.stamp .dep.go:[0-9]+. reads the wall clock via time.Now"
	return dep.Step(n)
}

// Run2 is clean: Seeded's draw is suppressed at the source and Pure
// is taint-free.
func Run2(n int) int {
	return dep.Seeded() + dep.Pure(n)
}

// Sum is clean: slice iteration order is fixed.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Sketch is a tiny ordered accumulator.
type Sketch struct{ n float64 }

func (s *Sketch) Add(v float64) { s.n += v }

// Agg folds map values in iteration order: a direct taint source on a
// root method.
type Agg struct{ sk Sketch }

func (a *Agg) Merge(m map[string]float64) { // want "(?s)Agg..Merge is a declared determinism root.*folds values in map-iteration order"
	for _, v := range m {
		a.sk.Add(v)
	}
}

// Halve carries a stale suppression: nothing on the line below trips
// a detector any more.
func Halve(n int) int {
	//ppalint:allow walltime stale suppression kept by mistake // want "ppalint:allow walltime suppresses nothing on this line"
	return n / 2
}
