//ppalint:deterministic // want "redundant: package repro/internal/plan is already in the deterministic package set"
package plan

// Noop exists so the file has a declaration.
func Noop() {}
