//ppalint:deterministic // want "redundant: every function in this file is in the call closure of the declared detclose roots"
package marked

// Root is declared as a detclose root in the test; helper is in its
// local closure, so the file marker adds nothing the closure check
// does not already enforce.
func Root(n int) int {
	return helper(n)
}

func helper(n int) int {
	return n + 1
}
