// Package dep is the lower package of the cross-package taint
// fixture: the wall-clock read sits two calls below the root declared
// in the rootpkg fixture, so the taint must travel through exported
// facts to be seen.
package dep

import (
	"math/rand"
	"time"
)

// Step is one hop above the taint source.
func Step(n int) int {
	return n + stamp()
}

// stamp is the direct taint source.
func stamp() int {
	return int(time.Now().UnixNano())
}

// Seeded draws from the global source, but the draw is excused with a
// reason; the suppression asserts determinism, so callers stay clean.
func Seeded() int {
	return int(rand.Int63()) //ppalint:allow globalrand fixture pretends this draw is replayable
}

// Pure is taint-free.
func Pure(n int) int {
	return n * 2
}
