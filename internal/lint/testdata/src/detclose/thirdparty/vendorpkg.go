// Package vendorpkg is outside the first-party prefix: detclose must
// compute no taint here, so the blatant wall-clock read below goes
// unreported.
package vendorpkg

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
