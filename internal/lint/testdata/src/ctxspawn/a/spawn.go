// Fixture type-checked under example.com/internal/coord, matching the
// ctxspawn analyzer's default scope.
package coord

import "context"

func spawnBare(work func()) {
	go work() // want "goroutine is spawned without a context"
}

func spawnBareLiteral(ch chan int) {
	go func() { // want "goroutine is spawned without a context"
		<-ch
	}()
}

func spawnCtxArg(ctx context.Context, work func(context.Context)) {
	go work(ctx)
}

func spawnClosure(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case <-ch:
		}
	}()
}

type worker struct{ ctx context.Context }

func spawnFieldCtx(w *worker) {
	go func() {
		<-w.ctx.Done()
	}()
}

func spawnAllowed(done chan struct{}) {
	//ppalint:allow ctxspawn bounded by the connection close unblocking the receive
	go func() {
		<-done
	}()
}
