package a

func mapFoldBad(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum inside map iteration"
	}
	return sum
}

func mapProductBad(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "floating-point accumulation into p inside map iteration"
	}
	return p
}

// Integer accumulation is exact in any order.
func mapIntOK(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func goroutineBad(xs []float64) float64 {
	var total float64
	done := make(chan struct{}, len(xs))
	for _, x := range xs {
		go func(x float64) {
			total += x // want "floating-point accumulation into total inside a goroutine"
			done <- struct{}{}
		}(x)
	}
	for range xs {
		<-done
	}
	return total
}

// An accumulator local to the loop body has a fixed fold order.
func localAccOK(m map[int][]float64) int {
	n := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		if s > 0 {
			n++
		}
	}
	return n
}

func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ppalint:allow floatfold fixture exercising suppression
	}
	return sum
}
