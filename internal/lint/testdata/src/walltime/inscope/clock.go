// Fixture type-checked under the import path repro/internal/engine,
// which matches the walltime analyzer's default deterministic set.
package engine

import "time"

func now() time.Time {
	return time.Now() // want "time.Now reads the wall clock in deterministic code"
}

func wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

func timer() {
	_ = time.NewTimer(time.Second)  // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	<-time.After(time.Second)       // want "time.After reads the wall clock"
}

// Storing the function reference smuggles the same nondeterminism.
var clock = time.Now // want "time.Now reads the wall clock"

func suppressed() time.Time {
	return time.Now() //ppalint:allow walltime demo fixture exercising the suppression path
}

func suppressedAbove() {
	//ppalint:allow walltime reason on the line above also suppresses
	time.Sleep(time.Millisecond)
}

// want+2 "ppalint:allow walltime needs a reason"
//
//ppalint:allow walltime
var badDirective = time.Now // want "time.Now reads the wall clock"

// Virtual-time types and conversions stay fine: only wall-clock reads
// are forbidden.
func durationsOK(d time.Duration) time.Duration { return d * 2 }
