// A file outside the deterministic package set opts in with the
// file-level marker — the coordinator's merge/partition path pattern.
//
//ppalint:deterministic
package other

import "time"

func optedIn() time.Time {
	return time.Now() // want "time.Now reads the wall clock in deterministic code"
}
