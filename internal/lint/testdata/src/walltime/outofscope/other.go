// Fixture type-checked under example.com/other: not a deterministic
// package, so wall-clock use is unconstrained here.
package other

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
