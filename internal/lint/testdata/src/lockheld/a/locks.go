// Fixture type-checked under example.com/internal/coord, matching the
// lockheld analyzer's default scope.
package coord

import (
	"bufio"
	"io"
	"net"
	"sync"
)

type state struct {
	mu sync.Mutex
	ch chan int
	w  io.Writer
	br *bufio.Reader
}

func sendHeld(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func recvHeldDefer(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding s.mu"
}

func writeHeld(s *state, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(buf) // want "s.w.Write while holding s.mu"
	return err
}

func sendReleased(s *state) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func unlockThenSend(s *state, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.mu.Unlock()
	s.ch <- 1
}

func selectHeld(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding s.mu"
	case v := <-s.ch:
		_ = v
	}
}

func selectNonBlocking(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func spawnWhileHeld(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-s.ch // new goroutine: holds nothing
	}()
}

func condWait(s *state, c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Wait() // Cond.Wait releases the lock while blocking
}

func dialHeld(s *state, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = net.Dial("tcp", addr) // want "net.Dial while holding s.mu"
}

func readHeldAllowed(s *state) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ppalint:allow lockheld frame writes are serialised by this lock by design
	return s.br.ReadSlice('\n')
}

type rwstate struct {
	mu sync.RWMutex
	ch chan int
}

func rlockHeld(r *rwstate) {
	r.mu.RLock()
	r.ch <- 1 // want "channel send while holding r.mu"
	r.mu.RUnlock()
}
