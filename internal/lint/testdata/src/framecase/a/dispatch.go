// Fixture type-checked under example.com/internal/coord, matching the
// framecase analyzer's default scope.
package coord

import "errors"

// kind* is a frame-kind enumeration: a package-level const block of
// string constants.
const (
	kindHello = "hello"
	kindData  = "data"
	kindBye   = "bye"
)

// Unrelated non-string consts: not an enumeration framecase tracks.
const (
	limitLow  = 1
	limitHigh = 2
)

func dispatchMissing(k string) int {
	switch k { // want "switch over kind. kinds is not exhaustive: missing kindBye"
	case kindHello:
		return 1
	case kindData:
		return 2
	}
	return 0
}

func dispatchEmptyDefault(k string) int {
	switch k {
	case kindHello:
		return 1
	default: // want "empty default in a switch over kind. kinds silently drops unhandled frames"
	}
	return 0
}

func dispatchExhaustive(k string) int {
	switch k {
	case kindHello, kindData:
		return 1
	case kindBye:
		return 2
	}
	return 0
}

func dispatchDefaultHandled(k string) (int, error) {
	switch k {
	case kindHello:
		return 1, nil
	default:
		return 0, errors.New("unknown kind " + k)
	}
}

func dispatchAllowed(k string) int {
	//ppalint:allow framecase metrics hook only cares about hello frames
	switch k {
	case kindHello:
		return 1
	}
	return 0
}

// Switches over values outside any tracked group are ignored.
func dispatchInt(n int) int {
	switch n {
	case limitLow:
		return 1
	}
	return 0
}

func dispatchLiteral(s string) int {
	switch s {
	case "other":
		return 1
	}
	return 0
}
