package a

import (
	"fmt"
	"sort"
	"sync"
)

func appendBad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

// The collect-then-sort idiom is deterministic overall and exempt.
func appendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortInts(xs []int) { sort.Ints(xs) }

// A local sort helper after the loop counts as collect-then-sort.
func appendHelperSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sendBad(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "send on ch inside map iteration delivers values in nondeterministic order"
	}
}

func printBad(m map[int]int) {
	for k, v := range m {
		fmt.Printf("%d=%d\n", k, v) // want "fmt.Printf inside map iteration emits output"
	}
}

type acc struct{ vals []float64 }

func (a *acc) Add(v float64) { a.vals = append(a.vals, v) }

func foldBad(m map[int]float64, a *acc) {
	for _, v := range m {
		a.Add(v) // want "a.Add folds values in map-iteration order"
	}
}

func foldAllowed(m map[int]float64, a *acc) {
	for _, v := range m {
		a.Add(v) //ppalint:allow maporder this accumulator is commutative in the fixture
	}
}

// WaitGroup counters are commutative bookkeeping, not folds.
func wgOK(m map[int]int, wg *sync.WaitGroup) {
	for range m {
		wg.Add(1)
	}
}

func strBad(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v // want "string concatenation into s inside map iteration"
	}
	return s
}

// Building another map is order-insensitive.
func mapToMapOK(m map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Integer sums are exact whatever the order.
func intSumOK(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Appending into a slice declared inside the loop body is ordered
// only within one iteration.
func innerLocalOK(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
