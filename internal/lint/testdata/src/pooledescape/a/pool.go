package a

import "sync"

type item struct{ n int }

var pool = sync.Pool{New: func() any { return new(item) }}

type holder struct{ it *item }

func useAfterPut() int {
	it := pool.Get().(*item)
	pool.Put(it)
	return it.n // want "it is used after its release"
}

func storeAfterPut(h *holder) {
	it := pool.Get().(*item)
	pool.Put(it)
	h.it = it // want "it is used after its release"
}

func captureAfterPut() func() int {
	it := pool.Get().(*item)
	pool.Put(it)
	return func() int { return it.n } // want "it is used after its release"
}

// Releasing after the last use is the correct discipline.
func okDiscipline() int {
	it := pool.Get().(*item)
	n := it.n
	pool.Put(it)
	return n
}

// A fresh Get refreshes the variable: later uses are fine.
func refreshOK() int {
	it := pool.Get().(*item)
	pool.Put(it)
	it = pool.Get().(*item)
	n := it.n
	pool.Put(it)
	return n
}

// First-party free lists follow the get/put naming of the engine's
// tuplePool; a release method on the value works too.
type recPool struct{ free []*item }

func (p *recPool) get() *item {
	if n := len(p.free); n > 0 {
		it := p.free[n-1]
		p.free = p.free[:n-1]
		return it
	}
	return new(item)
}

func (p *recPool) put(it *item) { p.free = append(p.free, it) }

func freeListUseAfterPut(p *recPool) int {
	it := p.get()
	p.put(it)
	return it.n // want "it is used after its release"
}

// A deferred Put runs at function exit, after every use.
func deferOK() int {
	it := pool.Get().(*item)
	defer pool.Put(it)
	return it.n
}

func suppressed() int {
	it := pool.Get().(*item)
	pool.Put(it)
	return it.n //ppalint:allow pooledescape fixture exercising suppression
}
