package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapOrder reports order-sensitive work done directly inside `for
// range` over a map. Go randomises map iteration order per run, so a
// loop that appends to a slice, sends on a channel, writes output or
// folds into an accumulator produces a different sequence every
// execution — the exact class of bug that flips a golden hash or
// reorders CSV rows between two runs of the same campaign. The fix is
// mechanical: collect the keys, sort them, range over the sorted
// slice. Loops whose appended slice is sorted immediately after the
// loop are recognised as already deterministic.
var MapOrder = &analysis.Analyzer{
	Name: mapOrderName,
	Doc: "forbid order-sensitive work inside map iteration\n\n" +
		"Map iteration order is randomised per run. A range-over-map body that\n" +
		"appends to an outer slice (unless the slice is sorted right after the\n" +
		"loop), sends on a channel, writes output (fmt.Print*/Fprint*, Write,\n" +
		"Encode, ...), concatenates strings, or folds into an outer accumulator\n" +
		"(Add/Merge/...) therefore produces a different sequence every execution.\n" +
		"Sort the keys and range over the sorted slice, or annotate a genuinely\n" +
		"order-insensitive fold with //ppalint:allow maporder <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapOrder,
}

// foldMethods are accumulator method names whose call order usually
// matters (sketch folds, merges, ordered collections).
var foldMethods = map[string]bool{
	"Add": true, "Merge": true, "Observe": true, "Record": true, "Push": true,
}

// emitMethods write bytes or values to an output in call order.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Print": true, "Printf": true, "Println": true,
}

// orderInsensitiveRecv lists receiver types whose fold-named methods
// are commutative bookkeeping, not ordered accumulation.
var orderInsensitiveRecv = map[string]bool{
	"sync.WaitGroup": true,
	"sync/atomic":    true, // any type from sync/atomic
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	dirs := scanDirectives(pass, mapOrderName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Enclosing-block index so the sort-after-loop exemption can see
	// the statements following each range loop.
	blockOf := make(map[*ast.RangeStmt][]ast.Stmt)
	ins.Preorder([]ast.Node{(*ast.BlockStmt)(nil)}, func(n ast.Node) {
		b := n.(*ast.BlockStmt)
		for i, st := range b.List {
			if r, ok := st.(*ast.RangeStmt); ok {
				blockOf[r] = b.List[i+1:]
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		loop := n.(*ast.RangeStmt)
		if !isMapRange(pass, loop) {
			return
		}
		f := enclosingFile(pass, loop.Pos())
		if f == nil || isTestFile(pass.Fset, f) {
			return
		}
		checkMapLoop(pass, loop, blockOf[loop], func(pos token.Pos, msg string) {
			if !dirs.allowed(pos) {
				pass.Reportf(pos, "%s (or //ppalint:allow maporder <reason>)", msg)
			}
		})
	})
	return nil, nil
}

// isMapRange reports whether loop ranges over a map.
func isMapRange(pass *analysis.Pass, loop *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[loop.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeLoops calls fn for every range-over-map loop under root,
// passing the statements that follow the loop in its enclosing block
// (for the sort-after-loop exemption).
func mapRangeLoops(pass *analysis.Pass, root ast.Node, fn func(loop *ast.RangeStmt, after []ast.Stmt)) {
	blockOf := make(map[*ast.RangeStmt][]ast.Stmt)
	ast.Inspect(root, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			for i, st := range b.List {
				if r, ok := st.(*ast.RangeStmt); ok {
					blockOf[r] = b.List[i+1:]
				}
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		if loop, ok := n.(*ast.RangeStmt); ok && isMapRange(pass, loop) {
			fn(loop, blockOf[loop])
		}
		return true
	})
}

// checkMapLoop emits one finding per order-sensitive operation in the
// body of a range-over-map loop. It is the detection core shared by
// the maporder analyzer and detclose's taint-source scan; emit
// receives the position and the bare message (no suppression hint).
func checkMapLoop(pass *analysis.Pass, loop *ast.RangeStmt, after []ast.Stmt, emit func(pos token.Pos, msg string)) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		emit(pos, sprintf(format, args...))
	}
	outside := func(e ast.Expr) (*ast.Ident, bool) {
		id := rootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return nil, false
		}
		inside := loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End()
		return id, !inside
	}

	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			report(st.Pos(), "send on %s inside map iteration delivers values in nondeterministic order; sort the keys first", exprString(st.Chan))
		case *ast.AssignStmt:
			// s = append(s, ...) into an outer slice.
			if len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					if id, out := outside(st.Lhs[0]); out && !sortedAfter(pass, id, after) {
						report(st.Pos(), "append to %s inside map iteration is order-dependent; sort the keys first", id.Name)
					}
					return true
				}
			}
			// s += t string concatenation into an outer string.
			if st.Tok == token.ADD_ASSIGN {
				if b, ok := pass.TypesInfo.Types[st.Lhs[0]]; ok {
					if basic, ok := b.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						if id, out := outside(st.Lhs[0]); out {
							report(st.Pos(), "string concatenation into %s inside map iteration is order-dependent; sort the keys first", id.Name)
						}
					}
				}
			}
		case *ast.CallExpr:
			checkMapLoopCall(pass, report, outside, st)
		}
		return true
	})
}

// checkMapLoopCall flags output and fold calls inside a map loop.
func checkMapLoopCall(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), outside func(ast.Expr) (*ast.Ident, bool), call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		// Package function: fmt emission family.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				report(call.Pos(), "fmt.%s inside map iteration emits output in nondeterministic order; sort the keys first", fn.Name())
			}
		}
		return
	}
	name := fn.Name()
	if !foldMethods[name] && !emitMethods[name] {
		return
	}
	id, out := outside(sel.X)
	if !out {
		return
	}
	if recvOrderInsensitive(pass, sel.X) {
		return
	}
	if emitMethods[name] {
		report(call.Pos(), "%s.%s inside map iteration emits output in nondeterministic order; sort the keys first", id.Name, name)
	} else {
		report(call.Pos(), "%s.%s folds values in map-iteration order, which differs between runs; sort the keys first", id.Name, name)
	}
}

// recvOrderInsensitive reports whether e's type is a known
// commutative accumulator (WaitGroup counters, atomics).
func recvOrderInsensitive(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return pkg == "sync/atomic" || orderInsensitiveRecv[pkg+"."+named.Obj().Name()]
}

// sortedAfter reports whether one of the statements following the
// loop sorts the slice id — the collect-then-sort idiom, which is
// deterministic overall. A sorting statement is a call into the sort
// or slices package, or a local helper whose name contains "sort"
// (sortIDs, sortTaskIDs, ...), with the slice as its first argument.
func sortedAfter(pass *analysis.Pass, id *ast.Ident, after []ast.Stmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, st := range after {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		var fnName string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				continue
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				continue
			}
			fnName = "sort" // any sort./slices. call counts
		case *ast.Ident:
			fnName = fun.Name
		default:
			continue
		}
		if !strings.Contains(strings.ToLower(fnName), "sort") {
			continue
		}
		if arg := rootIdent(call.Args[0]); arg != nil && pass.TypesInfo.ObjectOf(arg) == obj {
			return true
		}
	}
	return false
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent unwraps selectors, indexes, parens and derefs down to the
// base identifier: x.f[i] -> x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "channel"
}
