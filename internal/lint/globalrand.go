package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// randConstructors are the math/rand functions that build an
// explicitly seeded source or generator — the sanctioned way to get
// randomness here. Everything else at package level draws from the
// process-global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

// GlobalRand reports randomness that cannot be reproduced from a
// recorded seed: top-level math/rand functions (they share the
// process-global source, so any other goroutine's draw shifts the
// sequence) and sources seeded from the wall clock. Every scenario
// generator, planner and campaign in this repo threads an explicit
// seeded *rand.Rand precisely so a report can be regenerated
// bit-identically; one global draw breaks that chain.
var GlobalRand = &analysis.Analyzer{
	Name: globalRandName,
	Doc: "forbid process-global or wall-clock-seeded randomness\n\n" +
		"Top-level math/rand functions (rand.Intn, rand.Float64, ...) draw from the\n" +
		"shared global source: concurrent draws interleave nondeterministically and\n" +
		"results cannot be replayed from a seed. Constructing a source from the wall\n" +
		"clock (rand.NewSource(time.Now().UnixNano())) has the same effect. Thread a\n" +
		"seeded *rand.Rand instead. Applies everywhere outside _test.go files.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runGlobalRand,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runGlobalRand(pass *analysis.Pass) (interface{}, error) {
	dirs := scanDirectives(pass, globalRandName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	report := func(pos ast.Node, format string, args ...interface{}) {
		f := enclosingFile(pass, pos.Pos())
		if f == nil || isTestFile(pass.Fset, f) || dirs.allowed(pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}

	// usesWallClock reports whether the expression tree references
	// time.Now — the wall-clock-seeded-source pattern.
	usesWallClock := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
			return
		}
		// Methods on *rand.Rand are fine: the caller owns the seed.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		if !randConstructors[fn.Name()] {
			report(sel, "rand.%s draws from the process-global source and cannot be replayed from a seed; use a seeded *rand.Rand (or //ppalint:allow globalrand <reason>)", fn.Name())
		}
	})

	// Wall-clock seeds: rand constructor whose argument derives from
	// time.Now.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) || !randConstructors[fn.Name()] {
			return
		}
		for _, arg := range call.Args {
			if usesWallClock(arg) {
				report(call, "rand.%s seeded from the wall clock is unreproducible; thread a recorded seed instead (or //ppalint:allow globalrand <reason>)", fn.Name())
				return
			}
		}
	})
	return nil, nil
}
