package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// defaultRoots are the declared determinism roots: the entry points
// whose transitive call closure must reach no tainted function. They
// are the functions the after-the-fact tests pin — the campaign
// runner and its range/merge API, the engine step path, the sketch
// fold/merge/marshal path, and the coordinator's merge/partition
// half. Package parts are path suffixes (pathMatches), so the list
// works under any module path prefix.
const defaultRoots = "internal/campaign.Run," +
	"internal/campaign.RunContext," +
	"internal/campaign.RunRange," +
	"internal/campaign.RunRangeContext," +
	"internal/campaign.Partition," +
	"internal/campaign.MergeShardStates," +
	"internal/campaign.Generate," +
	"internal/campaign.(*StopMonitor).Observe," +
	"internal/campaign.(*Paired).Summary," +
	"internal/engine.(*Engine).Run," +
	"internal/engine.(*Engine).Reset," +
	"internal/sketch.(*Sketch).Add," +
	"internal/sketch.(*Sketch).Merge," +
	"internal/sketch.(*Sketch).MarshalBinary," +
	"internal/sketch.(*Weighted).Add," +
	"internal/sketch.(*Weighted).Merge," +
	"internal/sketch.(*Weighted).MarshalBinary," +
	"internal/coord.partitionJob," +
	"internal/coord.mergeJob"

// defaultFirstParty is the import-path prefix of code analysed for
// taint. Standard-library and vendored third-party packages are
// assumed deterministic unless referenced directly through one of the
// taint-source predicates (time.Now, rand.Intn, ...), which fire at
// the calling line in first-party code.
const defaultFirstParty = "repro"

// taintFact marks a function whose result can depend on something
// other than its explicit inputs: the wall clock, the process-global
// randomness source, map iteration order, or scheduling-dependent
// floating-point fold order. Chain explains why, outermost call
// first; the last element names the direct taint source. Elements are
// pre-rendered strings because token positions and objects do not
// survive the package boundary.
type taintFact struct {
	Chain []string
}

func (*taintFact) AFact() {}

func (f *taintFact) String() string {
	if len(f.Chain) == 0 {
		return "tainted"
	}
	return "tainted: " + f.Chain[len(f.Chain)-1]
}

// DetClose computes the interprocedural determinism closure. For
// every function it derives a Deterministic/Tainted verdict: a
// function is tainted if its body trips one of the taint-source
// detectors (the walltime, globalrand, maporder and floatfold
// analyzers re-used as sources) or if it calls a tainted function —
// in this package or, through exported facts and the vet driver's
// dependency-order loading, in any package below it. The declared
// roots (-roots) must be untainted: a tainted root is reported with
// the full call chain down to the source, so one time.Now() three
// helpers deep below campaign.Run names every hop. File-level
// //ppalint:deterministic markers that the closure already covers are
// reported as redundant, as are //ppalint:allow directives that no
// longer suppress anything.
var DetClose = &analysis.Analyzer{
	Name: detCloseName,
	Doc: "verify the interprocedural determinism closure of the declared roots\n\n" +
		"Exports a per-function Deterministic/Tainted fact (tainted by wall-clock\n" +
		"reads, process-global randomness, order-sensitive map iteration and\n" +
		"unordered float accumulation — the walltime/globalrand/maporder/floatfold\n" +
		"detectors as taint sources), propagates it bottom-up across packages, and\n" +
		"requires that the transitive call closure of the declared determinism\n" +
		"roots reaches no tainted function. A tainted root is reported with the\n" +
		"full taint trace. Suppress a source with //ppalint:allow <source> <reason>\n" +
		"on the offending line; that also stops the taint from propagating.\n" +
		"Dynamic calls (interface methods, stored func values) are not resolved:\n" +
		"the closure covers static calls and function references.",
	Run:       runDetClose,
	FactTypes: []analysis.Fact{(*taintFact)(nil)},
}

func init() {
	DetClose.Flags.String("roots", defaultRoots,
		"comma-separated determinism roots: pkgsuffix.Func or pkgsuffix.(*Type).Method")
	DetClose.Flags.String("firstparty", defaultFirstParty,
		"comma-separated import-path prefixes analysed for taint sources")
}

// rootSpec is one parsed root declaration.
type rootSpec struct {
	raw  string
	pkg  string // import-path suffix pattern
	recv string // receiver type name, "" for package-level functions
	fn   string
}

// parseRootSpec parses "pkg/path.Func", "pkg/path.(Type).Method" or
// "pkg/path.(*Type).Method".
func parseRootSpec(s string) (rootSpec, bool) {
	if i := strings.Index(s, ".("); i >= 0 {
		rest := s[i+2:]
		j := strings.Index(rest, ").")
		if j < 0 {
			return rootSpec{}, false
		}
		recv := strings.TrimPrefix(rest[:j], "*")
		fn := rest[j+2:]
		if i == 0 || recv == "" || fn == "" || strings.ContainsAny(fn, ".()") {
			return rootSpec{}, false
		}
		return rootSpec{raw: s, pkg: s[:i], recv: recv, fn: fn}, true
	}
	slash := strings.LastIndexByte(s, '/')
	dot := strings.IndexByte(s[slash+1:], '.')
	if dot < 0 {
		return rootSpec{}, false
	}
	dot += slash + 1
	pkg, fn := s[:dot], s[dot+1:]
	if pkg == "" || fn == "" || strings.Contains(fn, ".") {
		return rootSpec{}, false
	}
	return rootSpec{raw: s, pkg: pkg, fn: fn}, true
}

// resolve finds the root's *types.Func in pkg, or nil.
func (r rootSpec) resolve(pkg *types.Package) *types.Func {
	if r.recv == "" {
		fn, _ := pkg.Scope().Lookup(r.fn).(*types.Func)
		return fn
	}
	tn, _ := pkg.Scope().Lookup(r.recv).(*types.TypeName)
	if tn == nil {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	if named == nil {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == r.fn {
			return m
		}
	}
	return nil
}

// callEdge is one static call or function reference inside a body.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// fnNode is one function declaration under analysis.
type fnNode struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	edges []callEdge
	fact  *taintFact
}

// detSourceAnalyzers are the analyzers whose findings seed the taint
// propagation; their allow directives suppress the matching source.
var detSourceAnalyzers = []string{wallTimeName, globalRandName, mapOrderName, floatFoldName, detCloseName}

func runDetClose(pass *analysis.Pass) (interface{}, error) {
	if !firstParty(pass) {
		return nil, nil
	}
	dirs := scanDirectivesFor(pass, detSourceAnalyzers, []string{detCloseName})

	// Collect the package's function declarations with their direct
	// taint sources and outgoing call edges. Test files are skipped:
	// determinism binds production code, and no root closure reaches a
	// test helper.
	var nodes []*fnNode
	byObj := make(map[*types.Func]*fnNode)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if obj == nil || d.Body == nil {
					continue
				}
				n := &fnNode{obj: obj, decl: d}
				if srcs := scanTaintSources(pass, d.Body, dirs); len(srcs) > 0 {
					s := srcs[0]
					n.fact = &taintFact{Chain: []string{sprintf("%s (%s) %s",
						funcDisplay(obj), posString(pass, s.pos), s.desc)}}
				}
				n.edges = collectEdges(pass, d.Body, obj)
				nodes = append(nodes, n)
				byObj[obj] = n
			case *ast.GenDecl:
				// Package-level initializers are scanned only so allow
				// directives inside them register as used; their taint,
				// if any, has no per-function home.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							scanTaintSources(pass, v, dirs)
						}
					}
				}
			}
		}
	}

	// Propagate taint to a fixed point: a function calling a tainted
	// function (here or, via imported facts, in a dependency) is
	// tainted, with the callee's chain extended by one hop. Nodes are
	// visited in declaration order and edges in position order, so the
	// chosen witness chain is deterministic.
	importedFact := make(map[*types.Func]*taintFact)
	importedSeen := make(map[*types.Func]bool)
	factFor := func(callee *types.Func) *taintFact {
		if n, ok := byObj[callee]; ok {
			return n.fact
		}
		if !importedSeen[callee] {
			importedSeen[callee] = true
			var tf taintFact
			if pass.ImportObjectFact(callee, &tf) {
				importedFact[callee] = &tf
			}
		}
		return importedFact[callee]
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.fact != nil {
				continue
			}
			for _, e := range n.edges {
				t := factFor(e.callee)
				if t == nil {
					continue
				}
				step := sprintf("%s (%s) calls %s", funcDisplay(n.obj), posString(pass, e.pos), funcDisplay(e.callee))
				n.fact = &taintFact{Chain: append([]string{step}, t.Chain...)}
				changed = true
				break
			}
		}
	}
	for _, n := range nodes {
		if n.fact != nil {
			pass.ExportObjectFact(n.obj, n.fact)
		}
	}

	// Verify the declared roots.
	var rootObjs []*types.Func
	for _, raw := range strings.Split(pass.Analyzer.Flags.Lookup("roots").Value.String(), ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		spec, ok := parseRootSpec(raw)
		if !ok {
			pass.Reportf(pass.Files[0].Name.Pos(), "detclose: bad root spec %q (want pkg/path.Func or pkg/path.(*Type).Method)", raw)
			continue
		}
		if !pathMatches(pass.Pkg.Path(), spec.pkg) {
			continue
		}
		obj := spec.resolve(pass.Pkg)
		if obj == nil {
			pass.Reportf(pass.Files[0].Name.Pos(), "detclose: root %q not found in package %s (typo in the roots declaration?)", spec.raw, pass.Pkg.Path())
			continue
		}
		rootObjs = append(rootObjs, obj)
		n := byObj[obj]
		if n == nil || n.fact == nil {
			continue
		}
		pass.Reportf(obj.Pos(),
			"%s is a declared determinism root but its call closure is tainted:\n\t%s\nbreak the chain, or //ppalint:allow <source-analyzer> <reason> at the source line",
			funcDisplay(obj), strings.Join(n.fact.Chain, "\n\t"))
	}

	reportRedundantMarkers(pass, dirs, byObj, rootObjs)
	reportUnusedAllows(pass, dirs)
	return nil, nil
}

// firstParty reports whether the package is in the analysed scope.
func firstParty(pass *analysis.Pass) bool {
	flags := pass.Analyzer.Flags.Lookup("firstparty").Value.String()
	path := pass.Pkg.Path()
	for _, p := range strings.Split(flags, ",") {
		if p = strings.TrimSpace(p); p != "" && (path == p || strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// collectEdges gathers every static call or reference to a function
// inside body: identifiers and selectors resolving to a *types.Func.
// References count as edges because a stored func value smuggles its
// taint just as a direct call does. Dynamic dispatch through
// interfaces resolves to the interface method, which never carries a
// fact — that hole is documented in the analyzer doc.
func collectEdges(pass *analysis.Pass, body ast.Node, self *types.Func) []callEdge {
	var edges []callEdge
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn == self || seen[fn] {
			return true
		}
		seen[fn] = true
		edges = append(edges, callEdge{callee: fn, pos: id.Pos()})
		return true
	})
	return edges
}

// funcDisplay renders a function for traces: pkg.Func or
// pkg.(*Type).Method, with only the last import-path element.
func funcDisplay(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	pkg := fn.Pkg().Path()
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), "*"
		}
		if named, ok := t.(*types.Named); ok {
			return sprintf("%s.(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// posString renders pos as file:line with only the base filename.
func posString(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// reportRedundantMarkers flags //ppalint:deterministic file markers
// the closure machinery has made unnecessary: markers in packages
// already covered by walltime's deterministic package set, and
// markers on files whose every function sits inside the local closure
// of the declared roots — there the root-anchored interprocedural
// check supersedes the file-level comment.
func reportRedundantMarkers(pass *analysis.Pass, dirs *directives, byObj map[*types.Func]*fnNode, roots []*types.Func) {
	inDetSet := pkgInPatterns(pass.Pkg.Path(), defaultDeterministicPackages)

	// Local closure: the roots declared in this package plus every
	// same-package function reachable from them through static edges.
	closure := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if closure[obj] {
			continue
		}
		closure[obj] = true
		if n := byObj[obj]; n != nil {
			for _, e := range n.edges {
				if _, local := byObj[e.callee]; local && !closure[e.callee] {
					queue = append(queue, e.callee)
				}
			}
		}
	}

	for f, mpos := range dirs.deterministic {
		if isTestFile(pass.Fset, f) {
			continue
		}
		if inDetSet {
			pass.Reportf(mpos, "//ppalint:deterministic is redundant: package %s is already in the deterministic package set", pass.Pkg.Path())
			continue
		}
		covered, funcs := true, 0
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			funcs++
			obj, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if obj == nil || !closure[obj] {
				covered = false
				break
			}
		}
		if funcs > 0 && covered {
			pass.Reportf(mpos, "//ppalint:deterministic is redundant: every function in this file is in the call closure of the declared detclose roots, which is checked interprocedurally")
		}
	}
}

// reportUnusedAllows flags allow directives of the taint-source
// analyzers (and detclose) that suppressed nothing: the construct
// they excused is gone, so the directive is stale and should be
// deleted before it silently excuses a future regression.
func reportUnusedAllows(pass *analysis.Pass, dirs *directives) {
	for _, dir := range dirs.unused() {
		f := enclosingFile(pass, dir.pos)
		if f == nil || isTestFile(pass.Fset, f) {
			continue
		}
		pass.Reportf(dir.pos, "//ppalint:allow %s suppresses nothing on this line; delete the stale directive", dir.analyzer)
	}
}
