package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxSpawn requires goroutines in the coordination layer to receive a
// context. A goroutine with no cancellation path outlives the job
// that spawned it: the reader keeps blocking on a dead connection,
// the heartbeat keeps ticking for a cancelled campaign. The check is
// syntactic but effective — the go statement must either pass a
// context.Context argument or close over one (referencing ctx inside
// the function literal counts, since selecting on ctx.Done() is the
// usual shape).
var CtxSpawn = &analysis.Analyzer{
	Name: ctxSpawnName,
	Doc: "require coordination-layer goroutines to receive a context\n\n" +
		"A go statement in the scoped packages must pass a context.Context to the\n" +
		"spawned function or close over one, so the goroutine has a cancellation\n" +
		"path. Goroutines whose lifetime is bounded by other means (connection\n" +
		"close unblocking a read, process exit) are annotated with\n" +
		"//ppalint:allow ctxspawn <reason>.",
	Run: runCtxSpawn,
}

func init() {
	CtxSpawn.Flags.String("packages", defaultCoordPackages,
		"comma-separated package path suffixes whose goroutines must receive a context")
}

func runCtxSpawn(pass *analysis.Pass) (interface{}, error) {
	if !pkgInPatterns(pass.Pkg.Path(), pass.Analyzer.Flags.Lookup("packages").Value.String()) {
		return nil, nil
	}
	dirs := scanDirectives(pass, ctxSpawnName)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goReferencesContext(pass, g) || dirs.allowed(g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine is spawned without a context; pass or capture a context.Context so it can be cancelled (or //ppalint:allow ctxspawn <reason>)")
			return true
		})
	}
	return nil, nil
}

// goReferencesContext reports whether the go statement's call
// mentions any context.Context-typed object — an argument, a closed-
// over variable, or a field read like w.ctx.
func goReferencesContext(pass *analysis.Pass, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj != nil && isContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
