// Package linttest is a self-contained analysistest-style harness for
// the ppalint analyzers. It loads fixture directories as packages,
// type-checks them against the standard library with the source
// importer (no network, no export data), runs an analyzer, and
// compares its diagnostics with expectation comments in the fixtures:
//
//	work()        // want "regexp matching the diagnostic"
//	// want+2 "regexp"      <- expectation for the line 2 below, used when
//	highlight()   //           that line ends in a directive comment
//
// Several quoted regexps on one want comment expect several
// diagnostics on that line. Every diagnostic must be expected and
// every expectation matched, or the test fails with a per-line diff.
//
// RunPackages loads several fixture packages in dependency order
// against a shared fact store, exercising cross-package fact
// propagation (the detclose analyzer's interprocedural closure) the
// same way the vet driver does: facts exported while analyzing a
// dependency are importable while analyzing its dependents, keyed by
// the identical types.Object since the type-checked packages are
// shared rather than re-imported from export data.
//
// The vendored x/tools subset (copied from the Go toolchain's own
// cmd/vendor tree) deliberately excludes go/analysis/analysistest —
// it drags in go/packages and a module loader that need network or
// export data; this harness covers the needed slice of it offline.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Pkg is one fixture package for RunPackages: a directory loaded
// under an import path. The import path matters twice: path-scoped
// analyzers key their scope off it, and later packages import earlier
// ones by it.
type Pkg struct {
	Dir        string
	ImportPath string
}

// expectation is one `want` regexp anchored to a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want(\+\d+)?((?:\s+"(?:[^"\\]|\\.)*")+)`)

// SetFlag sets an analyzer flag for the duration of the test,
// restoring the previous value on cleanup. Analyzer flag sets are
// package-level state, so tests that override them must restore them
// for the rest of the suite.
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("linttest: analyzer %s has no flag %q", a.Name, name)
	}
	prev := f.Value.String()
	if err := a.Flags.Set(name, value); err != nil {
		t.Fatalf("linttest: setting %s.%s=%q: %v", a.Name, name, value, err)
	}
	t.Cleanup(func() { _ = a.Flags.Set(name, prev) })
}

// Run loads dir as one package under importPath, runs a (with the
// inspect dependency satisfied), and checks diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	RunPackages(t, a, Pkg{Dir: dir, ImportPath: importPath})
}

// RunPackages loads the fixture packages in slice order — which must
// be dependency order — runs a over each against a shared fact store,
// and checks the union of diagnostics against the union of want
// comments.
func RunPackages(t *testing.T, a *analysis.Analyzer, pkgs ...Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	store := newFactStore()
	byPath := make(map[string]*types.Package)
	imp := &chainImporter{
		fixtures: byPath,
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var diags []analysis.Diagnostic
	var allFiles []*ast.File
	for _, p := range pkgs {
		files := parseDir(t, fset, p.Dir)
		allFiles = append(allFiles, files...)

		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // collect diagnostics even on type errors
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			t.Logf("linttest: type errors in %s (continuing): %v", p.Dir, err)
		}
		byPath[p.ImportPath] = pkg

		pass := &analysis.Pass{
			Analyzer:          a,
			Fset:              fset,
			Files:             files,
			Pkg:               pkg,
			TypesInfo:         info,
			TypesSizes:        types.SizesFor("gc", "amd64"),
			ResultOf:          map[*analysis.Analyzer]interface{}{},
			Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
			ImportObjectFact:  store.importObjectFact,
			ImportPackageFact: store.importPackageFact,
			ExportObjectFact:  store.exportObjectFact,
			ExportPackageFact: func(f analysis.Fact) { store.exportPackageFact(pkg, f) },
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
			ReadFile:          os.ReadFile,
		}
		for _, dep := range a.Requires {
			switch dep {
			case inspect.Analyzer:
				pass.ResultOf[inspect.Analyzer] = inspector.New(files)
			default:
				t.Fatalf("linttest: analyzer %s requires unsupported dependency %s", a.Name, dep.Name)
			}
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("linttest: analyzer %s on %s: %v", a.Name, p.ImportPath, err)
		}
	}

	expects := parseWants(t, fset, allFiles)
	var unexpected []string
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if e.matched || e.file != p.Filename || e.line != p.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message))
		}
	}
	var unmatched []string
	for _, e := range expects {
		if !e.matched {
			unmatched = append(unmatched, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.re))
		}
	}
	sort.Strings(unexpected)
	sort.Strings(unmatched)
	for _, m := range append(unexpected, unmatched...) {
		t.Error(m)
	}
}

// parseDir parses every .go file in dir.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading fixtures: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixtures in %s", dir)
	}
	return files
}

// chainImporter resolves already-loaded fixture packages by import
// path and everything else (the standard library) via the source
// importer.
type chainImporter struct {
	fixtures map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.fixtures[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// factStore implements the pass fact callbacks over shared
// types.Object identity: fixture packages are type-checked once and
// shared via chainImporter, so a dependent package's Uses resolve to
// the very objects the dependency exported facts on.
type factStore struct {
	obj map[objFactKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[objFactKey]analysis.Fact),
		pkg: make(map[pkgFactKey]analysis.Fact),
	}
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	s.obj[objFactKey{obj, reflect.TypeOf(f)}] = f
}

func (s *factStore) importObjectFact(obj types.Object, f analysis.Fact) bool {
	v, ok := s.obj[objFactKey{obj, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(v).Elem())
	return true
}

func (s *factStore) exportPackageFact(pkg *types.Package, f analysis.Fact) {
	s.pkg[pkgFactKey{pkg, reflect.TypeOf(f)}] = f
}

func (s *factStore) importPackageFact(pkg *types.Package, f analysis.Fact) bool {
	v, ok := s.pkg[pkgFactKey{pkg, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(v).Elem())
	return true
}

// parseWants extracts want / want-next expectations from all fixture
// comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want")
				if i < 0 {
					continue
				}
				m := wantRE.FindStringSubmatch(text[i:])
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				line := p.Line
				if m[1] != "" {
					n, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("linttest: bad want offset %q at %s", m[1], p)
					}
					line += n
				}
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[2], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("linttest: bad want string %s at %s: %v", q, p, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %q at %s: %v", s, p, err)
					}
					out = append(out, &expectation{file: p.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}
