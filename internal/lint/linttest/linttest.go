// Package linttest is a self-contained analysistest-style harness for
// the ppalint analyzers. It loads one fixture directory as a single
// package, type-checks it against the standard library with the
// source importer (no network, no export data), runs an analyzer, and
// compares its diagnostics with expectation comments in the fixtures:
//
//	work()        // want "regexp matching the diagnostic"
//	// want+2 "regexp"      <- expectation for the line 2 below, used when
//	highlight()   //           that line ends in a directive comment
//
// Several quoted regexps on one want comment expect several
// diagnostics on that line. Every diagnostic must be expected and
// every expectation matched, or the test fails with a per-line diff.
//
// The vendored x/tools subset (copied from the Go toolchain's own
// cmd/vendor tree) deliberately excludes go/analysis/analysistest —
// it drags in go/packages and a module loader that need network or
// export data; this harness covers the needed slice of it offline.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// expectation is one `want` regexp anchored to a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want(\+\d+)?((?:\s+"(?:[^"\\]|\\.)*")+)`)

// Run loads dir as one package under importPath, runs a (with the
// inspect dependency satisfied), and checks diagnostics against the
// fixtures' want comments. The importPath matters: path-scoped
// analyzers like walltime key their scope off it.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading fixtures: %v", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parsing %s: %v", path, err)
		}
		files = append(files, f)
		names = append(names, path)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixtures in %s", dir)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // collect diagnostics even on type errors
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Logf("linttest: type errors in fixtures (continuing): %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             files,
		Pkg:               pkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", "amd64"),
		ResultOf:          map[*analysis.Analyzer]interface{}{},
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		ReadFile:          os.ReadFile,
	}
	for _, dep := range a.Requires {
		switch dep {
		case inspect.Analyzer:
			pass.ResultOf[inspect.Analyzer] = inspector.New(files)
		default:
			t.Fatalf("linttest: analyzer %s requires unsupported dependency %s", a.Name, dep.Name)
		}
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}

	expects := parseWants(t, fset, files)
	// Match diagnostics against expectations.
	var unexpected []string
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if e.matched || e.file != p.Filename || e.line != p.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message))
		}
	}
	var unmatched []string
	for _, e := range expects {
		if !e.matched {
			unmatched = append(unmatched, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.re))
		}
	}
	sort.Strings(unexpected)
	sort.Strings(unmatched)
	for _, m := range append(unexpected, unmatched...) {
		t.Error(m)
	}
	_ = names
}

// parseWants extracts want / want-next expectations from all fixture
// comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want")
				if i < 0 {
					continue
				}
				m := wantRE.FindStringSubmatch(text[i:])
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				line := p.Line
				if m[1] != "" {
					n, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("linttest: bad want offset %q at %s", m[1], p)
					}
					line += n
				}
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[2], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("linttest: bad want string %s at %s: %v", q, p, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %q at %s: %v", s, p, err)
					}
					out = append(out, &expectation{file: p.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}
