package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

// TestWallTime: wall-clock reads are reported in deterministic
// packages (by import-path suffix), ignored elsewhere, and re-enabled
// per file by the //ppalint:deterministic marker.
func TestWallTime(t *testing.T) {
	linttest.Run(t, fixture("walltime", "inscope"), "repro/internal/engine", lint.WallTime)
	linttest.Run(t, fixture("walltime", "outofscope"), "example.com/other", lint.WallTime)
}

// TestGlobalRand: top-level math/rand draws and wall-clock-seeded
// sources are reported everywhere outside _test.go files.
func TestGlobalRand(t *testing.T) {
	linttest.Run(t, fixture("globalrand", "a"), "example.com/a", lint.GlobalRand)
}

// TestMapOrder: order-sensitive bodies of range-over-map loops are
// reported; collect-then-sort, map-to-map and commutative counters
// are not.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, fixture("maporder", "a"), "example.com/m", lint.MapOrder)
}

// TestFloatFold: non-associative FP accumulation inside map iteration
// and goroutines is reported; integer sums and loop-local
// accumulators are not.
func TestFloatFold(t *testing.T) {
	linttest.Run(t, fixture("floatfold", "a"), "example.com/f", lint.FloatFold)
}

// TestPooledEscape: uses of pooled values after sync.Pool Put or
// free-list put/release are reported; release-after-last-use and
// refreshed handles are not.
func TestPooledEscape(t *testing.T) {
	linttest.Run(t, fixture("pooledescape", "a"), "example.com/p", lint.PooledEscape)
}

// TestDetCloseCrossPackage: a wall-clock read two calls below a
// declared root in a *different* package is reported at the root with
// the full taint chain, proving the fact propagation across package
// boundaries. Suppressed sources (dep.Seeded) do not propagate, and
// stale suppressions are reported.
func TestDetCloseCrossPackage(t *testing.T) {
	linttest.SetFlag(t, lint.DetClose, "roots",
		"fixture/rootpkg.Run,fixture/rootpkg.Run2,fixture/rootpkg.(*Agg).Merge,fixture/rootpkg.Sum")
	linttest.RunPackages(t, lint.DetClose,
		linttest.Pkg{Dir: fixture("detclose", "dep"), ImportPath: "repro/fixture/dep"},
		linttest.Pkg{Dir: fixture("detclose", "rootpkg"), ImportPath: "repro/fixture/rootpkg"},
	)
}

// TestDetCloseMarkers: //ppalint:deterministic file markers are
// reported as redundant when the package is already in the
// deterministic set or when the root closure covers every function in
// the file.
func TestDetCloseMarkers(t *testing.T) {
	linttest.SetFlag(t, lint.DetClose, "roots", "fixture/marked.Root")
	linttest.RunPackages(t, lint.DetClose,
		linttest.Pkg{Dir: fixture("detclose", "marked"), ImportPath: "repro/fixture/marked"},
		linttest.Pkg{Dir: fixture("detclose", "detset"), ImportPath: "repro/internal/plan"},
	)
}

// TestDetCloseOutOfScope: packages outside the first-party prefix are
// not analysed — a time.Now there produces no taint and no report.
func TestDetCloseOutOfScope(t *testing.T) {
	linttest.Run(t, fixture("detclose", "thirdparty"), "example.com/vendorpkg", lint.DetClose)
}

// TestFrameCase: switches over a frame-kind const group must cover
// every member or carry a non-empty default; empty defaults and
// missing members are reported, annotated partial dispatch is not.
func TestFrameCase(t *testing.T) {
	linttest.Run(t, fixture("framecase", "a"), "example.com/internal/coord", lint.FrameCase)
}

// TestCtxSpawn: goroutines in the coordination layer must pass or
// capture a context.Context; bounded-by-other-means spawns carry an
// allow directive.
func TestCtxSpawn(t *testing.T) {
	linttest.Run(t, fixture("ctxspawn", "a"), "example.com/internal/coord", lint.CtxSpawn)
}

// TestLockHeld: channel ops, defaultless selects and blocking I/O
// while a mutex is held are reported; unlock-before-op, fresh
// goroutines, Cond.Wait and annotated spans are not.
func TestLockHeld(t *testing.T) {
	linttest.Run(t, fixture("lockheld", "a"), "example.com/internal/coord", lint.LockHeld)
}
