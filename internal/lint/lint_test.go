package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

// TestWallTime: wall-clock reads are reported in deterministic
// packages (by import-path suffix), ignored elsewhere, and re-enabled
// per file by the //ppalint:deterministic marker.
func TestWallTime(t *testing.T) {
	linttest.Run(t, fixture("walltime", "inscope"), "repro/internal/engine", lint.WallTime)
	linttest.Run(t, fixture("walltime", "outofscope"), "example.com/other", lint.WallTime)
}

// TestGlobalRand: top-level math/rand draws and wall-clock-seeded
// sources are reported everywhere outside _test.go files.
func TestGlobalRand(t *testing.T) {
	linttest.Run(t, fixture("globalrand", "a"), "example.com/a", lint.GlobalRand)
}

// TestMapOrder: order-sensitive bodies of range-over-map loops are
// reported; collect-then-sort, map-to-map and commutative counters
// are not.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, fixture("maporder", "a"), "example.com/m", lint.MapOrder)
}

// TestFloatFold: non-associative FP accumulation inside map iteration
// and goroutines is reported; integer sums and loop-local
// accumulators are not.
func TestFloatFold(t *testing.T) {
	linttest.Run(t, fixture("floatfold", "a"), "example.com/f", lint.FloatFold)
}

// TestPooledEscape: uses of pooled values after sync.Pool Put or
// free-list put/release are reported; release-after-last-use and
// refreshed handles are not.
func TestPooledEscape(t *testing.T) {
	linttest.Run(t, fixture("pooledescape", "a"), "example.com/p", lint.PooledEscape)
}
