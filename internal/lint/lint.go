// Package lint implements the ppalint analyzer suite: first-party
// go/analysis analyzers encoding this repository's determinism and
// safety invariants, the properties the golden-hash, summary-hash and
// distributed-golden tests check after the fact. The analyzers move
// that enforcement to go vet time, where a violation names the exact
// line instead of a flipped digest.
//
// Analyzers (see Analyzers):
//
//	walltime     wall-clock time in deterministic packages
//	globalrand   process-global or wall-clock-seeded randomness
//	maporder     order-sensitive work inside map iteration
//	floatfold    order-dependent floating-point accumulation
//	pooledescape use of pooled values after their release
//	detclose     interprocedural determinism closure over declared roots
//	framecase    exhaustive switches over protocol frame kinds
//	ctxspawn     goroutines must receive a context
//	lockheld     no blocking channel op or I/O while holding a mutex
//
// The first four analyzers double as taint *sources* for detclose,
// which propagates a per-function Deterministic/Tainted fact bottom-up
// across packages through the vet driver's dependency-order loading
// and verifies that the transitive call closure of the declared
// determinism roots (campaign.Run/RunRange, the engine step path, the
// sketch fold/merge/marshal path, the coordinator's merge/partition
// half) reaches no tainted function. See detclose.go.
//
// A finding that is intentional is suppressed in place with a
// directive comment, on the offending line or the line above:
//
//	//ppalint:allow <analyzer> <reason>
//
// The reason is mandatory: a directive without one does not suppress
// anything and is itself reported. Files outside the deterministic
// package set opt into the walltime analyzer with a file-level
//
//	//ppalint:deterministic
//
// comment (conventionally next to the package clause); detclose
// reports such markers as redundant once the file is covered by the
// root closure, which checks the same property interprocedurally.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full ppalint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		WallTime,
		GlobalRand,
		MapOrder,
		FloatFold,
		PooledEscape,
		DetClose,
		FrameCase,
		CtxSpawn,
		LockHeld,
	}
}

const (
	allowPrefix         = "//ppalint:allow"
	deterministicMarker = "//ppalint:deterministic"
)

// Analyzer names, shared between the Analyzer literals and their run
// functions (the run functions cannot reference the analyzer vars —
// that would be an initialization cycle).
const (
	wallTimeName     = "walltime"
	globalRandName   = "globalrand"
	mapOrderName     = "maporder"
	floatFoldName    = "floatfold"
	pooledEscapeName = "pooledescape"
	detCloseName     = "detclose"
	frameCaseName    = "framecase"
	ctxSpawnName     = "ctxspawn"
	lockHeldName     = "lockheld"
)

// allowDirective is one parsed //ppalint:allow comment with a reason.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	used     bool
}

// marker is one file-level //ppalint:deterministic comment.
type marker struct {
	file *ast.File
	pos  token.Pos
}

// directives indexes one pass's ppalint comments for a set of
// analyzers: suppressions by (analyzer, file, line) and the file-level
// deterministic markers. Reasonless directives naming an analyzer in
// reportFor are reported during the scan — they suppress nothing.
type directives struct {
	fset          *token.FileSet
	allow         map[string]map[string]map[int]*allowDirective // analyzer -> filename -> line
	deterministic map[*ast.File]token.Pos
}

// scanDirectives parses every comment of the pass once for the named
// analyzer, reporting reasonless directives that name it.
func scanDirectives(pass *analysis.Pass, analyzer string) *directives {
	return scanDirectivesFor(pass, []string{analyzer}, []string{analyzer})
}

// scanDirectivesFor parses every comment of the pass for the named
// analyzers. Reasonless directives are reported only for the names in
// reportReasonless, so that an analyzer consuming another analyzer's
// directives (detclose consumes the taint-source analyzers') does not
// duplicate that analyzer's own report.
func scanDirectivesFor(pass *analysis.Pass, analyzers, reportReasonless []string) *directives {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a] = true
	}
	reasonless := make(map[string]bool, len(reportReasonless))
	for _, a := range reportReasonless {
		reasonless[a] = true
	}
	d := &directives{
		fset:          pass.Fset,
		allow:         make(map[string]map[string]map[int]*allowDirective),
		deterministic: make(map[*ast.File]token.Pos),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if text == deterministicMarker || strings.HasPrefix(text, deterministicMarker+" ") {
					d.deterministic[f] = c.Pos()
					continue
				}
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 || !names[fields[0]] {
					continue // another analyzer's directive (or empty: ignored by all)
				}
				if len(fields) < 2 {
					if reasonless[fields[0]] {
						pass.Reportf(c.Pos(), "ppalint:allow %s needs a reason (\"//ppalint:allow %s <why this is safe>\")", fields[0], fields[0])
					}
					continue
				}
				pos := d.fset.Position(c.Pos())
				files := d.allow[fields[0]]
				if files == nil {
					files = make(map[string]map[int]*allowDirective)
					d.allow[fields[0]] = files
				}
				lines := files[pos.Filename]
				if lines == nil {
					lines = make(map[int]*allowDirective)
					files[pos.Filename] = lines
				}
				lines[pos.Line] = &allowDirective{
					pos: c.Pos(), file: pos.Filename, line: pos.Line, analyzer: fields[0],
				}
			}
		}
	}
	return d
}

// allowedFor reports whether a finding of the named analyzer at pos is
// suppressed by a directive on the same line or the line immediately
// above, marking the directive used.
func (d *directives) allowedFor(analyzer string, pos token.Pos) bool {
	p := d.fset.Position(pos)
	lines := d.allow[analyzer][p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		if dir := lines[l]; dir != nil {
			dir.used = true
			return true
		}
	}
	return false
}

// allowed is allowedFor over the single analyzer the directives were
// scanned for — the common single-analyzer case.
func (d *directives) allowed(pos token.Pos) bool {
	for analyzer := range d.allow {
		if d.allowedFor(analyzer, pos) {
			return true
		}
	}
	// No directive of any scanned analyzer covers pos.
	return false
}

// unused returns the scanned directives never marked used, in file
// then line order.
func (d *directives) unused() []*allowDirective {
	var out []*allowDirective
	for _, files := range d.allow {
		for _, lines := range files {
			for _, dir := range lines {
				if !dir.used {
					//ppalint:allow maporder collection order is erased by sortDirectives below
					out = append(out, dir)
				}
			}
		}
	}
	sortDirectives(out)
	return out
}

func sortDirectives(ds []*allowDirective) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && (ds[j].file < ds[j-1].file || (ds[j].file == ds[j-1].file && ds[j].line < ds[j-1].line)); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// isDeterministicFile reports whether f carries the file-level
// //ppalint:deterministic marker.
func (d *directives) isDeterministicFile(f *ast.File) bool {
	_, ok := d.deterministic[f]
	return ok
}

// isTestFile reports whether the file's name ends in _test.go.
// Determinism invariants bind production code; tests draw wall-clock
// deadlines and throwaway randomness legitimately.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// pathMatches reports whether pkgpath equals pattern or ends in
// "/"+pattern — suffix matching on whole path elements, so the
// deterministic package list works for any module path prefix.
func pathMatches(pkgpath, pattern string) bool {
	return pkgpath == pattern || strings.HasSuffix(pkgpath, "/"+pattern)
}

// pkgInPatterns reports whether pkgpath matches any pattern in the
// comma-separated list — the shared scope gate of the path-scoped
// analyzers (walltime's deterministic set, the coord-focused
// framecase/ctxspawn/lockheld).
func pkgInPatterns(pkgpath, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		if p = strings.TrimSpace(p); p != "" && pathMatches(pkgpath, p) {
			return true
		}
	}
	return false
}

// enclosingFile returns the *ast.File of pos.
func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
