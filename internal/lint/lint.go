// Package lint implements the ppalint analyzer suite: first-party
// go/analysis analyzers encoding this repository's determinism and
// safety invariants, the properties the golden-hash, summary-hash and
// distributed-golden tests check after the fact. The analyzers move
// that enforcement to go vet time, where a violation names the exact
// line instead of a flipped digest.
//
// Analyzers (see Analyzers):
//
//	walltime     wall-clock time in deterministic packages
//	globalrand   process-global or wall-clock-seeded randomness
//	maporder     order-sensitive work inside map iteration
//	floatfold    order-dependent floating-point accumulation
//	pooledescape use of pooled values after their release
//
// A finding that is intentional is suppressed in place with a
// directive comment, on the offending line or the line above:
//
//	//ppalint:allow <analyzer> <reason>
//
// The reason is mandatory: a directive without one does not suppress
// anything and is itself reported. Files outside the deterministic
// package set opt into the walltime analyzer with a file-level
//
//	//ppalint:deterministic
//
// comment (conventionally next to the package clause) — the
// coordinator's merge/partition path uses this, since the rest of
// internal/coord legitimately runs on wall-clock heartbeats.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full ppalint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		WallTime,
		GlobalRand,
		MapOrder,
		FloatFold,
		PooledEscape,
	}
}

const (
	allowPrefix         = "//ppalint:allow"
	deterministicMarker = "//ppalint:deterministic"
)

// Analyzer names, shared between the Analyzer literals and their run
// functions (the run functions cannot reference the analyzer vars —
// that would be an initialization cycle).
const (
	wallTimeName     = "walltime"
	globalRandName   = "globalrand"
	mapOrderName     = "maporder"
	floatFoldName    = "floatfold"
	pooledEscapeName = "pooledescape"
)

// allowDirective is one parsed //ppalint:allow comment.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	reason   string
}

// directives indexes one pass's ppalint comments for a single
// analyzer: suppressions by (file, line) and the set of files marked
// deterministic. Reasonless directives naming the analyzer are
// reported during the scan — they suppress nothing.
type directives struct {
	fset          *token.FileSet
	allow         map[string]map[int]bool // filename -> line -> suppressed
	deterministic map[*ast.File]bool
}

// scanDirectives parses every comment of the pass once for the named
// analyzer. It reports directives that name the analyzer but carry no
// reason.
func scanDirectives(pass *analysis.Pass, analyzer string) *directives {
	d := &directives{
		fset:          pass.Fset,
		allow:         make(map[string]map[int]bool),
		deterministic: make(map[*ast.File]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if text == deterministicMarker || strings.HasPrefix(text, deterministicMarker+" ") {
					d.deterministic[f] = true
					continue
				}
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 || fields[0] != analyzer {
					continue // another analyzer's directive (or empty: ignored by all)
				}
				if len(fields) < 2 {
					pass.Reportf(c.Pos(), "ppalint:allow %s needs a reason (\"//ppalint:allow %s <why this is safe>\")", analyzer, analyzer)
					continue
				}
				pos := d.fset.Position(c.Pos())
				lines := d.allow[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					d.allow[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return d
}

// allowed reports whether a finding at pos is suppressed by a
// directive on the same line or the line immediately above.
func (d *directives) allowed(pos token.Pos) bool {
	p := d.fset.Position(pos)
	lines := d.allow[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}

// isDeterministicFile reports whether f carries the file-level
// //ppalint:deterministic marker.
func (d *directives) isDeterministicFile(f *ast.File) bool { return d.deterministic[f] }

// isTestFile reports whether the file's name ends in _test.go.
// Determinism invariants bind production code; tests draw wall-clock
// deadlines and throwaway randomness legitimately.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// pathMatches reports whether pkgpath equals pattern or ends in
// "/"+pattern — suffix matching on whole path elements, so the
// deterministic package list works for any module path prefix.
func pathMatches(pkgpath, pattern string) bool {
	return pkgpath == pattern || strings.HasSuffix(pkgpath, "/"+pattern)
}

// enclosingFile returns the *ast.File of pos.
func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
